#include "schema/value.h"

#include "common/logging.h"

namespace adaptagg {

std::string DataTypeToString(DataType type) {
  switch (type) {
    case DataType::kInt64:
      return "int64";
    case DataType::kDouble:
      return "double";
    case DataType::kBytes:
      return "bytes";
  }
  return "?";
}

int FixedWidth(DataType type) {
  switch (type) {
    case DataType::kInt64:
    case DataType::kDouble:
      return 8;
    case DataType::kBytes:
      return -1;  // width comes from the schema
  }
  return -1;
}

double Value::AsDouble() const {
  if (is_int64()) return static_cast<double>(int64());
  ADAPTAGG_CHECK(is_double()) << "AsDouble() on a bytes value";
  return dbl();
}

std::string Value::ToString() const {
  if (is_int64()) return std::to_string(int64());
  if (is_double()) return std::to_string(dbl());
  return bytes();
}

}  // namespace adaptagg
