#ifndef ADAPTAGG_SCHEMA_SCHEMA_H_
#define ADAPTAGG_SCHEMA_SCHEMA_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "schema/value.h"

namespace adaptagg {

/// One column of a fixed-width row schema.
struct Field {
  std::string name;
  DataType type = DataType::kInt64;
  /// Byte width. 8 for numerics; arbitrary > 0 for kBytes (zero-padded).
  int width = 8;
};

/// A fixed-width row schema: an ordered list of fields with precomputed
/// byte offsets. Schemas are immutable after construction and cheap to
/// copy by shared reference where needed.
class Schema {
 public:
  Schema() = default;
  /// Builds a schema; widths of numeric fields are forced to 8.
  explicit Schema(std::vector<Field> fields);

  /// Convenience factory: a schema of the given fields. Returns an error
  /// for empty names, duplicate names, or non-positive widths.
  static Result<Schema> Make(std::vector<Field> fields);

  int num_fields() const { return static_cast<int>(fields_.size()); }
  const Field& field(int i) const { return fields_[i]; }
  const std::vector<Field>& fields() const { return fields_; }

  /// Byte offset of field `i` within a row.
  int offset(int i) const { return offsets_[i]; }

  /// Total row width in bytes.
  int tuple_size() const { return tuple_size_; }

  /// Index of the field named `name`, or error.
  Result<int> FieldIndex(const std::string& name) const;

  bool Equals(const Schema& other) const;

  std::string ToString() const;

 private:
  std::vector<Field> fields_;
  std::vector<int> offsets_;
  int tuple_size_ = 0;
};

}  // namespace adaptagg

#endif  // ADAPTAGG_SCHEMA_SCHEMA_H_
