#ifndef ADAPTAGG_SCHEMA_VALUE_H_
#define ADAPTAGG_SCHEMA_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>

namespace adaptagg {

/// Column data types. All types are fixed-width so that tuples are
/// fixed-size rows (the paper works with 100-byte tuples): kBytes columns
/// carry an explicit width in the schema and are zero-padded.
enum class DataType : uint8_t {
  kInt64 = 0,
  kDouble = 1,
  kBytes = 2,
};

/// Returns "int64" / "double" / "bytes".
std::string DataTypeToString(DataType type);

/// Width in bytes of a fixed-width numeric type (8). kBytes widths come
/// from the schema, not the type.
int FixedWidth(DataType type);

/// A single dynamically-typed cell value, used at API boundaries (building
/// tuples, reading results). The hot aggregation paths operate on raw rows
/// and never materialize `Value`s.
class Value {
 public:
  Value() : v_(int64_t{0}) {}
  explicit Value(int64_t v) : v_(v) {}
  explicit Value(double v) : v_(v) {}
  explicit Value(std::string v) : v_(std::move(v)) {}

  DataType type() const {
    switch (v_.index()) {
      case 0:
        return DataType::kInt64;
      case 1:
        return DataType::kDouble;
      default:
        return DataType::kBytes;
    }
  }

  bool is_int64() const { return v_.index() == 0; }
  bool is_double() const { return v_.index() == 1; }
  bool is_bytes() const { return v_.index() == 2; }

  int64_t int64() const { return std::get<int64_t>(v_); }
  double dbl() const { return std::get<double>(v_); }
  const std::string& bytes() const { return std::get<std::string>(v_); }

  /// Numeric view: int64 widened to double. Must not be called on kBytes.
  double AsDouble() const;

  std::string ToString() const;

  bool operator==(const Value& other) const { return v_ == other.v_; }

 private:
  std::variant<int64_t, double, std::string> v_;
};

}  // namespace adaptagg

#endif  // ADAPTAGG_SCHEMA_VALUE_H_
