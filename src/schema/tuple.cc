#include "schema/tuple.h"

#include <algorithm>

#include "common/logging.h"

namespace adaptagg {

Value TupleView::GetValue(int field) const {
  const Field& f = schema_->field(field);
  switch (f.type) {
    case DataType::kInt64:
      return Value(GetInt64(field));
    case DataType::kDouble:
      return Value(GetDouble(field));
    case DataType::kBytes:
      return Value(GetBytes(field));
  }
  return Value();
}

std::string TupleView::ToString() const {
  std::string out = "(";
  for (int i = 0; i < schema_->num_fields(); ++i) {
    if (i > 0) out += ", ";
    out += GetValue(i).ToString();
  }
  out += ")";
  return out;
}

void TupleBuffer::SetBytes(int field, const std::string& s) {
  const Field& f = schema_->field(field);
  uint8_t* dst = bytes_.data() + schema_->offset(field);
  size_t n = std::min(s.size(), static_cast<size_t>(f.width));
  std::memcpy(dst, s.data(), n);
  if (n < static_cast<size_t>(f.width)) {
    std::memset(dst + n, 0, static_cast<size_t>(f.width) - n);
  }
}

void TupleBuffer::SetValue(int field, const Value& v) {
  const Field& f = schema_->field(field);
  ADAPTAGG_CHECK(f.type == v.type())
      << "type mismatch setting field " << f.name;
  switch (f.type) {
    case DataType::kInt64:
      SetInt64(field, v.int64());
      break;
    case DataType::kDouble:
      SetDouble(field, v.dbl());
      break;
    case DataType::kBytes:
      SetBytes(field, v.bytes());
      break;
  }
}

void ExtractKey(const TupleView& tuple, const std::vector<int>& cols,
                std::vector<uint8_t>& out) {
  out.clear();
  for (int c : cols) {
    const Field& f = tuple.schema().field(c);
    const uint8_t* p = tuple.GetBytesPtr(c);
    out.insert(out.end(), p, p + f.width);
  }
}

int KeyWidth(const Schema& schema, const std::vector<int>& cols) {
  int w = 0;
  for (int c : cols) w += schema.field(c).width;
  return w;
}

}  // namespace adaptagg
