#ifndef ADAPTAGG_SCHEMA_TUPLE_H_
#define ADAPTAGG_SCHEMA_TUPLE_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "schema/schema.h"

namespace adaptagg {

/// A non-owning view over one fixed-width row laid out per `schema`.
/// The underlying bytes must outlive the view.
class TupleView {
 public:
  TupleView() = default;
  TupleView(const uint8_t* data, const Schema* schema)
      : data_(data), schema_(schema) {}

  const uint8_t* data() const { return data_; }
  const Schema& schema() const { return *schema_; }
  int size() const { return schema_->tuple_size(); }
  bool valid() const { return data_ != nullptr; }

  int64_t GetInt64(int field) const {
    int64_t v;
    std::memcpy(&v, data_ + schema_->offset(field), sizeof(v));
    return v;
  }
  double GetDouble(int field) const {
    double v;
    std::memcpy(&v, data_ + schema_->offset(field), sizeof(v));
    return v;
  }
  /// Raw bytes of field `field` (width from the schema).
  const uint8_t* GetBytesPtr(int field) const {
    return data_ + schema_->offset(field);
  }
  std::string GetBytes(int field) const {
    const Field& f = schema_->field(field);
    return std::string(reinterpret_cast<const char*>(GetBytesPtr(field)),
                       static_cast<size_t>(f.width));
  }

  /// Generic accessor materializing a Value (slow path; tests/results).
  Value GetValue(int field) const;

  std::string ToString() const;

 private:
  const uint8_t* data_ = nullptr;
  const Schema* schema_ = nullptr;
};

/// An owning, mutable row buffer for building tuples.
class TupleBuffer {
 public:
  explicit TupleBuffer(const Schema* schema)
      : schema_(schema), bytes_(static_cast<size_t>(schema->tuple_size()), 0) {}

  const Schema& schema() const { return *schema_; }
  uint8_t* data() { return bytes_.data(); }
  const uint8_t* data() const { return bytes_.data(); }
  int size() const { return schema_->tuple_size(); }

  TupleView view() const { return TupleView(bytes_.data(), schema_); }

  void SetInt64(int field, int64_t v) {
    std::memcpy(bytes_.data() + schema_->offset(field), &v, sizeof(v));
  }
  void SetDouble(int field, double v) {
    std::memcpy(bytes_.data() + schema_->offset(field), &v, sizeof(v));
  }
  /// Copies `s` into the field, truncating or zero-padding to the width.
  void SetBytes(int field, const std::string& s);

  /// Sets from a dynamically-typed Value; the value type must match the
  /// field type.
  void SetValue(int field, const Value& v);

 private:
  const Schema* schema_;
  std::vector<uint8_t> bytes_;
};

/// Extracts the concatenated bytes of `cols` from `tuple` into `out`
/// (cleared first). This is the grouping key used by the aggregation
/// hash tables: fixed width per schema, compared with memcmp.
void ExtractKey(const TupleView& tuple, const std::vector<int>& cols,
                std::vector<uint8_t>& out);

/// Total byte width of the columns `cols` in `schema`.
int KeyWidth(const Schema& schema, const std::vector<int>& cols);

}  // namespace adaptagg

#endif  // ADAPTAGG_SCHEMA_TUPLE_H_
