#include "schema/schema.h"

#include <unordered_set>

#include "common/logging.h"

namespace adaptagg {

Schema::Schema(std::vector<Field> fields) : fields_(std::move(fields)) {
  offsets_.reserve(fields_.size());
  int off = 0;
  for (auto& f : fields_) {
    if (f.type != DataType::kBytes) f.width = FixedWidth(f.type);
    ADAPTAGG_CHECK(f.width > 0) << "field " << f.name << " has width "
                                << f.width;
    offsets_.push_back(off);
    off += f.width;
  }
  tuple_size_ = off;
}

Result<Schema> Schema::Make(std::vector<Field> fields) {
  std::unordered_set<std::string> names;
  for (const auto& f : fields) {
    if (f.name.empty()) {
      return Status::InvalidArgument("schema field with empty name");
    }
    if (!names.insert(f.name).second) {
      return Status::InvalidArgument("duplicate schema field: " + f.name);
    }
    if (f.type == DataType::kBytes && f.width <= 0) {
      return Status::InvalidArgument("bytes field " + f.name +
                                     " must have positive width");
    }
  }
  return Schema(std::move(fields));
}

Result<int> Schema::FieldIndex(const std::string& name) const {
  for (int i = 0; i < num_fields(); ++i) {
    if (fields_[i].name == name) return i;
  }
  return Status::NotFound("no field named " + name);
}

bool Schema::Equals(const Schema& other) const {
  if (num_fields() != other.num_fields()) return false;
  for (int i = 0; i < num_fields(); ++i) {
    const Field& a = fields_[i];
    const Field& b = other.fields_[i];
    if (a.name != b.name || a.type != b.type || a.width != b.width) {
      return false;
    }
  }
  return true;
}

std::string Schema::ToString() const {
  std::string out = "{";
  for (int i = 0; i < num_fields(); ++i) {
    if (i > 0) out += ", ";
    out += fields_[i].name + ":" + DataTypeToString(fields_[i].type);
    if (fields_[i].type == DataType::kBytes) {
      out += "(" + std::to_string(fields_[i].width) + ")";
    }
  }
  out += "} [" + std::to_string(tuple_size_) + "B]";
  return out;
}

}  // namespace adaptagg
