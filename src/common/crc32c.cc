#include "common/crc32c.h"

#include <array>

namespace adaptagg {
namespace {

/// Byte-at-a-time lookup table for the reflected Castagnoli polynomial,
/// built once at first use.
std::array<uint32_t, 256> BuildTable() {
  constexpr uint32_t kPoly = 0x82F63B78u;
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc & 1u) != 0 ? (crc >> 1) ^ kPoly : crc >> 1;
    }
    table[i] = crc;
  }
  return table;
}

}  // namespace

uint32_t Crc32c(uint32_t crc, const uint8_t* data, size_t len) {
  static const std::array<uint32_t, 256> kTable = BuildTable();
  crc = ~crc;
  for (size_t i = 0; i < len; ++i) {
    crc = kTable[(crc ^ data[i]) & 0xFFu] ^ (crc >> 8);
  }
  return ~crc;
}

}  // namespace adaptagg
