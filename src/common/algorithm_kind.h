#ifndef ADAPTAGG_COMMON_ALGORITHM_KIND_H_
#define ADAPTAGG_COMMON_ALGORITHM_KIND_H_

#include <string>
#include <vector>

namespace adaptagg {

/// The parallel aggregation algorithms of the paper, plus Graefe's
/// optimized Two Phase ([Gra93], discussed in §3.2) as an ablation
/// baseline. Shared by the execution engine (core/) and the analytical
/// cost models (model/).
enum class AlgorithmKind {
  kCentralizedTwoPhase = 0,  ///< C-2P (§2.1)
  kTwoPhase,                 ///< 2P   (§2.2)
  kRepartitioning,           ///< Rep  (§2.3)
  kSampling,                 ///< Samp (§3.1)
  kAdaptiveTwoPhase,         ///< A-2P (§3.2)
  kAdaptiveRepartitioning,   ///< A-Rep (§3.3)
  kGraefeTwoPhase,           ///< optimized 2P, [Gra93]
  /// Two Phase with sort-based (external merge sort) aggregation in both
  /// phases instead of hashing — the [BBDW83] baseline of §1.
  kSortTwoPhase,
};

/// The paper's abbreviations: "C-2P", "2P", "Rep", "Samp", "A-2P",
/// "A-Rep", plus "Opt-2P" and "Sort-2P" for the baselines.
std::string AlgorithmKindToString(AlgorithmKind kind);

/// All implemented algorithms.
std::vector<AlgorithmKind> AllAlgorithms();

/// The five algorithms compared in the paper's implementation study
/// (Figures 8 and 9): 2P, Rep, Samp, A-2P, A-Rep.
std::vector<AlgorithmKind> Figure8Algorithms();

}  // namespace adaptagg

#endif  // ADAPTAGG_COMMON_ALGORITHM_KIND_H_
