#ifndef ADAPTAGG_COMMON_CRC32C_H_
#define ADAPTAGG_COMMON_CRC32C_H_

#include <cstddef>
#include <cstdint>

namespace adaptagg {

/// CRC-32C (Castagnoli polynomial 0x1EDC6F41, reflected 0x82F63B78), the
/// checksum used by iSCSI/ext4 and hardware-accelerated on SSE4.2. This
/// is a portable table-driven implementation: message frames are at most
/// a few KB, so software CRC is far below protocol-cost noise.
///
/// Extends `crc` with `len` bytes at `data`; pass 0 to start a fresh
/// checksum. Composable: Crc32c(Crc32c(0, a, n), b, m) checksums a||b.
uint32_t Crc32c(uint32_t crc, const uint8_t* data, size_t len);

}  // namespace adaptagg

#endif  // ADAPTAGG_COMMON_CRC32C_H_
