#include "common/simd.h"

#include <atomic>
#include <cstdlib>

#include "common/logging.h"
#include "common/random.h"

namespace adaptagg {
namespace simd {

namespace {

// The resolved dispatch, cached process-wide. kUnresolved sentinel keeps
// the whole state in one atomic; a racing first call resolves twice to
// the same value (the environment and CPUID are stable), so the extra
// store is idempotent.
constexpr int kUnresolved = -1;
std::atomic<int> g_dispatch{kUnresolved};
std::atomic<bool> g_forced_scalar{false};
std::atomic<bool> g_logged{false};

bool EnvForcesScalar() {
  const char* v = std::getenv("ADAPTAGG_FORCE_SCALAR");
  if (v == nullptr) return false;
  return v[0] != '\0' && !(v[0] == '0' && v[1] == '\0');
}

const char* KindName(DispatchKind kind) {
  switch (kind) {
    case DispatchKind::kAvx2:
      return "avx2";
    case DispatchKind::kNeon:
      return "neon";
    case DispatchKind::kScalar:
      break;
  }
  return "scalar";
}

DispatchKind Resolve() {
  int cached = g_dispatch.load(std::memory_order_acquire);
  if (cached != kUnresolved) return static_cast<DispatchKind>(cached);

  const bool forced = EnvForcesScalar();
  DispatchKind kind = DispatchKind::kScalar;
  if (!forced) {
#if defined(ADAPTAGG_SIMD_HAVE_AVX2)
    if (__builtin_cpu_supports("avx2")) kind = DispatchKind::kAvx2;
#elif defined(ADAPTAGG_SIMD_NEON)
    kind = DispatchKind::kNeon;
#endif
  }
  g_forced_scalar.store(forced, std::memory_order_release);
  g_dispatch.store(static_cast<int>(kind), std::memory_order_release);
  if (!g_logged.exchange(true, std::memory_order_acq_rel)) {
    ADAPTAGG_LOG(kInfo) << "simd dispatch resolved to " << KindName(kind)
                        << (forced ? " (ADAPTAGG_FORCE_SCALAR)" : "");
  }
  return kind;
}

}  // namespace

DispatchKind ActiveDispatch() { return Resolve(); }

const char* DispatchName() { return KindName(ActiveDispatch()); }

bool ForcedScalar() {
  Resolve();
  return g_forced_scalar.load(std::memory_order_acquire);
}

void ResetDispatchForTest() {
  g_dispatch.store(kUnresolved, std::memory_order_release);
  g_forced_scalar.store(false, std::memory_order_release);
  g_logged.store(false, std::memory_order_release);
}

void HashKeysFnvWordsScalar(const uint8_t* recs, int stride, int words,
                            int n, uint64_t basis, uint64_t prime,
                            uint64_t* out) {
  for (int i = 0; i < n; ++i) {
    const uint8_t* rec = recs + static_cast<int64_t>(i) * stride;
    uint64_t h = basis;
    for (int w = 0; w < words; ++w) {
      uint64_t v;
      std::memcpy(&v, rec + w * 8, 8);
      h = (h ^ v) * prime;
    }
    out[i] = SplitMix64(h);
  }
}

void HashKeysFnvWords(const uint8_t* recs, int stride, int words, int n,
                      uint64_t basis, uint64_t prime, uint64_t* out) {
#if defined(ADAPTAGG_SIMD_HAVE_AVX2)
  if (ActiveDispatch() == DispatchKind::kAvx2) {
    HashKeysFnvWordsAvx2(recs, stride, words, n, basis, prime, out);
    return;
  }
#endif
  HashKeysFnvWordsScalar(recs, stride, words, n, basis, prime, out);
}

void ProbeClassify8Scalar(const int64_t* buckets, uint64_t bucket_mask,
                          const uint8_t* arena, int64_t slot_width,
                          const uint8_t* recs, int stride,
                          const uint64_t* hashes, Classify8* out) {
  uint32_t hit = 0;
  uint32_t empty = 0;
  for (int i = 0; i < 8; ++i) {
    const uint64_t pos = hashes[i] & bucket_mask;
    const int64_t slot = buckets[pos];
    out->slots[i] = slot;
    if (slot < 0) {
      empty |= 1u << i;
      continue;
    }
    uint64_t slot_key;
    uint64_t probe_key;
    std::memcpy(&slot_key, arena + slot * slot_width, 8);
    std::memcpy(&probe_key, recs + static_cast<int64_t>(i) * stride, 8);
    if (slot_key == probe_key) hit |= 1u << i;
  }
  out->hit_mask = hit;
  out->empty_mask = empty;
}

ProbeClassify8Fn ResolveProbeClassify8() {
#if defined(ADAPTAGG_SIMD_HAVE_AVX2)
  if (ActiveDispatch() == DispatchKind::kAvx2) return &ProbeClassify8Avx2;
#endif
  return &ProbeClassify8Scalar;
}

void MergeMinMaxInt64Scalar(uint8_t* state, const uint8_t* other,
                            const uint8_t* is_min, int num_ops) {
  for (int op = 0; op < num_ops; ++op) {
    uint8_t* s_ptr = state + op * 16;
    const uint8_t* o_ptr = other + op * 16;
    int64_t other_seen;
    std::memcpy(&other_seen, o_ptr + 8, 8);
    if (other_seen == 0) continue;
    int64_t mine;
    int64_t theirs;
    std::memcpy(&mine, s_ptr, 8);
    std::memcpy(&theirs, o_ptr, 8);
    const bool take =
        is_min[op] != 0 ? (theirs < mine) : (theirs > mine);
    if (take) std::memcpy(s_ptr, &theirs, 8);
    const int64_t seen = 1;
    std::memcpy(s_ptr + 8, &seen, 8);
  }
}

MinMaxMergeFn ResolveMinMaxMerge() {
#if defined(ADAPTAGG_SIMD_HAVE_AVX2)
  if (ActiveDispatch() == DispatchKind::kAvx2) return &MergeMinMaxInt64Avx2;
#endif
  return &MergeMinMaxInt64Scalar;
}

}  // namespace simd
}  // namespace adaptagg
