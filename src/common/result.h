#ifndef ADAPTAGG_COMMON_RESULT_H_
#define ADAPTAGG_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace adaptagg {

/// `Result<T>` holds either a value of type T or a non-OK Status,
/// analogous to arrow::Result / absl::StatusOr. Accessing the value of an
/// errored result is a programming error (asserts in debug builds).
/// `[[nodiscard]]` mirrors Status: silently dropping a Result drops its
/// error; deliberate drops are written `(void)expr;` with a reason.
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Implicit construction from a value (the common success path).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit construction from an error status.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result(Status) requires a non-OK status");
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) = default;
  Result& operator=(Result&&) = default;

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value, or `fallback` when errored.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  std::optional<T> value_;
  Status status_;
};

/// Propagates the error of a `Result` expression, else assigns its value.
#define ADAPTAGG_ASSIGN_OR_RETURN(lhs, expr)        \
  ADAPTAGG_ASSIGN_OR_RETURN_IMPL(                   \
      ADAPTAGG_CONCAT_(_result_, __LINE__), lhs, expr)

#define ADAPTAGG_CONCAT_INNER_(a, b) a##b
#define ADAPTAGG_CONCAT_(a, b) ADAPTAGG_CONCAT_INNER_(a, b)

#define ADAPTAGG_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                                   \
  if (!tmp.ok()) return tmp.status();                  \
  lhs = std::move(tmp).value();

}  // namespace adaptagg

#endif  // ADAPTAGG_COMMON_RESULT_H_
