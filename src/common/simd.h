#ifndef ADAPTAGG_COMMON_SIMD_H_
#define ADAPTAGG_COMMON_SIMD_H_

// The repo's one and only SIMD surface: a portable wrapper over AVX2
// (x86-64) and NEON (aarch64) with a scalar fallback, selected once per
// process by runtime dispatch (simd.cc). Raw intrinsics and the
// <immintrin.h>/<arm_neon.h> includes are banned everywhere else by
// lint rule S11, so every vector kernel lives here and callers consume
// the dispatched entry points below.
//
// Contract shared by every kernel: the vector variants are bit-identical
// to their scalar counterparts (hashes decide tuple routing and result
// emit order, so a single differing lane would change observable
// output). The differential suites in tests/common and tests/agg compare
// the dispatched and forced-scalar paths byte for byte.
//
// Dispatch honors the ADAPTAGG_FORCE_SCALAR environment variable (any
// value except "" and "0" pins the scalar path), which is how CI
// exercises the fallback on AVX2 hosts.

#include <cstdint>
#include <cstring>

#if defined(__x86_64__) || defined(_M_X64)
#define ADAPTAGG_SIMD_X86 1
#include <immintrin.h>
#elif defined(__aarch64__)
#define ADAPTAGG_SIMD_NEON 1
#include <arm_neon.h>
#endif

#if defined(ADAPTAGG_SIMD_X86) && (defined(__GNUC__) || defined(__clang__))
// Per-function AVX2 code generation: kernels carry this attribute
// instead of the whole build carrying -mavx2, so a single binary holds
// both paths and the runtime dispatcher picks one.
#define ADAPTAGG_TARGET_AVX2 __attribute__((target("avx2")))
#define ADAPTAGG_SIMD_HAVE_AVX2 1
#else
#define ADAPTAGG_TARGET_AVX2
#endif

namespace adaptagg {
namespace simd {

/// Which instruction set the process-wide dispatcher resolved to.
enum class DispatchKind {
  kScalar,  ///< portable fallback (also under ADAPTAGG_FORCE_SCALAR)
  kAvx2,    ///< x86-64 with AVX2: 8-lane hash + gathered probe classify
  kNeon,    ///< aarch64: 128-bit merge kernels, scalar hash/probe
};

/// Resolved dispatch of this process (cached after the first call; the
/// first resolution also logs the decision once). Thread-safe.
DispatchKind ActiveDispatch();

/// Human-readable name of ActiveDispatch(): "scalar", "avx2", "neon".
const char* DispatchName();

/// True when the environment pinned the scalar path.
bool ForcedScalar();

/// Test-only: drops the cached dispatch (and its log-once latch) so the
/// next ActiveDispatch() re-reads ADAPTAGG_FORCE_SCALAR and the CPU.
/// Callers must be single-threaded around this.
void ResetDispatchForTest();

// ---------------------------------------------------------------------
// Batch key hashing: FNV-1a over 8-byte words + SplitMix64 finalizer,
// 8 records per step. Bit-identical to HashBytes (common/random.cc) on
// keys whose width is a multiple of 8.
// ---------------------------------------------------------------------

/// Hashes the `words * 8`-byte key prefix of `n` records laid out
/// `stride` bytes apart: per word `h = (h ^ word) * prime` starting from
/// `basis`, finalized with SplitMix64. Dispatched (AVX2: 8 lanes).
void HashKeysFnvWords(const uint8_t* recs, int stride, int words, int n,
                      uint64_t basis, uint64_t prime, uint64_t* out);

/// Scalar reference implementation of HashKeysFnvWords (also the
/// dispatched fallback); exposed for the differential tests.
void HashKeysFnvWordsScalar(const uint8_t* recs, int stride, int words,
                            int n, uint64_t basis, uint64_t prime,
                            uint64_t* out);

// ---------------------------------------------------------------------
// Probe classification: one register-wide compare of candidate slot
// keys against probe keys for an open-addressing table with 8-byte
// keys. The caller resolves each lane in record order, so insert/update
// semantics (and stop-at-full precision) stay exactly scalar.
// ---------------------------------------------------------------------

/// Classification of 8 probes against their *home* buckets.
struct Classify8 {
  /// Bucket head (slot index, -1 = empty) at each probe's home position.
  int64_t slots[8];
  /// Bit i: home bucket occupied and its slot key equals probe key i.
  /// Hits stay valid across later inserts in the same batch — linear
  /// probing never relocates an entry and keys are immutable.
  uint32_t hit_mask;
  /// Bit i: home bucket empty at classification time. Only valid until
  /// the first insert after the classify call.
  uint32_t empty_mask;
};

/// Classifies 8 probe records (8-byte key prefix, `stride` bytes apart)
/// against `buckets`/`arena`. `hashes` holds the 8 precomputed key
/// hashes contiguously. Slot indices and `slot_width` must fit in
/// uint32 (the AVX2 path forms byte offsets with a 32x32->64 multiply).
using ProbeClassify8Fn = void (*)(const int64_t* buckets,
                                  uint64_t bucket_mask,
                                  const uint8_t* arena, int64_t slot_width,
                                  const uint8_t* recs, int stride,
                                  const uint64_t* hashes, Classify8* out);

/// The dispatched classifier (resolve once per batch, then call per
/// group of 8).
ProbeClassify8Fn ResolveProbeClassify8();

/// Scalar reference classifier (also the dispatched fallback).
void ProbeClassify8Scalar(const int64_t* buckets, uint64_t bucket_mask,
                          const uint8_t* arena, int64_t slot_width,
                          const uint8_t* recs, int stride,
                          const uint64_t* hashes, Classify8* out);

// ---------------------------------------------------------------------
// Fused aggregate/merge arithmetic. The 128-bit forms need no runtime
// dispatch: SSE2 is baseline on x86-64 and NEON on aarch64, so they are
// always-inline and fold straight into the hash-table update functors.
// ---------------------------------------------------------------------

/// state[0..7] += a, state[8..15] += b as int64 — the fused COUNT+SUM
/// update ([count][sum] += [1][value]) and any other 16-byte pair add.
inline void AddInt64PairInPlace(uint8_t* state, int64_t a, int64_t b) {
#if defined(ADAPTAGG_SIMD_X86)
  __m128i s = _mm_loadu_si128(reinterpret_cast<const __m128i*>(state));
  __m128i d = _mm_set_epi64x(b, a);
  _mm_storeu_si128(reinterpret_cast<__m128i*>(state),
                   _mm_add_epi64(s, d));
#elif defined(ADAPTAGG_SIMD_NEON)
  int64x2_t s = vld1q_s64(reinterpret_cast<const int64_t*>(
      static_cast<void*>(state)));
  const int64_t d[2] = {a, b};
  vst1q_s64(reinterpret_cast<int64_t*>(static_cast<void*>(state)),
            vaddq_s64(s, vld1q_s64(d)));
#else
  // Unsigned arithmetic: accumulators wrap in two's complement on
  // overflow (same bit pattern as the vector adds), never UB.
  uint64_t x;
  uint64_t y;
  std::memcpy(&x, state, 8);
  std::memcpy(&y, state + 8, 8);
  x += static_cast<uint64_t>(a);
  y += static_cast<uint64_t>(b);
  std::memcpy(state, &x, 8);
  std::memcpy(state + 8, &y, 8);
#endif
}

/// state[w] += other[w] for `words` int64 words — the fused additive
/// partial-merge (COUNT / SUM(int64) / AVG(int64) states). Two words
/// per 128-bit step, scalar tail.
inline void AddInt64Words(uint8_t* state, const uint8_t* other,
                          int words) {
  int w = 0;
#if defined(ADAPTAGG_SIMD_X86)
  for (; w + 2 <= words; w += 2) {
    __m128i s = _mm_loadu_si128(
        reinterpret_cast<const __m128i*>(state + w * 8));
    __m128i o = _mm_loadu_si128(
        reinterpret_cast<const __m128i*>(other + w * 8));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(state + w * 8),
                     _mm_add_epi64(s, o));
  }
#elif defined(ADAPTAGG_SIMD_NEON)
  for (; w + 2 <= words; w += 2) {
    int64x2_t s = vld1q_s64(reinterpret_cast<const int64_t*>(
        static_cast<const void*>(state + w * 8)));
    int64x2_t o = vld1q_s64(reinterpret_cast<const int64_t*>(
        static_cast<const void*>(other + w * 8)));
    vst1q_s64(reinterpret_cast<int64_t*>(static_cast<void*>(state + w * 8)),
              vaddq_s64(s, o));
  }
#endif
  for (; w < words; ++w) {
    // Unsigned: wraps like the vector adds instead of overflowing UB.
    uint64_t a;
    uint64_t b;
    std::memcpy(&a, state + w * 8, 8);
    std::memcpy(&b, other + w * 8, 8);
    a += b;
    std::memcpy(state + w * 8, &a, 8);
  }
}

/// Merges `num_ops` MIN/MAX(int64) partial blocks ([extremum:int64]
/// [seen:int64] per op; `is_min[op]` = 1 for MIN) from `other` into
/// `state`, exactly like AggregateOp::MergePartial: an unseen other op
/// is skipped, the extremum compare-stores, seen is set to 1.
using MinMaxMergeFn = void (*)(uint8_t* state, const uint8_t* other,
                               const uint8_t* is_min, int num_ops);

/// The dispatched MIN/MAX merge (AVX2 hosts get a branchless 128-bit
/// compare+blend; resolve once per batch, the functor calls per record).
MinMaxMergeFn ResolveMinMaxMerge();

/// Scalar reference MIN/MAX merge (also the dispatched fallback).
void MergeMinMaxInt64Scalar(uint8_t* state, const uint8_t* other,
                            const uint8_t* is_min, int num_ops);

// ---------------------------------------------------------------------
// AVX2 kernel bodies. Header-inline so every translation unit can reach
// them through the dispatch tables without a global -mavx2; the target
// attribute scopes AVX2 code generation to exactly these functions.
// ---------------------------------------------------------------------

#if defined(ADAPTAGG_SIMD_HAVE_AVX2)

namespace internal {

/// Exact 64-bit lane-wise multiply (AVX2 has no _mm256_mullo_epi64):
/// composed from 32x32->64 multiplies, exact modulo 2^64.
ADAPTAGG_TARGET_AVX2 inline __m256i Mullo64(__m256i a, __m256i b) {
  __m256i lo = _mm256_mul_epu32(a, b);
  __m256i ah = _mm256_srli_epi64(a, 32);
  __m256i bh = _mm256_srli_epi64(b, 32);
  __m256i cross = _mm256_add_epi64(_mm256_mul_epu32(ah, b),
                                   _mm256_mul_epu32(a, bh));
  return _mm256_add_epi64(lo, _mm256_slli_epi64(cross, 32));
}

/// 4-lane SplitMix64; constants must match common/random.h.
ADAPTAGG_TARGET_AVX2 inline __m256i SplitMix64x4(__m256i x) {
  x = _mm256_add_epi64(
      x, _mm256_set1_epi64x(static_cast<long long>(0x9e3779b97f4a7c15ULL)));
  x = Mullo64(
      _mm256_xor_si256(x, _mm256_srli_epi64(x, 30)),
      _mm256_set1_epi64x(static_cast<long long>(0xbf58476d1ce4e5b9ULL)));
  x = Mullo64(
      _mm256_xor_si256(x, _mm256_srli_epi64(x, 27)),
      _mm256_set1_epi64x(static_cast<long long>(0x94d049bb133111ebULL)));
  return _mm256_xor_si256(x, _mm256_srli_epi64(x, 31));
}

/// One 8-byte key word of record `i`, word `w`.
inline long long KeyWord(const uint8_t* recs, int stride, int i, int w) {
  long long v;
  std::memcpy(&v, recs + static_cast<int64_t>(i) * stride + w * 8, 8);
  return v;
}

}  // namespace internal

/// 8-lane AVX2 body of HashKeysFnvWords (bit-identical to the scalar
/// loop; the tail of n % 8 records runs scalar).
ADAPTAGG_TARGET_AVX2 inline void HashKeysFnvWordsAvx2(
    const uint8_t* recs, int stride, int words, int n, uint64_t basis,
    uint64_t prime, uint64_t* out) {
  const __m256i prime_v =
      _mm256_set1_epi64x(static_cast<long long>(prime));
  const __m256i basis_v =
      _mm256_set1_epi64x(static_cast<long long>(basis));
  int i = 0;
  for (; i + 8 <= n; i += 8) {
    __m256i h0 = basis_v;
    __m256i h1 = basis_v;
    for (int w = 0; w < words; ++w) {
      __m256i v0 = _mm256_set_epi64x(
          internal::KeyWord(recs, stride, i + 3, w),
          internal::KeyWord(recs, stride, i + 2, w),
          internal::KeyWord(recs, stride, i + 1, w),
          internal::KeyWord(recs, stride, i + 0, w));
      __m256i v1 = _mm256_set_epi64x(
          internal::KeyWord(recs, stride, i + 7, w),
          internal::KeyWord(recs, stride, i + 6, w),
          internal::KeyWord(recs, stride, i + 5, w),
          internal::KeyWord(recs, stride, i + 4, w));
      h0 = internal::Mullo64(_mm256_xor_si256(h0, v0), prime_v);
      h1 = internal::Mullo64(_mm256_xor_si256(h1, v1), prime_v);
    }
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i),
                        internal::SplitMix64x4(h0));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i + 4),
                        internal::SplitMix64x4(h1));
  }
  if (i < n) {
    HashKeysFnvWordsScalar(recs + static_cast<int64_t>(i) * stride, stride,
                           words, n - i, basis, prime, out + i);
  }
}

/// AVX2 body of ProbeClassify8: gathers the 8 home-bucket heads, mask-
/// gathers the occupied slots' keys, and compares them against the probe
/// keys in one register. Masked-out (empty) lanes perform no memory
/// access, so the bogus offsets formed from -1 slots are never read.
ADAPTAGG_TARGET_AVX2 inline void ProbeClassify8Avx2(
    const int64_t* buckets, uint64_t bucket_mask, const uint8_t* arena,
    int64_t slot_width, const uint8_t* recs, int stride,
    const uint64_t* hashes, Classify8* out) {
  const __m256i mask_v =
      _mm256_set1_epi64x(static_cast<long long>(bucket_mask));
  const __m256i neg1 = _mm256_set1_epi64x(-1);
  const __m256i width_v =
      _mm256_set1_epi64x(static_cast<long long>(slot_width));
  uint32_t hit = 0;
  uint32_t empty = 0;
  for (int half = 0; half < 2; ++half) {
    const int base = half * 4;
    __m256i h = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(hashes + base));
    __m256i pos = _mm256_and_si256(h, mask_v);
    __m256i slot = _mm256_i64gather_epi64(
        reinterpret_cast<const long long*>(buckets), pos, 8);
    __m256i occupied = _mm256_cmpgt_epi64(slot, neg1);
    // Byte offset of each occupied slot's key: slot * slot_width. Both
    // fit in 32 bits (caller contract), so the even-lane 32x32->64
    // multiply is exact; empty lanes produce garbage that the gather
    // mask discards without touching memory.
    __m256i off = _mm256_mul_epu32(slot, width_v);
    __m256i keys = _mm256_mask_i64gather_epi64(
        _mm256_setzero_si256(), reinterpret_cast<const long long*>(arena),
        off, occupied, 1);
    __m256i probe = _mm256_set_epi64x(
        internal::KeyWord(recs, stride, base + 3, 0),
        internal::KeyWord(recs, stride, base + 2, 0),
        internal::KeyWord(recs, stride, base + 1, 0),
        internal::KeyWord(recs, stride, base + 0, 0));
    __m256i hit_v =
        _mm256_and_si256(_mm256_cmpeq_epi64(keys, probe), occupied);
    hit |= static_cast<uint32_t>(
               _mm256_movemask_pd(_mm256_castsi256_pd(hit_v)))
           << base;
    empty |= static_cast<uint32_t>(_mm256_movemask_pd(
                 _mm256_castsi256_pd(_mm256_andnot_si256(occupied, neg1))))
             << base;
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out->slots + base),
                        slot);
  }
  out->hit_mask = hit;
  out->empty_mask = empty;
}

/// AVX2 body of the MIN/MAX(int64) partial merge: per op one 128-bit
/// load pair, a 64-bit compare picking the surviving extremum, and a
/// blend — no data-dependent branch beyond the unseen-other skip.
ADAPTAGG_TARGET_AVX2 inline void MergeMinMaxInt64Avx2(
    uint8_t* state, const uint8_t* other, const uint8_t* is_min,
    int num_ops) {
  for (int op = 0; op < num_ops; ++op) {
    uint8_t* s_ptr = state + op * 16;
    const uint8_t* o_ptr = other + op * 16;
    int64_t other_seen;
    std::memcpy(&other_seen, o_ptr + 8, 8);
    if (other_seen == 0) continue;  // other side saw no tuples
    __m128i s = _mm_loadu_si128(reinterpret_cast<const __m128i*>(s_ptr));
    __m128i o = _mm_loadu_si128(reinterpret_cast<const __m128i*>(o_ptr));
    // Lane 0 holds the extremum; lane 1 (seen) is overwritten with 1
    // below, so only lane 0 of the compare matters.
    __m128i take_other =
        is_min[op] != 0 ? _mm_cmpgt_epi64(s, o) : _mm_cmpgt_epi64(o, s);
    __m128i merged = _mm_blendv_epi8(s, o, take_other);
    merged = _mm_insert_epi64(merged, 1, 1);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(s_ptr), merged);
  }
}

#endif  // ADAPTAGG_SIMD_HAVE_AVX2

}  // namespace simd
}  // namespace adaptagg

#endif  // ADAPTAGG_COMMON_SIMD_H_
