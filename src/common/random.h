#ifndef ADAPTAGG_COMMON_RANDOM_H_
#define ADAPTAGG_COMMON_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace adaptagg {

/// SplitMix64 finalizer; also used as the library's 64-bit hash mixer.
inline uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Hashes an arbitrary byte string to 64 bits (FNV-1a body + SplitMix64
/// finalizer). Deterministic across platforms and runs.
uint64_t HashBytes(const void* data, size_t len, uint64_t seed = 0);

/// Deterministic xoshiro256** PRNG. Not cryptographic; used for workload
/// generation and sampling so experiments are reproducible from a seed.
class Prng {
 public:
  explicit Prng(uint64_t seed);

  /// Uniform 64-bit value.
  uint64_t Next();

  /// Uniform in [0, n). n must be > 0. Uses rejection to avoid modulo bias.
  uint64_t NextBelow(uint64_t n);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Fisher-Yates shuffles `v` in place.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (size_t i = v.size(); i > 1; --i) {
      size_t j = static_cast<size_t>(NextBelow(i));
      std::swap(v[i - 1], v[j]);
    }
  }

  /// Samples `k` distinct indices from [0, n) without replacement
  /// (Floyd's algorithm); returned in ascending order. k must be <= n.
  std::vector<uint64_t> SampleWithoutReplacement(uint64_t n, uint64_t k);

 private:
  uint64_t s_[4];
};

}  // namespace adaptagg

#endif  // ADAPTAGG_COMMON_RANDOM_H_
