#include "common/logging.h"

#include <atomic>
#include <cstdio>
#include <mutex>

#include "common/mutex.h"

namespace adaptagg {
namespace {

std::atomic<int> g_log_level{static_cast<int>(LogLevel::kInfo)};
std::once_flag g_env_once;
// Serializes writes to stderr so concurrent node threads cannot
// interleave log lines. The guarded resource is the C stream itself,
// not a member, so there is nothing to ADAPTAGG_GUARDED_BY — lint rule
// S10 carries an allowlist entry for this mutex.
Mutex g_emit_mutex;

void InitFromEnv() {
  const char* env = std::getenv("ADAPTAGG_LOG_LEVEL");
  if (env != nullptr) {
    int v = std::atoi(env);
    if (v >= 0 && v <= 4) g_log_level.store(v, std::memory_order_relaxed);
  }
}

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kFatal:
      return "FATAL";
  }
  return "?";
}

}  // namespace

void SetLogLevel(LogLevel level) {
  g_log_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  std::call_once(g_env_once, InitFromEnv);
  return static_cast<LogLevel>(g_log_level.load(std::memory_order_relaxed));
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  const char* base = file;
  for (const char* p = file; *p != '\0'; ++p) {
    if (*p == '/') base = p + 1;
  }
  stream_ << "[" << LevelName(level) << " " << base << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  {
    MutexLock lock(&g_emit_mutex);
    std::fprintf(stderr, "%s\n", stream_.str().c_str());
    std::fflush(stderr);
  }
  if (level_ == LogLevel::kFatal) {
    std::abort();
  }
}

}  // namespace internal
}  // namespace adaptagg
