#ifndef ADAPTAGG_COMMON_LOGGING_H_
#define ADAPTAGG_COMMON_LOGGING_H_

#include <cstdlib>
#include <sstream>
#include <string>

namespace adaptagg {

/// Severity levels for the lightweight logger. kFatal aborts the process
/// after emitting the message (used for invariant violations — the library
/// does not use exceptions).
enum class LogLevel {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kFatal = 4,
};

/// Sets the global minimum level that is actually emitted (default kInfo,
/// overridable with the ADAPTAGG_LOG_LEVEL environment variable: 0-4).
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

/// Stream-style log-line collector; emits on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// Swallows the streamed expression when the level is disabled.
class NullStream {
 public:
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

}  // namespace internal

#define ADAPTAGG_LOG_ENABLED(level) \
  (::adaptagg::LogLevel::level >= ::adaptagg::GetLogLevel())

#define ADAPTAGG_LOG(level)                                              \
  if (!ADAPTAGG_LOG_ENABLED(level)) {                                    \
  } else                                                                 \
    ::adaptagg::internal::LogMessage(::adaptagg::LogLevel::level,        \
                                     __FILE__, __LINE__)                 \
        .stream()

/// Fatal check macro: aborts with a message when `cond` does not hold.
/// Used for invariants whose violation indicates a bug, never for
/// recoverable errors (those return Status).
#define ADAPTAGG_CHECK(cond)                                             \
  if (cond) {                                                            \
  } else                                                                 \
    ::adaptagg::internal::LogMessage(::adaptagg::LogLevel::kFatal,       \
                                     __FILE__, __LINE__)                 \
        .stream()                                                        \
        << "Check failed: " #cond " "

#define ADAPTAGG_DCHECK(cond) ADAPTAGG_CHECK(cond)

}  // namespace adaptagg

#endif  // ADAPTAGG_COMMON_LOGGING_H_
