#ifndef ADAPTAGG_COMMON_MUTEX_H_
#define ADAPTAGG_COMMON_MUTEX_H_

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "common/thread_annotations.h"

namespace adaptagg {

/// std::mutex wrapped as a clang Thread Safety Analysis capability.
/// Raw std::mutex carries no capability attributes, so the analysis
/// cannot see through it; all lock-protected state in src/ locks
/// through this type (adaptagg_lint rule S10 keeps it that way).
/// Zero-overhead off clang: every method is an inline forwarder.
class ADAPTAGG_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ADAPTAGG_ACQUIRE() { mu_.lock(); }
  void Unlock() ADAPTAGG_RELEASE() { mu_.unlock(); }
  bool TryLock() ADAPTAGG_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  /// BasicLockable spellings, so CondVar's condition_variable_any can
  /// release/reacquire this mutex around a wait. Engine code locks via
  /// MutexLock; these carry the same annotations, so direct use is
  /// still analyzed.
  void lock() ADAPTAGG_ACQUIRE() { mu_.lock(); }
  void unlock() ADAPTAGG_RELEASE() { mu_.unlock(); }

 private:
  std::mutex mu_;
};

/// RAII lock for Mutex: acquires in the constructor, releases in the
/// destructor. The scoped-capability annotation lets the analysis
/// track the critical section's extent.
class ADAPTAGG_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) ADAPTAGG_ACQUIRE(mu) : mu_(mu) {
    mu_->Lock();
  }
  ~MutexLock() ADAPTAGG_RELEASE() { mu_->Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* mu_;
};

/// Condition variable paired with Mutex. Waits require the mutex to be
/// held, which the analysis checks at every call site. Waits return on
/// spurious wakeups by design — always wait in a predicate loop
/// (`while (!pred()) cv.Wait(mu);`): an annotated free function, unlike
/// a predicate lambda, keeps the guarded reads inside a context the
/// analysis can verify.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

  /// Releases `mu`, blocks until notified (or spuriously), reacquires.
  void Wait(Mutex& mu) ADAPTAGG_REQUIRES(mu) { cv_.wait(mu); }

  /// Timed wait: false when `deadline` passed without a notification.
  /// The deadline is wall time by design — it bounds real blocking, so
  /// it must never be derived from modeled time.
  template <typename Clock, typename Duration>
  bool WaitUntil(Mutex& mu,
                 const std::chrono::time_point<Clock, Duration>& deadline)
      ADAPTAGG_REQUIRES(mu) {
    return cv_.wait_until(mu, deadline) == std::cv_status::no_timeout;
  }

 private:
  std::condition_variable_any cv_;
};

}  // namespace adaptagg

#endif  // ADAPTAGG_COMMON_MUTEX_H_
