#ifndef ADAPTAGG_COMMON_THREAD_ANNOTATIONS_H_
#define ADAPTAGG_COMMON_THREAD_ANNOTATIONS_H_

// Capability annotations for clang Thread Safety Analysis.
//
// These macros attach compile-time lock-discipline facts to types,
// members, and functions: which mutex guards which data, which
// functions acquire/release/require which capability. On clang the
// whole tree builds with -Werror=thread-safety (see the root
// CMakeLists.txt), so an unlocked read of a guarded member, a
// double-acquire, or a forgotten unlock is a build error, not a TSan
// coin flip. On every other compiler the macros expand to nothing.
//
// Conventions (DESIGN.md "Correctness tooling"):
//  * every mutex member has at least one ADAPTAGG_GUARDED_BY sibling —
//    adaptagg_lint rule S10 enforces this mechanically, so annotation
//    coverage cannot rot as files are added;
//  * lock-protected state is reached only through annotated accessors;
//    references to guarded data must not escape the critical section;
//  * ADAPTAGG_NO_THREAD_SAFETY_ANALYSIS is a last resort and requires
//    a written justification at the use site.
//
// The analysis only understands annotated mutex types, so the project
// locks through adaptagg::Mutex / adaptagg::MutexLock / adaptagg::CondVar
// (common/mutex.h), not raw std::mutex.

#if defined(__clang__)
#define ADAPTAGG_TSA_ATTRIBUTE_(x) __attribute__((x))
#else
#define ADAPTAGG_TSA_ATTRIBUTE_(x)  // no-op off clang
#endif

/// Marks a type as a capability ("mutex") the analysis can track.
#define ADAPTAGG_CAPABILITY(x) ADAPTAGG_TSA_ATTRIBUTE_(capability(x))

/// Marks an RAII type whose constructor acquires and destructor
/// releases a capability.
#define ADAPTAGG_SCOPED_CAPABILITY ADAPTAGG_TSA_ATTRIBUTE_(scoped_lockable)

/// Data member readable/writable only while holding `x`.
#define ADAPTAGG_GUARDED_BY(x) ADAPTAGG_TSA_ATTRIBUTE_(guarded_by(x))

/// Pointer member whose *pointee* is guarded by `x`.
#define ADAPTAGG_PT_GUARDED_BY(x) ADAPTAGG_TSA_ATTRIBUTE_(pt_guarded_by(x))

/// Function callable only with the listed capabilities held.
#define ADAPTAGG_REQUIRES(...) \
  ADAPTAGG_TSA_ATTRIBUTE_(requires_capability(__VA_ARGS__))

/// Function callable only with the listed capabilities held shared.
#define ADAPTAGG_REQUIRES_SHARED(...) \
  ADAPTAGG_TSA_ATTRIBUTE_(requires_shared_capability(__VA_ARGS__))

/// Function that acquires the listed capabilities (and does not release
/// them before returning).
#define ADAPTAGG_ACQUIRE(...) \
  ADAPTAGG_TSA_ATTRIBUTE_(acquire_capability(__VA_ARGS__))

/// Shared-acquire variant of ADAPTAGG_ACQUIRE.
#define ADAPTAGG_ACQUIRE_SHARED(...) \
  ADAPTAGG_TSA_ATTRIBUTE_(acquire_shared_capability(__VA_ARGS__))

/// Function that releases the listed capabilities.
#define ADAPTAGG_RELEASE(...) \
  ADAPTAGG_TSA_ATTRIBUTE_(release_capability(__VA_ARGS__))

/// Shared-release variant of ADAPTAGG_RELEASE.
#define ADAPTAGG_RELEASE_SHARED(...) \
  ADAPTAGG_TSA_ATTRIBUTE_(release_shared_capability(__VA_ARGS__))

/// Function that acquires the capability when it returns `b`.
#define ADAPTAGG_TRY_ACQUIRE(...) \
  ADAPTAGG_TSA_ATTRIBUTE_(try_acquire_capability(__VA_ARGS__))

/// Function that must NOT be called with the listed capabilities held
/// (deadlock prevention for self-locking entry points).
#define ADAPTAGG_EXCLUDES(...) \
  ADAPTAGG_TSA_ATTRIBUTE_(locks_excluded(__VA_ARGS__))

/// Asserts at runtime that the capability is held (analysis trusts it).
#define ADAPTAGG_ASSERT_CAPABILITY(x) \
  ADAPTAGG_TSA_ATTRIBUTE_(assert_capability(x))

/// Function returning a reference to the capability guarding its class.
#define ADAPTAGG_RETURN_CAPABILITY(x) \
  ADAPTAGG_TSA_ATTRIBUTE_(lock_returned(x))

/// Escape hatch: disables the analysis for one function. Use only with
/// a written justification at the use site (DESIGN.md).
#define ADAPTAGG_NO_THREAD_SAFETY_ANALYSIS \
  ADAPTAGG_TSA_ATTRIBUTE_(no_thread_safety_analysis)

#endif  // ADAPTAGG_COMMON_THREAD_ANNOTATIONS_H_
