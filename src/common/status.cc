#include "common/status.h"

namespace adaptagg {

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kNetworkError:
      return "NetworkError";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kDataLoss:
      return "DataLoss";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kNotImplemented:
      return "NotImplemented";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeToString(code_));
  out += ": ";
  out += message_;
  return out;
}

}  // namespace adaptagg
