#include "common/algorithm_kind.h"

namespace adaptagg {

std::string AlgorithmKindToString(AlgorithmKind kind) {
  switch (kind) {
    case AlgorithmKind::kCentralizedTwoPhase:
      return "C-2P";
    case AlgorithmKind::kTwoPhase:
      return "2P";
    case AlgorithmKind::kRepartitioning:
      return "Rep";
    case AlgorithmKind::kSampling:
      return "Samp";
    case AlgorithmKind::kAdaptiveTwoPhase:
      return "A-2P";
    case AlgorithmKind::kAdaptiveRepartitioning:
      return "A-Rep";
    case AlgorithmKind::kGraefeTwoPhase:
      return "Opt-2P";
    case AlgorithmKind::kSortTwoPhase:
      return "Sort-2P";
  }
  return "?";
}

std::vector<AlgorithmKind> AllAlgorithms() {
  return {AlgorithmKind::kCentralizedTwoPhase,
          AlgorithmKind::kTwoPhase,
          AlgorithmKind::kRepartitioning,
          AlgorithmKind::kSampling,
          AlgorithmKind::kAdaptiveTwoPhase,
          AlgorithmKind::kAdaptiveRepartitioning,
          AlgorithmKind::kGraefeTwoPhase,
          AlgorithmKind::kSortTwoPhase};
}

std::vector<AlgorithmKind> Figure8Algorithms() {
  return {AlgorithmKind::kTwoPhase, AlgorithmKind::kRepartitioning,
          AlgorithmKind::kSampling, AlgorithmKind::kAdaptiveTwoPhase,
          AlgorithmKind::kAdaptiveRepartitioning};
}

}  // namespace adaptagg
