#ifndef ADAPTAGG_COMMON_STATUS_H_
#define ADAPTAGG_COMMON_STATUS_H_

#include <string>
#include <string_view>
#include <utility>

namespace adaptagg {

/// Error codes used across the library. The project does not use C++
/// exceptions; fallible operations return `Status` (or `Result<T>`).
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kOutOfRange,
  kNotFound,
  kAlreadyExists,
  kResourceExhausted,
  kFailedPrecondition,
  kIOError,
  kNetworkError,
  kDeadlineExceeded,
  kDataLoss,
  kInternal,
  kNotImplemented,
};

/// Returns a stable human-readable name for `code` ("OK", "IOError", ...).
std::string_view StatusCodeToString(StatusCode code);

/// A RocksDB/Arrow-style status object: either OK (cheap, no allocation) or
/// an error code plus message.
///
/// `[[nodiscard]]`: a function returning Status whose result is ignored is
/// a compile-time warning (an error under ADAPTAGG_WERROR). Deliberate
/// drops must be spelled `(void)expr;` with a comment saying why ignoring
/// the error is correct.
class [[nodiscard]] Status {
 public:
  Status() = default;
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status NetworkError(std::string msg) {
    return Status(StatusCode::kNetworkError, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status DataLoss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// Propagates a non-OK status to the caller.
#define ADAPTAGG_RETURN_IF_ERROR(expr)            \
  do {                                            \
    ::adaptagg::Status _st = (expr);              \
    if (!_st.ok()) return _st;                    \
  } while (0)

}  // namespace adaptagg

#endif  // ADAPTAGG_COMMON_STATUS_H_
