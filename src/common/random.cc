#include "common/random.h"

#include <algorithm>
#include <cstring>
#include <unordered_set>

#include "common/logging.h"

namespace adaptagg {

uint64_t HashBytes(const void* data, size_t len, uint64_t seed) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  uint64_t h = 1469598103934665603ULL ^ seed;
  size_t i = 0;
  // Consume 8 bytes at a time for speed; FNV-style mixing per word.
  while (i + 8 <= len) {
    uint64_t w;
    std::memcpy(&w, p + i, 8);
    h = (h ^ w) * 1099511628211ULL;
    i += 8;
  }
  for (; i < len; ++i) {
    h = (h ^ p[i]) * 1099511628211ULL;
  }
  return SplitMix64(h);
}

namespace {
inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Prng::Prng(uint64_t seed) {
  // Seed the four xoshiro words with successive SplitMix64 outputs, per the
  // generator author's recommendation.
  uint64_t sm = seed;
  for (auto& word : s_) {
    sm += 0x9e3779b97f4a7c15ULL;
    uint64_t z = sm;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    word = z ^ (z >> 31);
  }
}

uint64_t Prng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Prng::NextBelow(uint64_t n) {
  ADAPTAGG_CHECK(n > 0) << "NextBelow(0)";
  // Rejection sampling over the largest multiple of n that fits in 2^64.
  const uint64_t threshold = (0 - n) % n;  // == 2^64 mod n
  uint64_t r;
  do {
    r = Next();
  } while (r < threshold);
  return r % n;
}

double Prng::NextDouble() {
  // 53 random mantissa bits -> [0, 1).
  return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
}

std::vector<uint64_t> Prng::SampleWithoutReplacement(uint64_t n, uint64_t k) {
  ADAPTAGG_CHECK(k <= n) << "sample size " << k << " > population " << n;
  std::unordered_set<uint64_t> chosen;
  chosen.reserve(static_cast<size_t>(k) * 2);
  // Floyd's algorithm: k iterations, each adding exactly one element.
  for (uint64_t j = n - k; j < n; ++j) {
    uint64_t t = NextBelow(j + 1);
    if (!chosen.insert(t).second) chosen.insert(j);
  }
  std::vector<uint64_t> out(chosen.begin(), chosen.end());
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace adaptagg
