#ifndef ADAPTAGG_EXEC_PROJECT_H_
#define ADAPTAGG_EXEC_PROJECT_H_

#include <vector>

#include "exec/expression.h"
#include "exec/operator.h"

namespace adaptagg {

/// One output column of a projection: `expr AS name`.
struct ProjectedColumn {
  std::string name;
  ExprPtr expr;
  /// Width for bytes-typed outputs (ignored for numerics).
  int width = 8;
};

/// Computes expressions over the child's rows, producing rows of a new
/// schema (derived from the expressions' validated types). Rows are
/// materialized into an internal buffer valid until the next Next().
class ProjectOperator : public RowOperator {
 public:
  /// Validates all expressions against `child->schema()` and derives the
  /// output schema.
  static Result<RowOperatorPtr> Make(RowOperatorPtr child,
                                     std::vector<ProjectedColumn> columns);

  const Schema& schema() const override { return out_schema_; }
  Status Open() override { return child_->Open(); }
  TupleView Next() override;
  Status Close() override { return child_->Close(); }
  std::string name() const override { return "project"; }
  int64_t rows_produced() const override { return rows_; }

 private:
  ProjectOperator(RowOperatorPtr child,
                  std::vector<ProjectedColumn> columns, Schema out_schema);

  RowOperatorPtr child_;
  std::vector<ProjectedColumn> columns_;
  Schema out_schema_;
  std::unique_ptr<TupleBuffer> buffer_;
  int64_t rows_ = 0;
};

}  // namespace adaptagg

#endif  // ADAPTAGG_EXEC_PROJECT_H_
