#include "exec/scan.h"

namespace adaptagg {

ScanOperator::ScanOperator(const HeapFile* file, CostClock* clock,
                           const SystemParams* params)
    : file_(file), clock_(clock), params_(params) {
  if (params_ != nullptr) {
    select_cost_ = params_->t_r() + params_->t_w();
  }
}

void ScanOperator::ChargeDiskDelta() {
  if (clock_ == nullptr || params_ == nullptr) return;
  const DiskStats& now = file_->disk()->stats();
  int64_t seq = (now.pages_read_seq - last_disk_.pages_read_seq) +
                (now.pages_written - last_disk_.pages_written);
  int64_t rand = now.pages_read_rand - last_disk_.pages_read_rand;
  if (seq > 0) clock_->AddIo(static_cast<double>(seq) * params_->io_seq_s);
  if (rand > 0) {
    clock_->AddIo(static_cast<double>(rand) * params_->io_rand_s);
  }
  last_disk_ = now;
}

Status ScanOperator::Open() {
  scanner_ = std::make_unique<HeapFileScanner>(file_);
  last_disk_ = file_->disk()->stats();
  rows_ = 0;
  return Status::OK();
}

TupleView ScanOperator::Next() {
  int64_t pages_before = scanner_->pages_read();
  TupleView t = scanner_->Next();
  if (scanner_->pages_read() != pages_before) {
    ChargeDiskDelta();
  }
  if (t.valid()) {
    if (clock_ != nullptr) clock_->AddCpu(select_cost_);
    ++rows_;
  }
  return t;
}

int ScanOperator::NextBatch(TupleView* out, int max) {
  if (max <= 0) return 0;
  run_scratch_.resize(static_cast<size_t>(max));
  int64_t pages_before = scanner_->pages_read();
  int got = scanner_->NextRun(run_scratch_.data(), max);
  if (scanner_->pages_read() != pages_before) {
    ChargeDiskDelta();
  }
  const Schema* schema = &file_->schema();
  for (int i = 0; i < got; ++i) {
    out[i] = TupleView(run_scratch_[i], schema);
  }
  if (got > 0) {
    if (clock_ != nullptr) {
      clock_->AddCpu(static_cast<double>(got) * select_cost_);
    }
    rows_ += got;
  }
  return got;
}

Status ScanOperator::Close() {
  ChargeDiskDelta();
  Status st = scanner_ != nullptr ? scanner_->status() : Status::OK();
  scanner_.reset();
  return st;
}

}  // namespace adaptagg
