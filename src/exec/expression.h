#ifndef ADAPTAGG_EXEC_EXPRESSION_H_
#define ADAPTAGG_EXEC_EXPRESSION_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "schema/tuple.h"

namespace adaptagg {

/// A scalar expression over one row: column references, literals,
/// arithmetic, comparisons, and boolean connectives. Used for WHERE
/// predicates (over the input schema) and HAVING predicates (over the
/// aggregation's final schema), §2 of the paper.
///
/// Expressions are immutable trees shared via shared_ptr; `Validate`
/// type-checks against a schema once, `Eval` is then called per row.
class Expr {
 public:
  virtual ~Expr() = default;

  /// Type-checks the expression against `schema` and returns its result
  /// type. Must be called (and succeed) before Eval.
  virtual Result<DataType> Validate(const Schema& schema) const = 0;

  /// Evaluates on one row. Behavior is undefined unless Validate
  /// succeeded for the row's schema.
  virtual Value Eval(const TupleView& row) const = 0;

  virtual std::string ToString() const = 0;
};

using ExprPtr = std::shared_ptr<const Expr>;

/// Comparison operators.
enum class CmpOp { kEq, kNe, kLt, kLe, kGt, kGe };

std::string CmpOpToString(CmpOp op);

/// Arithmetic operators (numeric operands; int64 op int64 -> int64,
/// anything involving double -> double).
enum class ArithOp { kAdd, kSub, kMul, kDiv };

std::string ArithOpToString(ArithOp op);

// --- factories ---

/// Reference to column `index` of the schema.
ExprPtr Col(int index);
/// Reference by name (resolved at Validate time against the schema it is
/// validated with; prefer Col(index) on hot paths).
ExprPtr ColNamed(std::string name);
/// Literal constant.
ExprPtr Lit(Value v);
inline ExprPtr Lit(int64_t v) { return Lit(Value(v)); }
inline ExprPtr Lit(double v) { return Lit(Value(v)); }
inline ExprPtr LitBytes(std::string v) { return Lit(Value(std::move(v))); }

/// lhs <op> rhs -> int64 0/1. Numeric operands compare numerically
/// (int64 widened to double when mixed); bytes compare lexicographically
/// against bytes.
ExprPtr Cmp(CmpOp op, ExprPtr lhs, ExprPtr rhs);
ExprPtr Eq(ExprPtr lhs, ExprPtr rhs);
ExprPtr Lt(ExprPtr lhs, ExprPtr rhs);
ExprPtr Le(ExprPtr lhs, ExprPtr rhs);
ExprPtr Gt(ExprPtr lhs, ExprPtr rhs);
ExprPtr Ge(ExprPtr lhs, ExprPtr rhs);
ExprPtr Ne(ExprPtr lhs, ExprPtr rhs);

/// Boolean connectives over int64 0/1 operands.
ExprPtr And(ExprPtr lhs, ExprPtr rhs);
ExprPtr Or(ExprPtr lhs, ExprPtr rhs);
ExprPtr Not(ExprPtr operand);

/// Arithmetic.
ExprPtr Arith(ArithOp op, ExprPtr lhs, ExprPtr rhs);
ExprPtr Add(ExprPtr lhs, ExprPtr rhs);
ExprPtr Sub(ExprPtr lhs, ExprPtr rhs);
ExprPtr Mul(ExprPtr lhs, ExprPtr rhs);
ExprPtr Div(ExprPtr lhs, ExprPtr rhs);

/// Evaluates a validated boolean predicate on a row: nonzero = true.
bool EvalPredicate(const Expr& expr, const TupleView& row);

/// Validates `expr` as a predicate over `schema`: must type-check to a
/// numeric type (0 = false).
Status ValidatePredicate(const Expr& expr, const Schema& schema);

}  // namespace adaptagg

#endif  // ADAPTAGG_EXEC_EXPRESSION_H_
