#ifndef ADAPTAGG_EXEC_SELECT_H_
#define ADAPTAGG_EXEC_SELECT_H_

#include "exec/expression.h"
#include "exec/operator.h"
#include "sim/cost_clock.h"
#include "sim/params.h"

namespace adaptagg {

/// Filters the child's rows by a predicate (the WHERE clause). Charges
/// t_r per evaluated row when given a clock (reading the tuple to test
/// it; the paper folds predicate evaluation into per-tuple CPU work).
///
/// The predicate must have been validated against the child schema
/// (Make enforces this).
class SelectOperator : public RowOperator {
 public:
  /// Validates `predicate` against `child->schema()`.
  static Result<RowOperatorPtr> Make(RowOperatorPtr child,
                                     ExprPtr predicate, CostClock* clock,
                                     const SystemParams* params);

  const Schema& schema() const override { return child_->schema(); }
  Status Open() override { return child_->Open(); }
  TupleView Next() override;
  int NextBatch(TupleView* out, int max) override;
  Status Close() override { return child_->Close(); }
  std::string name() const override {
    return "select(" + predicate_->ToString() + ")";
  }
  int64_t rows_produced() const override { return rows_; }

  /// Rows evaluated (passed + filtered).
  int64_t rows_seen() const { return seen_; }

 private:
  SelectOperator(RowOperatorPtr child, ExprPtr predicate, CostClock* clock,
                 const SystemParams* params);

  RowOperatorPtr child_;
  ExprPtr predicate_;
  CostClock* clock_;
  double eval_cost_ = 0;
  int64_t rows_ = 0;
  int64_t seen_ = 0;
};

}  // namespace adaptagg

#endif  // ADAPTAGG_EXEC_SELECT_H_
