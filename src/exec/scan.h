#ifndef ADAPTAGG_EXEC_SCAN_H_
#define ADAPTAGG_EXEC_SCAN_H_

#include <vector>

#include "exec/operator.h"
#include "sim/cost_clock.h"
#include "sim/params.h"
#include "storage/heap_file.h"

namespace adaptagg {

/// Sequential scan of a heap file. When given a clock, charges the
/// paper's costs: one sequential page I/O per page read (via the disk's
/// counters) and the select cost t_r + t_w per tuple (reading the tuple
/// and copying it off the data page).
class ScanOperator : public RowOperator {
 public:
  /// `file` must outlive the operator. `clock`/`params` may be null for
  /// cost-free scanning (tests, loading).
  ScanOperator(const HeapFile* file, CostClock* clock,
               const SystemParams* params);

  const Schema& schema() const override { return file_->schema(); }
  Status Open() override;
  TupleView Next() override;
  int NextBatch(TupleView* out, int max) override;
  Status Close() override;
  std::string name() const override { return "scan"; }
  int64_t rows_produced() const override { return rows_; }

 private:
  void ChargeDiskDelta();

  const HeapFile* file_;
  CostClock* clock_;
  const SystemParams* params_;
  std::unique_ptr<HeapFileScanner> scanner_;
  std::vector<const uint8_t*> run_scratch_;
  DiskStats last_disk_;
  double select_cost_ = 0;
  int64_t rows_ = 0;
};

}  // namespace adaptagg

#endif  // ADAPTAGG_EXEC_SCAN_H_
