#include "exec/expression.h"

#include <atomic>
#include <cstring>

#include "common/logging.h"

namespace adaptagg {

std::string CmpOpToString(CmpOp op) {
  switch (op) {
    case CmpOp::kEq:
      return "=";
    case CmpOp::kNe:
      return "<>";
    case CmpOp::kLt:
      return "<";
    case CmpOp::kLe:
      return "<=";
    case CmpOp::kGt:
      return ">";
    case CmpOp::kGe:
      return ">=";
  }
  return "?";
}

std::string ArithOpToString(ArithOp op) {
  switch (op) {
    case ArithOp::kAdd:
      return "+";
    case ArithOp::kSub:
      return "-";
    case ArithOp::kMul:
      return "*";
    case ArithOp::kDiv:
      return "/";
  }
  return "?";
}

namespace {

bool IsNumeric(DataType t) {
  return t == DataType::kInt64 || t == DataType::kDouble;
}

class ColExpr : public Expr {
 public:
  explicit ColExpr(int index) : index_(index) {}

  Result<DataType> Validate(const Schema& schema) const override {
    if (index_ < 0 || index_ >= schema.num_fields()) {
      return Status::InvalidArgument("column index " +
                                     std::to_string(index_) +
                                     " out of range");
    }
    return schema.field(index_).type;
  }

  Value Eval(const TupleView& row) const override {
    return row.GetValue(index_);
  }

  std::string ToString() const override {
    return "$" + std::to_string(index_);
  }

 private:
  int index_;
};

class ColNamedExpr : public Expr {
 public:
  explicit ColNamedExpr(std::string name) : name_(std::move(name)) {}

  Result<DataType> Validate(const Schema& schema) const override {
    ADAPTAGG_ASSIGN_OR_RETURN(int idx, schema.FieldIndex(name_));
    // Cache the resolution for Eval; re-validating against a different
    // schema re-resolves. Atomic because a shared predicate tree is
    // re-validated by every node thread (SelectOperator::Make) while
    // peers may already be evaluating it: all writers store the same
    // value for a given schema, but the accesses still need ordering.
    index_.store(idx, std::memory_order_release);
    return schema.field(idx).type;
  }

  Value Eval(const TupleView& row) const override {
    int idx = index_.load(std::memory_order_acquire);
    ADAPTAGG_DCHECK(idx >= 0) << "Eval before Validate";
    return row.GetValue(idx);
  }

  std::string ToString() const override { return name_; }

 private:
  std::string name_;
  mutable std::atomic<int> index_{-1};
};

class LitExpr : public Expr {
 public:
  explicit LitExpr(Value v) : value_(std::move(v)) {}

  Result<DataType> Validate(const Schema&) const override {
    return value_.type();
  }

  Value Eval(const TupleView&) const override { return value_; }

  std::string ToString() const override {
    if (value_.is_bytes()) return "'" + value_.ToString() + "'";
    return value_.ToString();
  }

 private:
  Value value_;
};

class CmpExpr : public Expr {
 public:
  CmpExpr(CmpOp op, ExprPtr lhs, ExprPtr rhs)
      : op_(op), lhs_(std::move(lhs)), rhs_(std::move(rhs)) {}

  Result<DataType> Validate(const Schema& schema) const override {
    ADAPTAGG_ASSIGN_OR_RETURN(DataType lt, lhs_->Validate(schema));
    ADAPTAGG_ASSIGN_OR_RETURN(DataType rt, rhs_->Validate(schema));
    bool both_numeric = IsNumeric(lt) && IsNumeric(rt);
    bool both_bytes = lt == DataType::kBytes && rt == DataType::kBytes;
    if (!both_numeric && !both_bytes) {
      return Status::InvalidArgument("comparison operands mismatch: " +
                                     ToString());
    }
    return DataType::kInt64;
  }

  Value Eval(const TupleView& row) const override {
    Value l = lhs_->Eval(row);
    Value r = rhs_->Eval(row);
    int cmp;
    if (l.is_bytes()) {
      cmp = l.bytes().compare(r.bytes());
    } else if (l.is_int64() && r.is_int64()) {
      cmp = l.int64() < r.int64() ? -1 : (l.int64() > r.int64() ? 1 : 0);
    } else {
      double ld = l.AsDouble(), rd = r.AsDouble();
      cmp = ld < rd ? -1 : (ld > rd ? 1 : 0);
    }
    bool out = false;
    switch (op_) {
      case CmpOp::kEq:
        out = cmp == 0;
        break;
      case CmpOp::kNe:
        out = cmp != 0;
        break;
      case CmpOp::kLt:
        out = cmp < 0;
        break;
      case CmpOp::kLe:
        out = cmp <= 0;
        break;
      case CmpOp::kGt:
        out = cmp > 0;
        break;
      case CmpOp::kGe:
        out = cmp >= 0;
        break;
    }
    return Value(int64_t{out ? 1 : 0});
  }

  std::string ToString() const override {
    return "(" + lhs_->ToString() + " " + CmpOpToString(op_) + " " +
           rhs_->ToString() + ")";
  }

 private:
  CmpOp op_;
  ExprPtr lhs_, rhs_;
};

class LogicalExpr : public Expr {
 public:
  enum class Kind { kAnd, kOr, kNot };

  LogicalExpr(Kind kind, ExprPtr lhs, ExprPtr rhs)
      : kind_(kind), lhs_(std::move(lhs)), rhs_(std::move(rhs)) {}

  Result<DataType> Validate(const Schema& schema) const override {
    ADAPTAGG_ASSIGN_OR_RETURN(DataType lt, lhs_->Validate(schema));
    if (!IsNumeric(lt)) {
      return Status::InvalidArgument("boolean operand must be numeric: " +
                                     lhs_->ToString());
    }
    if (rhs_ != nullptr) {
      ADAPTAGG_ASSIGN_OR_RETURN(DataType rt, rhs_->Validate(schema));
      if (!IsNumeric(rt)) {
        return Status::InvalidArgument(
            "boolean operand must be numeric: " + rhs_->ToString());
      }
    }
    return DataType::kInt64;
  }

  Value Eval(const TupleView& row) const override {
    bool l = lhs_->Eval(row).AsDouble() != 0;
    switch (kind_) {
      case Kind::kNot:
        return Value(int64_t{l ? 0 : 1});
      case Kind::kAnd:
        // Short-circuit.
        if (!l) return Value(int64_t{0});
        return Value(int64_t{rhs_->Eval(row).AsDouble() != 0 ? 1 : 0});
      case Kind::kOr:
        if (l) return Value(int64_t{1});
        return Value(int64_t{rhs_->Eval(row).AsDouble() != 0 ? 1 : 0});
    }
    return Value(int64_t{0});
  }

  std::string ToString() const override {
    switch (kind_) {
      case Kind::kNot:
        return "(NOT " + lhs_->ToString() + ")";
      case Kind::kAnd:
        return "(" + lhs_->ToString() + " AND " + rhs_->ToString() + ")";
      case Kind::kOr:
        return "(" + lhs_->ToString() + " OR " + rhs_->ToString() + ")";
    }
    return "?";
  }

 private:
  Kind kind_;
  ExprPtr lhs_, rhs_;
};

class ArithExpr : public Expr {
 public:
  ArithExpr(ArithOp op, ExprPtr lhs, ExprPtr rhs)
      : op_(op), lhs_(std::move(lhs)), rhs_(std::move(rhs)) {}

  Result<DataType> Validate(const Schema& schema) const override {
    ADAPTAGG_ASSIGN_OR_RETURN(DataType lt, lhs_->Validate(schema));
    ADAPTAGG_ASSIGN_OR_RETURN(DataType rt, rhs_->Validate(schema));
    if (!IsNumeric(lt) || !IsNumeric(rt)) {
      return Status::InvalidArgument("arithmetic needs numeric operands: " +
                                     ToString());
    }
    // Division always produces double; otherwise int64 unless widened.
    if (op_ == ArithOp::kDiv || lt == DataType::kDouble ||
        rt == DataType::kDouble) {
      return DataType::kDouble;
    }
    return DataType::kInt64;
  }

  Value Eval(const TupleView& row) const override {
    Value l = lhs_->Eval(row);
    Value r = rhs_->Eval(row);
    if (op_ != ArithOp::kDiv && l.is_int64() && r.is_int64()) {
      switch (op_) {
        case ArithOp::kAdd:
          return Value(l.int64() + r.int64());
        case ArithOp::kSub:
          return Value(l.int64() - r.int64());
        case ArithOp::kMul:
          return Value(l.int64() * r.int64());
        case ArithOp::kDiv:
          break;
      }
    }
    double ld = l.AsDouble(), rd = r.AsDouble();
    switch (op_) {
      case ArithOp::kAdd:
        return Value(ld + rd);
      case ArithOp::kSub:
        return Value(ld - rd);
      case ArithOp::kMul:
        return Value(ld * rd);
      case ArithOp::kDiv:
        return Value(rd == 0 ? 0.0 : ld / rd);
    }
    return Value(0.0);
  }

  std::string ToString() const override {
    return "(" + lhs_->ToString() + " " + ArithOpToString(op_) + " " +
           rhs_->ToString() + ")";
  }

 private:
  ArithOp op_;
  ExprPtr lhs_, rhs_;
};

}  // namespace

ExprPtr Col(int index) { return std::make_shared<ColExpr>(index); }
ExprPtr ColNamed(std::string name) {
  return std::make_shared<ColNamedExpr>(std::move(name));
}
ExprPtr Lit(Value v) { return std::make_shared<LitExpr>(std::move(v)); }

ExprPtr Cmp(CmpOp op, ExprPtr lhs, ExprPtr rhs) {
  return std::make_shared<CmpExpr>(op, std::move(lhs), std::move(rhs));
}
ExprPtr Eq(ExprPtr lhs, ExprPtr rhs) {
  return Cmp(CmpOp::kEq, std::move(lhs), std::move(rhs));
}
ExprPtr Ne(ExprPtr lhs, ExprPtr rhs) {
  return Cmp(CmpOp::kNe, std::move(lhs), std::move(rhs));
}
ExprPtr Lt(ExprPtr lhs, ExprPtr rhs) {
  return Cmp(CmpOp::kLt, std::move(lhs), std::move(rhs));
}
ExprPtr Le(ExprPtr lhs, ExprPtr rhs) {
  return Cmp(CmpOp::kLe, std::move(lhs), std::move(rhs));
}
ExprPtr Gt(ExprPtr lhs, ExprPtr rhs) {
  return Cmp(CmpOp::kGt, std::move(lhs), std::move(rhs));
}
ExprPtr Ge(ExprPtr lhs, ExprPtr rhs) {
  return Cmp(CmpOp::kGe, std::move(lhs), std::move(rhs));
}

ExprPtr And(ExprPtr lhs, ExprPtr rhs) {
  return std::make_shared<LogicalExpr>(LogicalExpr::Kind::kAnd,
                                       std::move(lhs), std::move(rhs));
}
ExprPtr Or(ExprPtr lhs, ExprPtr rhs) {
  return std::make_shared<LogicalExpr>(LogicalExpr::Kind::kOr,
                                       std::move(lhs), std::move(rhs));
}
ExprPtr Not(ExprPtr operand) {
  return std::make_shared<LogicalExpr>(LogicalExpr::Kind::kNot,
                                       std::move(operand), nullptr);
}

ExprPtr Arith(ArithOp op, ExprPtr lhs, ExprPtr rhs) {
  return std::make_shared<ArithExpr>(op, std::move(lhs), std::move(rhs));
}
ExprPtr Add(ExprPtr lhs, ExprPtr rhs) {
  return Arith(ArithOp::kAdd, std::move(lhs), std::move(rhs));
}
ExprPtr Sub(ExprPtr lhs, ExprPtr rhs) {
  return Arith(ArithOp::kSub, std::move(lhs), std::move(rhs));
}
ExprPtr Mul(ExprPtr lhs, ExprPtr rhs) {
  return Arith(ArithOp::kMul, std::move(lhs), std::move(rhs));
}
ExprPtr Div(ExprPtr lhs, ExprPtr rhs) {
  return Arith(ArithOp::kDiv, std::move(lhs), std::move(rhs));
}

bool EvalPredicate(const Expr& expr, const TupleView& row) {
  return expr.Eval(row).AsDouble() != 0;
}

Status ValidatePredicate(const Expr& expr, const Schema& schema) {
  ADAPTAGG_ASSIGN_OR_RETURN(DataType t, expr.Validate(schema));
  if (t != DataType::kInt64 && t != DataType::kDouble) {
    return Status::InvalidArgument("predicate must be numeric: " +
                                   expr.ToString());
  }
  return Status::OK();
}

}  // namespace adaptagg
