#include "exec/project.h"

namespace adaptagg {

ProjectOperator::ProjectOperator(RowOperatorPtr child,
                                 std::vector<ProjectedColumn> columns,
                                 Schema out_schema)
    : child_(std::move(child)),
      columns_(std::move(columns)),
      out_schema_(std::move(out_schema)),
      buffer_(std::make_unique<TupleBuffer>(&out_schema_)) {}

Result<RowOperatorPtr> ProjectOperator::Make(
    RowOperatorPtr child, std::vector<ProjectedColumn> columns) {
  if (columns.empty()) {
    return Status::InvalidArgument("projection needs columns");
  }
  std::vector<Field> fields;
  for (const auto& col : columns) {
    if (col.expr == nullptr) {
      return Status::InvalidArgument("projection column without expr: " +
                                     col.name);
    }
    ADAPTAGG_ASSIGN_OR_RETURN(DataType type,
                              col.expr->Validate(child->schema()));
    Field f;
    f.name = col.name;
    f.type = type;
    f.width = type == DataType::kBytes ? col.width : 8;
    fields.push_back(std::move(f));
  }
  ADAPTAGG_ASSIGN_OR_RETURN(Schema out, Schema::Make(std::move(fields)));
  return RowOperatorPtr(new ProjectOperator(std::move(child),
                                            std::move(columns),
                                            std::move(out)));
}

TupleView ProjectOperator::Next() {
  TupleView in = child_->Next();
  if (!in.valid()) return in;
  // The buffer references the operator's own schema object, so the
  // produced views stay valid until the next call.
  for (size_t i = 0; i < columns_.size(); ++i) {
    buffer_->SetValue(static_cast<int>(i), columns_[i].expr->Eval(in));
  }
  ++rows_;
  return buffer_->view();
}

}  // namespace adaptagg
