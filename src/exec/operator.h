#ifndef ADAPTAGG_EXEC_OPERATOR_H_
#define ADAPTAGG_EXEC_OPERATOR_H_

#include <memory>
#include <string>

#include "common/result.h"
#include "schema/tuple.h"

namespace adaptagg {

/// A Volcano-style row operator: the paper assumes a Gamma-like
/// architecture where "the data flows through the operators in a
/// pipelined fashion" (§2). Aggregation algorithms consume their node's
/// local input through this interface, so the child can be a bare scan,
/// a scan+select (WHERE clause), or any other pipeline.
///
/// Protocol: Open() once, then Next() until an invalid view, then
/// Close(). Views returned by Next() are valid until the following
/// Next()/Close() call.
class RowOperator {
 public:
  virtual ~RowOperator() = default;

  virtual const Schema& schema() const = 0;

  virtual Status Open() = 0;

  /// Next row, or an invalid view at end of stream.
  virtual TupleView Next() = 0;

  /// Fills `out` with up to `max` rows; returns the count, 0 at end of
  /// stream. All returned views stay valid together until the next
  /// Next()/NextBatch()/Close() call (a stronger guarantee than Next(),
  /// which batch consumers rely on to gather a page worth of rows). The
  /// base implementation yields one row per call; operators that can do
  /// better (scans over paged storage, filters) override it.
  virtual int NextBatch(TupleView* out, int max) {
    if (max <= 0) return 0;
    TupleView t = Next();
    if (!t.valid()) return 0;
    out[0] = t;
    return 1;
  }

  virtual Status Close() = 0;

  virtual std::string name() const = 0;

  /// Rows produced so far (diagnostics).
  virtual int64_t rows_produced() const = 0;
};

using RowOperatorPtr = std::unique_ptr<RowOperator>;

}  // namespace adaptagg

#endif  // ADAPTAGG_EXEC_OPERATOR_H_
