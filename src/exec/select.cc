#include "exec/select.h"

namespace adaptagg {

SelectOperator::SelectOperator(RowOperatorPtr child, ExprPtr predicate,
                               CostClock* clock, const SystemParams* params)
    : child_(std::move(child)),
      predicate_(std::move(predicate)),
      clock_(clock) {
  if (params != nullptr) {
    eval_cost_ = params->t_r();
  }
}

Result<RowOperatorPtr> SelectOperator::Make(RowOperatorPtr child,
                                            ExprPtr predicate,
                                            CostClock* clock,
                                            const SystemParams* params) {
  if (predicate == nullptr) {
    return Status::InvalidArgument("select needs a predicate");
  }
  ADAPTAGG_RETURN_IF_ERROR(
      ValidatePredicate(*predicate, child->schema()));
  return RowOperatorPtr(new SelectOperator(std::move(child),
                                           std::move(predicate), clock,
                                           params));
}

TupleView SelectOperator::Next() {
  while (true) {
    TupleView t = child_->Next();
    if (!t.valid()) return t;
    ++seen_;
    if (clock_ != nullptr) clock_->AddCpu(eval_cost_);
    if (EvalPredicate(*predicate_, t)) {
      ++rows_;
      return t;
    }
  }
}

int SelectOperator::NextBatch(TupleView* out, int max) {
  // Filter each child batch in place; survivors keep pointing into the
  // child's storage, which stays valid until we call the child again —
  // and we only do that after returning a non-empty batch.
  while (true) {
    int got = child_->NextBatch(out, max);
    if (got == 0) return 0;
    seen_ += got;
    if (clock_ != nullptr) {
      clock_->AddCpu(static_cast<double>(got) * eval_cost_);
    }
    int kept = 0;
    for (int i = 0; i < got; ++i) {
      if (EvalPredicate(*predicate_, out[i])) {
        out[kept++] = out[i];
      }
    }
    if (kept > 0) {
      rows_ += kept;
      return kept;
    }
  }
}

}  // namespace adaptagg
