#include "exec/select.h"

namespace adaptagg {

SelectOperator::SelectOperator(RowOperatorPtr child, ExprPtr predicate,
                               CostClock* clock, const SystemParams* params)
    : child_(std::move(child)),
      predicate_(std::move(predicate)),
      clock_(clock) {
  if (params != nullptr) {
    eval_cost_ = params->t_r();
  }
}

Result<RowOperatorPtr> SelectOperator::Make(RowOperatorPtr child,
                                            ExprPtr predicate,
                                            CostClock* clock,
                                            const SystemParams* params) {
  if (predicate == nullptr) {
    return Status::InvalidArgument("select needs a predicate");
  }
  ADAPTAGG_RETURN_IF_ERROR(
      ValidatePredicate(*predicate, child->schema()));
  return RowOperatorPtr(new SelectOperator(std::move(child),
                                           std::move(predicate), clock,
                                           params));
}

TupleView SelectOperator::Next() {
  while (true) {
    TupleView t = child_->Next();
    if (!t.valid()) return t;
    ++seen_;
    if (clock_ != nullptr) clock_->AddCpu(eval_cost_);
    if (EvalPredicate(*predicate_, t)) {
      ++rows_;
      return t;
    }
  }
}

}  // namespace adaptagg
