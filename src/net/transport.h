#ifndef ADAPTAGG_NET_TRANSPORT_H_
#define ADAPTAGG_NET_TRANSPORT_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "net/message.h"

namespace adaptagg {

/// One node's endpoint of the cluster interconnect. Implementations:
/// InprocTransport (shared-memory channels; the default substrate) and
/// TcpTransport (real loopback sockets, full mesh). Nodes may send to
/// themselves; delivery between a given pair of nodes is in order.
///
/// Send is callable from the owning node's thread; Recv/TryRecv only from
/// the owning node's thread.
class Transport {
 public:
  virtual ~Transport() = default;

  virtual int node_id() const = 0;
  virtual int num_nodes() const = 0;

  /// Enqueues `msg` for node `to`. Never blocks on the receiver.
  virtual Status Send(int to, Message msg) = 0;

  /// Blocks until a message arrives.
  virtual Result<Message> Recv() = 0;

  /// Blocks until a message arrives or `timeout_s` seconds elapse, in
  /// which case it returns kDeadlineExceeded. A negative timeout blocks
  /// forever. Engine code above the transport layer must use this (or
  /// TryRecv) instead of Recv, so a lost message can never hang a run.
  virtual Result<Message> RecvWithDeadline(double timeout_s) = 0;

  /// Non-blocking receive.
  virtual std::optional<Message> TryRecv() = 0;

  /// Deepest this node's inbox has ever been (backlog high-water mark).
  /// Transports without inbox visibility report 0.
  virtual size_t inbox_high_water() const { return 0; }

  /// Inbound frames this endpoint rejected as corrupt or malformed
  /// (checksum mismatch, bad type). Always 0 for in-process transports.
  virtual uint64_t frames_rejected() const { return 0; }

  /// True when every endpoint of this mesh lives in one address space
  /// (in-process channels), so nodes can share a merge table directly.
  /// Wrapping transports must forward this; socket meshes report false.
  virtual bool shared_memory() const { return false; }

  /// Puts the endpoint into fail-stop mode: every later Send is silently
  /// swallowed, as if the node's process died. Used by fault injection to
  /// model crashes realistically (a dead node notifies nobody); a plain
  /// transport ignores it.
  virtual void SimulateFailStop() {}
};

/// Creates an in-process mesh of `n` transports sharing channels.
std::vector<std::unique_ptr<Transport>> MakeInprocMesh(int n);

/// Creates a TCP loopback mesh of `n` transports. Every pair of nodes is
/// connected through 127.0.0.1 sockets; background reader threads feed
/// each node's inbox. `base_port` must leave `n` consecutive free ports.
Result<std::vector<std::unique_ptr<Transport>>> MakeTcpMesh(int n,
                                                            int base_port);

}  // namespace adaptagg

#endif  // ADAPTAGG_NET_TRANSPORT_H_
