#ifndef ADAPTAGG_NET_NETWORK_MODEL_H_
#define ADAPTAGG_NET_NETWORK_MODEL_H_

#include <atomic>

#include "net/message.h"
#include "sim/cost_clock.h"
#include "sim/params.h"

namespace adaptagg {

/// Charges the paper's messaging costs onto node clocks (§2, Table 1):
///
///  * protocol cost m_p per page, on both sender and receiver (CPU);
///  * wire time m_l per page:
///      - high-bandwidth network: charged to the sender's own clock, any
///        number of transfers proceed in parallel ("unlimited bandwidth,
///        latency-only");
///      - limited-bandwidth network: the wire is one shared sequential
///        resource (Ethernet) — "sending a fixed amount of data takes a
///        fixed amount of time independent of the number of processors".
///        Wire time accumulates on a single global counter that the
///        cluster adds to the completion time (the paper's no-overlap
///        treatment of the serialized medium). Accumulating globally —
///        rather than having sender clocks reserve wall-clock-ordered
///        time slots — keeps modeled time independent of host thread
///        scheduling.
///
/// Costs scale with actual payload bytes relative to the model's 4 KB
/// page. Empty payloads (EOS, end-of-phase) are free: the paper
/// piggybacks them on data traffic.
class NetworkModel {
 public:
  explicit NetworkModel(const SystemParams& params) : params_(params) {}

  /// Charges send-side costs and stamps `msg.depart_time`.
  void OnSend(CostClock& clock, Message& msg);

  /// Charges receive-side protocol CPU. Does not advance the receiver's
  /// clock to the departure time — per the paper's model, completion is
  /// the max over nodes of each node's own accumulated costs (see .cc).
  void OnReceive(CostClock& clock, const Message& msg);

  /// Total occupancy of the serialized medium so far (always 0 on a
  /// high-bandwidth network). Thread-safe.
  double serialized_wire_s() const {
    return serialized_wire_s_.load(std::memory_order_relaxed);
  }

  const SystemParams& params() const { return params_; }

 private:
  double PagesOf(size_t bytes) const {
    return static_cast<double>(bytes) / params_.page_bytes;
  }

  /// Bytes to charge for a message: the modeled size the sender stamped
  /// (the exchange ships wire-trimmed pages but charges the full page,
  /// keeping modeled time independent of the trim), or the real payload
  /// when unstamped. kExemptChargedBytes marks cost-exempt frames
  /// (merge-topology reduction traffic whose seed-stream charges were
  /// applied through phantom accounting): zero pages, zero cost.
  static size_t ChargeBasis(const Message& msg) {
    if (msg.charged_bytes == kExemptChargedBytes) return 0;
    return msg.charged_bytes > 0 ? msg.charged_bytes : msg.payload.size();
  }

  SystemParams params_;
  std::atomic<double> serialized_wire_s_{0.0};
};

}  // namespace adaptagg

#endif  // ADAPTAGG_NET_NETWORK_MODEL_H_
