#ifndef ADAPTAGG_NET_FAULT_H_
#define ADAPTAGG_NET_FAULT_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "net/transport.h"

namespace adaptagg {

/// Kinds of injectable faults. Message faults (drop/duplicate/delay/
/// corrupt) act on a FaultyTransport's outbound traffic; node faults
/// (crash/straggle) are executed by the NodeContext runtime hooks;
/// storage faults (disk-fail/torn-write) are applied to the targeted
/// node's checkpoint disk by the recovery runtime.
enum class FaultKind {
  kDrop = 0,
  kDuplicate,
  kDelay,
  kCorrupt,
  kCrash,
  kStraggle,
  kDiskFail,
  kTornWrite,
};

/// Stable lowercase name ("drop", "crash", ...).
std::string_view FaultKindToString(FaultKind kind);

/// One injected fault. Which fields are meaningful depends on `kind`:
///
///  * drop/duplicate/delay/corrupt: `from`/`to` filter the sender and
///    destination (-1 = any), `nth` selects the n-th matching message
///    (0-based; -1 = every match), `secs` is the added latency (delay).
///  * crash: `node` crashes either when its scan reaches global tuple
///    index `tuple` (checked at batch granularity) or when it enters the
///    phase named `phase` ("scan", "merge", "emit", "sample").
///  * straggle: `node` sleeps `secs` wall-seconds at every inbox poll
///    (the scan loop polls every kPollInterval tuples, so this slows the
///    node down without changing any simulated cost).
///  * disk-fail: `node`'s checkpoint disk fails every append after `nth`
///    more successful ones (recovery degrades to an older checkpoint or
///    scratch replay; the query must still answer correctly).
///  * torn-write: `node`'s checkpoint disk persists its `nth` append
///    with the tail zeroed but reports success — the CRC on read must
///    turn this into kDataLoss, never a wrong answer.
struct FaultSpec {
  FaultKind kind = FaultKind::kDrop;
  int from = -1;
  int to = -1;
  int64_t nth = 0;
  int node = -1;
  int64_t tuple = -1;
  std::string phase;
  double secs = 0;
};

/// A deterministic, seed-driven failure scenario: every fault a run will
/// experience, declared up front, so any failure mode is a reproducible
/// unit test. Parsed from the CLI's `--fault` syntax:
///
///   drop:from=1,to=2,nth=0;crash:node=2,tuple=5000;straggle:node=3,
///   factor=4;seed=7
///
/// Clauses are ';'-separated; each is `kind:key=value,...`. `seed=N`
/// (no colon) seeds the corruption byte picker. `factor=f` on straggle
/// and delay is shorthand for secs=f/1000 (≈ f ms).
struct FaultPlan {
  uint64_t seed = 42;
  std::vector<FaultSpec> faults;

  bool empty() const { return faults.empty(); }

  /// First crash spec targeting `node`, or nullptr.
  const FaultSpec* CrashForNode(int node) const;
  /// Per-poll straggle sleep for `node` (0 when not straggling).
  double StraggleSecsForNode(int node) const;
  /// `nth` of the first disk-fail spec targeting `node`'s checkpoint
  /// disk, or -1 when absent.
  int64_t DiskFailNthForNode(int node) const;
  /// `nth` of the first torn-write spec targeting `node`'s checkpoint
  /// disk, or -1 when absent.
  int64_t TornWriteNthForNode(int node) const;
  /// True when any spec targets a checkpoint disk.
  bool HasCheckpointDiskFaults() const;

  static Result<FaultPlan> Parse(const std::string& text);
  /// Canonical `--fault` syntax; Parse(ToString()) round-trips.
  std::string ToString() const;
};

/// Run-level failure-detection knobs. Detection is "armed" when enabled
/// here or when the run carries a non-empty FaultPlan; an unarmed run
/// still bounds every blocking receive by a generous derived deadline
/// (so nothing can hang forever) but sends no heartbeats and tracks no
/// per-peer liveness, keeping fault-free runs bit-identical to builds
/// without this subsystem.
struct FailureDetection {
  bool enabled = false;
  /// Longest a node may wait without inbound progress before it aborts
  /// the run (<0: derive from the cost model's worst-case phase time).
  double recv_idle_timeout_s = -1;
  /// Heartbeat broadcast period while armed (<0: timeout / 4).
  double heartbeat_interval_s = -1;
  /// Hard cap on one blocking wait even with live peers, catching nodes
  /// that heartbeat but never progress (<0: 8x the idle timeout).
  double phase_budget_s = -1;
};

/// What a FaultyTransport reports when it fires a fault: the acting
/// node, the peer involved (-1 when not applicable), and the fault.
struct FaultEvent {
  FaultKind kind = FaultKind::kDrop;
  int node = -1;
  int peer = -1;
};

/// Observer invoked on the acting node's thread each time a fault fires
/// (fault counters and trace instants hook in here; src/net cannot
/// depend on src/obs directly).
using FaultObserver = std::function<void(const FaultEvent&)>;

/// A Transport decorator that executes a FaultPlan's message faults on
/// outbound traffic. Deterministic: each spec counts its own matching
/// messages (heartbeats and aborts are never counted or faulted, so
/// wall-clock-dependent beacon traffic cannot shift which data message
/// the n-th one is). Corruption serializes the message, flips one
/// seed-chosen byte, and re-parses: the CRC-32C rejects it, making a
/// corrupt frame behave as a detectable drop on every substrate.
/// SimulateFailStop puts the endpoint in fail-stop mode (all later sends
/// swallowed), which is what makes injected crashes realistic — a dead
/// node cannot broadcast its own abort, so peers must *detect* it.
class FaultyTransport : public Transport {
 public:
  FaultyTransport(std::unique_ptr<Transport> inner, const FaultPlan& plan,
                  FaultObserver observer = nullptr);

  /// Late-binds the observer. The cluster wires this to the owning
  /// node's obs shard once node contexts exist; must be called before
  /// the node thread starts sending.
  void set_observer(FaultObserver observer) {
    observer_ = std::move(observer);
  }

  int node_id() const override { return inner_->node_id(); }
  int num_nodes() const override { return inner_->num_nodes(); }
  Status Send(int to, Message msg) override;
  Result<Message> Recv() override { return inner_->Recv(); }
  Result<Message> RecvWithDeadline(double timeout_s) override {
    return inner_->RecvWithDeadline(timeout_s);
  }
  std::optional<Message> TryRecv() override { return inner_->TryRecv(); }
  size_t inbox_high_water() const override {
    return inner_->inbox_high_water();
  }
  uint64_t frames_rejected() const override {
    return inner_->frames_rejected();
  }
  bool shared_memory() const override { return inner_->shared_memory(); }
  void SimulateFailStop() override { dead_ = true; }

 private:
  struct ArmedFault {
    FaultSpec spec;
    int64_t matched = 0;
  };

  void Report(FaultKind kind, int peer);

  std::unique_ptr<Transport> inner_;
  std::vector<ArmedFault> send_faults_;
  uint64_t prng_state_;
  FaultObserver observer_;
  /// Accessed only from the owning node's thread (the Send contract).
  bool dead_ = false;
};

}  // namespace adaptagg

#endif  // ADAPTAGG_NET_FAULT_H_
