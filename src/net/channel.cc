#include "net/channel.h"

#include <chrono>

namespace adaptagg {

void Channel::Push(Message msg) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(msg));
    if (queue_.size() > max_depth_) max_depth_ = queue_.size();
  }
  cv_.notify_one();
}

Message Channel::Pop() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [&] { return !queue_.empty(); });
  Message m = std::move(queue_.front());
  queue_.pop_front();
  return m;
}

std::optional<Message> Channel::PopFor(double timeout_s) {
  std::unique_lock<std::mutex> lock(mu_);
  if (timeout_s < 0) {
    cv_.wait(lock, [&] { return !queue_.empty(); });
  } else {
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double>(timeout_s));
    if (!cv_.wait_until(lock, deadline, [&] { return !queue_.empty(); })) {
      return std::nullopt;
    }
  }
  Message m = std::move(queue_.front());
  queue_.pop_front();
  return m;
}

std::optional<Message> Channel::TryPop() {
  std::lock_guard<std::mutex> lock(mu_);
  if (queue_.empty()) return std::nullopt;
  Message m = std::move(queue_.front());
  queue_.pop_front();
  return m;
}

size_t Channel::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

size_t Channel::max_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return max_depth_;
}

}  // namespace adaptagg
