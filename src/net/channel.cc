#include "net/channel.h"

#include <chrono>

namespace adaptagg {

void Channel::Push(Message msg) {
  {
    MutexLock lock(&mu_);
    queue_.push_back(std::move(msg));
    if (queue_.size() > max_depth_) max_depth_ = queue_.size();
  }
  cv_.NotifyOne();
}

Message Channel::Pop() {
  MutexLock lock(&mu_);
  while (queue_.empty()) cv_.Wait(mu_);
  Message m = std::move(queue_.front());
  queue_.pop_front();
  return m;
}

std::optional<Message> Channel::PopFor(double timeout_s) {
  MutexLock lock(&mu_);
  if (timeout_s < 0) {
    while (queue_.empty()) cv_.Wait(mu_);
  } else {
    // The receive deadline is wall time by design (lint D1 allowlist):
    // it bounds real blocking so a lost message cannot hang the run; it
    // must never be derived from modeled time, which only advances when
    // the algorithm charges costs.
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double>(timeout_s));
    while (queue_.empty()) {
      if (!cv_.WaitUntil(mu_, deadline) && queue_.empty()) {
        return std::nullopt;
      }
    }
  }
  Message m = std::move(queue_.front());
  queue_.pop_front();
  return m;
}

std::optional<Message> Channel::TryPop() {
  MutexLock lock(&mu_);
  if (queue_.empty()) return std::nullopt;
  Message m = std::move(queue_.front());
  queue_.pop_front();
  return m;
}

size_t Channel::size() const {
  MutexLock lock(&mu_);
  return queue_.size();
}

size_t Channel::max_depth() const {
  MutexLock lock(&mu_);
  return max_depth_;
}

}  // namespace adaptagg
