#ifndef ADAPTAGG_NET_SESSION_ROUTER_H_
#define ADAPTAGG_NET_SESSION_ROUTER_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "net/channel.h"
#include "net/transport.h"

namespace adaptagg {

/// Demultiplexes one physical cluster mesh into per-query "exchange
/// instances" for the serving layer. Every frame carries a query id
/// (Message::query_id); the router owns one demux thread per node that
/// pops the node's physical endpoint and routes each frame into the
/// inbox channel of the (query, node) session endpoint it belongs to.
/// Concurrent repartitions therefore never cross-talk: a session's
/// endpoints only ever see frames tagged with its own query id.
///
/// Heartbeats are shared across sessions: a liveness beacon sent inside
/// one armed session also proves the sender node alive to every other
/// session on the receiving node, so the router forwards a seq=0 copy to
/// each co-resident session (NodeContext's unsequenced path refreshes
/// peer liveness and swallows the copy without touching sequence
/// validation). One session's heartbeat traffic thus keeps every
/// neighbor's failure detector fed — and a crashed query's silence is
/// still detected per session, because detection reads per-peer
/// liveness, not per-query traffic.
///
/// Frames for a query with no registered session (a late page from an
/// aborted run, or traffic racing CloseSession) are dropped and counted.
///
/// Thread-safe throughout. The physical endpoints' Send must tolerate
/// concurrent callers — the router serializes sends per source node, so
/// frame-oriented transports (TCP) never interleave two frames.
class SessionRouter {
 public:
  /// Takes ownership of the physical mesh (one endpoint per node) and
  /// starts one demux thread per node.
  explicit SessionRouter(std::vector<std::unique_ptr<Transport>> mesh);
  ~SessionRouter();

  SessionRouter(const SessionRouter&) = delete;
  SessionRouter& operator=(const SessionRouter&) = delete;

  int num_nodes() const { return static_cast<int>(physical_.size()); }

  /// True when the underlying physical mesh is in-process (see
  /// Transport::shared_memory); session endpoints forward this.
  bool shared_memory() const {
    return !physical_.empty() && physical_.front()->shared_memory();
  }

  /// Registers session `query_id` and returns its namespaced endpoints,
  /// one Transport per node. `query_id` must be nonzero and not
  /// currently open. The endpoints outlive CloseSession (their channels
  /// are shared), but after it no further frames are delivered to them.
  Result<std::vector<std::unique_ptr<Transport>>> OpenSession(
      uint32_t query_id);

  /// Unregisters the session: subsequent frames tagged `query_id` are
  /// dropped and counted as late.
  void CloseSession(uint32_t query_id);

  /// Stops and joins the demux threads (idempotent). Called by the
  /// destructor; expose so a service can sequence its shutdown.
  void Stop();

  /// Demux threads currently alive (for clean-shutdown tests).
  int alive_demux_threads() const {
    return alive_demux_.load(std::memory_order_acquire);
  }

  /// Frames dropped because no session with their query id was open.
  uint64_t late_frames_dropped() const {
    return late_frames_dropped_.load(std::memory_order_relaxed);
  }

  /// Heartbeat copies forwarded to co-resident sessions.
  uint64_t heartbeats_shared() const {
    return heartbeats_shared_.load(std::memory_order_relaxed);
  }

 private:
  friend class SessionTransport;

  /// Stamps `from` and sends on the physical mesh, serialized per source
  /// node so concurrent sessions of one node never interleave frames.
  Status PhysicalSend(int from_node, int to, Message msg);

  void DemuxLoop(int node);

  std::vector<std::unique_ptr<Transport>> physical_;
  /// One send lock per source node (deque: Mutex is not movable).
  std::deque<Mutex> send_mus_;

  mutable Mutex mu_;
  /// Per node: open sessions' inboxes by query id. std::map (not
  /// unordered) so the heartbeat fan-out below iterates in a
  /// deterministic order.
  std::vector<std::map<uint32_t, std::shared_ptr<Channel>>> inboxes_
      ADAPTAGG_GUARDED_BY(mu_);

  std::atomic<bool> stop_{false};
  std::atomic<int> alive_demux_{0};
  std::atomic<uint64_t> late_frames_dropped_{0};
  std::atomic<uint64_t> heartbeats_shared_{0};
  std::vector<std::thread> demux_threads_;
};

/// One (query, node) endpoint over a SessionRouter: Sends stamp the
/// session's query id and go out on the shared physical mesh; receives
/// pop the session's demultiplexed inbox. SimulateFailStop puts only
/// this endpoint into fail-stop (the physical mesh, its demux thread,
/// and every other session stay up — a crashed query must not poison
/// its neighbors).
class SessionTransport : public Transport {
 public:
  SessionTransport(SessionRouter* router, std::shared_ptr<Channel> inbox,
                   uint32_t query_id, int node_id)
      : router_(router),
        inbox_(std::move(inbox)),
        query_id_(query_id),
        node_id_(node_id) {}

  int node_id() const override { return node_id_; }
  int num_nodes() const override { return router_->num_nodes(); }

  Status Send(int to, Message msg) override;
  Result<Message> Recv() override;
  Result<Message> RecvWithDeadline(double timeout_s) override;
  std::optional<Message> TryRecv() override;

  size_t inbox_high_water() const override { return inbox_->max_depth(); }
  bool shared_memory() const override { return router_->shared_memory(); }
  void SimulateFailStop() override {
    failed_.store(true, std::memory_order_release);
  }

 private:
  SessionRouter* router_;
  std::shared_ptr<Channel> inbox_;
  uint32_t query_id_;
  int node_id_;
  std::atomic<bool> failed_{false};
};

}  // namespace adaptagg

#endif  // ADAPTAGG_NET_SESSION_ROUTER_H_
