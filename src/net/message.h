#ifndef ADAPTAGG_NET_MESSAGE_H_
#define ADAPTAGG_NET_MESSAGE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"

namespace adaptagg {

/// Kinds of inter-node messages exchanged by the aggregation algorithms.
enum class MessageType : uint8_t {
  /// A page of projected raw tuples (Repartitioning traffic).
  kRawPage = 0,
  /// A page of partial-aggregate records (two-phase traffic).
  kPartialPage = 1,
  /// The sender will send no more data in this phase.
  kEndOfStream = 2,
  /// Adaptive Repartitioning's "end-of-phase" switch signal (§3.3).
  kEndOfPhase = 3,
  /// Small control payloads (e.g. the Sampling algorithm's decision).
  kControl = 4,
  /// A node hit an unrecoverable error; peers must stop waiting for its
  /// traffic and fail the run. Broadcast by the cluster runtime.
  kAbort = 5,
};

std::string MessageTypeToString(MessageType type);

/// One network message. `depart_time` carries the sender's simulated
/// clock so receivers preserve causality (a conservative discrete-event
/// rule); it plays no role in correctness.
struct Message {
  MessageType type = MessageType::kControl;
  int32_t from = -1;
  uint32_t phase = 0;
  double depart_time = 0.0;
  std::vector<uint8_t> payload;

  /// Wire encoding for socket transports:
  /// [u32 total_len][u8 type][i32 from][u32 phase][f64 depart][payload].
  std::vector<uint8_t> Serialize() const;

  /// Parses a frame produced by Serialize() (without the leading length
  /// word, which the transport consumes).
  static Result<Message> Deserialize(const uint8_t* data, size_t len);
};

}  // namespace adaptagg

#endif  // ADAPTAGG_NET_MESSAGE_H_
