#ifndef ADAPTAGG_NET_MESSAGE_H_
#define ADAPTAGG_NET_MESSAGE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"

namespace adaptagg {

/// Kinds of inter-node messages exchanged by the aggregation algorithms.
enum class MessageType : uint8_t {
  /// A page of projected raw tuples (Repartitioning traffic).
  kRawPage = 0,
  /// A page of partial-aggregate records (two-phase traffic).
  kPartialPage = 1,
  /// The sender will send no more data in this phase.
  kEndOfStream = 2,
  /// Adaptive Repartitioning's "end-of-phase" switch signal (§3.3).
  kEndOfPhase = 3,
  /// Small control payloads (e.g. the Sampling algorithm's decision).
  kControl = 4,
  /// A node hit an unrecoverable error; peers must stop waiting for its
  /// traffic and fail the run. Broadcast by the cluster runtime.
  kAbort = 5,
  /// Liveness beacon emitted by the failure detector while a run is
  /// armed. Swallowed inside NodeContext: algorithms never see it, and
  /// it is free under the network cost model (piggybacked traffic).
  kHeartbeat = 6,
};

std::string MessageTypeToString(MessageType type);

/// Sentinel for Message::charged_bytes marking a frame as cost-exempt:
/// the network model charges zero pages for it regardless of payload
/// size. Used by the non-seed merge topologies (DESIGN.md §12), whose
/// reduction/scatter traffic replaces work the cost model already
/// charged through the phantom seed-stream accounting — charging the
/// real frames too would double-count.
inline constexpr uint32_t kExemptChargedBytes = 0xffffffffu;

/// Upper bound on one serialized frame (length word excluded): far above
/// any message-page size the engine produces, far below what a corrupt
/// length prefix could demand. Enforced by Deserialize and by the TCP
/// reader before it trusts a length prefix.
inline constexpr uint32_t kMaxFrameBytes = 64u * 1024 * 1024;

/// Fixed bytes of one frame after the length word: crc32c + type + from +
/// phase + depart + seq + charged_bytes + query_id + epoch + page_seq.
inline constexpr size_t kHeaderBytes = 4 + 1 + 4 + 4 + 8 + 8 + 4 + 4 + 4 + 8;

/// One network message. `depart_time` carries the sender's simulated
/// clock so receivers preserve causality (a conservative discrete-event
/// rule); it plays no role in correctness. `seq` is the per-(sender,
/// receiver) sequence number stamped by NodeContext::Send — receivers use
/// it to discard duplicates and detect message loss; raw transport users
/// may leave it 0 (validation only runs inside NodeContext).
struct Message {
  MessageType type = MessageType::kControl;
  int32_t from = -1;
  uint32_t phase = 0;
  double depart_time = 0.0;
  uint64_t seq = 0;
  /// Bytes the network cost model charges for this message instead of
  /// payload.size(); 0 means "charge the real payload". The exchange
  /// trims trailing page padding off the wire but stamps the untrimmed
  /// page size here, so the paper's per-page network charge — and with
  /// it every modeled time — is independent of the wire optimization.
  uint32_t charged_bytes = 0;
  /// Serving-layer session tag: which query's exchange instance this frame
  /// belongs to. 0 means "no session" (the one-shot Cluster::Run path).
  /// The session router demultiplexes a shared physical mesh on this id,
  /// so concurrent repartitions never cross-talk.
  uint32_t query_id = 0;
  /// Cluster-membership epoch the sender belonged to when it sent this
  /// frame, stamped by NodeContext::Send. After an elastic resize the
  /// service bumps the epoch, so frames still in flight from the old
  /// membership are recognizably stale and dropped on receive. 0 is the
  /// initial epoch (one-shot runs never change it).
  uint32_t epoch = 0;
  /// Deterministic per-(origin, destination) DATA page counter, stamped
  /// by Exchange::SendPage on kRawPage/kPartialPage frames only (1, 2,
  /// ...; 0 on every other frame = "not a data page"). Unlike `seq` —
  /// whose numbering shifts with wall-clock heartbeats — page_seq is a
  /// pure function of the sender's input, so a recovering receiver can
  /// dedupe replayed pages against its checkpointed fold watermark and
  /// keep merges exactly-once.
  uint64_t page_seq = 0;
  std::vector<uint8_t> payload;

  /// Wire encoding for socket transports:
  /// [u32 total_len][u32 crc32c][u8 type][i32 from][u32 phase]
  /// [f64 depart][u64 seq][u32 charged_bytes][u32 query_id][u32 epoch]
  /// [u64 page_seq][payload], where the CRC-32C covers everything after
  /// the crc word itself. total_len counts from the crc word on.
  std::vector<uint8_t> Serialize() const;

  /// Parses a frame produced by Serialize() (without the leading length
  /// word, which the transport consumes). Rejects truncated, oversized,
  /// bad-type, and checksum-mismatched frames with a Status — never
  /// asserts, so arbitrary bytes off the wire are safe to feed here.
  static Result<Message> Deserialize(const uint8_t* data, size_t len);
};

}  // namespace adaptagg

#endif  // ADAPTAGG_NET_MESSAGE_H_
