#include "net/message.h"

#include <cstring>

#include "common/crc32c.h"

namespace adaptagg {

std::string MessageTypeToString(MessageType type) {
  switch (type) {
    case MessageType::kRawPage:
      return "raw-page";
    case MessageType::kPartialPage:
      return "partial-page";
    case MessageType::kEndOfStream:
      return "eos";
    case MessageType::kEndOfPhase:
      return "end-of-phase";
    case MessageType::kControl:
      return "control";
    case MessageType::kAbort:
      return "abort";
    case MessageType::kHeartbeat:
      return "heartbeat";
  }
  return "?";
}

std::vector<uint8_t> Message::Serialize() const {
  std::vector<uint8_t> out(4 + kHeaderBytes + payload.size());
  uint32_t total = static_cast<uint32_t>(kHeaderBytes + payload.size());
  size_t off = 0;
  std::memcpy(out.data() + off, &total, 4);
  off += 4;
  const size_t crc_off = off;  // filled in last, over what follows it
  off += 4;
  out[off++] = static_cast<uint8_t>(type);
  std::memcpy(out.data() + off, &from, 4);
  off += 4;
  std::memcpy(out.data() + off, &phase, 4);
  off += 4;
  std::memcpy(out.data() + off, &depart_time, 8);
  off += 8;
  std::memcpy(out.data() + off, &seq, 8);
  off += 8;
  std::memcpy(out.data() + off, &charged_bytes, 4);
  off += 4;
  std::memcpy(out.data() + off, &query_id, 4);
  off += 4;
  std::memcpy(out.data() + off, &epoch, 4);
  off += 4;
  std::memcpy(out.data() + off, &page_seq, 8);
  off += 8;
  if (!payload.empty()) {
    std::memcpy(out.data() + off, payload.data(), payload.size());
    off += payload.size();
  }
  uint32_t crc = Crc32c(0, out.data() + crc_off + 4, off - crc_off - 4);
  std::memcpy(out.data() + crc_off, &crc, 4);
  return out;
}

Result<Message> Message::Deserialize(const uint8_t* data, size_t len) {
  if (len < kHeaderBytes) {
    return Status::InvalidArgument("message frame too short: " +
                                   std::to_string(len));
  }
  if (len > kMaxFrameBytes) {
    return Status::InvalidArgument("message frame too long: " +
                                   std::to_string(len));
  }
  size_t off = 0;
  uint32_t stored_crc;
  std::memcpy(&stored_crc, data + off, 4);
  off += 4;
  const uint32_t actual_crc = Crc32c(0, data + off, len - off);
  if (stored_crc != actual_crc) {
    return Status::NetworkError("message frame checksum mismatch");
  }
  Message m;
  uint8_t t = data[off++];
  if (t > static_cast<uint8_t>(MessageType::kHeartbeat)) {
    return Status::InvalidArgument("bad message type " + std::to_string(t));
  }
  m.type = static_cast<MessageType>(t);
  std::memcpy(&m.from, data + off, 4);
  off += 4;
  std::memcpy(&m.phase, data + off, 4);
  off += 4;
  std::memcpy(&m.depart_time, data + off, 8);
  off += 8;
  std::memcpy(&m.seq, data + off, 8);
  off += 8;
  std::memcpy(&m.charged_bytes, data + off, 4);
  off += 4;
  std::memcpy(&m.query_id, data + off, 4);
  off += 4;
  std::memcpy(&m.epoch, data + off, 4);
  off += 4;
  std::memcpy(&m.page_seq, data + off, 8);
  off += 8;
  m.payload.assign(data + off, data + len);
  return m;
}

}  // namespace adaptagg
