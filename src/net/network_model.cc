#include "net/network_model.h"

namespace adaptagg {

void NetworkModel::OnSend(CostClock& clock, Message& msg) {
  double pages = PagesOf(ChargeBasis(msg));
  if (pages > 0) {
    // Protocol processing on the sender.
    clock.AddNet(pages * params_.m_p());
    double wire = pages * params_.m_l();
    if (params_.network == NetworkKind::kHighBandwidth) {
      // Latency-only network: the sender is occupied for the page's wire
      // time; transfers from different nodes overlap freely.
      clock.AddNet(wire);
    } else {
      // Shared sequential medium: accumulate the occupancy globally
      // (atomic fetch-add via CAS; doubles have no fetch_add pre-C++20
      // on all implementations).
      double cur = serialized_wire_s_.load(std::memory_order_relaxed);
      while (!serialized_wire_s_.compare_exchange_weak(
          cur, cur + wire, std::memory_order_relaxed)) {
      }
    }
  }
  msg.depart_time = clock.now();
}

void NetworkModel::OnReceive(CostClock& clock, const Message& msg) {
  // Only the protocol CPU is charged. The receiver's clock is NOT
  // advanced to the sender's departure time: the paper's model assumes
  // all nodes work fully in parallel with no overlap of CPU/IO/messaging
  // within a node, so completion time is the maximum over nodes of each
  // node's own accumulated cost (plus the serialized wire total on a
  // limited-bandwidth network). A wall-clock causality advance here
  // would couple the simulated clocks to the host thread scheduler.
  double pages = PagesOf(ChargeBasis(msg));
  if (pages > 0) {
    clock.AddNet(pages * params_.m_p());
  }
}

}  // namespace adaptagg
