#ifndef ADAPTAGG_NET_CHANNEL_H_
#define ADAPTAGG_NET_CHANNEL_H_

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>

#include "net/message.h"

namespace adaptagg {

/// An unbounded multi-producer single-consumer message queue: the inbox of
/// one node. Unbounded so that senders never block (the algorithms'
/// end-of-stream protocol then guarantees deadlock freedom); the engine's
/// poll-while-scanning pattern keeps queues short in practice.
class Channel {
 public:
  Channel() = default;
  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  void Push(Message msg);

  /// Blocks until a message is available.
  Message Pop();

  /// Blocks for at most `timeout_s` seconds; empty optional on timeout.
  /// A negative timeout blocks forever (equivalent to Pop).
  std::optional<Message> PopFor(double timeout_s);

  /// Returns immediately; empty optional when the queue is empty.
  std::optional<Message> TryPop();

  size_t size() const;

  /// Deepest the queue has ever been (a backlog indicator: how far the
  /// receiver fell behind its senders). Monotonic; updated on Push.
  size_t max_depth() const;

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Message> queue_;
  size_t max_depth_ = 0;
};

}  // namespace adaptagg

#endif  // ADAPTAGG_NET_CHANNEL_H_
