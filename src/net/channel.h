#ifndef ADAPTAGG_NET_CHANNEL_H_
#define ADAPTAGG_NET_CHANNEL_H_

#include <deque>
#include <optional>

#include "common/mutex.h"
#include "net/message.h"

namespace adaptagg {

/// An unbounded multi-producer single-consumer message queue: the inbox of
/// one node. Unbounded so that senders never block (the algorithms'
/// end-of-stream protocol then guarantees deadlock freedom); the engine's
/// poll-while-scanning pattern keeps queues short in practice.
///
/// All shared state is guarded by `mu_` and annotated for clang Thread
/// Safety Analysis; the lock is internal and never exposed, so no caller
/// can hold a reference into the queue outside a critical section.
class Channel {
 public:
  Channel() = default;
  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  void Push(Message msg) ADAPTAGG_EXCLUDES(mu_);

  /// Blocks until a message is available.
  Message Pop() ADAPTAGG_EXCLUDES(mu_);

  /// Blocks for at most `timeout_s` seconds; empty optional on timeout.
  /// A negative timeout blocks forever (equivalent to Pop).
  std::optional<Message> PopFor(double timeout_s) ADAPTAGG_EXCLUDES(mu_);

  /// Returns immediately; empty optional when the queue is empty.
  std::optional<Message> TryPop() ADAPTAGG_EXCLUDES(mu_);

  size_t size() const ADAPTAGG_EXCLUDES(mu_);

  /// Deepest the queue has ever been (a backlog indicator: how far the
  /// receiver fell behind its senders). Monotonic; updated on Push.
  size_t max_depth() const ADAPTAGG_EXCLUDES(mu_);

 private:
  mutable Mutex mu_;
  CondVar cv_;
  std::deque<Message> queue_ ADAPTAGG_GUARDED_BY(mu_);
  size_t max_depth_ ADAPTAGG_GUARDED_BY(mu_) = 0;
};

}  // namespace adaptagg

#endif  // ADAPTAGG_NET_CHANNEL_H_
