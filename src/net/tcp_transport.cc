#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <memory>
#include <thread>

#include "common/logging.h"
#include "net/channel.h"
#include "net/transport.h"

namespace adaptagg {
namespace {

Status ReadFully(int fd, uint8_t* buf, size_t len) {
  size_t got = 0;
  while (got < len) {
    ssize_t n = ::recv(fd, buf + got, len - got, 0);
    if (n == 0) return Status::NetworkError("peer closed");
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::NetworkError(std::string("recv: ") +
                                  std::strerror(errno));
    }
    got += static_cast<size_t>(n);
  }
  return Status::OK();
}

Status WriteFully(int fd, const uint8_t* buf, size_t len) {
  size_t sent = 0;
  while (sent < len) {
    ssize_t n = ::send(fd, buf + sent, len - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::NetworkError(std::string("send: ") +
                                  std::strerror(errno));
    }
    sent += static_cast<size_t>(n);
  }
  return Status::OK();
}

/// One node's endpoint of a TCP loopback mesh. Owns n-1 outgoing sockets
/// and n-1 reader threads feeding the inbox; self-sends short-circuit
/// through the inbox directly.
class TcpTransport : public Transport {
 public:
  TcpTransport(int node_id, int num_nodes)
      : node_id_(node_id),
        num_nodes_(num_nodes),
        out_fds_(static_cast<size_t>(num_nodes), -1) {}

  ~TcpTransport() override {
    for (int fd : out_fds_) {
      if (fd >= 0) ::shutdown(fd, SHUT_RDWR);
    }
    for (int fd : in_fds_) {
      ::shutdown(fd, SHUT_RDWR);
    }
    for (auto& t : readers_) {
      if (t.joinable()) t.join();
    }
    for (int fd : out_fds_) {
      if (fd >= 0) ::close(fd);
    }
    for (int fd : in_fds_) {
      ::close(fd);
    }
  }

  int node_id() const override { return node_id_; }
  int num_nodes() const override { return num_nodes_; }

  Status Send(int to, Message msg) override {
    if (to < 0 || to >= num_nodes_) {
      return Status::InvalidArgument("send to bad node " +
                                     std::to_string(to));
    }
    msg.from = node_id_;
    if (to == node_id_) {
      inbox_.Push(std::move(msg));
      return Status::OK();
    }
    std::vector<uint8_t> frame = msg.Serialize();
    return WriteFully(out_fds_[static_cast<size_t>(to)], frame.data(),
                      frame.size());
  }

  Result<Message> Recv() override { return inbox_.Pop(); }

  Result<Message> RecvWithDeadline(double timeout_s) override {
    std::optional<Message> msg = inbox_.PopFor(timeout_s);
    if (!msg.has_value()) {
      return Status::DeadlineExceeded("recv deadline (" +
                                      std::to_string(timeout_s) +
                                      "s) exceeded");
    }
    return std::move(*msg);
  }

  std::optional<Message> TryRecv() override { return inbox_.TryPop(); }

  size_t inbox_high_water() const override { return inbox_.max_depth(); }

  uint64_t frames_rejected() const override {
    return frames_rejected_.load(std::memory_order_relaxed);
  }

  void SetOutgoing(int to, int fd) {
    out_fds_[static_cast<size_t>(to)] = fd;
  }

  /// Registers an accepted incoming connection and starts its reader.
  void AddIncoming(int fd) {
    in_fds_.push_back(fd);
    readers_.emplace_back([this, fd] { ReadLoop(fd); });
  }

 private:
  void ReadLoop(int fd) {
    std::vector<uint8_t> buf;
    while (true) {
      uint8_t len_bytes[4];
      if (!ReadFully(fd, len_bytes, 4).ok()) return;  // peer closed
      uint32_t len;
      std::memcpy(&len, len_bytes, 4);
      if (len > kMaxFrameBytes) {
        // A length beyond the cap means the stream is desynchronized,
        // so the connection is dropped rather than resynchronized.
        ADAPTAGG_LOG(kError) << "tcp frame length " << len
                             << " exceeds cap; closing connection";
        frames_rejected_.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      buf.resize(len);
      if (!ReadFully(fd, buf.data(), len).ok()) return;
      Result<Message> msg = Message::Deserialize(buf.data(), len);
      if (!msg.ok()) {
        // Checksum or format violation inside a well-delimited frame:
        // the stream itself is still in sync, so reject just the frame.
        // The sender-side sequence number now has a gap, which the
        // receiving NodeContext reports as message loss.
        ADAPTAGG_LOG(kError) << "rejecting bad frame: "
                             << msg.status().ToString();
        frames_rejected_.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      inbox_.Push(std::move(msg).value());
    }
  }

  // Thread roles (this class needs no mutex of its own): all
  // cross-thread traffic funnels through `inbox_` (internally locked and
  // annotated) or `frames_rejected_` (atomic). `out_fds_` is written
  // only during single-threaded mesh setup and read by Send afterwards;
  // `in_fds_` and `readers_` are touched only by setup and the
  // destructor, which joins every reader before closing.
  int node_id_;
  int num_nodes_;
  Channel inbox_;
  std::vector<int> out_fds_;
  std::vector<int> in_fds_;
  std::vector<std::thread> readers_;
  std::atomic<uint64_t> frames_rejected_{0};
};

Result<int> Listen(int port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Status::NetworkError("socket failed");
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    return Status::NetworkError("bind " + std::to_string(port) + ": " +
                                std::strerror(errno));
  }
  if (::listen(fd, 64) < 0) {
    ::close(fd);
    return Status::NetworkError("listen failed");
  }
  return fd;
}

Result<int> ConnectOnce(int port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Status::NetworkError("socket failed");
  // SO_REUSEADDR on the *connect* side too: Linux only lets a later
  // SO_REUSEADDR bind ride over this socket's TIME-WAIT remnant if the
  // remnant also had the option set. Without it, an outbound connection
  // whose ephemeral source port lands on another mesh's fixed listen
  // port poisons that port for a full TIME-WAIT interval.
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    return Status::NetworkError("connect " + std::to_string(port) + ": " +
                                std::strerror(errno));
  }
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

/// Connects with bounded retries and exponential backoff, shielding mesh
/// bring-up from transient refusals (a peer's listener still coming up,
/// a kernel backlog burp on a busy CI host).
Result<int> Connect(int port) {
  constexpr int kAttempts = 6;
  std::chrono::milliseconds backoff{10};
  Result<int> fd = ConnectOnce(port);
  for (int attempt = 1; !fd.ok() && attempt < kAttempts; ++attempt) {
    std::this_thread::sleep_for(backoff);
    backoff *= 2;
    fd = ConnectOnce(port);
  }
  return fd;
}

/// Accepts with a timeout so a half-built mesh fails with a Status
/// instead of blocking forever in ::accept.
Result<int> AcceptWithTimeout(int listener, int timeout_ms) {
  pollfd pfd{};
  pfd.fd = listener;
  pfd.events = POLLIN;
  int ready = ::poll(&pfd, 1, timeout_ms);
  if (ready < 0) {
    return Status::NetworkError(std::string("poll: ") +
                                std::strerror(errno));
  }
  if (ready == 0) {
    return Status::DeadlineExceeded("accept timed out after " +
                                    std::to_string(timeout_ms) + "ms");
  }
  int fd = ::accept(listener, nullptr, nullptr);
  if (fd < 0) {
    return Status::NetworkError(std::string("accept: ") +
                                std::strerror(errno));
  }
  return fd;
}

}  // namespace

Result<std::vector<std::unique_ptr<Transport>>> MakeTcpMesh(int n,
                                                            int base_port) {
  std::vector<std::unique_ptr<TcpTransport>> nodes;
  nodes.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    nodes.push_back(std::make_unique<TcpTransport>(i, n));
  }

  std::vector<int> listeners(static_cast<size_t>(n), -1);
  for (int i = 0; i < n; ++i) {
    ADAPTAGG_ASSIGN_OR_RETURN(listeners[static_cast<size_t>(i)],
                              Listen(base_port + i));
  }

  // Connect every ordered pair (i -> j), i != j. The connector announces
  // its node id in a 4-byte hello so the acceptor can label the link.
  Status failure;
  for (int i = 0; i < n && failure.ok(); ++i) {
    for (int j = 0; j < n && failure.ok(); ++j) {
      if (i == j) continue;
      Result<int> out = Connect(base_port + j);
      if (!out.ok()) {
        failure = out.status();
        break;
      }
      int32_t hello = i;
      Status st = WriteFully(*out, reinterpret_cast<uint8_t*>(&hello), 4);
      if (!st.ok()) {
        failure = st;
        break;
      }
      nodes[static_cast<size_t>(i)]->SetOutgoing(j, *out);

      Result<int> in = AcceptWithTimeout(
          listeners[static_cast<size_t>(j)], /*timeout_ms=*/5000);
      if (!in.ok()) {
        failure = in.status();
        break;
      }
      int32_t peer = -1;
      st = ReadFully(*in, reinterpret_cast<uint8_t*>(&peer), 4);
      if (!st.ok() || peer != i) {
        ::close(*in);
        failure = st.ok() ? Status::NetworkError("bad hello") : st;
        break;
      }
      nodes[static_cast<size_t>(j)]->AddIncoming(*in);
    }
  }

  for (int fd : listeners) {
    if (fd >= 0) ::close(fd);
  }
  if (!failure.ok()) return failure;

  std::vector<std::unique_ptr<Transport>> out;
  out.reserve(nodes.size());
  for (auto& t : nodes) out.push_back(std::move(t));
  return out;
}

}  // namespace adaptagg
