#include <memory>

#include "net/channel.h"
#include "net/transport.h"

namespace adaptagg {
namespace {

/// Shared state of an in-process mesh: one inbox channel per node.
struct InprocMesh {
  explicit InprocMesh(int n) : inboxes(static_cast<size_t>(n)) {}
  std::vector<Channel> inboxes;
};

class InprocTransport : public Transport {
 public:
  InprocTransport(std::shared_ptr<InprocMesh> mesh, int node_id)
      : mesh_(std::move(mesh)), node_id_(node_id) {}

  int node_id() const override { return node_id_; }
  int num_nodes() const override {
    return static_cast<int>(mesh_->inboxes.size());
  }

  Status Send(int to, Message msg) override {
    if (to < 0 || to >= num_nodes()) {
      return Status::InvalidArgument("send to bad node " +
                                     std::to_string(to));
    }
    msg.from = node_id_;
    mesh_->inboxes[static_cast<size_t>(to)].Push(std::move(msg));
    return Status::OK();
  }

  Result<Message> Recv() override {
    return mesh_->inboxes[static_cast<size_t>(node_id_)].Pop();
  }

  Result<Message> RecvWithDeadline(double timeout_s) override {
    std::optional<Message> msg =
        mesh_->inboxes[static_cast<size_t>(node_id_)].PopFor(timeout_s);
    if (!msg.has_value()) {
      return Status::DeadlineExceeded("recv deadline (" +
                                      std::to_string(timeout_s) +
                                      "s) exceeded");
    }
    return std::move(*msg);
  }

  std::optional<Message> TryRecv() override {
    return mesh_->inboxes[static_cast<size_t>(node_id_)].TryPop();
  }

  size_t inbox_high_water() const override {
    return mesh_->inboxes[static_cast<size_t>(node_id_)].max_depth();
  }

  bool shared_memory() const override { return true; }

 private:
  std::shared_ptr<InprocMesh> mesh_;
  int node_id_;
};

}  // namespace

std::vector<std::unique_ptr<Transport>> MakeInprocMesh(int n) {
  auto mesh = std::make_shared<InprocMesh>(n);
  std::vector<std::unique_ptr<Transport>> out;
  out.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    out.push_back(std::make_unique<InprocTransport>(mesh, i));
  }
  return out;
}

}  // namespace adaptagg
