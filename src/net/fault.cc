#include "net/fault.h"

#include <charconv>
#include <chrono>
#include <cstdlib>
#include <thread>

namespace adaptagg {

std::string_view FaultKindToString(FaultKind kind) {
  switch (kind) {
    case FaultKind::kDrop:
      return "drop";
    case FaultKind::kDuplicate:
      return "dup";
    case FaultKind::kDelay:
      return "delay";
    case FaultKind::kCorrupt:
      return "corrupt";
    case FaultKind::kCrash:
      return "crash";
    case FaultKind::kStraggle:
      return "straggle";
    case FaultKind::kDiskFail:
      return "disk-fail";
    case FaultKind::kTornWrite:
      return "torn-write";
  }
  return "?";
}

namespace {

std::string_view Trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) {
    s.remove_suffix(1);
  }
  return s;
}

Result<int64_t> ParseInt(std::string_view v) {
  int64_t out = 0;
  auto [ptr, ec] = std::from_chars(v.data(), v.data() + v.size(), out);
  if (ec != std::errc() || ptr != v.data() + v.size()) {
    return Status::InvalidArgument("fault plan: bad integer '" +
                                   std::string(v) + "'");
  }
  return out;
}

Result<double> ParseFloat(std::string_view v) {
  // std::from_chars<double> is spotty across standard libraries; strtod
  // on a bounded copy is portable and exception-free.
  std::string buf(v);
  char* end = nullptr;
  double out = std::strtod(buf.c_str(), &end);
  if (end != buf.c_str() + buf.size() || buf.empty()) {
    return Status::InvalidArgument("fault plan: bad number '" + buf + "'");
  }
  return out;
}

Result<FaultKind> ParseKind(std::string_view v) {
  if (v == "drop") return FaultKind::kDrop;
  if (v == "dup" || v == "duplicate") return FaultKind::kDuplicate;
  if (v == "delay") return FaultKind::kDelay;
  if (v == "corrupt") return FaultKind::kCorrupt;
  if (v == "crash") return FaultKind::kCrash;
  if (v == "straggle") return FaultKind::kStraggle;
  if (v == "disk-fail") return FaultKind::kDiskFail;
  if (v == "torn-write") return FaultKind::kTornWrite;
  return Status::InvalidArgument("fault plan: unknown fault kind '" +
                                 std::string(v) + "'");
}

bool IsMessageFault(FaultKind kind) {
  return kind == FaultKind::kDrop || kind == FaultKind::kDuplicate ||
         kind == FaultKind::kDelay || kind == FaultKind::kCorrupt;
}

Status ParseClause(std::string_view clause, FaultPlan& plan) {
  const size_t colon = clause.find(':');
  if (colon == std::string_view::npos) {
    // Bare `seed=N` clause.
    if (clause.rfind("seed=", 0) == 0) {
      ADAPTAGG_ASSIGN_OR_RETURN(int64_t seed,
                                ParseInt(clause.substr(5)));
      plan.seed = static_cast<uint64_t>(seed);
      return Status::OK();
    }
    return Status::InvalidArgument("fault plan: clause '" +
                                   std::string(clause) +
                                   "' is not kind:key=value,...");
  }
  FaultSpec spec;
  ADAPTAGG_ASSIGN_OR_RETURN(spec.kind,
                            ParseKind(Trim(clause.substr(0, colon))));
  std::string_view rest = clause.substr(colon + 1);
  while (!rest.empty()) {
    const size_t comma = rest.find(',');
    std::string_view kv = Trim(rest.substr(0, comma));
    rest = comma == std::string_view::npos ? std::string_view()
                                           : rest.substr(comma + 1);
    const size_t eq = kv.find('=');
    if (eq == std::string_view::npos) {
      return Status::InvalidArgument("fault plan: expected key=value, got '" +
                                     std::string(kv) + "'");
    }
    std::string_view key = kv.substr(0, eq);
    std::string_view val = kv.substr(eq + 1);
    if (key == "from") {
      ADAPTAGG_ASSIGN_OR_RETURN(int64_t v, ParseInt(val));
      spec.from = static_cast<int>(v);
    } else if (key == "to") {
      ADAPTAGG_ASSIGN_OR_RETURN(int64_t v, ParseInt(val));
      spec.to = static_cast<int>(v);
    } else if (key == "nth") {
      ADAPTAGG_ASSIGN_OR_RETURN(spec.nth, ParseInt(val));
    } else if (key == "node") {
      ADAPTAGG_ASSIGN_OR_RETURN(int64_t v, ParseInt(val));
      spec.node = static_cast<int>(v);
    } else if (key == "tuple") {
      ADAPTAGG_ASSIGN_OR_RETURN(spec.tuple, ParseInt(val));
    } else if (key == "phase") {
      spec.phase = std::string(val);
    } else if (key == "secs") {
      ADAPTAGG_ASSIGN_OR_RETURN(spec.secs, ParseFloat(val));
    } else if (key == "factor") {
      ADAPTAGG_ASSIGN_OR_RETURN(double f, ParseFloat(val));
      spec.secs = f * 1e-3;
    } else {
      return Status::InvalidArgument("fault plan: unknown key '" +
                                     std::string(key) + "'");
    }
  }
  if (IsMessageFault(spec.kind)) {
    if (spec.kind == FaultKind::kDelay && spec.secs <= 0) {
      return Status::InvalidArgument(
          "fault plan: delay needs secs>0 (or factor)");
    }
  } else {
    if (spec.node < 0) {
      return Status::InvalidArgument("fault plan: " +
                                     std::string(FaultKindToString(
                                         spec.kind)) +
                                     " needs node=<id>");
    }
    if (spec.kind == FaultKind::kCrash && spec.tuple < 0 &&
        spec.phase.empty()) {
      return Status::InvalidArgument(
          "fault plan: crash needs tuple=<index> or phase=<name>");
    }
    if (spec.kind == FaultKind::kStraggle && spec.secs <= 0) {
      return Status::InvalidArgument(
          "fault plan: straggle needs secs>0 (or factor)");
    }
  }
  plan.faults.push_back(std::move(spec));
  return Status::OK();
}

}  // namespace

const FaultSpec* FaultPlan::CrashForNode(int node) const {
  for (const FaultSpec& f : faults) {
    if (f.kind == FaultKind::kCrash && f.node == node) return &f;
  }
  return nullptr;
}

double FaultPlan::StraggleSecsForNode(int node) const {
  for (const FaultSpec& f : faults) {
    if (f.kind == FaultKind::kStraggle && f.node == node) return f.secs;
  }
  return 0;
}

int64_t FaultPlan::DiskFailNthForNode(int node) const {
  for (const FaultSpec& f : faults) {
    if (f.kind == FaultKind::kDiskFail && f.node == node) return f.nth;
  }
  return -1;
}

int64_t FaultPlan::TornWriteNthForNode(int node) const {
  for (const FaultSpec& f : faults) {
    if (f.kind == FaultKind::kTornWrite && f.node == node) return f.nth;
  }
  return -1;
}

bool FaultPlan::HasCheckpointDiskFaults() const {
  for (const FaultSpec& f : faults) {
    if (f.kind == FaultKind::kDiskFail || f.kind == FaultKind::kTornWrite) {
      return true;
    }
  }
  return false;
}

Result<FaultPlan> FaultPlan::Parse(const std::string& text) {
  FaultPlan plan;
  std::string_view rest = text;
  while (!rest.empty()) {
    const size_t semi = rest.find(';');
    std::string_view clause = Trim(rest.substr(0, semi));
    rest = semi == std::string_view::npos ? std::string_view()
                                          : rest.substr(semi + 1);
    if (clause.empty()) continue;
    ADAPTAGG_RETURN_IF_ERROR(ParseClause(clause, plan));
  }
  return plan;
}

std::string FaultPlan::ToString() const {
  std::string out;
  for (const FaultSpec& f : faults) {
    if (!out.empty()) out += ';';
    out += FaultKindToString(f.kind);
    out += ':';
    std::string args;
    auto add = [&args](const std::string& kv) {
      if (!args.empty()) args += ',';
      args += kv;
    };
    if (IsMessageFault(f.kind)) {
      if (f.from >= 0) add("from=" + std::to_string(f.from));
      if (f.to >= 0) add("to=" + std::to_string(f.to));
      add("nth=" + std::to_string(f.nth));
      if (f.kind == FaultKind::kDelay) {
        add("secs=" + std::to_string(f.secs));
      }
    } else {
      add("node=" + std::to_string(f.node));
      if (f.tuple >= 0) add("tuple=" + std::to_string(f.tuple));
      if (!f.phase.empty()) add("phase=" + f.phase);
      if (f.kind == FaultKind::kStraggle) {
        add("secs=" + std::to_string(f.secs));
      }
      if (f.kind == FaultKind::kDiskFail ||
          f.kind == FaultKind::kTornWrite) {
        add("nth=" + std::to_string(f.nth));
      }
    }
    out += args;
  }
  if (seed != 42) {
    if (!out.empty()) out += ';';
    out += "seed=" + std::to_string(seed);
  }
  return out;
}

FaultyTransport::FaultyTransport(std::unique_ptr<Transport> inner,
                                 const FaultPlan& plan,
                                 FaultObserver observer)
    : inner_(std::move(inner)),
      prng_state_(plan.seed * 0x9E3779B97F4A7C15ull + 1),
      observer_(std::move(observer)) {
  for (const FaultSpec& f : plan.faults) {
    const bool message_fault =
        f.kind == FaultKind::kDrop || f.kind == FaultKind::kDuplicate ||
        f.kind == FaultKind::kDelay || f.kind == FaultKind::kCorrupt;
    if (message_fault &&
        (f.from < 0 || f.from == inner_->node_id())) {
      send_faults_.push_back(ArmedFault{f, 0});
    }
  }
}

void FaultyTransport::Report(FaultKind kind, int peer) {
  if (observer_ != nullptr) {
    FaultEvent e;
    e.kind = kind;
    e.node = inner_->node_id();
    e.peer = peer;
    observer_(e);
  }
}

Status FaultyTransport::Send(int to, Message msg) {
  // Fail-stop: a crashed node reaches nobody, not even with aborts.
  if (dead_) return Status::OK();
  // Heartbeats and aborts are runtime traffic whose cadence depends on
  // wall time; exempting them keeps "the n-th message" deterministic
  // and keeps the detection machinery itself un-faultable.
  if (msg.type != MessageType::kHeartbeat &&
      msg.type != MessageType::kAbort) {
    for (ArmedFault& armed : send_faults_) {
      const FaultSpec& f = armed.spec;
      if (f.to >= 0 && f.to != to) continue;
      const int64_t index = armed.matched++;
      if (f.nth >= 0 && index != f.nth) continue;
      switch (f.kind) {
        case FaultKind::kDrop:
          Report(FaultKind::kDrop, to);
          return Status::OK();
        case FaultKind::kDuplicate: {
          Report(FaultKind::kDuplicate, to);
          Message copy = msg;
          ADAPTAGG_RETURN_IF_ERROR(inner_->Send(to, std::move(copy)));
          return inner_->Send(to, std::move(msg));
        }
        case FaultKind::kDelay: {
          Report(FaultKind::kDelay, to);
          // Sender-side, bounded, in-order: slows the link without
          // violating the transport's ordered-delivery contract.
          const double capped = f.secs < 1.0 ? f.secs : 1.0;
          std::this_thread::sleep_for(
              std::chrono::duration<double>(capped));
          return inner_->Send(to, std::move(msg));
        }
        case FaultKind::kCorrupt: {
          Report(FaultKind::kCorrupt, to);
          // Corrupt the serialized frame and re-parse it, exactly what
          // a flipped wire bit does. The CRC-32C covers every header
          // and payload byte, so the parse always fails and the frame
          // is discarded — a corrupt message is a detectable drop.
          msg.from = inner_->node_id();
          std::vector<uint8_t> frame = msg.Serialize();
          prng_state_ = prng_state_ * 6364136223846793005ull +
                        1442695040888963407ull;
          const size_t at =
              4 + static_cast<size_t>(prng_state_ >> 33) %
                      (frame.size() - 4);
          frame[at] ^= 0x80u >> (prng_state_ & 7);
          Result<Message> parsed =
              Message::Deserialize(frame.data() + 4, frame.size() - 4);
          if (!parsed.ok()) return Status::OK();
          return inner_->Send(to, std::move(parsed).value());
        }
        case FaultKind::kCrash:
        case FaultKind::kStraggle:
        case FaultKind::kDiskFail:
        case FaultKind::kTornWrite:
          break;  // node/storage faults; never armed as send faults
      }
    }
  }
  return inner_->Send(to, std::move(msg));
}

}  // namespace adaptagg
