#include "net/session_router.h"

#include <string>
#include <utility>

namespace adaptagg {
namespace {

/// Demux poll tick: bounds how long Stop() and CloseSession() wait for a
/// demux thread to notice state changes. Wall time only — the tick never
/// charges modeled cost and never reaches algorithm code.
constexpr double kDemuxTickS = 0.05;

}  // namespace

SessionRouter::SessionRouter(std::vector<std::unique_ptr<Transport>> mesh)
    : physical_(std::move(mesh)),
      send_mus_(physical_.size()),
      inboxes_(physical_.size()) {
  demux_threads_.reserve(physical_.size());
  alive_demux_.store(static_cast<int>(physical_.size()),
                     std::memory_order_release);
  for (int i = 0; i < num_nodes(); ++i) {
    demux_threads_.emplace_back([this, i] { DemuxLoop(i); });
  }
}

SessionRouter::~SessionRouter() { Stop(); }

void SessionRouter::Stop() {
  stop_.store(true, std::memory_order_release);
  for (auto& t : demux_threads_) {
    if (t.joinable()) t.join();
  }
  demux_threads_.clear();
}

Result<std::vector<std::unique_ptr<Transport>>> SessionRouter::OpenSession(
    uint32_t query_id) {
  if (query_id == 0) {
    return Status::InvalidArgument(
        "query id 0 is reserved for one-shot runs");
  }
  std::vector<std::shared_ptr<Channel>> channels;
  channels.reserve(physical_.size());
  {
    MutexLock lock(&mu_);
    for (const auto& per_node : inboxes_) {
      if (per_node.count(query_id) != 0) {
        return Status::InvalidArgument("session " + std::to_string(query_id) +
                                       " already open");
      }
    }
    for (auto& per_node : inboxes_) {
      channels.push_back(std::make_shared<Channel>());
      per_node.emplace(query_id, channels.back());
    }
  }
  std::vector<std::unique_ptr<Transport>> endpoints;
  endpoints.reserve(physical_.size());
  for (int i = 0; i < num_nodes(); ++i) {
    endpoints.push_back(std::make_unique<SessionTransport>(
        this, channels[static_cast<size_t>(i)], query_id, i));
  }
  return endpoints;
}

void SessionRouter::CloseSession(uint32_t query_id) {
  MutexLock lock(&mu_);
  for (auto& per_node : inboxes_) per_node.erase(query_id);
}

Status SessionRouter::PhysicalSend(int from_node, int to, Message msg) {
  if (from_node < 0 || from_node >= num_nodes()) {
    return Status::InvalidArgument("send from bad node " +
                                   std::to_string(from_node));
  }
  MutexLock lock(&send_mus_[static_cast<size_t>(from_node)]);
  return physical_[static_cast<size_t>(from_node)]->Send(to, std::move(msg));
}

void SessionRouter::DemuxLoop(int node) {
  Transport& endpoint = *physical_[static_cast<size_t>(node)];
  while (!stop_.load(std::memory_order_acquire)) {
    Result<Message> msg = endpoint.RecvWithDeadline(kDemuxTickS);
    if (!msg.ok()) continue;  // tick elapsed (or a malformed frame)
    std::shared_ptr<Channel> owner;
    std::vector<std::shared_ptr<Channel>> others;
    {
      MutexLock lock(&mu_);
      auto& per_node = inboxes_[static_cast<size_t>(node)];
      auto it = per_node.find(msg->query_id);
      if (it != per_node.end()) owner = it->second;
      if (owner != nullptr && msg->type == MessageType::kHeartbeat) {
        for (const auto& [qid, ch] : per_node) {
          if (qid != msg->query_id) others.push_back(ch);
        }
      }
    }
    if (owner == nullptr) {
      late_frames_dropped_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    // Heartbeat sharing: the owning session gets the sequenced original
    // (its detector validates the sender's sequence stream); every
    // co-resident session gets a seq=0 copy, which NodeContext's
    // unsequenced path turns into a liveness refresh and swallows.
    for (const auto& ch : others) {
      Message copy = *msg;
      copy.seq = 0;
      ch->Push(std::move(copy));
      heartbeats_shared_.fetch_add(1, std::memory_order_relaxed);
    }
    owner->Push(std::move(*msg));
  }
  alive_demux_.fetch_sub(1, std::memory_order_acq_rel);
}

Status SessionTransport::Send(int to, Message msg) {
  if (failed_.load(std::memory_order_acquire)) {
    // Fail-stop: a dead node notifies nobody. Swallow silently, exactly
    // like a fail-stopped physical endpoint.
    return Status::OK();
  }
  if (to < 0 || to >= num_nodes()) {
    return Status::InvalidArgument("send to bad node " + std::to_string(to));
  }
  msg.from = node_id_;
  msg.query_id = query_id_;
  return router_->PhysicalSend(node_id_, to, std::move(msg));
}

Result<Message> SessionTransport::Recv() {
  return inbox_->Pop();
}

Result<Message> SessionTransport::RecvWithDeadline(double timeout_s) {
  std::optional<Message> msg = inbox_->PopFor(timeout_s);
  if (!msg.has_value()) {
    return Status::DeadlineExceeded("recv deadline (" +
                                    std::to_string(timeout_s) +
                                    "s) exceeded");
  }
  return std::move(*msg);
}

std::optional<Message> SessionTransport::TryRecv() {
  return inbox_->TryPop();
}

}  // namespace adaptagg
