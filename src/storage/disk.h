#ifndef ADAPTAGG_STORAGE_DISK_H_
#define ADAPTAGG_STORAGE_DISK_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/mutex.h"
#include "common/result.h"
#include "common/thread_annotations.h"

namespace adaptagg {

/// Opaque handle to a file on a Disk.
using FileId = int64_t;

/// Cumulative I/O counters of one disk. Sequential vs. random reads are
/// distinguished because the paper charges them differently (IO = 1.15 ms,
/// rIO = 15 ms per 4 KB page).
struct DiskStats {
  int64_t pages_read_seq = 0;
  int64_t pages_read_rand = 0;
  int64_t pages_written = 0;

  int64_t pages_read() const { return pages_read_seq + pages_read_rand; }
};

/// Abstract page-oriented store modeling one node's local disk in a
/// shared-nothing cluster. Files are append-only sequences of fixed-size
/// pages, readable by index. Implementations track DiskStats; the paper's
/// I/O times are charged by the caller (CostClock) from those counters.
///
/// Thread-safe: the serving layer runs concurrent query sessions against
/// one node's disks, so every operation and the stats counters are
/// internally synchronized. Per-session I/O attribution (deterministic
/// sequential/random classification independent of neighbors) is layered
/// on top via ScopedDisk, not here.
class Disk {
 public:
  explicit Disk(int page_size) : page_size_(page_size) {}
  virtual ~Disk() = default;

  Disk(const Disk&) = delete;
  Disk& operator=(const Disk&) = delete;

  int page_size() const { return page_size_; }
  DiskStats stats() const {
    MutexLock lock(&stats_mu_);
    return stats_;
  }
  /// Clears the counters and the sequential-read tracking, so that runs
  /// over the same disk start from identical I/O state.
  void ResetStats() {
    MutexLock lock(&stats_mu_);
    stats_ = DiskStats();
    last_read_.clear();
  }

  /// Creates a new empty file and returns its id.
  virtual Result<FileId> CreateFile(const std::string& name) = 0;

  /// Appends one page (must be exactly page_size bytes).
  virtual Status AppendPage(FileId file, const std::vector<uint8_t>& page) = 0;

  /// Reads page `index` into `out` (resized to page_size).
  virtual Status ReadPage(FileId file, int64_t index,
                          std::vector<uint8_t>& out) = 0;

  /// Number of pages currently in the file.
  virtual Result<int64_t> NumPages(FileId file) const = 0;

  /// Removes the file and frees its space.
  virtual Status DeleteFile(FileId file) = 0;

 protected:
  /// Classifies and counts a read of page `index` of `file`: sequential if
  /// it directly follows the previous read of the same file.
  void CountRead(FileId file, int64_t index);
  void CountWrite() {
    MutexLock lock(&stats_mu_);
    ++stats_.pages_written;
  }

 private:
  int page_size_;
  mutable Mutex stats_mu_;
  DiskStats stats_ ADAPTAGG_GUARDED_BY(stats_mu_);
  std::unordered_map<FileId, int64_t> last_read_ ADAPTAGG_GUARDED_BY(stats_mu_);
};

/// In-memory disk: stores pages in RAM but counts I/O as if they hit a
/// real spindle. This is the default substrate — it makes experiment runs
/// deterministic and fast while preserving the paper's I/O cost structure.
class SimDisk : public Disk {
 public:
  explicit SimDisk(int page_size);

  Result<FileId> CreateFile(const std::string& name) override;
  Status AppendPage(FileId file, const std::vector<uint8_t>& page) override;
  Status ReadPage(FileId file, int64_t index,
                  std::vector<uint8_t>& out) override;
  Result<int64_t> NumPages(FileId file) const override;
  Status DeleteFile(FileId file) override;

 private:
  mutable Mutex mu_;
  FileId next_id_ ADAPTAGG_GUARDED_BY(mu_) = 1;
  std::unordered_map<FileId, std::vector<std::vector<uint8_t>>> files_
      ADAPTAGG_GUARDED_BY(mu_);
};

/// Real-file disk: each FileId maps to a file under `dir`, accessed with
/// positioned reads/writes. Used to validate that the engine also runs on
/// actual storage.
class FileDisk : public Disk {
 public:
  /// `dir` must exist and be writable.
  FileDisk(std::string dir, int page_size);
  ~FileDisk() override;

  Result<FileId> CreateFile(const std::string& name) override;
  Status AppendPage(FileId file, const std::vector<uint8_t>& page) override;
  Status ReadPage(FileId file, int64_t index,
                  std::vector<uint8_t>& out) override;
  Result<int64_t> NumPages(FileId file) const override;
  Status DeleteFile(FileId file) override;

 private:
  struct OpenFile {
    int fd = -1;
    int64_t num_pages = 0;
    std::string path;
  };

  std::string dir_;
  mutable Mutex mu_;
  FileId next_id_ ADAPTAGG_GUARDED_BY(mu_) = 1;
  std::unordered_map<FileId, OpenFile> files_ ADAPTAGG_GUARDED_BY(mu_);
};

}  // namespace adaptagg

#endif  // ADAPTAGG_STORAGE_DISK_H_
