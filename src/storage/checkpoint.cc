#include "storage/checkpoint.h"

#include <algorithm>
#include <cstring>

#include "common/crc32c.h"

namespace adaptagg {
namespace {

// "ADAPCKP1", little-endian. Rejecting a bad magic early gives torn page-0
// writes a crisp diagnosis even when the zeroed tail happens to CRC.
constexpr uint64_t kCheckpointMagic = 0x31504B4350414441ull;
constexpr uint32_t kCheckpointVersion = 1;

// Per-page overhead: [u32 crc32c][u32 used], followed by `used` payload
// bytes and zero padding. The CRC covers everything after itself.
constexpr size_t kPageHeaderBytes = 8;

// Fixed manifest bytes before the watermark array: magic(8) + version(4) +
// node(4) + scan_hwm(8) + scan_complete(4) + num_peers(4) + local_bytes(8)
// + global_bytes(8).
constexpr size_t kManifestFixedBytes = 48;

void PutU32(std::vector<uint8_t>* out, uint32_t v) {
  const size_t at = out->size();
  out->resize(at + 4);
  std::memcpy(out->data() + at, &v, 4);
}

void PutU64(std::vector<uint8_t>* out, uint64_t v) {
  const size_t at = out->size();
  out->resize(at + 8);
  std::memcpy(out->data() + at, &v, 8);
}

uint32_t GetU32(const uint8_t* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}

uint64_t GetU64(const uint8_t* p) {
  uint64_t v;
  std::memcpy(&v, p, 8);
  return v;
}

// Flattens the manifest and both partial sections into one byte stream;
// the pager below chunks it into CRC-signed pages.
std::vector<uint8_t> SerializeBlob(int node, const CheckpointState& state) {
  std::vector<uint8_t> blob;
  blob.reserve(kManifestFixedBytes + 8 * state.fold_watermarks.size() +
               state.local_partials.size() + state.global_partials.size());
  PutU64(&blob, kCheckpointMagic);
  PutU32(&blob, kCheckpointVersion);
  PutU32(&blob, static_cast<uint32_t>(node));
  PutU64(&blob, static_cast<uint64_t>(state.scan_hwm));
  PutU32(&blob, state.scan_complete ? 1u : 0u);
  PutU32(&blob, static_cast<uint32_t>(state.fold_watermarks.size()));
  PutU64(&blob, state.local_partials.size());
  PutU64(&blob, state.global_partials.size());
  for (uint64_t wm : state.fold_watermarks) PutU64(&blob, wm);
  blob.insert(blob.end(), state.local_partials.begin(),
              state.local_partials.end());
  blob.insert(blob.end(), state.global_partials.begin(),
              state.global_partials.end());
  return blob;
}

}  // namespace

CheckpointStore::CheckpointStore(int num_nodes, int page_size,
                                 DiskFactory factory)
    : page_size_(page_size) {
  nodes_.resize(static_cast<size_t>(num_nodes));
  for (int i = 0; i < num_nodes; ++i) {
    nodes_[static_cast<size_t>(i)].disk =
        factory ? factory(i) : std::make_unique<SimDisk>(page_size);
  }
}

int64_t CheckpointStore::PagesFor(const CheckpointState& state) const {
  const size_t blob = kManifestFixedBytes + 8 * state.fold_watermarks.size() +
                      state.local_partials.size() +
                      state.global_partials.size();
  const size_t cap = static_cast<size_t>(page_size_) - kPageHeaderBytes;
  return static_cast<int64_t>((blob + cap - 1) / cap);
}

int64_t CheckpointStore::last_write_bytes(int node) const {
  if (node < 0 || node >= num_nodes()) return 0;
  return nodes_[static_cast<size_t>(node)].last_write_bytes;
}

Status CheckpointStore::Write(int node, const CheckpointState& state) {
  if (node < 0 || node >= num_nodes()) {
    return Status::InvalidArgument("checkpoint node out of range: " +
                                   std::to_string(node));
  }
  NodeSlot& slot = nodes_[static_cast<size_t>(node)];
  const std::vector<uint8_t> blob = SerializeBlob(node, state);

  auto file_or = slot.disk->CreateFile(
      "ckpt_n" + std::to_string(node) + "_g" +
      std::to_string(slot.generation++));
  if (!file_or.ok()) return file_or.status();
  const FileId file = *file_or;

  const size_t cap = static_cast<size_t>(page_size_) - kPageHeaderBytes;
  std::vector<uint8_t> page(static_cast<size_t>(page_size_));
  int64_t pages = 0;
  for (size_t off = 0; off < blob.size(); off += cap) {
    const uint32_t used =
        static_cast<uint32_t>(std::min(cap, blob.size() - off));
    std::fill(page.begin(), page.end(), uint8_t{0});
    std::memcpy(page.data() + 4, &used, 4);
    std::memcpy(page.data() + kPageHeaderBytes, blob.data() + off, used);
    const uint32_t crc =
        Crc32c(0, page.data() + 4, static_cast<size_t>(page_size_) - 4);
    std::memcpy(page.data(), &crc, 4);
    Status st = slot.disk->AppendPage(file, page);
    if (!st.ok()) {
      // Abandon this generation; the previous checkpoint stays latest.
      (void)slot.disk->DeleteFile(file);  // best-effort space reclaim
      return st;
    }
    ++pages;
  }

  if (slot.latest >= 0) {
    (void)slot.disk->DeleteFile(slot.latest);  // superseded; best-effort
  }
  slot.latest = file;
  slot.latest_pages = pages;
  slot.last_write_bytes = static_cast<int64_t>(blob.size());
  return Status::OK();
}

bool CheckpointStore::Has(int node) const {
  if (node < 0 || node >= num_nodes()) return false;
  return nodes_[static_cast<size_t>(node)].latest >= 0;
}

void CheckpointStore::Drop(int node) {
  if (node < 0 || node >= num_nodes()) return;
  NodeSlot& slot = nodes_[static_cast<size_t>(node)];
  if (slot.latest >= 0) {
    (void)slot.disk->DeleteFile(slot.latest);  // best-effort
  }
  slot.latest = -1;
  slot.latest_pages = 0;
}

Result<CheckpointState> CheckpointStore::Load(int node) const {
  if (node < 0 || node >= num_nodes()) {
    return Status::InvalidArgument("checkpoint node out of range: " +
                                   std::to_string(node));
  }
  const NodeSlot& slot = nodes_[static_cast<size_t>(node)];
  if (slot.latest < 0) {
    return Status::NotFound("no checkpoint for node " + std::to_string(node));
  }

  std::vector<uint8_t> blob;
  std::vector<uint8_t> page;
  for (int64_t i = 0; i < slot.latest_pages; ++i) {
    Status st = slot.disk->ReadPage(slot.latest, i, page);
    if (!st.ok()) {
      return Status::DataLoss("checkpoint page " + std::to_string(i) +
                              " of node " + std::to_string(node) +
                              " unreadable: " + st.message());
    }
    const uint32_t stored = GetU32(page.data());
    const uint32_t actual =
        Crc32c(0, page.data() + 4, static_cast<size_t>(page_size_) - 4);
    if (stored != actual) {
      return Status::DataLoss(
          "checkpoint page " + std::to_string(i) + " of node " +
          std::to_string(node) +
          " failed CRC-32C (torn or corrupted write)");
    }
    const uint32_t used = GetU32(page.data() + 4);
    if (used > static_cast<size_t>(page_size_) - kPageHeaderBytes) {
      return Status::DataLoss("checkpoint page " + std::to_string(i) +
                              " of node " + std::to_string(node) +
                              " has impossible payload length " +
                              std::to_string(used));
    }
    blob.insert(blob.end(), page.begin() + kPageHeaderBytes,
                page.begin() + kPageHeaderBytes + used);
  }

  if (blob.size() < kManifestFixedBytes) {
    return Status::DataLoss("checkpoint manifest of node " +
                            std::to_string(node) + " truncated: " +
                            std::to_string(blob.size()) + " bytes");
  }
  const uint8_t* p = blob.data();
  if (GetU64(p) != kCheckpointMagic) {
    return Status::DataLoss("checkpoint of node " + std::to_string(node) +
                            " has bad magic (torn manifest write)");
  }
  if (GetU32(p + 8) != kCheckpointVersion) {
    return Status::DataLoss("checkpoint of node " + std::to_string(node) +
                            " has unsupported version " +
                            std::to_string(GetU32(p + 8)));
  }
  if (GetU32(p + 12) != static_cast<uint32_t>(node)) {
    return Status::DataLoss("checkpoint of node " + std::to_string(node) +
                            " was written by node " +
                            std::to_string(GetU32(p + 12)));
  }
  CheckpointState state;
  state.scan_hwm = static_cast<int64_t>(GetU64(p + 16));
  state.scan_complete = GetU32(p + 24) != 0;
  const uint32_t num_peers = GetU32(p + 28);
  const uint64_t local_bytes = GetU64(p + 32);
  const uint64_t global_bytes = GetU64(p + 40);
  const uint64_t expected = kManifestFixedBytes +
                            8ull * num_peers + local_bytes + global_bytes;
  if (num_peers > (1u << 20) || blob.size() != expected) {
    return Status::DataLoss("checkpoint of node " + std::to_string(node) +
                            " is internally inconsistent: " +
                            std::to_string(blob.size()) + " bytes, expected " +
                            std::to_string(expected));
  }
  state.fold_watermarks.resize(num_peers);
  size_t off = kManifestFixedBytes;
  for (uint32_t i = 0; i < num_peers; ++i) {
    state.fold_watermarks[i] = GetU64(p + off);
    off += 8;
  }
  state.local_partials.assign(p + off, p + off + local_bytes);
  off += local_bytes;
  state.global_partials.assign(p + off, p + off + global_bytes);
  return state;
}

}  // namespace adaptagg
