#ifndef ADAPTAGG_STORAGE_SCOPED_DISK_H_
#define ADAPTAGG_STORAGE_SCOPED_DISK_H_

#include <string>
#include <vector>

#include "storage/disk.h"

namespace adaptagg {

/// Per-session view of a shared Disk. Data operations forward to the
/// underlying disk (same FileId space, so partition files created on the
/// base are readable through the view), but the DiskStats counters — and
/// with them the sequential/random read classification — are kept
/// per-view. Concurrent query sessions interleave their page accesses on
/// the shared base disk; charging modeled I/O time off the base counters
/// would make each query's simulated time depend on its neighbors.
/// Charging off a ScopedDisk keeps every session's I/O accounting
/// byte-identical to the same query run alone.
///
/// The base Disk must outlive every ScopedDisk over it.
class ScopedDisk : public Disk {
 public:
  explicit ScopedDisk(Disk* base) : Disk(base->page_size()), base_(base) {}

  Disk* base() const { return base_; }

  Result<FileId> CreateFile(const std::string& name) override {
    return base_->CreateFile(name);
  }

  Status AppendPage(FileId file, const std::vector<uint8_t>& page) override {
    ADAPTAGG_RETURN_IF_ERROR(base_->AppendPage(file, page));
    CountWrite();
    return Status::OK();
  }

  Status ReadPage(FileId file, int64_t index,
                  std::vector<uint8_t>& out) override {
    ADAPTAGG_RETURN_IF_ERROR(base_->ReadPage(file, index, out));
    CountRead(file, index);
    return Status::OK();
  }

  Result<int64_t> NumPages(FileId file) const override {
    return base_->NumPages(file);
  }

  Status DeleteFile(FileId file) override { return base_->DeleteFile(file); }

 private:
  Disk* base_;
};

}  // namespace adaptagg

#endif  // ADAPTAGG_STORAGE_SCOPED_DISK_H_
