#ifndef ADAPTAGG_STORAGE_FAULTY_DISK_H_
#define ADAPTAGG_STORAGE_FAULTY_DISK_H_

#include <algorithm>
#include <cstddef>

#include "storage/disk.h"

namespace adaptagg {

/// A SimDisk with programmable failures, for exercising the engine's
/// error paths: after the configured number of successful operations of
/// a kind, every further operation of that kind fails with IOError. Used
/// by the fault-injection tests; algorithms must surface these errors as
/// Status (never hang or crash).
class FaultySimDisk : public SimDisk {
 public:
  explicit FaultySimDisk(int page_size) : SimDisk(page_size) {}

  /// Fail all reads after `n` more successful reads (-1 disables).
  void FailReadsAfter(int64_t n) { reads_left_ = n; }
  /// Fail all appends after `n` more successful appends (-1 disables).
  void FailWritesAfter(int64_t n) { writes_left_ = n; }

  Status ReadPage(FileId file, int64_t index,
                  std::vector<uint8_t>& out) override {
    if (reads_left_ == 0) {
      return Status::IOError("injected read fault");
    }
    if (reads_left_ > 0) --reads_left_;
    return SimDisk::ReadPage(file, index, out);
  }

  Status AppendPage(FileId file, const std::vector<uint8_t>& page) override {
    if (writes_left_ == 0) {
      return Status::IOError("injected write fault");
    }
    if (writes_left_ > 0) --writes_left_;
    return SimDisk::AppendPage(file, page);
  }

 private:
  int64_t reads_left_ = -1;
  int64_t writes_left_ = -1;
};

/// A SimDisk that models a torn write: the Nth appended page is persisted
/// with its tail zeroed out (as if power was lost mid-sector), but the
/// append still reports success — exactly what a real crash-during-write
/// looks like to the writer. Readers only discover the damage later, so
/// this is the fixture for proving that checkpoint/spill CRC verification
/// turns silent corruption into a descriptive kDataLoss instead of a
/// wrong answer.
class TornWriteDisk : public SimDisk {
 public:
  explicit TornWriteDisk(int page_size) : SimDisk(page_size) {}

  /// Tear the `n`th append from now (0 = the very next one; -1 disables).
  void TearWrite(int64_t n) { tear_at_ = n; }

  /// Appends this disk has performed (torn one included).
  int64_t writes_seen() const { return writes_seen_; }

  Status AppendPage(FileId file, const std::vector<uint8_t>& page) override {
    const int64_t at = writes_seen_++;
    if (at == tear_at_) {
      std::vector<uint8_t> torn = page;
      const size_t keep = torn.size() / 2;
      std::fill(torn.begin() + static_cast<ptrdiff_t>(keep), torn.end(),
                uint8_t{0});
      return SimDisk::AppendPage(file, torn);
    }
    return SimDisk::AppendPage(file, page);
  }

 private:
  int64_t tear_at_ = -1;
  int64_t writes_seen_ = 0;
};

}  // namespace adaptagg

#endif  // ADAPTAGG_STORAGE_FAULTY_DISK_H_
