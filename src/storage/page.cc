#include "storage/page.h"

#include <algorithm>
#include <string>

#include "common/logging.h"

namespace adaptagg {

PageBuilder::PageBuilder(int page_size, int record_size)
    : page_size_(page_size),
      record_size_(record_size),
      capacity_(Capacity(page_size, record_size)),
      bytes_(static_cast<size_t>(page_size), 0) {
  ADAPTAGG_CHECK(capacity_ > 0)
      << "record size " << record_size << " too large for page size "
      << page_size;
}

int PageBuilder::Capacity(int page_size, int record_size) {
  return (page_size - static_cast<int>(sizeof(uint32_t))) / record_size;
}

void PageBuilder::Append(const uint8_t* data) {
  ADAPTAGG_DCHECK(!full());
  uint8_t* dst = bytes_.data() + sizeof(uint32_t) +
                 static_cast<size_t>(count_) *
                     static_cast<size_t>(record_size_);
  std::memcpy(dst, data, static_cast<size_t>(record_size_));
  ++count_;
}

int PageBuilder::AppendBatch(const uint8_t* recs, int n) {
  n = std::min(n, remaining());
  if (n <= 0) return 0;
  uint8_t* dst = bytes_.data() + sizeof(uint32_t) +
                 static_cast<size_t>(count_) *
                     static_cast<size_t>(record_size_);
  std::memcpy(dst, recs,
              static_cast<size_t>(n) * static_cast<size_t>(record_size_));
  count_ += n;
  return n;
}

std::vector<uint8_t> PageBuilder::Finish() {
  uint32_t n = static_cast<uint32_t>(count_);
  std::memcpy(bytes_.data(), &n, sizeof(n));
  std::vector<uint8_t> out = std::move(bytes_);
  bytes_.assign(static_cast<size_t>(page_size_), 0);
  count_ = 0;
  return out;
}

std::vector<uint8_t> PageBuilder::FinishWire(
    std::vector<uint8_t> replacement) {
  uint32_t n = static_cast<uint32_t>(count_);
  std::memcpy(bytes_.data(), &n, sizeof(n));
  bytes_.resize(sizeof(uint32_t) + static_cast<size_t>(count_) *
                                       static_cast<size_t>(record_size_));
  std::vector<uint8_t> out = std::move(bytes_);
  bytes_ = std::move(replacement);
  bytes_.resize(static_cast<size_t>(page_size_));
  count_ = 0;
  return out;
}

Result<int> ValidateWirePage(const uint8_t* payload, size_t payload_size,
                             int page_size, int record_size) {
  if (payload_size < sizeof(uint32_t)) {
    return Status::NetworkError("page payload too short for its header: " +
                                std::to_string(payload_size) + " bytes");
  }
  uint32_t n;
  std::memcpy(&n, payload, sizeof(n));
  const int capacity = PageBuilder::Capacity(page_size, record_size);
  if (n > static_cast<uint32_t>(capacity)) {
    return Status::NetworkError(
        "forged page header: claims " + std::to_string(n) + " records but a " +
        std::to_string(page_size) + "-byte page of " +
        std::to_string(record_size) + "-byte records holds at most " +
        std::to_string(capacity));
  }
  const size_t need =
      sizeof(uint32_t) +
      static_cast<size_t>(n) * static_cast<size_t>(record_size);
  if (need > payload_size) {
    return Status::NetworkError(
        "truncated page: header claims " + std::to_string(n) + " records (" +
        std::to_string(need) + " bytes) but the payload has only " +
        std::to_string(payload_size) + " bytes");
  }
  return static_cast<int>(n);
}

std::vector<uint8_t> PagePool::Acquire() {
  if (!free_.empty()) {
    std::vector<uint8_t> buf = std::move(free_.back());
    free_.pop_back();
    ++hits_;
    return buf;
  }
  ++allocs_;
  return {};
}

void PagePool::Release(std::vector<uint8_t> buf) {
  if (free_.size() >= max_buffers_ || buf.capacity() == 0) return;
  free_.push_back(std::move(buf));
}

PageReader::PageReader(const uint8_t* page, int page_size, int record_size)
    : page_(page), record_size_(record_size) {
  uint32_t n;
  std::memcpy(&n, page, sizeof(n));
  count_ = static_cast<int>(n);
  ADAPTAGG_CHECK(count_ <= PageBuilder::Capacity(page_size, record_size))
      << "corrupt page header: " << count_ << " records";
}

}  // namespace adaptagg
