#include "storage/page.h"

#include "common/logging.h"

namespace adaptagg {

PageBuilder::PageBuilder(int page_size, int record_size)
    : page_size_(page_size),
      record_size_(record_size),
      capacity_(Capacity(page_size, record_size)),
      bytes_(static_cast<size_t>(page_size), 0) {
  ADAPTAGG_CHECK(capacity_ > 0)
      << "record size " << record_size << " too large for page size "
      << page_size;
}

int PageBuilder::Capacity(int page_size, int record_size) {
  return (page_size - static_cast<int>(sizeof(uint32_t))) / record_size;
}

void PageBuilder::Append(const uint8_t* data) {
  ADAPTAGG_DCHECK(!full());
  uint8_t* dst = bytes_.data() + sizeof(uint32_t) +
                 static_cast<size_t>(count_) *
                     static_cast<size_t>(record_size_);
  std::memcpy(dst, data, static_cast<size_t>(record_size_));
  ++count_;
}

std::vector<uint8_t> PageBuilder::Finish() {
  uint32_t n = static_cast<uint32_t>(count_);
  std::memcpy(bytes_.data(), &n, sizeof(n));
  std::vector<uint8_t> out = std::move(bytes_);
  bytes_.assign(static_cast<size_t>(page_size_), 0);
  count_ = 0;
  return out;
}

PageReader::PageReader(const uint8_t* page, int page_size, int record_size)
    : page_(page), record_size_(record_size) {
  uint32_t n;
  std::memcpy(&n, page, sizeof(n));
  count_ = static_cast<int>(n);
  ADAPTAGG_CHECK(count_ <= PageBuilder::Capacity(page_size, record_size))
      << "corrupt page header: " << count_ << " records";
}

}  // namespace adaptagg
