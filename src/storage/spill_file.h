#ifndef ADAPTAGG_STORAGE_SPILL_FILE_H_
#define ADAPTAGG_STORAGE_SPILL_FILE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "storage/disk.h"

namespace adaptagg {

/// Tag of a spilled record. Aggregation overflow buckets can contain a mix
/// of raw (projected input) tuples and partial-aggregate tuples — e.g. in
/// the Adaptive Two Phase global phase — so every spilled record carries a
/// one-byte tag.
enum class SpillTag : uint8_t { kRaw = 0, kPartial = 1 };

/// Writes tagged fixed-width records to a spill file on a Disk, packed
/// into pages:
///   page := [uint32 frame_count] ([uint8 tag][record bytes])*
/// Records never span pages. The raw and partial record widths are fixed
/// per writer.
///
/// Integrity: whenever at least four bytes of trailing padding remain,
/// Flush signs the page — bit 31 of frame_count is set and a CRC-32C over
/// everything before the last word is stored in the final four bytes.
/// SpillReader verifies the signature and reports a mismatch as a
/// descriptive kDataLoss instead of decoding garbage. Exactly-full pages
/// have no padding and stay unsigned; signing never changes page counts,
/// so modeled I/O is unaffected.
class SpillWriter {
 public:
  /// Creates the backing file. Widths are in bytes; a width of 0 means the
  /// corresponding tag is never written.
  static Result<SpillWriter> Create(Disk* disk, const std::string& name,
                                    int raw_width, int partial_width);

  /// Appends one record of the given tag.
  Status Append(SpillTag tag, const uint8_t* record);

  /// Flushes the trailing partial page.
  Status Flush();

  int64_t num_records() const { return num_records_; }
  int64_t num_pages() const { return num_pages_; }
  FileId file_id() const { return file_; }
  Disk* disk() const { return disk_; }
  int raw_width() const { return raw_width_; }
  int partial_width() const { return partial_width_; }

  /// Deletes the backing file (after the bucket has been consumed).
  Status Drop();

 private:
  SpillWriter(Disk* disk, FileId file, int raw_width, int partial_width);

  int WidthOf(SpillTag tag) const {
    return tag == SpillTag::kRaw ? raw_width_ : partial_width_;
  }

  Disk* disk_;
  FileId file_;
  int raw_width_;
  int partial_width_;
  std::vector<uint8_t> page_;
  int offset_ = 0;
  uint32_t frames_in_page_ = 0;
  int64_t num_records_ = 0;
  int64_t num_pages_ = 0;
};

/// Sequentially reads back a flushed spill file.
class SpillReader {
 public:
  explicit SpillReader(const SpillWriter* writer);

  /// Returns the next record, or false at end of file or on a disk error
  /// — distinguish by checking status(). `*tag` and `*record` are valid
  /// until the following Next() call.
  bool Next(SpillTag* tag, const uint8_t** record);

  /// OK unless a page read failed.
  const Status& status() const { return status_; }

  int64_t pages_read() const { return pages_read_; }

 private:
  bool LoadPage(int64_t index);

  const SpillWriter* writer_;
  std::vector<uint8_t> page_bytes_;
  Status status_;
  int64_t next_page_ = 0;
  uint32_t frames_in_page_ = 0;
  uint32_t frame_in_page_ = 0;
  int offset_ = 0;
  int64_t pages_read_ = 0;
};

}  // namespace adaptagg

#endif  // ADAPTAGG_STORAGE_SPILL_FILE_H_
