#include "storage/partitioned_relation.h"

namespace adaptagg {

Result<PartitionedRelation> PartitionedRelation::Create(Schema schema,
                                                        int num_nodes,
                                                        int page_size) {
  if (num_nodes <= 0) {
    return Status::InvalidArgument("num_nodes must be positive");
  }
  PartitionedRelation rel;
  rel.schema_ = std::make_unique<Schema>(std::move(schema));
  rel.disks_.reserve(static_cast<size_t>(num_nodes));
  rel.partitions_.reserve(static_cast<size_t>(num_nodes));
  for (int i = 0; i < num_nodes; ++i) {
    rel.disks_.push_back(std::make_unique<SimDisk>(page_size));
    ADAPTAGG_ASSIGN_OR_RETURN(
        HeapFile hf, HeapFile::Create(rel.disks_.back().get(),
                                      rel.schema_.get(),
                                      "part" + std::to_string(i)));
    rel.partitions_.push_back(std::make_unique<HeapFile>(std::move(hf)));
  }
  return rel;
}

Result<PartitionedRelation> PartitionedRelation::CreateWithDisks(
    Schema schema, std::vector<std::unique_ptr<Disk>> disks) {
  if (disks.empty()) {
    return Status::InvalidArgument("need at least one disk");
  }
  for (const auto& d : disks) {
    if (d == nullptr) return Status::InvalidArgument("null disk");
    if (d->page_size() != disks[0]->page_size()) {
      return Status::InvalidArgument("disks must share a page size");
    }
  }
  PartitionedRelation rel;
  rel.schema_ = std::make_unique<Schema>(std::move(schema));
  rel.disks_ = std::move(disks);
  rel.partitions_.reserve(rel.disks_.size());
  for (size_t i = 0; i < rel.disks_.size(); ++i) {
    ADAPTAGG_ASSIGN_OR_RETURN(
        HeapFile hf, HeapFile::Create(rel.disks_[i].get(),
                                      rel.schema_.get(),
                                      "part" + std::to_string(i)));
    rel.partitions_.push_back(std::make_unique<HeapFile>(std::move(hf)));
  }
  return rel;
}

Status PartitionedRelation::Append(int node, const TupleView& tuple) {
  BumpVersion();
  return partitions_[node]->Append(tuple);
}

Status PartitionedRelation::Flush() {
  for (auto& p : partitions_) {
    ADAPTAGG_RETURN_IF_ERROR(p->Flush());
  }
  return Status::OK();
}

int64_t PartitionedRelation::total_tuples() const {
  int64_t total = 0;
  for (const auto& p : partitions_) total += p->num_tuples();
  return total;
}

void PartitionedRelation::ResetDiskStats() {
  for (auto& d : disks_) d->ResetStats();
}

}  // namespace adaptagg
