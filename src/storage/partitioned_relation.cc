#include "storage/partitioned_relation.h"

namespace adaptagg {

Result<PartitionedRelation> PartitionedRelation::Create(Schema schema,
                                                        int num_nodes,
                                                        int page_size) {
  if (num_nodes <= 0) {
    return Status::InvalidArgument("num_nodes must be positive");
  }
  PartitionedRelation rel;
  rel.schema_ = std::make_unique<Schema>(std::move(schema));
  rel.disks_.reserve(static_cast<size_t>(num_nodes));
  rel.partitions_.reserve(static_cast<size_t>(num_nodes));
  for (int i = 0; i < num_nodes; ++i) {
    rel.disks_.push_back(std::make_unique<SimDisk>(page_size));
    ADAPTAGG_ASSIGN_OR_RETURN(
        HeapFile hf, HeapFile::Create(rel.disks_.back().get(),
                                      rel.schema_.get(),
                                      "part" + std::to_string(i)));
    rel.partitions_.push_back(std::make_unique<HeapFile>(std::move(hf)));
  }
  return rel;
}

Result<PartitionedRelation> PartitionedRelation::CreateWithDisks(
    Schema schema, std::vector<std::unique_ptr<Disk>> disks) {
  if (disks.empty()) {
    return Status::InvalidArgument("need at least one disk");
  }
  for (const auto& d : disks) {
    if (d == nullptr) return Status::InvalidArgument("null disk");
    if (d->page_size() != disks[0]->page_size()) {
      return Status::InvalidArgument("disks must share a page size");
    }
  }
  PartitionedRelation rel;
  rel.schema_ = std::make_unique<Schema>(std::move(schema));
  rel.disks_ = std::move(disks);
  rel.partitions_.reserve(rel.disks_.size());
  for (size_t i = 0; i < rel.disks_.size(); ++i) {
    ADAPTAGG_ASSIGN_OR_RETURN(
        HeapFile hf, HeapFile::Create(rel.disks_[i].get(),
                                      rel.schema_.get(),
                                      "part" + std::to_string(i)));
    rel.partitions_.push_back(std::make_unique<HeapFile>(std::move(hf)));
  }
  return rel;
}

Status PartitionedRelation::Append(int node, const TupleView& tuple) {
  BumpVersion();
  return partitions_[node]->Append(tuple);
}

Status PartitionedRelation::Flush() {
  for (auto& p : partitions_) {
    ADAPTAGG_RETURN_IF_ERROR(p->Flush());
  }
  return Status::OK();
}

int64_t PartitionedRelation::total_tuples() const {
  int64_t total = 0;
  for (const auto& p : partitions_) total += p->num_tuples();
  return total;
}

void PartitionedRelation::ResetDiskStats() {
  for (auto& d : disks_) d->ResetStats();
}

Status PartitionedRelation::Rebalance(int new_num_nodes) {
  if (new_num_nodes <= 0) {
    return Status::InvalidArgument("num_nodes must be positive");
  }
  const int page_size = disks_[0]->page_size();
  std::vector<std::unique_ptr<Disk>> new_disks;
  std::vector<std::unique_ptr<HeapFile>> new_parts;
  new_disks.reserve(static_cast<size_t>(new_num_nodes));
  new_parts.reserve(static_cast<size_t>(new_num_nodes));
  for (int i = 0; i < new_num_nodes; ++i) {
    new_disks.push_back(std::make_unique<SimDisk>(page_size));
    ADAPTAGG_ASSIGN_OR_RETURN(
        HeapFile hf, HeapFile::Create(new_disks.back().get(), schema_.get(),
                                      "part" + std::to_string(i)));
    new_parts.push_back(std::make_unique<HeapFile>(std::move(hf)));
  }
  // Round-robin redistribution: preserves the global multiset and keeps
  // the new partitions balanced to within one tuple.
  int dest = 0;
  const uint8_t* run[64];
  for (auto& part : partitions_) {
    HeapFileScanner scan(part.get());
    while (true) {
      const int got = scan.NextRun(run, 64);
      if (got == 0) break;
      for (int r = 0; r < got; ++r) {
        ADAPTAGG_RETURN_IF_ERROR(
            new_parts[static_cast<size_t>(dest)]->AppendRaw(run[r]));
        dest = (dest + 1) % new_num_nodes;
      }
    }
    ADAPTAGG_RETURN_IF_ERROR(scan.status());
  }
  for (auto& p : new_parts) {
    ADAPTAGG_RETURN_IF_ERROR(p->Flush());
  }
  disks_ = std::move(new_disks);
  partitions_ = std::move(new_parts);
  BumpVersion();
  return Status::OK();
}

}  // namespace adaptagg
