#ifndef ADAPTAGG_STORAGE_PARTITIONED_RELATION_H_
#define ADAPTAGG_STORAGE_PARTITIONED_RELATION_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/result.h"
#include "storage/heap_file.h"

namespace adaptagg {

/// A relation horizontally partitioned across N shared-nothing nodes: one
/// HeapFile per node, each living on that node's own Disk. Owns the disks
/// and the schema so that a generated workload is a self-contained object.
class PartitionedRelation {
 public:
  /// Creates an empty relation with `num_nodes` partitions, each on a
  /// fresh SimDisk of `page_size` bytes.
  static Result<PartitionedRelation> Create(Schema schema, int num_nodes,
                                            int page_size = kDefaultPageSize);

  /// Creates an empty relation over caller-provided disks (one per
  /// node); all disks must share the same page size. Used e.g. to plant
  /// FaultySimDisk under a node in fault-injection tests.
  static Result<PartitionedRelation> CreateWithDisks(
      Schema schema, std::vector<std::unique_ptr<Disk>> disks);

  int num_nodes() const { return static_cast<int>(partitions_.size()); }
  const Schema& schema() const { return *schema_; }

  HeapFile& partition(int node) { return *partitions_[node]; }
  const HeapFile& partition(int node) const { return *partitions_[node]; }
  Disk& disk(int node) { return *disks_[node]; }

  /// Appends a tuple to node `node`'s partition.
  Status Append(int node, const TupleView& tuple);

  /// Flushes all partitions (must be called once after loading).
  Status Flush();

  /// Total tuples across all partitions.
  int64_t total_tuples() const;

  /// Resets per-disk I/O counters (call between experiment runs).
  void ResetDiskStats();

  /// Redistributes every tuple round-robin over `new_num_nodes` fresh
  /// partitions (on fresh SimDisks with the current page size),
  /// replacing the old layout — the rebalancing half of an elastic
  /// node join/leave. Preserves the global tuple multiset, balances
  /// partitions to within one tuple, and bumps the version so cached
  /// results keyed on the old layout can never be served.
  Status Rebalance(int new_num_nodes);

  /// Monotonic mutation counter, the cache-invalidation half of the
  /// serving layer's result-cache key: any Append (and any explicit
  /// BumpVersion by an out-of-band mutator) advances it, so cached
  /// results for older versions can never be served. Thread-safe; starts
  /// at 1 so 0 can mean "no relation" in cache keys.
  uint64_t version() const {
    return version_->load(std::memory_order_acquire);
  }
  void BumpVersion() { version_->fetch_add(1, std::memory_order_acq_rel); }

 private:
  PartitionedRelation() = default;

  std::unique_ptr<Schema> schema_;
  std::vector<std::unique_ptr<Disk>> disks_;
  std::vector<std::unique_ptr<HeapFile>> partitions_;
  // Heap-allocated so the relation stays movable (Create returns by value).
  std::unique_ptr<std::atomic<uint64_t>> version_ =
      std::make_unique<std::atomic<uint64_t>>(1);
};

}  // namespace adaptagg

#endif  // ADAPTAGG_STORAGE_PARTITIONED_RELATION_H_
