#include "storage/disk.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/logging.h"

namespace adaptagg {

void Disk::CountRead(FileId file, int64_t index) {
  MutexLock lock(&stats_mu_);
  auto it = last_read_.find(file);
  if (it != last_read_.end() && it->second + 1 == index) {
    ++stats_.pages_read_seq;
  } else if (index == 0 && it == last_read_.end()) {
    // First page of a fresh scan counts as sequential (a scan's initial
    // seek is amortized over the whole scan in the paper's model).
    ++stats_.pages_read_seq;
  } else {
    ++stats_.pages_read_rand;
  }
  last_read_[file] = index;
}

// ---------------------------------------------------------------------------
// SimDisk

SimDisk::SimDisk(int page_size) : Disk(page_size) {}

Result<FileId> SimDisk::CreateFile(const std::string& name) {
  (void)name;  // names are only meaningful for FileDisk paths
  MutexLock lock(&mu_);
  FileId id = next_id_++;
  files_.emplace(id, std::vector<std::vector<uint8_t>>());
  return id;
}

Status SimDisk::AppendPage(FileId file, const std::vector<uint8_t>& page) {
  {
    MutexLock lock(&mu_);
    auto it = files_.find(file);
    if (it == files_.end()) {
      return Status::NotFound("SimDisk: no file " + std::to_string(file));
    }
    if (static_cast<int>(page.size()) != page_size()) {
      return Status::InvalidArgument("page size mismatch: got " +
                                     std::to_string(page.size()));
    }
    it->second.push_back(page);
  }
  CountWrite();
  return Status::OK();
}

Status SimDisk::ReadPage(FileId file, int64_t index,
                         std::vector<uint8_t>& out) {
  {
    MutexLock lock(&mu_);
    auto it = files_.find(file);
    if (it == files_.end()) {
      return Status::NotFound("SimDisk: no file " + std::to_string(file));
    }
    if (index < 0 || index >= static_cast<int64_t>(it->second.size())) {
      return Status::OutOfRange("SimDisk: page " + std::to_string(index) +
                                " of " + std::to_string(it->second.size()));
    }
    out = it->second[static_cast<size_t>(index)];
  }
  CountRead(file, index);
  return Status::OK();
}

Result<int64_t> SimDisk::NumPages(FileId file) const {
  MutexLock lock(&mu_);
  auto it = files_.find(file);
  if (it == files_.end()) {
    return Status::NotFound("SimDisk: no file " + std::to_string(file));
  }
  return static_cast<int64_t>(it->second.size());
}

Status SimDisk::DeleteFile(FileId file) {
  MutexLock lock(&mu_);
  if (files_.erase(file) == 0) {
    return Status::NotFound("SimDisk: no file " + std::to_string(file));
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// FileDisk

FileDisk::FileDisk(std::string dir, int page_size)
    : Disk(page_size), dir_(std::move(dir)) {}

FileDisk::~FileDisk() {
  MutexLock lock(&mu_);
  for (auto& [id, f] : files_) {
    if (f.fd >= 0) {
      ::close(f.fd);
      ::unlink(f.path.c_str());
    }
  }
}

Result<FileId> FileDisk::CreateFile(const std::string& name) {
  MutexLock lock(&mu_);
  FileId id = next_id_++;
  OpenFile f;
  f.path = dir_ + "/adaptagg_" + std::to_string(id) + "_" + name;
  f.fd = ::open(f.path.c_str(), O_RDWR | O_CREAT | O_TRUNC, 0644);
  if (f.fd < 0) {
    return Status::IOError("open " + f.path + ": " + std::strerror(errno));
  }
  files_.emplace(id, std::move(f));
  return id;
}

Status FileDisk::AppendPage(FileId file, const std::vector<uint8_t>& page) {
  {
    MutexLock lock(&mu_);
    auto it = files_.find(file);
    if (it == files_.end()) {
      return Status::NotFound("FileDisk: no file " + std::to_string(file));
    }
    if (static_cast<int>(page.size()) != page_size()) {
      return Status::InvalidArgument("page size mismatch");
    }
    off_t off = static_cast<off_t>(it->second.num_pages) * page_size();
    ssize_t n = ::pwrite(it->second.fd, page.data(), page.size(), off);
    if (n != static_cast<ssize_t>(page.size())) {
      return Status::IOError("pwrite: " + std::string(std::strerror(errno)));
    }
    ++it->second.num_pages;
  }
  CountWrite();
  return Status::OK();
}

Status FileDisk::ReadPage(FileId file, int64_t index,
                          std::vector<uint8_t>& out) {
  {
    MutexLock lock(&mu_);
    auto it = files_.find(file);
    if (it == files_.end()) {
      return Status::NotFound("FileDisk: no file " + std::to_string(file));
    }
    if (index < 0 || index >= it->second.num_pages) {
      return Status::OutOfRange("FileDisk: page " + std::to_string(index));
    }
    out.resize(static_cast<size_t>(page_size()));
    off_t off = static_cast<off_t>(index) * page_size();
    ssize_t n = ::pread(it->second.fd, out.data(), out.size(), off);
    if (n != static_cast<ssize_t>(out.size())) {
      return Status::IOError("pread: " + std::string(std::strerror(errno)));
    }
  }
  CountRead(file, index);
  return Status::OK();
}

Result<int64_t> FileDisk::NumPages(FileId file) const {
  MutexLock lock(&mu_);
  auto it = files_.find(file);
  if (it == files_.end()) {
    return Status::NotFound("FileDisk: no file " + std::to_string(file));
  }
  return it->second.num_pages;
}

Status FileDisk::DeleteFile(FileId file) {
  MutexLock lock(&mu_);
  auto it = files_.find(file);
  if (it == files_.end()) {
    return Status::NotFound("FileDisk: no file " + std::to_string(file));
  }
  ::close(it->second.fd);
  ::unlink(it->second.path.c_str());
  files_.erase(it);
  return Status::OK();
}

}  // namespace adaptagg
