#include "storage/heap_file.h"

#include <algorithm>

#include "common/logging.h"

namespace adaptagg {

HeapFile::HeapFile(Disk* disk, const Schema* schema, FileId file)
    : disk_(disk),
      schema_(schema),
      file_(file),
      builder_(std::make_unique<PageBuilder>(disk->page_size(),
                                             schema->tuple_size())) {}

Result<HeapFile> HeapFile::Create(Disk* disk, const Schema* schema,
                                  const std::string& name) {
  ADAPTAGG_ASSIGN_OR_RETURN(FileId id, disk->CreateFile(name));
  return HeapFile(disk, schema, id);
}

Status HeapFile::Append(const TupleView& tuple) {
  return AppendRaw(tuple.data());
}

Status HeapFile::AppendRaw(const uint8_t* record) {
  builder_->Append(record);
  ++num_tuples_;
  if (builder_->full()) {
    ADAPTAGG_RETURN_IF_ERROR(disk_->AppendPage(file_, builder_->Finish()));
    ++num_pages_;
  }
  return Status::OK();
}

Status HeapFile::Flush() {
  if (!builder_->empty()) {
    ADAPTAGG_RETURN_IF_ERROR(disk_->AppendPage(file_, builder_->Finish()));
    ++num_pages_;
  }
  return Status::OK();
}

Status HeapFile::Drop() { return disk_->DeleteFile(file_); }

// ---------------------------------------------------------------------------

HeapFileScanner::HeapFileScanner(const HeapFile* file) : file_(file) {}

bool HeapFileScanner::LoadPage(int64_t index) {
  if (!status_.ok() || index >= file_->num_pages()) return false;
  Status st = file_->disk()->ReadPage(file_->file_id(), index, page_bytes_);
  if (!st.ok()) {
    status_ = st;
    return false;
  }
  PageReader reader(page_bytes_.data(), file_->disk()->page_size(),
                    file_->schema().tuple_size());
  records_in_page_ = reader.count();
  record_in_page_ = 0;
  next_page_ = index + 1;
  ++pages_read_;
  return true;
}

TupleView HeapFileScanner::Next() {
  while (record_in_page_ >= records_in_page_) {
    if (!LoadPage(next_page_)) return TupleView();
  }
  PageReader reader(page_bytes_.data(), file_->disk()->page_size(),
                    file_->schema().tuple_size());
  const uint8_t* rec = reader.record(record_in_page_++);
  return TupleView(rec, &file_->schema());
}

int HeapFileScanner::NextRun(const uint8_t** out, int max) {
  if (max <= 0) return 0;
  while (record_in_page_ >= records_in_page_) {
    if (!LoadPage(next_page_)) return 0;
  }
  PageReader reader(page_bytes_.data(), file_->disk()->page_size(),
                    file_->schema().tuple_size());
  int take = std::min(max, records_in_page_ - record_in_page_);
  for (int i = 0; i < take; ++i) {
    out[i] = reader.record(record_in_page_ + i);
  }
  record_in_page_ += take;
  return take;
}

Status HeapFileScanner::SeekToPage(int64_t index) {
  if (index < 0 || index >= file_->num_pages()) {
    return Status::OutOfRange("SeekToPage " + std::to_string(index));
  }
  LoadPage(index);
  return status_;
}

}  // namespace adaptagg
