#ifndef ADAPTAGG_STORAGE_CHECKPOINT_H_
#define ADAPTAGG_STORAGE_CHECKPOINT_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "storage/disk.h"

namespace adaptagg {

/// Checkpointed mid-query execution state of one logical node, written
/// every K batches by the recovery runtime and replayed after a crash.
/// The high-water marks make replay exact: `scan_hwm` says how many
/// post-WHERE survivors are already folded into `local_partials`, and
/// `fold_watermarks[origin]` says which exchange data pages (by the
/// deterministic Message::page_seq counter) are already folded into
/// `global_partials` — a recovering receiver skips replayed pages at or
/// below its watermark, so merges stay exactly-once.
struct CheckpointState {
  /// Post-WHERE survivors folded into the local table; always a whole
  /// number of scan batches. Ignored once `scan_complete` is set.
  int64_t scan_hwm = 0;
  /// True once the local phase finished: replay skips the scan entirely
  /// and re-sends partials from the restored local snapshot.
  bool scan_complete = false;
  /// Per-origin exchange high-water marks: the largest page_seq already
  /// merged into `global_partials` (index = origin node id).
  std::vector<uint64_t> fold_watermarks;
  /// Flat partial records ([key][state], spec->partial_width() each) of
  /// the local-phase table, in its deterministic emit order.
  std::vector<uint8_t> local_partials;
  /// Flat partial records of the global/merge-phase table.
  std::vector<uint8_t> global_partials;
};

/// Durable store of the latest good checkpoint per logical node. Each
/// node gets its own dedicated disk (by default a private SimDisk, never
/// the cost-charged node disks, so checkpointing cannot perturb modeled
/// time); every page is CRC-32C-signed on write and verified on read, so
/// a torn or truncated checkpoint surfaces as a descriptive kDataLoss —
/// the recovery runtime then replays from scratch instead of trusting
/// damaged state. A failed Write leaves the previous checkpoint intact.
///
/// Thread model: one logical node's slot is only ever touched by the
/// thread currently executing that node; the attempt loop reads stats
/// after joining all node threads.
class CheckpointStore {
 public:
  /// Builds the per-node checkpoint disk; lets fault injection substitute
  /// a FaultySimDisk / TornWriteDisk for selected nodes.
  using DiskFactory = std::function<std::unique_ptr<Disk>(int node)>;

  /// `factory` may be empty: every node then gets a plain SimDisk with
  /// `page_size`-byte pages.
  CheckpointStore(int num_nodes, int page_size, DiskFactory factory = {});

  int num_nodes() const { return static_cast<int>(nodes_.size()); }

  /// Durably writes `state` as node `node`'s latest checkpoint. On any
  /// disk error the previous checkpoint (if any) stays the latest.
  Status Write(int node, const CheckpointState& state);

  /// True when a (possibly damaged) checkpoint exists for `node`.
  bool Has(int node) const;

  /// Reads back node `node`'s latest checkpoint. kNotFound when none was
  /// ever written; kDataLoss when the stored pages fail CRC or the
  /// manifest is inconsistent (torn/truncated write) — never a silently
  /// wrong CheckpointState.
  Result<CheckpointState> Load(int node) const;

  /// Forgets node `node`'s checkpoint (e.g. after a kDataLoss load, so
  /// later attempts go straight to scratch replay).
  void Drop(int node);

  /// Pages a checkpoint of `state` occupies (for cost accounting).
  int64_t PagesFor(const CheckpointState& state) const;

  /// Checkpoint payload bytes most recently written for `node` (0 if
  /// none); exposed so the runtime can count checkpoint_bytes.
  int64_t last_write_bytes(int node) const;

 private:
  struct NodeSlot {
    std::unique_ptr<Disk> disk;
    FileId latest = -1;
    int64_t latest_pages = 0;
    int64_t last_write_bytes = 0;
    int64_t generation = 0;
  };

  int page_size_;
  std::vector<NodeSlot> nodes_;
};

}  // namespace adaptagg

#endif  // ADAPTAGG_STORAGE_CHECKPOINT_H_
