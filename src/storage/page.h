#ifndef ADAPTAGG_STORAGE_PAGE_H_
#define ADAPTAGG_STORAGE_PAGE_H_

#include <cstdint>
#include <cstring>
#include <vector>

namespace adaptagg {

/// Default relation page size (Table 1: P = 4 KB).
inline constexpr int kDefaultPageSize = 4096;

/// A page of fixed-width records:
///   [uint32 record_count][record 0][record 1]...
/// Records never span pages. Pages are plain byte vectors so they can move
/// through disks and network messages without translation.
class PageBuilder {
 public:
  /// `record_size` is the fixed width of each record in bytes.
  PageBuilder(int page_size, int record_size);

  /// Max records a page of `page_size` can hold.
  static int Capacity(int page_size, int record_size);

  bool full() const { return count_ >= capacity_; }
  int count() const { return count_; }
  bool empty() const { return count_ == 0; }

  /// Appends one record (must not be full). `data` must be record_size
  /// bytes.
  void Append(const uint8_t* data);

  /// Finishes the page: writes the header and returns the bytes (the
  /// builder is reset for reuse). The returned vector always has
  /// `page_size` bytes.
  std::vector<uint8_t> Finish();

 private:
  int page_size_;
  int record_size_;
  int capacity_;
  int count_ = 0;
  std::vector<uint8_t> bytes_;
};

/// Reads records back out of a page produced by PageBuilder.
class PageReader {
 public:
  PageReader(const uint8_t* page, int page_size, int record_size);

  int count() const { return count_; }
  /// Pointer to record `i` (0 <= i < count()).
  const uint8_t* record(int i) const {
    return page_ + sizeof(uint32_t) +
           static_cast<size_t>(i) * static_cast<size_t>(record_size_);
  }

 private:
  const uint8_t* page_;
  int record_size_;
  int count_;
};

}  // namespace adaptagg

#endif  // ADAPTAGG_STORAGE_PAGE_H_
