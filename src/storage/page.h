#ifndef ADAPTAGG_STORAGE_PAGE_H_
#define ADAPTAGG_STORAGE_PAGE_H_

#include <cstdint>
#include <cstring>
#include <vector>

#include "common/result.h"

namespace adaptagg {

/// Default relation page size (Table 1: P = 4 KB).
inline constexpr int kDefaultPageSize = 4096;

/// A page of fixed-width records:
///   [uint32 record_count][record 0][record 1]...
/// Records never span pages. Pages are plain byte vectors so they can move
/// through disks and network messages without translation.
class PageBuilder {
 public:
  /// `record_size` is the fixed width of each record in bytes.
  PageBuilder(int page_size, int record_size);

  /// Max records a page of `page_size` can hold.
  static int Capacity(int page_size, int record_size);

  bool full() const { return count_ >= capacity_; }
  int count() const { return count_; }
  bool empty() const { return count_ == 0; }
  /// Records that still fit before the page is full.
  int remaining() const { return capacity_ - count_; }

  /// Appends one record (must not be full). `data` must be record_size
  /// bytes.
  void Append(const uint8_t* data);

  /// Appends up to `n` densely packed records (`record_size` bytes each,
  /// starting at `recs`) with a single memcpy and a single fullness
  /// check. Returns how many were appended (bounded by remaining()).
  int AppendBatch(const uint8_t* recs, int n);

  /// Finishes the page: writes the header and returns the bytes (the
  /// builder is reset for reuse). The returned vector always has
  /// `page_size` bytes.
  std::vector<uint8_t> Finish();

  /// Wire form of Finish(): returns the page trimmed to the bytes that
  /// carry data — header + count * record_size — so trailing padding of
  /// partially filled pages never crosses the network. `replacement`
  /// (typically a recycled payload buffer from a PagePool) becomes the
  /// builder's next page buffer; its previous contents are irrelevant
  /// because the trimmed output only ever covers freshly written bytes.
  std::vector<uint8_t> FinishWire(std::vector<uint8_t> replacement);

 private:
  int page_size_;
  int record_size_;
  int capacity_;
  int count_ = 0;
  std::vector<uint8_t> bytes_;
};

/// Reads records back out of a page produced by PageBuilder.
class PageReader {
 public:
  PageReader(const uint8_t* page, int page_size, int record_size);

  int count() const { return count_; }
  /// Pointer to record `i` (0 <= i < count()).
  const uint8_t* record(int i) const {
    return page_ + sizeof(uint32_t) +
           static_cast<size_t>(i) * static_cast<size_t>(record_size_);
  }

 private:
  const uint8_t* page_;
  int record_size_;
  int count_;
};

/// Validates a page header received off the wire *before* any record is
/// read. A PageReader trusts its input (disk pages we wrote ourselves,
/// CHECK-fatal on corruption); wire payloads are attacker-controlled
/// bytes, so a forged `count` must turn into a descriptive kNetworkError,
/// never an out-of-bounds read. On success returns the record count;
/// `payload` may be shorter than a full page (trimmed wire pages).
Result<int> ValidateWirePage(const uint8_t* payload, size_t payload_size,
                             int page_size, int record_size);

/// Free list of page byte buffers, so steady-state exchange traffic
/// recycles payload vectors (PageBuilder page -> Message::payload ->
/// decode -> back here) instead of allocating per page. Single-threaded,
/// like the NodeContext that owns it.
class PagePool {
 public:
  /// `max_buffers` caps how many idle buffers the pool retains; releases
  /// beyond the cap free the buffer instead.
  explicit PagePool(size_t max_buffers = 256) : max_buffers_(max_buffers) {}

  /// Pops a recycled buffer, or a fresh empty vector when the pool is
  /// dry. Callers resize to their needs; contents are unspecified.
  std::vector<uint8_t> Acquire();

  /// Returns a buffer for reuse (dropped when the pool is at capacity).
  void Release(std::vector<uint8_t> buf);

  /// Acquires that were served from the free list.
  int64_t hits() const { return hits_; }
  /// Acquires that had to hand out a fresh (empty) vector.
  int64_t allocs() const { return allocs_; }

 private:
  size_t max_buffers_;
  std::vector<std::vector<uint8_t>> free_;
  int64_t hits_ = 0;
  int64_t allocs_ = 0;
};

}  // namespace adaptagg

#endif  // ADAPTAGG_STORAGE_PAGE_H_
