#include "storage/spill_file.h"

#include <cstring>

#include "common/crc32c.h"
#include "common/logging.h"

namespace adaptagg {
namespace {

// Bit 31 of the frame-count word marks a CRC-signed page: the last four
// bytes of the page then hold a CRC-32C over everything before them. Real
// frame counts never get near 2^31 (a page holds at most page_size
// records), so the flag cannot collide with a genuine count.
constexpr uint32_t kCrcSignedFlag = 0x80000000u;

}  // namespace

SpillWriter::SpillWriter(Disk* disk, FileId file, int raw_width,
                         int partial_width)
    : disk_(disk),
      file_(file),
      raw_width_(raw_width),
      partial_width_(partial_width),
      page_(static_cast<size_t>(disk->page_size()), 0),
      offset_(sizeof(uint32_t)) {}

Result<SpillWriter> SpillWriter::Create(Disk* disk, const std::string& name,
                                        int raw_width, int partial_width) {
  ADAPTAGG_ASSIGN_OR_RETURN(FileId id, disk->CreateFile(name));
  return SpillWriter(disk, id, raw_width, partial_width);
}

Status SpillWriter::Append(SpillTag tag, const uint8_t* record) {
  int width = WidthOf(tag);
  ADAPTAGG_CHECK(width > 0) << "spill append with unconfigured tag";
  int frame = 1 + width;
  ADAPTAGG_CHECK(frame + static_cast<int>(sizeof(uint32_t)) <=
                 disk_->page_size())
      << "spill record larger than a page";
  if (offset_ + frame > disk_->page_size()) {
    ADAPTAGG_RETURN_IF_ERROR(Flush());
  }
  page_[static_cast<size_t>(offset_)] = static_cast<uint8_t>(tag);
  std::memcpy(page_.data() + offset_ + 1, record,
              static_cast<size_t>(width));
  offset_ += frame;
  ++frames_in_page_;
  ++num_records_;
  return Status::OK();
}

Status SpillWriter::Flush() {
  if (frames_in_page_ == 0) return Status::OK();
  const int page_size = disk_->page_size();
  if (offset_ + 4 <= page_size) {
    // Room in the trailing padding: sign the page. The signed layout uses
    // the same page count and byte positions as the unsigned one, so
    // modeled I/O (pages written/read) is bit-identical either way.
    const uint32_t flagged = frames_in_page_ | kCrcSignedFlag;
    std::memcpy(page_.data(), &flagged, sizeof(flagged));
    const uint32_t crc =
        Crc32c(0, page_.data(), static_cast<size_t>(page_size) - 4);
    std::memcpy(page_.data() + page_size - 4, &crc, 4);
  } else {
    // Exactly-full page: no padding to host the CRC; leave it unsigned.
    std::memcpy(page_.data(), &frames_in_page_, sizeof(frames_in_page_));
  }
  ADAPTAGG_RETURN_IF_ERROR(disk_->AppendPage(file_, page_));
  ++num_pages_;
  std::fill(page_.begin(), page_.end(), 0);
  offset_ = sizeof(uint32_t);
  frames_in_page_ = 0;
  return Status::OK();
}

Status SpillWriter::Drop() { return disk_->DeleteFile(file_); }

// ---------------------------------------------------------------------------

SpillReader::SpillReader(const SpillWriter* writer) : writer_(writer) {}

bool SpillReader::LoadPage(int64_t index) {
  if (!status_.ok() || index >= writer_->num_pages()) return false;
  Status st =
      writer_->disk()->ReadPage(writer_->file_id(), index, page_bytes_);
  if (!st.ok()) {
    status_ = st;
    return false;
  }
  std::memcpy(&frames_in_page_, page_bytes_.data(), sizeof(frames_in_page_));
  if (frames_in_page_ & kCrcSignedFlag) {
    const size_t page_size = page_bytes_.size();
    uint32_t stored;
    std::memcpy(&stored, page_bytes_.data() + page_size - 4, 4);
    const uint32_t actual = Crc32c(0, page_bytes_.data(), page_size - 4);
    if (stored != actual) {
      status_ = Status::DataLoss(
          "spill page " + std::to_string(index) +
          " failed CRC-32C (torn or corrupted write)");
      return false;
    }
    frames_in_page_ &= ~kCrcSignedFlag;
  }
  frame_in_page_ = 0;
  offset_ = sizeof(uint32_t);
  next_page_ = index + 1;
  ++pages_read_;
  return true;
}

bool SpillReader::Next(SpillTag* tag, const uint8_t** record) {
  while (frame_in_page_ >= frames_in_page_) {
    if (!LoadPage(next_page_)) return false;
  }
  *tag = static_cast<SpillTag>(page_bytes_[static_cast<size_t>(offset_)]);
  *record = page_bytes_.data() + offset_ + 1;
  int width = (*tag == SpillTag::kRaw) ? writer_->raw_width()
                                       : writer_->partial_width();
  offset_ += 1 + width;
  ++frame_in_page_;
  return true;
}

}  // namespace adaptagg
