#ifndef ADAPTAGG_STORAGE_HEAP_FILE_H_
#define ADAPTAGG_STORAGE_HEAP_FILE_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "schema/tuple.h"
#include "storage/disk.h"
#include "storage/page.h"

namespace adaptagg {

/// A heap file: an unordered, paged sequence of fixed-width tuples of one
/// schema, stored on a Disk. This is the on-"disk" representation of one
/// node's partition of a relation.
class HeapFile {
 public:
  /// Creates a new empty heap file on `disk`. `disk` and `schema` must
  /// outlive the HeapFile.
  static Result<HeapFile> Create(Disk* disk, const Schema* schema,
                                 const std::string& name);

  /// Read-only view of an existing (fully flushed) heap file through a
  /// different Disk over the same underlying store — the serving layer
  /// scans one shared partition through per-session ScopedDisks so each
  /// query's I/O lands on its own counters. `disk` must resolve the same
  /// FileId space as `base.disk()`. Appending through a view is
  /// undefined (the view's page count would diverge from the base's).
  static HeapFile View(Disk* disk, const HeapFile& base) {
    HeapFile f(disk, &base.schema(), base.file_id());
    f.num_tuples_ = base.num_tuples();
    f.num_pages_ = base.num_pages();
    return f;
  }

  int64_t num_tuples() const { return num_tuples_; }
  int64_t num_pages() const { return num_pages_; }
  const Schema& schema() const { return *schema_; }
  Disk* disk() const { return disk_; }
  FileId file_id() const { return file_; }

  /// Appends one tuple (buffered; call Flush() when done loading).
  Status Append(const TupleView& tuple);
  Status AppendRaw(const uint8_t* record);

  /// Writes out any partially-filled page.
  Status Flush();

  /// Deletes the underlying file.
  Status Drop();

 private:
  HeapFile(Disk* disk, const Schema* schema, FileId file);

  Disk* disk_;
  const Schema* schema_;
  FileId file_;
  int64_t num_tuples_ = 0;
  int64_t num_pages_ = 0;
  std::unique_ptr<PageBuilder> builder_;
};

/// Sequentially scans a HeapFile page by page, yielding tuple views.
/// Reading a page performs (and counts) one disk read.
class HeapFileScanner {
 public:
  explicit HeapFileScanner(const HeapFile* file);

  /// Advances to the next tuple; returns an invalid view at end of file
  /// or on a disk error — distinguish by checking status().
  TupleView Next();

  /// Fills `out` with up to `max` record pointers from the current page
  /// (loading the next page first when it is exhausted, so one call
  /// never spans pages and performs at most one disk read). Returns the
  /// count; 0 at end of file or on error. Pointers stay valid until the
  /// next NextRun/Next/SeekToPage call.
  int NextRun(const uint8_t** out, int max);

  /// OK unless a page read failed; once non-OK the scanner stays ended.
  const Status& status() const { return status_; }

  /// Reads page `index` (random access) and positions the scanner at its
  /// first tuple. Used by page-oriented sampling.
  Status SeekToPage(int64_t index);

  int64_t pages_read() const { return pages_read_; }

 private:
  bool LoadPage(int64_t index);

  const HeapFile* file_;
  std::vector<uint8_t> page_bytes_;
  Status status_;
  int64_t next_page_ = 0;
  int record_in_page_ = 0;
  int records_in_page_ = 0;
  int64_t pages_read_ = 0;
};

}  // namespace adaptagg

#endif  // ADAPTAGG_STORAGE_HEAP_FILE_H_
