#ifndef ADAPTAGG_WORKLOAD_TPCD_H_
#define ADAPTAGG_WORKLOAD_TPCD_H_

#include "agg/agg_spec.h"
#include "storage/partitioned_relation.h"

namespace adaptagg {

/// A TPC-D-flavored lineitem generator. The paper motivates adaptive
/// aggregation with TPC-D (§1: 15 of 17 queries aggregate; result sizes
/// span 2 tuples to 1.4M). This is a simplified, fixed-width lineitem
/// good enough to drive the same spread of grouping selectivities:
///
///   l_orderkey     int64   (~rows/4 distinct -> high selectivity)
///   l_partkey      int64
///   l_suppkey      int64
///   l_quantity     int64   1..50
///   l_extendedprice double
///   l_discount     double  0.00..0.10
///   l_tax          double  0.00..0.08
///   l_returnflag   bytes1  {A, N, R}
///   l_linestatus   bytes1  {O, F}
///   l_shipdate     int64   days since epoch over ~7 years
struct TpcdSpec {
  int num_nodes = 8;
  int64_t num_rows = 600'000;  ///< ~SF 0.0001 * 6M per unit
  uint64_t seed = 19940301;
  int page_size = kDefaultPageSize;
};

/// The fixed-width lineitem schema above.
Schema LineitemSchema();

/// Generates a round-robin partitioned lineitem.
Result<PartitionedRelation> GenerateLineitem(const TpcdSpec& spec);

/// TPC-D Q1-like pricing summary:
///   SELECT l_returnflag, l_linestatus, COUNT(*), SUM(l_quantity),
///          SUM(l_extendedprice), AVG(l_quantity), AVG(l_discount)
///   GROUP BY l_returnflag, l_linestatus
/// Six groups — the "tiny result" end of the spectrum.
Result<AggregationSpec> MakeQ1Query(const Schema* lineitem);

/// A duplicate-elimination-flavored query at the other extreme:
///   SELECT DISTINCT l_orderkey — result comparable to input size.
Result<AggregationSpec> MakeDistinctOrdersQuery(const Schema* lineitem);

/// Mid-range grouping: SELECT l_partkey, COUNT(*), SUM(l_quantity)
/// GROUP BY l_partkey.
Result<AggregationSpec> MakePerPartQuery(const Schema* lineitem);

}  // namespace adaptagg

#endif  // ADAPTAGG_WORKLOAD_TPCD_H_
