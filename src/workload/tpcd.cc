#include "workload/tpcd.h"

#include "common/random.h"

namespace adaptagg {

Schema LineitemSchema() {
  std::vector<Field> fields;
  fields.push_back({"l_orderkey", DataType::kInt64, 8});
  fields.push_back({"l_partkey", DataType::kInt64, 8});
  fields.push_back({"l_suppkey", DataType::kInt64, 8});
  fields.push_back({"l_quantity", DataType::kInt64, 8});
  fields.push_back({"l_extendedprice", DataType::kDouble, 8});
  fields.push_back({"l_discount", DataType::kDouble, 8});
  fields.push_back({"l_tax", DataType::kDouble, 8});
  fields.push_back({"l_returnflag", DataType::kBytes, 1});
  fields.push_back({"l_linestatus", DataType::kBytes, 1});
  fields.push_back({"l_shipdate", DataType::kInt64, 8});
  return Schema(std::move(fields));
}

Result<PartitionedRelation> GenerateLineitem(const TpcdSpec& spec) {
  Schema schema = LineitemSchema();
  ADAPTAGG_ASSIGN_OR_RETURN(
      PartitionedRelation rel,
      PartitionedRelation::Create(schema, spec.num_nodes, spec.page_size));
  const Schema& s = rel.schema();

  Prng prng(spec.seed);
  TupleBuffer t(&s);
  const int64_t num_orders = std::max<int64_t>(1, spec.num_rows / 4);
  const int64_t num_parts = std::max<int64_t>(1, spec.num_rows / 30);
  const int64_t num_supps = std::max<int64_t>(1, num_parts / 10);
  static const char kFlags[] = {'A', 'N', 'R'};
  static const char kStatus[] = {'O', 'F'};

  for (int64_t i = 0; i < spec.num_rows; ++i) {
    int64_t quantity = 1 + static_cast<int64_t>(prng.NextBelow(50));
    double price = 900.0 + static_cast<double>(prng.NextBelow(104000)) / 1.04;
    t.SetInt64(0, static_cast<int64_t>(
                      prng.NextBelow(static_cast<uint64_t>(num_orders))));
    t.SetInt64(1, static_cast<int64_t>(
                      prng.NextBelow(static_cast<uint64_t>(num_parts))));
    t.SetInt64(2, static_cast<int64_t>(
                      prng.NextBelow(static_cast<uint64_t>(num_supps))));
    t.SetInt64(3, quantity);
    t.SetDouble(4, static_cast<double>(quantity) * price / 50.0);
    t.SetDouble(5, static_cast<double>(prng.NextBelow(11)) / 100.0);
    t.SetDouble(6, static_cast<double>(prng.NextBelow(9)) / 100.0);
    t.SetBytes(7, std::string(1, kFlags[prng.NextBelow(3)]));
    t.SetBytes(8, std::string(1, kStatus[prng.NextBelow(2)]));
    t.SetInt64(9, 8400 + static_cast<int64_t>(prng.NextBelow(2557)));
    int node = static_cast<int>(i % spec.num_nodes);  // round-robin
    ADAPTAGG_RETURN_IF_ERROR(rel.Append(node, t.view()));
  }
  ADAPTAGG_RETURN_IF_ERROR(rel.Flush());
  return rel;
}

Result<AggregationSpec> MakeQ1Query(const Schema* lineitem) {
  ADAPTAGG_ASSIGN_OR_RETURN(int flag, lineitem->FieldIndex("l_returnflag"));
  ADAPTAGG_ASSIGN_OR_RETURN(int status,
                            lineitem->FieldIndex("l_linestatus"));
  ADAPTAGG_ASSIGN_OR_RETURN(int qty, lineitem->FieldIndex("l_quantity"));
  ADAPTAGG_ASSIGN_OR_RETURN(int price,
                            lineitem->FieldIndex("l_extendedprice"));
  ADAPTAGG_ASSIGN_OR_RETURN(int disc, lineitem->FieldIndex("l_discount"));
  std::vector<AggDescriptor> aggs;
  aggs.push_back({AggKind::kCount, -1, "count_order"});
  aggs.push_back({AggKind::kSum, qty, "sum_qty"});
  aggs.push_back({AggKind::kSum, price, "sum_base_price"});
  aggs.push_back({AggKind::kAvg, qty, "avg_qty"});
  aggs.push_back({AggKind::kAvg, disc, "avg_disc"});
  return AggregationSpec::Make(lineitem, {flag, status}, std::move(aggs));
}

Result<AggregationSpec> MakeDistinctOrdersQuery(const Schema* lineitem) {
  ADAPTAGG_ASSIGN_OR_RETURN(int okey, lineitem->FieldIndex("l_orderkey"));
  return MakeDistinctSpec(lineitem, {okey});
}

Result<AggregationSpec> MakePerPartQuery(const Schema* lineitem) {
  ADAPTAGG_ASSIGN_OR_RETURN(int pkey, lineitem->FieldIndex("l_partkey"));
  ADAPTAGG_ASSIGN_OR_RETURN(int qty, lineitem->FieldIndex("l_quantity"));
  std::vector<AggDescriptor> aggs;
  aggs.push_back({AggKind::kCount, -1, "cnt"});
  aggs.push_back({AggKind::kSum, qty, "sum_qty"});
  return AggregationSpec::Make(lineitem, {pkey}, std::move(aggs));
}

}  // namespace adaptagg
