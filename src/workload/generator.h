#ifndef ADAPTAGG_WORKLOAD_GENERATOR_H_
#define ADAPTAGG_WORKLOAD_GENERATOR_H_

#include "agg/agg_spec.h"
#include "storage/partitioned_relation.h"
#include "workload/distributions.h"

namespace adaptagg {

/// How generated tuples are placed onto nodes.
enum class Placement {
  /// Round-robin, as in the paper's implementation (§5).
  kRoundRobin = 0,
  /// Hash of the group attribute (pre-clustered by group).
  kHashOnGroup,
  /// Uniformly random node.
  kRandom,
};

/// Parameters of a synthetic benchmark relation. The schema is the
/// paper's 100-byte tuple: (g:int64 group key, v:int64 measure, padding).
struct WorkloadSpec {
  int num_nodes = 8;
  int64_t num_tuples = 2'000'000;
  int64_t num_groups = 1'000;
  int tuple_bytes = 100;  ///< >= 16 (two int64 columns + padding)
  GroupDistribution distribution = GroupDistribution::kUniform;
  double zipf_theta = 0.0;
  Placement placement = Placement::kRoundRobin;
  /// Input skew (§6.1): the first `input_skew_nodes` nodes receive
  /// `input_skew_factor` times the tuples of a non-skewed node
  /// (factor 1.0 = uniform).
  double input_skew_factor = 1.0;
  int input_skew_nodes = 1;
  uint64_t seed = 12345;
  int page_size = kDefaultPageSize;

  /// Grouping selectivity S = num_groups / num_tuples.
  double selectivity() const {
    return static_cast<double>(num_groups) /
           static_cast<double>(num_tuples);
  }
};

/// The (g, v, pad) benchmark schema of `tuple_bytes` total width.
Schema MakeBenchSchema(int tuple_bytes);

/// Indices of the group and value columns in MakeBenchSchema results.
inline constexpr int kBenchGroupCol = 0;
inline constexpr int kBenchValueCol = 1;

/// Generates a partitioned relation per `spec`. Deterministic in
/// spec.seed. The measure column is a function of the group id and the
/// tuple index so every aggregate exercises real arithmetic.
Result<PartitionedRelation> GenerateRelation(const WorkloadSpec& spec);

/// Convenience: the paper's canonical query over a generated relation
/// (COUNT(*), SUM(v) GROUP BY g).
Result<AggregationSpec> MakeBenchQuery(const Schema* schema);

}  // namespace adaptagg

#endif  // ADAPTAGG_WORKLOAD_GENERATOR_H_
