#ifndef ADAPTAGG_WORKLOAD_DISTRIBUTIONS_H_
#define ADAPTAGG_WORKLOAD_DISTRIBUTIONS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/random.h"

namespace adaptagg {

/// How group ids are drawn for generated tuples.
enum class GroupDistribution {
  /// Uniform over [0, num_groups).
  kUniform = 0,
  /// Zipf(theta) over [0, num_groups): a few heavy groups, a long tail.
  kZipf,
  /// Round-robin 0,1,...,G-1,0,1,... — exact group sizes, useful for
  /// deterministic tests.
  kSequential,
};

std::string GroupDistributionToString(GroupDistribution d);

/// Zipfian generator over [0, n) with skew parameter `theta` in [0, 1)
/// (0 = uniform), using the Gray et al. rejection-free inversion
/// approximation with a precomputed normalization constant.
class ZipfGenerator {
 public:
  ZipfGenerator(uint64_t n, double theta, uint64_t seed);

  uint64_t Next();

  uint64_t n() const { return n_; }
  double theta() const { return theta_; }

 private:
  uint64_t n_;
  double theta_;
  double alpha_;
  double zetan_;
  double eta_;
  double threshold_;  // probability mass of item 1
  Prng prng_;
};

/// Draws one group id per call according to the configured distribution.
class GroupIdSource {
 public:
  GroupIdSource(GroupDistribution distribution, uint64_t num_groups,
                double zipf_theta, uint64_t seed);

  uint64_t Next();

 private:
  GroupDistribution distribution_;
  uint64_t num_groups_;
  uint64_t sequential_next_ = 0;
  Prng prng_;
  std::vector<ZipfGenerator> zipf_;  // 0 or 1 elements
};

}  // namespace adaptagg

#endif  // ADAPTAGG_WORKLOAD_DISTRIBUTIONS_H_
