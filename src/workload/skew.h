#ifndef ADAPTAGG_WORKLOAD_SKEW_H_
#define ADAPTAGG_WORKLOAD_SKEW_H_

#include "workload/generator.h"

namespace adaptagg {

/// Output-skew workload (§6.2 and Figure 9): every node holds the same
/// number of tuples, but groups are unevenly spread — the first
/// `single_group_nodes` nodes each hold tuples of exactly one group, and
/// the remaining `num_groups - single_group_nodes` groups are spread
/// uniformly over the other nodes. The paper's Figure 9 uses 8 nodes with
/// 4 single-group nodes.
struct OutputSkewSpec {
  int num_nodes = 8;
  int single_group_nodes = 4;
  int64_t num_tuples = 2'000'000;
  int64_t num_groups = 1'000;  ///< must be > single_group_nodes
  int tuple_bytes = 100;
  uint64_t seed = 777;
  int page_size = kDefaultPageSize;

  double selectivity() const {
    return static_cast<double>(num_groups) /
           static_cast<double>(num_tuples);
  }
};

/// Generates the Figure 9 layout. Uses MakeBenchSchema (g, v, pad).
Result<PartitionedRelation> GenerateOutputSkewRelation(
    const OutputSkewSpec& spec);

}  // namespace adaptagg

#endif  // ADAPTAGG_WORKLOAD_SKEW_H_
