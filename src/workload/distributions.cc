#include "workload/distributions.h"

#include <cmath>

#include "common/logging.h"

namespace adaptagg {

std::string GroupDistributionToString(GroupDistribution d) {
  switch (d) {
    case GroupDistribution::kUniform:
      return "uniform";
    case GroupDistribution::kZipf:
      return "zipf";
    case GroupDistribution::kSequential:
      return "sequential";
  }
  return "?";
}

namespace {

double Zeta(uint64_t n, double theta) {
  double sum = 0;
  for (uint64_t i = 1; i <= n; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i), theta);
  }
  return sum;
}

}  // namespace

ZipfGenerator::ZipfGenerator(uint64_t n, double theta, uint64_t seed)
    : n_(n), theta_(theta), prng_(seed) {
  ADAPTAGG_CHECK(n > 0) << "zipf needs a positive domain";
  ADAPTAGG_CHECK(theta >= 0 && theta < 1.0)
      << "zipf theta must be in [0, 1)";
  zetan_ = Zeta(n, theta);
  double zeta2 = Zeta(std::min<uint64_t>(2, n), theta);
  alpha_ = 1.0 / (1.0 - theta);
  eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n), 1.0 - theta)) /
         (1.0 - zeta2 / zetan_);
  threshold_ = 1.0 + std::pow(0.5, theta);
}

uint64_t ZipfGenerator::Next() {
  double u = prng_.NextDouble();
  double uz = u * zetan_;
  if (uz < 1.0) return 0;
  if (uz < threshold_) return 1;
  uint64_t v = static_cast<uint64_t>(
      static_cast<double>(n_) *
      std::pow(eta_ * u - eta_ + 1.0, alpha_));
  return v >= n_ ? n_ - 1 : v;
}

GroupIdSource::GroupIdSource(GroupDistribution distribution,
                             uint64_t num_groups, double zipf_theta,
                             uint64_t seed)
    : distribution_(distribution),
      num_groups_(num_groups),
      prng_(seed) {
  ADAPTAGG_CHECK(num_groups > 0) << "need at least one group";
  if (distribution == GroupDistribution::kZipf) {
    zipf_.emplace_back(num_groups, zipf_theta, seed ^ 0x51f7);
  }
}

uint64_t GroupIdSource::Next() {
  switch (distribution_) {
    case GroupDistribution::kUniform:
      return prng_.NextBelow(num_groups_);
    case GroupDistribution::kZipf:
      return zipf_[0].Next();
    case GroupDistribution::kSequential: {
      uint64_t g = sequential_next_;
      sequential_next_ = (sequential_next_ + 1) % num_groups_;
      return g;
    }
  }
  return 0;
}

}  // namespace adaptagg
