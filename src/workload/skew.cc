#include "workload/skew.h"

#include "common/logging.h"

namespace adaptagg {

Result<PartitionedRelation> GenerateOutputSkewRelation(
    const OutputSkewSpec& spec) {
  if (spec.single_group_nodes < 0 ||
      spec.single_group_nodes > spec.num_nodes) {
    return Status::InvalidArgument("bad single_group_nodes");
  }
  if (spec.num_groups <= spec.single_group_nodes) {
    return Status::InvalidArgument(
        "need more groups than single-group nodes");
  }
  if (spec.single_group_nodes == spec.num_nodes) {
    return Status::InvalidArgument("need at least one multi-group node");
  }

  Schema schema = MakeBenchSchema(spec.tuple_bytes);
  ADAPTAGG_ASSIGN_OR_RETURN(
      PartitionedRelation rel,
      PartitionedRelation::Create(schema, spec.num_nodes, spec.page_size));
  const Schema& s = rel.schema();

  const int64_t per_node = spec.num_tuples / spec.num_nodes;
  const int64_t wide_groups =
      spec.num_groups - spec.single_group_nodes;  // groups on busy nodes
  Prng prng(spec.seed);
  TupleBuffer tuple(&s);

  int64_t index = 0;
  for (int node = 0; node < spec.num_nodes; ++node) {
    // Give any division remainder to the last node.
    int64_t quota = node == spec.num_nodes - 1
                        ? spec.num_tuples - per_node * (spec.num_nodes - 1)
                        : per_node;
    const bool single = node < spec.single_group_nodes;
    for (int64_t t = 0; t < quota; ++t, ++index) {
      uint64_t g;
      if (single) {
        // Group ids 0..single_group_nodes-1 are the one-group nodes.
        g = static_cast<uint64_t>(node);
      } else {
        g = static_cast<uint64_t>(spec.single_group_nodes) +
            prng.NextBelow(static_cast<uint64_t>(wide_groups));
      }
      tuple.SetInt64(kBenchGroupCol, static_cast<int64_t>(g));
      tuple.SetInt64(kBenchValueCol,
                     static_cast<int64_t>((g * 1000003ULL +
                                           static_cast<uint64_t>(index)) %
                                          100000ULL));
      ADAPTAGG_RETURN_IF_ERROR(rel.Append(node, tuple.view()));
    }
  }
  ADAPTAGG_RETURN_IF_ERROR(rel.Flush());
  return rel;
}

}  // namespace adaptagg
