#include "workload/generator.h"

#include <cmath>

#include "common/logging.h"

namespace adaptagg {

Schema MakeBenchSchema(int tuple_bytes) {
  ADAPTAGG_CHECK(tuple_bytes >= 16)
      << "bench tuples need at least 16 bytes";
  std::vector<Field> fields;
  fields.push_back({"g", DataType::kInt64, 8});
  fields.push_back({"v", DataType::kInt64, 8});
  if (tuple_bytes > 16) {
    fields.push_back({"pad", DataType::kBytes, tuple_bytes - 16});
  }
  return Schema(std::move(fields));
}

namespace {

/// A deterministic, group-and-index dependent measure so that SUM/AVG/
/// MIN/MAX all produce nontrivial values that the reference oracle can
/// recompute.
int64_t MeasureOf(uint64_t group, int64_t index) {
  return static_cast<int64_t>((group * 1000003ULL +
                               static_cast<uint64_t>(index) * 37ULL) %
                              100000ULL);
}

}  // namespace

Result<PartitionedRelation> GenerateRelation(const WorkloadSpec& spec) {
  if (spec.num_nodes <= 0 || spec.num_tuples < 0) {
    return Status::InvalidArgument("bad workload spec");
  }
  if (spec.num_groups <= 0 || spec.num_groups > spec.num_tuples) {
    return Status::InvalidArgument(
        "num_groups must be in [1, num_tuples]");
  }
  if (spec.input_skew_factor < 1.0 || spec.input_skew_nodes < 0 ||
      spec.input_skew_nodes > spec.num_nodes) {
    return Status::InvalidArgument("bad input skew");
  }

  Schema schema = MakeBenchSchema(spec.tuple_bytes);
  ADAPTAGG_ASSIGN_OR_RETURN(
      PartitionedRelation rel,
      PartitionedRelation::Create(schema, spec.num_nodes, spec.page_size));
  const Schema& s = rel.schema();

  // Per-node quotas. With input skew, skewed nodes weigh `factor`, the
  // rest weigh 1.
  std::vector<int64_t> quota(static_cast<size_t>(spec.num_nodes), 0);
  {
    double total_weight =
        spec.input_skew_factor * spec.input_skew_nodes +
        1.0 * (spec.num_nodes - spec.input_skew_nodes);
    int64_t assigned = 0;
    for (int i = 0; i < spec.num_nodes; ++i) {
      double w = i < spec.input_skew_nodes ? spec.input_skew_factor : 1.0;
      quota[static_cast<size_t>(i)] = static_cast<int64_t>(
          std::floor(static_cast<double>(spec.num_tuples) * w /
                     total_weight));
      assigned += quota[static_cast<size_t>(i)];
    }
    // Distribute rounding remainder round-robin.
    for (int i = 0; assigned < spec.num_tuples; ++assigned, ++i) {
      ++quota[static_cast<size_t>(i % spec.num_nodes)];
    }
  }

  GroupIdSource groups(spec.distribution,
                       static_cast<uint64_t>(spec.num_groups),
                       spec.zipf_theta, spec.seed);
  Prng placement_prng(spec.seed ^ 0x91aceULL);
  TupleBuffer tuple(&s);

  int rr_node = 0;
  for (int64_t i = 0; i < spec.num_tuples; ++i) {
    uint64_t g = groups.Next();
    tuple.SetInt64(kBenchGroupCol, static_cast<int64_t>(g));
    tuple.SetInt64(kBenchValueCol, MeasureOf(g, i));

    int node = 0;
    switch (spec.placement) {
      case Placement::kRoundRobin: {
        // Cycle over nodes with remaining quota.
        int tries = 0;
        while (quota[static_cast<size_t>(rr_node)] == 0 &&
               tries++ < spec.num_nodes) {
          rr_node = (rr_node + 1) % spec.num_nodes;
        }
        node = rr_node;
        rr_node = (rr_node + 1) % spec.num_nodes;
        break;
      }
      case Placement::kHashOnGroup:
        node = static_cast<int>(SplitMix64(g ^ 0x9e37) %
                                static_cast<uint64_t>(spec.num_nodes));
        break;
      case Placement::kRandom:
        node = static_cast<int>(placement_prng.NextBelow(
            static_cast<uint64_t>(spec.num_nodes)));
        break;
    }
    // Hash/random placement ignores quotas (input skew only applies to
    // round-robin, as in §6.1).
    if (spec.placement == Placement::kRoundRobin) {
      --quota[static_cast<size_t>(node)];
    }
    ADAPTAGG_RETURN_IF_ERROR(rel.Append(node, tuple.view()));
  }
  ADAPTAGG_RETURN_IF_ERROR(rel.Flush());
  return rel;
}

Result<AggregationSpec> MakeBenchQuery(const Schema* schema) {
  return MakeCountSumSpec(schema, kBenchGroupCol, kBenchValueCol);
}

}  // namespace adaptagg
