#include "sort/external_sorter.h"

#include <algorithm>
#include <cstring>
#include <functional>

#include "common/logging.h"

namespace adaptagg {

ExternalSorter::ExternalSorter(Disk* disk, int record_width, int key_offset,
                               int key_width, int64_t max_records,
                               std::string name)
    : disk_(disk),
      record_width_(record_width),
      key_offset_(key_offset),
      key_width_(key_width),
      max_records_(max_records),
      name_(std::move(name)) {
  ADAPTAGG_CHECK(record_width_ > 0 && key_width_ > 0 && key_offset_ >= 0 &&
                 key_offset_ + key_width_ <= record_width_)
      << "bad sorter layout";
  ADAPTAGG_CHECK(max_records_ > 0) << "sorter needs memory";
  buffer_.resize(static_cast<size_t>(max_records_) *
                 static_cast<size_t>(record_width_));
}

bool ExternalSorter::Less(const uint8_t* a, const uint8_t* b) const {
  return std::memcmp(a + key_offset_, b + key_offset_,
                     static_cast<size_t>(key_width_)) < 0;
}

Status ExternalSorter::Add(const uint8_t* record) {
  ADAPTAGG_CHECK(!finished_) << "Add after Finish";
  if (in_buffer_ >= max_records_) {
    ADAPTAGG_RETURN_IF_ERROR(FlushRun());
  }
  std::memcpy(buffer_.data() + in_buffer_ * record_width_, record,
              static_cast<size_t>(record_width_));
  ++in_buffer_;
  ++num_records_;
  return Status::OK();
}

namespace {

/// Sorts `count` fixed-width records in place via an index permutation
/// (avoids O(n * width) swaps of big records during sorting; applies the
/// permutation once at the end).
void SortRecords(uint8_t* data, int64_t count, int width,
                 const std::function<bool(const uint8_t*, const uint8_t*)>&
                     less) {
  std::vector<int32_t> index(static_cast<size_t>(count));
  for (int64_t i = 0; i < count; ++i) {
    index[static_cast<size_t>(i)] = static_cast<int32_t>(i);
  }
  std::sort(index.begin(), index.end(), [&](int32_t a, int32_t b) {
    return less(data + static_cast<int64_t>(a) * width,
                data + static_cast<int64_t>(b) * width);
  });
  std::vector<uint8_t> scratch(static_cast<size_t>(count) *
                               static_cast<size_t>(width));
  for (int64_t i = 0; i < count; ++i) {
    std::memcpy(scratch.data() + i * width,
                data + static_cast<int64_t>(index[static_cast<size_t>(i)]) *
                           width,
                static_cast<size_t>(width));
  }
  std::memcpy(data, scratch.data(), scratch.size());
}

}  // namespace

Status ExternalSorter::FlushRun() {
  if (in_buffer_ == 0) return Status::OK();
  SortRecords(buffer_.data(), in_buffer_, record_width_,
              [this](const uint8_t* a, const uint8_t* b) {
                return Less(a, b);
              });
  ADAPTAGG_ASSIGN_OR_RETURN(
      FileId file,
      disk_->CreateFile(name_ + ".run" +
                        std::to_string(run_files_.size())));
  PageBuilder builder(disk_->page_size(), record_width_);
  int64_t pages = 0;
  for (int64_t i = 0; i < in_buffer_; ++i) {
    builder.Append(buffer_.data() + i * record_width_);
    if (builder.full()) {
      ADAPTAGG_RETURN_IF_ERROR(disk_->AppendPage(file, builder.Finish()));
      ++pages;
    }
  }
  if (!builder.empty()) {
    ADAPTAGG_RETURN_IF_ERROR(disk_->AppendPage(file, builder.Finish()));
    ++pages;
  }
  run_files_.push_back(file);
  run_page_counts_.push_back(pages);
  run_pages_written_ += pages;
  in_buffer_ = 0;
  return Status::OK();
}

Result<SortedStream> ExternalSorter::Finish() {
  ADAPTAGG_CHECK(!finished_) << "Finish called twice";
  finished_ = true;
  // The in-memory tail is sorted but kept in RAM and merged directly —
  // no reason to spend I/O on it.
  if (in_buffer_ > 0) {
    SortRecords(buffer_.data(), in_buffer_, record_width_,
                [this](const uint8_t* a, const uint8_t* b) {
                  return Less(a, b);
                });
  }
  SortedStream stream(this);
  if (!stream.status().ok()) return stream.status();
  return stream;
}

// ---------------------------------------------------------------------------

SortedStream::SortedStream(ExternalSorter* sorter) : sorter_(sorter) {
  tail_ = sorter_->buffer_.data();
  tail_count_ = sorter_->in_buffer_;
  cursors_.resize(sorter_->run_files_.size());
  for (size_t r = 0; r < cursors_.size(); ++r) {
    cursors_[r].file = sorter_->run_files_[r];
    cursors_[r].num_pages = sorter_->run_page_counts_[r];
    Status st = LoadPage(cursors_[r]);
    if (!st.ok()) {
      status_ = st;
      return;
    }
  }
}

Status SortedStream::LoadPage(RunCursor& cursor) {
  if (cursor.next_page >= cursor.num_pages) {
    cursor.done = true;
    return Status::OK();
  }
  ADAPTAGG_RETURN_IF_ERROR(sorter_->disk_->ReadPage(
      cursor.file, cursor.next_page, cursor.page));
  PageReader reader(cursor.page.data(), sorter_->disk_->page_size(),
                    sorter_->record_width_);
  cursor.records_in_page = reader.count();
  cursor.record = 0;
  ++cursor.next_page;
  ++pages_read_;
  return Status::OK();
}

const uint8_t* SortedStream::CursorRecord(const RunCursor& cursor) const {
  return cursor.page.data() + sizeof(uint32_t) +
         static_cast<size_t>(cursor.record) *
             static_cast<size_t>(sorter_->record_width_);
}

Status SortedStream::AdvanceCursor(RunCursor& cursor) {
  ++cursor.record;
  while (!cursor.done && cursor.record >= cursor.records_in_page) {
    ADAPTAGG_RETURN_IF_ERROR(LoadPage(cursor));
  }
  return Status::OK();
}

const uint8_t* SortedStream::Next() {
  if (!status_.ok()) return nullptr;
  // Pick the minimum over run heads and the in-memory tail head. Run
  // counts are small (records / max_records), so a linear scan beats
  // heap bookkeeping at this scale.
  const uint8_t* best = nullptr;
  RunCursor* best_cursor = nullptr;
  for (RunCursor& cursor : cursors_) {
    if (cursor.done || cursor.records_in_page == 0) continue;
    const uint8_t* rec = CursorRecord(cursor);
    if (best == nullptr || sorter_->Less(rec, best)) {
      best = rec;
      best_cursor = &cursor;
    }
  }
  bool take_tail = false;
  if (tail_next_ < tail_count_) {
    const uint8_t* rec = tail_ + tail_next_ * sorter_->record_width_;
    if (best == nullptr || sorter_->Less(rec, best)) {
      best = rec;
      take_tail = true;
    }
  }
  if (best == nullptr) return nullptr;
  if (take_tail) {
    ++tail_next_;
    return best;
  }
  // `best` points into the cursor's page; copy-free hand-off works
  // because AdvanceCursor only replaces the page after the caller is
  // done — so stage the pointer by advancing lazily: we must not reload
  // the page before returning. Copy the record into the stream-local
  // staging buffer instead.
  staging_.assign(best, best + sorter_->record_width_);
  Status st = AdvanceCursor(*best_cursor);
  if (!st.ok()) {
    status_ = st;
    return nullptr;
  }
  return staging_.data();
}

}  // namespace adaptagg
