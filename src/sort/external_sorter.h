#ifndef ADAPTAGG_SORT_EXTERNAL_SORTER_H_
#define ADAPTAGG_SORT_EXTERNAL_SORTER_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "storage/disk.h"
#include "storage/page.h"

namespace adaptagg {

/// Bounded-memory external merge sort over fixed-width records, ordered
/// by the memcmp order of a key prefix. The substrate for the
/// sort-based aggregation baseline ([BBDW83], discussed in §1 of the
/// paper): records accumulate in memory up to `max_records`; each full
/// buffer is sorted and written to a run file on the Disk; Finish()
/// returns a stream that k-way-merges the runs page by page.
///
/// Usage: Add() records, then Finish() exactly once, then iterate the
/// returned stream.
class SortedStream;

class ExternalSorter {
 public:
  /// `key_offset`/`key_width` locate the memcmp key inside each record.
  ExternalSorter(Disk* disk, int record_width, int key_offset,
                 int key_width, int64_t max_records, std::string name);

  Status Add(const uint8_t* record);

  /// Sorts/flushes the tail and returns the merged stream. The sorter
  /// must outlive the stream.
  Result<SortedStream> Finish();

  int64_t num_records() const { return num_records_; }
  int64_t num_runs() const {
    return static_cast<int64_t>(run_files_.size());
  }
  int64_t run_pages_written() const { return run_pages_written_; }
  int record_width() const { return record_width_; }

 private:
  friend class SortedStream;

  bool Less(const uint8_t* a, const uint8_t* b) const;
  Status FlushRun();

  Disk* disk_;
  int record_width_;
  int key_offset_;
  int key_width_;
  int64_t max_records_;
  std::string name_;

  std::vector<uint8_t> buffer_;  // max_records * record_width bytes
  int64_t in_buffer_ = 0;
  int64_t num_records_ = 0;
  int64_t run_pages_written_ = 0;
  std::vector<FileId> run_files_;
  std::vector<int64_t> run_page_counts_;
  bool finished_ = false;
};

/// Merged, key-ordered view over the sorter's runs (plus any still-in-
/// memory tail). Reads one page per run at a time, so memory stays
/// bounded by (runs + 1) pages.
class SortedStream {
 public:
  /// Next record in key order, or nullptr at end (check status()).
  const uint8_t* Next();

  /// OK unless a run page read failed.
  const Status& status() const { return status_; }

  int64_t pages_read() const { return pages_read_; }

 private:
  friend class ExternalSorter;

  struct RunCursor {
    FileId file = 0;
    int64_t num_pages = 0;
    int64_t next_page = 0;
    std::vector<uint8_t> page;
    int record = 0;
    int records_in_page = 0;
    bool done = false;
  };

  explicit SortedStream(ExternalSorter* sorter);
  Status LoadPage(RunCursor& cursor);
  const uint8_t* CursorRecord(const RunCursor& cursor) const;
  Status AdvanceCursor(RunCursor& cursor);

  ExternalSorter* sorter_ = nullptr;
  std::vector<RunCursor> cursors_;
  std::vector<uint8_t> staging_;
  // In-memory tail (sorted slice of the sorter's buffer).
  const uint8_t* tail_ = nullptr;
  int64_t tail_count_ = 0;
  int64_t tail_next_ = 0;
  Status status_;
  int64_t pages_read_ = 0;
};

}  // namespace adaptagg

#endif  // ADAPTAGG_SORT_EXTERNAL_SORTER_H_
