#ifndef ADAPTAGG_AGG_AGG_SPEC_H_
#define ADAPTAGG_AGG_AGG_SPEC_H_

#include <string>
#include <vector>

#include "agg/agg_function.h"
#include "common/result.h"
#include "schema/tuple.h"

namespace adaptagg {

/// One coalesced memcpy of a projection: copies `width` bytes from input
/// row offset `src_offset` to projected record offset `dst_offset`.
/// Adjacent columns collapse into a single run (the canonical [g, v]
/// query projects with one 16-byte copy instead of two 8-byte ones).
struct ProjCopyRun {
  int src_offset = 0;
  int dst_offset = 0;
  int width = 0;
};

/// Which specialized batch update kernel a spec qualifies for. Detected
/// once in Make() so the batch upsert paths dispatch per batch, not per
/// tuple (see batch_kernels.h).
enum class FusedKernelKind {
  kGeneric,        ///< interpreted UpdateFromProjected loop
  kDistinct,       ///< zero aggregates: probe/insert only
  kCountSumInt64,  ///< COUNT(*), SUM(int64) — the canonical bench query
};

/// Which specialized batch *merge* kernel (partial-record upsert on the
/// exchange receive path) a spec qualifies for. Independent of
/// FusedKernelKind because merging partial states is a different
/// operation from folding raw values: e.g. MIN(int64) has a generic
/// update but a fusable compare-merge. Detected once in Make().
enum class FusedMergeKind {
  kGeneric,      ///< interpreted MergeState loop
  kDistinct,     ///< zero aggregates: probe/insert only
  kAddInt64,     ///< all states are int64 words merged by addition
                 ///< (any mix of COUNT, SUM(int64), AVG(int64))
  kMinMaxInt64,  ///< all ops are MIN/MAX(int64): [extremum][seen] blocks
};

/// The compiled form of a `SELECT <group cols>, <aggs> FROM R GROUP BY
/// <group cols>` query. Precomputes the three record layouts every
/// algorithm works with:
///
///  * projected record  = [group key bytes][one 8-byte slot per distinct
///    aggregate input column]. This is the paper's "projected tuple" (p =
///    16% of the 100-byte tuple): what gets copied off data pages and what
///    the Repartitioning algorithm ships over the network.
///  * partial record    = [group key bytes][aggregate state bytes]. What
///    the two-phase algorithms ship between local and global phases and
///    what overflow buckets spill.
///  * final record      = final_schema() row: group columns followed by
///    one output column per aggregate.
///
/// Duplicate elimination (SELECT DISTINCT) is the zero-aggregate case.
class AggregationSpec {
 public:
  /// Creates an empty, unusable spec (placeholder for containers /
  /// deferred assignment). Use Make() to build a real one.
  AggregationSpec() = default;

  /// Validates column indices/types and compiles the layouts.
  static Result<AggregationSpec> Make(const Schema* input_schema,
                                      std::vector<int> group_cols,
                                      std::vector<AggDescriptor> aggs);

  const Schema& input_schema() const { return *input_; }
  const std::vector<int>& group_cols() const { return group_cols_; }
  const std::vector<AggDescriptor>& aggs() const { return aggs_; }
  const std::vector<AggregateOp>& ops() const { return ops_; }

  int key_width() const { return key_width_; }
  int state_width() const { return state_width_; }
  int projected_width() const { return projected_width_; }
  int partial_width() const { return key_width_ + state_width_; }

  /// Schema of the final result rows.
  const Schema& final_schema() const { return final_schema_; }

  /// Copies the group key + aggregate input columns of a full input tuple
  /// into `out` (which must have projected_width() bytes).
  void ProjectRaw(const TupleView& tuple, uint8_t* out) const;

  /// The group key of a projected record is its prefix.
  const uint8_t* KeyOfProjected(const uint8_t* proj) const { return proj; }
  const uint8_t* KeyOfPartial(const uint8_t* partial) const { return partial; }
  const uint8_t* StateOfPartial(const uint8_t* partial) const {
    return partial + key_width_;
  }

  /// Initializes all aggregate states in a state block.
  void InitState(uint8_t* state) const;

  /// Folds the aggregate inputs of one projected record into `state`.
  void UpdateFromProjected(uint8_t* state, const uint8_t* proj) const;

  /// Merges a partial state block into `state`.
  void MergeState(uint8_t* state, const uint8_t* other_state) const;

  /// Builds the final output row for (key, state) into `out`, which must
  /// have final_schema().tuple_size() bytes.
  void FinalizeRecord(const uint8_t* key, const uint8_t* state,
                      uint8_t* out) const;

  /// Hash of a group key (used for table probing and for partitioning
  /// tuples to nodes; callers derive independent bits from the one hash).
  uint64_t HashKey(const uint8_t* key) const;

  /// Batch form of HashKey: hashes the key prefix of `n` records laid
  /// out `stride` bytes apart starting at `recs`, writing one hash per
  /// record to `out`. Bit-identical to HashKey; keys whose width is a
  /// multiple of 8 take a word-at-a-time fast path with no tail loop.
  void HashKeys(const uint8_t* recs, int stride, int n,
                uint64_t* out) const;

  /// The coalesced copy plan ProjectRaw executes (exposed for the batch
  /// gather path and for tests).
  const std::vector<ProjCopyRun>& projection_plan() const {
    return projection_plan_;
  }

  /// The specialized update kernel this spec qualifies for.
  FusedKernelKind fused_kernel() const { return fused_kernel_; }

  /// The specialized partial-merge kernel this spec qualifies for.
  FusedMergeKind fused_merge_kernel() const { return fused_merge_kernel_; }

  /// For kMinMaxInt64: per-op flag, 1 = MIN, 0 = MAX (op i's state block
  /// sits at offset i * 16). Empty for other merge kinds.
  const std::vector<uint8_t>& merge_is_min() const { return merge_is_min_; }

 private:
  const Schema* input_ = nullptr;
  std::vector<int> group_cols_;
  std::vector<AggDescriptor> aggs_;
  std::vector<AggregateOp> ops_;

  int key_width_ = 0;
  int state_width_ = 0;
  int projected_width_ = 0;

  // Per-group-col (offset in input row, width) pairs for projection.
  std::vector<std::pair<int, int>> key_parts_;
  // Distinct aggregate input columns, in first-use order.
  std::vector<int> value_cols_;
  // Per-value-col offset in the input row.
  std::vector<int> value_src_offsets_;
  // For each op: offset of its input value inside the projected record,
  // and offset of its state inside the state block.
  std::vector<int> op_value_offsets_;
  std::vector<int> op_state_offsets_;

  // Coalesced (src, dst, width) copies implementing ProjectRaw.
  std::vector<ProjCopyRun> projection_plan_;
  FusedKernelKind fused_kernel_ = FusedKernelKind::kGeneric;
  FusedMergeKind fused_merge_kernel_ = FusedMergeKind::kGeneric;
  std::vector<uint8_t> merge_is_min_;

  Schema final_schema_;
};

/// Convenience: builds the canonical benchmark query used throughout the
/// paper reproduction — `SELECT g, COUNT(*), SUM(v) FROM R GROUP BY g` on
/// a schema whose group column is `group_col` and value column `value_col`.
Result<AggregationSpec> MakeCountSumSpec(const Schema* input_schema,
                                         int group_col, int value_col);

/// Duplicate elimination over the given columns (zero aggregates).
Result<AggregationSpec> MakeDistinctSpec(const Schema* input_schema,
                                         std::vector<int> cols);

}  // namespace adaptagg

#endif  // ADAPTAGG_AGG_AGG_SPEC_H_
