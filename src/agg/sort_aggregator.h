#ifndef ADAPTAGG_AGG_SORT_AGGREGATOR_H_
#define ADAPTAGG_AGG_SORT_AGGREGATOR_H_

#include <functional>
#include <memory>
#include <string>

#include "agg/agg_spec.h"
#include "agg/batch_kernels.h"
#include "sort/external_sorter.h"

namespace adaptagg {

/// Sort-based aggregation — the [BBDW83] baseline the paper's §1 cites:
/// externally sort the (tagged) records by group key with bounded
/// memory, then aggregate each key's contiguous range in one pass.
/// Interface-compatible with SpillingAggregator so the algorithms can
/// use either engine; accepts the same mix of projected raw records and
/// partial-aggregate records.
class SortAggregator {
 public:
  using EmitFn =
      std::function<void(const uint8_t* key, const uint8_t* state)>;

  /// `max_records` bounds the in-memory sort buffer (the analogue of the
  /// hash table bound M).
  SortAggregator(const AggregationSpec* spec, Disk* disk,
                 int64_t max_records, std::string name = "sortagg");

  Status AddProjected(const uint8_t* proj);
  Status AddPartial(const uint8_t* partial);

  /// Batch forms of AddProjected/AddPartial (sorting has no probe loop
  /// to fuse, so these are plain per-record loops kept for interface
  /// symmetry with SpillingAggregator).
  Status AddProjectedBatch(const TupleBatch& batch);
  Status AddPartialBatch(const TupleBatch& batch);

  /// Emits every group exactly once, in ascending key order.
  Status Finish(const EmitFn& emit);

  int64_t num_records() const { return sorter_.num_records(); }
  int64_t num_runs() const { return sorter_.num_runs(); }
  int64_t run_pages_written() const { return sorter_.run_pages_written(); }

 private:
  Status Add(uint8_t tag, const uint8_t* record, int width);

  const AggregationSpec* spec_;
  int record_width_;  // 1 tag byte + max(projected, partial) width
  ExternalSorter sorter_;
  std::vector<uint8_t> frame_;
  bool finished_ = false;
};

}  // namespace adaptagg

#endif  // ADAPTAGG_AGG_SORT_AGGREGATOR_H_
