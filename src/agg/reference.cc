#include "agg/reference.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <string>
#include <unordered_map>

namespace adaptagg {

void ResultSet::Sort() {
  std::sort(rows.begin(), rows.end());
}

bool ResultSetsEqual(const ResultSet& a, const ResultSet& b, double eps) {
  if (!a.schema.Equals(b.schema)) return false;
  if (a.rows.size() != b.rows.size()) return false;
  ResultSet sa{a.schema, a.rows};
  ResultSet sb{b.schema, b.rows};
  sa.Sort();
  sb.Sort();
  for (size_t i = 0; i < sa.rows.size(); ++i) {
    TupleView ra(sa.rows[i].data(), &sa.schema);
    TupleView rb(sb.rows[i].data(), &sb.schema);
    for (int f = 0; f < sa.schema.num_fields(); ++f) {
      const Field& field = sa.schema.field(f);
      if (field.type == DataType::kDouble) {
        double va = ra.GetDouble(f);
        double vb = rb.GetDouble(f);
        double scale = std::max({std::fabs(va), std::fabs(vb), 1.0});
        if (std::fabs(va - vb) > eps * scale) return false;
      } else {
        if (std::memcmp(ra.GetBytesPtr(f), rb.GetBytesPtr(f),
                        static_cast<size_t>(field.width)) != 0) {
          return false;
        }
      }
    }
  }
  return true;
}

Result<ResultSet> ReferenceAggregate(const AggregationSpec& spec,
                                     PartitionedRelation& rel) {
  // Key bytes -> state bytes, via the standard library for independence
  // from AggHashTable.
  std::unordered_map<std::string, std::string> groups;
  std::vector<uint8_t> proj(static_cast<size_t>(spec.projected_width()));

  for (int node = 0; node < rel.num_nodes(); ++node) {
    HeapFileScanner scanner(&rel.partition(node));
    for (TupleView t = scanner.Next(); t.valid(); t = scanner.Next()) {
      spec.ProjectRaw(t, proj.data());
      std::string key(reinterpret_cast<const char*>(proj.data()),
                      static_cast<size_t>(spec.key_width()));
      auto [it, inserted] = groups.try_emplace(
          std::move(key), static_cast<size_t>(spec.state_width()), '\0');
      uint8_t* state = reinterpret_cast<uint8_t*>(it->second.data());
      if (inserted) spec.InitState(state);
      spec.UpdateFromProjected(state, proj.data());
    }
  }

  ResultSet out;
  out.schema = spec.final_schema();
  out.rows.reserve(groups.size());
  for (const auto& [key, state] : groups) {
    std::vector<uint8_t> row(
        static_cast<size_t>(out.schema.tuple_size()));
    spec.FinalizeRecord(reinterpret_cast<const uint8_t*>(key.data()),
                        reinterpret_cast<const uint8_t*>(state.data()),
                        row.data());
    out.rows.push_back(std::move(row));
  }
  out.Sort();
  return out;
}

}  // namespace adaptagg
