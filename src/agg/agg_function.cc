#include "agg/agg_function.h"

#include <cstring>
#include <limits>

#include "common/logging.h"

namespace adaptagg {
namespace {

template <typename T>
T Load(const uint8_t* p) {
  T v;
  std::memcpy(&v, p, sizeof(T));
  return v;
}

template <typename T>
void Store(uint8_t* p, T v) {
  std::memcpy(p, &v, sizeof(T));
}

/// Two's-complement wrapping add: SUM/COUNT/AVG accumulators must wrap
/// on int64 overflow (sentinel extremes are legal inputs) with the same
/// bit pattern the SIMD fused kernels produce, and a raw signed add
/// would be undefined behavior instead.
int64_t WrapAdd(int64_t a, int64_t b) {
  return static_cast<int64_t>(static_cast<uint64_t>(a) +
                              static_cast<uint64_t>(b));
}

}  // namespace

std::string AggKindToString(AggKind kind) {
  switch (kind) {
    case AggKind::kCount:
      return "count";
    case AggKind::kSum:
      return "sum";
    case AggKind::kAvg:
      return "avg";
    case AggKind::kMin:
      return "min";
    case AggKind::kMax:
      return "max";
  }
  return "?";
}

AggregateOp::AggregateOp(AggKind kind, DataType input_type)
    : kind_(kind), input_type_(input_type) {
  ADAPTAGG_CHECK(kind == AggKind::kCount || input_type == DataType::kInt64 ||
                 input_type == DataType::kDouble)
      << "aggregate input must be numeric";
  switch (kind_) {
    case AggKind::kCount:
    case AggKind::kSum:
      state_width_ = 8;
      break;
    case AggKind::kAvg:
    case AggKind::kMin:
    case AggKind::kMax:
      state_width_ = 16;
      break;
  }
}

DataType AggregateOp::output_type() const {
  switch (kind_) {
    case AggKind::kCount:
      return DataType::kInt64;
    case AggKind::kSum:
    case AggKind::kMin:
    case AggKind::kMax:
      return input_type_;
    case AggKind::kAvg:
      return DataType::kDouble;
  }
  return DataType::kInt64;
}

void AggregateOp::InitState(uint8_t* state) const {
  std::memset(state, 0, static_cast<size_t>(state_width_));
  if (kind_ == AggKind::kMin) {
    if (input_type_ == DataType::kInt64) {
      Store<int64_t>(state, std::numeric_limits<int64_t>::max());
    } else {
      Store<double>(state, std::numeric_limits<double>::infinity());
    }
  } else if (kind_ == AggKind::kMax) {
    if (input_type_ == DataType::kInt64) {
      Store<int64_t>(state, std::numeric_limits<int64_t>::min());
    } else {
      Store<double>(state, -std::numeric_limits<double>::infinity());
    }
  }
}

void AggregateOp::UpdateRaw(uint8_t* state, const uint8_t* value_bytes) const {
  switch (kind_) {
    case AggKind::kCount:
      Store<int64_t>(state, WrapAdd(Load<int64_t>(state), 1));
      return;
    case AggKind::kSum:
      if (input_type_ == DataType::kInt64) {
        Store<int64_t>(
            state, WrapAdd(Load<int64_t>(state), Load<int64_t>(value_bytes)));
      } else {
        Store<double>(state, Load<double>(state) + Load<double>(value_bytes));
      }
      return;
    case AggKind::kAvg:
      if (input_type_ == DataType::kInt64) {
        Store<int64_t>(
            state, WrapAdd(Load<int64_t>(state), Load<int64_t>(value_bytes)));
      } else {
        Store<double>(state, Load<double>(state) + Load<double>(value_bytes));
      }
      Store<int64_t>(state + 8, WrapAdd(Load<int64_t>(state + 8), 1));
      return;
    case AggKind::kMin:
      if (input_type_ == DataType::kInt64) {
        int64_t v = Load<int64_t>(value_bytes);
        if (v < Load<int64_t>(state)) Store<int64_t>(state, v);
      } else {
        double v = Load<double>(value_bytes);
        if (v < Load<double>(state)) Store<double>(state, v);
      }
      Store<int64_t>(state + 8, 1);
      return;
    case AggKind::kMax:
      if (input_type_ == DataType::kInt64) {
        int64_t v = Load<int64_t>(value_bytes);
        if (v > Load<int64_t>(state)) Store<int64_t>(state, v);
      } else {
        double v = Load<double>(value_bytes);
        if (v > Load<double>(state)) Store<double>(state, v);
      }
      Store<int64_t>(state + 8, 1);
      return;
  }
}

void AggregateOp::MergePartial(uint8_t* state, const uint8_t* other) const {
  switch (kind_) {
    case AggKind::kCount:
      Store<int64_t>(state,
                     WrapAdd(Load<int64_t>(state), Load<int64_t>(other)));
      return;
    case AggKind::kSum:
      if (input_type_ == DataType::kInt64) {
        Store<int64_t>(
            state, WrapAdd(Load<int64_t>(state), Load<int64_t>(other)));
      } else {
        Store<double>(state, Load<double>(state) + Load<double>(other));
      }
      return;
    case AggKind::kAvg:
      if (input_type_ == DataType::kInt64) {
        Store<int64_t>(
            state, WrapAdd(Load<int64_t>(state), Load<int64_t>(other)));
      } else {
        Store<double>(state, Load<double>(state) + Load<double>(other));
      }
      Store<int64_t>(state + 8, WrapAdd(Load<int64_t>(state + 8),
                                        Load<int64_t>(other + 8)));
      return;
    case AggKind::kMin:
      if (Load<int64_t>(other + 8) == 0) return;  // other saw no tuples
      if (input_type_ == DataType::kInt64) {
        int64_t v = Load<int64_t>(other);
        if (v < Load<int64_t>(state)) Store<int64_t>(state, v);
      } else {
        double v = Load<double>(other);
        if (v < Load<double>(state)) Store<double>(state, v);
      }
      Store<int64_t>(state + 8, 1);
      return;
    case AggKind::kMax:
      if (Load<int64_t>(other + 8) == 0) return;
      if (input_type_ == DataType::kInt64) {
        int64_t v = Load<int64_t>(other);
        if (v > Load<int64_t>(state)) Store<int64_t>(state, v);
      } else {
        double v = Load<double>(other);
        if (v > Load<double>(state)) Store<double>(state, v);
      }
      Store<int64_t>(state + 8, 1);
      return;
  }
}

Value AggregateOp::Finalize(const uint8_t* state) const {
  switch (kind_) {
    case AggKind::kCount:
      return Value(Load<int64_t>(state));
    case AggKind::kSum:
    case AggKind::kMin:
    case AggKind::kMax:
      if (input_type_ == DataType::kInt64) {
        return Value(Load<int64_t>(state));
      }
      return Value(Load<double>(state));
    case AggKind::kAvg: {
      int64_t count = Load<int64_t>(state + 8);
      double sum = input_type_ == DataType::kInt64
                       ? static_cast<double>(Load<int64_t>(state))
                       : Load<double>(state);
      // A group always has >= 1 tuple; guard anyway for empty states.
      return Value(count == 0 ? 0.0 : sum / static_cast<double>(count));
    }
  }
  return Value();
}

void AggregateOp::FinalizeTo(const uint8_t* state, uint8_t* out) const {
  Value v = Finalize(state);
  if (v.is_int64()) {
    Store<int64_t>(out, v.int64());
  } else {
    Store<double>(out, v.dbl());
  }
}

}  // namespace adaptagg
