#include "agg/spilling_aggregator.h"

#include "common/logging.h"
#include "common/random.h"

namespace adaptagg {
namespace {

/// Deepest allowed recursive repartitioning; hitting it means the key hash
/// failed to split a bucket 24 times in a row, which indicates a bug (or
/// an adversarial hash collision set), not a legitimate workload.
constexpr int kMaxDepth = 24;

}  // namespace

void SpillStats::Accumulate(const SpillStats& other) {
  overflow_records += other.overflow_records;
  spill_pages_written += other.spill_pages_written;
  spill_pages_read += other.spill_pages_read;
  buckets_created += other.buckets_created;
  max_depth = std::max(max_depth, other.max_depth);
}

SpillingAggregator::SpillingAggregator(const AggregationSpec* spec,
                                       Disk* disk, int64_t max_entries,
                                       int fanout, std::string name)
    : SpillingAggregator(spec, disk, max_entries, fanout, std::move(name),
                         /*depth=*/0) {}

SpillingAggregator::SpillingAggregator(const AggregationSpec* spec,
                                       Disk* disk, int64_t max_entries,
                                       int fanout, std::string name,
                                       int depth)
    : spec_(spec),
      disk_(disk),
      max_entries_(max_entries),
      fanout_(fanout),
      name_(std::move(name)),
      depth_(depth),
      table_(spec, max_entries) {
  ADAPTAGG_CHECK(fanout_ >= 2) << "spill fanout must be >= 2";
  ADAPTAGG_CHECK(depth_ <= kMaxDepth)
      << "aggregation overflow recursion too deep";
}

int SpillingAggregator::BucketOf(uint64_t hash) const {
  // Re-mix with a per-depth seed so each recursion level splits on
  // independent bits, even though the same base hash is reused.
  uint64_t mixed = SplitMix64(hash ^ (0xa5a5a5a5ULL * (depth_ + 1)));
  return static_cast<int>(mixed % static_cast<uint64_t>(fanout_));
}

Status SpillingAggregator::EnsureBuckets() {
  if (!buckets_.empty()) return Status::OK();
  buckets_.reserve(static_cast<size_t>(fanout_));
  for (int b = 0; b < fanout_; ++b) {
    ADAPTAGG_ASSIGN_OR_RETURN(
        SpillWriter w,
        SpillWriter::Create(disk_,
                            name_ + ".d" + std::to_string(depth_) + ".b" +
                                std::to_string(b),
                            spec_->projected_width(), spec_->partial_width()));
    buckets_.push_back(std::make_unique<SpillWriter>(std::move(w)));
  }
  stats_.buckets_created += fanout_;
  return Status::OK();
}

Status SpillingAggregator::Add(SpillTag tag, const uint8_t* record,
                               uint64_t hash) {
  AggHashTable::UpsertResult r =
      tag == SpillTag::kRaw ? table_.UpsertProjected(record, hash)
                            : table_.UpsertPartial(record, hash);
  if (r != AggHashTable::UpsertResult::kFull) return Status::OK();
  ADAPTAGG_RETURN_IF_ERROR(EnsureBuckets());
  ++stats_.overflow_records;
  return buckets_[static_cast<size_t>(BucketOf(hash))]->Append(tag, record);
}

Status SpillingAggregator::AddProjected(const uint8_t* proj) {
  return Add(SpillTag::kRaw, proj, spec_->HashKey(spec_->KeyOfProjected(proj)));
}

Status SpillingAggregator::AddPartial(const uint8_t* partial) {
  return Add(SpillTag::kPartial, partial,
             spec_->HashKey(spec_->KeyOfPartial(partial)));
}

Status SpillingAggregator::AddProjectedBatch(const TupleBatch& batch) {
  overflow_scratch_.clear();
  table_.UpsertProjectedBatchOverflow(batch, 0, overflow_scratch_);
  for (int idx : overflow_scratch_) {
    ADAPTAGG_RETURN_IF_ERROR(EnsureBuckets());
    ++stats_.overflow_records;
    ADAPTAGG_RETURN_IF_ERROR(
        buckets_[static_cast<size_t>(BucketOf(batch.hash(idx)))]->Append(
            SpillTag::kRaw, batch.record(idx)));
  }
  if (table_.radix_partitioning()) return DrainTableOverflow();
  return Status::OK();
}

Status SpillingAggregator::AddPartialBatch(const TupleBatch& batch) {
  overflow_scratch_.clear();
  table_.UpsertPartialBatchOverflow(batch, 0, overflow_scratch_);
  for (int idx : overflow_scratch_) {
    ADAPTAGG_RETURN_IF_ERROR(EnsureBuckets());
    ++stats_.overflow_records;
    ADAPTAGG_RETURN_IF_ERROR(
        buckets_[static_cast<size_t>(BucketOf(batch.hash(idx)))]->Append(
            SpillTag::kPartial, batch.record(idx)));
  }
  if (table_.radix_partitioning()) return DrainTableOverflow();
  return Status::OK();
}

void SpillingAggregator::EnableRadixPartitioning(int partitions) {
  ADAPTAGG_CHECK(!finished_) << "EnableRadixPartitioning after Finish()";
  table_.EnableRadixPartitioning(partitions);
}

Status SpillingAggregator::DrainTableOverflow() {
  return table_.DrainRadixOverflow(
      [&](bool partial, uint64_t hash, const uint8_t* rec) -> Status {
        ADAPTAGG_RETURN_IF_ERROR(EnsureBuckets());
        ++stats_.overflow_records;
        return buckets_[static_cast<size_t>(BucketOf(hash))]->Append(
            partial ? SpillTag::kPartial : SpillTag::kRaw, rec);
      });
}

bool SpillingAggregator::Snapshot(std::vector<uint8_t>* out) const {
  out->clear();
  if (finished_ || has_spilled() || table_.radix_partitioning()) {
    return false;
  }
  const size_t key_width = static_cast<size_t>(spec_->key_width());
  const size_t state_width = static_cast<size_t>(spec_->state_width());
  out->reserve(static_cast<size_t>(table_.size()) *
               (key_width + state_width));
  table_.ForEach([&](const uint8_t* key, const uint8_t* state) {
    out->insert(out->end(), key, key + key_width);
    out->insert(out->end(), state, state + state_width);
  });
  return true;
}

Status SpillingAggregator::RestoreFrom(const uint8_t* data, size_t size) {
  if (finished_ || has_spilled() || table_.size() != 0) {
    return Status::FailedPrecondition(
        "checkpoint restore requires a fresh aggregator");
  }
  if (table_.radix_partitioning()) {
    return Status::FailedPrecondition(
        "checkpoint restore is incompatible with radix pre-partitioning");
  }
  const size_t width = static_cast<size_t>(spec_->partial_width());
  if (width == 0 || size % width != 0) {
    return Status::DataLoss("checkpointed partials are not a whole number "
                            "of records: " + std::to_string(size) +
                            " bytes / width " + std::to_string(width));
  }
  for (size_t off = 0; off < size; off += width) {
    ADAPTAGG_RETURN_IF_ERROR(AddPartial(data + off));
  }
  return Status::OK();
}

Status SpillingAggregator::Finish(const EmitFn& emit) {
  ADAPTAGG_CHECK(!finished_) << "Finish() called twice";
  finished_ = true;

  if (table_.radix_partitioning()) {
    table_.FlushRadixStaging();
    ADAPTAGG_RETURN_IF_ERROR(DrainTableOverflow());
  }
  table_.ForEach(
      [&](const uint8_t* key, const uint8_t* state) { emit(key, state); });
  table_.Clear();

  for (auto& bucket : buckets_) {
    ADAPTAGG_RETURN_IF_ERROR(bucket->Flush());
    stats_.spill_pages_written += bucket->num_pages();
    if (bucket->num_records() == 0) {
      ADAPTAGG_RETURN_IF_ERROR(bucket->Drop());
      continue;
    }
    SpillingAggregator child(spec_, disk_, max_entries_, fanout_, name_,
                             depth_ + 1);
    SpillReader reader(bucket.get());
    SpillTag tag;
    const uint8_t* record = nullptr;
    while (reader.Next(&tag, &record)) {
      uint64_t hash =
          spec_->HashKey(tag == SpillTag::kRaw ? spec_->KeyOfProjected(record)
                                               : spec_->KeyOfPartial(record));
      ADAPTAGG_RETURN_IF_ERROR(child.Add(tag, record, hash));
    }
    ADAPTAGG_RETURN_IF_ERROR(reader.status());
    stats_.spill_pages_read += reader.pages_read();
    ADAPTAGG_RETURN_IF_ERROR(bucket->Drop());
    ADAPTAGG_RETURN_IF_ERROR(child.Finish(emit));
    stats_.Accumulate(child.stats());
    child_ht_stats_.Accumulate(child.ht_stats());
    stats_.max_depth = std::max(stats_.max_depth, depth_ + 1);
  }
  buckets_.clear();
  return Status::OK();
}

}  // namespace adaptagg
