#include "agg/hash_table.h"

#include <cstring>

#include "common/logging.h"

namespace adaptagg {
namespace {

int64_t NextPow2(int64_t v) {
  int64_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

}  // namespace

AggHashTable::AggHashTable(const AggregationSpec* spec, int64_t max_entries)
    : spec_(spec),
      max_entries_(max_entries),
      key_width_(spec->key_width()),
      state_width_(spec->state_width()),
      slot_width_(spec->key_width() + spec->state_width()) {
  ADAPTAGG_CHECK(max_entries_ > 0) << "hash table needs capacity";
  // Bucket array sized for <= ~70% load at max occupancy.
  int64_t buckets = NextPow2(max_entries_ + max_entries_ / 2 + 1);
  buckets_.assign(static_cast<size_t>(buckets), -1);
  bucket_mask_ = static_cast<uint64_t>(buckets - 1);
  arena_.reserve(static_cast<size_t>(
      std::min<int64_t>(max_entries_, 1 << 16) * slot_width_));
}

int64_t AggHashTable::MemoryBytes() const {
  return static_cast<int64_t>(arena_.capacity()) +
         static_cast<int64_t>(buckets_.size() * sizeof(int64_t));
}

int64_t AggHashTable::Probe(const uint8_t* key, uint64_t hash,
                            bool* found) const {
  uint64_t pos = hash & bucket_mask_;
  while (true) {
    int64_t slot = buckets_[pos];
    if (slot < 0) {
      *found = false;
      return static_cast<int64_t>(pos);
    }
    const uint8_t* slot_key = arena_.data() + slot * slot_width_;
    if (std::memcmp(slot_key, key, static_cast<size_t>(key_width_)) == 0) {
      *found = true;
      return slot;
    }
    pos = (pos + 1) & bucket_mask_;
  }
}

AggHashTable::UpsertResult AggHashTable::FindOrInsert(const uint8_t* key,
                                                      uint64_t hash,
                                                      uint8_t** state) {
  bool found = false;
  int64_t pos = Probe(key, hash, &found);
  if (found) {
    *state = arena_.data() + pos * slot_width_ + key_width_;
    return UpsertResult::kUpdated;
  }
  if (size_ >= max_entries_) {
    *state = nullptr;
    return UpsertResult::kFull;
  }
  int64_t slot = size_++;
  arena_.resize(static_cast<size_t>(size_) * slot_width_);
  uint8_t* slot_ptr = arena_.data() + slot * slot_width_;
  std::memcpy(slot_ptr, key, static_cast<size_t>(key_width_));
  spec_->InitState(slot_ptr + key_width_);
  buckets_[static_cast<size_t>(pos)] = slot;
  *state = slot_ptr + key_width_;
  return UpsertResult::kInserted;
}

AggHashTable::UpsertResult AggHashTable::UpsertProjected(const uint8_t* proj,
                                                         uint64_t hash) {
  uint8_t* state = nullptr;
  UpsertResult r = FindOrInsert(spec_->KeyOfProjected(proj), hash, &state);
  if (r != UpsertResult::kFull) {
    spec_->UpdateFromProjected(state, proj);
  }
  return r;
}

AggHashTable::UpsertResult AggHashTable::UpsertPartial(const uint8_t* partial,
                                                       uint64_t hash) {
  uint8_t* state = nullptr;
  UpsertResult r = FindOrInsert(spec_->KeyOfPartial(partial), hash, &state);
  if (r != UpsertResult::kFull) {
    spec_->MergeState(state, spec_->StateOfPartial(partial));
  }
  return r;
}

const uint8_t* AggHashTable::Find(const uint8_t* key, uint64_t hash) const {
  bool found = false;
  int64_t pos = Probe(key, hash, &found);
  if (!found) return nullptr;
  return arena_.data() + pos * slot_width_ + key_width_;
}

void AggHashTable::Clear() {
  std::fill(buckets_.begin(), buckets_.end(), -1);
  arena_.clear();
  size_ = 0;
}

}  // namespace adaptagg
