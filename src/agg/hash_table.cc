#include "agg/hash_table.h"

#include <algorithm>
#include <cstring>

#include "common/logging.h"

namespace adaptagg {
namespace {

int64_t NextPow2(int64_t v) {
  int64_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

/// Slots allocated up front; tables bounded below this never resize at
/// all, larger ones grow by doubling from here.
constexpr int64_t kInitialSlots = int64_t{1} << 16;

inline bool KeysEqual(const uint8_t* a, const uint8_t* b, int width,
                      bool key8) {
  if (key8) {
    uint64_t x;
    uint64_t y;
    std::memcpy(&x, a, 8);
    std::memcpy(&y, b, 8);
    return x == y;
  }
  return std::memcmp(a, b, static_cast<size_t>(width)) == 0;
}

// Per-record update functors plugged into UpsertBatchImpl. Each folds
// one record into its slot's state; the fused ones hoist the per-op
// dispatch of UpdateFromProjected/MergeState out of the probe loop and
// must stay behaviorally identical to it (InitState has already
// zeroed/initialized the state on insert).

/// Interpreted raw-value fallback.
struct GenericUpdate {
  const AggregationSpec* spec;
  void operator()(uint8_t* state, const uint8_t* rec) const {
    spec->UpdateFromProjected(state, rec);
  }
};

/// COUNT(*), SUM(int64): state [count:int64][sum:int64]; the single SUM
/// input is the 8-byte value slot right after the key.
struct CountSumInt64Update {
  int key_width;
  void operator()(uint8_t* state, const uint8_t* rec) const {
    int64_t count;
    int64_t sum;
    int64_t v;
    std::memcpy(&count, state, 8);
    std::memcpy(&sum, state + 8, 8);
    std::memcpy(&v, rec + key_width, 8);
    count += 1;
    sum += v;
    std::memcpy(state, &count, 8);
    std::memcpy(state + 8, &sum, 8);
  }
};

/// Duplicate elimination: reaching the slot is the whole update.
struct DistinctUpdate {
  void operator()(uint8_t*, const uint8_t*) const {}
};

/// Interpreted partial-merge fallback: `rec` is a partial record, its
/// state block sits right after the key.
struct GenericMerge {
  const AggregationSpec* spec;
  int key_width;
  void operator()(uint8_t* state, const uint8_t* rec) const {
    spec->MergeState(state, rec + key_width);
  }
};

/// All states are int64 words merged by addition (COUNT / SUM(int64) /
/// AVG(int64), in any mix): one flat word loop over the state block.
struct AddInt64Merge {
  int key_width;
  int words;  // state_width / 8
  void operator()(uint8_t* state, const uint8_t* rec) const {
    const uint8_t* other = rec + key_width;
    for (int w = 0; w < words; ++w) {
      int64_t a;
      int64_t b;
      std::memcpy(&a, state + w * 8, 8);
      std::memcpy(&b, other + w * 8, 8);
      a += b;
      std::memcpy(state + w * 8, &a, 8);
    }
  }
};

/// All ops are MIN/MAX(int64): per-op [extremum:int64][seen:int64]
/// blocks. Mirrors AggregateOp::MergePartial exactly: an unseen other is
/// skipped, the extremum compare-stores, seen is set to 1.
struct MinMaxInt64Merge {
  int key_width;
  const uint8_t* is_min;  // per-op flag, 1 = MIN
  int num_ops;
  void operator()(uint8_t* state, const uint8_t* rec) const {
    const uint8_t* other = rec + key_width;
    for (int op = 0; op < num_ops; ++op) {
      uint8_t* s = state + op * 16;
      const uint8_t* o = other + op * 16;
      int64_t other_seen;
      std::memcpy(&other_seen, o + 8, 8);
      if (other_seen == 0) continue;  // other side saw no tuples
      int64_t cur;
      int64_t v;
      std::memcpy(&cur, s, 8);
      std::memcpy(&v, o, 8);
      if (is_min[op] != 0 ? v < cur : v > cur) {
        std::memcpy(s, &v, 8);
      }
      const int64_t one = 1;
      std::memcpy(s + 8, &one, 8);
    }
  }
};

}  // namespace

AggHashTable::AggHashTable(const AggregationSpec* spec, int64_t max_entries)
    : spec_(spec),
      max_entries_(max_entries),
      key_width_(spec->key_width()),
      state_width_(spec->state_width()),
      slot_width_(spec->key_width() + spec->state_width()) {
  ADAPTAGG_CHECK(max_entries_ > 0) << "hash table needs capacity";
  // Bucket array sized for <= ~70% load at max occupancy.
  int64_t buckets = NextPow2(max_entries_ + max_entries_ / 2 + 1);
  buckets_.assign(static_cast<size_t>(buckets), -1);
  bucket_mask_ = static_cast<uint64_t>(buckets - 1);
  // Pre-size the slot arena so the insert path never resizes per record
  // (EnsureSlotCapacity doubles beyond this for very large bounds).
  capacity_slots_ = std::min<int64_t>(max_entries_, kInitialSlots);
  arena_.resize(static_cast<size_t>(capacity_slots_ * slot_width_));
}

int64_t AggHashTable::MemoryBytes() const {
  return capacity_slots_ * slot_width_ +
         static_cast<int64_t>(buckets_.size() * sizeof(int64_t));
}

void AggHashTable::EnsureSlotCapacity(int64_t slots) {
  if (slots <= capacity_slots_) return;
  int64_t grown = capacity_slots_;
  while (grown < slots) grown *= 2;
  capacity_slots_ = std::min<int64_t>(grown, max_entries_);
  arena_.resize(static_cast<size_t>(capacity_slots_ * slot_width_));
  ++stats_.resizes;
}

int64_t AggHashTable::Probe(const uint8_t* key, uint64_t hash,
                            bool* found) const {
  uint64_t pos = hash & bucket_mask_;
  while (true) {
    int64_t slot = buckets_[pos];
    if (slot < 0) {
      *found = false;
      return static_cast<int64_t>(pos);
    }
    const uint8_t* slot_key = arena_.data() + slot * slot_width_;
    if (std::memcmp(slot_key, key, static_cast<size_t>(key_width_)) == 0) {
      *found = true;
      return slot;
    }
    pos = (pos + 1) & bucket_mask_;
  }
}

AggHashTable::UpsertResult AggHashTable::FindOrInsert(const uint8_t* key,
                                                      uint64_t hash,
                                                      uint8_t** state) {
  bool found = false;
  int64_t pos = Probe(key, hash, &found);
  ++stats_.probes;
  if (found) {
    ++stats_.hits;
    *state = arena_.data() + pos * slot_width_ + key_width_;
    return UpsertResult::kUpdated;
  }
  if (size_ >= max_entries_) {
    *state = nullptr;
    return UpsertResult::kFull;
  }
  ++stats_.inserts;
  int64_t slot = size_++;
  EnsureSlotCapacity(size_);
  uint8_t* slot_ptr = arena_.data() + slot * slot_width_;
  std::memcpy(slot_ptr, key, static_cast<size_t>(key_width_));
  spec_->InitState(slot_ptr + key_width_);
  buckets_[static_cast<size_t>(pos)] = slot;
  *state = slot_ptr + key_width_;
  return UpsertResult::kInserted;
}

AggHashTable::UpsertResult AggHashTable::UpsertProjected(const uint8_t* proj,
                                                         uint64_t hash) {
  uint8_t* state = nullptr;
  UpsertResult r = FindOrInsert(spec_->KeyOfProjected(proj), hash, &state);
  if (r != UpsertResult::kFull) {
    spec_->UpdateFromProjected(state, proj);
  }
  return r;
}

AggHashTable::UpsertResult AggHashTable::UpsertPartial(const uint8_t* partial,
                                                       uint64_t hash) {
  uint8_t* state = nullptr;
  UpsertResult r = FindOrInsert(spec_->KeyOfPartial(partial), hash, &state);
  if (r != UpsertResult::kFull) {
    spec_->MergeState(state, spec_->StateOfPartial(partial));
  }
  return r;
}

template <bool Key8, bool StopAtFull, typename UpdateFn>
int AggHashTable::UpsertBatchImpl(const TupleBatch& batch, int from,
                                  std::vector<int>* overflow, bool fused,
                                  const UpdateFn& update) {
  const int n = batch.size();
  const uint8_t* recs = batch.records();
  const int stride = batch.stride();
  const uint64_t* hashes = batch.hashes();
  // Make room for the worst case up front: pointers into the arena stay
  // stable for the whole batch and no insert pays a resize check.
  EnsureSlotCapacity(std::min<int64_t>(max_entries_, size_ + (n - from)));
  uint8_t* arena = arena_.data();
  const int64_t size_before = size_;
  const int64_t ovf_before =
      overflow != nullptr ? static_cast<int64_t>(overflow->size()) : 0;

  for (int i = from; i < n; ++i) {
    // Two-stage software pipeline: pull the bucket-array line for probe
    // i+D, and the slot line for probe i+D/2 (whose bucket head is, by
    // then, usually resident). Pure prefetches — collisions and inserts
    // between now and then only waste the hint, never correctness.
    if (i + kPrefetchDistance < n) {
      PrefetchRead(&buckets_[hashes[i + kPrefetchDistance] & bucket_mask_]);
    }
    if (i + kPrefetchDistance / 2 < n) {
      int64_t ahead =
          buckets_[hashes[i + kPrefetchDistance / 2] & bucket_mask_];
      if (ahead >= 0) PrefetchRead(arena + ahead * slot_width_);
    }

    const uint8_t* rec = recs + static_cast<int64_t>(i) * stride;
    const uint64_t hash = hashes[i];
    uint64_t pos = hash & bucket_mask_;
    uint8_t* hit_state = nullptr;
    uint64_t insert_pos = 0;
    bool found = false;
    while (true) {
      int64_t slot = buckets_[pos];
      if (slot < 0) {
        insert_pos = pos;
        break;
      }
      uint8_t* slot_ptr = arena + slot * slot_width_;
      if (KeysEqual(slot_ptr, rec, key_width_, Key8)) {
        hit_state = slot_ptr + key_width_;
        found = true;
        break;
      }
      pos = (pos + 1) & bucket_mask_;
    }

    if (found) {
      update(hit_state, rec);
      continue;
    }
    if (size_ >= max_entries_) {
      if constexpr (StopAtFull) {
        NoteBatch(i - from, size_before, 0, fused);
        return i - from;
      } else {
        overflow->push_back(i);
        continue;
      }
    }
    int64_t slot = size_++;
    uint8_t* slot_ptr = arena + slot * slot_width_;
    std::memcpy(slot_ptr, rec, static_cast<size_t>(key_width_));
    spec_->InitState(slot_ptr + key_width_);
    buckets_[static_cast<size_t>(insert_pos)] = slot;
    update(slot_ptr + key_width_, rec);
  }
  const int64_t overflowed =
      overflow != nullptr ? static_cast<int64_t>(overflow->size()) - ovf_before
                          : 0;
  NoteBatch(n - from, size_before, overflowed, fused);
  return n - from;
}

template <bool StopAtFull>
int AggHashTable::DispatchUpsertBatch(const TupleBatch& batch, int from,
                                      std::vector<int>* overflow) {
  const bool key8 = key_width_ == 8;
  // Instantiates the impl over the key8 runtime split (the functor and
  // StopAtFull are compile-time already).
  auto run = [&](bool fused, const auto& update) {
    return key8 ? UpsertBatchImpl<true, StopAtFull>(batch, from, overflow,
                                                    fused, update)
                : UpsertBatchImpl<false, StopAtFull>(batch, from, overflow,
                                                     fused, update);
  };
  switch (spec_->fused_kernel()) {
    case FusedKernelKind::kCountSumInt64:
      return run(true, CountSumInt64Update{key_width_});
    case FusedKernelKind::kDistinct:
      return run(true, DistinctUpdate{});
    case FusedKernelKind::kGeneric:
      break;
  }
  return run(false, GenericUpdate{spec_});
}

template <bool StopAtFull>
int AggHashTable::DispatchMergeBatch(const TupleBatch& batch, int from,
                                     std::vector<int>* overflow) {
  const bool key8 = key_width_ == 8;
  auto run = [&](bool fused, const auto& update) {
    return key8 ? UpsertBatchImpl<true, StopAtFull>(batch, from, overflow,
                                                    fused, update)
                : UpsertBatchImpl<false, StopAtFull>(batch, from, overflow,
                                                     fused, update);
  };
  switch (spec_->fused_merge_kernel()) {
    case FusedMergeKind::kAddInt64:
      return run(true, AddInt64Merge{key_width_, state_width_ / 8});
    case FusedMergeKind::kMinMaxInt64:
      return run(true,
                 MinMaxInt64Merge{key_width_, spec_->merge_is_min().data(),
                                  static_cast<int>(spec_->ops().size())});
    case FusedMergeKind::kDistinct:
      return run(true, DistinctUpdate{});
    case FusedMergeKind::kGeneric:
      break;
  }
  return run(false, GenericMerge{spec_, key_width_});
}

int AggHashTable::UpsertProjectedBatch(const TupleBatch& batch, int from) {
  return DispatchUpsertBatch<true>(batch, from, nullptr);
}

void AggHashTable::UpsertProjectedBatchOverflow(const TupleBatch& batch,
                                                int from,
                                                std::vector<int>& overflow) {
  DispatchUpsertBatch<false>(batch, from, &overflow);
}

int AggHashTable::UpsertPartialBatch(const TupleBatch& batch, int from) {
  return DispatchMergeBatch<true>(batch, from, nullptr);
}

void AggHashTable::UpsertPartialBatchOverflow(const TupleBatch& batch,
                                              int from,
                                              std::vector<int>& overflow) {
  DispatchMergeBatch<false>(batch, from, &overflow);
}

const uint8_t* AggHashTable::Find(const uint8_t* key, uint64_t hash) const {
  bool found = false;
  int64_t pos = Probe(key, hash, &found);
  if (!found) return nullptr;
  return arena_.data() + pos * slot_width_ + key_width_;
}

void AggHashTable::Clear() {
  std::fill(buckets_.begin(), buckets_.end(), -1);
  size_ = 0;
}

}  // namespace adaptagg
