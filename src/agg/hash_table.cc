#include "agg/hash_table.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <numeric>

#include "common/logging.h"
#include "common/simd.h"

namespace adaptagg {
namespace {

int64_t NextPow2(int64_t v) {
  int64_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

/// Slots allocated up front; tables bounded below this never resize at
/// all, larger ones grow by doubling from here.
constexpr int64_t kInitialSlots = int64_t{1} << 16;

/// A radix partition drains once its staging buffer crosses this many
/// bytes (and again at FlushRadixStaging). Large on purpose: each drain
/// walks the partition's bucket region, so more records per drain means
/// more upserts amortizing the same cache lines.
constexpr int64_t kRadixStageSoftCapBytes = int64_t{4} << 20;

/// ADAPTAGG_FORCE_CLASSIFY (non-empty, not "0") routes eligible batch
/// upserts through the 8-lane SIMD classify probe instead of the
/// prefetch-pipelined streaming loop. Off by default: on every regime
/// measured on the dev host — L2-resident through DRAM-resident
/// (640 MB footprint), all-insert through 8:1 hit-heavy — the streaming
/// loop's two-stage prefetch pipeline hid probe latency better than the
/// classifier's gathers, which serialize on the gather unit and pay a
/// per-lane mask branch on random keys (15-30% slower end-to-end). The
/// kernel stays dispatched and differential-tested; this switch keeps
/// the in-table path exercisable.
bool EnvForcesClassify() {
  // Re-read every call (it runs once per batch, not per record) so
  // tests can toggle the path with setenv.
  const char* v = std::getenv("ADAPTAGG_FORCE_CLASSIFY");
  if (v == nullptr) return false;
  return v[0] != '\0' && !(v[0] == '0' && v[1] == '\0');
}

inline bool KeysEqual(const uint8_t* a, const uint8_t* b, int width,
                      bool key8) {
  if (key8) {
    uint64_t x;
    uint64_t y;
    std::memcpy(&x, a, 8);
    std::memcpy(&y, b, 8);
    return x == y;
  }
  return std::memcmp(a, b, static_cast<size_t>(width)) == 0;
}

// Per-record update functors plugged into UpsertBatchImpl. Each folds
// one record into its slot's state; the fused ones hoist the per-op
// dispatch of UpdateFromProjected/MergeState out of the probe loop and
// must stay behaviorally identical to it (InitState has already
// zeroed/initialized the state on insert). Their arithmetic runs through
// the SIMD layer (common/simd.h), bit-identical to the scalar loops.

/// Interpreted raw-value fallback.
struct GenericUpdate {
  const AggregationSpec* spec;
  void operator()(uint8_t* state, const uint8_t* rec) const {
    spec->UpdateFromProjected(state, rec);
  }
};

/// COUNT(*), SUM(int64): state [count:int64][sum:int64]; the single SUM
/// input is the 8-byte value slot right after the key.
struct CountSumInt64Update {
  int key_width;
  void operator()(uint8_t* state, const uint8_t* rec) const {
    int64_t v;
    std::memcpy(&v, rec + key_width, 8);
    simd::AddInt64PairInPlace(state, 1, v);
  }
};

/// Duplicate elimination: reaching the slot is the whole update.
struct DistinctUpdate {
  void operator()(uint8_t*, const uint8_t*) const {}
};

/// Interpreted partial-merge fallback: `rec` is a partial record, its
/// state block sits right after the key.
struct GenericMerge {
  const AggregationSpec* spec;
  int key_width;
  void operator()(uint8_t* state, const uint8_t* rec) const {
    spec->MergeState(state, rec + key_width);
  }
};

/// All states are int64 words merged by addition (COUNT / SUM(int64) /
/// AVG(int64), in any mix): one flat vector add over the state block.
struct AddInt64Merge {
  int key_width;
  int words;  // state_width / 8
  void operator()(uint8_t* state, const uint8_t* rec) const {
    simd::AddInt64Words(state, rec + key_width, words);
  }
};

/// All ops are MIN/MAX(int64): per-op [extremum:int64][seen:int64]
/// blocks. Mirrors AggregateOp::MergePartial exactly: an unseen other is
/// skipped, the extremum compare-stores, seen is set to 1. `merge` is
/// the dispatched SIMD kernel, resolved once per batch.
struct MinMaxInt64Merge {
  int key_width;
  const uint8_t* is_min;  // per-op flag, 1 = MIN
  int num_ops;
  simd::MinMaxMergeFn merge;
  void operator()(uint8_t* state, const uint8_t* rec) const {
    merge(state, rec + key_width, is_min, num_ops);
  }
};

}  // namespace

AggHashTable::AggHashTable(const AggregationSpec* spec, int64_t max_entries)
    : spec_(spec),
      max_entries_(max_entries),
      key_width_(spec->key_width()),
      state_width_(spec->state_width()),
      slot_width_(spec->key_width() + spec->state_width()) {
  ADAPTAGG_CHECK(max_entries_ > 0) << "hash table needs capacity";
  // Bucket array sized for <= ~70% load at max occupancy.
  int64_t buckets = NextPow2(max_entries_ + max_entries_ / 2 + 1);
  buckets_.assign(static_cast<size_t>(buckets), -1);
  bucket_mask_ = static_cast<uint64_t>(buckets - 1);
  // Pre-size the slot arena so the insert path never resizes per record
  // (EnsureSlotCapacity doubles beyond this for very large bounds).
  capacity_slots_ = std::min<int64_t>(max_entries_, kInitialSlots);
  arena_.resize(static_cast<size_t>(capacity_slots_ * slot_width_));
  // The SIMD probe classifier forms slot byte offsets with a 32x32->64
  // multiply, so both factors must fit in 32 bits (they always do for
  // realistic bounds; the guard keeps adversarial configs correct).
  classify_ok_ = max_entries_ <= (int64_t{1} << 31) &&
                 slot_width_ <= (int64_t{1} << 31);
}

int64_t AggHashTable::MemoryBytes() const {
  int64_t bytes =
      capacity_slots_ * slot_width_ +
      static_cast<int64_t>(buckets_.size() * sizeof(int64_t));
  if (radix_enabled_) {
    bytes += static_cast<int64_t>(slot_seq_.capacity() * sizeof(uint64_t));
    bytes += static_cast<int64_t>(radix_overflow_.capacity());
    bytes +=
        static_cast<int64_t>(drain_hash_scratch_.capacity() * sizeof(uint64_t));
    for (const std::unique_ptr<uint8_t[]>& buf : radix_stage_) {
      if (buf != nullptr) bytes += static_cast<int64_t>(radix_stage_cap_);
    }
  }
  return bytes;
}

void AggHashTable::EnsureSlotCapacity(int64_t slots) {
  if (slots <= capacity_slots_) return;
  int64_t grown = capacity_slots_;
  while (grown < slots) grown *= 2;
  capacity_slots_ = std::min<int64_t>(grown, max_entries_);
  arena_.resize(static_cast<size_t>(capacity_slots_ * slot_width_));
  if (radix_enabled_) {
    slot_seq_.resize(static_cast<size_t>(capacity_slots_));
  }
  ++stats_.resizes;
}

int64_t AggHashTable::Probe(const uint8_t* key, uint64_t hash,
                            bool* found) const {
  uint64_t pos = hash & bucket_mask_;
  while (true) {
    int64_t slot = buckets_[pos];
    if (slot < 0) {
      *found = false;
      return static_cast<int64_t>(pos);
    }
    const uint8_t* slot_key = arena_.data() + slot * slot_width_;
    if (std::memcmp(slot_key, key, static_cast<size_t>(key_width_)) == 0) {
      *found = true;
      return slot;
    }
    pos = (pos + 1) & bucket_mask_;
  }
}

AggHashTable::UpsertResult AggHashTable::FindOrInsert(const uint8_t* key,
                                                      uint64_t hash,
                                                      uint8_t** state) {
  ADAPTAGG_CHECK(!radix_enabled_)
      << "scalar upserts cannot see radix-staged records";
  bool found = false;
  int64_t pos = Probe(key, hash, &found);
  ++stats_.probes;
  if (found) {
    ++stats_.hits;
    *state = arena_.data() + pos * slot_width_ + key_width_;
    return UpsertResult::kUpdated;
  }
  if (size_ >= max_entries_) {
    *state = nullptr;
    return UpsertResult::kFull;
  }
  ++stats_.inserts;
  int64_t slot = size_++;
  EnsureSlotCapacity(size_);
  uint8_t* slot_ptr = arena_.data() + slot * slot_width_;
  std::memcpy(slot_ptr, key, static_cast<size_t>(key_width_));
  spec_->InitState(slot_ptr + key_width_);
  buckets_[static_cast<size_t>(pos)] = slot;
  *state = slot_ptr + key_width_;
  return UpsertResult::kInserted;
}

AggHashTable::UpsertResult AggHashTable::UpsertProjected(const uint8_t* proj,
                                                         uint64_t hash) {
  uint8_t* state = nullptr;
  UpsertResult r = FindOrInsert(spec_->KeyOfProjected(proj), hash, &state);
  if (r != UpsertResult::kFull) {
    spec_->UpdateFromProjected(state, proj);
  }
  return r;
}

AggHashTable::UpsertResult AggHashTable::UpsertPartial(const uint8_t* partial,
                                                       uint64_t hash) {
  uint8_t* state = nullptr;
  UpsertResult r = FindOrInsert(spec_->KeyOfPartial(partial), hash, &state);
  if (r != UpsertResult::kFull) {
    spec_->MergeState(state, spec_->StateOfPartial(partial));
  }
  return r;
}

template <bool Key8, bool StopAtFull, int HashStrideCT, typename UpdateFn>
int AggHashTable::UpsertBatchImpl(const uint8_t* recs, int stride,
                                  const uint8_t* hash_base, int hash_stride,
                                  bool use_classify, int from, int n,
                                  std::vector<int>* overflow, bool fused,
                                  const UpdateFn& update) {
  // Make room for the worst case up front: pointers into the arena stay
  // stable for the whole batch and no insert pays a resize check.
  EnsureSlotCapacity(std::min<int64_t>(max_entries_, size_ + (n - from)));
  uint8_t* arena = arena_.data();
  const int64_t size_before = size_;
  const int64_t ovf_before =
      overflow != nullptr ? static_cast<int64_t>(overflow->size()) : 0;

  const auto hash_at = [&](int i) {
    // HashStrideCT folds the common dense-hash-array case (the batch
    // entry points) back to a constant-stride load; 0 = runtime stride
    // (the radix drains, whose hashes sit inside staged entries).
    const int hs = HashStrideCT != 0 ? HashStrideCT : hash_stride;
    uint64_t h;
    std::memcpy(&h, hash_base + static_cast<int64_t>(i) * hs, 8);
    return h;
  };

  // Inserts since the last classification — they invalidate the
  // classifier's empty bits (never its hits).
  int inserts_since_classify = 0;

  // Per-record probe/insert, also the resolver for lanes the classifier
  // leaves ambiguous. Returns false only on a StopAtFull stop (the
  // record is left unprocessed).
  const auto scalar_one = [&](int i) {
    const uint8_t* rec = recs + static_cast<int64_t>(i) * stride;
    const uint64_t hash = hash_at(i);
    uint64_t pos = hash & bucket_mask_;
    uint8_t* hit_state = nullptr;
    uint64_t insert_pos = 0;
    bool found = false;
    while (true) {
      int64_t slot = buckets_[pos];
      if (slot < 0) {
        insert_pos = pos;
        break;
      }
      uint8_t* slot_ptr = arena + slot * slot_width_;
      if (KeysEqual(slot_ptr, rec, key_width_, Key8)) {
        hit_state = slot_ptr + key_width_;
        found = true;
        break;
      }
      pos = (pos + 1) & bucket_mask_;
    }

    if (found) {
      update(hit_state, rec);
      return true;
    }
    if (size_ >= max_entries_) {
      if constexpr (StopAtFull) {
        return false;
      } else {
        overflow->push_back(i);
        return true;
      }
    }
    int64_t slot = size_++;
    uint8_t* slot_ptr = arena + slot * slot_width_;
    std::memcpy(slot_ptr, rec, static_cast<size_t>(key_width_));
    spec_->InitState(slot_ptr + key_width_);
    buckets_[static_cast<size_t>(insert_pos)] = slot;
    ++inserts_since_classify;
    update(slot_ptr + key_width_, rec);
    return true;
  };

  int i = from;
  if (Key8 && use_classify && n - i >= 8) {
    // Group-of-8 classify path (opt-in, see UseClassify): one
    // register-wide home-bucket compare classifies each lane as hit /
    // empty / ambiguous; lanes then resolve in record order, so
    // semantics (duplicate-key RMW order, stop-at-full precision) match
    // the streaming loop exactly — including bit-identical table state
    // and emit order.
    const simd::ProbeClassify8Fn classify = simd::ResolveProbeClassify8();
    for (; i + 8 <= n; i += 8) {
      // Two-group-deep pipeline mirroring the scalar one below: pull
      // bucket lines for group g+2 and slot lines for group g+1 (whose
      // bucket heads are, by then, usually resident). Pure prefetches.
      for (int k = 0; k < 8 && i + 16 + k < n; ++k) {
        PrefetchRead(&buckets_[hash_at(i + 16 + k) & bucket_mask_]);
      }
      for (int k = 0; k < 8 && i + 8 + k < n; ++k) {
        const int64_t ahead = buckets_[hash_at(i + 8 + k) & bucket_mask_];
        if (ahead >= 0) PrefetchRead(arena + ahead * slot_width_);
      }

      uint64_t hashes8[8];
      for (int k = 0; k < 8; ++k) hashes8[k] = hash_at(i + k);
      simd::Classify8 cls;
      classify(buckets_.data(), bucket_mask_, arena, slot_width_,
               recs + static_cast<int64_t>(i) * stride, stride, hashes8,
               &cls);
      inserts_since_classify = 0;
      for (int k = 0; k < 8; ++k) {
        const uint8_t* rec = recs + static_cast<int64_t>(i + k) * stride;
        if ((cls.hit_mask >> k) & 1u) {
          // Home-bucket hit. Still valid after this group's inserts:
          // linear probing never relocates an entry, keys are
          // immutable, and the arena was pre-sized above.
          update(arena + cls.slots[k] * slot_width_ + key_width_, rec);
          continue;
        }
        if (((cls.empty_mask >> k) & 1u) != 0 &&
            inserts_since_classify == 0) {
          // Home bucket verified empty and untouched since: the key is
          // definitely absent, insert directly at the home position.
          if (size_ >= max_entries_) {
            if constexpr (StopAtFull) {
              NoteBatch(i + k - from, size_before, 0, fused);
              return i + k - from;
            } else {
              overflow->push_back(i + k);
              continue;
            }
          }
          const int64_t slot = size_++;
          uint8_t* slot_ptr = arena + slot * slot_width_;
          std::memcpy(slot_ptr, rec, static_cast<size_t>(key_width_));
          spec_->InitState(slot_ptr + key_width_);
          buckets_[static_cast<size_t>(hashes8[k] & bucket_mask_)] = slot;
          ++inserts_since_classify;
          update(slot_ptr + key_width_, rec);
          continue;
        }
        // Collision chain, or a duplicate key inserted earlier in this
        // group may now occupy the home bucket: full scalar probe.
        if (!scalar_one(i + k)) {
          NoteBatch(i + k - from, size_before, 0, fused);
          return i + k - from;
        }
      }
    }
  }

  // Streaming loop: the probe body stays inline (not routed through
  // scalar_one) so the compiler and the out-of-order core can overlap
  // each iteration's prefetches with the previous probe's dependent
  // loads — on tables that outgrow cache this overlap is worth ~25% of
  // the whole pass.
  for (; i < n; ++i) {
    // Two-stage software pipeline: pull the bucket-array line for probe
    // i+D, and the slot line for probe i+D/2 (whose bucket head is, by
    // then, usually resident). Pure prefetches — collisions and inserts
    // between now and then only waste the hint, never correctness.
    if (i + kPrefetchDistance < n) {
      PrefetchRead(&buckets_[hash_at(i + kPrefetchDistance) & bucket_mask_]);
    }
    if (i + kPrefetchDistance / 2 < n) {
      const int64_t ahead =
          buckets_[hash_at(i + kPrefetchDistance / 2) & bucket_mask_];
      if (ahead >= 0) PrefetchRead(arena + ahead * slot_width_);
    }

    const uint8_t* rec = recs + static_cast<int64_t>(i) * stride;
    const uint64_t hash = hash_at(i);
    uint64_t pos = hash & bucket_mask_;
    uint8_t* hit_state = nullptr;
    uint64_t insert_pos = 0;
    bool found = false;
    while (true) {
      int64_t slot = buckets_[pos];
      if (slot < 0) {
        insert_pos = pos;
        break;
      }
      uint8_t* slot_ptr = arena + slot * slot_width_;
      if (KeysEqual(slot_ptr, rec, key_width_, Key8)) {
        hit_state = slot_ptr + key_width_;
        found = true;
        break;
      }
      pos = (pos + 1) & bucket_mask_;
    }

    if (found) {
      update(hit_state, rec);
      continue;
    }
    if (size_ >= max_entries_) {
      if constexpr (StopAtFull) {
        NoteBatch(i - from, size_before, 0, fused);
        return i - from;
      } else {
        overflow->push_back(i);
        continue;
      }
    }
    int64_t slot = size_++;
    uint8_t* slot_ptr = arena + slot * slot_width_;
    std::memcpy(slot_ptr, rec, static_cast<size_t>(key_width_));
    spec_->InitState(slot_ptr + key_width_);
    buckets_[static_cast<size_t>(insert_pos)] = slot;
    update(slot_ptr + key_width_, rec);
  }
  const int64_t overflowed =
      overflow != nullptr ? static_cast<int64_t>(overflow->size()) - ovf_before
                          : 0;
  NoteBatch(n - from, size_before, overflowed, fused);
  return n - from;
}

bool AggHashTable::UseClassify() const {
  // Opt-in only (see EnvForcesClassify): the streaming loop's prefetch
  // pipeline beat the gather-based classifier in every regime measured.
  // Radix drains walk a cache-sized bucket region by construction, so
  // they always stream regardless.
  return classify_ok_ && !radix_enabled_ && EnvForcesClassify();
}

template <bool StopAtFull, int HashStrideCT>
int AggHashTable::DispatchUpsertBatch(const uint8_t* recs, int stride,
                                      const uint8_t* hash_base,
                                      int hash_stride, int from, int n,
                                      std::vector<int>* overflow) {
  const bool key8 = key_width_ == 8;
  const bool use_classify = UseClassify();
  // Instantiates the impl over the key8 runtime split (the functor and
  // StopAtFull are compile-time already).
  auto run = [&](bool fused, const auto& update) {
    return key8 ? UpsertBatchImpl<true, StopAtFull, HashStrideCT>(
                      recs, stride, hash_base, hash_stride, use_classify,
                      from, n, overflow, fused, update)
                : UpsertBatchImpl<false, StopAtFull, HashStrideCT>(
                      recs, stride, hash_base, hash_stride, use_classify,
                      from, n, overflow, fused, update);
  };
  switch (spec_->fused_kernel()) {
    case FusedKernelKind::kCountSumInt64:
      return run(true, CountSumInt64Update{key_width_});
    case FusedKernelKind::kDistinct:
      return run(true, DistinctUpdate{});
    case FusedKernelKind::kGeneric:
      break;
  }
  return run(false, GenericUpdate{spec_});
}

template <bool StopAtFull, int HashStrideCT>
int AggHashTable::DispatchMergeBatch(const uint8_t* recs, int stride,
                                     const uint8_t* hash_base,
                                     int hash_stride, int from, int n,
                                     std::vector<int>* overflow) {
  const bool key8 = key_width_ == 8;
  const bool use_classify = UseClassify();
  auto run = [&](bool fused, const auto& update) {
    return key8 ? UpsertBatchImpl<true, StopAtFull, HashStrideCT>(
                      recs, stride, hash_base, hash_stride, use_classify,
                      from, n, overflow, fused, update)
                : UpsertBatchImpl<false, StopAtFull, HashStrideCT>(
                      recs, stride, hash_base, hash_stride, use_classify,
                      from, n, overflow, fused, update);
  };
  switch (spec_->fused_merge_kernel()) {
    case FusedMergeKind::kAddInt64:
      return run(true, AddInt64Merge{key_width_, state_width_ / 8});
    case FusedMergeKind::kMinMaxInt64:
      return run(true,
                 MinMaxInt64Merge{key_width_, spec_->merge_is_min().data(),
                                  static_cast<int>(spec_->ops().size()),
                                  simd::ResolveMinMaxMerge()});
    case FusedMergeKind::kDistinct:
      return run(true, DistinctUpdate{});
    case FusedMergeKind::kGeneric:
      break;
  }
  return run(false, GenericMerge{spec_, key_width_});
}

int AggHashTable::UpsertProjectedBatch(const TupleBatch& batch, int from) {
  ADAPTAGG_CHECK(!radix_enabled_)
      << "stop-at-full upserts cannot run in radix mode";
  return DispatchUpsertBatch<true, sizeof(uint64_t)>(
      batch.records(), batch.stride(),
      reinterpret_cast<const uint8_t*>(batch.hashes()), sizeof(uint64_t),
      from, batch.size(), nullptr);
}

void AggHashTable::UpsertProjectedBatchOverflow(const TupleBatch& batch,
                                                int from,
                                                std::vector<int>& overflow) {
  if (radix_enabled_) {
    StageBatch(batch, from, /*partial=*/false);
    return;
  }
  DispatchUpsertBatch<false, sizeof(uint64_t)>(
      batch.records(), batch.stride(),
      reinterpret_cast<const uint8_t*>(batch.hashes()), sizeof(uint64_t),
      from, batch.size(), &overflow);
}

int AggHashTable::UpsertPartialBatch(const TupleBatch& batch, int from) {
  ADAPTAGG_CHECK(!radix_enabled_)
      << "stop-at-full upserts cannot run in radix mode";
  return DispatchMergeBatch<true, sizeof(uint64_t)>(
      batch.records(), batch.stride(),
      reinterpret_cast<const uint8_t*>(batch.hashes()), sizeof(uint64_t),
      from, batch.size(), nullptr);
}

void AggHashTable::UpsertPartialBatchOverflow(const TupleBatch& batch,
                                              int from,
                                              std::vector<int>& overflow) {
  if (radix_enabled_) {
    StageBatch(batch, from, /*partial=*/true);
    return;
  }
  DispatchMergeBatch<false, sizeof(uint64_t)>(
      batch.records(), batch.stride(),
      reinterpret_cast<const uint8_t*>(batch.hashes()), sizeof(uint64_t),
      from, batch.size(), &overflow);
}

const uint8_t* AggHashTable::Find(const uint8_t* key, uint64_t hash) const {
  ADAPTAGG_CHECK(!radix_enabled_)
      << "Find cannot see radix-staged records";
  bool found = false;
  int64_t pos = Probe(key, hash, &found);
  if (!found) return nullptr;
  return arena_.data() + pos * slot_width_ + key_width_;
}

void AggHashTable::EnableRadixPartitioning(int partitions) {
  ADAPTAGG_CHECK(size_ == 0 && radix_staged_bytes_ == 0 &&
                 radix_overflow_.empty())
      << "radix partitioning must be enabled on an empty table";
  ADAPTAGG_CHECK(partitions >= 2 &&
                 (partitions & (partitions - 1)) == 0)
      << "radix partition count must be a power of two >= 2";
  const int64_t buckets = static_cast<int64_t>(buckets_.size());
  const int64_t p = std::min<int64_t>(partitions, buckets);
  radix_enabled_ = true;
  radix_partitions_ = static_cast<int>(p);
  int shift = 0;
  while ((int64_t{1} << shift) * p < buckets) ++shift;
  radix_shift_ = shift;
  const int rec_width =
      std::max(spec_->projected_width(), spec_->partial_width());
  radix_entry_width_ = kRadixEntryHeader + ((rec_width + 7) / 8) * 8;
  radix_stride_proj_ =
      kRadixStageHeader + ((spec_->projected_width() + 7) / 8) * 8;
  radix_stride_part_ =
      kRadixStageHeader + ((spec_->partial_width() + 7) / 8) * 8;
  radix_stage_cap_ = static_cast<size_t>(kRadixStageSoftCapBytes);
  ADAPTAGG_CHECK(std::max(radix_stride_proj_, radix_stride_part_) <=
                 static_cast<int64_t>(radix_stage_cap_))
      << "staged entry wider than the staging soft cap";
  radix_stage_.clear();
  radix_stage_.resize(static_cast<size_t>(p));
  radix_stage_used_.assign(static_cast<size_t>(p), 0);
  slot_seq_.resize(static_cast<size_t>(capacity_slots_));
  radix_seq_ = 0;
}

void AggHashTable::StageBatch(const TupleBatch& batch, int from,
                              bool partial) {
  const int n = batch.size();
  const uint8_t* recs = batch.records();
  const int stride = batch.stride();
  const uint64_t* hashes = batch.hashes();
  const size_t entry = static_cast<size_t>(partial ? radix_stride_part_
                                                   : radix_stride_proj_);
  const size_t rec_width = static_cast<size_t>(
      partial ? spec_->partial_width() : spec_->projected_width());
  const uint64_t tag_bit = partial ? uint64_t{1} << 63 : 0;
  // The record copy is the hot store of the whole staging pass; fold the
  // dominant layouts to constant-size copies.
  const auto stage_all = [&](const auto& copy_rec) {
    for (int i = from; i < n; ++i) {
      const uint64_t hash = hashes[i];
      const int pid =
          static_cast<int>((hash & bucket_mask_) >> radix_shift_);
      std::unique_ptr<uint8_t[]>& buf =
          radix_stage_[static_cast<size_t>(pid)];
      if (buf == nullptr) buf.reset(new uint8_t[radix_stage_cap_]);
      size_t& used = radix_stage_used_[static_cast<size_t>(pid)];
      if (used + entry > radix_stage_cap_) DrainPartition(pid);
      uint8_t* e = buf.get() + used;
      used += entry;
      const uint64_t seq_tag = radix_seq_++ | tag_bit;
      std::memcpy(e, &seq_tag, 8);
      copy_rec(e + kRadixStageHeader,
               recs + static_cast<int64_t>(i) * stride);
      radix_staged_bytes_ += static_cast<int64_t>(entry);
    }
  };
  if (rec_width == 16) {
    stage_all(
        [](uint8_t* dst, const uint8_t* rec) { std::memcpy(dst, rec, 16); });
  } else if (rec_width == 24) {
    stage_all(
        [](uint8_t* dst, const uint8_t* rec) { std::memcpy(dst, rec, 24); });
  } else {
    stage_all([rec_width](uint8_t* dst, const uint8_t* rec) {
      std::memcpy(dst, rec, rec_width);
    });
  }
}

void AggHashTable::DrainPartition(int pid) {
  uint8_t* buf = radix_stage_[static_cast<size_t>(pid)].get();
  const size_t used = radix_stage_used_[static_cast<size_t>(pid)];
  if (used == 0) return;
  // Same-tag runs drain as batches, in chunks small enough that the
  // recomputed-hash scratch stays cache-resident next to the partition's
  // bucket region.
  constexpr int kChunk = 2048;
  drain_hash_scratch_.resize(kChunk);
  size_t off = 0;
  while (off < used) {
    uint64_t first_tag;
    std::memcpy(&first_tag, buf + off, 8);
    const bool partial = (first_tag >> 63) != 0;
    const size_t stride = static_cast<size_t>(
        partial ? radix_stride_part_ : radix_stride_proj_);
    const size_t rec_width = static_cast<size_t>(
        partial ? spec_->partial_width() : spec_->projected_width());
    size_t end = off + stride;
    while (end < used) {
      uint64_t tag;
      std::memcpy(&tag, buf + end, 8);
      if (((tag >> 63) != 0) != partial) break;
      end += stride;
    }
    const int64_t run = static_cast<int64_t>((end - off) / stride);
    for (int64_t c = 0; c < run; c += kChunk) {
      const int cn = static_cast<int>(std::min<int64_t>(kChunk, run - c));
      const uint8_t* base = buf + off + static_cast<size_t>(c) * stride;
      const uint8_t* chunk_recs = base + kRadixStageHeader;
      // Recompute the key hashes (vectorized, bit-identical to the
      // staged batch's ComputeHashes) instead of having stored them:
      // 8 fewer bytes per record through the staging round trip.
      spec_->HashKeys(chunk_recs, static_cast<int>(stride), cn,
                      drain_hash_scratch_.data());
      const uint8_t* hash_base =
          reinterpret_cast<const uint8_t*>(drain_hash_scratch_.data());
      const int64_t s0 = size_;
      radix_ovf_scratch_.clear();
      if (partial) {
        DispatchMergeBatch<false, sizeof(uint64_t)>(
            chunk_recs, static_cast<int>(stride), hash_base,
            sizeof(uint64_t), 0, cn, &radix_ovf_scratch_);
      } else {
        DispatchUpsertBatch<false, sizeof(uint64_t)>(
            chunk_recs, static_cast<int>(stride), hash_base,
            sizeof(uint64_t), 0, cn, &radix_ovf_scratch_);
      }
      // Recover the arrival sequence of every slot this chunk created.
      // Slots [s0, size_) were appended in order of each new key's first
      // occurrence within the chunk, so one forward cursor walk matches
      // each new slot to exactly the entry that created it: an entry
      // whose key equals the cursor slot's key must be that key's first
      // occurrence (any earlier occurrence would have advanced the
      // cursor already).
      int64_t next_new = s0;
      for (int k = 0; k < cn && next_new < size_; ++k) {
        const uint8_t* e = base + static_cast<size_t>(k) * stride;
        if (std::memcmp(arena_.data() + next_new * slot_width_,
                        e + kRadixStageHeader,
                        static_cast<size_t>(key_width_)) == 0) {
          uint64_t seq_tag;
          std::memcpy(&seq_tag, e, 8);
          slot_seq_[static_cast<size_t>(next_new)] =
              seq_tag & ~(uint64_t{1} << 63);
          ++next_new;
        }
      }
      // Refused entries spill in the wider overflow format, which keeps
      // the hash (DrainRadixOverflow hands it to the callback).
      for (int k : radix_ovf_scratch_) {
        const uint8_t* e = base + static_cast<size_t>(k) * stride;
        const size_t pos = radix_overflow_.size();
        radix_overflow_.resize(pos +
                               static_cast<size_t>(radix_entry_width_));
        std::memcpy(radix_overflow_.data() + pos, &drain_hash_scratch_[k],
                    8);
        std::memcpy(radix_overflow_.data() + pos + 8, e, 8);
        std::memcpy(radix_overflow_.data() + pos + kRadixEntryHeader,
                    e + kRadixStageHeader, rec_width);
      }
    }
    off = end;
  }
  radix_staged_bytes_ -= static_cast<int64_t>(used);
  radix_stage_used_[static_cast<size_t>(pid)] = 0;
}

void AggHashTable::FlushRadixStaging() {
  ADAPTAGG_CHECK(radix_enabled_)
      << "FlushRadixStaging without radix partitioning";
  for (int pid = 0; pid < radix_partitions_; ++pid) {
    DrainPartition(pid);
  }
}

std::vector<int64_t> AggHashTable::RadixEmitOrder() const {
  ADAPTAGG_CHECK(radix_staged_bytes_ == 0)
      << "ForEach on a radix table with staged records; call "
         "FlushRadixStaging first";
  std::vector<int64_t> order(static_cast<size_t>(size_));
  std::iota(order.begin(), order.end(), int64_t{0});
  std::sort(order.begin(), order.end(), [this](int64_t a, int64_t b) {
    return slot_seq_[static_cast<size_t>(a)] <
           slot_seq_[static_cast<size_t>(b)];
  });
  return order;
}

void AggHashTable::Clear() {
  std::fill(buckets_.begin(), buckets_.end(), -1);
  size_ = 0;
  if (radix_enabled_) {
    std::fill(radix_stage_used_.begin(), radix_stage_used_.end(),
              size_t{0});
    radix_staged_bytes_ = 0;
    radix_overflow_.clear();
    radix_seq_ = 0;
  }
}

SharedAggHashTable::SharedAggHashTable(const AggregationSpec* spec,
                                       int64_t capacity)
    : spec_(spec),
      key_width_(spec->key_width()),
      state_width_(spec->state_width()),
      state_words_(spec->state_width() / 8),
      lock_free_(
          spec->fused_merge_kernel() == FusedMergeKind::kAddInt64 ||
          spec->fused_merge_kernel() == FusedMergeKind::kDistinct),
      capacity_(NextPow2(std::max<int64_t>(capacity, 64))),
      mask_(static_cast<uint64_t>(capacity_ - 1)),
      limit_(capacity_ * 7 / 10),
      init_state_(static_cast<size_t>(state_width_)),
      buckets_(static_cast<size_t>(capacity_)),
      keys_(static_cast<size_t>(capacity_) *
            static_cast<size_t>(key_width_)) {
  spec_->InitState(init_state_.data());
  if (lock_free_) {
    states_ll_ = std::vector<std::atomic<int64_t>>(
        static_cast<size_t>(capacity_) *
        static_cast<size_t>(state_words_));
  } else {
    states_.resize(static_cast<size_t>(capacity_) *
                   static_cast<size_t>(state_width_));
  }
}

int64_t SharedAggHashTable::locked_merges() {
  int64_t total = 0;
  for (Stripe& s : stripes_) {
    MutexLock lock(&s.mu);
    total += s.locked_merges;
  }
  return total;
}

void SharedAggHashTable::MergeInto(int64_t idx, const uint8_t* in_state) {
  if (lock_free_) {
    for (int w = 0; w < state_words_; ++w) {
      int64_t v;
      std::memcpy(&v, in_state + w * 8, 8);
      states_ll_[static_cast<size_t>(idx * state_words_ + w)].fetch_add(
          v, std::memory_order_relaxed);
    }
    return;
  }
  Stripe& s = stripes_[idx % kStripes];
  MutexLock lock(&s.mu);
  ++s.locked_merges;
  spec_->MergeState(&states_[static_cast<size_t>(
                        idx * static_cast<int64_t>(state_width_))],
                    in_state);
}

bool SharedAggHashTable::UpsertPartialConcurrent(const uint8_t* partial,
                                                 uint64_t hash) {
  const uint8_t* key = spec_->KeyOfPartial(partial);
  const uint8_t* in_state = spec_->StateOfPartial(partial);
  uint64_t pos = hash & mask_;
  while (true) {
    uint64_t tag = buckets_[pos].load(std::memory_order_acquire);
    if (tag == kEmpty) {
      // A full table refuses the insert *before* claiming, so a refused
      // record costs no slot and no spinning elsewhere. The check races
      // concurrent claims, but the 30% headroom above the limit absorbs
      // any overshoot (bounded by the thread count).
      if (size_.load(std::memory_order_relaxed) >= limit_) return false;
      if (buckets_[pos].compare_exchange_strong(
              tag, kClaimed, std::memory_order_acq_rel,
              std::memory_order_acquire)) {
        const int64_t idx = size_.fetch_add(1, std::memory_order_acq_rel);
        ADAPTAGG_CHECK(idx < capacity_)
            << "shared merge table claim overshot its arena";
        std::memcpy(&keys_[static_cast<size_t>(
                        idx * static_cast<int64_t>(key_width_))],
                    key, static_cast<size_t>(key_width_));
        if (lock_free_) {
          for (int w = 0; w < state_words_; ++w) {
            int64_t v;
            std::memcpy(&v, init_state_.data() + w * 8, 8);
            states_ll_[static_cast<size_t>(idx * state_words_ + w)].store(
                v, std::memory_order_relaxed);
          }
        } else if (state_width_ > 0) {
          std::memcpy(&states_[static_cast<size_t>(
                          idx * static_cast<int64_t>(state_width_))],
                      init_state_.data(),
                      static_cast<size_t>(state_width_));
        }
        // Publish: the release store orders the key/init writes above
        // before any acquire-loading prober can reach them.
        buckets_[pos].store(static_cast<uint64_t>(idx) + kPublishedBase,
                            std::memory_order_release);
        MergeInto(idx, in_state);
        return true;
      }
      continue;  // lost the claim race; re-examine the same bucket
    }
    if (tag == kClaimed) {
      continue;  // publisher is mid-flight; its release store is near
    }
    const int64_t idx = static_cast<int64_t>(tag - kPublishedBase);
    if (std::memcmp(&keys_[static_cast<size_t>(
                        idx * static_cast<int64_t>(key_width_))],
                    key, static_cast<size_t>(key_width_)) == 0) {
      MergeInto(idx, in_state);
      return true;
    }
    pos = (pos + 1) & mask_;
  }
}

SharedAggHashTable* SharedMergeArena::GetOrInit(const AggregationSpec* spec,
                                                int64_t capacity) {
  MutexLock lock(&mu_);
  if (table_ == nullptr) {
    table_ = std::make_unique<SharedAggHashTable>(spec, capacity);
  } else {
    ADAPTAGG_CHECK(table_->capacity() ==
                   NextPow2(std::max<int64_t>(capacity, 64)))
        << "nodes disagree on the shared merge table capacity";
  }
  return table_.get();
}

void SharedMergeArena::Reset() {
  MutexLock lock(&mu_);
  table_.reset();
}

}  // namespace adaptagg
