#include "agg/agg_spec.h"

#include <algorithm>
#include <cstring>

#include "common/random.h"

namespace adaptagg {

Result<AggregationSpec> AggregationSpec::Make(
    const Schema* input_schema, std::vector<int> group_cols,
    std::vector<AggDescriptor> aggs) {
  if (group_cols.empty() && aggs.empty()) {
    return Status::InvalidArgument(
        "aggregation needs group columns or aggregates");
  }
  for (int c : group_cols) {
    if (c < 0 || c >= input_schema->num_fields()) {
      return Status::InvalidArgument("group column out of range");
    }
  }
  for (const auto& a : aggs) {
    if (a.kind == AggKind::kCount) continue;
    if (a.input_col < 0 || a.input_col >= input_schema->num_fields()) {
      return Status::InvalidArgument("aggregate input column out of range");
    }
    DataType t = input_schema->field(a.input_col).type;
    if (t != DataType::kInt64 && t != DataType::kDouble) {
      return Status::InvalidArgument("aggregate input must be numeric: " +
                                     a.name);
    }
  }

  AggregationSpec spec;
  spec.input_ = input_schema;
  spec.group_cols_ = std::move(group_cols);
  spec.aggs_ = std::move(aggs);

  // Key layout.
  for (int c : spec.group_cols_) {
    const Field& f = input_schema->field(c);
    spec.key_parts_.emplace_back(input_schema->offset(c), f.width);
    spec.key_width_ += f.width;
  }

  // Distinct aggregate input columns, assigned 8-byte slots after the key.
  for (const auto& a : spec.aggs_) {
    DataType in_type =
        a.kind == AggKind::kCount
            ? DataType::kInt64
            : input_schema->field(a.input_col).type;
    spec.ops_.emplace_back(a.kind, in_type);
    if (a.kind == AggKind::kCount) {
      spec.op_value_offsets_.push_back(-1);
      continue;
    }
    auto it = std::find(spec.value_cols_.begin(), spec.value_cols_.end(),
                        a.input_col);
    int slot;
    if (it == spec.value_cols_.end()) {
      slot = static_cast<int>(spec.value_cols_.size());
      spec.value_cols_.push_back(a.input_col);
      spec.value_src_offsets_.push_back(input_schema->offset(a.input_col));
    } else {
      slot = static_cast<int>(it - spec.value_cols_.begin());
    }
    spec.op_value_offsets_.push_back(spec.key_width_ + slot * 8);
  }
  spec.projected_width_ =
      spec.key_width_ + static_cast<int>(spec.value_cols_.size()) * 8;

  // State layout.
  for (const auto& op : spec.ops_) {
    spec.op_state_offsets_.push_back(spec.state_width_);
    spec.state_width_ += op.state_width();
  }

  // Final schema: group columns (by input name) then aggregate outputs.
  std::vector<Field> out_fields;
  for (int c : spec.group_cols_) {
    out_fields.push_back(input_schema->field(c));
  }
  for (size_t i = 0; i < spec.aggs_.size(); ++i) {
    Field f;
    f.name = spec.aggs_[i].name;
    f.type = spec.ops_[i].output_type();
    f.width = 8;
    out_fields.push_back(f);
  }
  spec.final_schema_ = Schema(std::move(out_fields));
  return spec;
}

void AggregationSpec::ProjectRaw(const TupleView& tuple, uint8_t* out) const {
  const uint8_t* src = tuple.data();
  uint8_t* dst = out;
  for (const auto& [off, width] : key_parts_) {
    std::memcpy(dst, src + off, static_cast<size_t>(width));
    dst += width;
  }
  for (size_t i = 0; i < value_cols_.size(); ++i) {
    std::memcpy(dst, src + value_src_offsets_[i], 8);
    dst += 8;
  }
}

void AggregationSpec::InitState(uint8_t* state) const {
  for (size_t i = 0; i < ops_.size(); ++i) {
    ops_[i].InitState(state + op_state_offsets_[i]);
  }
}

void AggregationSpec::UpdateFromProjected(uint8_t* state,
                                          const uint8_t* proj) const {
  for (size_t i = 0; i < ops_.size(); ++i) {
    const uint8_t* value =
        op_value_offsets_[i] < 0 ? nullptr : proj + op_value_offsets_[i];
    ops_[i].UpdateRaw(state + op_state_offsets_[i], value);
  }
}

void AggregationSpec::MergeState(uint8_t* state,
                                 const uint8_t* other_state) const {
  for (size_t i = 0; i < ops_.size(); ++i) {
    ops_[i].MergePartial(state + op_state_offsets_[i],
                         other_state + op_state_offsets_[i]);
  }
}

void AggregationSpec::FinalizeRecord(const uint8_t* key, const uint8_t* state,
                                     uint8_t* out) const {
  std::memcpy(out, key, static_cast<size_t>(key_width_));
  uint8_t* dst = out + key_width_;
  for (size_t i = 0; i < ops_.size(); ++i) {
    ops_[i].FinalizeTo(state + op_state_offsets_[i], dst);
    dst += 8;
  }
}

uint64_t AggregationSpec::HashKey(const uint8_t* key) const {
  return HashBytes(key, static_cast<size_t>(key_width_), /*seed=*/0x5ca1ab1e);
}

Result<AggregationSpec> MakeCountSumSpec(const Schema* input_schema,
                                         int group_col, int value_col) {
  std::vector<AggDescriptor> aggs;
  aggs.push_back({AggKind::kCount, -1, "cnt"});
  aggs.push_back({AggKind::kSum, value_col, "sum_v"});
  return AggregationSpec::Make(input_schema, {group_col}, std::move(aggs));
}

Result<AggregationSpec> MakeDistinctSpec(const Schema* input_schema,
                                         std::vector<int> cols) {
  return AggregationSpec::Make(input_schema, std::move(cols), {});
}

}  // namespace adaptagg
