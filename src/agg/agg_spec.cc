#include "agg/agg_spec.h"

#include <algorithm>
#include <cstring>

#include "common/random.h"
#include "common/simd.h"

namespace adaptagg {
namespace {

/// Seed for group-key hashing; all key hashes in the system (table
/// probing, node routing, spill bucketing) derive from this one value.
constexpr uint64_t kKeyHashSeed = 0x5ca1ab1e;

// FNV-1a constants (must match HashBytes in common/random.cc; the batch
// fast path below re-implements its word loop without the tail).
constexpr uint64_t kFnvBasis = 1469598103934665603ULL;
constexpr uint64_t kFnvPrime = 1099511628211ULL;

/// Appends a copy to the plan, merging with the previous run when both
/// source and destination are contiguous.
void AddCopyRun(std::vector<ProjCopyRun>& plan, int src, int dst,
                int width) {
  if (!plan.empty()) {
    ProjCopyRun& last = plan.back();
    if (last.src_offset + last.width == src &&
        last.dst_offset + last.width == dst) {
      last.width += width;
      return;
    }
  }
  plan.push_back({src, dst, width});
}

FusedKernelKind DetectFusedKernel(const AggregationSpec& spec) {
  if (spec.ops().empty()) return FusedKernelKind::kDistinct;
  if (spec.aggs().size() == 2 &&
      spec.aggs()[0].kind == AggKind::kCount &&
      spec.aggs()[1].kind == AggKind::kSum &&
      spec.ops()[1].input_type() == DataType::kInt64) {
    // State layout is [count:int64][sum:int64] and the single value slot
    // sits right after the key — the canonical bench query's shape.
    return FusedKernelKind::kCountSumInt64;
  }
  return FusedKernelKind::kGeneric;
}

FusedMergeKind DetectFusedMerge(const AggregationSpec& spec) {
  if (spec.ops().empty()) return FusedMergeKind::kDistinct;
  bool all_add = true;
  bool all_minmax = true;
  for (const AggregateOp& op : spec.ops()) {
    // COUNT, SUM(int64), and AVG(int64) states are int64 words whose
    // MergePartial is word-wise addition (AVG adds sum and count).
    const bool add = op.kind() == AggKind::kCount ||
                     ((op.kind() == AggKind::kSum ||
                       op.kind() == AggKind::kAvg) &&
                      op.input_type() == DataType::kInt64);
    const bool minmax =
        (op.kind() == AggKind::kMin || op.kind() == AggKind::kMax) &&
        op.input_type() == DataType::kInt64;
    all_add = all_add && add;
    all_minmax = all_minmax && minmax;
  }
  if (all_add) return FusedMergeKind::kAddInt64;
  if (all_minmax) return FusedMergeKind::kMinMaxInt64;
  return FusedMergeKind::kGeneric;
}

}  // namespace

Result<AggregationSpec> AggregationSpec::Make(
    const Schema* input_schema, std::vector<int> group_cols,
    std::vector<AggDescriptor> aggs) {
  if (group_cols.empty() && aggs.empty()) {
    return Status::InvalidArgument(
        "aggregation needs group columns or aggregates");
  }
  for (int c : group_cols) {
    if (c < 0 || c >= input_schema->num_fields()) {
      return Status::InvalidArgument("group column out of range");
    }
  }
  for (const auto& a : aggs) {
    if (a.kind == AggKind::kCount) continue;
    if (a.input_col < 0 || a.input_col >= input_schema->num_fields()) {
      return Status::InvalidArgument("aggregate input column out of range");
    }
    DataType t = input_schema->field(a.input_col).type;
    if (t != DataType::kInt64 && t != DataType::kDouble) {
      return Status::InvalidArgument("aggregate input must be numeric: " +
                                     a.name);
    }
  }

  AggregationSpec spec;
  spec.input_ = input_schema;
  spec.group_cols_ = std::move(group_cols);
  spec.aggs_ = std::move(aggs);

  // Key layout.
  for (int c : spec.group_cols_) {
    const Field& f = input_schema->field(c);
    spec.key_parts_.emplace_back(input_schema->offset(c), f.width);
    spec.key_width_ += f.width;
  }

  // Distinct aggregate input columns, assigned 8-byte slots after the key.
  for (const auto& a : spec.aggs_) {
    DataType in_type =
        a.kind == AggKind::kCount
            ? DataType::kInt64
            : input_schema->field(a.input_col).type;
    spec.ops_.emplace_back(a.kind, in_type);
    if (a.kind == AggKind::kCount) {
      spec.op_value_offsets_.push_back(-1);
      continue;
    }
    auto it = std::find(spec.value_cols_.begin(), spec.value_cols_.end(),
                        a.input_col);
    int slot;
    if (it == spec.value_cols_.end()) {
      slot = static_cast<int>(spec.value_cols_.size());
      spec.value_cols_.push_back(a.input_col);
      spec.value_src_offsets_.push_back(input_schema->offset(a.input_col));
    } else {
      slot = static_cast<int>(it - spec.value_cols_.begin());
    }
    spec.op_value_offsets_.push_back(spec.key_width_ + slot * 8);
  }
  spec.projected_width_ =
      spec.key_width_ + static_cast<int>(spec.value_cols_.size()) * 8;

  // State layout.
  for (const auto& op : spec.ops_) {
    spec.op_state_offsets_.push_back(spec.state_width_);
    spec.state_width_ += op.state_width();
  }

  // Final schema: group columns (by input name) then aggregate outputs.
  std::vector<Field> out_fields;
  for (int c : spec.group_cols_) {
    out_fields.push_back(input_schema->field(c));
  }
  for (size_t i = 0; i < spec.aggs_.size(); ++i) {
    Field f;
    f.name = spec.aggs_[i].name;
    f.type = spec.ops_[i].output_type();
    f.width = 8;
    out_fields.push_back(f);
  }
  spec.final_schema_ = Schema(std::move(out_fields));

  // Compile the projection into coalesced copies and pick the update
  // kernel the batch paths will dispatch to.
  int dst = 0;
  for (const auto& [off, width] : spec.key_parts_) {
    AddCopyRun(spec.projection_plan_, off, dst, width);
    dst += width;
  }
  for (size_t i = 0; i < spec.value_cols_.size(); ++i) {
    AddCopyRun(spec.projection_plan_, spec.value_src_offsets_[i], dst, 8);
    dst += 8;
  }
  spec.fused_kernel_ = DetectFusedKernel(spec);
  spec.fused_merge_kernel_ = DetectFusedMerge(spec);
  if (spec.fused_merge_kernel_ == FusedMergeKind::kMinMaxInt64) {
    for (const AggregateOp& op : spec.ops_) {
      spec.merge_is_min_.push_back(op.kind() == AggKind::kMin ? 1 : 0);
    }
  }
  return spec;
}

void AggregationSpec::ProjectRaw(const TupleView& tuple, uint8_t* out) const {
  const uint8_t* src = tuple.data();
  for (const ProjCopyRun& run : projection_plan_) {
    std::memcpy(out + run.dst_offset, src + run.src_offset,
                static_cast<size_t>(run.width));
  }
}

void AggregationSpec::InitState(uint8_t* state) const {
  for (size_t i = 0; i < ops_.size(); ++i) {
    ops_[i].InitState(state + op_state_offsets_[i]);
  }
}

void AggregationSpec::UpdateFromProjected(uint8_t* state,
                                          const uint8_t* proj) const {
  for (size_t i = 0; i < ops_.size(); ++i) {
    const uint8_t* value =
        op_value_offsets_[i] < 0 ? nullptr : proj + op_value_offsets_[i];
    ops_[i].UpdateRaw(state + op_state_offsets_[i], value);
  }
}

void AggregationSpec::MergeState(uint8_t* state,
                                 const uint8_t* other_state) const {
  for (size_t i = 0; i < ops_.size(); ++i) {
    ops_[i].MergePartial(state + op_state_offsets_[i],
                         other_state + op_state_offsets_[i]);
  }
}

void AggregationSpec::FinalizeRecord(const uint8_t* key, const uint8_t* state,
                                     uint8_t* out) const {
  std::memcpy(out, key, static_cast<size_t>(key_width_));
  uint8_t* dst = out + key_width_;
  for (size_t i = 0; i < ops_.size(); ++i) {
    ops_[i].FinalizeTo(state + op_state_offsets_[i], dst);
    dst += 8;
  }
}

uint64_t AggregationSpec::HashKey(const uint8_t* key) const {
  return HashBytes(key, static_cast<size_t>(key_width_), kKeyHashSeed);
}

void AggregationSpec::HashKeys(const uint8_t* recs, int stride, int n,
                               uint64_t* out) const {
  if (key_width_ % 8 == 0) {
    // Word-at-a-time fast path: same FNV-1a word loop as HashBytes but
    // with no byte tail. Dispatched through the SIMD layer (8 lanes on
    // AVX2), bit-identical to the scalar loop by contract.
    simd::HashKeysFnvWords(recs, stride, key_width_ / 8, n,
                           kFnvBasis ^ kKeyHashSeed, kFnvPrime, out);
    return;
  }
  for (int i = 0; i < n; ++i) {
    out[i] = HashBytes(recs + static_cast<int64_t>(i) * stride,
                       static_cast<size_t>(key_width_), kKeyHashSeed);
  }
}

Result<AggregationSpec> MakeCountSumSpec(const Schema* input_schema,
                                         int group_col, int value_col) {
  std::vector<AggDescriptor> aggs;
  aggs.push_back({AggKind::kCount, -1, "cnt"});
  aggs.push_back({AggKind::kSum, value_col, "sum_v"});
  return AggregationSpec::Make(input_schema, {group_col}, std::move(aggs));
}

Result<AggregationSpec> MakeDistinctSpec(const Schema* input_schema,
                                         std::vector<int> cols) {
  return AggregationSpec::Make(input_schema, std::move(cols), {});
}

}  // namespace adaptagg
