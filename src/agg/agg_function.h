#ifndef ADAPTAGG_AGG_AGG_FUNCTION_H_
#define ADAPTAGG_AGG_AGG_FUNCTION_H_

#include <cstdint>
#include <string>

#include "schema/value.h"

namespace adaptagg {

/// SQL aggregate function kinds supported by the library. All are
/// *decomposable*: a partial state computed over a subset of a group's
/// tuples can be merged with another partial state, which is what makes
/// two-phase (local + global) aggregation possible (§2 of the paper;
/// e.g. AVG carries (sum, count) in its partial state).
enum class AggKind : uint8_t { kCount = 0, kSum, kAvg, kMin, kMax };

std::string AggKindToString(AggKind kind);

/// One aggregate column of a query: `kind(input_col) AS name`.
/// `input_col` indexes the *input relation schema*; it is ignored (-1) for
/// COUNT(*).
struct AggDescriptor {
  AggKind kind = AggKind::kCount;
  int input_col = -1;
  std::string name = "agg";
};

/// A fixed-width aggregate state machine for one (kind, input type) pair.
/// States live inline in hash-table slots and in partial-aggregate
/// records; all operations work on raw state bytes.
///
/// State layouts (little-endian, 8-byte fields):
///   COUNT        : [int64 count]
///   SUM(int64)   : [int64 sum]
///   SUM(double)  : [double sum]
///   AVG(T)       : [T sum][int64 count]
///   MIN/MAX(T)   : [T extremum][int64 seen]   (seen distinguishes empty)
class AggregateOp {
 public:
  /// `input_type` must be kInt64 or kDouble (or anything for kCount).
  AggregateOp(AggKind kind, DataType input_type);

  AggKind kind() const { return kind_; }
  DataType input_type() const { return input_type_; }

  /// Width in bytes of the partial state.
  int state_width() const { return state_width_; }

  /// Type of the finalized output value.
  DataType output_type() const;

  /// Initializes `state` to the identity (zero tuples seen).
  void InitState(uint8_t* state) const;

  /// Folds one raw input value into `state`. `value_bytes` points at the
  /// 8-byte input column value (unused for COUNT).
  void UpdateRaw(uint8_t* state, const uint8_t* value_bytes) const;

  /// Merges another partial state of the same op into `state`.
  void MergePartial(uint8_t* state, const uint8_t* other) const;

  /// Produces the final value from a state.
  Value Finalize(const uint8_t* state) const;

  /// Writes the finalized value as its 8-byte wire representation.
  void FinalizeTo(const uint8_t* state, uint8_t* out) const;

 private:
  AggKind kind_;
  DataType input_type_;
  int state_width_;
};

}  // namespace adaptagg

#endif  // ADAPTAGG_AGG_AGG_FUNCTION_H_
