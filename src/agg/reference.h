#ifndef ADAPTAGG_AGG_REFERENCE_H_
#define ADAPTAGG_AGG_REFERENCE_H_

#include <vector>

#include "agg/agg_spec.h"
#include "common/result.h"
#include "storage/partitioned_relation.h"

namespace adaptagg {

/// A materialized set of final aggregation rows. Rows use
/// `spec.final_schema()`.
struct ResultSet {
  Schema schema;
  std::vector<std::vector<uint8_t>> rows;

  int64_t num_rows() const { return static_cast<int64_t>(rows.size()); }
  TupleView row(int64_t i) const {
    return TupleView(rows[static_cast<size_t>(i)].data(), &schema);
  }

  /// Sorts rows bytewise so result sets can be compared.
  void Sort();
};

/// True when `a` and `b` contain the same rows (after sorting), comparing
/// double columns with relative tolerance `eps` (parallel execution sums
/// doubles in nondeterministic order).
bool ResultSetsEqual(const ResultSet& a, const ResultSet& b,
                     double eps = 1e-9);

/// Single-threaded oracle: aggregates every partition of `rel` through a
/// deliberately independent implementation (std::unordered_map keyed on
/// key bytes) and returns the finalized, sorted result. Used as the
/// correctness reference for all parallel algorithms in tests.
Result<ResultSet> ReferenceAggregate(const AggregationSpec& spec,
                                     PartitionedRelation& rel);

}  // namespace adaptagg

#endif  // ADAPTAGG_AGG_REFERENCE_H_
