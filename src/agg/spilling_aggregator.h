#ifndef ADAPTAGG_AGG_SPILLING_AGGREGATOR_H_
#define ADAPTAGG_AGG_SPILLING_AGGREGATOR_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "agg/hash_table.h"
#include "storage/spill_file.h"

namespace adaptagg {

/// Counters describing the overflow behavior of one aggregation.
struct SpillStats {
  int64_t overflow_records = 0;  ///< records routed to spill buckets
  int64_t spill_pages_written = 0;
  int64_t spill_pages_read = 0;
  int buckets_created = 0;
  int max_depth = 0;  ///< deepest recursive repartitioning level reached

  void Accumulate(const SpillStats& other);
};

/// The paper's uniprocessor hash aggregation (§2, steps 1-3): build an
/// in-memory hash table; when it fills, hash-partition the overflow into
/// buckets spooled to disk; process each bucket recursively with a fresh
/// table. Inputs can be a mix of projected raw records and partial
/// aggregate records (the Adaptive Two Phase global phase receives both),
/// and the spill format preserves that distinction.
///
/// Usage: Add* any number of records, then Finish(emit) exactly once.
/// `emit` receives every group exactly once as (key, state).
class SpillingAggregator {
 public:
  /// `spec` and `disk` must outlive the aggregator. `max_entries` is the
  /// hash table bound M; `fanout` the number of overflow buckets per level
  /// (>= 2).
  SpillingAggregator(const AggregationSpec* spec, Disk* disk,
                     int64_t max_entries, int fanout = 8,
                     std::string name = "spill");

  using EmitFn =
      std::function<void(const uint8_t* key, const uint8_t* state)>;

  Status AddProjected(const uint8_t* proj);
  Status AddPartial(const uint8_t* partial);

  /// Batch form of AddProjected: one fused, prefetched table pass for
  /// the whole batch, then record-at-a-time spilling of the (rare)
  /// overflow misses. Behaviorally identical to calling AddProjected on
  /// every record in order.
  Status AddProjectedBatch(const TupleBatch& batch);

  /// Batch form of AddPartial: the batch views partial records (e.g. a
  /// received kPartialPage run) and the table pass merges states through
  /// the spec's fused merge kernel. Behaviorally identical to calling
  /// AddPartial on every record in order.
  Status AddPartialBatch(const TupleBatch& batch);

  /// Switches the resident table to cache-sized radix pre-partitioning
  /// with `partitions` partition regions (see
  /// AggHashTable::EnableRadixPartitioning). Must run before any
  /// records; batch adds then stage + drain L2-resident, Finish flushes,
  /// and table overflow reaches the spill buckets through the staged
  /// path — results stay byte-identical. Recursive children never
  /// inherit the mode (their inputs are already one bucket's worth).
  void EnableRadixPartitioning(int partitions);

  /// Emits all groups (table first, then recursive buckets) and releases
  /// the spill files.
  Status Finish(const EmitFn& emit);

  /// Serializes the resident table as flat partial records ([key][state],
  /// spec->partial_width() bytes each, in the table's deterministic emit
  /// order) into `out` for checkpointing. Returns false — leaving `out`
  /// empty — when the state is not snapshottable: records already spilled
  /// to disk, radix pre-partitioning staged records outside the table, or
  /// Finish() already ran. Callers then simply skip this checkpoint.
  bool Snapshot(std::vector<uint8_t>* out) const;

  /// Rebuilds the resident table from a Snapshot() byte stream by
  /// re-upserting every partial record in its original order, so the
  /// restored table's emit order — and thus all downstream pagination —
  /// matches the table that was snapshotted. Requires an empty, non-radix
  /// aggregator.
  Status RestoreFrom(const uint8_t* data, size_t size);

  /// The resident table; adaptive algorithms watch its occupancy.
  AggHashTable& table() { return table_; }
  const AggHashTable& table() const { return table_; }

  /// True once at least one record has overflowed to disk.
  bool has_spilled() const { return !buckets_.empty(); }

  const SpillStats& stats() const { return stats_; }

  /// Hash-table counters summed over this aggregator's resident table and
  /// every recursive child table (children are folded in as their Finish
  /// completes).
  HashTableStats ht_stats() const {
    HashTableStats s = table_.stats();
    s.Accumulate(child_ht_stats_);
    return s;
  }

 private:
  SpillingAggregator(const AggregationSpec* spec, Disk* disk,
                     int64_t max_entries, int fanout, std::string name,
                     int depth);

  Status Add(SpillTag tag, const uint8_t* record, uint64_t hash);
  Status EnsureBuckets();
  int BucketOf(uint64_t hash) const;

  /// Routes records the radix table refused (drained from its pending
  /// buffer) to the spill buckets, exactly like the non-radix overflow
  /// loop.
  Status DrainTableOverflow();

  const AggregationSpec* spec_;
  Disk* disk_;
  int64_t max_entries_;
  int fanout_;
  std::string name_;
  int depth_;

  AggHashTable table_;
  std::vector<std::unique_ptr<SpillWriter>> buckets_;
  std::vector<int> overflow_scratch_;
  SpillStats stats_;
  HashTableStats child_ht_stats_;
  bool finished_ = false;
};

}  // namespace adaptagg

#endif  // ADAPTAGG_AGG_SPILLING_AGGREGATOR_H_
