#ifndef ADAPTAGG_AGG_HASH_TABLE_H_
#define ADAPTAGG_AGG_HASH_TABLE_H_

#include <cstdint>
#include <vector>

#include "agg/agg_spec.h"
#include "agg/batch_kernels.h"

namespace adaptagg {

/// Plain (non-atomic) operation counters of one AggHashTable. The table
/// is single-threaded by contract, so these are bare int64 fields; the
/// batch entry points update them once per batch, never per tuple, to
/// keep the hot loops untouched. Cumulative across Clear() so a spilling
/// aggregator's recursive passes add up.
struct HashTableStats {
  /// Probe sequences started (one per upsert; pure Find() is not counted).
  int64_t probes = 0;
  /// Probes that landed on an existing group.
  int64_t hits = 0;
  /// New groups created.
  int64_t inserts = 0;
  /// Slot-arena growth events (doubling).
  int64_t resizes = 0;
  /// Tuples consumed through the batch entry points.
  int64_t batch_tuples = 0;
  /// Batch tuples handled by a fused (non-generic) update kernel.
  int64_t fused_tuples = 0;

  void Accumulate(const HashTableStats& other) {
    probes += other.probes;
    hits += other.hits;
    inserts += other.inserts;
    resizes += other.resizes;
    batch_tuples += other.batch_tuples;
    fused_tuples += other.fused_tuples;
  }
};

/// Memory-bounded open-addressing aggregation hash table (the paper's
/// in-memory hash table with a maximum of M entries, Table 1: M = 10K).
///
/// Slots are fixed-width [key bytes][state bytes] blocks stored in one
/// flat arena; probing is linear over a power-of-two bucket array kept at
/// <= 70% load. The table refuses inserts beyond `max_entries` — detecting
/// that condition is exactly the adaptive algorithms' switch signal — but
/// existing groups can always continue to update in place.
///
/// Not thread-safe: one table per node phase.
class AggHashTable {
 public:
  /// Outcome of an upsert attempt.
  enum class UpsertResult {
    kUpdated,   ///< key existed; state updated/merged
    kInserted,  ///< key was new and fit
    kFull,      ///< key was new but the table is at max_entries
  };

  /// `spec` must outlive the table.
  AggHashTable(const AggregationSpec* spec, int64_t max_entries);

  int64_t size() const { return size_; }
  int64_t max_entries() const { return max_entries_; }
  bool full() const { return size_ >= max_entries_; }
  const AggregationSpec& spec() const { return *spec_; }

  /// Bytes held by the table: actual allocated slot-arena bytes plus the
  /// bucket index. (Historically this reported only the constructor's
  /// initial reservation and undercounted grown tables.)
  int64_t MemoryBytes() const;

  /// Finds the slot for `key` (with its precomputed hash), inserting an
  /// initialized state when absent and capacity remains. On success,
  /// `*state` points at the slot's mutable state block; on kFull, `*state`
  /// is nullptr.
  UpsertResult FindOrInsert(const uint8_t* key, uint64_t hash,
                            uint8_t** state);

  /// Upserts a projected raw record: init+update on insert, update on hit.
  UpsertResult UpsertProjected(const uint8_t* proj, uint64_t hash);

  /// Upserts a partial record: init+merge on insert, merge on hit.
  UpsertResult UpsertPartial(const uint8_t* partial, uint64_t hash);

  // --- batch entry points (prefetched probes, fused update kernels) ---

  /// Upserts batch records [from, batch.size()) in order, stopping at
  /// the first record that would need a new slot while the table is at
  /// max_entries. Returns the number of records consumed; the stopping
  /// record (index `from` + return value) is left entirely unprocessed,
  /// so adaptive algorithms can switch strategy at the precise tuple
  /// where the table filled — bit-identical to the tuple-at-a-time loop.
  int UpsertProjectedBatch(const TupleBatch& batch, int from);

  /// Upserts every batch record in [from, batch.size()). Records hitting
  /// a full table (UpsertResult::kFull) are appended to `overflow` (as
  /// batch indices, in order) instead of stopping the batch; existing
  /// groups still update in place. Used by the spill and Graefe
  /// forwarding paths, which handle misses record by record.
  void UpsertProjectedBatchOverflow(const TupleBatch& batch, int from,
                                    std::vector<int>& overflow);

  /// Partial-record form of UpsertProjectedBatch: the batch views
  /// *partial* records (key + state, e.g. a received kPartialPage run)
  /// and hits/inserts *merge* states instead of folding raw values,
  /// through a fused kernel when the spec's FusedMergeKind allows.
  /// Behaviorally identical to calling UpsertPartial per record.
  int UpsertPartialBatch(const TupleBatch& batch, int from);

  /// Overflow form of UpsertPartialBatch (see
  /// UpsertProjectedBatchOverflow).
  void UpsertPartialBatchOverflow(const TupleBatch& batch, int from,
                                  std::vector<int>& overflow);

  /// Pure lookup: state block of `key`, or nullptr.
  const uint8_t* Find(const uint8_t* key, uint64_t hash) const;

  /// Calls `fn(key_ptr, state_ptr)` for every entry, in slot order.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (int64_t i = 0; i < size_; ++i) {
      const uint8_t* slot = arena_.data() + i * slot_width_;
      fn(slot, slot + key_width_);
    }
  }

  /// Empties the table, keeping capacity. Stats are cumulative across
  /// clears.
  void Clear();

  const HashTableStats& stats() const { return stats_; }

 private:
  /// Folds one batch's outcome into stats_ at batch granularity.
  void NoteBatch(int consumed, int64_t size_before, int64_t overflowed,
                 bool fused) {
    stats_.batch_tuples += consumed;
    stats_.probes += consumed;
    const int64_t inserted = size_ - size_before;
    stats_.inserts += inserted;
    stats_.hits += consumed - inserted - overflowed;
    if (fused) stats_.fused_tuples += consumed;
  }

  int64_t Probe(const uint8_t* key, uint64_t hash, bool* found) const;

  /// Grows the arena (doubling, capped at max_entries) until it holds at
  /// least `slots` slots, so inserts never resize mid-batch.
  void EnsureSlotCapacity(int64_t slots);

  /// The shared probe/insert skeleton of every batch upsert: two-stage
  /// prefetch pipeline, linear probing, stop-at-full or overflow
  /// collection. `update(state, rec)` folds one record into its slot's
  /// (initialized) state — a fused raw-update, a fused partial-merge, or
  /// the interpreted fallback; `fused` only feeds the stats. Works for
  /// projected and partial records alike because both carry the group
  /// key as their prefix.
  template <bool Key8, bool StopAtFull, typename UpdateFn>
  int UpsertBatchImpl(const TupleBatch& batch, int from,
                      std::vector<int>* overflow, bool fused,
                      const UpdateFn& update);

  template <bool StopAtFull>
  int DispatchUpsertBatch(const TupleBatch& batch, int from,
                          std::vector<int>* overflow);

  template <bool StopAtFull>
  int DispatchMergeBatch(const TupleBatch& batch, int from,
                         std::vector<int>* overflow);

  const AggregationSpec* spec_;
  int64_t max_entries_;
  int key_width_;
  int state_width_;
  int slot_width_;

  // arena_ is pre-sized to `capacity_slots_` slots (of which the first
  // `size_` are live); buckets_ maps hash positions to slot indices
  // (-1 = empty).
  std::vector<uint8_t> arena_;
  int64_t capacity_slots_ = 0;
  std::vector<int64_t> buckets_;
  uint64_t bucket_mask_ = 0;
  int64_t size_ = 0;
  HashTableStats stats_;
};

}  // namespace adaptagg

#endif  // ADAPTAGG_AGG_HASH_TABLE_H_
