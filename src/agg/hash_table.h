#ifndef ADAPTAGG_AGG_HASH_TABLE_H_
#define ADAPTAGG_AGG_HASH_TABLE_H_

#include <atomic>
#include <cstdint>
#include <cstring>
#include <memory>
#include <vector>

#include "agg/agg_spec.h"
#include "agg/batch_kernels.h"
#include "common/mutex.h"
#include "common/status.h"

namespace adaptagg {

/// Plain (non-atomic) operation counters of one AggHashTable. The table
/// is single-threaded by contract, so these are bare int64 fields; the
/// batch entry points update them once per batch, never per tuple, to
/// keep the hot loops untouched. Cumulative across Clear() so a spilling
/// aggregator's recursive passes add up.
struct HashTableStats {
  /// Probe sequences started (one per upsert; pure Find() is not counted).
  int64_t probes = 0;
  /// Probes that landed on an existing group.
  int64_t hits = 0;
  /// New groups created.
  int64_t inserts = 0;
  /// Slot-arena growth events (doubling).
  int64_t resizes = 0;
  /// Tuples consumed through the batch entry points.
  int64_t batch_tuples = 0;
  /// Batch tuples handled by a fused (non-generic) update kernel.
  int64_t fused_tuples = 0;

  void Accumulate(const HashTableStats& other) {
    probes += other.probes;
    hits += other.hits;
    inserts += other.inserts;
    resizes += other.resizes;
    batch_tuples += other.batch_tuples;
    fused_tuples += other.fused_tuples;
  }
};

/// Memory-bounded open-addressing aggregation hash table (the paper's
/// in-memory hash table with a maximum of M entries, Table 1: M = 10K).
///
/// Slots are fixed-width [key bytes][state bytes] blocks stored in one
/// flat arena; probing is linear over a power-of-two bucket array kept at
/// <= 70% load. The table refuses inserts beyond `max_entries` — detecting
/// that condition is exactly the adaptive algorithms' switch signal — but
/// existing groups can always continue to update in place.
///
/// Two batch-plane accelerations sit behind the same entry points:
///
///  * 8-byte keys probe through the dispatched SIMD classifier
///    (common/simd.h): eight home buckets are gathered and compared in
///    one register, and only ambiguous lanes (collision chains,
///    duplicate keys within the group) fall back to the scalar probe
///    loop. Record order, stop-at-full precision, and every emitted
///    byte are identical to the scalar path.
///
///  * EnableRadixPartitioning(P) turns on cache-sized radix
///    pre-partitioning for high-cardinality inputs: batch upserts
///    scatter records (with their hash and a global arrival sequence
///    number) into P per-partition staging buffers keyed by the top
///    bits of the masked hash, so each partition owns a contiguous
///    bucket range. Partitions drain — at a staging soft cap and at
///    FlushRadixStaging() — through the normal batch upsert over only
///    their L2-sized region. ForEach then emits groups sorted by each
///    group's first-occurrence sequence, which is exactly the insertion
///    order the non-partitioned path would have produced, so results
///    stay byte-identical. Records refused by a full table surface
///    through DrainRadixOverflow() instead of the caller's overflow
///    vector.
///
/// Not thread-safe: one table per node phase.
class AggHashTable {
 public:
  /// Outcome of an upsert attempt.
  enum class UpsertResult {
    kUpdated,   ///< key existed; state updated/merged
    kInserted,  ///< key was new and fit
    kFull,      ///< key was new but the table is at max_entries
  };

  /// `spec` must outlive the table.
  AggHashTable(const AggregationSpec* spec, int64_t max_entries);

  int64_t size() const { return size_; }
  int64_t max_entries() const { return max_entries_; }
  bool full() const { return size_ >= max_entries_; }
  const AggregationSpec& spec() const { return *spec_; }

  /// Bytes held by the table: actual allocated slot-arena bytes plus the
  /// bucket index, plus — in radix mode — the staging buffers, the
  /// per-slot sequence index, and the pending-overflow buffer. (PR 2
  /// fixed an undercount of grown arenas; the radix additions keep the
  /// table-size switch decision honest the same way.)
  int64_t MemoryBytes() const;

  /// Finds the slot for `key` (with its precomputed hash), inserting an
  /// initialized state when absent and capacity remains. On success,
  /// `*state` points at the slot's mutable state block; on kFull, `*state`
  /// is nullptr. Not available in radix mode (staged records would be
  /// invisible).
  UpsertResult FindOrInsert(const uint8_t* key, uint64_t hash,
                            uint8_t** state);

  /// Upserts a projected raw record: init+update on insert, update on hit.
  UpsertResult UpsertProjected(const uint8_t* proj, uint64_t hash);

  /// Upserts a partial record: init+merge on insert, merge on hit.
  UpsertResult UpsertPartial(const uint8_t* partial, uint64_t hash);

  // --- batch entry points (prefetched probes, fused update kernels) ---

  /// Upserts batch records [from, batch.size()) in order, stopping at
  /// the first record that would need a new slot while the table is at
  /// max_entries. Returns the number of records consumed; the stopping
  /// record (index `from` + return value) is left entirely unprocessed,
  /// so adaptive algorithms can switch strategy at the precise tuple
  /// where the table filled — bit-identical to the tuple-at-a-time loop.
  /// Not available in radix mode (staging would blur the stop point).
  int UpsertProjectedBatch(const TupleBatch& batch, int from);

  /// Upserts every batch record in [from, batch.size()). Records hitting
  /// a full table (UpsertResult::kFull) are appended to `overflow` (as
  /// batch indices, in order) instead of stopping the batch; existing
  /// groups still update in place. Used by the spill and Graefe
  /// forwarding paths, which handle misses record by record. In radix
  /// mode the batch is staged instead, `overflow` stays untouched, and
  /// refused records surface later through DrainRadixOverflow().
  void UpsertProjectedBatchOverflow(const TupleBatch& batch, int from,
                                    std::vector<int>& overflow);

  /// Partial-record form of UpsertProjectedBatch: the batch views
  /// *partial* records (key + state, e.g. a received kPartialPage run)
  /// and hits/inserts *merge* states instead of folding raw values,
  /// through a fused kernel when the spec's FusedMergeKind allows.
  /// Behaviorally identical to calling UpsertPartial per record.
  int UpsertPartialBatch(const TupleBatch& batch, int from);

  /// Overflow form of UpsertPartialBatch (see
  /// UpsertProjectedBatchOverflow).
  void UpsertPartialBatchOverflow(const TupleBatch& batch, int from,
                                  std::vector<int>& overflow);

  /// Pure lookup: state block of `key`, or nullptr. Not available in
  /// radix mode.
  const uint8_t* Find(const uint8_t* key, uint64_t hash) const;

  // --- radix pre-partitioning (cache-sized local aggregation) ---

  /// Switches the batch-overflow entry points to radix staging with
  /// `partitions` (a power of two >= 2; silently capped at the bucket
  /// count) partition regions. Must be called on an empty table, before
  /// any records; the mode persists across Clear().
  void EnableRadixPartitioning(int partitions);

  bool radix_partitioning() const { return radix_enabled_; }
  int radix_partitions() const { return radix_partitions_; }

  /// Bytes currently parked in radix staging buffers (0 after
  /// FlushRadixStaging).
  int64_t radix_staged_bytes() const { return radix_staged_bytes_; }

  /// Drains every staged record into the table. Must run before ForEach
  /// or size() reflect all added records; refused records accumulate for
  /// DrainRadixOverflow().
  void FlushRadixStaging();

  /// Hands every record refused by the full table (in refusal order) to
  /// `fn(is_partial, hash, record)` and clears the pending buffer. Stops
  /// and returns the first non-OK status, dropping the remainder.
  template <typename Fn>
  Status DrainRadixOverflow(const Fn& fn) {
    const int64_t entry = radix_entry_width_;
    Status status = Status::OK();
    for (int64_t off = 0;
         status.ok() && off < static_cast<int64_t>(radix_overflow_.size());
         off += entry) {
      const uint8_t* e = radix_overflow_.data() + off;
      uint64_t hash;
      uint64_t seq_tag;
      std::memcpy(&hash, e, 8);
      std::memcpy(&seq_tag, e + 8, 8);
      status = fn((seq_tag >> 63) != 0, hash, e + kRadixEntryHeader);
    }
    radix_overflow_.clear();
    return status;
  }

  /// Calls `fn(key_ptr, state_ptr)` for every entry: in slot order
  /// normally, in first-occurrence (= scalar insertion) order in radix
  /// mode. Radix staging must be flushed first.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    if (!radix_enabled_) {
      for (int64_t i = 0; i < size_; ++i) {
        const uint8_t* slot = arena_.data() + i * slot_width_;
        fn(slot, slot + key_width_);
      }
      return;
    }
    const std::vector<int64_t> order = RadixEmitOrder();
    for (int64_t i : order) {
      const uint8_t* slot = arena_.data() + i * slot_width_;
      fn(slot, slot + key_width_);
    }
  }

  /// Empties the table, keeping capacity (and the radix mode). Stats are
  /// cumulative across clears.
  void Clear();

  const HashTableStats& stats() const { return stats_; }

 private:
  /// [hash:8][seq | is_partial << 63 : 8] prefix of every *overflow*
  /// entry (DrainRadixOverflow hands the stored hash to its callback, so
  /// overflow keeps it). Staged entries carry only the 8-byte seq/tag
  /// word — their hash is recomputed vectorized at drain time, which is
  /// cheaper than writing and re-reading 8 bytes per record through the
  /// staging round trip.
  static constexpr int64_t kRadixEntryHeader = 16;

  /// [seq | is_partial << 63 : 8] prefix of every *staged* entry; the
  /// record follows, padded to 8 bytes. Projected and partial records
  /// use their own exact strides (radix_stride_proj_ / radix_stride_part_)
  /// instead of both paying the wider of the two layouts.
  static constexpr int64_t kRadixStageHeader = 8;

  /// Folds one batch's outcome into stats_ at batch granularity.
  void NoteBatch(int consumed, int64_t size_before, int64_t overflowed,
                 bool fused) {
    stats_.batch_tuples += consumed;
    stats_.probes += consumed;
    const int64_t inserted = size_ - size_before;
    stats_.inserts += inserted;
    stats_.hits += consumed - inserted - overflowed;
    if (fused) stats_.fused_tuples += consumed;
  }

  int64_t Probe(const uint8_t* key, uint64_t hash, bool* found) const;

  /// Grows the arena (doubling, capped at max_entries) until it holds at
  /// least `slots` slots, so inserts never resize mid-batch.
  void EnsureSlotCapacity(int64_t slots);

  /// The shared probe/insert skeleton of every batch upsert, over raw
  /// arrays so staged radix runs reuse it without re-copying: records
  /// start at `recs` with `stride` bytes between them, record i's hash
  /// sits at `hash_base + i * hash_stride`. SIMD probe classification
  /// for 8-byte keys, two-stage prefetch pipeline, linear probing,
  /// stop-at-full or overflow collection. `update(state, rec)` folds one
  /// record into its slot's (initialized) state — a fused raw-update, a
  /// fused partial-merge, or the interpreted fallback; `fused` only
  /// feeds the stats. Works for projected and partial records alike
  /// because both carry the group key as their prefix. `HashStrideCT`
  /// folds a compile-time hash stride into the hot loop's address math
  /// (0 = use the runtime `hash_stride`); `use_classify` engages the
  /// 8-lane SIMD probe classifier — see UseClassify() for when that
  /// pays.
  template <bool Key8, bool StopAtFull, int HashStrideCT, typename UpdateFn>
  int UpsertBatchImpl(const uint8_t* recs, int stride,
                      const uint8_t* hash_base, int hash_stride,
                      bool use_classify, int from, int n,
                      std::vector<int>* overflow, bool fused,
                      const UpdateFn& update);

  template <bool StopAtFull, int HashStrideCT>
  int DispatchUpsertBatch(const uint8_t* recs, int stride,
                          const uint8_t* hash_base, int hash_stride,
                          int from, int n, std::vector<int>* overflow);

  template <bool StopAtFull, int HashStrideCT>
  int DispatchMergeBatch(const uint8_t* recs, int stride,
                         const uint8_t* hash_base, int hash_stride,
                         int from, int n, std::vector<int>* overflow);

  /// Whether batch upserts should run the SIMD probe classifier instead
  /// of the streaming prefetch loop. Opt-in via ADAPTAGG_FORCE_CLASSIFY:
  /// measured across L2-resident through DRAM-resident tables, the
  /// prefetch-pipelined streaming loop beat the gather-based classifier
  /// everywhere, so the classifier stays a tested-but-dormant path.
  /// Radix drains always stream — each drain walks a cache-sized bucket
  /// region by construction.
  bool UseClassify() const;

  /// Scatters batch records [from, size) into the per-partition staging
  /// buffers, draining any partition that crosses the soft cap.
  void StageBatch(const TupleBatch& batch, int from, bool partial);

  /// Upserts one partition's staged entries (in staged order, split into
  /// same-tag runs), records first-occurrence sequences for the new
  /// slots, and moves refused entries to the pending-overflow buffer.
  void DrainPartition(int pid);

  /// Slot indices sorted by first-occurrence sequence — the emit
  /// permutation that restores scalar insertion order. CHECKs that
  /// staging is flushed.
  std::vector<int64_t> RadixEmitOrder() const;

  const AggregationSpec* spec_;
  int64_t max_entries_;
  int key_width_;
  int state_width_;
  int slot_width_;
  /// 8-byte-key batches may use the SIMD probe classifier (requires slot
  /// indices and byte offsets to fit the gather math's 32-bit lanes).
  bool classify_ok_ = false;

  // arena_ is pre-sized to `capacity_slots_` slots (of which the first
  // `size_` are live); buckets_ maps hash positions to slot indices
  // (-1 = empty).
  std::vector<uint8_t> arena_;
  int64_t capacity_slots_ = 0;
  std::vector<int64_t> buckets_;
  uint64_t bucket_mask_ = 0;
  int64_t size_ = 0;
  HashTableStats stats_;

  // --- radix mode state ---
  bool radix_enabled_ = false;
  int radix_partitions_ = 0;
  /// Bucket position >> radix_shift_ = owning partition, so partition p
  /// owns the contiguous bucket range [p << shift, (p + 1) << shift).
  int radix_shift_ = 0;
  /// Overflow entries only: kRadixEntryHeader + the wider of the two
  /// record layouts, padded to 8 bytes.
  int64_t radix_entry_width_ = 0;
  /// Staged-entry strides: kRadixStageHeader + the record, padded to 8.
  int64_t radix_stride_proj_ = 0;
  int64_t radix_stride_part_ = 0;
  /// Per-partition staging buffers: allocated lazily (first staged
  /// record) at the full soft-cap capacity and never resized — growing
  /// vectors would re-copy and value-initialize the whole buffer on
  /// every doubling, which costs more memory traffic than the staged
  /// data itself. The live prefix of radix_stage_[p] is
  /// radix_stage_used_[p] bytes.
  std::vector<std::unique_ptr<uint8_t[]>> radix_stage_;
  std::vector<size_t> radix_stage_used_;
  size_t radix_stage_cap_ = 0;
  /// Drain-time hash recomputation scratch (one cache-resident chunk).
  std::vector<uint64_t> drain_hash_scratch_;
  int64_t radix_staged_bytes_ = 0;
  /// Global arrival counter feeding the per-entry sequence numbers.
  uint64_t radix_seq_ = 0;
  /// Per live slot: arrival sequence of the group's first occurrence.
  std::vector<uint64_t> slot_seq_;
  /// Entries refused by the full table, pending DrainRadixOverflow.
  std::vector<uint8_t> radix_overflow_;
  std::vector<int> radix_ovf_scratch_;
};

/// Concurrent fixed-capacity aggregation table for the shared global
/// merge topology (DESIGN.md §12): every node of an in-process cluster
/// folds its partial records into ONE table, replacing the merge
/// exchange with memory traffic. Unlike AggHashTable it never resizes
/// and never spills — a record whose group is new while the table sits
/// at its 70% load ceiling is refused, and the caller keeps it in a
/// private overflow instead of blocking other threads.
///
/// Slot protocol (open addressing, linear probing over a power-of-two
/// bucket array): a bucket word holds 0 (empty), 1 (claimed — a writer
/// is publishing the slot) or slot_index + 2 (published). Inserting
/// CASes 0 -> 1, writes the key and the spec's initial state into the
/// claimed slot, then publishes with a release store; probers that see
/// "claimed" spin until the release store lands, so a published slot's
/// key and initial state are always visible (release/acquire).
///
/// Merging runs on one of two planes, chosen once from the spec:
///
///  * lock-free — specs whose partial states are int64 words merged by
///    addition (FusedMergeKind::kAddInt64, and the stateless kDistinct):
///    each state word is a std::atomic<int64_t> and every merge is a
///    relaxed fetch_add. Addition commutes, so totals are exact under
///    any interleaving and for any initial value.
///  * striped locks — every other spec: slot index mod 64 picks a
///    stripe, and the interpreted MergeState runs under that stripe's
///    Mutex, bounding contention to same-stripe collisions.
///
/// ForEach requires external quiescence: every writer must have passed
/// a synchronizing barrier (the merge topology's reduce round) first.
class SharedAggHashTable {
 public:
  /// `spec` must outlive the table. `capacity` is rounded up to a power
  /// of two (minimum 64); inserts are refused at 70% of it.
  SharedAggHashTable(const AggregationSpec* spec, int64_t capacity);

  const AggregationSpec& spec() const { return *spec_; }
  int64_t capacity() const { return capacity_; }
  int64_t size() const { return size_.load(std::memory_order_acquire); }
  bool lock_free() const { return lock_free_; }

  /// Merges performed under a stripe lock (0 on the lock-free plane).
  int64_t locked_merges();

  /// The single concurrent entry point (adaptagg_lint rule S14 confines
  /// its callers to the merge-topology plane): merges one partial record
  /// into the table under the spec's precomputed key hash. Returns false
  /// when the record's group is new but the table is at its load
  /// ceiling; the caller must keep the record in a private overflow.
  /// Thread-safe; every other method is not.
  bool UpsertPartialConcurrent(const uint8_t* partial, uint64_t hash);

  /// Calls `fn(key_ptr, state_ptr)` for every published group in slot
  /// allocation order. Only valid after every writer has passed a
  /// barrier that happens-before this call; the iteration order depends
  /// on thread interleaving, so callers must not let it reach any
  /// order-sensitive output (the merge topology re-keys groups through
  /// an order-insensitive scratch aggregator before emission).
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    const int64_t n = size_.load(std::memory_order_acquire);
    std::vector<uint8_t> scratch(
        static_cast<size_t>(state_words_) * 8 + 1);
    for (int64_t i = 0; i < n; ++i) {
      const uint8_t* key =
          keys_.data() + i * static_cast<int64_t>(key_width_);
      if (lock_free_) {
        for (int w = 0; w < state_words_; ++w) {
          const int64_t v = states_ll_[static_cast<size_t>(
                                           i * state_words_ + w)]
                                .load(std::memory_order_relaxed);
          std::memcpy(scratch.data() + w * 8, &v, 8);
        }
        fn(key, scratch.data());
      } else {
        fn(key, states_.data() + i * static_cast<int64_t>(state_width_));
      }
    }
  }

 private:
  static constexpr uint64_t kEmpty = 0;
  static constexpr uint64_t kClaimed = 1;
  static constexpr uint64_t kPublishedBase = 2;
  static constexpr int kStripes = 64;

  struct Stripe {
    Mutex mu;
    /// Merges serialized by this stripe (contention observability).
    int64_t locked_merges ADAPTAGG_GUARDED_BY(mu) = 0;
  };

  /// Folds one incoming partial state into published slot `idx`.
  void MergeInto(int64_t idx, const uint8_t* in_state);

  const AggregationSpec* spec_;
  int key_width_;
  int state_width_;
  int state_words_;
  bool lock_free_;
  int64_t capacity_;
  uint64_t mask_;
  /// Insert refusal threshold (70% of capacity).
  int64_t limit_;
  /// The spec's initial state bytes, computed once (publication copies
  /// them instead of re-running InitState under the claim).
  std::vector<uint8_t> init_state_;
  std::vector<std::atomic<uint64_t>> buckets_;
  std::vector<uint8_t> keys_;
  /// Striped plane: plain state bytes, guarded by the slot's stripe.
  std::vector<uint8_t> states_;
  /// Lock-free plane: one atomic per 8-byte state word.
  std::vector<std::atomic<int64_t>> states_ll_;
  /// Slots claimed so far (allocation counter and published size — the
  /// two coincide whenever no claim is in flight).
  std::atomic<int64_t> size_{0};
  Stripe stripes_[kStripes];
};

/// Owns the one shared merge table of an in-process cluster run. The
/// cluster hands every NodeContext the same arena; the first node to
/// reach its merge setup creates the table and the rest attach to it.
/// Capacity derives from broadcast-agreed decision inputs, so every
/// node computes the same value — GetOrInit enforces that.
class SharedMergeArena {
 public:
  /// Returns the shared table, creating it on first call. Later callers
  /// must pass the same capacity (CHECKed) and a spec with identical
  /// layout.
  SharedAggHashTable* GetOrInit(const AggregationSpec* spec,
                                int64_t capacity);

  /// Drops the table (between recovery attempts and between serving-
  /// layer sessions). Callers must have quiesced every user first.
  void Reset();

 private:
  Mutex mu_;
  std::unique_ptr<SharedAggHashTable> table_ ADAPTAGG_GUARDED_BY(mu_);
};

}  // namespace adaptagg

#endif  // ADAPTAGG_AGG_HASH_TABLE_H_
