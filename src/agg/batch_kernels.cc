#include "agg/batch_kernels.h"

#include <algorithm>
#include <cstring>

namespace adaptagg {

TupleBatch::TupleBatch(const AggregationSpec* spec)
    : spec_(spec),
      stride_(static_cast<size_t>(spec->projected_width())),
      // Never zero-sized: a global-aggregate spec (no group columns) has
      // a zero-width projected record, and record(i) must stay a valid
      // pointer for memcmp/memcpy of zero bytes.
      arena_(std::max<size_t>(1, static_cast<size_t>(kBatchWidth) * stride_)),
      hashes_(kBatchWidth) {
  data_ = arena_.data();
}

int TupleBatch::GatherRun(const uint8_t* recs, int rec_size, int n) {
  n = std::min(n, kBatchWidth - size_);
  if (n <= 0) return 0;
  uint8_t* dst0 = arena_.data() + static_cast<size_t>(size_) * stride_;
  const std::vector<ProjCopyRun>& plan = spec_->projection_plan();
  if (plan.size() == 1 && plan[0].src_offset == 0 &&
      plan[0].dst_offset == 0 &&
      plan[0].width == static_cast<int>(stride_) &&
      rec_size == static_cast<int>(stride_)) {
    // Identity projection over densely packed records: one bulk copy.
    std::memcpy(dst0, recs, static_cast<size_t>(n) * stride_);
    stats_.identity_copy_tuples += n;
  } else {
    for (int i = 0; i < n; ++i) {
      const uint8_t* src = recs + static_cast<size_t>(i) * rec_size;
      uint8_t* dst = dst0 + static_cast<size_t>(i) * stride_;
      for (const ProjCopyRun& run : plan) {
        std::memcpy(dst + run.dst_offset, src + run.src_offset,
                    static_cast<size_t>(run.width));
      }
    }
  }
  size_ += n;
  stats_.gathered_tuples += n;
  return n;
}

}  // namespace adaptagg
