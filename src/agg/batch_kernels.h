#ifndef ADAPTAGG_AGG_BATCH_KERNELS_H_
#define ADAPTAGG_AGG_BATCH_KERNELS_H_

#include <cstdint>
#include <vector>

#include "agg/agg_spec.h"

namespace adaptagg {

/// Tuples per processing batch. Fixed to the scan loops' inbox-poll
/// cadence (core/phases.h kPollInterval) so that batching changes
/// neither when a node services its inbox nor any poll-dependent switch
/// decision; phases.h statically asserts the two stay equal.
inline constexpr int kBatchWidth = 128;

/// How many probes ahead the batch upsert kernels prefetch. Far enough
/// to cover an L2 miss at ~4 probes/cycle-budget, near enough that the
/// prefetched lines are still resident when reached.
inline constexpr int kPrefetchDistance = 8;

/// Portable prefetch-for-read into all cache levels.
inline void PrefetchRead(const void* p) {
#if defined(__GNUC__) || defined(__clang__)
  __builtin_prefetch(p, /*rw=*/0, /*locality=*/3);
#else
  (void)p;
#endif
}

/// Plain counters of one TupleBatch's gather activity, updated once per
/// gather call (never per tuple). Single-threaded like the batch itself.
struct BatchGatherStats {
  /// Tuples gathered through Gather/GatherRun.
  int64_t gathered_tuples = 0;
  /// GatherRun tuples that took the identity-projection bulk-memcpy fast
  /// path.
  int64_t identity_copy_tuples = 0;

  void Accumulate(const BatchGatherStats& other) {
    gathered_tuples += other.gathered_tuples;
    identity_copy_tuples += other.identity_copy_tuples;
  }
};

/// A batch of up to kBatchWidth projected records plus their key hashes.
/// Scan loops gather into it one page-run at a time (projection happens
/// at gather, because operator TupleViews only stay valid until the next
/// operator call), hash all keys in one pass, and hand the batch to the
/// aggregation kernels. The arena is allocated once and reused across
/// batches.
class TupleBatch {
 public:
  /// `spec` must outlive the batch.
  explicit TupleBatch(const AggregationSpec* spec);

  void Clear() {
    size_ = 0;
    data_ = arena_.data();
    stride_ = static_cast<size_t>(spec_->projected_width());
  }
  int size() const { return size_; }
  bool full() const { return size_ >= kBatchWidth; }

  /// Points the batch at `n` (<= kBatchWidth) externally owned records,
  /// `record_width` bytes apart — zero-copy decode of a received page
  /// run. The records (and their key prefix) must outlive the batch's
  /// use; the arena and gather stats are untouched. Works for projected
  /// *and* partial records, whose key is likewise the record prefix, so
  /// ComputeHashes and the upsert kernels apply unchanged. Clear()
  /// returns the batch to arena (gather) mode.
  void BindView(const uint8_t* recs, int record_width, int n) {
    data_ = recs;
    stride_ = static_cast<size_t>(record_width);
    size_ = n;
  }

  /// Projects `tuple` into the next slot. Requires !full() and arena
  /// mode (no BindView since the last Clear()).
  void Gather(const TupleView& tuple) {
    spec_->ProjectRaw(tuple,
                      arena_.data() + static_cast<size_t>(size_) * stride_);
    ++size_;
    ++stats_.gathered_tuples;
  }

  /// Projects up to `n` consecutive raw records (`rec_size` bytes apart,
  /// starting at `recs`) in one call — a single memcpy when the
  /// projection plan is the identity prefix of the record. Returns how
  /// many were gathered (bounded by remaining batch room).
  int GatherRun(const uint8_t* recs, int rec_size, int n);

  /// Hashes every record's key. Call once after gathering/BindView.
  void ComputeHashes() {
    spec_->HashKeys(data_, static_cast<int>(stride_), size_,
                    hashes_.data());
  }

  const uint8_t* record(int i) const {
    return data_ + static_cast<size_t>(i) * stride_;
  }
  uint64_t hash(int i) const { return hashes_[i]; }

  /// Flat access for the batch kernels.
  const uint8_t* records() const { return data_; }
  int stride() const { return static_cast<int>(stride_); }
  const uint64_t* hashes() const { return hashes_.data(); }
  const AggregationSpec& spec() const { return *spec_; }

  /// Cumulative gather counters (survive Clear()).
  const BatchGatherStats& stats() const { return stats_; }

 private:
  const AggregationSpec* spec_;
  size_t stride_;
  int size_ = 0;
  std::vector<uint8_t> arena_;
  /// Where record(i)/records() read from: the arena in gather mode, the
  /// bound external run after BindView.
  const uint8_t* data_ = nullptr;
  std::vector<uint64_t> hashes_;
  BatchGatherStats stats_;
};

}  // namespace adaptagg

#endif  // ADAPTAGG_AGG_BATCH_KERNELS_H_
