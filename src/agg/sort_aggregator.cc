#include "agg/sort_aggregator.h"

#include <cstring>

#include "common/logging.h"

namespace adaptagg {
namespace {

constexpr uint8_t kRawTag = 0;
constexpr uint8_t kPartialTag = 1;

int FrameWidth(const AggregationSpec& spec) {
  return 1 + std::max(spec.projected_width(), spec.partial_width());
}

}  // namespace

SortAggregator::SortAggregator(const AggregationSpec* spec, Disk* disk,
                               int64_t max_records, std::string name)
    : spec_(spec),
      record_width_(FrameWidth(*spec)),
      // The group key is every frame's prefix after the tag byte, so
      // raw and partial frames interleave correctly in key order.
      sorter_(disk, record_width_, /*key_offset=*/1, spec->key_width(),
              max_records, std::move(name)),
      frame_(static_cast<size_t>(record_width_), 0) {}

Status SortAggregator::Add(uint8_t tag, const uint8_t* record, int width) {
  frame_[0] = tag;
  std::memcpy(frame_.data() + 1, record, static_cast<size_t>(width));
  // Zero the pad so runs are deterministic byte-for-byte.
  std::memset(frame_.data() + 1 + width, 0,
              static_cast<size_t>(record_width_ - 1 - width));
  return sorter_.Add(frame_.data());
}

Status SortAggregator::AddProjected(const uint8_t* proj) {
  return Add(kRawTag, proj, spec_->projected_width());
}

Status SortAggregator::AddPartial(const uint8_t* partial) {
  return Add(kPartialTag, partial, spec_->partial_width());
}

Status SortAggregator::AddProjectedBatch(const TupleBatch& batch) {
  for (int i = 0; i < batch.size(); ++i) {
    ADAPTAGG_RETURN_IF_ERROR(AddProjected(batch.record(i)));
  }
  return Status::OK();
}

Status SortAggregator::AddPartialBatch(const TupleBatch& batch) {
  for (int i = 0; i < batch.size(); ++i) {
    ADAPTAGG_RETURN_IF_ERROR(AddPartial(batch.record(i)));
  }
  return Status::OK();
}

Status SortAggregator::Finish(const EmitFn& emit) {
  ADAPTAGG_CHECK(!finished_) << "Finish() called twice";
  finished_ = true;

  ADAPTAGG_ASSIGN_OR_RETURN(SortedStream stream, sorter_.Finish());

  const int key_width = spec_->key_width();
  std::vector<uint8_t> current_key(static_cast<size_t>(key_width));
  std::vector<uint8_t> state(
      static_cast<size_t>(std::max(1, spec_->state_width())));
  bool open = false;

  const uint8_t* frame;
  while ((frame = stream.Next()) != nullptr) {
    const uint8_t* key = frame + 1;
    if (!open ||
        std::memcmp(key, current_key.data(),
                    static_cast<size_t>(key_width)) != 0) {
      if (open) emit(current_key.data(), state.data());
      std::memcpy(current_key.data(), key,
                  static_cast<size_t>(key_width));
      spec_->InitState(state.data());
      open = true;
    }
    if (frame[0] == kRawTag) {
      spec_->UpdateFromProjected(state.data(), frame + 1);
    } else {
      spec_->MergeState(state.data(), spec_->StateOfPartial(frame + 1));
    }
  }
  ADAPTAGG_RETURN_IF_ERROR(stream.status());
  if (open) emit(current_key.data(), state.data());
  return Status::OK();
}

}  // namespace adaptagg
