#include "core/phases.h"

#include <algorithm>

#include "cluster/recovery.h"
#include "common/logging.h"
#include "core/merge_topology.h"

namespace adaptagg {
namespace {

/// Applies the locality model's radix decision to one aggregator before
/// it sees any records. `role` names the aggregation for the trace
/// ("local": the scan-phase table; "global": the merge-phase table) and
/// `est_groups` is the expected group count for it — 0 (no sampling
/// estimate) leaves kAuto disengaged. Wall-clock-only: the choice never
/// touches the cost clock, so simulated results are unchanged either
/// way.
void MaybeEnableRadix(NodeContext& ctx, SpillingAggregator& agg,
                      const char* role, int64_t est_groups) {
  const RadixDecision d = DecideRadixPartitioning(
      ctx.options().radix_mode, est_groups, ctx.max_hash_entries(),
      ctx.spec().key_width() + ctx.spec().state_width(),
      ctx.options().radix_l2_bytes, ctx.options().radix_llc_bytes);
  if (!d.engage) return;
  agg.EnableRadixPartitioning(d.partitions);
  ctx.obs().RecordDecision(std::string("radix.engage.") + role,
                           {{"partitions", d.partitions},
                            {"est_groups", est_groups},
                            {"working_set_bytes", d.working_set_bytes}});
}

}  // namespace

DataReceiver::DataReceiver(NodeContext* ctx, SpillingAggregator* agg,
                           int expected_eos)
    : DataReceiver(
          ctx,
          [agg](const TupleBatch& b) { return agg->AddProjectedBatch(b); },
          [agg](const TupleBatch& b) { return agg->AddPartialBatch(b); },
          expected_eos) {}

DataReceiver::DataReceiver(NodeContext* ctx, BatchSink on_raw,
                           BatchSink on_partial, int expected_eos)
    : ctx_(ctx),
      on_raw_(std::move(on_raw)),
      on_partial_(std::move(on_partial)),
      view_batch_(&ctx->spec()),
      expected_eos_(expected_eos),
      eos_from_(static_cast<size_t>(ctx->num_nodes()), false),
      fold_watermark_(static_cast<size_t>(ctx->num_nodes()), 0) {
  const SystemParams& p = ctx->params();
  // Global-phase merge costs (§2.2): reading the record and computing the
  // cumulative value. Hashing was charged on the sending side.
  partial_cost_ = p.t_r() + p.t_a();
  raw_cost_ = p.t_r() + p.t_a();
}

Status DataReceiver::HandlePage(Message& msg, bool is_partial) {
  const int width = is_partial ? ctx_->spec().partial_width()
                               : ctx_->spec().projected_width();
  ADAPTAGG_ASSIGN_OR_RETURN(
      const int count,
      ValidateWirePage(msg.payload.data(), msg.payload.size(),
                       ctx_->params().message_page_bytes, width));
  const uint8_t* recs = msg.payload.data() + sizeof(uint32_t);
  const double record_cost = is_partial ? partial_cost_ : raw_cost_;
  const BatchSink& sink = is_partial ? on_partial_ : on_raw_;
  int64_t& received = is_partial ? ctx_->stats().partial_records_received
                                 : ctx_->stats().raw_records_received;
  Status status;
  // Narrow records pack more than kBatchWidth per page; decode in
  // batch-sized windows so the sinks see the same shape as scan batches.
  for (int off = 0; off < count && status.ok(); off += kBatchWidth) {
    const int run = std::min(count - off, kBatchWidth);
    view_batch_.BindView(
        recs + static_cast<size_t>(off) * static_cast<size_t>(width), width,
        run);
    view_batch_.ComputeHashes();
    ctx_->clock().AddCpu(static_cast<double>(run) * record_cost);
    received += run;
    status = sink(view_batch_);
  }
  view_batch_.Clear();
  ctx_->SyncDiskIo();
  if (status.ok()) {
    // The payload is fully folded into the aggregator; recycle it as a
    // future outgoing page buffer.
    ctx_->ReleasePageBuffer(std::move(msg.payload));
  }
  return status;
}

void DataReceiver::SetReplayWatermarks(const std::vector<uint64_t>& wm) {
  const size_t bound = std::min(wm.size(), fold_watermark_.size());
  for (size_t i = 0; i < bound; ++i) fold_watermark_[i] = wm[i];
}

Status DataReceiver::Handle(Message& msg) {
  if (merge_plane_ != nullptr && msg.phase >= kPhaseMergeReduce) {
    // Reduction-round traffic that raced ahead of the last data EOS;
    // parked for the merge plane's own receive loops (flushed to the
    // stash when Drain completes).
    pending_merge_.push_back(std::move(msg));
    return Status::OK();
  }
  switch (msg.type) {
    case MessageType::kPartialPage:
    case MessageType::kRawPage: {
      const bool in_range =
          msg.from >= 0 &&
          static_cast<size_t>(msg.from) < fold_watermark_.size();
      if (msg.page_seq != 0 && in_range &&
          msg.page_seq <= fold_watermark_[static_cast<size_t>(msg.from)]) {
        // A replayed sender regenerated a page this node folded before
        // its checkpoint; folding it again would double-count, so the
        // duplicate is counted and discarded.
        ctx_->obs().recovery_pages_deduped.Increment();
        ctx_->ReleasePageBuffer(std::move(msg.payload));
        return Status::OK();
      }
      ADAPTAGG_RETURN_IF_ERROR(
          HandlePage(msg, msg.type == MessageType::kPartialPage));
      if (msg.page_seq != 0 && in_range) {
        fold_watermark_[static_cast<size_t>(msg.from)] = msg.page_seq;
      }
      if (post_fold_hook_ != nullptr) return post_fold_hook_();
      return Status::OK();
    }
    case MessageType::kEndOfStream:
      if (msg.phase == kPhaseData) {
        if (merge_plane_ != nullptr && !msg.payload.empty()) {
          // Non-seed topologies attach a phantom-charge ledger to their
          // data EOS; replay the seed's receive-side costs from it.
          ADAPTAGG_RETURN_IF_ERROR(merge_plane_->FoldLedger(msg));
        }
        ++eos_seen_;
        // Liveness bookkeeping only (duplicated messages were already
        // discarded by sequence number below this layer).
        if (msg.from >= 0 && msg.from < static_cast<int>(eos_from_.size())) {
          eos_from_[static_cast<size_t>(msg.from)] = true;
        }
      }
      return Status::OK();
    case MessageType::kEndOfPhase:
      end_of_phase_seen_ = true;
      return Status::OK();
    case MessageType::kControl:
      return Status::Internal("unexpected control message in data phase");
    case MessageType::kHeartbeat:
      // NodeContext swallows these before delivery; tolerate one anyway.
      return Status::OK();
    case MessageType::kAbort:
      return Status::Internal("aborted by peer node " +
                              std::to_string(msg.from));
  }
  return Status::OK();
}

Status DataReceiver::Poll() {
  ctx_->PollRuntime();
  while (true) {
    ADAPTAGG_ASSIGN_OR_RETURN(std::optional<Message> msg, ctx_->TryRecv());
    if (!msg.has_value()) break;
    ADAPTAGG_RETURN_IF_ERROR(Handle(*msg));
  }
  return Status::OK();
}

Status DataReceiver::Drain() {
  while (!done()) {
    // Await traffic from every sender that still owes us its data-phase
    // end-of-stream; if one goes silent the wait aborts with a status
    // naming it instead of hanging the merge phase forever.
    ADAPTAGG_ASSIGN_OR_RETURN(
        Message msg, ctx_->AwaitMessage([this](int p) {
          return !eos_from_[static_cast<size_t>(p)];
        }));
    ADAPTAGG_RETURN_IF_ERROR(Handle(msg));
  }
  for (Message& msg : pending_merge_) {
    ctx_->Stash(std::move(msg));
  }
  pending_merge_.clear();
  return Status::OK();
}

Status EmitFinalResults(NodeContext& ctx, SpillingAggregator& global) {
  ADAPTAGG_RETURN_IF_ERROR(ctx.EnterPhase("emit"));
  PhaseTimer emit_span = ctx.obs().StartPhase("emit");
  Status status;
  Status finish =
      global.Finish([&](const uint8_t* key, const uint8_t* state) {
        if (!status.ok()) return;
        status = ctx.EmitFinalRow(key, state);
      });
  ctx.stats().spill.Accumulate(global.stats());
  AccumulateHashTableObs(ctx, global.ht_stats());
  ctx.SyncDiskIo();
  emit_span.AddArg("result_rows", ctx.stats().result_rows);
  if (!finish.ok()) return finish;
  if (!status.ok()) return status;
  return ctx.FinishResults();
}

Status RunTwoPhaseBody(NodeContext& ctx) {
  const SystemParams& p = ctx.params();
  const AggregationSpec& spec = ctx.spec();
  const int n = ctx.num_nodes();

  // Recovery bracket: load the latest durable checkpoint (if any) and
  // replay forward from it. A fault-free first attempt has no checkpoint
  // to restore, and checkpoint I/O runs on dedicated disks, so modeled
  // results are bit-identical with recovery on or off.
  RecoveryNode* rec = ctx.recovery();
  if (rec != nullptr) rec->BeginAttempt(ctx);
  const CheckpointState* restore = rec != nullptr ? rec->restore() : nullptr;

  SpillingAggregator global(&spec, ctx.disk(), ctx.max_hash_entries(),
                            ctx.options().spill_fanout,
                            "g2p_n" + std::to_string(ctx.node_id()));
  if (restore == nullptr) {
    // Each node's merge table owns ~1/n of the groups routed by key hash.
    MaybeEnableRadix(ctx, global, "global",
                     ctx.estimated_local_groups() / std::max(n, 1));
  }
  MergePlane merge(&ctx, &global,
                   MergePlane::Config{
                       [n](uint64_t h) { return DestOfKeyHash(h, n); },
                       /*broadcast_eos=*/true, /*supported=*/true});
  DataReceiver& recv = merge.receiver(n);

  // Phase 1: aggregate the local partition.
  SpillingAggregator local(&spec, ctx.disk(), ctx.max_hash_entries(),
                           ctx.options().spill_fanout,
                           "l2p_n" + std::to_string(ctx.node_id()));
  if (restore == nullptr) {
    MaybeEnableRadix(ctx, local, "local", ctx.estimated_local_groups());
  } else {
    // Radix staging is incompatible with restore (and is a wall-clock
    // optimization only), so replay attempts run plain tables.
    ADAPTAGG_RETURN_IF_ERROR(global.RestoreFrom(
        restore->global_partials.data(), restore->global_partials.size()));
    ADAPTAGG_RETURN_IF_ERROR(local.RestoreFrom(
        restore->local_partials.data(), restore->local_partials.size()));
    recv.SetReplayWatermarks(restore->fold_watermarks);
  }

  // Frozen pre-Finish image of the local table for merge-phase
  // checkpoints: Finish() consumes the table, but a crash during the
  // merge must be able to re-send the identical partial stream.
  std::vector<uint8_t> frozen_local;
  bool local_frozen = false;

  const int64_t resume_hwm =
      restore != nullptr && !restore->scan_complete ? restore->scan_hwm : 0;
  const bool skip_scan = restore != nullptr && restore->scan_complete;
  {
    ADAPTAGG_RETURN_IF_ERROR(ctx.EnterPhase("scan"));
    PhaseTimer scan_span = ctx.obs().StartPhase("scan");
    const double agg_cost = p.t_r() + p.t_h() + p.t_a();
    if (!skip_scan) {
      ADAPTAGG_RETURN_IF_ERROR(RunBatchedScan(
          ctx,
          [&](const TupleBatch& batch, int64_t base) -> Status {
            // Replay fast-forward: batches already folded into the
            // restored local table are rescanned but not re-aggregated.
            if (base + batch.size() <= resume_hwm) return Status::OK();
            ctx.clock().AddCpu(static_cast<double>(batch.size()) *
                               agg_cost);
            return local.AddProjectedBatch(batch);
          },
          [&]() -> Status {
            ctx.SyncDiskIo();
            ADAPTAGG_RETURN_IF_ERROR(recv.Poll());
            if (rec != nullptr &&
                ctx.stats().tuples_scanned >= resume_hwm &&
                rec->TickBatch()) {
              CheckpointState snap;
              snap.scan_hwm = ctx.stats().tuples_scanned;
              snap.scan_complete = false;
              snap.fold_watermarks = recv.folded_watermarks();
              if (local.Snapshot(&snap.local_partials) &&
                  global.Snapshot(&snap.global_partials)) {
                rec->WriteCheckpoint(ctx, snap);
              } else {
                rec->CountSkipped(ctx);
              }
            }
            return Status::OK();
          }));
    }

    if (rec != nullptr && rec->checkpointing()) {
      local_frozen = local.Snapshot(&frozen_local);
      recv.set_post_fold_hook([&]() -> Status {
        if (!rec->TickBatch()) return Status::OK();
        CheckpointState snap;
        snap.scan_hwm = ctx.stats().tuples_scanned;
        snap.scan_complete = true;
        snap.fold_watermarks = recv.folded_watermarks();
        if (local_frozen && global.Snapshot(&snap.global_partials)) {
          snap.local_partials = frozen_local;
          rec->WriteCheckpoint(ctx, snap);
        } else {
          rec->CountSkipped(ctx);
        }
        return Status::OK();
      });
    }

    // Ship local partials to their owner nodes. On replay this
    // regenerates the identical stream; receivers that already folded a
    // page skip it by its deterministic page_seq.
    ADAPTAGG_RETURN_IF_ERROR(SendPartials(ctx, local, merge));
    ADAPTAGG_RETURN_IF_ERROR(merge.FlushPartials());
    ADAPTAGG_RETURN_IF_ERROR(merge.SendDataEos());
    scan_span.AddArg("tuples_scanned", ctx.stats().tuples_scanned);
  }

  // Phase 2: merge everything routed here and emit final rows.
  {
    ADAPTAGG_RETURN_IF_ERROR(ctx.EnterPhase("merge"));
    PhaseTimer merge_span = ctx.obs().StartPhase("merge");
    ADAPTAGG_RETURN_IF_ERROR(recv.Drain());
  }
  return merge.FinishAndEmit();
}

Status RunRepartitioningBody(NodeContext& ctx) {
  const SystemParams& p = ctx.params();
  const AggregationSpec& spec = ctx.spec();
  const int n = ctx.num_nodes();

  // Recovery bracket. Repartitioning holds no local aggregate state, so
  // a checkpoint is the global table plus fold watermarks; replay always
  // rescans from tuple zero and relies on receiver-side dedupe.
  RecoveryNode* rec = ctx.recovery();
  if (rec != nullptr) rec->BeginAttempt(ctx);
  const CheckpointState* restore = rec != nullptr ? rec->restore() : nullptr;

  SpillingAggregator global(&spec, ctx.disk(), ctx.max_hash_entries(),
                            ctx.options().spill_fanout,
                            "grep_n" + std::to_string(ctx.node_id()));
  if (restore == nullptr) {
    // Repartitioning routes raw tuples by key hash, so this node's table
    // holds ~1/n of the groups.
    MaybeEnableRadix(ctx, global, "global",
                     ctx.estimated_local_groups() / std::max(n, 1));
  }
  MergePlane merge(&ctx, &global,
                   MergePlane::Config{
                       [n](uint64_t h) { return DestOfKeyHash(h, n); },
                       /*broadcast_eos=*/true, /*supported=*/true});
  DataReceiver& recv = merge.receiver(n);
  if (restore != nullptr) {
    ADAPTAGG_RETURN_IF_ERROR(global.RestoreFrom(
        restore->global_partials.data(), restore->global_partials.size()));
    recv.SetReplayWatermarks(restore->fold_watermarks);
  }
  if (rec != nullptr && rec->checkpointing()) {
    // Checkpoint on merge progress: every folded page ticks the cadence,
    // during the scan's polls and the final drain alike.
    recv.set_post_fold_hook([&]() -> Status {
      if (!rec->TickBatch()) return Status::OK();
      CheckpointState snap;
      snap.scan_hwm = 0;
      snap.scan_complete = false;
      snap.fold_watermarks = recv.folded_watermarks();
      if (global.Snapshot(&snap.global_partials)) {
        rec->WriteCheckpoint(ctx, snap);
      } else {
        rec->CountSkipped(ctx);
      }
      return Status::OK();
    });
  }
  Exchange ex(&ctx, MessageType::kRawPage, spec.projected_width(),
              kPhaseData);

  {
    ADAPTAGG_RETURN_IF_ERROR(ctx.EnterPhase("scan"));
    PhaseTimer scan_span = ctx.obs().StartPhase("scan");
    // Select already charged t_r + t_w; Rep adds hashing and destination
    // computation (§2.3).
    const double route_cost = p.t_h() + p.t_d();
    ADAPTAGG_RETURN_IF_ERROR(RunBatchedScan(
        ctx,
        [&](const TupleBatch& batch, int64_t) -> Status {
          const int sz = batch.size();
          ctx.clock().AddCpu(static_cast<double>(sz) * route_cost);
          ctx.stats().raw_records_sent += sz;
          return ex.AddBatch(batch);
        },
        [&]() {
          ctx.SyncDiskIo();
          return recv.Poll();
        }));

    ADAPTAGG_RETURN_IF_ERROR(ex.FlushAll());
    // No partial stream here, so the merge plane's EOS carries no
    // ledger; it is the seed broadcast either way.
    ADAPTAGG_RETURN_IF_ERROR(merge.SendDataEos());
    scan_span.AddArg("tuples_scanned", ctx.stats().tuples_scanned);
  }
  {
    ADAPTAGG_RETURN_IF_ERROR(ctx.EnterPhase("merge"));
    PhaseTimer merge_span = ctx.obs().StartPhase("merge");
    ADAPTAGG_RETURN_IF_ERROR(recv.Drain());
  }
  return merge.FinishAndEmit();
}

}  // namespace adaptagg
