#ifndef ADAPTAGG_CORE_PHASES_H_
#define ADAPTAGG_CORE_PHASES_H_

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "agg/batch_kernels.h"
#include "cluster/exchange.h"
#include "cluster/node_context.h"

namespace adaptagg {

/// Message phase ids. The Sampling algorithm runs a phase-0 estimation
/// round before the data phase all algorithms use; the non-seed merge
/// topologies (DESIGN.md §12) run their reduction and emit-scatter
/// rounds in dedicated phases so data-phase receivers can park early
/// reduction frames instead of misreading them.
inline constexpr uint32_t kPhaseSample = 0;
inline constexpr uint32_t kPhaseData = 1;
inline constexpr uint32_t kPhaseMergeReduce = 2;
inline constexpr uint32_t kPhaseMergeEmit = 3;

/// How often scanning loops service their inbox (tuples between polls).
/// Polling while producing is what lets Adaptive Repartitioning react to
/// end-of-phase messages mid-scan, and keeps inbox queues short.
inline constexpr int64_t kPollInterval = 128;

// The batch pipeline processes exactly one poll interval per batch, so
// batching perturbs neither the poll cadence nor any decision that
// observes it (A-Rep's follow-suit switch points land on the same tuple
// counts as the historical per-tuple loop).
static_assert(kBatchWidth == kPollInterval,
              "scan batches must match the inbox poll cadence");

/// The shared scan loop all six algorithms run: gathers the node's local
/// input one batch (= poll interval) at a time, hands each batch to
/// `process(batch, base)` — where `base` is the number of tuples scanned
/// before this batch, so the 1-based global index of batch record i is
/// base + i + 1 — and calls `poll()` after every full batch, exactly
/// where the per-tuple loops polled after every kPollInterval-th tuple.
/// `poll` is responsible for SyncDiskIo + inbox servicing (C-2P workers
/// never poll at all).
template <typename ProcessFn, typename PollFn>
Status RunBatchedScan(NodeContext& ctx, ProcessFn&& process, PollFn&& poll) {
  LocalScanner scan(&ctx);
  TupleBatch batch(&ctx.spec());
  while (true) {
    const int64_t base = ctx.stats().tuples_scanned;
    const int n = scan.FillBatch(batch);
    if (n == 0) break;
    ADAPTAGG_RETURN_IF_ERROR(process(batch, base));
    if (n == kBatchWidth) {
      ADAPTAGG_RETURN_IF_ERROR(poll());
    }
  }
  ctx.obs().agg_batch_identity_copy_tuples.Add(
      batch.stats().identity_copy_tuples);
  ADAPTAGG_RETURN_IF_ERROR(scan.status());
  ctx.SyncDiskIo();
  return Status::OK();
}

/// Folds a hash table's operation counters into the node's metric shard.
/// Call exactly once per table (the counters are cumulative), after its
/// last use — on Finish for spilling aggregators, at algorithm end for
/// bare adaptive tables.
inline void AccumulateHashTableObs(NodeContext& ctx,
                                   const HashTableStats& s) {
  NodeObs& o = ctx.obs();
  o.agg_ht_probes.Add(s.probes);
  o.agg_ht_hits.Add(s.hits);
  o.agg_ht_inserts.Add(s.inserts);
  o.agg_ht_resizes.Add(s.resizes);
  o.agg_batch_tuples.Add(s.batch_tuples);
  o.agg_batch_fused_tuples.Add(s.fused_tuples);
}

class MergePlane;

/// Consumes data-phase messages for one node: raw pages and partial pages
/// are validated, decoded into zero-copy batch views, and folded into the
/// node's global-phase aggregator with the paper's per-record merge
/// costs; end-of-stream markers are counted; end-of-phase signals (A-Rep)
/// are latched for the caller to observe. A forged or truncated page
/// header fails the receive with a descriptive kNetworkError before any
/// record byte is read.
class DataReceiver {
 public:
  /// Consumes one decoded run of received records (<= kBatchWidth,
  /// hashes computed). The view only stays valid for the call.
  using BatchSink = std::function<Status(const TupleBatch& batch)>;

  /// `expected_eos` is the number of kEndOfStream(kPhaseData) messages
  /// that conclude this node's global phase (N for partitioned exchanges,
  /// 0 for nodes that receive nothing, as in C-2P workers).
  DataReceiver(NodeContext* ctx, SpillingAggregator* agg, int expected_eos);

  /// Generic form: routes raw/partial record batches into arbitrary
  /// sinks (used by the sort-based algorithm, whose aggregator is not a
  /// SpillingAggregator).
  DataReceiver(NodeContext* ctx, BatchSink on_raw, BatchSink on_partial,
               int expected_eos);

  /// Processes everything currently queued; never blocks.
  Status Poll();

  /// Blocks until all expected end-of-stream markers have arrived.
  Status Drain();

  bool done() const { return eos_seen_ >= expected_eos_; }
  bool end_of_phase_seen() const { return end_of_phase_seen_; }

  /// Installs the fold watermarks from a restored checkpoint: a data page
  /// from origin o with page_seq <= wm[o] was already folded into the
  /// restored aggregator, so a replayed copy is counted
  /// (recovery.pages_deduped) and discarded — this is what keeps merges
  /// exactly-once across re-execution. Senders number their data pages
  /// 1,2,... per destination (Exchange::SendPage) and regenerate the
  /// identical stream on replay.
  void SetReplayWatermarks(const std::vector<uint64_t>& wm);

  /// Largest folded page_seq per origin — the checkpoint manifest's fold
  /// watermark vector.
  const std::vector<uint64_t>& folded_watermarks() const {
    return fold_watermark_;
  }

  /// Installs a hook run after each data page folds successfully. The
  /// recovery runtime uses it to checkpoint on merge-phase progress; an
  /// error from the hook fails the receive.
  void set_post_fold_hook(std::function<Status()> hook) {
    post_fold_hook_ = std::move(hook);
  }

  /// Attaches the run's merge plane: data-phase end-of-stream markers
  /// carrying a phantom-charge ledger are folded through it, and frames
  /// of the merge phases (kPhaseMergeReduce and later) are parked until
  /// Drain completes, then re-stashed for the topology's own receive
  /// loops. Installed by MergePlane::receiver().
  void set_merge_plane(MergePlane* plane) { merge_plane_ = plane; }

 private:
  Status Handle(Message& msg);
  /// Validates and decodes one page payload, feeding the sink one
  /// <= kBatchWidth view at a time; recycles the payload buffer.
  Status HandlePage(Message& msg, bool is_partial);

  NodeContext* ctx_;
  BatchSink on_raw_;
  BatchSink on_partial_;
  /// Zero-copy window over the payload being decoded.
  TupleBatch view_batch_;
  int expected_eos_;
  /// Which senders have delivered their data-phase end-of-stream: the
  /// failure detector's per-peer pending predicate (a peer is "awaited"
  /// during Drain until its EOS arrives).
  std::vector<bool> eos_from_;
  int eos_seen_ = 0;
  bool end_of_phase_seen_ = false;
  double partial_cost_;
  double raw_cost_;
  /// Largest folded page_seq per origin; pages at or below it are
  /// replayed duplicates and are skipped.
  std::vector<uint64_t> fold_watermark_;
  std::function<Status()> post_fold_hook_;
  MergePlane* merge_plane_ = nullptr;
  /// Merge-phase frames that raced ahead of the last data EOS; flushed
  /// to the context stash when Drain completes (stashing them earlier
  /// would loop: Recv pops the stash first).
  std::vector<Message> pending_merge_;
};

/// Emits every group of a finished local aggregation as a partial
/// record, charging t_w per record, into the run's merge plane — which
/// routes it over the seed exchange or the chosen merge topology (see
/// core/merge_topology.h, where these are defined).
Status SendPartials(NodeContext& ctx, SpillingAggregator& agg,
                    MergePlane& merge);

/// Same, but draining a bare (non-spilling) hash table; used by the
/// adaptive algorithms when flushing their local table on a switch.
Status SendTablePartials(NodeContext& ctx, AggHashTable& table,
                         MergePlane& merge);

/// Finishes the global aggregation: emits every group as a final result
/// row on this node.
Status EmitFinalResults(NodeContext& ctx, SpillingAggregator& global);

/// The Two Phase algorithm body (§2.2). Also invoked by Sampling when the
/// sample finds few groups.
Status RunTwoPhaseBody(NodeContext& ctx);

/// The Repartitioning algorithm body (§2.3). Also invoked by Sampling
/// when the sample finds many groups.
Status RunRepartitioningBody(NodeContext& ctx);

}  // namespace adaptagg

#endif  // ADAPTAGG_CORE_PHASES_H_
