#ifndef ADAPTAGG_CORE_QUERY_H_
#define ADAPTAGG_CORE_QUERY_H_

#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "common/algorithm_kind.h"
#include "exec/expression.h"

namespace adaptagg {

/// A compiled aggregate query: the paper's canonical form
///
///   SELECT <group cols>, <aggregates> FROM R
///   [WHERE <predicate>] GROUP BY <cols> [HAVING <predicate>]
///
/// ready to execute on a Cluster with any of the parallel algorithms.
struct Query {
  AggregationSpec spec;
  ExprPtr where;   ///< over the input schema; may be null
  ExprPtr having;  ///< over spec.final_schema(); may be null

  /// Runs the query. `options.where/having` are overwritten from the
  /// query; everything else in `options` is honored.
  RunResult Execute(Cluster& cluster, PartitionedRelation& rel,
                    AlgorithmKind algorithm,
                    AlgorithmOptions options = {}) const;

  std::string ToString() const;
};

/// Fluent builder for Query. Columns are referenced by name against the
/// input schema; Build() resolves and validates everything.
///
///   auto q = QueryBuilder(&schema)
///                .Where(Gt(ColNamed("v"), Lit(int64_t{100})))
///                .GroupBy({"g"})
///                .Count("cnt")
///                .Sum("v", "total")
///                .Having(Ge(ColNamed("cnt"), Lit(int64_t{2})))
///                .Build();
class QueryBuilder {
 public:
  /// `input` must outlive the built Query.
  explicit QueryBuilder(const Schema* input) : input_(input) {}

  QueryBuilder& Where(ExprPtr predicate);
  QueryBuilder& GroupBy(std::vector<std::string> columns);
  QueryBuilder& Count(std::string as);
  QueryBuilder& Sum(const std::string& column, std::string as);
  QueryBuilder& Avg(const std::string& column, std::string as);
  QueryBuilder& Min(const std::string& column, std::string as);
  QueryBuilder& Max(const std::string& column, std::string as);
  QueryBuilder& Having(ExprPtr predicate);

  /// Resolves names, compiles the AggregationSpec, validates predicates.
  /// Zero aggregates with a GROUP BY is duplicate elimination
  /// (SELECT DISTINCT).
  Result<Query> Build() const;

 private:
  struct PendingAgg {
    AggKind kind;
    std::string column;  // empty for COUNT(*)
    std::string as;
  };

  const Schema* input_;
  ExprPtr where_;
  ExprPtr having_;
  std::vector<std::string> group_by_;
  std::vector<PendingAgg> aggs_;
};

}  // namespace adaptagg

#endif  // ADAPTAGG_CORE_QUERY_H_
