#include "core/algorithm.h"
#include "core/merge_topology.h"
#include "core/phases.h"

namespace adaptagg {
namespace internal_core {

/// [Gra93]'s optimized Two Phase, discussed (and argued against) in §3.2:
/// when the local hash table fills, locally generated tuples that miss
/// the table are hash-partitioned and forwarded to their owner's global
/// phase instead of being spooled locally — but the local table is kept
/// (and keeps absorbing hits) until the scan ends. Compared with A-2P it
/// (1) still sends tuples that find no entry at the destination, (2)
/// passes every tuple through both phases, and (3) never frees the local
/// phase's memory. Implemented as an ablation baseline.
class GraefeTwoPhase : public Algorithm {
 public:
  std::string name() const override { return "graefe-two-phase"; }

  Status RunNode(NodeContext& ctx) const override {
    const SystemParams& p = ctx.params();
    const AggregationSpec& spec = ctx.spec();
    const int n = ctx.num_nodes();

    SpillingAggregator global(&spec, ctx.disk(), ctx.max_hash_entries(),
                              ctx.options().spill_fanout,
                              "ggra_n" + std::to_string(ctx.node_id()));
    MergePlane merge(&ctx, &global,
                     MergePlane::Config{
                         [n](uint64_t h) { return DestOfKeyHash(h, n); },
                         /*broadcast_eos=*/true, /*supported=*/true});
    DataReceiver& recv = merge.receiver(n);
    Exchange ex_raw(&ctx, MessageType::kRawPage, spec.projected_width(),
                    kPhaseData);

    AggHashTable local(&spec, ctx.max_hash_entries());
    {
      ADAPTAGG_RETURN_IF_ERROR(ctx.EnterPhase("scan"));
      PhaseTimer scan_span = ctx.obs().StartPhase("scan");
      const double local_cost = p.t_r() + p.t_h() + p.t_a();
      std::vector<int> overflow;
      ADAPTAGG_RETURN_IF_ERROR(RunBatchedScan(
          ctx,
          [&](const TupleBatch& batch, int64_t base) -> Status {
            ctx.clock().AddCpu(static_cast<double>(batch.size()) *
                               local_cost);
            overflow.clear();
            local.UpsertProjectedBatchOverflow(batch, 0, overflow);
            if (!overflow.empty()) {
              if (!ctx.stats().switched) {
                ctx.stats().switched = true;
                ctx.stats().switch_at_tuple = base + overflow.front() + 1;
                ctx.obs().RecordSwitch(
                    "switch.overflow_forwarding",
                    {{"at_tuple", base + overflow.front() + 1},
                     {"table_size", local.size()},
                     {"table_limit", ctx.max_hash_entries()}});
              }
              // Forward the overflow tuples to their owners' global
              // phases in one scatter.
              ctx.clock().AddCpu(static_cast<double>(overflow.size()) *
                                 p.t_d());
              ctx.stats().raw_records_sent +=
                  static_cast<int64_t>(overflow.size());
              ADAPTAGG_RETURN_IF_ERROR(ex_raw.AddIndices(
                  batch, overflow.data(),
                  static_cast<int>(overflow.size())));
            }
            return Status::OK();
          },
          [&]() {
            ctx.SyncDiskIo();
            return recv.Poll();
          }));

      ADAPTAGG_RETURN_IF_ERROR(SendTablePartials(ctx, local, merge));
      ADAPTAGG_RETURN_IF_ERROR(merge.FlushPartials());
      ADAPTAGG_RETURN_IF_ERROR(ex_raw.FlushAll());
      ADAPTAGG_RETURN_IF_ERROR(merge.SendDataEos());
      scan_span.AddArg("tuples_scanned", ctx.stats().tuples_scanned);
    }
    AccumulateHashTableObs(ctx, local.stats());

    {
      ADAPTAGG_RETURN_IF_ERROR(ctx.EnterPhase("merge"));
      PhaseTimer merge_span = ctx.obs().StartPhase("merge");
      ADAPTAGG_RETURN_IF_ERROR(recv.Drain());
    }
    return merge.FinishAndEmit();
  }
};

}  // namespace internal_core

std::unique_ptr<Algorithm> MakeGraefeTwoPhase() {
  return std::make_unique<internal_core::GraefeTwoPhase>();
}

}  // namespace adaptagg
