#ifndef ADAPTAGG_CORE_ALGORITHM_H_
#define ADAPTAGG_CORE_ALGORITHM_H_

#include <memory>
#include <string>

#include "cluster/cluster.h"
#include "common/algorithm_kind.h"

namespace adaptagg {

/// Builds an executable algorithm for the cluster engine. The returned
/// object is stateless and reusable across runs and clusters.
std::unique_ptr<Algorithm> MakeAlgorithm(AlgorithmKind kind);

}  // namespace adaptagg

#endif  // ADAPTAGG_CORE_ALGORITHM_H_
