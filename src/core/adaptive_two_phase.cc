#include "core/algorithm.h"
#include "core/phases.h"

namespace adaptagg {
namespace internal_core {

/// §3.2. Starts as Two Phase under the common-case assumption that groups
/// are few. The moment a node's local hash table fills (the point where
/// plain 2P would begin intermediate I/O), that node — independently of
/// all others — flushes its accumulated partials to their owner nodes,
/// frees the table, and repartitions its remaining raw tuples. The global
/// phase merges partial and raw records into one hash table.
class AdaptiveTwoPhase : public Algorithm {
 public:
  std::string name() const override { return "adaptive-two-phase"; }

  Status RunNode(NodeContext& ctx) const override {
    const SystemParams& p = ctx.params();
    const AggregationSpec& spec = ctx.spec();
    const int n = ctx.num_nodes();

    SpillingAggregator global(&spec, ctx.disk(), ctx.max_hash_entries(),
                              ctx.options().spill_fanout,
                              "ga2p_n" + std::to_string(ctx.node_id()));
    DataReceiver recv(&ctx, &global, n);
    Exchange ex_partial(&ctx, MessageType::kPartialPage,
                        spec.partial_width(), kPhaseData);
    Exchange ex_raw(&ctx, MessageType::kRawPage, spec.projected_width(),
                    kPhaseData);
    auto dest = [n](uint64_t h) { return DestOfKeyHash(h, n); };

    // The switch threshold: the paper switches exactly at memory overflow
    // (fraction 1.0); the ablation knob scales it down.
    int64_t limit = std::max<int64_t>(
        1, static_cast<int64_t>(static_cast<double>(ctx.max_hash_entries()) *
                                ctx.options().switch_fill_fraction));
    AggHashTable local(&spec, limit);

    bool repartition_mode = false;
    {
      LocalScanner scan(&ctx);
      std::vector<uint8_t> proj(
          static_cast<size_t>(spec.projected_width()));
      const double local_cost = p.t_r() + p.t_h() + p.t_a();
      const double route_cost = p.t_h() + p.t_d();
      int64_t since_poll = 0;
      for (TupleView t = scan.Next(); t.valid(); t = scan.Next()) {
        spec.ProjectRaw(t, proj.data());
        if (!repartition_mode) {
          ctx.clock().AddCpu(local_cost);
          uint64_t h = spec.HashKey(spec.KeyOfProjected(proj.data()));
          AggHashTable::UpsertResult r = local.UpsertProjected(proj.data(), h);
          if (r == AggHashTable::UpsertResult::kFull) {
            // Memory overflow: flush accumulated partials, free the
            // table, and repartition from here on.
            ctx.stats().switched = true;
            ctx.stats().switch_at_tuple = ctx.stats().tuples_scanned;
            ADAPTAGG_RETURN_IF_ERROR(
                SendTablePartials(ctx, local, ex_partial, dest));
            repartition_mode = true;
            ctx.clock().AddCpu(p.t_d());
            ++ctx.stats().raw_records_sent;
            ADAPTAGG_RETURN_IF_ERROR(ex_raw.Add(DestOfKeyHash(h, n),
                                                proj.data()));
          }
        } else {
          ctx.clock().AddCpu(route_cost);
          uint64_t h = spec.HashKey(spec.KeyOfProjected(proj.data()));
          ++ctx.stats().raw_records_sent;
          ADAPTAGG_RETURN_IF_ERROR(
              ex_raw.Add(DestOfKeyHash(h, n), proj.data()));
        }
        if (++since_poll >= kPollInterval) {
          since_poll = 0;
          ctx.SyncDiskIo();
          ADAPTAGG_RETURN_IF_ERROR(recv.Poll());
        }
      }
      ADAPTAGG_RETURN_IF_ERROR(scan.status());
      ctx.SyncDiskIo();
    }

    if (!repartition_mode) {
      // Never overflowed: behave exactly like Two Phase's handoff.
      ADAPTAGG_RETURN_IF_ERROR(
          SendTablePartials(ctx, local, ex_partial, dest));
    }
    ADAPTAGG_RETURN_IF_ERROR(ex_partial.FlushAll());
    ADAPTAGG_RETURN_IF_ERROR(ex_raw.FlushAll());
    ADAPTAGG_RETURN_IF_ERROR(BroadcastEos(&ctx, kPhaseData));

    ADAPTAGG_RETURN_IF_ERROR(recv.Drain());
    return EmitFinalResults(ctx, global);
  }
};

}  // namespace internal_core

std::unique_ptr<Algorithm> MakeAdaptiveTwoPhase() {
  return std::make_unique<internal_core::AdaptiveTwoPhase>();
}

}  // namespace adaptagg
