#include "cluster/recovery.h"
#include "core/algorithm.h"
#include "core/merge_topology.h"
#include "core/phases.h"

namespace adaptagg {
namespace internal_core {

/// §3.2. Starts as Two Phase under the common-case assumption that groups
/// are few. The moment a node's local hash table fills (the point where
/// plain 2P would begin intermediate I/O), that node — independently of
/// all others — flushes its accumulated partials to their owner nodes,
/// frees the table, and repartitions its remaining raw tuples. The global
/// phase merges partial and raw records into one hash table.
class AdaptiveTwoPhase : public Algorithm {
 public:
  std::string name() const override { return "adaptive-two-phase"; }

  Status RunNode(NodeContext& ctx) const override {
    const SystemParams& p = ctx.params();
    const AggregationSpec& spec = ctx.spec();
    const int n = ctx.num_nodes();

    // Recovery bracket. The scan side is stateful (the local table and
    // the switch decision), but everything it sends is regenerated
    // deterministically by a from-scratch rescan — same switch tuple,
    // same page stream, same page_seq numbering. So, as in
    // Repartitioning, a checkpoint holds only the receiver side: the
    // global merge table plus per-origin fold watermarks, and replay
    // dedupes re-sent pages against the watermarks.
    RecoveryNode* rec = ctx.recovery();
    if (rec != nullptr) rec->BeginAttempt(ctx);
    const CheckpointState* restore =
        rec != nullptr ? rec->restore() : nullptr;

    SpillingAggregator global(&spec, ctx.disk(), ctx.max_hash_entries(),
                              ctx.options().spill_fanout,
                              "ga2p_n" + std::to_string(ctx.node_id()));
    MergePlane merge(&ctx, &global,
                     MergePlane::Config{
                         [n](uint64_t h) { return DestOfKeyHash(h, n); },
                         /*broadcast_eos=*/true, /*supported=*/true});
    DataReceiver& recv = merge.receiver(n);
    if (restore != nullptr) {
      ADAPTAGG_RETURN_IF_ERROR(global.RestoreFrom(
          restore->global_partials.data(), restore->global_partials.size()));
      recv.SetReplayWatermarks(restore->fold_watermarks);
    }
    if (rec != nullptr && rec->checkpointing()) {
      recv.set_post_fold_hook([&]() -> Status {
        if (!rec->TickBatch()) return Status::OK();
        CheckpointState snap;
        snap.scan_hwm = 0;
        snap.scan_complete = false;
        snap.fold_watermarks = recv.folded_watermarks();
        if (global.Snapshot(&snap.global_partials)) {
          rec->WriteCheckpoint(ctx, snap);
        } else {
          rec->CountSkipped(ctx);
        }
        return Status::OK();
      });
    }
    // Raw repartitioned tuples always travel the seed wire; only the
    // partial stream goes through the merge plane.
    Exchange ex_raw(&ctx, MessageType::kRawPage, spec.projected_width(),
                    kPhaseData);

    // The switch threshold: the paper switches exactly at memory overflow
    // (fraction 1.0); the ablation knob scales it down.
    int64_t limit = std::max<int64_t>(
        1, static_cast<int64_t>(static_cast<double>(ctx.max_hash_entries()) *
                                ctx.options().switch_fill_fraction));
    AggHashTable local(&spec, limit);

    bool repartition_mode = false;
    {
      ADAPTAGG_RETURN_IF_ERROR(ctx.EnterPhase("scan"));
      PhaseTimer scan_span = ctx.obs().StartPhase("scan");
      const double local_cost = p.t_r() + p.t_h() + p.t_a();
      const double route_cost = p.t_h() + p.t_d();
      ADAPTAGG_RETURN_IF_ERROR(RunBatchedScan(
          ctx,
          [&](const TupleBatch& batch, int64_t base) -> Status {
            const int sz = batch.size();
            int i = 0;
            while (i < sz && !repartition_mode) {
              // Stop-at-full upsert: batch record base-relative index i
              // + consumed is the precise tuple where the table filled.
              int consumed = local.UpsertProjectedBatch(batch, i);
              ctx.clock().AddCpu(static_cast<double>(consumed) *
                                 local_cost);
              i += consumed;
              if (i < sz) {
                // Memory overflow: flush accumulated partials, free the
                // table, and repartition from here on.
                ctx.clock().AddCpu(local_cost);
                ctx.stats().switched = true;
                ctx.stats().switch_at_tuple = base + i + 1;
                ctx.obs().RecordSwitch(
                    "switch.overflow",
                    {{"at_tuple", base + i + 1},
                     {"table_size", local.size()},
                     {"table_limit", limit}});
                ADAPTAGG_RETURN_IF_ERROR(
                    SendTablePartials(ctx, local, merge));
                repartition_mode = true;
                ctx.clock().AddCpu(p.t_d());
                ++ctx.stats().raw_records_sent;
                ADAPTAGG_RETURN_IF_ERROR(ex_raw.AddBatch(batch, i, i + 1));
                ++i;
              }
            }
            if (i < sz) {
              ctx.clock().AddCpu(static_cast<double>(sz - i) * route_cost);
              ctx.stats().raw_records_sent += sz - i;
              ADAPTAGG_RETURN_IF_ERROR(ex_raw.AddBatch(batch, i));
            }
            return Status::OK();
          },
          [&]() {
            ctx.SyncDiskIo();
            return recv.Poll();
          }));

      if (!repartition_mode) {
        // Never overflowed: behave exactly like Two Phase's handoff.
        ADAPTAGG_RETURN_IF_ERROR(SendTablePartials(ctx, local, merge));
      }
      ADAPTAGG_RETURN_IF_ERROR(merge.FlushPartials());
      ADAPTAGG_RETURN_IF_ERROR(ex_raw.FlushAll());
      ADAPTAGG_RETURN_IF_ERROR(merge.SendDataEos());
      scan_span.AddArg("tuples_scanned", ctx.stats().tuples_scanned);
      scan_span.AddArg("switched", repartition_mode ? 1 : 0);
    }
    AccumulateHashTableObs(ctx, local.stats());

    {
      ADAPTAGG_RETURN_IF_ERROR(ctx.EnterPhase("merge"));
      PhaseTimer merge_span = ctx.obs().StartPhase("merge");
      ADAPTAGG_RETURN_IF_ERROR(recv.Drain());
    }
    return merge.FinishAndEmit();
  }
};

}  // namespace internal_core

std::unique_ptr<Algorithm> MakeAdaptiveTwoPhase() {
  return std::make_unique<internal_core::AdaptiveTwoPhase>();
}

}  // namespace adaptagg
