#include "core/algorithm.h"
#include "core/merge_topology.h"
#include "core/phases.h"

namespace adaptagg {
namespace internal_core {

/// §2.1. Every node aggregates its partition locally and sends the
/// partial results to a single coordinator (node 0), which merges them
/// sequentially and stores the final result. Simple, but the coordinator
/// is a serial bottleneck as soon as the number of groups grows.
class CentralizedTwoPhase : public Algorithm {
 public:
  std::string name() const override { return "centralized-two-phase"; }

  Status RunNode(NodeContext& ctx) const override {
    const SystemParams& p = ctx.params();
    const AggregationSpec& spec = ctx.spec();
    const int n = ctx.num_nodes();
    const int kCoordinator = 0;

    // Only the coordinator merges; workers expect no incoming traffic.
    SpillingAggregator global(&spec, ctx.disk(), ctx.max_hash_entries(),
                              ctx.options().spill_fanout,
                              "gc2p_n" + std::to_string(ctx.node_id()));
    MergePlane merge(&ctx, &global,
                     MergePlane::Config{
                         [](uint64_t) { return kCoordinator; },
                         /*broadcast_eos=*/false, /*supported=*/true});
    DataReceiver& recv = merge.receiver(ctx.is_coordinator() ? n : 0);

    // Phase 1: local aggregation.
    SpillingAggregator local(&spec, ctx.disk(), ctx.max_hash_entries(),
                             ctx.options().spill_fanout,
                             "lc2p_n" + std::to_string(ctx.node_id()));
    {
      ADAPTAGG_RETURN_IF_ERROR(ctx.EnterPhase("scan"));
      PhaseTimer scan_span = ctx.obs().StartPhase("scan");
      const double agg_cost = p.t_r() + p.t_h() + p.t_a();
      ADAPTAGG_RETURN_IF_ERROR(RunBatchedScan(
          ctx,
          [&](const TupleBatch& batch, int64_t) {
            ctx.clock().AddCpu(static_cast<double>(batch.size()) *
                               agg_cost);
            return local.AddProjectedBatch(batch);
          },
          [&]() {
            // Workers expect no traffic before their send; only the
            // coordinator services its inbox mid-scan. Workers still run
            // the fault/heartbeat hooks so the coordinator can tell a
            // slow worker from a dead one.
            if (!ctx.is_coordinator()) {
              ctx.PollRuntime();
              return Status::OK();
            }
            ctx.SyncDiskIo();
            return recv.Poll();
          }));

      // All partials go to the coordinator.
      ADAPTAGG_RETURN_IF_ERROR(SendPartials(ctx, local, merge));
      ADAPTAGG_RETURN_IF_ERROR(merge.FlushPartials());
      ADAPTAGG_RETURN_IF_ERROR(merge.SendDataEos());
      scan_span.AddArg("tuples_scanned", ctx.stats().tuples_scanned);
    }

    if (merge.seed_wire() && !ctx.is_coordinator()) {
      // Seed wire: workers are done once their partials left. The
      // non-seed topologies need every node in the reduction and emit
      // rounds, so those fall through to the shared tail below.
      ADAPTAGG_RETURN_IF_ERROR(ctx.EnterPhase("emit"));
      PhaseTimer emit_span = ctx.obs().StartPhase("emit");
      return ctx.FinishResults();
    }

    // Phase 2: sequential merge and store (workers drain an empty
    // expectation and emit no rows on the non-seed topologies).
    {
      ADAPTAGG_RETURN_IF_ERROR(ctx.EnterPhase("merge"));
      PhaseTimer merge_span = ctx.obs().StartPhase("merge");
      ADAPTAGG_RETURN_IF_ERROR(recv.Drain());
    }
    return merge.FinishAndEmit();
  }
};

}  // namespace internal_core

std::unique_ptr<Algorithm> MakeCentralizedTwoPhase() {
  return std::make_unique<internal_core::CentralizedTwoPhase>();
}

}  // namespace adaptagg
