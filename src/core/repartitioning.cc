#include "core/algorithm.h"
#include "core/phases.h"

namespace adaptagg {
namespace internal_core {

/// §2.3. Hash-partitions the raw (projected) tuples on the GROUP BY
/// attributes first, then every node aggregates its share once. No
/// duplicated work and minimal memory per node, at the price of shipping
/// the whole relation across the interconnect; underutilizes the cluster
/// when there are fewer groups than nodes.
class Repartitioning : public Algorithm {
 public:
  std::string name() const override { return "repartitioning"; }

  Status RunNode(NodeContext& ctx) const override {
    return RunRepartitioningBody(ctx);
  }
};

}  // namespace internal_core

std::unique_ptr<Algorithm> MakeRepartitioning() {
  return std::make_unique<internal_core::Repartitioning>();
}

}  // namespace adaptagg
