#include <unordered_set>

#include "core/algorithm.h"
#include "core/phases.h"

namespace adaptagg {
namespace internal_core {

/// §3.3. Starts as Repartitioning (the right call when the optimizer
/// expects many groups). Each node watches how many distinct groups it
/// has seen in its first `init_seg` scanned tuples; if too few, it
/// broadcasts an end-of-phase message and switches to the Adaptive Two
/// Phase strategy for its remaining tuples. Nodes receiving end-of-phase
/// follow suit. The global phase keeps the hash table built during the
/// repartitioning segment, so nothing already shipped is lost.
class AdaptiveRepartitioning : public Algorithm {
 public:
  std::string name() const override { return "adaptive-repartitioning"; }

  Status RunNode(NodeContext& ctx) const override {
    const SystemParams& p = ctx.params();
    const AggregationSpec& spec = ctx.spec();
    const int n = ctx.num_nodes();

    SpillingAggregator global(&spec, ctx.disk(), ctx.max_hash_entries(),
                              ctx.options().spill_fanout,
                              "garep_n" + std::to_string(ctx.node_id()));
    DataReceiver recv(&ctx, &global, n);
    Exchange ex_partial(&ctx, MessageType::kPartialPage,
                        spec.partial_width(), kPhaseData);
    Exchange ex_raw(&ctx, MessageType::kRawPage, spec.projected_width(),
                    kPhaseData);
    auto dest = [n](uint64_t h) { return DestOfKeyHash(h, n); };

    AggHashTable local(&spec, ctx.max_hash_entries());

    enum class Mode { kRepartition, kLocalAgg, kRepartitionAgain };
    Mode mode = Mode::kRepartition;
    bool broadcast_sent = false;

    // Distinct groups among this node's first init_seg tuples (tracked by
    // key hash; collisions only make the count conservative).
    const int64_t init_seg = ctx.options().init_seg;
    const int64_t few_groups = ctx.few_groups_threshold();
    std::unordered_set<uint64_t> seen_groups;
    bool judged = false;

    auto switch_to_local = [&](bool own_decision) -> Status {
      ctx.stats().switched = true;
      ctx.stats().switch_at_tuple = ctx.stats().tuples_scanned;
      mode = Mode::kLocalAgg;
      if (own_decision && !broadcast_sent) {
        broadcast_sent = true;
        Message eop;
        eop.type = MessageType::kEndOfPhase;
        eop.phase = kPhaseData;
        ADAPTAGG_RETURN_IF_ERROR(Broadcast(&ctx, eop));
      } else if (!own_decision && !broadcast_sent) {
        // Follow suit (§3.3): acknowledge with our own end-of-phase.
        broadcast_sent = true;
        Message eop;
        eop.type = MessageType::kEndOfPhase;
        eop.phase = kPhaseData;
        ADAPTAGG_RETURN_IF_ERROR(Broadcast(&ctx, eop));
      }
      return Status::OK();
    };

    {
      LocalScanner scan(&ctx);
      std::vector<uint8_t> proj(
          static_cast<size_t>(spec.projected_width()));
      const double route_cost = p.t_h() + p.t_d();
      const double local_cost = p.t_r() + p.t_h() + p.t_a();
      int64_t since_poll = 0;
      for (TupleView t = scan.Next(); t.valid(); t = scan.Next()) {
        spec.ProjectRaw(t, proj.data());
        uint64_t h = spec.HashKey(spec.KeyOfProjected(proj.data()));
        switch (mode) {
          case Mode::kRepartition: {
            ctx.clock().AddCpu(route_cost);
            ++ctx.stats().raw_records_sent;
            ADAPTAGG_RETURN_IF_ERROR(
                ex_raw.Add(DestOfKeyHash(h, n), proj.data()));
            if (!judged) {
              if (static_cast<int64_t>(seen_groups.size()) <= few_groups) {
                seen_groups.insert(h);
              }
              if (ctx.stats().tuples_scanned >= init_seg) {
                judged = true;
                if (static_cast<int64_t>(seen_groups.size()) < few_groups) {
                  ADAPTAGG_RETURN_IF_ERROR(
                      switch_to_local(/*own_decision=*/true));
                }
              }
            }
            break;
          }
          case Mode::kLocalAgg: {
            ctx.clock().AddCpu(local_cost);
            AggHashTable::UpsertResult r =
                local.UpsertProjected(proj.data(), h);
            if (r == AggHashTable::UpsertResult::kFull) {
              // A-2P's own overflow switch: flush and repartition again.
              ADAPTAGG_RETURN_IF_ERROR(
                  SendTablePartials(ctx, local, ex_partial, dest));
              mode = Mode::kRepartitionAgain;
              ctx.clock().AddCpu(p.t_d());
              ++ctx.stats().raw_records_sent;
              ADAPTAGG_RETURN_IF_ERROR(
                  ex_raw.Add(DestOfKeyHash(h, n), proj.data()));
            }
            break;
          }
          case Mode::kRepartitionAgain: {
            ctx.clock().AddCpu(route_cost);
            ++ctx.stats().raw_records_sent;
            ADAPTAGG_RETURN_IF_ERROR(
                ex_raw.Add(DestOfKeyHash(h, n), proj.data()));
            break;
          }
        }
        if (++since_poll >= kPollInterval) {
          since_poll = 0;
          ctx.SyncDiskIo();
          ADAPTAGG_RETURN_IF_ERROR(recv.Poll());
          if (mode == Mode::kRepartition && recv.end_of_phase_seen()) {
            ADAPTAGG_RETURN_IF_ERROR(
                switch_to_local(/*own_decision=*/false));
          }
        }
      }
      ADAPTAGG_RETURN_IF_ERROR(scan.status());
      ctx.SyncDiskIo();
    }

    if (mode == Mode::kLocalAgg && local.size() > 0) {
      ADAPTAGG_RETURN_IF_ERROR(
          SendTablePartials(ctx, local, ex_partial, dest));
    }
    ADAPTAGG_RETURN_IF_ERROR(ex_partial.FlushAll());
    ADAPTAGG_RETURN_IF_ERROR(ex_raw.FlushAll());
    ADAPTAGG_RETURN_IF_ERROR(BroadcastEos(&ctx, kPhaseData));

    ADAPTAGG_RETURN_IF_ERROR(recv.Drain());
    return EmitFinalResults(ctx, global);
  }
};

}  // namespace internal_core

std::unique_ptr<Algorithm> MakeAdaptiveRepartitioning() {
  return std::make_unique<internal_core::AdaptiveRepartitioning>();
}

}  // namespace adaptagg
