#include <algorithm>
#include <unordered_set>

#include "core/algorithm.h"
#include "core/merge_topology.h"
#include "core/phases.h"

namespace adaptagg {
namespace internal_core {

/// §3.3. Starts as Repartitioning (the right call when the optimizer
/// expects many groups). Each node watches how many distinct groups it
/// has seen in its first `init_seg` scanned tuples; if too few, it
/// broadcasts an end-of-phase message and switches to the Adaptive Two
/// Phase strategy for its remaining tuples. Nodes receiving end-of-phase
/// follow suit. The global phase keeps the hash table built during the
/// repartitioning segment, so nothing already shipped is lost.
class AdaptiveRepartitioning : public Algorithm {
 public:
  std::string name() const override { return "adaptive-repartitioning"; }

  Status RunNode(NodeContext& ctx) const override {
    const SystemParams& p = ctx.params();
    const AggregationSpec& spec = ctx.spec();
    const int n = ctx.num_nodes();

    SpillingAggregator global(&spec, ctx.disk(), ctx.max_hash_entries(),
                              ctx.options().spill_fanout,
                              "garep_n" + std::to_string(ctx.node_id()));
    MergePlane merge(&ctx, &global,
                     MergePlane::Config{
                         [n](uint64_t h) { return DestOfKeyHash(h, n); },
                         /*broadcast_eos=*/true, /*supported=*/true});
    DataReceiver& recv = merge.receiver(n);
    Exchange ex_raw(&ctx, MessageType::kRawPage, spec.projected_width(),
                    kPhaseData);

    AggHashTable local(&spec, ctx.max_hash_entries());

    enum class Mode { kRepartition, kLocalAgg, kRepartitionAgain };
    Mode mode = Mode::kRepartition;
    bool broadcast_sent = false;

    // Distinct groups among this node's first init_seg tuples (tracked by
    // key hash; collisions only make the count conservative).
    const int64_t init_seg = ctx.options().init_seg;
    const int64_t few_groups = ctx.few_groups_threshold();
    std::unordered_set<uint64_t> seen_groups;
    bool judged = false;

    auto switch_to_local = [&](bool own_decision,
                               int64_t at_tuple) -> Status {
      ctx.stats().switched = true;
      ctx.stats().switch_at_tuple = at_tuple;
      ctx.obs().RecordSwitch(
          "switch.end_of_phase",
          {{"at_tuple", at_tuple},
           {"own_decision", own_decision ? 1 : 0},
           {"seen_groups", static_cast<int64_t>(seen_groups.size())},
           {"init_seg", init_seg},
           {"few_groups_threshold", few_groups}});
      mode = Mode::kLocalAgg;
      if (own_decision && !broadcast_sent) {
        broadcast_sent = true;
        Message eop;
        eop.type = MessageType::kEndOfPhase;
        eop.phase = kPhaseData;
        ADAPTAGG_RETURN_IF_ERROR(Broadcast(&ctx, eop));
      } else if (!own_decision && !broadcast_sent) {
        // Follow suit (§3.3): acknowledge with our own end-of-phase.
        broadcast_sent = true;
        Message eop;
        eop.type = MessageType::kEndOfPhase;
        eop.phase = kPhaseData;
        ADAPTAGG_RETURN_IF_ERROR(Broadcast(&ctx, eop));
      }
      return Status::OK();
    };

    {
      ADAPTAGG_RETURN_IF_ERROR(ctx.EnterPhase("scan"));
      PhaseTimer scan_span = ctx.obs().StartPhase("scan");
      const double route_cost = p.t_h() + p.t_d();
      const double local_cost = p.t_r() + p.t_h() + p.t_a();

      // Routes batch records [i, sz) to their owner nodes in one go.
      auto route_run = [&](const TupleBatch& batch, int i,
                           int sz) -> Status {
        ctx.clock().AddCpu(static_cast<double>(sz - i) * route_cost);
        ctx.stats().raw_records_sent += sz - i;
        return ex_raw.AddBatch(batch, i, sz);
      };

      auto process = [&](const TupleBatch& batch, int64_t base) -> Status {
        const int sz = batch.size();
        int i = 0;
        while (i < sz) {
          switch (mode) {
            case Mode::kRepartition: {
              if (judged) {
                // The judgment is behind us and the mode can only change
                // at a poll: bulk-route the rest of the batch.
                ADAPTAGG_RETURN_IF_ERROR(route_run(batch, i, sz));
                i = sz;
                break;
              }
              // Until the init_seg judgment: census the hashes tuple by
              // tuple up to the judgment index, batch-route that prefix,
              // then decide — the census contents and the decision tuple
              // are exactly the per-tuple loop's (routing and the census
              // are independent, so their relative order is free).
              // The per-tuple loop judged after processing the first
              // tuple whose 1-based global index reached init_seg; the
              // prefix it processed this batch is [0, stop).
              const int64_t until_judgment = init_seg - base;
              const int stop = static_cast<int>(
                  std::clamp<int64_t>(until_judgment, 1, sz));
              const bool judge_now = until_judgment <= sz;
              for (int j = i; j < stop; ++j) {
                if (static_cast<int64_t>(seen_groups.size()) <=
                    few_groups) {
                  seen_groups.insert(batch.hash(j));
                }
              }
              ADAPTAGG_RETURN_IF_ERROR(route_run(batch, i, stop));
              i = stop;
              if (judge_now) {
                judged = true;
                if (static_cast<int64_t>(seen_groups.size()) <
                    few_groups) {
                  ADAPTAGG_RETURN_IF_ERROR(switch_to_local(
                      /*own_decision=*/true, base + stop));
                }
              }
              break;
            }
            case Mode::kLocalAgg: {
              int consumed = local.UpsertProjectedBatch(batch, i);
              ctx.clock().AddCpu(static_cast<double>(consumed) *
                                 local_cost);
              i += consumed;
              if (i < sz) {
                // A-2P's own overflow switch: flush and repartition
                // again, starting with the tuple that found the table
                // full.
                ctx.clock().AddCpu(local_cost);
                ctx.obs().RecordSwitch(
                    "switch.overflow",
                    {{"at_tuple", base + i + 1},
                     {"table_size", local.size()},
                     {"table_limit", ctx.max_hash_entries()}});
                ADAPTAGG_RETURN_IF_ERROR(
                    SendTablePartials(ctx, local, merge));
                mode = Mode::kRepartitionAgain;
                ctx.clock().AddCpu(p.t_d());
                ++ctx.stats().raw_records_sent;
                ADAPTAGG_RETURN_IF_ERROR(ex_raw.AddBatch(batch, i, i + 1));
                ++i;
              }
              break;
            }
            case Mode::kRepartitionAgain: {
              ADAPTAGG_RETURN_IF_ERROR(route_run(batch, i, sz));
              i = sz;
              break;
            }
          }
        }
        return Status::OK();
      };

      auto poll = [&]() -> Status {
        ctx.SyncDiskIo();
        ADAPTAGG_RETURN_IF_ERROR(recv.Poll());
        if (mode == Mode::kRepartition && recv.end_of_phase_seen()) {
          // Polls happen only on full-batch boundaries, so this matches
          // the per-tuple loop's switch point (a poll-interval multiple).
          ADAPTAGG_RETURN_IF_ERROR(switch_to_local(
              /*own_decision=*/false, ctx.stats().tuples_scanned));
        }
        return Status::OK();
      };

      ADAPTAGG_RETURN_IF_ERROR(RunBatchedScan(ctx, process, poll));

      if (mode == Mode::kLocalAgg && local.size() > 0) {
        ADAPTAGG_RETURN_IF_ERROR(SendTablePartials(ctx, local, merge));
      }
      ADAPTAGG_RETURN_IF_ERROR(merge.FlushPartials());
      ADAPTAGG_RETURN_IF_ERROR(ex_raw.FlushAll());
      ADAPTAGG_RETURN_IF_ERROR(merge.SendDataEos());
      scan_span.AddArg("tuples_scanned", ctx.stats().tuples_scanned);
      scan_span.AddArg("switched", ctx.stats().switched ? 1 : 0);
    }
    AccumulateHashTableObs(ctx, local.stats());

    {
      ADAPTAGG_RETURN_IF_ERROR(ctx.EnterPhase("merge"));
      PhaseTimer merge_span = ctx.obs().StartPhase("merge");
      ADAPTAGG_RETURN_IF_ERROR(recv.Drain());
    }
    return merge.FinishAndEmit();
  }
};

}  // namespace internal_core

std::unique_ptr<Algorithm> MakeAdaptiveRepartitioning() {
  return std::make_unique<internal_core::AdaptiveRepartitioning>();
}

}  // namespace adaptagg
