#include "agg/sort_aggregator.h"
#include "core/algorithm.h"
#include "core/phases.h"

namespace adaptagg {
namespace internal_core {

/// Sort-based Two Phase — the [BBDW83]-style baseline the paper's §1
/// discusses before settling on hashing: both the local and the global
/// aggregation use external merge sort (bounded to M records in memory,
/// runs spooled to the node's disk) followed by a one-pass aggregation
/// of each key range.
///
/// The structural difference from hash 2P: sorting's spill volume is
/// proportional to the *input* size whenever tuples exceed the memory
/// bound, while hashing's is proportional to the *group* count — so at
/// low grouping selectivity the sort baseline pays run I/O that hash
/// aggregation avoids entirely. `bench_ablation_sort_vs_hash` plots it.
class SortTwoPhase : public Algorithm {
 public:
  std::string name() const override { return "sort-two-phase"; }

  Status RunNode(NodeContext& ctx) const override {
    const SystemParams& p = ctx.params();
    const AggregationSpec& spec = ctx.spec();
    const int n = ctx.num_nodes();

    SortAggregator global(&spec, ctx.disk(), ctx.max_hash_entries(),
                          "gsort_n" + std::to_string(ctx.node_id()));
    DataReceiver recv(
        &ctx,
        [&global](const TupleBatch& b) {
          return global.AddProjectedBatch(b);
        },
        [&global](const TupleBatch& b) { return global.AddPartialBatch(b); },
        n);

    // Phase 1: sort-aggregate the local partition. Each record costs
    // t_r + t_a plus ~log2(M) key comparisons charged as one t_h
    // (hashing and comparison-based grouping differ in constants, not
    // in the Table 1 cost vocabulary).
    SortAggregator local(&spec, ctx.disk(), ctx.max_hash_entries(),
                         "lsort_n" + std::to_string(ctx.node_id()));
    {
      ADAPTAGG_RETURN_IF_ERROR(ctx.EnterPhase("scan"));
      PhaseTimer scan_span = ctx.obs().StartPhase("scan");
      const double agg_cost = p.t_r() + p.t_h() + p.t_a();
      ADAPTAGG_RETURN_IF_ERROR(RunBatchedScan(
          ctx,
          [&](const TupleBatch& batch, int64_t) {
            ctx.clock().AddCpu(static_cast<double>(batch.size()) *
                               agg_cost);
            return local.AddProjectedBatch(batch);
          },
          [&]() {
            ctx.SyncDiskIo();
            return recv.Poll();
          }));

      // Ship local partials to their owner nodes.
      Exchange ex(&ctx, MessageType::kPartialPage, spec.partial_width(),
                  kPhaseData);
      std::vector<uint8_t> rec(static_cast<size_t>(spec.partial_width()));
      Status status;
      Status finish =
          local.Finish([&](const uint8_t* key, const uint8_t* state) {
            if (!status.ok()) return;
            ctx.clock().AddCpu(p.t_w());
            std::memcpy(rec.data(), key,
                        static_cast<size_t>(spec.key_width()));
            std::memcpy(rec.data() + spec.key_width(), state,
                        static_cast<size_t>(spec.state_width()));
            ++ctx.stats().partial_records_sent;
            status =
                ex.AddRecord(DestOfKeyHash(spec.HashKey(key), n), rec.data());
          });
      ctx.stats().spill.spill_pages_written += local.run_pages_written();
      ctx.SyncDiskIo();
      ADAPTAGG_RETURN_IF_ERROR(finish);
      ADAPTAGG_RETURN_IF_ERROR(status);
      ADAPTAGG_RETURN_IF_ERROR(ex.FlushAll());
      ADAPTAGG_RETURN_IF_ERROR(BroadcastEos(&ctx, kPhaseData));
      scan_span.AddArg("tuples_scanned", ctx.stats().tuples_scanned);
    }

    // Phase 2: merge everything routed here, emit in key order.
    {
      ADAPTAGG_RETURN_IF_ERROR(ctx.EnterPhase("merge"));
      PhaseTimer merge_span = ctx.obs().StartPhase("merge");
      ADAPTAGG_RETURN_IF_ERROR(recv.Drain());
    }
    {
      ADAPTAGG_RETURN_IF_ERROR(ctx.EnterPhase("emit"));
      PhaseTimer emit_span = ctx.obs().StartPhase("emit");
      Status status;
      Status finish =
          global.Finish([&](const uint8_t* key, const uint8_t* state) {
            if (!status.ok()) return;
            status = ctx.EmitFinalRow(key, state);
          });
      ctx.stats().spill.spill_pages_written += global.run_pages_written();
      ctx.SyncDiskIo();
      emit_span.AddArg("result_rows", ctx.stats().result_rows);
      ADAPTAGG_RETURN_IF_ERROR(finish);
      ADAPTAGG_RETURN_IF_ERROR(status);
      ADAPTAGG_RETURN_IF_ERROR(ctx.FinishResults());
    }
    return Status::OK();
  }
};

}  // namespace internal_core

std::unique_ptr<Algorithm> MakeSortTwoPhase() {
  return std::make_unique<internal_core::SortTwoPhase>();
}

}  // namespace adaptagg
