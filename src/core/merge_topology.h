#ifndef ADAPTAGG_CORE_MERGE_TOPOLOGY_H_
#define ADAPTAGG_CORE_MERGE_TOPOLOGY_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "agg/hash_table.h"
#include "agg/spilling_aggregator.h"
#include "cluster/exchange.h"
#include "cluster/node_context.h"
#include "core/phases.h"
#include "model/merge_model.h"
#include "storage/disk.h"

namespace adaptagg {

/// Per-run facade over the final-merge topology (DESIGN.md §12). The
/// seed repo merges partials over one all-to-all exchange (or the C-2P
/// star); MergePlane lets the cost model swap in three alternatives at
/// runtime — a binomial tree reduction, merge-side radix staging, and a
/// shared lock-free global table — while keeping result rows and the
/// modeled time byte-identical to the seed wire.
///
/// The invariance trick: partial records never travel the real wire on
/// the non-seed topologies. Producers charge the seed's send costs as
/// "phantom" pages (NodeContext::ChargePhantomSend), keep the records
/// locally, and attach a per-destination [records, pages] ledger to the
/// data-phase EOS; each seed destination replays the matching receive
/// and merge charges from the ledger (FoldLedger). The reduction and
/// emit-scatter rounds then move the actual bytes over cost-exempt
/// exchanges, and every final row is emitted on its seed node by the
/// seed emit-owner function — so charges, rows, and row placement all
/// match the seed, only the wall-clock merge path differs.
///
/// Raw (repartitioned) tuple exchanges always stay real and
/// seed-routed; topologies only reshape the partial-merge plane.
class MergePlane {
 public:
  struct Config {
    /// Seed-wire destination of a group-key hash: DestOfKeyHash for the
    /// partitioned algorithms, constant 0 for Centralized Two Phase.
    /// Doubles as the emit-owner function of the non-seed topologies,
    /// which is what keeps every final row on its seed node.
    std::function<int(uint64_t)> seed_dest;
    /// Seed end-of-stream routing: broadcast to every node (partitioned
    /// exchanges) or a single marker to node 0 (C-2P).
    bool broadcast_eos = true;
    /// Algorithm phases outside the six supported merge planes pass
    /// false and always run the seed wire.
    bool supported = true;
  };

  /// Resolves the topology (options pin, or the sampling-time decision
  /// under kAuto, with demotions to kSeed whenever a prerequisite is
  /// missing), records the `merge.topology` decision instant, and — for
  /// kRadix — enables merge-side radix staging on `global` if the local
  /// auto decision has not already done so. Construct after the body's
  /// own MaybeEnableRadix/restore block and before any data traffic.
  MergePlane(NodeContext* ctx, SpillingAggregator* global, Config config);

  MergeTopology topology() const { return topology_; }

  /// True when partial records travel the seed exchange (kSeed and
  /// kRadix — radix staging only reshapes the merge table).
  bool seed_wire() const {
    return topology_ == MergeTopology::kSeed ||
           topology_ == MergeTopology::kRadix;
  }

  /// The data-phase receiver wired for this topology: the seed sinks on
  /// the seed wire, the shared-table fold on kShared. Created on first
  /// call, owned by the plane; `expected_eos` as for DataReceiver.
  DataReceiver& receiver(int expected_eos);

  /// Routes one drained local partial record (the caller — SendPartials
  /// or SendTablePartials — has already charged t_w and counted it as
  /// sent). Seed wire: the real exchange. kCentral/kTree: phantom send
  /// charges plus a local hold for the reduction. kShared: a concurrent
  /// upsert into the shared table (refusals go to the overflow scatter).
  Status AddPartial(uint64_t key_hash, const uint8_t* rec);

  /// Mirrors Exchange::FlushAll on the partial plane: sends (or phantom-
  /// charges) every partially filled page and records the per-dest page
  /// skew metric. Call exactly once, after the last AddPartial.
  Status FlushPartials();

  /// Sends the data-phase end-of-stream markers with the seed's routing,
  /// carrying the phantom ledger payload on non-seed topologies.
  Status SendDataEos();

  /// Replays the seed receive-side charges of one origin's deferred
  /// partial stream from the ledger payload on its data EOS; called by
  /// DataReceiver::Handle.
  Status FoldLedger(const Message& msg);

  /// Runs the chosen reduction and emits this node's final rows. Seed
  /// wire: exactly the seed's EmitFinalResults on `global`. kCentral /
  /// kTree: fold held partials and received raw-side groups up the
  /// (star or binomial) reduction to node 0, which scatters merged
  /// groups back to their seed emit owners. kShared: barrier, scatter
  /// overflow records to their owners, then drain this node's slice of
  /// the shared table. Callers must have entered the "merge" phase and
  /// drained the data receiver first.
  Status FinishAndEmit();

 private:
  MergeTopology Resolve();
  /// Capacity and arena wiring for the kShared table; computed from the
  /// broadcast group estimate so every node requests the same table.
  Status PrepareShared();
  Status UpsertShared(const uint8_t* rec, uint64_t key_hash);
  Status FoldRawBatchShared(const TupleBatch& batch);
  Status FoldPartialBatchShared(const TupleBatch& batch);
  /// Drains a finished aggregator into `dst` as partial records. When
  /// `seed_emit_bookkeeping` is set, also folds the source's spill and
  /// hash-table stats into the node — the bookkeeping the seed's
  /// EmitFinalResults would have done for `global`.
  Status DrainInto(SpillingAggregator& src, SpillingAggregator& dst,
                   bool seed_emit_bookkeeping);
  /// Decodes one cost-exempt merge-phase page into `dst`.
  Status FoldExemptPage(Message& msg, SpillingAggregator& dst);
  /// kCentral/kTree: collect children, send up or scatter, emit.
  Status ReduceAndEmit();
  /// kShared: barrier + overflow scatter + own-slice drain, emit.
  Status SharedFinishAndEmit();
  /// Receives kPhaseMergeEmit pages into `emit_agg` until every node
  /// flagged in `awaiting` has delivered its emit EOS; `parked` holds
  /// frames that arrived ahead of this round.
  Status EmitAwaitLoop(SpillingAggregator& emit_agg,
                       std::vector<bool>& awaiting,
                       std::vector<Message>& parked);
  /// Reduction children of this node: every other node for the kCentral
  /// root, the binomial subtree roots for kTree.
  std::vector<int> ReduceChildren() const;
  int ReduceParent() const;
  /// Hash-table bound for the plane's private scratch aggregators
  /// (contribution holds and reduction tables: up to every group).
  int64_t ScratchBound() const;
  /// Bound for the emit-round aggregator, which only ever holds this
  /// node's slice of the final groups (and any shared-table overflow
  /// scattered home).
  int64_t EmitBound() const;

  NodeContext* ctx_;
  SpillingAggregator* global_;
  Config config_;
  /// Best global group-count estimate available at construction
  /// (sampling broadcast, else the options hint; 0 = unknown).
  int64_t est_groups_ = 0;
  MergeTopology topology_ = MergeTopology::kSeed;

  std::unique_ptr<DataReceiver> recv_;
  /// Seed-wire partial exchange (seed topologies only).
  std::unique_ptr<Exchange> ex_partial_;

  // --- Non-seed state. ---
  /// Scratch disk for the plane's private aggregators: invisible to
  /// SyncDiskIo (which only charges ctx.disk() deltas), so reduction
  /// spills never perturb the modeled time.
  std::unique_ptr<SimDisk> scratch_disk_;
  /// Held local partials awaiting the reduction (kCentral/kTree).
  std::unique_ptr<SpillingAggregator> contrib_;
  /// Phantom page accounting per seed destination.
  int page_capacity_ = 0;
  std::vector<int64_t> phantom_records_;
  std::vector<int64_t> phantom_pages_;
  std::vector<int> phantom_fill_;

  // --- kShared state. ---
  SharedAggHashTable* shared_ = nullptr;
  /// Partial records the shared table refused at its ceiling; scattered
  /// to their seed emit owners in the overflow round.
  std::vector<uint8_t> overflow_;
  std::vector<uint8_t> tmp_partial_;
};

}  // namespace adaptagg

#endif  // ADAPTAGG_CORE_MERGE_TOPOLOGY_H_
