#include "core/algorithm.h"
#include "core/phases.h"

namespace adaptagg {
namespace internal_core {

/// §2.2. Phase 1 aggregates each node's partition locally; phase 2
/// hash-partitions the partial results so every node merges and emits its
/// share of groups in parallel. Strong when groups are few; duplicates
/// aggregation work and strains memory when groups are many.
class TwoPhase : public Algorithm {
 public:
  std::string name() const override { return "two-phase"; }

  Status RunNode(NodeContext& ctx) const override {
    return RunTwoPhaseBody(ctx);
  }
};

}  // namespace internal_core

std::unique_ptr<Algorithm> MakeTwoPhase() {
  return std::make_unique<internal_core::TwoPhase>();
}

}  // namespace adaptagg
