#include "core/query.h"

#include "core/algorithm.h"

namespace adaptagg {

RunResult Query::Execute(Cluster& cluster, PartitionedRelation& rel,
                         AlgorithmKind algorithm,
                         AlgorithmOptions options) const {
  options.where = where;
  options.having = having;
  return cluster.Run(*MakeAlgorithm(algorithm), spec, rel, options);
}

std::string Query::ToString() const {
  std::string out = "SELECT ";
  const Schema& fin = spec.final_schema();
  for (int i = 0; i < fin.num_fields(); ++i) {
    if (i > 0) out += ", ";
    out += fin.field(i).name;
  }
  out += " FROM R";
  if (where != nullptr) out += " WHERE " + where->ToString();
  if (!spec.group_cols().empty()) {
    out += " GROUP BY ";
    for (size_t i = 0; i < spec.group_cols().size(); ++i) {
      if (i > 0) out += ", ";
      out += spec.input_schema().field(spec.group_cols()[i]).name;
    }
  }
  if (having != nullptr) out += " HAVING " + having->ToString();
  return out;
}

QueryBuilder& QueryBuilder::Where(ExprPtr predicate) {
  where_ = std::move(predicate);
  return *this;
}

QueryBuilder& QueryBuilder::GroupBy(std::vector<std::string> columns) {
  group_by_ = std::move(columns);
  return *this;
}

QueryBuilder& QueryBuilder::Count(std::string as) {
  aggs_.push_back({AggKind::kCount, "", std::move(as)});
  return *this;
}

QueryBuilder& QueryBuilder::Sum(const std::string& column, std::string as) {
  aggs_.push_back({AggKind::kSum, column, std::move(as)});
  return *this;
}

QueryBuilder& QueryBuilder::Avg(const std::string& column, std::string as) {
  aggs_.push_back({AggKind::kAvg, column, std::move(as)});
  return *this;
}

QueryBuilder& QueryBuilder::Min(const std::string& column, std::string as) {
  aggs_.push_back({AggKind::kMin, column, std::move(as)});
  return *this;
}

QueryBuilder& QueryBuilder::Max(const std::string& column, std::string as) {
  aggs_.push_back({AggKind::kMax, column, std::move(as)});
  return *this;
}

QueryBuilder& QueryBuilder::Having(ExprPtr predicate) {
  having_ = std::move(predicate);
  return *this;
}

Result<Query> QueryBuilder::Build() const {
  std::vector<int> group_cols;
  for (const std::string& name : group_by_) {
    ADAPTAGG_ASSIGN_OR_RETURN(int idx, input_->FieldIndex(name));
    group_cols.push_back(idx);
  }
  std::vector<AggDescriptor> descriptors;
  for (const PendingAgg& a : aggs_) {
    AggDescriptor d;
    d.kind = a.kind;
    d.name = a.as;
    if (a.kind == AggKind::kCount) {
      d.input_col = -1;
    } else {
      ADAPTAGG_ASSIGN_OR_RETURN(d.input_col, input_->FieldIndex(a.column));
    }
    descriptors.push_back(std::move(d));
  }

  Query q;
  ADAPTAGG_ASSIGN_OR_RETURN(
      q.spec, AggregationSpec::Make(input_, std::move(group_cols),
                                    std::move(descriptors)));
  if (where_ != nullptr) {
    ADAPTAGG_RETURN_IF_ERROR(ValidatePredicate(*where_, *input_));
    q.where = where_;
  }
  if (having_ != nullptr) {
    ADAPTAGG_RETURN_IF_ERROR(
        ValidatePredicate(*having_, q.spec.final_schema()));
    q.having = having_;
  }
  return q;
}

}  // namespace adaptagg
