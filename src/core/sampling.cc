#include <algorithm>
#include <unordered_set>
#include <vector>

#include "common/random.h"
#include "core/algorithm.h"
#include "core/phases.h"
#include "model/locality_model.h"
#include "model/merge_model.h"
#include "model/sampling_model.h"

namespace adaptagg {
namespace internal_core {
namespace {

/// Decision broadcast payload: [u8 use_repartitioning][u8 merge
/// topology][u16 skew_q8, LE][u64 estimated global groups, LE]. The
/// message's charged_bytes pins the modeled network charge to the
/// historical 1-byte decision, so growing the payload is free on the
/// cost model.
constexpr size_t kDecisionBytes = 12;

/// Phase 0 of the Sampling algorithm: page-oriented random sampling on
/// every node, distinct keys unioned at the coordinator, decision
/// broadcast back. Returns true when Repartitioning should run.
Result<bool> DecideBySampling(NodeContext& ctx) {
  const SystemParams& p = ctx.params();
  const AggregationSpec& spec = ctx.spec();
  const Schema& schema = spec.input_schema();
  const int kCoordinator = 0;
  const int n = ctx.num_nodes();

  const int64_t threshold = ctx.crossover_threshold();
  const int64_t total_sample = ctx.options().sample_size > 0
                                   ? ctx.options().sample_size
                                   : RequiredSampleSize(threshold);
  const int64_t per_node = (total_sample + n - 1) / n;

  HeapFile* part = ctx.local_partition();
  const int tuples_per_page =
      PageBuilder::Capacity(ctx.disk()->page_size(), schema.tuple_size());
  int64_t pages_needed =
      (per_node + tuples_per_page - 1) / tuples_per_page;
  pages_needed = std::min<int64_t>(pages_needed, part->num_pages());

  // Page-oriented random sampling on the local partition [Ses92].
  Prng prng(ctx.options().seed + 0x9000 +
            static_cast<uint64_t>(ctx.node_id()));
  std::vector<uint64_t> page_ids;
  if (pages_needed > 0) {
    page_ids = prng.SampleWithoutReplacement(
        static_cast<uint64_t>(part->num_pages()),
        static_cast<uint64_t>(pages_needed));
  }

  std::unordered_set<std::string> local_keys;
  int64_t sampled = 0;
  {
    std::vector<uint8_t> page_bytes;
    std::vector<uint8_t> proj(static_cast<size_t>(spec.projected_width()));
    const double select_cost = p.t_r() + p.t_w();
    const double agg_cost = p.t_r() + p.t_h() + p.t_a();
    for (uint64_t page_id : page_ids) {
      ADAPTAGG_RETURN_IF_ERROR(ctx.disk()->ReadPage(
          part->file_id(), static_cast<int64_t>(page_id), page_bytes));
      ctx.SyncDiskIo();
      PageReader reader(page_bytes.data(), ctx.disk()->page_size(),
                        schema.tuple_size());
      // Examination cost is page-at-a-time: every sampled tuple is
      // read and hashed before the WHERE filter applies.
      const int take = static_cast<int>(std::min<int64_t>(
          reader.count(), per_node - sampled));
      sampled += take;
      ctx.clock().AddCpu(static_cast<double>(take) *
                         (select_cost + agg_cost));
      for (int i = 0; i < take; ++i) {
        TupleView t(reader.record(i), &schema);
        // Sampling estimates the groups of the *filtered* relation when
        // the query has a WHERE clause.
        if (ctx.options().where != nullptr &&
            !EvalPredicate(*ctx.options().where, t)) {
          continue;
        }
        spec.ProjectRaw(t, proj.data());
        local_keys.emplace(
            reinterpret_cast<const char*>(spec.KeyOfProjected(proj.data())),
            static_cast<size_t>(spec.key_width()));
      }
    }
  }

  // Invert the sample into a per-node group estimate for the locality
  // model: radix pre-partitioning engages when the estimated working
  // set exceeds L2. Free — the sample was already paid for above.
  ctx.set_estimated_local_groups(EstimateGroupsFromSample(
      sampled, static_cast<int64_t>(local_keys.size()),
      part->num_tuples()));

  // Ship the locally observed distinct keys to the coordinator in
  // sorted order: iterating the unordered set directly would make the
  // wire bytes depend on the standard library's hash layout (lint D3).
  // The coordinator only counts distinct keys, so the decision itself
  // never depended on the order — this pins the transcript, not the
  // outcome.
  std::vector<std::string> sorted_keys(local_keys.begin(),
                                       local_keys.end());
  std::sort(sorted_keys.begin(), sorted_keys.end());
  Exchange ex(&ctx, MessageType::kPartialPage, spec.key_width(),
              kPhaseSample);
  for (const std::string& key : sorted_keys) {
    ctx.clock().AddCpu(p.t_w());
    ADAPTAGG_RETURN_IF_ERROR(ex.AddRecord(
        kCoordinator, reinterpret_cast<const uint8_t*>(key.data())));
  }
  ADAPTAGG_RETURN_IF_ERROR(ex.FlushAll());
  {
    Message eos;
    eos.type = MessageType::kEndOfStream;
    eos.phase = kPhaseSample;
    ADAPTAGG_RETURN_IF_ERROR(ctx.Send(kCoordinator, eos));
  }

  if (ctx.is_coordinator()) {
    // Union the keys and judge the group count against the threshold.
    // Await every node that has not yet sent its sample end-of-stream;
    // a node that dies mid-sample is named by the failed wait.
    std::unordered_set<std::string> all_keys;
    // Distinct-key count per origin: the merge model's skew signal.
    std::vector<int64_t> origin_keys(static_cast<size_t>(n), 0);
    std::vector<bool> eos_from(static_cast<size_t>(n), false);
    int eos_seen = 0;
    while (eos_seen < n) {
      ADAPTAGG_ASSIGN_OR_RETURN(
          Message msg, ctx.AwaitMessage([&eos_from](int peer) {
            return !eos_from[static_cast<size_t>(peer)];
          }));
      if (msg.type == MessageType::kEndOfStream &&
          msg.phase == kPhaseSample) {
        if (msg.from >= 0 && msg.from < n &&
            !eos_from[static_cast<size_t>(msg.from)]) {
          eos_from[static_cast<size_t>(msg.from)] = true;
          ++eos_seen;
        }
        continue;
      }
      if (msg.type == MessageType::kAbort) {
        return Status::Internal("aborted by peer node " +
                                std::to_string(msg.from));
      }
      if (msg.type != MessageType::kPartialPage ||
          msg.phase != kPhaseSample) {
        return Status::Internal("unexpected message during sampling: " +
                                MessageTypeToString(msg.type));
      }
      const bool origin_known = msg.from >= 0 && msg.from < n;
      const size_t origin = static_cast<size_t>(origin_known ? msg.from : 0);
      ADAPTAGG_RETURN_IF_ERROR(ForEachRecordInPage(
          msg, spec.key_width(), p.message_page_bytes,
          [&](const uint8_t* rec) {
            ctx.clock().AddCpu(p.t_r());
            ++origin_keys[origin];
            all_keys.emplace(reinterpret_cast<const char*>(rec),
                             static_cast<size_t>(spec.key_width()));
          }));
    }
    bool use_repartitioning =
        static_cast<int64_t>(all_keys.size()) >= threshold;

    // Merge-topology decision from the same sample, all counts (lint
    // D1-D3: no wall clock in decisions): a global group estimate from
    // the unioned keys, and per-origin distinct counts as the skew
    // signal (q8: 256 = perfectly balanced).
    int64_t total_keys = 0;
    int64_t max_keys = 0;
    for (int64_t c : origin_keys) {
      total_keys += c;
      max_keys = std::max(max_keys, c);
    }
    const int32_t skew_q8 =
        total_keys > 0
            ? static_cast<int32_t>(std::min<int64_t>(
                  max_keys * n * 256 / total_keys, 65535))
            : 256;
    const int64_t est_global = EstimateGroupsFromSample(
        total_sample, static_cast<int64_t>(all_keys.size()),
        static_cast<int64_t>(n) * part->num_tuples());
    MergeDecisionInputs inputs;
    inputs.est_groups = est_global;
    inputs.num_nodes = n;
    inputs.skew_q8 = skew_q8;
    inputs.inproc = ctx.shared_memory_transport();
    inputs.use_repartitioning = use_repartitioning;
    inputs.max_hash_entries = ctx.max_hash_entries();
    inputs.slot_bytes = spec.key_width() + spec.state_width();
    inputs.radix_llc_bytes = ctx.options().radix_llc_bytes;
    const MergeDecision md = DecideMergeTopology(inputs);

    Message decision;
    decision.type = MessageType::kControl;
    decision.phase = kPhaseSample;
    decision.payload.assign(kDecisionBytes, 0);
    decision.payload[0] = use_repartitioning ? uint8_t{1} : uint8_t{0};
    decision.payload[1] = static_cast<uint8_t>(md.topology);
    decision.payload[2] = static_cast<uint8_t>(md.skew_q8 & 0xff);
    decision.payload[3] = static_cast<uint8_t>((md.skew_q8 >> 8) & 0xff);
    for (int i = 0; i < 8; ++i) {
      decision.payload[static_cast<size_t>(4 + i)] = static_cast<uint8_t>(
          static_cast<uint64_t>(md.est_groups) >> (8 * i));
    }
    decision.charged_bytes = 1;  // the historical 1-byte decision charge
    ADAPTAGG_RETURN_IF_ERROR(Broadcast(&ctx, decision));
  }

  // Wait for the decision. Anything else that arrives early belongs to
  // the data phase of faster nodes; buffer it locally and stash it only
  // once the control message is in hand (stashing inside the loop would
  // make Recv return the same message forever).
  std::vector<Message> pending;
  while (true) {
    ADAPTAGG_ASSIGN_OR_RETURN(
        Message msg, ctx.AwaitMessage([kCoordinator](int peer) {
          return peer == kCoordinator;
        }));
    if (msg.type == MessageType::kAbort) {
      return Status::Internal("aborted by peer node " +
                              std::to_string(msg.from));
    }
    if (msg.type == MessageType::kControl && msg.phase == kPhaseSample) {
      if (msg.payload.size() != kDecisionBytes ||
          msg.payload[1] > static_cast<uint8_t>(MergeTopology::kShared)) {
        return Status::Internal("bad sampling decision payload");
      }
      const MergeTopology topology =
          static_cast<MergeTopology>(msg.payload[1]);
      const int32_t skew_q8 = static_cast<int32_t>(msg.payload[2]) |
                              (static_cast<int32_t>(msg.payload[3]) << 8);
      uint64_t est = 0;
      for (int i = 0; i < 8; ++i) {
        est |= static_cast<uint64_t>(
                   msg.payload[static_cast<size_t>(4 + i)])
               << (8 * i);
      }
      ctx.set_sampled_merge(topology, static_cast<int64_t>(est), skew_q8);
      for (Message& m : pending) {
        ctx.Stash(std::move(m));
      }
      return msg.payload[0] != 0;
    }
    pending.push_back(std::move(msg));
  }
}

/// §3.1. Samples the relation to estimate whether the number of groups is
/// small (choose Two Phase) or large (choose Repartitioning). The
/// estimate only needs to resolve "below or above the crossover
/// threshold", which keeps the sample small (~10x the threshold).
class Sampling : public Algorithm {
 public:
  std::string name() const override { return "sampling"; }

  Status RunNode(NodeContext& ctx) const override {
    bool use_repartitioning = false;
    {
      ADAPTAGG_RETURN_IF_ERROR(ctx.EnterPhase("sample"));
      PhaseTimer sample_span = ctx.obs().StartPhase("sample");
      ADAPTAGG_ASSIGN_OR_RETURN(use_repartitioning, DecideBySampling(ctx));
      sample_span.AddArg("use_repartitioning", use_repartitioning ? 1 : 0);
    }
    return use_repartitioning ? RunRepartitioningBody(ctx)
                              : RunTwoPhaseBody(ctx);
  }
};

}  // namespace
}  // namespace internal_core

std::unique_ptr<Algorithm> MakeSampling() {
  return std::make_unique<internal_core::Sampling>();
}

}  // namespace adaptagg
