#include "core/algorithm.h"

#include "common/logging.h"

namespace adaptagg {

// Defined in the per-algorithm translation units.
std::unique_ptr<Algorithm> MakeCentralizedTwoPhase();
std::unique_ptr<Algorithm> MakeTwoPhase();
std::unique_ptr<Algorithm> MakeRepartitioning();
std::unique_ptr<Algorithm> MakeSampling();
std::unique_ptr<Algorithm> MakeAdaptiveTwoPhase();
std::unique_ptr<Algorithm> MakeAdaptiveRepartitioning();
std::unique_ptr<Algorithm> MakeGraefeTwoPhase();
std::unique_ptr<Algorithm> MakeSortTwoPhase();

std::unique_ptr<Algorithm> MakeAlgorithm(AlgorithmKind kind) {
  switch (kind) {
    case AlgorithmKind::kCentralizedTwoPhase:
      return MakeCentralizedTwoPhase();
    case AlgorithmKind::kTwoPhase:
      return MakeTwoPhase();
    case AlgorithmKind::kRepartitioning:
      return MakeRepartitioning();
    case AlgorithmKind::kSampling:
      return MakeSampling();
    case AlgorithmKind::kAdaptiveTwoPhase:
      return MakeAdaptiveTwoPhase();
    case AlgorithmKind::kAdaptiveRepartitioning:
      return MakeAdaptiveRepartitioning();
    case AlgorithmKind::kGraefeTwoPhase:
      return MakeGraefeTwoPhase();
    case AlgorithmKind::kSortTwoPhase:
      return MakeSortTwoPhase();
  }
  ADAPTAGG_CHECK(false) << "unknown algorithm kind";
  return nullptr;
}

}  // namespace adaptagg
