#include "core/merge_topology.h"

#include <algorithm>
#include <cstring>
#include <string>
#include <utility>

#include "common/logging.h"
#include "model/locality_model.h"
#include "net/message.h"
#include "storage/page.h"

namespace adaptagg {
namespace {

/// Ledger payload on a non-seed data EOS: [u64 records][u64 pages], LE.
constexpr size_t kLedgerBytes = 16;

void WriteU64(uint8_t* p, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    p[i] = static_cast<uint8_t>(v >> (8 * i));
  }
}

uint64_t ReadU64(const uint8_t* p) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(p[i]) << (8 * i);
  }
  return v;
}

/// Drains a finished aggregator into a cost-exempt exchange, routing
/// each group by its key.
Status DrainToExchange(const AggregationSpec& spec, SpillingAggregator& src,
                       Exchange& ex,
                       const std::function<int(const uint8_t* key)>& dest) {
  std::vector<uint8_t> rec(static_cast<size_t>(spec.partial_width()));
  Status status;
  Status finish = src.Finish([&](const uint8_t* key, const uint8_t* state) {
    if (!status.ok()) return;
    std::memcpy(rec.data(), key, static_cast<size_t>(spec.key_width()));
    std::memcpy(rec.data() + spec.key_width(), state,
                static_cast<size_t>(spec.state_width()));
    status = ex.AddRecord(dest(key), rec.data());
  });
  if (!finish.ok()) return finish;
  return status;
}

}  // namespace

MergePlane::MergePlane(NodeContext* ctx, SpillingAggregator* global,
                       Config config)
    : ctx_(ctx), global_(global), config_(std::move(config)) {
  est_groups_ = ctx_->sampled_merge_groups() > 0
                    ? ctx_->sampled_merge_groups()
                    : ctx_->options().estimated_groups;
  topology_ = Resolve();
  const AggregationSpec& spec = ctx_->spec();
  const int n = ctx_->num_nodes();
  if (topology_ == MergeTopology::kRadix &&
      !global_->table().radix_partitioning()) {
    const RadixDecision d = DecideRadixPartitioning(
        RadixMode::kOn, std::max<int64_t>(est_groups_ / std::max(n, 1), 1),
        ctx_->max_hash_entries(), spec.key_width() + spec.state_width(),
        ctx_->options().radix_l2_bytes, ctx_->options().radix_llc_bytes);
    global_->EnableRadixPartitioning(std::max(d.partitions, 2));
  }
  if (seed_wire()) {
    ex_partial_ = std::make_unique<Exchange>(
        ctx_, MessageType::kPartialPage, spec.partial_width(), kPhaseData);
    return;
  }
  scratch_disk_ = std::make_unique<SimDisk>(ctx_->params().page_bytes);
  page_capacity_ = PageBuilder::Capacity(ctx_->params().message_page_bytes,
                                         spec.partial_width());
  ADAPTAGG_CHECK(page_capacity_ > 0);
  phantom_records_.assign(static_cast<size_t>(n), 0);
  phantom_pages_.assign(static_cast<size_t>(n), 0);
  phantom_fill_.assign(static_cast<size_t>(n), 0);
  tmp_partial_.resize(static_cast<size_t>(spec.partial_width()));
  if (topology_ == MergeTopology::kShared) {
    // Capacity from the broadcast estimate so every node requests the
    // identical table from the arena; the unknown-estimate fallback
    // covers n full local tables. 2x the estimate keeps the load at the
    // estimate to 50% (the concurrent table refuses new groups at 70%,
    // so a 1.4x underestimate still fits; beyond that the overflow
    // scatter catches the spill) while keeping the emit pass — every
    // node scans the whole slot array to pick out its slice — and the
    // probe working set as small as the estimate allows.
    int64_t cap = est_groups_ > 0
                      ? 2 * est_groups_
                      : 2 * static_cast<int64_t>(n) *
                            std::max<int64_t>(ctx_->max_hash_entries(), 1);
    cap = std::min<int64_t>(std::max<int64_t>(cap, 4096), int64_t{1} << 22);
    shared_ = ctx_->merge_arena()->GetOrInit(&spec, cap);
  } else {
    contrib_ = std::make_unique<SpillingAggregator>(
        &spec, scratch_disk_.get(), ScratchBound(),
        ctx_->options().spill_fanout,
        "mrg_hold_n" + std::to_string(ctx_->node_id()));
  }
}

MergeTopology MergePlane::Resolve() {
  const MergeMode mode = ctx_->options().merge_mode;
  MergeTopology t = MergeTopology::kSeed;
  switch (mode) {
    case MergeMode::kAuto:
      t = ctx_->sampled_merge_topology();
      break;
    case MergeMode::kCentral:
      t = MergeTopology::kCentral;
      break;
    case MergeMode::kTree:
      t = MergeTopology::kTree;
      break;
    case MergeMode::kRadix:
      t = MergeTopology::kRadix;
      break;
    case MergeMode::kShared:
      t = MergeTopology::kShared;
      break;
  }
  // Demotions to the seed wire. Every node resolves identically: the
  // options pin, the sampling broadcast, the transport kind, and the
  // recovery runtime are uniform across a run.
  if (!config_.supported) t = MergeTopology::kSeed;
  // The replay protocols (page watermarks, merge checkpoints) assume
  // the seed wire; recovery runs always take it.
  if (ctx_->recovery() != nullptr) t = MergeTopology::kSeed;
  const int n = ctx_->num_nodes();
  if ((t == MergeTopology::kCentral || t == MergeTopology::kTree) && n < 2) {
    t = MergeTopology::kSeed;
  }
  if (t == MergeTopology::kShared &&
      (!ctx_->shared_memory_transport() || ctx_->merge_arena() == nullptr)) {
    t = MergeTopology::kSeed;
  }
  ctx_->obs().core_merge_topology.Set(static_cast<int64_t>(t));
  ctx_->obs().RecordDecision(
      "merge.topology",
      {{"topology", static_cast<int64_t>(t)},
       {"mode", static_cast<int64_t>(mode)},
       {"est_groups", est_groups_},
       {"skew_q8", ctx_->sampled_merge_skew_q8()},
       {"nodes", n}});
  return t;
}

DataReceiver& MergePlane::receiver(int expected_eos) {
  if (recv_ != nullptr) return *recv_;
  if (topology_ == MergeTopology::kShared) {
    recv_ = std::make_unique<DataReceiver>(
        ctx_,
        [this](const TupleBatch& b) { return FoldRawBatchShared(b); },
        [this](const TupleBatch& b) { return FoldPartialBatchShared(b); },
        expected_eos);
  } else {
    recv_ = std::make_unique<DataReceiver>(ctx_, global_, expected_eos);
  }
  recv_->set_merge_plane(this);
  return *recv_;
}

Status MergePlane::AddPartial(uint64_t key_hash, const uint8_t* rec) {
  const int dest = config_.seed_dest(key_hash);
  if (seed_wire()) {
    return ex_partial_->AddRecord(dest, rec);
  }
  // Phantom accounting: the seed would have paged this record to its
  // destination; charge the sender side here, ledger the receiver side.
  ++phantom_records_[static_cast<size_t>(dest)];
  if (++phantom_fill_[static_cast<size_t>(dest)] == page_capacity_) {
    ctx_->ChargePhantomSend(
        static_cast<uint32_t>(ctx_->params().message_page_bytes));
    ++phantom_pages_[static_cast<size_t>(dest)];
    phantom_fill_[static_cast<size_t>(dest)] = 0;
  }
  if (topology_ == MergeTopology::kShared) {
    return UpsertShared(rec, key_hash);
  }
  return contrib_->AddPartial(rec);
}

Status MergePlane::FlushPartials() {
  if (seed_wire()) {
    return ex_partial_->FlushAll();
  }
  const int n = ctx_->num_nodes();
  for (int d = 0; d < n; ++d) {
    if (phantom_fill_[static_cast<size_t>(d)] > 0) {
      ctx_->ChargePhantomSend(
          static_cast<uint32_t>(ctx_->params().message_page_bytes));
      ++phantom_pages_[static_cast<size_t>(d)];
      phantom_fill_[static_cast<size_t>(d)] = 0;
    }
    if (phantom_pages_[static_cast<size_t>(d)] > 0) {
      ctx_->obs().net_exchange_pages_per_dest.Observe(
          static_cast<double>(phantom_pages_[static_cast<size_t>(d)]));
    }
  }
  return Status::OK();
}

Status MergePlane::SendDataEos() {
  if (seed_wire()) {
    if (config_.broadcast_eos) {
      return BroadcastEos(ctx_, kPhaseData);
    }
    Message eos;
    eos.type = MessageType::kEndOfStream;
    eos.phase = kPhaseData;
    return ctx_->Send(0, eos);
  }
  const int n = ctx_->num_nodes();
  for (int dest = 0; dest < n; ++dest) {
    if (!config_.broadcast_eos && dest != 0) continue;
    Message eos;
    eos.type = MessageType::kEndOfStream;
    eos.phase = kPhaseData;
    if (phantom_records_[static_cast<size_t>(dest)] > 0) {
      eos.payload.resize(kLedgerBytes);
      WriteU64(eos.payload.data(),
               static_cast<uint64_t>(
                   phantom_records_[static_cast<size_t>(dest)]));
      WriteU64(
          eos.payload.data() + 8,
          static_cast<uint64_t>(phantom_pages_[static_cast<size_t>(dest)]));
      // The seed's EOS payload is empty; keep the marker free of charge.
      eos.charged_bytes = kExemptChargedBytes;
    }
    ADAPTAGG_RETURN_IF_ERROR(ctx_->Send(dest, eos));
  }
  return Status::OK();
}

Status MergePlane::FoldLedger(const Message& msg) {
  if (msg.payload.size() != kLedgerBytes) {
    return Status::NetworkError("bad merge ledger payload from node " +
                                std::to_string(msg.from));
  }
  const int64_t records = static_cast<int64_t>(ReadU64(msg.payload.data()));
  const int64_t pages = static_cast<int64_t>(ReadU64(msg.payload.data() + 8));
  const int64_t cap = page_capacity_;
  if (records <= 0 || pages <= 0 || pages != (records + cap - 1) / cap) {
    return Status::NetworkError("inconsistent merge ledger from node " +
                                std::to_string(msg.from));
  }
  // Replay the seed receive side: per page the wire + propagation
  // charge, then the per-record merge cost in kBatchWidth windows —
  // exactly DataReceiver::HandlePage on a full partial page.
  const SystemParams& p = ctx_->params();
  const double merge_cost = p.t_r() + p.t_a();
  for (int64_t i = 0; i < pages; ++i) {
    ctx_->ChargePhantomReceive(static_cast<uint32_t>(p.message_page_bytes));
    const int64_t cnt = (i + 1 < pages) ? cap : records - (pages - 1) * cap;
    for (int64_t run = 0; run < cnt; run += kBatchWidth) {
      const int64_t w = std::min<int64_t>(kBatchWidth, cnt - run);
      ctx_->clock().AddCpu(static_cast<double>(w) * merge_cost);
    }
    ctx_->stats().partial_records_received += cnt;
  }
  return Status::OK();
}

Status MergePlane::UpsertShared(const uint8_t* rec, uint64_t key_hash) {
  if (shared_->UpsertPartialConcurrent(rec, key_hash)) {
    return Status::OK();
  }
  overflow_.insert(overflow_.end(), rec,
                   rec + ctx_->spec().partial_width());
  return Status::OK();
}

Status MergePlane::FoldRawBatchShared(const TupleBatch& batch) {
  const AggregationSpec& spec = ctx_->spec();
  const size_t kw = static_cast<size_t>(spec.key_width());
  uint8_t* state = tmp_partial_.data() + kw;
  for (int i = 0; i < batch.size(); ++i) {
    const uint8_t* proj =
        batch.records() + static_cast<size_t>(i) *
                              static_cast<size_t>(batch.stride());
    std::memcpy(tmp_partial_.data(), proj, kw);
    spec.InitState(state);
    spec.UpdateFromProjected(state, proj);
    ADAPTAGG_RETURN_IF_ERROR(
        UpsertShared(tmp_partial_.data(), batch.hash(i)));
  }
  return Status::OK();
}

Status MergePlane::FoldPartialBatchShared(const TupleBatch& batch) {
  for (int i = 0; i < batch.size(); ++i) {
    const uint8_t* rec =
        batch.records() + static_cast<size_t>(i) *
                              static_cast<size_t>(batch.stride());
    ADAPTAGG_RETURN_IF_ERROR(UpsertShared(rec, batch.hash(i)));
  }
  return Status::OK();
}

Status MergePlane::DrainInto(SpillingAggregator& src, SpillingAggregator& dst,
                             bool seed_emit_bookkeeping) {
  const AggregationSpec& spec = ctx_->spec();
  std::vector<uint8_t> rec(static_cast<size_t>(spec.partial_width()));
  Status status;
  Status finish = src.Finish([&](const uint8_t* key, const uint8_t* state) {
    if (!status.ok()) return;
    std::memcpy(rec.data(), key, static_cast<size_t>(spec.key_width()));
    std::memcpy(rec.data() + spec.key_width(), state,
                static_cast<size_t>(spec.state_width()));
    status = dst.AddPartial(rec.data());
  });
  if (seed_emit_bookkeeping) {
    // The bookkeeping the seed's EmitFinalResults does when it drains
    // the global aggregator (its spill reads bill on SyncDiskIo).
    ctx_->stats().spill.Accumulate(src.stats());
    AccumulateHashTableObs(*ctx_, src.ht_stats());
    ctx_->SyncDiskIo();
  }
  if (!finish.ok()) return finish;
  return status;
}

Status MergePlane::FoldExemptPage(Message& msg, SpillingAggregator& dst) {
  const AggregationSpec& spec = ctx_->spec();
  Status status;
  ADAPTAGG_RETURN_IF_ERROR(ForEachRecordInPage(
      msg, spec.partial_width(), ctx_->params().message_page_bytes,
      [&](const uint8_t* rec) {
        if (status.ok()) status = dst.AddPartial(rec);
      }));
  ADAPTAGG_RETURN_IF_ERROR(status);
  ctx_->ReleasePageBuffer(std::move(msg.payload));
  return Status::OK();
}

std::vector<int> MergePlane::ReduceChildren() const {
  const int n = ctx_->num_nodes();
  const int id = ctx_->node_id();
  std::vector<int> children;
  if (topology_ == MergeTopology::kCentral) {
    if (id == 0) {
      for (int p = 1; p < n; ++p) children.push_back(p);
    }
    return children;
  }
  // Binomial subtree roots: id receives id+s for ascending power-of-two
  // s until its own send level (the lowest set bit of id).
  for (int64_t s = 1; s < n; s <<= 1) {
    if ((id & s) != 0) break;
    if (id + s < n) children.push_back(static_cast<int>(id + s));
  }
  return children;
}

int MergePlane::ReduceParent() const {
  const int id = ctx_->node_id();
  if (topology_ == MergeTopology::kCentral) return 0;
  return id & (id - 1);  // clears the lowest set bit
}

int64_t MergePlane::ScratchBound() const {
  // With a group estimate in hand, 2x covers sampling error without
  // paying for an M-sized bucket array per scratch table (the table
  // ctor allocates its bucket array eagerly, so an oversized bound is
  // real work on every merge). No estimate falls back to the M bound,
  // which can never spill more than the seed's own global table.
  if (est_groups_ > 0) return std::max<int64_t>(2 * est_groups_, 1024);
  return std::max<int64_t>(ctx_->max_hash_entries(), 1024);
}

int64_t MergePlane::EmitBound() const {
  if (est_groups_ > 0) {
    const int n = std::max(ctx_->num_nodes(), 1);
    // 2x the per-node share absorbs hash imbalance across owners.
    return std::max<int64_t>(2 * est_groups_ / n, 1024);
  }
  return std::max<int64_t>(ctx_->max_hash_entries(), 1024);
}

Status MergePlane::EmitAwaitLoop(SpillingAggregator& emit_agg,
                                 std::vector<bool>& awaiting,
                                 std::vector<Message>& parked) {
  NodeContext& ctx = *ctx_;
  const int n = ctx.num_nodes();
  int remaining = 0;
  for (bool b : awaiting) remaining += b ? 1 : 0;
  std::vector<Message> leftover;
  auto dispatch = [&](Message& msg) -> Status {
    if (msg.type == MessageType::kHeartbeat) return Status::OK();
    if (msg.type == MessageType::kAbort) {
      return Status::Internal("aborted by peer node " +
                              std::to_string(msg.from));
    }
    if (msg.phase == kPhaseMergeEmit &&
        msg.type == MessageType::kPartialPage) {
      return FoldExemptPage(msg, emit_agg);
    }
    if (msg.phase == kPhaseMergeEmit &&
        msg.type == MessageType::kEndOfStream) {
      if (msg.from >= 0 && msg.from < n &&
          awaiting[static_cast<size_t>(msg.from)]) {
        awaiting[static_cast<size_t>(msg.from)] = false;
        --remaining;
      }
      return Status::OK();
    }
    leftover.push_back(std::move(msg));
    return Status::OK();
  };
  // Frames that raced ahead of this round (e.g. overflow pages crossing
  // the shared barrier) fold first.
  for (Message& msg : parked) {
    ADAPTAGG_RETURN_IF_ERROR(dispatch(msg));
  }
  parked.clear();
  while (remaining > 0) {
    ADAPTAGG_ASSIGN_OR_RETURN(
        Message msg, ctx.AwaitMessage([&](int p) {
          return awaiting[static_cast<size_t>(p)];
        }));
    ADAPTAGG_RETURN_IF_ERROR(dispatch(msg));
  }
  // Stash only after the loop: AwaitMessage pops the stash first, so
  // stashing inside it would spin on the same frame.
  for (Message& msg : leftover) {
    ctx.Stash(std::move(msg));
  }
  return Status::OK();
}

Status MergePlane::ReduceAndEmit() {
  NodeContext& ctx = *ctx_;
  const AggregationSpec& spec = ctx.spec();
  const int n = ctx.num_nodes();
  const int id = ctx.node_id();
  SpillingAggregator merged(&spec, scratch_disk_.get(), ScratchBound(),
                            ctx.options().spill_fanout,
                            "mrg_red_n" + std::to_string(id));
  // Fold this node's two contribution sets: held local partials and the
  // raw-side groups the seed receiver folded into the global table. In
  // A-Rep a key can appear in both; the reduction merges them.
  ADAPTAGG_RETURN_IF_ERROR(DrainInto(*contrib_, merged, false));
  ADAPTAGG_RETURN_IF_ERROR(DrainInto(*global_, merged, true));

  // Collect the reduction subtree, any arrival order (a child's pages
  // always precede its EOS on the pair link, but different children
  // interleave freely).
  const std::vector<int> children = ReduceChildren();
  std::vector<bool> child_pending(static_cast<size_t>(n), false);
  for (int c : children) child_pending[static_cast<size_t>(c)] = true;
  int remaining = static_cast<int>(children.size());
  std::vector<Message> parked;
  while (remaining > 0) {
    ADAPTAGG_ASSIGN_OR_RETURN(
        Message msg, ctx.AwaitMessage([&](int p) {
          return child_pending[static_cast<size_t>(p)];
        }));
    if (msg.type == MessageType::kHeartbeat) continue;
    if (msg.type == MessageType::kAbort) {
      return Status::Internal("aborted by peer node " +
                              std::to_string(msg.from));
    }
    if (msg.phase == kPhaseMergeReduce &&
        msg.type == MessageType::kPartialPage) {
      ADAPTAGG_RETURN_IF_ERROR(FoldExemptPage(msg, merged));
    } else if (msg.phase == kPhaseMergeReduce &&
               msg.type == MessageType::kEndOfStream) {
      if (msg.from >= 0 && msg.from < n &&
          child_pending[static_cast<size_t>(msg.from)]) {
        child_pending[static_cast<size_t>(msg.from)] = false;
        --remaining;
      }
    } else {
      parked.push_back(std::move(msg));
    }
  }

  if (id != 0) {
    const int parent = ReduceParent();
    Exchange ex(ctx_, MessageType::kPartialPage, spec.partial_width(),
                kPhaseMergeReduce, /*cost_exempt=*/true);
    ADAPTAGG_RETURN_IF_ERROR(DrainToExchange(
        spec, merged, ex, [parent](const uint8_t*) { return parent; }));
    ADAPTAGG_RETURN_IF_ERROR(ex.FlushAll());
    Message eos;
    eos.type = MessageType::kEndOfStream;
    eos.phase = kPhaseMergeReduce;
    ADAPTAGG_RETURN_IF_ERROR(ctx.Send(parent, eos));
  } else {
    // Root: scatter merged groups back to their seed emit owners (self
    // included), so every final row lands on its seed node.
    Exchange ex(ctx_, MessageType::kPartialPage, spec.partial_width(),
                kPhaseMergeEmit, /*cost_exempt=*/true);
    ADAPTAGG_RETURN_IF_ERROR(
        DrainToExchange(spec, merged, ex, [&](const uint8_t* key) {
          return config_.seed_dest(spec.HashKey(key));
        }));
    ADAPTAGG_RETURN_IF_ERROR(ex.FlushAll());
    ADAPTAGG_RETURN_IF_ERROR(BroadcastEos(ctx_, kPhaseMergeEmit));
  }

  SpillingAggregator emit_agg(&spec, scratch_disk_.get(), EmitBound(),
                              ctx.options().spill_fanout,
                              "mrg_emit_n" + std::to_string(id));
  std::vector<bool> awaiting(static_cast<size_t>(n), false);
  awaiting[0] = true;  // only the root closes the emit round
  ADAPTAGG_RETURN_IF_ERROR(EmitAwaitLoop(emit_agg, awaiting, parked));
  return EmitFinalResults(ctx, emit_agg);
}

Status MergePlane::SharedFinishAndEmit() {
  NodeContext& ctx = *ctx_;
  const AggregationSpec& spec = ctx.spec();
  const int n = ctx.num_nodes();
  const int id = ctx.node_id();
  // Seed-emit bookkeeping for the global aggregator (empty in kShared —
  // the receiver folded raw pages straight into the shared table).
  Status fin = global_->Finish([](const uint8_t*, const uint8_t*) {});
  ctx.stats().spill.Accumulate(global_->stats());
  AccumulateHashTableObs(ctx, global_->ht_stats());
  ctx.SyncDiskIo();
  ADAPTAGG_RETURN_IF_ERROR(fin);

  // Barrier: each node's last upsert happens-before its EOS broadcast,
  // so collecting all n markers (self included) makes the table final.
  ADAPTAGG_RETURN_IF_ERROR(BroadcastEos(ctx_, kPhaseMergeReduce));
  std::vector<bool> barrier_pending(static_cast<size_t>(n), true);
  int remaining = n;
  std::vector<Message> parked;
  while (remaining > 0) {
    ADAPTAGG_ASSIGN_OR_RETURN(
        Message msg, ctx.AwaitMessage([&](int p) {
          return barrier_pending[static_cast<size_t>(p)];
        }));
    if (msg.type == MessageType::kHeartbeat) continue;
    if (msg.type == MessageType::kAbort) {
      return Status::Internal("aborted by peer node " +
                              std::to_string(msg.from));
    }
    if (msg.phase == kPhaseMergeReduce &&
        msg.type == MessageType::kEndOfStream) {
      if (msg.from >= 0 && msg.from < n &&
          barrier_pending[static_cast<size_t>(msg.from)]) {
        barrier_pending[static_cast<size_t>(msg.from)] = false;
        --remaining;
      }
    } else {
      // Overflow scatter frames from nodes already past the barrier.
      parked.push_back(std::move(msg));
    }
  }

  // This node's slice of the shared table, plus every node's refused
  // overflow records scattered home.
  SpillingAggregator emit_agg(&spec, scratch_disk_.get(), EmitBound(),
                              ctx.options().spill_fanout,
                              "mrg_emit_n" + std::to_string(id));
  Status status;
  shared_->ForEach([&](const uint8_t* key, const uint8_t* state) {
    if (!status.ok()) return;
    if (config_.seed_dest(spec.HashKey(key)) != id) return;
    std::memcpy(tmp_partial_.data(), key,
                static_cast<size_t>(spec.key_width()));
    std::memcpy(tmp_partial_.data() + spec.key_width(), state,
                static_cast<size_t>(spec.state_width()));
    status = emit_agg.AddPartial(tmp_partial_.data());
  });
  ADAPTAGG_RETURN_IF_ERROR(status);
  Exchange ex(ctx_, MessageType::kPartialPage, spec.partial_width(),
              kPhaseMergeEmit, /*cost_exempt=*/true);
  const size_t pw = static_cast<size_t>(spec.partial_width());
  for (size_t off = 0; off < overflow_.size(); off += pw) {
    const uint8_t* rec = overflow_.data() + off;
    ADAPTAGG_RETURN_IF_ERROR(
        ex.AddRecord(config_.seed_dest(spec.HashKey(rec)), rec));
  }
  ADAPTAGG_RETURN_IF_ERROR(ex.FlushAll());
  ADAPTAGG_RETURN_IF_ERROR(BroadcastEos(ctx_, kPhaseMergeEmit));
  std::vector<bool> awaiting(static_cast<size_t>(n), true);
  ADAPTAGG_RETURN_IF_ERROR(EmitAwaitLoop(emit_agg, awaiting, parked));
  return EmitFinalResults(ctx, emit_agg);
}

Status MergePlane::FinishAndEmit() {
  if (seed_wire()) {
    return EmitFinalResults(*ctx_, *global_);
  }
  if (topology_ == MergeTopology::kShared) {
    return SharedFinishAndEmit();
  }
  return ReduceAndEmit();
}

Status SendPartials(NodeContext& ctx, SpillingAggregator& agg,
                    MergePlane& merge) {
  const AggregationSpec& spec = ctx.spec();
  std::vector<uint8_t> rec(static_cast<size_t>(spec.partial_width()));
  Status status;
  Status finish = agg.Finish([&](const uint8_t* key, const uint8_t* state) {
    if (!status.ok()) return;
    ctx.clock().AddCpu(ctx.params().t_w());
    std::memcpy(rec.data(), key, static_cast<size_t>(spec.key_width()));
    std::memcpy(rec.data() + spec.key_width(), state,
                static_cast<size_t>(spec.state_width()));
    ++ctx.stats().partial_records_sent;
    status = merge.AddPartial(spec.HashKey(key), rec.data());
  });
  ctx.stats().spill.Accumulate(agg.stats());
  AccumulateHashTableObs(ctx, agg.ht_stats());
  ctx.SyncDiskIo();
  if (!finish.ok()) return finish;
  return status;
}

Status SendTablePartials(NodeContext& ctx, AggHashTable& table,
                         MergePlane& merge) {
  const AggregationSpec& spec = ctx.spec();
  std::vector<uint8_t> rec(static_cast<size_t>(spec.partial_width()));
  Status status;
  table.ForEach([&](const uint8_t* key, const uint8_t* state) {
    if (!status.ok()) return;
    ctx.clock().AddCpu(ctx.params().t_w());
    std::memcpy(rec.data(), key, static_cast<size_t>(spec.key_width()));
    std::memcpy(rec.data() + spec.key_width(), state,
                static_cast<size_t>(spec.state_width()));
    ++ctx.stats().partial_records_sent;
    status = merge.AddPartial(spec.HashKey(key), rec.data());
  });
  table.Clear();
  return status;
}

}  // namespace adaptagg
