#include "cluster/recovery.h"

#include <utility>

#include "cluster/node_context.h"
#include "common/logging.h"
#include "storage/faulty_disk.h"

namespace adaptagg {

RecoveryNode::RecoveryNode(CheckpointStore* store, int node,
                           int64_t every_batches)
    : store_(store), node_(node), every_(every_batches) {}

void RecoveryNode::BeginAttempt(NodeContext& ctx) {
  ticks_ = 0;
  restore_.reset();
  if (!store_->Has(node_)) return;
  Result<CheckpointState> loaded = store_->Load(node_);
  if (!loaded.ok()) {
    // A torn or truncated checkpoint must never become a wrong answer:
    // count it, drop it, and replay this node from scratch.
    ctx.obs().recovery_checkpoint_data_loss.Increment();
    ctx.obs().RecordFault(
        "recovery.checkpoint_data_loss",
        {{"node", node_},
         {"code", static_cast<int64_t>(loaded.status().code())}});
    ADAPTAGG_LOG(kWarning) << "node " << node_ << ": "
                           << loaded.status().ToString()
                           << "; replaying from scratch";
    store_->Drop(node_);
    return;
  }
  restore_ = std::make_unique<CheckpointState>(std::move(loaded).value());
  ctx.obs().recovery_nodes_restored.Increment();
}

bool RecoveryNode::TickBatch() {
  if (every_ <= 0) return false;
  return ++ticks_ % every_ == 0;
}

void RecoveryNode::WriteCheckpoint(NodeContext& ctx,
                                   const CheckpointState& state) {
  const Status st = store_->Write(node_, state);
  if (!st.ok()) {
    ctx.obs().recovery_checkpoint_failures.Increment();
    ctx.obs().RecordFault(
        "recovery.checkpoint_write_failed",
        {{"node", node_}, {"code", static_cast<int64_t>(st.code())}});
    return;
  }
  ctx.obs().recovery_checkpoints_written.Increment();
  ctx.obs().recovery_checkpoint_bytes.Add(store_->last_write_bytes(node_));
}

void RecoveryNode::CountSkipped(NodeContext& ctx) {
  ctx.obs().recovery_checkpoints_skipped.Increment();
}

RecoveryRuntime::RecoveryRuntime(int num_nodes, int page_size,
                                 int64_t every_batches,
                                 CheckpointStore::DiskFactory disk_factory)
    : store_(num_nodes, page_size, std::move(disk_factory)) {
  nodes_.reserve(static_cast<size_t>(num_nodes));
  for (int i = 0; i < num_nodes; ++i) {
    nodes_.emplace_back(&store_, i, every_batches);
  }
}

CheckpointStore::DiskFactory MakeCheckpointDiskFactory(const FaultPlan& plan,
                                                       int page_size) {
  if (!plan.HasCheckpointDiskFaults()) return {};
  return [plan, page_size](int node) -> std::unique_ptr<Disk> {
    const int64_t fail_nth = plan.DiskFailNthForNode(node);
    if (fail_nth >= 0) {
      auto disk = std::make_unique<FaultySimDisk>(page_size);
      disk->FailWritesAfter(fail_nth);
      return disk;
    }
    const int64_t tear_nth = plan.TornWriteNthForNode(node);
    if (tear_nth >= 0) {
      auto disk = std::make_unique<TornWriteDisk>(page_size);
      disk->TearWrite(tear_nth);
      return disk;
    }
    return std::make_unique<SimDisk>(page_size);
  };
}

}  // namespace adaptagg
