#include "cluster/node_context.h"

#include "common/logging.h"
#include "exec/scan.h"
#include "exec/select.h"

namespace adaptagg {

NodeContext::NodeContext(int node_id, const SystemParams& params,
                         const AggregationSpec& spec,
                         const AlgorithmOptions& options,
                         HeapFile* local_partition, Disk* disk,
                         Transport* transport, NetworkModel* net,
                         double obs_wall_epoch_s)
    : node_id_(node_id),
      params_(params),
      spec_(spec),
      options_(options),
      local_partition_(local_partition),
      disk_(disk),
      transport_(transport),
      net_(net),
      obs_(std::make_unique<NodeObs>(
          node_id, options.obs, &clock_,
          obs_wall_epoch_s >= 0 ? obs_wall_epoch_s : WallSeconds())),
      row_buf_(static_cast<size_t>(spec.final_schema().tuple_size())) {
  if (disk_ != nullptr) last_disk_ = disk_->stats();
}

int64_t NodeContext::max_hash_entries() const {
  return options_.max_hash_entries > 0 ? options_.max_hash_entries
                                       : params_.max_hash_entries;
}

int64_t NodeContext::crossover_threshold() const {
  return options_.crossover_threshold > 0
             ? options_.crossover_threshold
             : 100LL * params_.num_nodes;
}

int64_t NodeContext::few_groups_threshold() const {
  return options_.few_groups_threshold > 0 ? options_.few_groups_threshold
                                           : crossover_threshold();
}

Status NodeContext::Send(int to, Message msg) {
  net_->OnSend(clock_, msg);
  ++stats_.messages_sent;
  const int64_t bytes = static_cast<int64_t>(msg.payload.size());
  obs_->net_msgs_sent.Increment();
  obs_->net_bytes_sent.Add(bytes);
  obs_->net_pages_sent.Add(
      (bytes + params_.page_bytes - 1) / params_.page_bytes);
  obs_->net_msg_bytes.Observe(bytes);
  return transport_->Send(to, std::move(msg));
}

Result<Message> NodeContext::Recv() {
  if (!stash_.empty()) {
    Message msg = std::move(stash_.front());
    stash_.pop_front();
    return msg;  // receive costs were charged when first popped
  }
  ADAPTAGG_ASSIGN_OR_RETURN(Message msg, transport_->Recv());
  net_->OnReceive(clock_, msg);
  return msg;
}

std::optional<Message> NodeContext::TryRecv() {
  if (!stash_.empty()) {
    Message msg = std::move(stash_.front());
    stash_.pop_front();
    return msg;
  }
  std::optional<Message> msg = transport_->TryRecv();
  if (msg.has_value()) net_->OnReceive(clock_, *msg);
  return msg;
}

void NodeContext::SyncDiskIo() {
  if (disk_ == nullptr) return;
  const DiskStats& now = disk_->stats();
  int64_t seq = (now.pages_read_seq - last_disk_.pages_read_seq) +
                (now.pages_written - last_disk_.pages_written);
  int64_t rand = now.pages_read_rand - last_disk_.pages_read_rand;
  if (seq > 0) clock_.AddIo(static_cast<double>(seq) * params_.io_seq_s);
  if (rand > 0) clock_.AddIo(static_cast<double>(rand) * params_.io_rand_s);
  last_disk_ = now;
}

Status NodeContext::EmitFinalRow(const uint8_t* key, const uint8_t* state) {
  spec_.FinalizeRecord(key, state, row_buf_.data());
  // HAVING is evaluated after grouping (§2); rows failing it are never
  // generated or stored.
  if (options_.having != nullptr) {
    clock_.AddCpu(params_.t_r());
    TupleView row(row_buf_.data(), &spec_.final_schema());
    if (!EvalPredicate(*options_.having, row)) {
      ++stats_.rows_filtered_by_having;
      return Status::OK();
    }
  }
  clock_.AddCpu(params_.t_w());  // generating the result tuple
  ++stats_.result_rows;
  if (options_.store_results && disk_ != nullptr) {
    if (result_file_ == nullptr) {
      ADAPTAGG_ASSIGN_OR_RETURN(
          HeapFile hf,
          HeapFile::Create(disk_, &spec_.final_schema(),
                           "result_n" + std::to_string(node_id_)));
      result_file_ = std::make_unique<HeapFile>(std::move(hf));
    }
    ADAPTAGG_RETURN_IF_ERROR(result_file_->AppendRaw(row_buf_.data()));
  }
  if (options_.gather_results && gather_rows_ != nullptr) {
    std::lock_guard<std::mutex> lock(*gather_mu_);
    gather_rows_->emplace_back(row_buf_.begin(), row_buf_.end());
  }
  return Status::OK();
}

Status NodeContext::FinishResults() {
  if (result_file_ != nullptr) {
    ADAPTAGG_RETURN_IF_ERROR(result_file_->Flush());
  }
  SyncDiskIo();
  return Status::OK();
}

void NodeContext::FinalizeObs() {
  NodeObs& o = *obs_;
  o.scan_tuples.Add(stats_.tuples_scanned);
  o.net_raw_records_sent.Add(stats_.raw_records_sent);
  o.net_partial_records_sent.Add(stats_.partial_records_sent);
  o.net_raw_records_received.Add(stats_.raw_records_received);
  o.net_partial_records_received.Add(stats_.partial_records_received);
  o.core_result_rows.Add(stats_.result_rows);
  o.core_rows_filtered_by_having.Add(stats_.rows_filtered_by_having);
  o.agg_spill_records.Add(stats_.spill.overflow_records);
  o.agg_spill_pages_written.Add(stats_.spill.spill_pages_written);
  o.agg_spill_pages_read.Add(stats_.spill.spill_pages_read);
  if (transport_ != nullptr) {
    o.net_channel_depth_high_water.UpdateMax(
        static_cast<int64_t>(transport_->inbox_high_water()));
  }
}

LocalScanner::LocalScanner(NodeContext* ctx)
    : ctx_(ctx),
      select_cost_(ctx->params().t_r() + ctx->params().t_w()) {
  // The scan operator gets no clock: the node's disk I/O is accounted
  // centrally by NodeContext::SyncDiskIo (one accountant per disk —
  // a second baseline here would double-charge the scan pages). Select
  // cost is charged per tuple below.
  RowOperatorPtr scan = std::make_unique<ScanOperator>(
      ctx->local_partition(), /*clock=*/nullptr, /*params=*/nullptr);
  if (ctx->options().where != nullptr) {
    // The WHERE predicate was validated by Cluster::Run; Make re-checks
    // cheaply and wires the select into the pipeline.
    Result<RowOperatorPtr> select =
        SelectOperator::Make(std::move(scan), ctx->options().where,
                             &ctx->clock(), &ctx->params());
    if (!select.ok()) {
      status_ = select.status();
      return;
    }
    op_ = std::move(select).value();
  } else {
    op_ = std::move(scan);
  }
  status_ = op_->Open();
}

TupleView LocalScanner::Next() {
  if (!status_.ok() || op_ == nullptr) return TupleView();
  TupleView t = op_->Next();
  if (t.valid()) {
    ctx_->clock().AddCpu(select_cost_);
    ++ctx_->stats().tuples_scanned;
  } else {
    status_ = op_->Close();
    op_.reset();
    ctx_->SyncDiskIo();
  }
  return t;
}

int LocalScanner::FillBatch(TupleBatch& batch) {
  batch.Clear();
  if (!status_.ok() || op_ == nullptr) return 0;
  TupleView views[kBatchWidth];
  while (!batch.full()) {
    int got = op_->NextBatch(views, kBatchWidth - batch.size());
    if (got == 0) {
      status_ = op_->Close();
      op_.reset();
      ctx_->SyncDiskIo();
      break;
    }
    // Project at gather: the views only stay valid until the next
    // operator call, the projected copies live in the batch arena.
    // Scans hand back densely packed page records, so gather maximal
    // contiguous runs in one call each (selection gaps break runs).
    const int rec_size = ctx_->spec().input_schema().tuple_size();
    int i = 0;
    while (i < got) {
      const uint8_t* base = views[i].data();
      int j = i + 1;
      while (j < got &&
             views[j].data() ==
                 base + static_cast<size_t>(j - i) * rec_size) {
        ++j;
      }
      batch.GatherRun(base, rec_size, j - i);
      i = j;
    }
  }
  const int n = batch.size();
  if (n > 0) {
    ctx_->clock().AddCpu(static_cast<double>(n) * select_cost_);
    ctx_->stats().tuples_scanned += n;
    batch.ComputeHashes();
  }
  return n;
}

}  // namespace adaptagg
