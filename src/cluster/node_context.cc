#include "cluster/node_context.h"

#include <algorithm>
#include <chrono>
#include <thread>

#include "common/logging.h"
#include "exec/scan.h"
#include "exec/select.h"
#include "model/cost_model.h"

namespace adaptagg {
namespace {

/// Derives the blocking-receive idle deadline from the cost model: the
/// worst-case full-run estimate over the highest-traffic algorithm
/// (Repartitioning at S = 0.5). Simulation runs much faster than the
/// modeled cluster, so the modeled total is a generous wall-clock bound
/// on any single phase. Armed runs get a tight bound (faults should be
/// detected quickly); unarmed runs get a very generous one — there the
/// deadline only exists to turn a would-be-infinite hang into an error.
double DeriveIdleTimeoutS(const SystemParams& params, bool armed) {
  CostModel model(CostModel::Config{params});
  const double modeled =
      model.Time(AlgorithmKind::kRepartitioning, /*selectivity=*/0.5);
  if (armed) return std::clamp(modeled, 5.0, 120.0);
  return std::clamp(60.0 + modeled, 60.0, 600.0);
}

}  // namespace

NodeContext::NodeContext(int node_id, const SystemParams& params,
                         const AggregationSpec& spec,
                         const AlgorithmOptions& options,
                         HeapFile* local_partition, Disk* disk,
                         Transport* transport, NetworkModel* net,
                         double obs_wall_epoch_s)
    : node_id_(node_id),
      params_(params),
      spec_(spec),
      options_(options),
      local_partition_(local_partition),
      disk_(disk),
      transport_(transport),
      net_(net),
      obs_(std::make_unique<NodeObs>(
          node_id, options.obs, &clock_,
          obs_wall_epoch_s >= 0 ? obs_wall_epoch_s : WallSeconds())),
      send_seq_(static_cast<size_t>(params.num_nodes), 0),
      recv_seq_(static_cast<size_t>(params.num_nodes), 0),
      page_seq_(static_cast<size_t>(params.num_nodes), 0),
      last_heard_(static_cast<size_t>(params.num_nodes), WallSeconds()),
      row_buf_(static_cast<size_t>(spec.final_schema().tuple_size())) {
  if (disk_ != nullptr) last_disk_ = disk_->stats();

  armed_ = options.failure.enabled || !options.fault_plan.empty();
  idle_timeout_s_ = options.failure.recv_idle_timeout_s > 0
                        ? options.failure.recv_idle_timeout_s
                        : DeriveIdleTimeoutS(params, armed_);
  heartbeat_interval_s_ = options.failure.heartbeat_interval_s > 0
                              ? options.failure.heartbeat_interval_s
                              : idle_timeout_s_ / 4;
  phase_budget_s_ = options.failure.phase_budget_s > 0
                        ? options.failure.phase_budget_s
                        : 8 * idle_timeout_s_;
  tick_s_ = std::min(idle_timeout_s_ / 4, 0.25);
  last_heartbeat_wall_ = WallSeconds();

  const FaultSpec* crash = options.fault_plan.CrashForNode(node_id);
  if (crash != nullptr) {
    crash_at_tuple_ = crash->tuple;
    crash_at_phase_ = crash->phase;
  }
  straggle_secs_ = options.fault_plan.StraggleSecsForNode(node_id);
}

int64_t NodeContext::max_hash_entries() const {
  return options_.max_hash_entries > 0 ? options_.max_hash_entries
                                       : params_.max_hash_entries;
}

int64_t NodeContext::crossover_threshold() const {
  return options_.crossover_threshold > 0
             ? options_.crossover_threshold
             : 100LL * params_.num_nodes;
}

int64_t NodeContext::few_groups_threshold() const {
  return options_.few_groups_threshold > 0 ? options_.few_groups_threshold
                                           : crossover_threshold();
}

Status NodeContext::Send(int to, Message msg) {
  if (to >= 0 && to < num_nodes()) {
    msg.seq = ++send_seq_[static_cast<size_t>(to)];
  }
  msg.epoch = options_.epoch;
  net_->OnSend(clock_, msg);
  ++stats_.messages_sent;
  const int64_t bytes = static_cast<int64_t>(msg.payload.size());
  obs_->net_msgs_sent.Increment();
  obs_->net_bytes_sent.Add(bytes);
  obs_->net_pages_sent.Add(
      (bytes + params_.page_bytes - 1) / params_.page_bytes);
  obs_->net_msg_bytes.Observe(bytes);
  return transport_->Send(to, std::move(msg));
}

std::vector<uint8_t> NodeContext::AcquirePageBuffer() {
  std::vector<uint8_t> buf = page_pool_.Acquire();
  if (buf.capacity() > 0) {
    obs_->net_page_pool_hits.Increment();
  } else {
    obs_->net_page_pool_allocs.Increment();
  }
  return buf;
}

void NodeContext::ReleasePageBuffer(std::vector<uint8_t> buf) {
  page_pool_.Release(std::move(buf));
}

Result<bool> NodeContext::AdmitIncoming(const Message& msg) {
  const int from = msg.from;
  if (from < 0 || from >= num_nodes()) {
    return true;  // unattributed traffic (raw transport users in tests)
  }
  last_heard_[static_cast<size_t>(from)] = WallSeconds();
  if (msg.epoch != options_.epoch) {
    // A frame from another membership epoch is a stale leftover of a
    // pre-resize mesh: drop it before any sequence bookkeeping so the
    // old membership's traffic can never corrupt the new one's state.
    obs_->recovery_stale_epoch_dropped.Increment();
    return false;
  }
  if (msg.seq == 0) {
    // Unsequenced: sent around NodeContext (raw transport users).
    return msg.type != MessageType::kHeartbeat;
  }
  uint64_t& last = recv_seq_[static_cast<size_t>(from)];
  if (msg.type == MessageType::kAbort) {
    // Aborts terminate the run; a gap in front of one is irrelevant.
    last = std::max(last, msg.seq);
    return true;
  }
  if (msg.seq <= last) {
    // Already seen (duplicated in transit): silently discard, so a
    // duplicate can never double-count aggregation state.
    obs_->fault_dup_discarded.Increment();
    return false;
  }
  if (msg.seq != last + 1) {
    obs_->fault_seq_gaps.Increment();
    obs_->RecordFault("fault.seq_gap", {{"from", from},
                                        {"expected",
                                         static_cast<int64_t>(last + 1)},
                                        {"got",
                                         static_cast<int64_t>(msg.seq)}});
    return Status::NetworkError(
        "message loss detected: node " + std::to_string(from) +
        " skipped from seq " + std::to_string(last + 1) + " to " +
        std::to_string(msg.seq) + " (phase '" + current_phase_ +
        "'; a message was dropped or rejected in transit)");
  }
  last = msg.seq;
  // Heartbeats are runtime-internal: account them, then swallow them.
  return msg.type != MessageType::kHeartbeat;
}

Result<Message> NodeContext::RecvWithDeadline(double timeout_s) {
  if (!stash_.empty()) {
    Message msg = std::move(stash_.front());
    stash_.pop_front();
    return msg;  // receive costs were charged when first popped
  }
  double remaining = timeout_s;
  while (true) {
    const double t0 = WallSeconds();
    ADAPTAGG_ASSIGN_OR_RETURN(Message msg,
                              transport_->RecvWithDeadline(remaining));
    ADAPTAGG_ASSIGN_OR_RETURN(bool deliver, AdmitIncoming(msg));
    if (deliver) {
      net_->OnReceive(clock_, msg);
      return msg;
    }
    if (remaining >= 0) {
      remaining = std::max(0.0, remaining - (WallSeconds() - t0));
    }
  }
}

Result<std::optional<Message>> NodeContext::TryRecv() {
  if (!stash_.empty()) {
    Message msg = std::move(stash_.front());
    stash_.pop_front();
    return std::optional<Message>(std::move(msg));
  }
  while (std::optional<Message> msg = transport_->TryRecv()) {
    ADAPTAGG_ASSIGN_OR_RETURN(bool deliver, AdmitIncoming(*msg));
    if (!deliver) continue;
    net_->OnReceive(clock_, *msg);
    return std::optional<Message>(std::move(*msg));
  }
  return std::optional<Message>();
}

Result<Message> NodeContext::AwaitMessage(
    const std::function<bool(int)>& pending) {
  if (!armed_) {
    Result<Message> msg = RecvWithDeadline(idle_timeout_s_);
    if (!msg.ok() &&
        msg.status().code() == StatusCode::kDeadlineExceeded) {
      obs_->fault_deadline_aborts.Increment();
      return Status::DeadlineExceeded(
          "no inbound traffic for " + std::to_string(idle_timeout_s_) +
          "s in phase '" + current_phase_ +
          "' (cluster stalled: a message was lost or a peer hung)");
    }
    return msg;
  }
  const double start = WallSeconds();
  while (true) {
    MaybeHeartbeat();
    Result<Message> msg = RecvWithDeadline(tick_s_);
    if (msg.ok() ||
        msg.status().code() != StatusCode::kDeadlineExceeded) {
      return msg;
    }
    const double now = WallSeconds();
    for (int p = 0; p < num_nodes(); ++p) {
      if (p == node_id_ || !pending(p)) continue;
      const double silent = now - last_heard_[static_cast<size_t>(p)];
      if (silent > idle_timeout_s_) {
        obs_->fault_deadline_aborts.Increment();
        obs_->RecordFault("fault.peer_silent", {{"peer", p}});
        return Status::DeadlineExceeded(
            "peer node " + std::to_string(p) + " silent for " +
            std::to_string(silent) + "s in phase '" + current_phase_ +
            "' (presumed crashed; deadline " +
            std::to_string(idle_timeout_s_) + "s)");
      }
    }
    if (now - start > phase_budget_s_) {
      obs_->fault_deadline_aborts.Increment();
      return Status::DeadlineExceeded(
          "phase budget " + std::to_string(phase_budget_s_) +
          "s exceeded in phase '" + current_phase_ +
          "' (peers alive but not progressing)");
    }
  }
}

Status NodeContext::EnterPhase(const char* phase) {
  current_phase_ = phase;
  if (!crash_at_phase_.empty() && !crashed_ &&
      crash_at_phase_ == current_phase_) {
    return InjectCrash("phase boundary '" + current_phase_ + "'");
  }
  return Status::OK();
}

void NodeContext::PollRuntime() {
  if (straggle_secs_ > 0) {
    obs_->fault_straggle_sleeps.Increment();
    std::this_thread::sleep_for(
        std::chrono::duration<double>(straggle_secs_));
  }
  MaybeHeartbeat();
}

void NodeContext::MaybeHeartbeat() {
  if (!armed_) return;
  const double now = WallSeconds();
  if (now - last_heartbeat_wall_ < heartbeat_interval_s_) return;
  last_heartbeat_wall_ = now;
  for (int p = 0; p < num_nodes(); ++p) {
    if (p == node_id_) continue;
    Message hb;
    hb.type = MessageType::kHeartbeat;
    hb.seq = ++send_seq_[static_cast<size_t>(p)];
    hb.epoch = options_.epoch;
    // Best-effort: a failed beacon just means the peer's detector fires.
    (void)transport_->Send(p, std::move(hb));
    obs_->fault_heartbeats_sent.Increment();
  }
}

Status NodeContext::CheckScanFault() {
  if (crash_at_tuple_ >= 0 && !crashed_ &&
      stats_.tuples_scanned >= crash_at_tuple_) {
    return InjectCrash("tuple " + std::to_string(stats_.tuples_scanned) +
                       " (phase '" + current_phase_ + "')");
  }
  return Status::OK();
}

Status NodeContext::InjectCrash(const std::string& where) {
  crashed_ = true;
  transport_->SimulateFailStop();
  obs_->fault_crashes_injected.Increment();
  obs_->RecordFault("fault.crash", {{"node", node_id_}});
  return Status::Internal("injected crash at " + where);
}

void NodeContext::ChargePhantomSend(uint32_t charged_bytes) {
  Message msg;
  msg.type = MessageType::kPartialPage;
  msg.charged_bytes = charged_bytes;
  net_->OnSend(clock_, msg);
}

void NodeContext::ChargePhantomReceive(uint32_t charged_bytes) {
  Message msg;
  msg.type = MessageType::kPartialPage;
  msg.charged_bytes = charged_bytes;
  net_->OnReceive(clock_, msg);
}

void NodeContext::SyncDiskIo() {
  if (disk_ == nullptr) return;
  const DiskStats& now = disk_->stats();
  int64_t seq = (now.pages_read_seq - last_disk_.pages_read_seq) +
                (now.pages_written - last_disk_.pages_written);
  int64_t rand = now.pages_read_rand - last_disk_.pages_read_rand;
  if (seq > 0) clock_.AddIo(static_cast<double>(seq) * params_.io_seq_s);
  if (rand > 0) clock_.AddIo(static_cast<double>(rand) * params_.io_rand_s);
  last_disk_ = now;
}

Status NodeContext::EmitFinalRow(const uint8_t* key, const uint8_t* state) {
  spec_.FinalizeRecord(key, state, row_buf_.data());
  // HAVING is evaluated after grouping (§2); rows failing it are never
  // generated or stored.
  if (options_.having != nullptr) {
    clock_.AddCpu(params_.t_r());
    TupleView row(row_buf_.data(), &spec_.final_schema());
    if (!EvalPredicate(*options_.having, row)) {
      ++stats_.rows_filtered_by_having;
      return Status::OK();
    }
  }
  clock_.AddCpu(params_.t_w());  // generating the result tuple
  ++stats_.result_rows;
  if (options_.store_results && disk_ != nullptr) {
    if (result_file_ == nullptr) {
      // Session runs namespace the file by query id: concurrent sessions
      // store results on the same shared node disks.
      const std::string name =
          options_.query_id != 0
              ? "result_q" + std::to_string(options_.query_id) + "_n" +
                    std::to_string(node_id_)
              : "result_n" + std::to_string(node_id_);
      ADAPTAGG_ASSIGN_OR_RETURN(
          HeapFile hf,
          HeapFile::Create(disk_, &spec_.final_schema(), name));
      result_file_ = std::make_unique<HeapFile>(std::move(hf));
    }
    ADAPTAGG_RETURN_IF_ERROR(result_file_->AppendRaw(row_buf_.data()));
  }
  if (options_.gather_results && gather_ != nullptr) {
    gather_->Append(row_buf_.data(), row_buf_.size());
  }
  return Status::OK();
}

Status NodeContext::FinishResults() {
  if (result_file_ != nullptr) {
    ADAPTAGG_RETURN_IF_ERROR(result_file_->Flush());
  }
  SyncDiskIo();
  return Status::OK();
}

void NodeContext::FinalizeObs() {
  NodeObs& o = *obs_;
  o.scan_tuples.Add(stats_.tuples_scanned);
  o.net_raw_records_sent.Add(stats_.raw_records_sent);
  o.net_partial_records_sent.Add(stats_.partial_records_sent);
  o.net_raw_records_received.Add(stats_.raw_records_received);
  o.net_partial_records_received.Add(stats_.partial_records_received);
  o.core_result_rows.Add(stats_.result_rows);
  o.core_rows_filtered_by_having.Add(stats_.rows_filtered_by_having);
  o.agg_spill_records.Add(stats_.spill.overflow_records);
  o.agg_spill_pages_written.Add(stats_.spill.spill_pages_written);
  o.agg_spill_pages_read.Add(stats_.spill.spill_pages_read);
  if (transport_ != nullptr) {
    o.net_channel_depth_high_water.UpdateMax(
        static_cast<int64_t>(transport_->inbox_high_water()));
    o.fault_frames_rejected.Add(
        static_cast<int64_t>(transport_->frames_rejected()));
  }
}

LocalScanner::LocalScanner(NodeContext* ctx)
    : ctx_(ctx),
      select_cost_(ctx->params().t_r() + ctx->params().t_w()) {
  // The scan operator gets no clock: the node's disk I/O is accounted
  // centrally by NodeContext::SyncDiskIo (one accountant per disk —
  // a second baseline here would double-charge the scan pages). Select
  // cost is charged per tuple below.
  RowOperatorPtr scan = std::make_unique<ScanOperator>(
      ctx->local_partition(), /*clock=*/nullptr, /*params=*/nullptr);
  if (ctx->options().where != nullptr) {
    // The WHERE predicate was validated by Cluster::Run; Make re-checks
    // cheaply and wires the select into the pipeline.
    Result<RowOperatorPtr> select =
        SelectOperator::Make(std::move(scan), ctx->options().where,
                             &ctx->clock(), &ctx->params());
    if (!select.ok()) {
      status_ = select.status();
      return;
    }
    op_ = std::move(select).value();
  } else {
    op_ = std::move(scan);
  }
  status_ = op_->Open();
}

TupleView LocalScanner::Next() {
  if (!status_.ok() || op_ == nullptr) return TupleView();
  TupleView t = op_->Next();
  if (t.valid()) {
    ctx_->clock().AddCpu(select_cost_);
    ++ctx_->stats().tuples_scanned;
    Status fault = ctx_->CheckScanFault();
    if (!fault.ok()) {
      status_ = fault;
      return TupleView();
    }
  } else {
    status_ = op_->Close();
    op_.reset();
    ctx_->SyncDiskIo();
  }
  return t;
}

int LocalScanner::FillBatch(TupleBatch& batch) {
  batch.Clear();
  if (!status_.ok() || op_ == nullptr) return 0;
  TupleView views[kBatchWidth];
  while (!batch.full()) {
    int got = op_->NextBatch(views, kBatchWidth - batch.size());
    if (got == 0) {
      status_ = op_->Close();
      op_.reset();
      ctx_->SyncDiskIo();
      break;
    }
    // Project at gather: the views only stay valid until the next
    // operator call, the projected copies live in the batch arena.
    // Scans hand back densely packed page records, so gather maximal
    // contiguous runs in one call each (selection gaps break runs).
    const int rec_size = ctx_->spec().input_schema().tuple_size();
    int i = 0;
    while (i < got) {
      const uint8_t* base = views[i].data();
      int j = i + 1;
      while (j < got &&
             views[j].data() ==
                 base + static_cast<size_t>(j - i) * rec_size) {
        ++j;
      }
      batch.GatherRun(base, rec_size, j - i);
      i = j;
    }
  }
  const int n = batch.size();
  if (n > 0) {
    ctx_->clock().AddCpu(static_cast<double>(n) * select_cost_);
    ctx_->stats().tuples_scanned += n;
    batch.ComputeHashes();
    // Injected crash-at-tuple faults fire at batch granularity: the
    // first batch boundary at or past the trigger index.
    Status fault = ctx_->CheckScanFault();
    if (!fault.ok()) {
      status_ = fault;
      return 0;
    }
  }
  return n;
}

}  // namespace adaptagg
