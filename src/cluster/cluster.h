#ifndef ADAPTAGG_CLUSTER_CLUSTER_H_
#define ADAPTAGG_CLUSTER_CLUSTER_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "agg/reference.h"
#include "cluster/node_context.h"
#include "storage/partitioned_relation.h"

namespace adaptagg {

/// A parallel aggregation algorithm, written once against NodeContext and
/// executed by every node of the cluster. Implementations must be
/// stateless across RunNode calls (one instance serves all node threads).
class Algorithm {
 public:
  virtual ~Algorithm() = default;

  virtual std::string name() const = 0;

  /// Executes this node's share of the computation. Called concurrently
  /// on N threads, one per node.
  virtual Status RunNode(NodeContext& ctx) const = 0;
};

/// Outcome of one cluster run.
struct RunResult {
  Status status;
  /// Modeled completion time: max over nodes of the simulated clock,
  /// plus the serialized wire total on a limited-bandwidth network.
  double sim_time_s = 0;
  /// Total occupancy of the shared medium (limited-bandwidth runs only).
  double wire_time_s = 0;
  /// Real elapsed time of the run.
  double wall_time_s = 0;
  std::vector<CostClock> clocks;
  std::vector<NodeRunStats> node_stats;
  /// Gathered final rows (when options.gather_results).
  ResultSet results;
  /// Merged metric snapshot over every node's registry shard (empty when
  /// options.obs.metrics is off or the build disables observability).
  MetricsSnapshot metrics;
  /// Concatenated per-node trace event logs (only when options.obs.traces
  /// is on). Export with ChromeTraceJson/WriteChromeTrace.
  std::vector<TraceEvent> trace_events;
  /// Node count of the run (the trace exporter's track count).
  int num_nodes = 0;
  /// Serving-layer session id of the run (0: one-shot Cluster::Run).
  /// Surfaces in RunSummaryLine so concurrent sessions' summary lines
  /// stay attributable.
  uint32_t query_id = 0;
  /// True when the serving layer answered from its ResultCache without
  /// touching the data plane (sim/wire/wall times are then ~0 and
  /// clocks/node_stats/metrics are empty).
  bool from_cache = false;

  int64_t total_result_rows() const {
    int64_t n = 0;
    for (const auto& s : node_stats) n += s.result_rows;
    return n;
  }
  /// Number of nodes that adaptively switched strategies.
  int nodes_switched() const {
    int n = 0;
    for (const auto& s : node_stats) n += s.switched ? 1 : 0;
    return n;
  }
  int64_t total_spilled_records() const {
    int64_t n = 0;
    for (const auto& s : node_stats) n += s.spill.overflow_records;
    return n;
  }
};

/// A simulated shared-nothing cluster: N node threads, a message mesh, a
/// network cost model, and each node's local disk (owned by the
/// PartitionedRelation). Runs one algorithm at a time.
class Cluster {
 public:
  using TransportFactory = std::function<
      Result<std::vector<std::unique_ptr<Transport>>>(int num_nodes)>;

  explicit Cluster(SystemParams params);

  const SystemParams& params() const { return params_; }

  /// Replaces the default in-process transport (e.g. with MakeTcpMesh).
  void set_transport_factory(TransportFactory factory) {
    transport_factory_ = std::move(factory);
  }

  /// Executes `algo` over `rel` (which must have params().num_nodes
  /// partitions). Each node aggregates for real; clocks report modeled
  /// time. Disk stats of `rel` are reset at the start of the run.
  RunResult Run(const Algorithm& algo, const AggregationSpec& spec,
                PartitionedRelation& rel, AlgorithmOptions options = {});

 private:
  SystemParams params_;
  TransportFactory transport_factory_;
};

}  // namespace adaptagg

#endif  // ADAPTAGG_CLUSTER_CLUSTER_H_
