#ifndef ADAPTAGG_CLUSTER_RUN_ASSEMBLY_H_
#define ADAPTAGG_CLUSTER_RUN_ASSEMBLY_H_

#include <atomic>
#include <memory>
#include <vector>

#include "cluster/cluster.h"
#include "cluster/gather_sink.h"
#include "cluster/node_context.h"

namespace adaptagg {

/// Shared machinery between the one-shot Cluster::Run and the serving
/// layer's per-session execution: option validation, failure fan-out,
/// root-cause selection, and end-of-run result assembly. Both executors
/// run the same algorithms over the same NodeContext interface; keeping
/// the run plumbing in one place keeps their semantics identical.

/// Validates the WHERE/HAVING predicates of `options` against the
/// schemas they will be evaluated on (also resolves by-name column
/// references before node threads share the expression trees
/// read-only).
Status ValidateRunOptions(const AggregationSpec& spec,
                          const AlgorithmOptions& options);

/// Tracks the wall time of a run's first node failure and broadcasts the
/// abort to every peer. One instance per run; OnNodeFailure is called
/// concurrently from node threads whose RunNode returned an error.
class FailureFanout {
 public:
  /// Records the failure (first one pins the run's failure wall time,
  /// later ones observe their abort latency into the node's histogram)
  /// and wakes every peer that may be blocked waiting for this node's
  /// traffic; they will fail their runs with "aborted by peer". A node
  /// whose transport is in fail-stop mode reaches nobody — its peers
  /// must detect the silence instead.
  void OnNodeFailure(NodeContext& ctx);

 private:
  std::atomic<bool> failure_seen_{false};
  std::atomic<double> first_failure_wall_{0.0};
};

/// Routes a FaultyTransport's fire events into the node's obs shard.
FaultObserver MakeFaultObserver(NodeObs* obs);

/// Picks the run's root cause among the per-node statuses: a node that
/// failed on its own (an injected fault most of all) beats one that
/// timed out detecting the failure, which beats one that merely observed
/// a peer's abort. OK when every node succeeded.
Status PickRootCause(const std::vector<Status>& statuses);

/// Folds the end-of-run state of every node — clocks, stats, obs
/// snapshots, trace events — plus the network's serialized wire total
/// and the gathered rows into `result`. Sets sim/wire times, node_stats,
/// metrics, traces, and results; callers fill status/wall_time/query_id.
void FinalizeRunResult(std::vector<std::unique_ptr<NodeContext>>& contexts,
                       NetworkModel& net, GatherSink& gathered,
                       const AggregationSpec& spec, RunResult& result);

}  // namespace adaptagg

#endif  // ADAPTAGG_CLUSTER_RUN_ASSEMBLY_H_
