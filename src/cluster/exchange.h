#ifndef ADAPTAGG_CLUSTER_EXCHANGE_H_
#define ADAPTAGG_CLUSTER_EXCHANGE_H_

#include <vector>

#include "cluster/node_context.h"
#include "storage/page.h"

namespace adaptagg {

/// Which node owns a group key: derived from the key hash with an
/// independent bit mix so that node routing is uncorrelated with hash
/// table probing and spill bucket selection.
int DestOfKeyHash(uint64_t key_hash, int num_nodes);

/// Batches fixed-width records per destination into message pages of
/// `params.message_page_bytes` (the §5 implementation blocks messages into
/// 2 KB pages) and sends them through the NodeContext. One Exchange per
/// (record kind, phase); a node can operate several concurrently.
class Exchange {
 public:
  Exchange(NodeContext* ctx, MessageType type, int record_width,
           uint32_t phase);

  /// Buffers one record for `dest`, sending a page when full.
  Status Add(int dest, const uint8_t* record);

  /// Sends all partially-filled pages.
  Status FlushAll();

  int64_t records_sent() const { return records_sent_; }

 private:
  Status SendPage(int dest);

  NodeContext* ctx_;
  MessageType type_;
  int record_width_;
  uint32_t phase_;
  std::vector<PageBuilder> builders_;
  int64_t records_sent_ = 0;
};

/// Sends an empty end-of-stream marker for `phase` to every node
/// (including the sender itself; self-delivery keeps the drain protocol
/// uniform).
Status BroadcastEos(NodeContext* ctx, uint32_t phase);

/// Sends an arbitrary small message to every node including self.
Status Broadcast(NodeContext* ctx, const Message& msg);

/// Iterates the records of a received page message.
template <typename Fn>
void ForEachRecordInPage(const Message& msg, int record_width,
                         int message_page_bytes, Fn&& fn) {
  PageReader reader(msg.payload.data(), message_page_bytes, record_width);
  for (int i = 0; i < reader.count(); ++i) {
    fn(reader.record(i));
  }
}

}  // namespace adaptagg

#endif  // ADAPTAGG_CLUSTER_EXCHANGE_H_
