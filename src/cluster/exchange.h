#ifndef ADAPTAGG_CLUSTER_EXCHANGE_H_
#define ADAPTAGG_CLUSTER_EXCHANGE_H_

#include <vector>

#include "cluster/node_context.h"
#include "storage/page.h"

namespace adaptagg {

/// Which node owns a group key: derived from the key hash with an
/// independent bit mix so that node routing is uncorrelated with hash
/// table probing and spill bucket selection.
int DestOfKeyHash(uint64_t key_hash, int num_nodes);

/// Batches fixed-width records per destination into message pages of
/// `params.message_page_bytes` (the §5 implementation blocks messages into
/// 2 KB pages) and sends them through the NodeContext. One Exchange per
/// (record kind, phase); a node can operate several concurrently.
///
/// Pages travel wire-trimmed: the payload carries header + count *
/// record_width bytes (no trailing padding), while Message::charged_bytes
/// pins the cost model to the full page size, so the modeled network
/// charge is byte-for-byte what untrimmed pages produced. Payload buffers
/// cycle through the NodeContext's page pool instead of allocating per
/// page.
class Exchange {
 public:
  /// `cost_exempt` stamps every page with kExemptChargedBytes so the
  /// network model bills nothing — used by the merge-topology reduction
  /// planes, whose seed-equivalent charges were already applied through
  /// phantom accounting (see core/merge_topology.h).
  Exchange(NodeContext* ctx, MessageType type, int record_width,
           uint32_t phase, bool cost_exempt = false);

  /// Buffers one record for `dest`, sending a page when full. The scalar
  /// path for inherently record-at-a-time producers (Finish-callback
  /// drains, sampling key sets); routing loops use AddBatch/AddIndices
  /// (adaptagg_lint rule S9 flags scalar call sites outside the
  /// allowlisted producers).
  Status AddRecord(int dest, const uint8_t* record);

  /// Scatter kernel: routes batch records [from, to) — to < 0 means
  /// batch.size() — by their precomputed hashes. Records are gathered
  /// into one contiguous lane per destination (a single tight copy loop;
  /// random hash routing makes within-batch runs too short for run
  /// detection to pay), then each lane is appended with one bulk memcpy
  /// and one fullness check. The per-destination record sequence is
  /// exactly the scalar loop's (the gather preserves index order); only
  /// the interleaving of page sends across destinations can differ,
  /// which neither the cost model nor per-destination sequence
  /// validation observes.
  Status AddBatch(const TupleBatch& batch, int from = 0, int to = -1);

  /// Same scatter for an arbitrary ascending index subset of the batch
  /// (e.g. the overflow list of a table-full upsert).
  Status AddIndices(const TupleBatch& batch, const int* idx, int n);

  /// Sends all partially-filled pages and records the per-destination
  /// page-count skew into the node's metrics.
  Status FlushAll();

  int64_t records_sent() const { return records_sent_; }

 private:
  Status SendPage(int dest);
  /// Appends `n` densely packed records for `dest`, sending pages as
  /// they fill.
  Status AppendRun(int dest, const uint8_t* recs, int n);
  /// Shared scatter core of AddBatch/AddIndices.
  Status Scatter(const TupleBatch& batch, const int* idx, int n);

  NodeContext* ctx_;
  MessageType type_;
  int record_width_;
  uint32_t phase_;
  bool cost_exempt_;
  std::vector<PageBuilder> builders_;
  int64_t records_sent_ = 0;
  /// Pages sent to each destination since the last FlushAll (skew
  /// metric).
  std::vector<int64_t> pages_per_dest_;
  // Scatter scratch, sized once: per-destination record counts and one
  // kBatchWidth-record gather lane per destination.
  std::vector<int> scatter_count_;
  std::vector<uint8_t> scatter_lanes_;
  std::vector<int> identity_;
};

/// Sends an empty end-of-stream marker for `phase` to every node
/// (including the sender itself; self-delivery keeps the drain protocol
/// uniform).
Status BroadcastEos(NodeContext* ctx, uint32_t phase);

/// Sends an arbitrary small message to every node including self.
Status Broadcast(NodeContext* ctx, const Message& msg);

/// Iterates the records of a received page message. Validates the page
/// header against the payload first — a forged or truncated page returns
/// a descriptive kNetworkError before any record byte is touched.
template <typename Fn>
Status ForEachRecordInPage(const Message& msg, int record_width,
                           int message_page_bytes, Fn&& fn) {
  ADAPTAGG_ASSIGN_OR_RETURN(
      int count, ValidateWirePage(msg.payload.data(), msg.payload.size(),
                                  message_page_bytes, record_width));
  const uint8_t* base = msg.payload.data() + sizeof(uint32_t);
  for (int i = 0; i < count; ++i) {
    fn(base + static_cast<size_t>(i) * static_cast<size_t>(record_width));
  }
  return Status::OK();
}

}  // namespace adaptagg

#endif  // ADAPTAGG_CLUSTER_EXCHANGE_H_
