#include "cluster/run_report.h"

#include <cstdio>
#include <sstream>

namespace adaptagg {

std::string RunReport(const RunResult& run) {
  std::ostringstream os;
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "status: %s\nmodeled time: %.6f s (wire %.6f s), wall "
                "%.6f s\nresult rows: %lld, spilled records: %lld, nodes "
                "switched: %d\n",
                run.status.ToString().c_str(), run.sim_time_s,
                run.wire_time_s, run.wall_time_s,
                static_cast<long long>(run.total_result_rows()),
                static_cast<long long>(run.total_spilled_records()),
                run.nodes_switched());
  os << buf;
  for (size_t i = 0; i < run.clocks.size(); ++i) {
    const NodeRunStats& s = run.node_stats[i];
    std::snprintf(
        buf, sizeof(buf),
        "  node %zu: %s scanned=%lld sent(raw=%lld,partial=%lld) "
        "rows=%lld%s\n",
        i, run.clocks[i].ToString().c_str(),
        static_cast<long long>(s.tuples_scanned),
        static_cast<long long>(s.raw_records_sent),
        static_cast<long long>(s.partial_records_sent),
        static_cast<long long>(s.result_rows),
        s.switched ? " [switched]" : "");
    os << buf;
  }
  return os.str();
}

std::string RunSummaryLine(const RunResult& run) {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "sim=%.6f wire=%.6f wall=%.6f rows=%lld spilled=%lld "
                "switched=%d",
                run.sim_time_s, run.wire_time_s, run.wall_time_s,
                static_cast<long long>(run.total_result_rows()),
                static_cast<long long>(run.total_spilled_records()),
                run.nodes_switched());
  return buf;
}

}  // namespace adaptagg
