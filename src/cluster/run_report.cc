#include "cluster/run_report.h"

#include <cstdio>
#include <sstream>

namespace adaptagg {
namespace {

/// Snapshot value of `name`, or `fallback` when the run carried no
/// metrics (obs disabled at runtime or compile time).
int64_t SnapOr(const MetricsSnapshot& m, const std::string& name,
               int64_t fallback) {
  const MetricsSnapshot::Entry* e = m.Find(name);
  return e != nullptr ? e->value : fallback;
}

/// Appends one "phase <name>: ..." line per phase.<name>.sim_us counter
/// in the snapshot (cluster totals across nodes).
void AppendPhaseLines(std::ostringstream& os, const MetricsSnapshot& m) {
  const std::string prefix = "phase.";
  const std::string suffix = ".sim_us";
  for (const MetricsSnapshot::Entry& e : m.entries) {
    if (e.name.rfind(prefix, 0) != 0) continue;
    if (e.name.size() <= prefix.size() + suffix.size()) continue;
    if (e.name.compare(e.name.size() - suffix.size(), suffix.size(),
                       suffix) != 0) {
      continue;
    }
    const std::string phase = e.name.substr(
        prefix.size(), e.name.size() - prefix.size() - suffix.size());
    char buf[160];
    std::snprintf(
        buf, sizeof(buf),
        "  phase %s: sim=%.6f s wall=%.6f s spans=%lld\n", phase.c_str(),
        static_cast<double>(e.value) * 1e-6,
        static_cast<double>(m.Value(prefix + phase + ".wall_us")) * 1e-6,
        static_cast<long long>(m.Value(prefix + phase + ".count")));
    os << buf;
  }
}

}  // namespace

std::string RunReport(const RunResult& run) {
  std::ostringstream os;
  char buf[200];
  // Headline counters come from the merged metric snapshot when the run
  // carried one, with the always-on NodeRunStats as the fallback, so the
  // report works identically on obs-disabled builds.
  const MetricsSnapshot& m = run.metrics;
  if (run.query_id != 0) {
    os << "query id: " << run.query_id
       << (run.from_cache ? " (served from result cache)" : "") << "\n";
  }
  std::snprintf(buf, sizeof(buf),
                "status: %s\nmodeled time: %.6f s (wire %.6f s), wall "
                "%.6f s\nresult rows: %lld, spilled records: %lld, nodes "
                "switched: %d\n",
                run.status.ToString().c_str(), run.sim_time_s,
                run.wire_time_s, run.wall_time_s,
                static_cast<long long>(SnapOr(m, "core.result_rows",
                                              run.total_result_rows())),
                static_cast<long long>(SnapOr(m, "agg.spill.records",
                                              run.total_spilled_records())),
                run.nodes_switched());
  os << buf;
  if (!m.empty()) {
    std::snprintf(
        buf, sizeof(buf),
        "network: %lld bytes in %lld msgs (%lld pages), peak channel "
        "depth %lld\n",
        static_cast<long long>(m.Value("net.bytes_sent")),
        static_cast<long long>(m.Value("net.msgs_sent")),
        static_cast<long long>(m.Value("net.pages_sent")),
        static_cast<long long>(m.Value("net.channel_depth_high_water")));
    os << buf;
    AppendPhaseLines(os, m);
  }
  for (size_t i = 0; i < run.clocks.size(); ++i) {
    const NodeRunStats& s = run.node_stats[i];
    std::snprintf(
        buf, sizeof(buf),
        "  node %zu: %s scanned=%lld sent(raw=%lld,partial=%lld) "
        "rows=%lld%s\n",
        i, run.clocks[i].ToString().c_str(),
        static_cast<long long>(s.tuples_scanned),
        static_cast<long long>(s.raw_records_sent),
        static_cast<long long>(s.partial_records_sent),
        static_cast<long long>(s.result_rows),
        s.switched ? " [switched]" : "");
    os << buf;
  }
  return os.str();
}

std::string RunSummaryLine(const RunResult& run) {
  // Serving-layer sessions prefix their query id so the summary lines
  // of concurrent queries stay attributable; one-shot runs (qid 0)
  // keep the historical format.
  std::string prefix;
  if (run.query_id != 0) {
    prefix = "qid=" + std::to_string(run.query_id) + " ";
    if (run.from_cache) prefix += "cached=1 ";
  }
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "sim=%.6f wire=%.6f wall=%.6f rows=%lld spilled=%lld "
                "switched=%d bytes=%lld chdepth=%lld",
                run.sim_time_s, run.wire_time_s, run.wall_time_s,
                static_cast<long long>(run.total_result_rows()),
                static_cast<long long>(run.total_spilled_records()),
                run.nodes_switched(),
                static_cast<long long>(run.metrics.Value("net.bytes_sent")),
                static_cast<long long>(
                    run.metrics.Value("net.channel_depth_high_water")));
  return prefix + buf;
}

}  // namespace adaptagg
