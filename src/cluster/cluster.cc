#include "cluster/cluster.h"

#include <chrono>
#include <iterator>
#include <mutex>
#include <thread>

#include "common/logging.h"

namespace adaptagg {

Cluster::Cluster(SystemParams params) : params_(std::move(params)) {
  transport_factory_ =
      [](int n) -> Result<std::vector<std::unique_ptr<Transport>>> {
    return MakeInprocMesh(n);
  };
}

RunResult Cluster::Run(const Algorithm& algo, const AggregationSpec& spec,
                       PartitionedRelation& rel, AlgorithmOptions options) {
  RunResult result;
  const int n = params_.num_nodes;
  if (rel.num_nodes() != n) {
    result.status = Status::InvalidArgument(
        "relation has " + std::to_string(rel.num_nodes()) +
        " partitions but cluster has " + std::to_string(n) + " nodes");
    return result;
  }

  // Predicates are validated once, up front, against the schemas they
  // will be evaluated on (this also resolves by-name column references
  // before the node threads share the expression trees read-only).
  if (options.where != nullptr) {
    Status st = ValidatePredicate(*options.where, spec.input_schema());
    if (!st.ok()) {
      result.status = Status(st.code(), "WHERE: " + st.message());
      return result;
    }
  }
  if (options.having != nullptr) {
    Status st = ValidatePredicate(*options.having, spec.final_schema());
    if (!st.ok()) {
      result.status = Status(st.code(), "HAVING: " + st.message());
      return result;
    }
  }

  Result<std::vector<std::unique_ptr<Transport>>> transports =
      transport_factory_(n);
  if (!transports.ok()) {
    result.status = transports.status();
    return result;
  }

  rel.ResetDiskStats();
  NetworkModel net(params_);

  std::mutex gather_mu;
  std::vector<std::vector<uint8_t>> gathered;

  // One wall epoch for the whole run so all nodes' trace wall timelines
  // share an origin.
  const double wall_epoch_s = WallSeconds();
  std::vector<std::unique_ptr<NodeContext>> contexts;
  contexts.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    contexts.push_back(std::make_unique<NodeContext>(
        i, params_, spec, options, &rel.partition(i), &rel.disk(i),
        (*transports)[static_cast<size_t>(i)].get(), &net, wall_epoch_s));
    contexts.back()->SetGather(&gather_mu, &gathered);
  }

  std::vector<Status> statuses(static_cast<size_t>(n));
  auto wall_start = std::chrono::steady_clock::now();
  {
    std::vector<std::thread> threads;
    threads.reserve(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i) {
      threads.emplace_back([&, i] {
        NodeContext& ctx = *contexts[static_cast<size_t>(i)];
        Status st = algo.RunNode(ctx);
        if (!st.ok()) {
          // Wake every peer that may be blocked waiting for this node's
          // traffic; they will fail their runs with "aborted by peer".
          Message abort;
          abort.type = MessageType::kAbort;
          for (int dest = 0; dest < n; ++dest) {
            if (dest != i) (void)ctx.Send(dest, abort);
          }
        }
        statuses[static_cast<size_t>(i)] = st;
      });
    }
    for (auto& t : threads) t.join();
  }
  auto wall_end = std::chrono::steady_clock::now();
  result.wall_time_s =
      std::chrono::duration<double>(wall_end - wall_start).count();

  // Report the root cause: a node that failed on its own, not one that
  // merely observed a peer's abort.
  bool have_root_cause = false;
  for (int i = 0; i < n; ++i) {
    const Status& st = statuses[static_cast<size_t>(i)];
    if (st.ok()) continue;
    bool is_cascade =
        st.message().find("aborted by peer") != std::string::npos;
    if (!have_root_cause || (!is_cascade && result.status.message().find(
                                                "aborted by peer") !=
                                                std::string::npos)) {
      result.status = Status(
          st.code(), "node " + std::to_string(i) + ": " + st.message());
      have_root_cause = true;
    }
  }

  result.num_nodes = n;
  result.clocks.reserve(static_cast<size_t>(n));
  result.node_stats.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    NodeContext& ctx = *contexts[static_cast<size_t>(i)];
    result.sim_time_s = std::max(result.sim_time_s, ctx.clock().now());
    result.clocks.push_back(ctx.clock());
    result.node_stats.push_back(ctx.stats());
    // Fold stat-tracked values into the shard, then merge shards in node
    // order (Merge is commutative, so the order is cosmetic).
    ctx.FinalizeObs();
    result.metrics.Merge(ctx.obs().Snapshot());
    std::vector<TraceEvent> node_events = ctx.obs().trace().TakeEvents();
    result.trace_events.insert(
        result.trace_events.end(),
        std::make_move_iterator(node_events.begin()),
        std::make_move_iterator(node_events.end()));
  }
  // On the shared medium, the wire is a sequential resource whose total
  // occupancy adds to the completion time (§2's no-overlap model).
  result.wire_time_s = net.serialized_wire_s();
  result.sim_time_s += result.wire_time_s;

  result.results.schema = spec.final_schema();
  result.results.rows = std::move(gathered);
  return result;
}

}  // namespace adaptagg
