#include "cluster/cluster.h"

#include <chrono>
#include <thread>

#include "cluster/gather_sink.h"
#include "cluster/run_assembly.h"
#include "common/logging.h"
#include "common/simd.h"
#include "net/fault.h"

namespace adaptagg {

Cluster::Cluster(SystemParams params) : params_(std::move(params)) {
  transport_factory_ =
      [](int n) -> Result<std::vector<std::unique_ptr<Transport>>> {
    return MakeInprocMesh(n);
  };
}

RunResult Cluster::Run(const Algorithm& algo, const AggregationSpec& spec,
                       PartitionedRelation& rel, AlgorithmOptions options) {
  RunResult result;
  result.query_id = options.query_id;
  const int n = params_.num_nodes;
  if (rel.num_nodes() != n) {
    result.status = Status::InvalidArgument(
        "relation has " + std::to_string(rel.num_nodes()) +
        " partitions but cluster has " + std::to_string(n) + " nodes");
    return result;
  }

  // Predicates are validated once, up front, against the schemas they
  // will be evaluated on.
  result.status = ValidateRunOptions(spec, options);
  if (!result.status.ok()) return result;

  Result<std::vector<std::unique_ptr<Transport>>> transports =
      transport_factory_(n);
  if (!transports.ok()) {
    result.status = transports.status();
    return result;
  }
  // Fault injection wraps each endpoint in a decorator only when the
  // plan is non-empty: fault-free runs keep the raw transports and the
  // exact message flow of builds without this subsystem.
  const bool inject_faults = !options.fault_plan.empty();
  if (inject_faults) {
    for (int i = 0; i < n; ++i) {
      (*transports)[static_cast<size_t>(i)] =
          std::make_unique<FaultyTransport>(
              std::move((*transports)[static_cast<size_t>(i)]),
              options.fault_plan);
    }
  }

  rel.ResetDiskStats();
  NetworkModel net(params_);

  GatherSink gathered;

  // One wall epoch for the whole run so all nodes' trace wall timelines
  // share an origin.
  const double wall_epoch_s = WallSeconds();
  std::vector<std::unique_ptr<NodeContext>> contexts;
  contexts.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    contexts.push_back(std::make_unique<NodeContext>(
        i, params_, spec, options, &rel.partition(i), &rel.disk(i),
        (*transports)[static_cast<size_t>(i)].get(), &net, wall_epoch_s));
    contexts.back()->SetGather(&gathered);
    if (inject_faults) {
      static_cast<FaultyTransport*>(
          (*transports)[static_cast<size_t>(i)].get())
          ->set_observer(
              MakeFaultObserver(&contexts.back()->obs()));
    }
  }

  // Resolve the SIMD dispatch before any node thread touches a batch
  // kernel and pin the outcome into the coordinator's trace: one instant
  // per run, so a trace always says which code path produced it.
  contexts.front()->obs().RecordDecision(
      "simd.dispatch",
      {{"kind", static_cast<int64_t>(simd::ActiveDispatch())},
       {"forced_scalar", simd::ForcedScalar() ? 1 : 0}});

  std::vector<Status> statuses(static_cast<size_t>(n));
  FailureFanout fanout;
  auto wall_start = std::chrono::steady_clock::now();
  {
    std::vector<std::thread> threads;
    threads.reserve(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i) {
      threads.emplace_back([&, i] {
        NodeContext& ctx = *contexts[static_cast<size_t>(i)];
        Status st = algo.RunNode(ctx);
        if (!st.ok()) fanout.OnNodeFailure(ctx);
        statuses[static_cast<size_t>(i)] = st;
      });
    }
    for (auto& t : threads) t.join();
  }
  auto wall_end = std::chrono::steady_clock::now();
  result.wall_time_s =
      std::chrono::duration<double>(wall_end - wall_start).count();

  result.status = PickRootCause(statuses);
  FinalizeRunResult(contexts, net, gathered, spec, result);
  return result;
}

}  // namespace adaptagg
