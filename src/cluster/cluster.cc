#include "cluster/cluster.h"

#include <algorithm>
#include <chrono>
#include <thread>

#include "agg/hash_table.h"
#include "cluster/gather_sink.h"
#include "cluster/recovery.h"
#include "cluster/run_assembly.h"
#include "common/logging.h"
#include "common/simd.h"
#include "model/recovery_model.h"
#include "net/fault.h"

namespace adaptagg {

Cluster::Cluster(SystemParams params) : params_(std::move(params)) {
  transport_factory_ =
      [](int n) -> Result<std::vector<std::unique_ptr<Transport>>> {
    return MakeInprocMesh(n);
  };
}

RunResult Cluster::Run(const Algorithm& algo, const AggregationSpec& spec,
                       PartitionedRelation& rel, AlgorithmOptions options) {
  RunResult result;
  result.query_id = options.query_id;
  const int n = params_.num_nodes;
  if (rel.num_nodes() != n) {
    result.status = Status::InvalidArgument(
        "relation has " + std::to_string(rel.num_nodes()) +
        " partitions but cluster has " + std::to_string(n) + " nodes");
    return result;
  }

  // Predicates are validated once, up front, against the schemas they
  // will be evaluated on.
  result.status = ValidateRunOptions(spec, options);
  if (!result.status.ok()) return result;

  // Resolve the recovery configuration once per run. The checkpoint
  // store outlives the attempt loop so a replay can read what the
  // crashed attempt wrote; its disks are private to the store, so
  // checkpoint I/O never perturbs the modeled node disks.
  std::unique_ptr<RecoveryRuntime> recovery;
  int max_attempts = 1;
  int64_t ckpt_every = 0;
  if (options.recovery.enabled) {
    ckpt_every = options.recovery.checkpoint_every_batches;
    if (ckpt_every < 0) {
      const int64_t est_groups = options.max_hash_entries > 0
                                     ? options.max_hash_entries
                                     : params_.max_hash_entries;
      ckpt_every = DecideCheckpointInterval(params_, est_groups,
                                            spec.partial_width())
                       .every_batches;
    }
    recovery = std::make_unique<RecoveryRuntime>(
        n, static_cast<int>(params_.page_bytes), ckpt_every,
        MakeCheckpointDiskFactory(options.fault_plan,
                                  static_cast<int>(params_.page_bytes)));
    max_attempts = std::max(1, options.recovery.max_attempts);
  }

  // One wall epoch for the whole run so all nodes' trace wall timelines
  // share an origin.
  const double wall_epoch_s = WallSeconds();
  const auto run_start = std::chrono::steady_clock::now();
  std::vector<double> attempt_wall_s;

  // Each attempt is a complete execution over fresh transports, network
  // model, gather sink, and node contexts; only an injected crash earns
  // a retry, and the consumed crash specs are pruned so the replay runs
  // them clean. Everything the final attempt produced is what the run
  // reports.
  for (int attempt = 1;; ++attempt) {
    Result<std::vector<std::unique_ptr<Transport>>> transports =
        transport_factory_(n);
    if (!transports.ok()) {
      result.status = transports.status();
      return result;
    }
    // Fault injection wraps each endpoint in a decorator only when the
    // plan is non-empty: fault-free runs keep the raw transports and the
    // exact message flow of builds without this subsystem.
    const bool inject_faults = !options.fault_plan.empty();
    if (inject_faults) {
      for (int i = 0; i < n; ++i) {
        (*transports)[static_cast<size_t>(i)] =
            std::make_unique<FaultyTransport>(
                std::move((*transports)[static_cast<size_t>(i)]),
                options.fault_plan);
      }
    }

    rel.ResetDiskStats();
    NetworkModel net(params_);

    GatherSink gathered;
    // One shared merge arena per attempt: the shared topology's
    // concurrent table lives here when the mesh is in-process. Fresh per
    // attempt so a recovery replay never sees a crashed attempt's groups.
    SharedMergeArena merge_arena;

    std::vector<std::unique_ptr<NodeContext>> contexts;
    contexts.reserve(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i) {
      contexts.push_back(std::make_unique<NodeContext>(
          i, params_, spec, options, &rel.partition(i), &rel.disk(i),
          (*transports)[static_cast<size_t>(i)].get(), &net, wall_epoch_s));
      contexts.back()->SetGather(&gathered);
      contexts.back()->SetMergeArena(&merge_arena);
      if (recovery != nullptr) {
        contexts.back()->SetRecovery(&recovery->node(i));
      }
      if (inject_faults) {
        static_cast<FaultyTransport*>(
            (*transports)[static_cast<size_t>(i)].get())
            ->set_observer(
                MakeFaultObserver(&contexts.back()->obs()));
      }
    }

    // Resolve the SIMD dispatch before any node thread touches a batch
    // kernel and pin the outcome into the coordinator's trace: one
    // instant per run, so a trace always says which code path produced
    // it.
    contexts.front()->obs().RecordDecision(
        "simd.dispatch",
        {{"kind", static_cast<int64_t>(simd::ActiveDispatch())},
         {"forced_scalar", simd::ForcedScalar() ? 1 : 0}});
    if (recovery != nullptr) {
      // Wall-clock-only decision: recorded as an instant, charged to no
      // clock, so the modeled plan is identical with recovery on or off.
      contexts.front()->obs().RecordDecision(
          "recovery.checkpoint_interval",
          {{"every_batches", ckpt_every},
           {"max_attempts", max_attempts},
           {"attempt", attempt}});
    }

    std::vector<Status> statuses(static_cast<size_t>(n));
    FailureFanout fanout;
    const auto attempt_start = std::chrono::steady_clock::now();
    {
      std::vector<std::thread> threads;
      threads.reserve(static_cast<size_t>(n));
      for (int i = 0; i < n; ++i) {
        threads.emplace_back([&, i] {
          NodeContext& ctx = *contexts[static_cast<size_t>(i)];
          Status st = algo.RunNode(ctx);
          if (!st.ok()) fanout.OnNodeFailure(ctx);
          statuses[static_cast<size_t>(i)] = st;
        });
      }
      for (auto& t : threads) t.join();
    }
    const auto attempt_end = std::chrono::steady_clock::now();
    attempt_wall_s.push_back(
        std::chrono::duration<double>(attempt_end - attempt_start).count());

    result.status = PickRootCause(statuses);

    // Retry only injected-crash failures; any other error (a real abort,
    // a timeout with no crash, data loss) keeps the clean-abort path.
    bool any_crashed = false;
    for (const auto& ctx : contexts) any_crashed |= ctx->crashed();
    if (!result.status.ok() && any_crashed && recovery != nullptr &&
        attempt < max_attempts) {
      // Consume the crash specs that fired — the first matching spec per
      // crashed node, mirroring CrashForNode — so the replay does not
      // re-crash and a double-crash plan terminates.
      auto& fs = options.fault_plan.faults;
      for (int i = 0; i < n; ++i) {
        if (!contexts[static_cast<size_t>(i)]->crashed()) continue;
        for (auto it = fs.begin(); it != fs.end(); ++it) {
          if (it->kind == FaultKind::kCrash && it->node == i) {
            fs.erase(it);
            break;
          }
        }
      }
      continue;
    }

    // Final attempt: surface the recovery story on the coordinator's
    // shard (only this attempt's shards reach the merged snapshot).
    if (recovery != nullptr) {
      NodeObs& obs = contexts.front()->obs();
      obs.recovery_attempts.Add(attempt - 1);
      for (double s : attempt_wall_s) {
        obs.recovery_attempt_wall_us.Observe(s * 1e6);
      }
    }
    const auto run_end = std::chrono::steady_clock::now();
    result.wall_time_s =
        std::chrono::duration<double>(run_end - run_start).count();
    FinalizeRunResult(contexts, net, gathered, spec, result);
    return result;
  }
}

}  // namespace adaptagg
