#include "cluster/cluster.h"

#include <atomic>
#include <chrono>
#include <iterator>
#include <thread>

#include "cluster/gather_sink.h"
#include "common/logging.h"
#include "common/simd.h"
#include "net/fault.h"

namespace adaptagg {
namespace {

/// Severity used to pick the run's root cause among node statuses:
/// injected faults beat ordinary errors, which beat detection timeouts,
/// which beat cascaded "aborted by peer" echoes.
int RootCauseRank(const Status& st) {
  if (st.message().find("aborted by peer") != std::string::npos) return 0;
  if (st.code() == StatusCode::kDeadlineExceeded) return 1;
  if (st.message().find("injected") != std::string::npos) return 3;
  return 2;
}

/// Routes a FaultyTransport's fire events into the node's obs shard.
FaultObserver MakeFaultObserver(NodeObs* obs) {
  return [obs](const FaultEvent& e) {
    switch (e.kind) {
      case FaultKind::kDrop:
        obs->fault_msgs_dropped.Increment();
        break;
      case FaultKind::kDuplicate:
        obs->fault_msgs_duplicated.Increment();
        break;
      case FaultKind::kDelay:
        obs->fault_msgs_delayed.Increment();
        break;
      case FaultKind::kCorrupt:
        obs->fault_msgs_corrupted.Increment();
        break;
      case FaultKind::kCrash:
      case FaultKind::kStraggle:
        break;  // node faults report through NodeContext directly
    }
    obs->RecordFault("fault." + std::string(FaultKindToString(e.kind)),
                     {{"peer", e.peer}});
  };
}

}  // namespace

Cluster::Cluster(SystemParams params) : params_(std::move(params)) {
  transport_factory_ =
      [](int n) -> Result<std::vector<std::unique_ptr<Transport>>> {
    return MakeInprocMesh(n);
  };
}

RunResult Cluster::Run(const Algorithm& algo, const AggregationSpec& spec,
                       PartitionedRelation& rel, AlgorithmOptions options) {
  RunResult result;
  const int n = params_.num_nodes;
  if (rel.num_nodes() != n) {
    result.status = Status::InvalidArgument(
        "relation has " + std::to_string(rel.num_nodes()) +
        " partitions but cluster has " + std::to_string(n) + " nodes");
    return result;
  }

  // Predicates are validated once, up front, against the schemas they
  // will be evaluated on (this also resolves by-name column references
  // before the node threads share the expression trees read-only).
  if (options.where != nullptr) {
    Status st = ValidatePredicate(*options.where, spec.input_schema());
    if (!st.ok()) {
      result.status = Status(st.code(), "WHERE: " + st.message());
      return result;
    }
  }
  if (options.having != nullptr) {
    Status st = ValidatePredicate(*options.having, spec.final_schema());
    if (!st.ok()) {
      result.status = Status(st.code(), "HAVING: " + st.message());
      return result;
    }
  }

  Result<std::vector<std::unique_ptr<Transport>>> transports =
      transport_factory_(n);
  if (!transports.ok()) {
    result.status = transports.status();
    return result;
  }
  // Fault injection wraps each endpoint in a decorator only when the
  // plan is non-empty: fault-free runs keep the raw transports and the
  // exact message flow of builds without this subsystem.
  const bool inject_faults = !options.fault_plan.empty();
  if (inject_faults) {
    for (int i = 0; i < n; ++i) {
      (*transports)[static_cast<size_t>(i)] =
          std::make_unique<FaultyTransport>(
              std::move((*transports)[static_cast<size_t>(i)]),
              options.fault_plan);
    }
  }

  rel.ResetDiskStats();
  NetworkModel net(params_);

  GatherSink gathered;

  // One wall epoch for the whole run so all nodes' trace wall timelines
  // share an origin.
  const double wall_epoch_s = WallSeconds();
  std::vector<std::unique_ptr<NodeContext>> contexts;
  contexts.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    contexts.push_back(std::make_unique<NodeContext>(
        i, params_, spec, options, &rel.partition(i), &rel.disk(i),
        (*transports)[static_cast<size_t>(i)].get(), &net, wall_epoch_s));
    contexts.back()->SetGather(&gathered);
    if (inject_faults) {
      static_cast<FaultyTransport*>(
          (*transports)[static_cast<size_t>(i)].get())
          ->set_observer(MakeFaultObserver(&contexts.back()->obs()));
    }
  }

  // Resolve the SIMD dispatch before any node thread touches a batch
  // kernel and pin the outcome into the coordinator's trace: one instant
  // per run, so a trace always says which code path produced it.
  contexts.front()->obs().RecordDecision(
      "simd.dispatch",
      {{"kind", static_cast<int64_t>(simd::ActiveDispatch())},
       {"forced_scalar", simd::ForcedScalar() ? 1 : 0}});

  std::vector<Status> statuses(static_cast<size_t>(n));
  // Wall time of the run's first node failure, for the abort-latency
  // histogram (how long the rest of the cluster takes to notice).
  std::atomic<bool> failure_seen{false};
  std::atomic<double> first_failure_wall{0.0};
  auto wall_start = std::chrono::steady_clock::now();
  {
    std::vector<std::thread> threads;
    threads.reserve(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i) {
      threads.emplace_back([&, i] {
        NodeContext& ctx = *contexts[static_cast<size_t>(i)];
        Status st = algo.RunNode(ctx);
        if (!st.ok()) {
          const double now = WallSeconds();
          bool expected = false;
          if (failure_seen.compare_exchange_strong(expected, true)) {
            first_failure_wall.store(now, std::memory_order_release);
          } else {
            ctx.obs().fault_abort_latency_us.Observe(
                (now - first_failure_wall.load(
                           std::memory_order_acquire)) *
                1e6);
          }
          // Wake every peer that may be blocked waiting for this node's
          // traffic; they will fail their runs with "aborted by peer".
          // (A node whose transport is in fail-stop mode reaches nobody
          // — its peers must detect the silence instead.)
          Message abort;
          abort.type = MessageType::kAbort;
          for (int dest = 0; dest < n; ++dest) {
            if (dest != i) (void)ctx.Send(dest, abort);
          }
        }
        statuses[static_cast<size_t>(i)] = st;
      });
    }
    for (auto& t : threads) t.join();
  }
  auto wall_end = std::chrono::steady_clock::now();
  result.wall_time_s =
      std::chrono::duration<double>(wall_end - wall_start).count();

  // Report the root cause: prefer a node that failed on its own (an
  // injected fault most of all) over one that timed out detecting the
  // failure, over one that merely observed a peer's abort.
  int best_rank = -1;
  for (int i = 0; i < n; ++i) {
    const Status& st = statuses[static_cast<size_t>(i)];
    if (st.ok()) continue;
    const int rank = RootCauseRank(st);
    if (rank > best_rank) {
      best_rank = rank;
      result.status = Status(
          st.code(), "node " + std::to_string(i) + ": " + st.message());
    }
  }

  result.num_nodes = n;
  result.clocks.reserve(static_cast<size_t>(n));
  result.node_stats.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    NodeContext& ctx = *contexts[static_cast<size_t>(i)];
    result.sim_time_s = std::max(result.sim_time_s, ctx.clock().now());
    result.clocks.push_back(ctx.clock());
    result.node_stats.push_back(ctx.stats());
    // Fold stat-tracked values into the shard, then merge shards in node
    // order (Merge is commutative, so the order is cosmetic).
    ctx.FinalizeObs();
    result.metrics.Merge(ctx.obs().Snapshot());
    std::vector<TraceEvent> node_events = ctx.obs().trace().TakeEvents();
    result.trace_events.insert(
        result.trace_events.end(),
        std::make_move_iterator(node_events.begin()),
        std::make_move_iterator(node_events.end()));
  }
  // On the shared medium, the wire is a sequential resource whose total
  // occupancy adds to the completion time (§2's no-overlap model).
  result.wire_time_s = net.serialized_wire_s();
  result.sim_time_s += result.wire_time_s;

  result.results.schema = spec.final_schema();
  result.results.rows = gathered.TakeRows();
  return result;
}

}  // namespace adaptagg
