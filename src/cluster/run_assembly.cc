#include "cluster/run_assembly.h"

#include <iterator>
#include <string>

#include "exec/expression.h"
#include "obs/trace_recorder.h"

namespace adaptagg {
namespace {

/// Severity used to pick the run's root cause among node statuses:
/// injected faults beat ordinary errors, which beat detection timeouts,
/// which beat cascaded "aborted by peer" echoes.
int RootCauseRank(const Status& st) {
  if (st.message().find("aborted by peer") != std::string::npos) return 0;
  if (st.code() == StatusCode::kDeadlineExceeded) return 1;
  if (st.message().find("injected") != std::string::npos) return 3;
  return 2;
}

}  // namespace

FaultObserver MakeFaultObserver(NodeObs* obs) {
  return [obs](const FaultEvent& e) {
    switch (e.kind) {
      case FaultKind::kDrop:
        obs->fault_msgs_dropped.Increment();
        break;
      case FaultKind::kDuplicate:
        obs->fault_msgs_duplicated.Increment();
        break;
      case FaultKind::kDelay:
        obs->fault_msgs_delayed.Increment();
        break;
      case FaultKind::kCorrupt:
        obs->fault_msgs_corrupted.Increment();
        break;
      case FaultKind::kCrash:
      case FaultKind::kStraggle:
      case FaultKind::kDiskFail:
      case FaultKind::kTornWrite:
        break;  // node/storage faults report elsewhere
    }
    obs->RecordFault("fault." + std::string(FaultKindToString(e.kind)),
                     {{"peer", e.peer}});
  };
}

Status ValidateRunOptions(const AggregationSpec& spec,
                          const AlgorithmOptions& options) {
  if (options.where != nullptr) {
    Status st = ValidatePredicate(*options.where, spec.input_schema());
    if (!st.ok()) return Status(st.code(), "WHERE: " + st.message());
  }
  if (options.having != nullptr) {
    Status st = ValidatePredicate(*options.having, spec.final_schema());
    if (!st.ok()) return Status(st.code(), "HAVING: " + st.message());
  }
  return Status::OK();
}

void FailureFanout::OnNodeFailure(NodeContext& ctx) {
  const double now = WallSeconds();
  bool expected = false;
  if (failure_seen_.compare_exchange_strong(expected, true)) {
    first_failure_wall_.store(now, std::memory_order_release);
  } else {
    ctx.obs().fault_abort_latency_us.Observe(
        (now - first_failure_wall_.load(std::memory_order_acquire)) * 1e6);
  }
  Message abort;
  abort.type = MessageType::kAbort;
  for (int dest = 0; dest < ctx.num_nodes(); ++dest) {
    if (dest != ctx.node_id()) (void)ctx.Send(dest, abort);
  }
}

Status PickRootCause(const std::vector<Status>& statuses) {
  Status cause;  // OK unless some node failed
  int best_rank = -1;
  for (size_t i = 0; i < statuses.size(); ++i) {
    const Status& st = statuses[i];
    if (st.ok()) continue;
    const int rank = RootCauseRank(st);
    if (rank > best_rank) {
      best_rank = rank;
      cause =
          Status(st.code(), "node " + std::to_string(i) + ": " + st.message());
    }
  }
  return cause;
}

void FinalizeRunResult(std::vector<std::unique_ptr<NodeContext>>& contexts,
                       NetworkModel& net, GatherSink& gathered,
                       const AggregationSpec& spec, RunResult& result) {
  const int n = static_cast<int>(contexts.size());
  result.num_nodes = n;
  result.clocks.reserve(static_cast<size_t>(n));
  result.node_stats.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    NodeContext& ctx = *contexts[static_cast<size_t>(i)];
    result.sim_time_s = std::max(result.sim_time_s, ctx.clock().now());
    result.clocks.push_back(ctx.clock());
    result.node_stats.push_back(ctx.stats());
    // Fold stat-tracked values into the shard, then merge shards in node
    // order (Merge is commutative, so the order is cosmetic).
    ctx.FinalizeObs();
    result.metrics.Merge(ctx.obs().Snapshot());
    std::vector<TraceEvent> node_events = ctx.obs().trace().TakeEvents();
    result.trace_events.insert(result.trace_events.end(),
                               std::make_move_iterator(node_events.begin()),
                               std::make_move_iterator(node_events.end()));
  }
  // On the shared medium, the wire is a sequential resource whose total
  // occupancy adds to the completion time (§2's no-overlap model).
  result.wire_time_s = net.serialized_wire_s();
  result.sim_time_s += result.wire_time_s;

  result.results.schema = spec.final_schema();
  result.results.rows = gathered.TakeRows();
}

}  // namespace adaptagg
