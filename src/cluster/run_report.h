#ifndef ADAPTAGG_CLUSTER_RUN_REPORT_H_
#define ADAPTAGG_CLUSTER_RUN_REPORT_H_

#include <string>

#include "cluster/cluster.h"

namespace adaptagg {

/// Human-readable multi-line summary of a run: modeled/wall time, result
/// rows, per-node clock breakdowns, adaptive switches, spill volume.
/// What examples and the CLI print in verbose mode.
std::string RunReport(const RunResult& run);

/// One-line machine-readable summary:
/// "sim=<s> wire=<s> wall=<s> rows=<n> spilled=<n> switched=<n>".
std::string RunSummaryLine(const RunResult& run);

}  // namespace adaptagg

#endif  // ADAPTAGG_CLUSTER_RUN_REPORT_H_
