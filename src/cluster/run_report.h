#ifndef ADAPTAGG_CLUSTER_RUN_REPORT_H_
#define ADAPTAGG_CLUSTER_RUN_REPORT_H_

#include <string>

#include "cluster/cluster.h"

namespace adaptagg {

/// Human-readable multi-line summary of a run: modeled/wall time, result
/// rows, per-node clock breakdowns, adaptive switches, spill volume.
/// When the run carries a merged metric snapshot (obs enabled), the
/// headline counters are read from it and the report adds a network
/// line (bytes/msgs/pages, peak channel depth) plus one line per
/// recorded phase with cluster-total sim and wall time.
/// What examples and the CLI print in verbose mode.
std::string RunReport(const RunResult& run);

/// One-line machine-readable summary:
/// "sim=<s> wire=<s> wall=<s> rows=<n> spilled=<n> switched=<n>
///  bytes=<n> chdepth=<n>".
/// bytes= and chdepth= come from the metric snapshot and read 0 when
/// observability is disabled.
std::string RunSummaryLine(const RunResult& run);

}  // namespace adaptagg

#endif  // ADAPTAGG_CLUSTER_RUN_REPORT_H_
