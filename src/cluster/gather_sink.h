#ifndef ADAPTAGG_CLUSTER_GATHER_SINK_H_
#define ADAPTAGG_CLUSTER_GATHER_SINK_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/mutex.h"

namespace adaptagg {

/// Central collection point for final result rows: every node appends
/// its emitted rows here so callers and tests can inspect the full
/// result set. Owns its lock and exposes only annotated operations —
/// replacing the old (mutex pointer, vector pointer) pair that leaked
/// unguarded references to node threads.
class GatherSink {
 public:
  GatherSink() = default;
  GatherSink(const GatherSink&) = delete;
  GatherSink& operator=(const GatherSink&) = delete;

  /// Copies one encoded result row in. Called concurrently by node
  /// threads during the emit phase.
  void Append(const uint8_t* row, size_t len) ADAPTAGG_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    rows_.emplace_back(row, row + len);
  }

  /// Moves the collected rows out (the sink is empty afterwards).
  /// Called once, after every node thread has joined.
  std::vector<std::vector<uint8_t>> TakeRows() ADAPTAGG_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return std::move(rows_);
  }

  size_t size() const ADAPTAGG_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return rows_.size();
  }

 private:
  mutable Mutex mu_;
  std::vector<std::vector<uint8_t>> rows_ ADAPTAGG_GUARDED_BY(mu_);
};

}  // namespace adaptagg

#endif  // ADAPTAGG_CLUSTER_GATHER_SINK_H_
