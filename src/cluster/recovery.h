#ifndef ADAPTAGG_CLUSTER_RECOVERY_H_
#define ADAPTAGG_CLUSTER_RECOVERY_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "net/fault.h"
#include "storage/checkpoint.h"

namespace adaptagg {

class NodeContext;

/// Per-node handle for checkpointed fault recovery. The phase bodies use
/// it at three points:
///
///   1. `BeginAttempt` at body start loads the node's latest durable
///      checkpoint (if any) into `restore()` — a torn or corrupted
///      checkpoint is counted, dropped, and treated as "replay from
///      scratch", never as an answer-changing restore.
///   2. `TickBatch` counts checkpointable progress (one scan batch or one
///      folded exchange page) and fires every `every_batches` units.
///   3. `WriteCheckpoint` durably persists a snapshot; a failed write is
///      counted and leaves the previous checkpoint as latest.
///
/// Checkpoint I/O runs on the store's dedicated disks, never the node's
/// cost-charged SimDisk, so enabling checkpointing cannot perturb the
/// modeled execution time. No wall-clock reads happen here; attempt
/// timing lives in the cluster driver.
class RecoveryNode {
 public:
  RecoveryNode(CheckpointStore* store, int node, int64_t every_batches);

  /// True when a checkpoint cadence is configured (`every_batches > 0`).
  /// False still allows restores written by an earlier attempt — a run
  /// that loses its cadence mid-flight keeps whatever it saved.
  bool checkpointing() const { return every_ > 0; }
  int64_t every_batches() const { return every_; }

  /// Starts a (re-)execution attempt on the owning node's thread: resets
  /// the batch cadence and loads the latest checkpoint into `restore()`.
  /// kNotFound leaves `restore()` null (scratch replay); kDataLoss bumps
  /// recovery.checkpoint_data_loss, drops the bad checkpoint, and also
  /// falls back to scratch.
  void BeginAttempt(NodeContext& ctx);

  /// The state restored by the last `BeginAttempt`, or nullptr when the
  /// attempt starts from scratch. Valid until the next `BeginAttempt`.
  const CheckpointState* restore() const { return restore_.get(); }

  /// Counts one unit of checkpointable progress; true when a checkpoint
  /// is due. Always false when `checkpointing()` is off.
  bool TickBatch();

  /// Durably writes `state` as the node's new latest checkpoint, bumping
  /// recovery.checkpoints_written / recovery.checkpoint_bytes. A write
  /// failure bumps recovery.checkpoint_failures and keeps the previous
  /// checkpoint as latest — recovery degrades, the query does not fail.
  void WriteCheckpoint(NodeContext& ctx, const CheckpointState& state);

  /// Counts a checkpoint opportunity skipped because the aggregation
  /// state was not snapshottable (spilled or radix-staged).
  void CountSkipped(NodeContext& ctx);

 private:
  CheckpointStore* store_;
  int node_;
  int64_t every_;
  int64_t ticks_ = 0;
  std::unique_ptr<CheckpointState> restore_;
};

/// Run-scoped recovery state shared across re-execution attempts: the
/// durable checkpoint store plus one RecoveryNode per cluster node.
/// Created by Cluster::Run when recovery is enabled and kept alive across
/// attempts so a replay can read what the crashed attempt wrote.
class RecoveryRuntime {
 public:
  /// `every_batches` is the resolved checkpoint cadence (0 = never);
  /// `disk_factory` lets fault plans substitute failing or torn-write
  /// checkpoint disks for targeted nodes.
  RecoveryRuntime(int num_nodes, int page_size, int64_t every_batches,
                  CheckpointStore::DiskFactory disk_factory = {});

  RecoveryRuntime(const RecoveryRuntime&) = delete;
  RecoveryRuntime& operator=(const RecoveryRuntime&) = delete;

  int num_nodes() const { return static_cast<int>(nodes_.size()); }
  RecoveryNode& node(int i) { return nodes_[static_cast<size_t>(i)]; }
  CheckpointStore& store() { return store_; }

 private:
  CheckpointStore store_;
  std::vector<RecoveryNode> nodes_;
};

/// Builds the checkpoint-disk factory for a run: plain SimDisks unless
/// the fault plan targets a node's checkpoint disk with disk-fail or
/// torn-write. Both executors (Cluster::Run and the serving layer's
/// sessions) build their RecoveryRuntime through this, so storage-fault
/// semantics are identical everywhere.
CheckpointStore::DiskFactory MakeCheckpointDiskFactory(const FaultPlan& plan,
                                                       int page_size);

}  // namespace adaptagg

#endif  // ADAPTAGG_CLUSTER_RECOVERY_H_
