#ifndef ADAPTAGG_CLUSTER_NODE_CONTEXT_H_
#define ADAPTAGG_CLUSTER_NODE_CONTEXT_H_

#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "agg/agg_spec.h"
#include "agg/batch_kernels.h"
#include "agg/spilling_aggregator.h"
#include "cluster/gather_sink.h"
#include "exec/expression.h"
#include "exec/operator.h"
#include "model/locality_model.h"
#include "model/merge_model.h"
#include "net/fault.h"
#include "net/network_model.h"
#include "net/transport.h"
#include "obs/node_obs.h"
#include "sim/cost_clock.h"
#include "sim/params.h"
#include "storage/heap_file.h"
#include "storage/page.h"

namespace adaptagg {

class RecoveryNode;
class SharedMergeArena;

/// Fault-recovery knobs of one run (DESIGN.md §11). When enabled, the
/// cluster checkpoints each node's partial-aggregate state every K scan
/// batches and, on an injected crash, re-executes the query with every
/// node replaying from its last good checkpoint instead of aborting.
/// Checkpoint I/O goes to dedicated recovery disks — never the charged
/// node disks — so enabling recovery on a fault-free run leaves every
/// modeled result bit-identical.
struct RecoveryOptions {
  bool enabled = false;
  /// Checkpoint interval in scan batches: -1 derives K from the cost
  /// model (model/recovery_model.h), 0 never checkpoints (recovery then
  /// replays from scratch), K > 0 is an explicit interval.
  int64_t checkpoint_every_batches = -1;
  /// Executions of the query before giving up (first run included), so
  /// repeated crashes terminate with the last attempt's error.
  int max_attempts = 3;
};

/// Tunables of one algorithm run. Negative values mean "derive the paper
/// default from SystemParams".
struct AlgorithmOptions {
  /// Hash table bound M per node phase (-1: params.max_hash_entries).
  int64_t max_hash_entries = -1;
  /// Overflow buckets per spill level.
  int spill_fanout = 8;

  // --- Sampling algorithm (§3.1) ---
  /// Groups below this choose Two Phase, at/above choose Repartitioning
  /// (-1: 100 * N as in §4).
  int64_t crossover_threshold = -1;
  /// Total sample tuples across the cluster (-1: Erdős–Rényi bound for
  /// the crossover threshold).
  int64_t sample_size = -1;

  // --- Adaptive Repartitioning (§3.3) ---
  /// Tuples a node scans before judging whether repartitioning pays.
  int64_t init_seg = 10'000;
  /// "Too few groups" bound at decision time (-1: crossover threshold).
  int64_t few_groups_threshold = -1;

  // --- Radix pre-partitioning of local aggregation ---
  /// Hash-direct vs cache-sized radix-partitioned batch aggregation
  /// (model/locality_model.h). kAuto engages when the sampling phase's
  /// group estimate says the working set exceeds the last-level-cache
  /// budget; kOn/kOff force the choice. Wall-clock-only: never changes
  /// modeled costs or emitted results.
  RadixMode radix_mode = RadixMode::kAuto;
  /// L2 partition-region budget in bytes (-1: model default, 2 MiB).
  int64_t radix_l2_bytes = -1;
  /// Last-level-cache budget in bytes gating kAuto engagement (-1:
  /// model default, 32 MiB — see locality_model.h for the measured
  /// rationale).
  int64_t radix_llc_bytes = -1;

  // --- Final-merge topology (DESIGN.md §12) ---
  /// How the cluster combines per-node partial aggregates into final
  /// groups (model/merge_model.h). kAuto lets the sampling phase's cost
  /// model choose (non-sampling algorithms stay on the seed wire); the
  /// other values pin one topology. Unsupported combinations — single
  /// node, recovery-enabled runs, a shared merge over a socket mesh —
  /// demote to the seed wire rather than fail. Every topology emits
  /// byte-identical rows at identical modeled cost; only wall time and
  /// wire traffic shape differ.
  MergeMode merge_mode = MergeMode::kAuto;

  /// Caller-supplied global distinct-group estimate (0: unknown). Feeds
  /// the pinned topologies' table sizing and the serving layer's
  /// admission memory estimate; the sampling phase overrides it with its
  /// measured estimate.
  int64_t estimated_groups = 0;

  // --- Adaptive Two Phase ablation knob ---
  /// Fraction of M at which A-2P abandons local aggregation (1.0 = the
  /// paper's memory-overflow switch point).
  double switch_fill_fraction = 1.0;

  /// Store final rows to each node's local disk (charged I/O), as the
  /// paper's store operator does.
  bool store_results = true;
  /// Also gather rows centrally so callers/tests can inspect them.
  bool gather_results = true;

  /// Optional WHERE predicate over the input schema: every node's local
  /// scan is wrapped in a select operator (§2's pipeline architecture).
  /// Validated by Cluster::Run before execution.
  ExprPtr where;
  /// Optional HAVING predicate over the aggregation's final schema,
  /// applied when result rows are emitted (§2: evaluated after GROUP BY).
  ExprPtr having;

  /// Seed for sampling randomness.
  uint64_t seed = 42;

  /// Observability switches for the run (metrics / phase spans / trace
  /// event log). Defaults: metrics and spans on, traces off.
  ObsConfig obs;

  /// Injected failure scenario (empty = fault-free; the default leaves
  /// run behavior bit-identical to builds without fault injection). A
  /// non-empty plan arms failure detection.
  FaultPlan fault_plan;

  /// Failure-detection knobs (deadlines, heartbeats). See net/fault.h.
  FailureDetection failure;

  /// Serving-layer session id (0: one-shot run). Stamped by
  /// ClusterService on admission; namespaces the node's result file so
  /// concurrent sessions storing results on one shared disk stay
  /// distinguishable, and flows into RunResult::query_id.
  uint32_t query_id = 0;

  /// Cluster-membership epoch this run executes under (0: one-shot runs
  /// and the service's initial membership). Stamped into every outbound
  /// frame; inbound frames from another epoch are stale leftovers of a
  /// pre-resize membership and are dropped on admission.
  uint32_t epoch = 0;

  /// Fault-recovery configuration (checkpointing + survivor replay).
  RecoveryOptions recovery;
};

/// Per-node execution counters reported back by a run.
struct NodeRunStats {
  int64_t tuples_scanned = 0;
  int64_t raw_records_sent = 0;
  int64_t partial_records_sent = 0;
  int64_t raw_records_received = 0;
  int64_t partial_records_received = 0;
  int64_t messages_sent = 0;
  int64_t result_rows = 0;
  /// Groups dropped by the HAVING predicate on this node.
  int64_t rows_filtered_by_having = 0;
  /// Did this node adaptively change strategy (A-2P overflow switch or
  /// A-Rep end-of-phase)?
  bool switched = false;
  /// Tuples scanned before the switch (0 if none).
  int64_t switch_at_tuple = 0;
  SpillStats spill;
};

class Cluster;

/// Everything one node's thread needs to execute an aggregation
/// algorithm: its local partition, its disk, its simulated clock, its
/// transport endpoint, and result emission. Algorithms are written purely
/// against this interface.
class NodeContext {
 public:
  /// `obs_wall_epoch_s` aligns this node's trace wall timeline with the
  /// rest of the cluster (Cluster::Run passes one WallSeconds() reading
  /// to every node); negative means "use this node's own construction
  /// time", which standalone/test contexts can leave defaulted.
  NodeContext(int node_id, const SystemParams& params,
              const AggregationSpec& spec, const AlgorithmOptions& options,
              HeapFile* local_partition, Disk* disk, Transport* transport,
              NetworkModel* net, double obs_wall_epoch_s = -1);

  NodeContext(const NodeContext&) = delete;
  NodeContext& operator=(const NodeContext&) = delete;

  int node_id() const { return node_id_; }
  int num_nodes() const { return params_.num_nodes; }
  bool is_coordinator() const { return node_id_ == 0; }

  const SystemParams& params() const { return params_; }
  const AggregationSpec& spec() const { return spec_; }
  const AlgorithmOptions& options() const { return options_; }

  /// The resolved hash table bound M.
  int64_t max_hash_entries() const;
  int64_t crossover_threshold() const;
  int64_t few_groups_threshold() const;

  /// Sampling-phase estimate of this node's local distinct-group count
  /// (0 = no estimate yet). Written by the sampling decision phase, read
  /// by the phase bodies' radix pre-partitioning decision; never shipped
  /// over the wire.
  int64_t estimated_local_groups() const { return estimated_groups_; }
  void set_estimated_local_groups(int64_t groups) {
    estimated_groups_ = groups;
  }

  /// Sampling's cluster-wide merge resolution under MergeMode::kAuto:
  /// the chosen topology plus the inputs that picked it (global group
  /// estimate, skew in fixed-point 256 = uniform). Defaults to the seed
  /// wire, so algorithms without a sampling phase only leave it when the
  /// run pins a topology explicitly. Never shipped implicitly — the
  /// sampling coordinator broadcasts the decision so every node agrees.
  MergeTopology sampled_merge_topology() const {
    return sampled_merge_topology_;
  }
  int64_t sampled_merge_groups() const { return sampled_merge_groups_; }
  int32_t sampled_merge_skew_q8() const { return sampled_merge_skew_q8_; }
  void set_sampled_merge(MergeTopology topology, int64_t est_groups,
                         int32_t skew_q8) {
    sampled_merge_topology_ = topology;
    sampled_merge_groups_ = est_groups;
    sampled_merge_skew_q8_ = skew_q8;
  }

  /// Cross-node shared merge table arena (null outside in-process
  /// clusters; the shared topology then demotes to the seed wire).
  SharedMergeArena* merge_arena() { return merge_arena_; }
  void SetMergeArena(SharedMergeArena* arena) { merge_arena_ = arena; }

  /// True when every node of the mesh lives in this address space, the
  /// precondition for merging into one shared table.
  bool shared_memory_transport() const {
    return transport_ != nullptr && transport_->shared_memory();
  }

  HeapFile* local_partition() { return local_partition_; }
  Disk* disk() { return disk_; }

  CostClock& clock() { return clock_; }
  NodeRunStats& stats() { return stats_; }

  /// This node's observability shard (metric registry, trace recorder,
  /// pre-bound handles). Always present; disabled configs make every
  /// update a no-op.
  NodeObs& obs() { return *obs_; }

  /// Folds the end-of-run values that are tracked elsewhere — NodeRunStats
  /// record counters, spill stats, the transport's inbox high-water —
  /// into the metric shard. Called once per node after the algorithm
  /// returns (by Cluster::Run, or manually in standalone harnesses).
  void FinalizeObs();

  // --- messaging (costs charged via the NetworkModel) ---
  /// Stamps the per-destination sequence number and sends. Receivers use
  /// the sequence to discard duplicated messages and detect lost ones.
  Status Send(int to, Message msg);

  /// Blocking receive bounded by `timeout_s` (negative: wait forever);
  /// kDeadlineExceeded on timeout. Heartbeats are swallowed, duplicates
  /// discarded, and a sequence gap (a message lost or rejected in
  /// transit) returns a descriptive kNetworkError. There is deliberately
  /// no unbounded Recv here: algorithm code must not be able to hang on
  /// a lost message (adaptagg_lint enforces this outside src/net).
  Result<Message> RecvWithDeadline(double timeout_s);

  /// Non-blocking receive with the same validation as RecvWithDeadline:
  /// OK(nullopt) when the inbox is empty, an error on detected loss.
  Result<std::optional<Message>> TryRecv();

  /// Blocking receive honoring the run's failure-detection policy.
  /// `pending(p)` says whether this wait still needs traffic from node p
  /// — while armed, those peers' liveness (last time anything arrived
  /// from them, heartbeats included) is checked every tick and a silent
  /// peer aborts the wait with a descriptive status naming the node,
  /// this node's current phase, and the cause. Unarmed runs simply
  /// bound the wait by the derived idle deadline.
  Result<Message> AwaitMessage(const std::function<bool(int)>& pending);

  /// Re-queues a message this node popped but cannot handle yet (e.g. a
  /// data-phase page arriving while waiting for a control message).
  /// Stashed messages are returned by Recv/TryRecv — in stash order,
  /// before new network traffic — without charging receive costs again.
  void Stash(Message msg) { stash_.push_back(std::move(msg)); }

  /// Charges any disk I/O performed since the last sync (sequential and
  /// random page costs) onto the clock.
  void SyncDiskIo();

  /// Phantom accounting for merge topologies that reroute the seed
  /// partial stream: charges exactly what sending (receiving) one wire
  /// page of `charged_bytes` modeled bytes charges — protocol CPU plus
  /// wire occupancy — without any frame travelling and without touching
  /// transport sequence numbers or message counters. Totals stay
  /// order-independent because receive never advances to depart time
  /// (see NetworkModel::OnReceive).
  void ChargePhantomSend(uint32_t charged_bytes);
  void ChargePhantomReceive(uint32_t charged_bytes);

  // --- payload buffer pool ---
  /// Pops a recycled page-payload buffer (or an empty vector when the
  /// pool is dry) for an outgoing page; counts the hit or the fresh
  /// allocation into the node's metrics.
  std::vector<uint8_t> AcquirePageBuffer();

  /// Returns a finished payload buffer (a sent page's replaced builder
  /// buffer, or a fully decoded received page) to the pool.
  void ReleasePageBuffer(std::vector<uint8_t> buf);

  // --- failure detection and fault hooks ---
  /// Marks a phase boundary ("scan", "merge", "emit", "sample"): names
  /// the phase for failure diagnostics and fires any injected
  /// crash-at-phase fault. Algorithms call this when opening each phase.
  Status EnterPhase(const char* phase);

  /// Phase this node is currently executing (for diagnostics).
  const std::string& current_phase() const { return current_phase_; }

  /// Runtime servicing hook for inbox-poll sites: executes an injected
  /// straggle (wall-clock sleep) and, while armed, broadcasts a
  /// heartbeat when one is due. Cheap no-op on fault-free runs.
  void PollRuntime();

  /// Broadcasts a liveness beacon when armed and one is due. Heartbeats
  /// bypass the network cost model and all traffic stats: they exist in
  /// wall time only, so they cannot perturb simulated results.
  void MaybeHeartbeat();

  /// Fires an injected crash-at-tuple fault once the scan has passed its
  /// trigger index (checked by LocalScanner at batch granularity).
  Status CheckScanFault();

  /// True when failure detection is armed (explicitly enabled, or a
  /// non-empty fault plan is active).
  bool failure_detection_armed() const { return armed_; }

  /// True once this node executed an injected crash. The recovery loop
  /// retries exactly when some node crashed — every other failure mode
  /// keeps its clean-abort semantics.
  bool crashed() const { return crashed_; }

  /// Next deterministic data-page sequence number toward `dest` (1, 2,
  /// ...). Stamped by Exchange::SendPage on kRawPage/kPartialPage frames;
  /// unlike the transport seq it never moves with wall-clock heartbeat
  /// traffic, so a replayed stream reproduces the same numbering.
  uint64_t NextPageSeq(int dest) {
    return ++page_seq_[static_cast<size_t>(dest)];
  }

  /// This node's recovery runtime hook (null when recovery is disabled;
  /// phase bodies then skip all checkpoint/restore work).
  RecoveryNode* recovery() { return recovery_; }
  void SetRecovery(RecoveryNode* recovery) { recovery_ = recovery; }

  /// Resolved idle deadline for blocking receives.
  double recv_idle_timeout_s() const { return idle_timeout_s_; }

  // --- result emission ---
  /// Finalizes (key, state) into a result row: charges t_w, stores to the
  /// local result file (if store_results) and gathers it (if
  /// gather_results).
  Status EmitFinalRow(const uint8_t* key, const uint8_t* state);

  /// Flushes the result file and syncs I/O. Call once per node at the end.
  Status FinishResults();

  /// Wires up central gathering (done by Cluster). The sink owns its
  /// lock, so the node only ever sees annotated operations.
  void SetGather(GatherSink* sink) { gather_ = sink; }

 private:
  /// Admission control for one message popped off the transport:
  /// updates liveness and sequence bookkeeping, swallows heartbeats and
  /// duplicates (returns false), errors on a detected sequence gap.
  Result<bool> AdmitIncoming(const Message& msg);

  /// Executes an injected crash: fail-stops the transport (a dead node
  /// reaches nobody) and returns the descriptive error.
  Status InjectCrash(const std::string& where);

  int node_id_;
  const SystemParams& params_;
  const AggregationSpec& spec_;
  const AlgorithmOptions& options_;
  HeapFile* local_partition_;
  Disk* disk_;
  Transport* transport_;
  NetworkModel* net_;

  CostClock clock_;
  NodeRunStats stats_;
  int64_t estimated_groups_ = 0;
  MergeTopology sampled_merge_topology_ = MergeTopology::kSeed;
  int64_t sampled_merge_groups_ = 0;
  int32_t sampled_merge_skew_q8_ = 256;
  SharedMergeArena* merge_arena_ = nullptr;
  std::unique_ptr<NodeObs> obs_;
  PagePool page_pool_;
  DiskStats last_disk_;
  std::deque<Message> stash_;

  // Failure detection (see DESIGN.md §9).
  bool armed_ = false;
  double idle_timeout_s_ = 60;
  double heartbeat_interval_s_ = 0;
  double phase_budget_s_ = 480;
  double tick_s_ = 0.25;
  std::string current_phase_ = "init";
  std::vector<uint64_t> send_seq_;
  std::vector<uint64_t> recv_seq_;
  std::vector<uint64_t> page_seq_;
  RecoveryNode* recovery_ = nullptr;
  std::vector<double> last_heard_;
  double last_heartbeat_wall_ = 0;

  // Injected node faults (resolved from the plan for this node).
  int64_t crash_at_tuple_ = -1;
  std::string crash_at_phase_;
  double straggle_secs_ = 0;
  bool crashed_ = false;

  std::unique_ptr<HeapFile> result_file_;
  std::vector<uint8_t> row_buf_;
  GatherSink* gather_ = nullptr;
};

/// This node's local input pipeline (§2's operator architecture): a
/// cost-charging sequential scan of the partition — one sequential page
/// I/O per page, select cost t_r + t_w per tuple — wrapped in a select
/// operator when the run carries a WHERE predicate. Counts surviving
/// tuples into the node's stats.
class LocalScanner {
 public:
  explicit LocalScanner(NodeContext* ctx);

  /// Next tuple, or an invalid view at end of input (or on error —
  /// check status() after the loop).
  TupleView Next();

  /// Batch form: clears `batch`, then gathers (projects) up to
  /// kBatchWidth surviving tuples into it and hashes their keys.
  /// Returns the batch size; 0 at end of input (or on error — check
  /// status()). Per-tuple scan costs and the tuples_scanned counter are
  /// charged in bulk, identically to calling Next() per tuple.
  int FillBatch(TupleBatch& batch);

  /// OK unless opening or scanning the pipeline failed.
  const Status& status() const { return status_; }

 private:
  NodeContext* ctx_;
  RowOperatorPtr op_;
  Status status_;
  double select_cost_ = 0;
};

}  // namespace adaptagg

#endif  // ADAPTAGG_CLUSTER_NODE_CONTEXT_H_
