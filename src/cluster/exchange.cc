#include "cluster/exchange.h"

#include "common/random.h"

namespace adaptagg {

int DestOfKeyHash(uint64_t key_hash, int num_nodes) {
  return static_cast<int>(SplitMix64(key_hash ^ 0xd357a7e5ULL) %
                          static_cast<uint64_t>(num_nodes));
}

Exchange::Exchange(NodeContext* ctx, MessageType type, int record_width,
                   uint32_t phase)
    : ctx_(ctx), type_(type), record_width_(record_width), phase_(phase) {
  builders_.reserve(static_cast<size_t>(ctx->num_nodes()));
  for (int i = 0; i < ctx->num_nodes(); ++i) {
    builders_.emplace_back(ctx->params().message_page_bytes, record_width);
  }
}

Status Exchange::SendPage(int dest) {
  Message msg;
  msg.type = type_;
  msg.phase = phase_;
  msg.payload = builders_[static_cast<size_t>(dest)].Finish();
  return ctx_->Send(dest, std::move(msg));
}

Status Exchange::Add(int dest, const uint8_t* record) {
  PageBuilder& b = builders_[static_cast<size_t>(dest)];
  b.Append(record);
  ++records_sent_;
  if (b.full()) {
    return SendPage(dest);
  }
  return Status::OK();
}

Status Exchange::FlushAll() {
  for (int dest = 0; dest < ctx_->num_nodes(); ++dest) {
    if (!builders_[static_cast<size_t>(dest)].empty()) {
      ADAPTAGG_RETURN_IF_ERROR(SendPage(dest));
    }
  }
  return Status::OK();
}

Status BroadcastEos(NodeContext* ctx, uint32_t phase) {
  Message msg;
  msg.type = MessageType::kEndOfStream;
  msg.phase = phase;
  return Broadcast(ctx, msg);
}

Status Broadcast(NodeContext* ctx, const Message& msg) {
  for (int dest = 0; dest < ctx->num_nodes(); ++dest) {
    ADAPTAGG_RETURN_IF_ERROR(ctx->Send(dest, msg));
  }
  return Status::OK();
}

}  // namespace adaptagg
