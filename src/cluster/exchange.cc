#include "cluster/exchange.h"

#include <cstring>
#include <numeric>

#include "common/logging.h"
#include "common/random.h"

namespace adaptagg {

int DestOfKeyHash(uint64_t key_hash, int num_nodes) {
  return static_cast<int>(SplitMix64(key_hash ^ 0xd357a7e5ULL) %
                          static_cast<uint64_t>(num_nodes));
}

namespace {

/// Gathers the idx-selected batch records into per-destination lanes,
/// preserving index order within each destination. W > 0 fixes the
/// record width at compile time so the per-record copy lowers to plain
/// loads/stores instead of a memcpy call; W == 0 is the generic width.
template <int W>
void GatherLanes(const TupleBatch& batch, const int* idx, int n,
                 int num_nodes, size_t width, uint8_t* lanes,
                 size_t lane_stride, int* counts) {
  const uint8_t* recs = batch.records();
  const size_t w = W > 0 ? static_cast<size_t>(W) : width;
  for (int j = 0; j < n; ++j) {
    const int i = idx[j];
    const int d = DestOfKeyHash(batch.hash(i), num_nodes);
    uint8_t* dst = lanes + static_cast<size_t>(d) * lane_stride +
                   static_cast<size_t>(counts[d]) * w;
    const uint8_t* src = recs + static_cast<size_t>(i) * w;
    if constexpr (W > 0) {
      std::memcpy(dst, src, static_cast<size_t>(W));
    } else {
      std::memcpy(dst, src, w);
    }
    ++counts[d];
  }
}

}  // namespace

Exchange::Exchange(NodeContext* ctx, MessageType type, int record_width,
                   uint32_t phase, bool cost_exempt)
    : ctx_(ctx),
      type_(type),
      record_width_(record_width),
      phase_(phase),
      cost_exempt_(cost_exempt) {
  const int n = ctx->num_nodes();
  builders_.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    builders_.emplace_back(ctx->params().message_page_bytes, record_width);
  }
  pages_per_dest_.assign(static_cast<size_t>(n), 0);
  scatter_count_.resize(static_cast<size_t>(n));
  scatter_lanes_.resize(static_cast<size_t>(n) *
                        static_cast<size_t>(kBatchWidth) *
                        static_cast<size_t>(record_width));
  identity_.resize(static_cast<size_t>(kBatchWidth));
  std::iota(identity_.begin(), identity_.end(), 0);
}

Status Exchange::SendPage(int dest) {
  Message msg;
  msg.type = type_;
  msg.phase = phase_;
  // Trim the payload to the bytes actually written, but charge the cost
  // model for the full page: the paper's network model bills whole pages.
  msg.payload = builders_[static_cast<size_t>(dest)].FinishWire(
      ctx_->AcquirePageBuffer());
  msg.charged_bytes =
      cost_exempt_
          ? kExemptChargedBytes
          : static_cast<uint32_t>(ctx_->params().message_page_bytes);
  // Deterministic per-destination data-page numbering: a replayed sender
  // regenerates the identical stream, so a recovering receiver can skip
  // pages at or below its checkpointed fold watermark.
  msg.page_seq = ctx_->NextPageSeq(dest);
  ++pages_per_dest_[static_cast<size_t>(dest)];
  return ctx_->Send(dest, std::move(msg));
}

Status Exchange::AddRecord(int dest, const uint8_t* record) {
  PageBuilder& b = builders_[static_cast<size_t>(dest)];
  b.Append(record);
  ++records_sent_;
  if (b.full()) {
    return SendPage(dest);
  }
  return Status::OK();
}

Status Exchange::AppendRun(int dest, const uint8_t* recs, int n) {
  PageBuilder& b = builders_[static_cast<size_t>(dest)];
  records_sent_ += n;
  while (n > 0) {
    const int took = b.AppendBatch(recs, n);
    recs += static_cast<size_t>(took) * static_cast<size_t>(record_width_);
    n -= took;
    if (b.full()) {
      ADAPTAGG_RETURN_IF_ERROR(SendPage(dest));
    }
  }
  return Status::OK();
}

Status Exchange::Scatter(const TupleBatch& batch, const int* idx, int n) {
  ADAPTAGG_DCHECK(batch.stride() == record_width_)
      << "exchange record width does not match the batch layout";
  const int num_nodes = ctx_->num_nodes();
  const uint8_t* recs = batch.records();
  if (num_nodes == 1) {
    // Single destination: the whole index list is one ordered stream;
    // emit its maximal contiguous runs directly.
    int s = 0;
    while (s < n) {
      int e = s + 1;
      while (e < n && idx[e] == idx[e - 1] + 1) ++e;
      ADAPTAGG_RETURN_IF_ERROR(AppendRun(
          0,
          recs + static_cast<size_t>(idx[s]) *
                     static_cast<size_t>(record_width_),
          e - s));
      s = e;
    }
    return Status::OK();
  }

  // Gather each record into its destination's lane (index order within a
  // destination is preserved, so every per-destination record stream is
  // identical to the scalar per-record loop's), then flush each lane with
  // one bulk append. Random hash routing makes within-batch consecutive
  // runs ~1 record long, so a gather beats run detection.
  ADAPTAGG_DCHECK(n <= kBatchWidth) << "scatter exceeds lane capacity";
  std::fill(scatter_count_.begin(), scatter_count_.end(), 0);
  const size_t width = static_cast<size_t>(record_width_);
  const size_t lane_stride = static_cast<size_t>(kBatchWidth) * width;
  uint8_t* lanes = scatter_lanes_.data();
  int* counts = scatter_count_.data();
  switch (record_width_) {
    case 8:
      GatherLanes<8>(batch, idx, n, num_nodes, width, lanes, lane_stride,
                     counts);
      break;
    case 16:
      GatherLanes<16>(batch, idx, n, num_nodes, width, lanes, lane_stride,
                      counts);
      break;
    case 24:
      GatherLanes<24>(batch, idx, n, num_nodes, width, lanes, lane_stride,
                      counts);
      break;
    case 32:
      GatherLanes<32>(batch, idx, n, num_nodes, width, lanes, lane_stride,
                      counts);
      break;
    default:
      GatherLanes<0>(batch, idx, n, num_nodes, width, lanes, lane_stride,
                     counts);
      break;
  }
  for (int d = 0; d < num_nodes; ++d) {
    const int count = counts[d];
    if (count > 0) {
      ADAPTAGG_RETURN_IF_ERROR(AppendRun(
          d, lanes + static_cast<size_t>(d) * lane_stride, count));
    }
  }
  return Status::OK();
}

Status Exchange::AddBatch(const TupleBatch& batch, int from, int to) {
  if (to < 0) to = batch.size();
  if (from >= to) return Status::OK();
  return Scatter(batch, identity_.data() + from, to - from);
}

Status Exchange::AddIndices(const TupleBatch& batch, const int* idx, int n) {
  if (n <= 0) return Status::OK();
  return Scatter(batch, idx, n);
}

Status Exchange::FlushAll() {
  for (int dest = 0; dest < ctx_->num_nodes(); ++dest) {
    if (!builders_[static_cast<size_t>(dest)].empty()) {
      ADAPTAGG_RETURN_IF_ERROR(SendPage(dest));
    }
  }
  for (size_t d = 0; d < pages_per_dest_.size(); ++d) {
    if (pages_per_dest_[d] > 0) {
      ctx_->obs().net_exchange_pages_per_dest.Observe(
          static_cast<double>(pages_per_dest_[d]));
      pages_per_dest_[d] = 0;
    }
  }
  return Status::OK();
}

Status BroadcastEos(NodeContext* ctx, uint32_t phase) {
  Message msg;
  msg.type = MessageType::kEndOfStream;
  msg.phase = phase;
  return Broadcast(ctx, msg);
}

Status Broadcast(NodeContext* ctx, const Message& msg) {
  for (int dest = 0; dest < ctx->num_nodes(); ++dest) {
    ADAPTAGG_RETURN_IF_ERROR(ctx->Send(dest, msg));
  }
  return Status::OK();
}

}  // namespace adaptagg
