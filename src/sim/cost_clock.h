#ifndef ADAPTAGG_SIM_COST_CLOCK_H_
#define ADAPTAGG_SIM_COST_CLOCK_H_

#include <algorithm>
#include <atomic>
#include <string>

namespace adaptagg {

/// Per-node simulated clock. The engine executes aggregation for real (on
/// real tuples) but *time* is modeled: every operation charges its Table 1
/// cost onto the node's clock, mirroring the paper's "no overlap between
/// CPU, I/O and message passing" assumption. Message causality is kept by
/// advancing the receiver to at least the sender's departure time.
///
/// Single-owner by construction: only the owning node's thread charges
/// or reads it during a run, and Cluster::Run reads the totals after
/// joining every node thread, so there is no lock and nothing to
/// ADAPTAGG_GUARDED_BY — the join is the synchronization point.
class CostClock {
 public:
  double now() const { return now_; }
  double cpu_s() const { return cpu_; }
  double io_s() const { return io_; }
  double net_s() const { return net_; }
  double idle_s() const { return idle_; }

  void AddCpu(double s) {
    cpu_ += s;
    now_ += s;
  }
  void AddIo(double s) {
    io_ += s;
    now_ += s;
  }
  void AddNet(double s) {
    net_ += s;
    now_ += s;
  }

  /// Waits (simulated) until `t`; no-op if already past it.
  void AdvanceTo(double t) {
    if (t > now_) {
      idle_ += t - now_;
      now_ = t;
    }
  }

  void Reset() { *this = CostClock(); }

  std::string ToString() const;

 private:
  double now_ = 0;
  double cpu_ = 0;
  double io_ = 0;
  double net_ = 0;
  double idle_ = 0;
};

/// The shared Ethernet medium of the limited-bandwidth network model: a
/// single sequential resource. A sender reserves `duration` seconds on the
/// medium no earlier than `earliest`; the reservation start is returned.
/// Thread-safe (nodes run on concurrent threads) without a mutex: the
/// only shared state is one atomic advanced by CAS, so there is no
/// capability to annotate.
class SharedEther {
 public:
  /// Reserves [start, start+duration) with start >= max(earliest,
  /// busy_until) and returns start.
  double Acquire(double earliest, double duration);

  /// Simulated time at which the medium becomes free.
  double busy_until() const;

  void Reset();

 private:
  std::atomic<double> busy_until_{0.0};
};

}  // namespace adaptagg

#endif  // ADAPTAGG_SIM_COST_CLOCK_H_
