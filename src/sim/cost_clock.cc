#include "sim/cost_clock.h"

#include <sstream>

namespace adaptagg {

std::string CostClock::ToString() const {
  std::ostringstream os;
  os.precision(4);
  os << "t=" << now_ << "s (cpu=" << cpu_ << " io=" << io_
     << " net=" << net_ << " idle=" << idle_ << ")";
  return os.str();
}

double SharedEther::Acquire(double earliest, double duration) {
  double busy = busy_until_.load(std::memory_order_relaxed);
  while (true) {
    double start = std::max(earliest, busy);
    if (busy_until_.compare_exchange_weak(busy, start + duration,
                                          std::memory_order_relaxed)) {
      return start;
    }
    // `busy` was reloaded by the failed CAS; retry with the new value.
  }
}

double SharedEther::busy_until() const {
  return busy_until_.load(std::memory_order_relaxed);
}

void SharedEther::Reset() {
  busy_until_.store(0.0, std::memory_order_relaxed);
}

}  // namespace adaptagg
