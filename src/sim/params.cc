#include "sim/params.h"

#include <sstream>

namespace adaptagg {

std::string NetworkKindToString(NetworkKind kind) {
  return kind == NetworkKind::kHighBandwidth ? "high-bandwidth"
                                             : "limited-bandwidth";
}

SystemParams SystemParams::Paper32() { return SystemParams(); }

SystemParams SystemParams::Cluster8() {
  SystemParams p;
  p.num_nodes = 8;
  p.num_tuples = 2'000'000;
  p.network = NetworkKind::kLimitedBandwidth;
  // 10 Mbit/s Ethernet: a 4 KB page takes ~3.3 ms on the wire. The paper
  // models the limited-bandwidth network with m_l as the occupancy of the
  // shared medium per page.
  p.msg_latency_s = 4096.0 * 8.0 / 10e6;
  return p;
}

std::string SystemParams::ToString() const {
  std::ostringstream os;
  os << "N=" << num_nodes << " |R|=" << num_tuples
     << " tuple=" << tuple_bytes << "B P=" << page_bytes
     << "B IO=" << io_seq_s * 1e3 << "ms rIO=" << io_rand_s * 1e3
     << "ms p=" << projectivity << " M=" << max_hash_entries << " net="
     << NetworkKindToString(network) << " m_l=" << msg_latency_s * 1e3
     << "ms";
  return os.str();
}

}  // namespace adaptagg
