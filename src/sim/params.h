#ifndef ADAPTAGG_SIM_PARAMS_H_
#define ADAPTAGG_SIM_PARAMS_H_

#include <cstdint>
#include <string>

namespace adaptagg {

/// Interconnect model (§2): commercial multiprocessor networks (IBM SP-2
/// class) are modeled by per-page latency only ("unlimited bandwidth");
/// an Ethernet-class network is a single sequential resource — sending a
/// fixed amount of data takes fixed time regardless of how many nodes are
/// transmitting.
enum class NetworkKind {
  kHighBandwidth = 0,
  kLimitedBandwidth = 1,
};

std::string NetworkKindToString(NetworkKind kind);

/// The paper's Table 1 parameters, with helpers converting instruction
/// counts to seconds. All derived times are in seconds.
struct SystemParams {
  int num_nodes = 32;                  ///< N
  double mips = 40.0;                  ///< processor MIPS
  int64_t num_tuples = 8'000'000;      ///< |R|
  int tuple_bytes = 100;               ///< so R = 800 MB
  int page_bytes = 4096;               ///< P
  double io_seq_s = 1.15e-3;           ///< IO: sequential page read/write
  double io_rand_s = 15.0e-3;          ///< rIO: random page read
  double projectivity = 0.16;          ///< p: fraction of tuple aggregated
  double instr_read_tuple = 300;       ///< t_r
  double instr_write_tuple = 100;      ///< t_w
  double instr_hash = 400;             ///< t_h
  double instr_agg = 300;              ///< t_a
  double instr_dest = 10;              ///< t_d
  double instr_msg_per_page = 1000;    ///< m_p
  double msg_latency_s = 2.0e-3;       ///< m_l: time to send a page
  int64_t max_hash_entries = 10'000;   ///< M: hash table bound
  NetworkKind network = NetworkKind::kHighBandwidth;
  /// The implementation (§5) blocks network messages into 2 KB pages.
  int message_page_bytes = 2048;

  // --- derived times (seconds) ---
  double InstrTime(double instructions) const {
    return instructions / (mips * 1e6);
  }
  double t_r() const { return InstrTime(instr_read_tuple); }
  double t_w() const { return InstrTime(instr_write_tuple); }
  double t_h() const { return InstrTime(instr_hash); }
  double t_a() const { return InstrTime(instr_agg); }
  double t_d() const { return InstrTime(instr_dest); }
  double m_p() const { return InstrTime(instr_msg_per_page); }
  double m_l() const { return msg_latency_s; }

  double relation_bytes() const {
    return static_cast<double>(num_tuples) * tuple_bytes;
  }
  /// |R_i|: tuples per node under uniform declustering.
  double tuples_per_node() const {
    return static_cast<double>(num_tuples) / num_nodes;
  }
  /// R_i in bytes.
  double bytes_per_node() const { return relation_bytes() / num_nodes; }

  /// The paper's 32-node analytical configuration (Table 1 defaults).
  static SystemParams Paper32();
  /// The §5 implementation platform: 8 nodes, 2M 100-byte tuples,
  /// 10 Mbit/s shared Ethernet.
  static SystemParams Cluster8();

  std::string ToString() const;
};

}  // namespace adaptagg

#endif  // ADAPTAGG_SIM_PARAMS_H_
