#ifndef ADAPTAGG_MODEL_SAMPLING_MODEL_H_
#define ADAPTAGG_MODEL_SAMPLING_MODEL_H_

#include <cstdint>

namespace adaptagg {

/// Sample size (total tuples across the cluster) needed to observe at
/// least `crossover_threshold` distinct groups with high probability when
/// that many groups exist — the Erdős–Rényi coupon-collector bound
/// n (ln n + c) of [ER61], §3.1. The constant is calibrated to the
/// paper's worked example (threshold 320 -> ~2563 samples, i.e. roughly
/// 10x the threshold).
int64_t RequiredSampleSize(int64_t crossover_threshold);

/// The paper's default crossover threshold for N processors (§4: 100·N).
int64_t DefaultCrossoverThreshold(int num_processors);

}  // namespace adaptagg

#endif  // ADAPTAGG_MODEL_SAMPLING_MODEL_H_
