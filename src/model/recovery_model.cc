#include "model/recovery_model.h"

#include <algorithm>
#include <cmath>

namespace adaptagg {

CheckpointDecision DecideCheckpointInterval(const SystemParams& params,
                                            int64_t est_groups,
                                            int64_t partial_bytes,
                                            int64_t batch_width) {
  CheckpointDecision d;
  // One checkpoint writes the resident partials (plus a manifest page)
  // sequentially to the node's checkpoint disk.
  const double snapshot_bytes =
      static_cast<double>(std::max<int64_t>(est_groups, 1)) *
      static_cast<double>(std::max<int64_t>(partial_bytes, 1));
  const double pages =
      1.0 + std::ceil(snapshot_bytes / static_cast<double>(params.page_bytes));
  d.checkpoint_cost_s = pages * params.io_seq_s;
  // Replaying one lost batch re-reads and re-hashes batch_width tuples
  // (the aggregate update rides along with the hash in the fused kernel).
  d.batch_cost_s = static_cast<double>(std::max<int64_t>(batch_width, 1)) *
                   (params.t_r() + params.t_h() + params.t_a());
  const double k = std::sqrt(2.0 * d.checkpoint_cost_s / d.batch_cost_s);
  d.every_batches = std::clamp<int64_t>(
      static_cast<int64_t>(std::ceil(k)), 1, 4096);
  return d;
}

}  // namespace adaptagg
