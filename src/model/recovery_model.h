#ifndef ADAPTAGG_MODEL_RECOVERY_MODEL_H_
#define ADAPTAGG_MODEL_RECOVERY_MODEL_H_

#include <cstdint>

#include "sim/params.h"

namespace adaptagg {

/// Outcome of the checkpoint-interval decision, kept around so the
/// recovery runtime can export why it checkpoints as often as it does.
struct CheckpointDecision {
  /// Chosen interval: snapshot the node's partial state every this many
  /// scan batches. Always in [1, 4096].
  int64_t every_batches = 0;
  /// Modeled cost (seconds) of writing one checkpoint.
  double checkpoint_cost_s = 0;
  /// Modeled cost (seconds) of re-doing one scan batch after a crash.
  double batch_cost_s = 0;
};

/// Picks the checkpoint interval K from the paper's Table 1 cost terms,
/// Young-style: balance the recurring cost of a checkpoint against the
/// expected replay work it saves, K ~ sqrt(2 * C_ckpt / C_batch), clamped
/// to [1, 4096]. `est_groups` is the expected resident-table size when a
/// checkpoint fires (more groups = bigger snapshot = rarer checkpoints)
/// and `partial_bytes` the width of one partial record.
///
/// The decision is a pure function of its arguments — it never reads a
/// clock or charges modeled time — so enabling checkpointing can never
/// perturb the modeled results of a fault-free run.
CheckpointDecision DecideCheckpointInterval(const SystemParams& params,
                                            int64_t est_groups,
                                            int64_t partial_bytes,
                                            int64_t batch_width = 128);

}  // namespace adaptagg

#endif  // ADAPTAGG_MODEL_RECOVERY_MODEL_H_
