#include "model/locality_model.h"

#include <algorithm>

#include "model/cost_model.h"

namespace adaptagg {
namespace {

/// Bucket-index bytes attributed to each group: 8-byte slot indices at
/// the table's ~1.5x bucket-to-entry ratio.
constexpr int64_t kBucketBytesPerGroup = 12;

/// Ceiling on the partition count — beyond this the per-partition
/// staging buffers themselves start to thrash.
constexpr int kMaxPartitions = 256;

int NextPow2(int v) {
  int p = 1;
  while (p < v) p <<= 1;
  return p;
}

}  // namespace

RadixDecision DecideRadixPartitioning(RadixMode mode, int64_t est_groups,
                                      int64_t max_entries,
                                      int64_t slot_bytes, int64_t l2_bytes,
                                      int64_t llc_bytes) {
  RadixDecision d;
  if (l2_bytes <= 0) l2_bytes = kDefaultL2Bytes;
  if (llc_bytes <= 0) llc_bytes = kDefaultLlcBytes;
  d.working_set_bytes =
      est_groups > 0 ? est_groups * (slot_bytes + kBucketBytesPerGroup) : 0;
  switch (mode) {
    case RadixMode::kOff:
      return d;
    case RadixMode::kAuto:
      // LLC, not L2, gates engagement: while the table stays LLC-
      // resident the streaming loop's prefetches already hide probe
      // latency and staging's extra memory round-trip is a pure tax.
      if (est_groups <= 0 || d.working_set_bytes <= llc_bytes ||
          est_groups > max_entries) {
        return d;
      }
      break;
    case RadixMode::kOn:
      break;
  }
  d.engage = true;
  // Target half of L2 per partition region, so a partition's bucket
  // range and its slots fit together with room for the probe stream.
  const int64_t target = std::max<int64_t>(1, l2_bytes / 2);
  const int64_t wanted = (d.working_set_bytes + target - 1) / target;
  d.partitions = NextPow2(static_cast<int>(
      std::clamp<int64_t>(wanted, 2, kMaxPartitions)));
  return d;
}

int64_t EstimateGroupsFromSample(int64_t sampled, int64_t distinct,
                                 int64_t population) {
  if (sampled <= 0 || distinct <= 0) return 0;
  distinct = std::min(distinct, sampled);
  if (population < distinct) population = distinct;
  // All-distinct samples carry no collision signal: ExpectedDistinct
  // approaches `sampled` only as groups -> infinity, so saturate.
  if (distinct >= sampled) return population;
  // ExpectedDistinct is monotonically increasing in the group count, so
  // binary-search the smallest count whose expected yield reaches the
  // observed distinct total.
  int64_t lo = distinct;
  int64_t hi = population;
  while (lo < hi) {
    const int64_t mid = lo + (hi - lo) / 2;
    if (ExpectedDistinct(static_cast<double>(sampled),
                         static_cast<double>(mid)) <
        static_cast<double>(distinct)) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

}  // namespace adaptagg
