#ifndef ADAPTAGG_MODEL_LOCALITY_MODEL_H_
#define ADAPTAGG_MODEL_LOCALITY_MODEL_H_

#include <cstdint>

namespace adaptagg {

/// Policy for cache-sized radix pre-partitioning of local aggregation
/// (the third adaptive decision, after the paper's two): hash-direct
/// keeps upserting straight into the table; radix-partitioned scatters
/// batches into per-partition staging first so each partition aggregates
/// L2-resident.
enum class RadixMode {
  kOff,   ///< always hash-direct
  kAuto,  ///< engage when the estimated working set exceeds the LLC
  kOn,    ///< always radix-partitioned
};

/// Outcome of the radix decision for one aggregation phase.
struct RadixDecision {
  bool engage = false;
  /// Partition count (power of two >= 2) when engaged.
  int partitions = 0;
  /// The modeled group working set that drove the decision.
  int64_t working_set_bytes = 0;
};

/// Default L2 working-set budget when the caller does not override it.
/// Sizes partition regions, not the engage decision.
inline constexpr int64_t kDefaultL2Bytes = int64_t{2} << 20;

/// Default last-level-cache budget gating kAuto engagement. Radix only
/// pays once probes genuinely miss to DRAM: an LLC-resident table's
/// probe latency is already hidden by the streaming loop's prefetch
/// pipeline, and the staging round-trip (write + re-read every record)
/// then costs more than the locality it buys — measured on the dev host
/// the partitioned pass was 30-40% *slower* than hash-direct for
/// L3-resident tables and only broke even past LLC scale.
inline constexpr int64_t kDefaultLlcBytes = int64_t{32} << 20;

/// Decides hash-direct vs radix-partitioned for a local aggregation
/// expected to hold `est_groups` groups of `slot_bytes` each in a table
/// bounded by `max_entries`. Auto engages only when the estimated
/// working set (slots + their bucket-index share) exceeds `llc_bytes`
/// (see kDefaultLlcBytes for why the gate is LLC, not L2) and the
/// groups fit the table (an overflowing table spills anyway, and staged
/// refusals would reorder which keys win slots). The partition count
/// targets half of L2 per partition region so slots and buckets both
/// stay resident. Non-positive `l2_bytes` / `llc_bytes` select the
/// defaults. Pure arithmetic: no clock, no randomness.
RadixDecision DecideRadixPartitioning(RadixMode mode, int64_t est_groups,
                                      int64_t max_entries,
                                      int64_t slot_bytes, int64_t l2_bytes,
                                      int64_t llc_bytes);

/// Inverts the cost model's ExpectedDistinct: the group count whose
/// expected distinct-key yield over `sampled` draws best matches the
/// `distinct` actually observed, saturating at `population` (when the
/// sample came back all-distinct, the data may well be unique). Returns
/// 0 for an empty sample. Deterministic (binary search, no floating
/// accumulation across calls).
int64_t EstimateGroupsFromSample(int64_t sampled, int64_t distinct,
                                 int64_t population);

}  // namespace adaptagg

#endif  // ADAPTAGG_MODEL_LOCALITY_MODEL_H_
