#ifndef ADAPTAGG_MODEL_MERGE_MODEL_H_
#define ADAPTAGG_MODEL_MERGE_MODEL_H_

#include <cstdint>

namespace adaptagg {

/// User-facing pin for the final-merge topology (the fourth adaptive
/// decision, after repartition-vs-two-phase, the A-2P/A-Rep switches,
/// and radix pre-partitioning): kAuto lets DecideMergeTopology choose
/// from the sampling estimate; anything else forces one topology for
/// every algorithm that supports it (see DESIGN.md §12).
enum class MergeMode {
  kAuto,
  kCentral,
  kTree,
  kRadix,
  kShared,
};

/// The resolved topology of one run's global merge phase.
enum class MergeTopology {
  /// The paper's partitioned merge: each node owns the groups its key
  /// hash routes to it. Every algorithm's historical wire pattern.
  kSeed,
  /// Every node's merge table reduces directly onto node 0, which
  /// emits all groups (C-2P's pattern generalized to any algorithm).
  kCentral,
  /// Binomial log2(N) reduction tree: node id sends its table to
  /// id - lowbit(id) after absorbing its subtree. O(G log N) total
  /// fold work but only O(N) messages instead of O(N^2).
  kTree,
  /// The partitioned merge with cache-sized radix staging forced on
  /// the merge-side table (PR 7 machinery): identical wire pattern,
  /// identical rows and modeled time, better locality when the
  /// per-owner group share busts the LLC.
  kRadix,
  /// One concurrent shared hash table all nodes fold into directly —
  /// striped-lock generally, lock-free CAS for all-int64-additive
  /// states. Inproc transports only; demotes to kSeed elsewhere.
  kShared,
};

const char* MergeModeToString(MergeMode mode);
const char* MergeTopologyToString(MergeTopology topology);

/// Count-based inputs of the topology decision. Everything here derives
/// from record counts and configuration — never from wall clocks or
/// randomness — so the decision passes determinism rules D1-D3 and is
/// reproducible across hosts.
struct MergeDecisionInputs {
  /// Sampled global distinct-group estimate (<= 0: unknown).
  int64_t est_groups = 0;
  /// Cluster size N.
  int num_nodes = 1;
  /// Sample skew in q8.8 fixed point: (max over nodes of per-node
  /// distinct sample keys) * N / total distinct samples, scaled by 256.
  /// 256 = perfectly uniform; larger = hotter nodes. Integer arithmetic
  /// keeps the decision bit-reproducible.
  int32_t skew_q8 = 256;
  /// The mesh is shared-memory (inproc), so a shared table is reachable.
  bool inproc = false;
  /// The paper's first decision chose Repartitioning (raw-tuple wire).
  bool use_repartitioning = false;
  /// Hash table bound M per node.
  int64_t max_hash_entries = 0;
  /// Bytes per merge-table slot (key + state), for the radix LLC gate.
  int64_t slot_bytes = 24;
  /// LLC budget override for the radix gate (<= 0: model default).
  int64_t radix_llc_bytes = -1;
};

/// Outcome of the topology decision, carrying the inputs that drove it
/// (recorded into the `merge.topology` trace instant).
struct MergeDecision {
  MergeTopology topology = MergeTopology::kSeed;
  int64_t est_groups = 0;
  int32_t skew_q8 = 256;
};

// --- switch thresholds (exposed for the golden test and the docs) ---

/// Tree only pays with enough nodes for the O(N^2)-message seed scatter
/// to hurt.
inline constexpr int kTreeMinNodes = 8;
/// ... and few enough groups that the per-message overhead (m_p + m_l
/// per mostly-empty page) dominates the duplicated fold work: total
/// groups at most this many per node.
inline constexpr int64_t kTreeGroupsPerNodeCeiling = 64;
/// Shared table needs enough groups that slot contention is diluted.
inline constexpr int64_t kSharedMinGroups = 1024;
/// ... and low skew (hot keys serialize on their slot): 2.0 in q8.8.
inline constexpr int32_t kSharedSkewMaxQ8 = 512;
/// Safety margin of the no-spill gate: non-seed topologies fold the
/// whole estimate through scratch tables, so auto only leaves the seed
/// path when the seed per-owner share comfortably fits M.
inline constexpr int64_t kNoSpillMargin = 2;

/// Chooses the final-merge topology. Pure integer arithmetic over the
/// count-based inputs: no clock, no randomness (lint D1-D3), so every
/// node given the same inputs resolves the same topology — the Sampling
/// coordinator computes it once and broadcasts the outcome anyway.
///
/// Policy sketch (cost model in DESIGN.md §12):
///  * radix when the per-owner merge working set busts the LLC (same
///    gate as the local-aggregation radix decision — the wire pattern
///    is unchanged, only locality improves);
///  * otherwise seed for Repartitioning runs (raw-tuple traffic is
///    already partitioned; a reduction adds pure overhead);
///  * tree when nodes are many and groups are few (message-bound);
///  * shared when inproc, low-skew, and groups are plentiful enough to
///    dilute contention (skips serialize + wire + deserialize);
///  * seed everywhere else, and always when the estimate is missing or
///    the seed merge would spill (parity of the spill path).
MergeDecision DecideMergeTopology(const MergeDecisionInputs& in);

}  // namespace adaptagg

#endif  // ADAPTAGG_MODEL_MERGE_MODEL_H_
