#ifndef ADAPTAGG_MODEL_COST_MODEL_H_
#define ADAPTAGG_MODEL_COST_MODEL_H_

#include <string>

#include "common/algorithm_kind.h"
#include "sim/params.h"

namespace adaptagg {

/// Per-phase cost components of one algorithm run, in seconds. The model
/// follows the paper's no-overlap assumption: total() is the plain sum,
/// and under uniform data all nodes are identical so one node's time (plus
/// any serial coordinator work and any serialized wire time) is the
/// completion time.
struct CostBreakdown {
  double scan_io = 0;       ///< reading the base relation
  double select_cpu = 0;    ///< getting tuples off data pages
  double agg_cpu = 0;       ///< local aggregation (read+hash+accumulate)
  double route_cpu = 0;     ///< hash + destination computation for exchange
  double overflow_io = 0;   ///< intermediate I/O from hash-table overflow
  double emit_cpu = 0;      ///< generating partial/result tuples
  double net_protocol = 0;  ///< m_p send+receive protocol CPU
  double net_wire = 0;      ///< m_l wire time (serialized if limited bw)
  double merge_cpu = 0;     ///< global phase merge work
  double store_io = 0;      ///< writing the final result
  double sample_cost = 0;   ///< Sampling's estimation phase
  double coord_time = 0;    ///< serial coordinator phase (C-2P)

  double total() const {
    return scan_io + select_cpu + agg_cpu + route_cpu + overflow_io +
           emit_cpu + net_protocol + net_wire + merge_cpu + store_io +
           sample_cost + coord_time;
  }

  std::string ToString() const;
};

/// Expected number of distinct groups observed in `draws` uniform draws
/// over `groups` equally likely groups: G(1 - (1 - 1/G)^draws).
double ExpectedDistinct(double draws, double groups);

/// Analytical cost models of all the paper's algorithms (§2 equations for
/// the traditional algorithms, §3 for the new ones). Configure with the
/// Table 1 parameters; query by grouping selectivity.
class CostModel {
 public:
  struct Config {
    SystemParams params;
    /// false models the operator-pipeline setting of Figure 2: no base
    /// relation scan and no result store (intermediate overflow I/O still
    /// counts — that is precisely what the figure exposes).
    bool include_scan_io = true;
    bool include_store_io = true;
    /// Sampling algorithm knobs (-1 = paper defaults).
    int64_t crossover_threshold = -1;
    int64_t sample_size = -1;
    /// Adaptive Repartitioning knobs.
    int64_t init_seg = 10'000;
    int64_t few_groups_threshold = -1;
  };

  explicit CostModel(Config config);

  /// Completion time (seconds) for GROUP BY selectivity `S` = result
  /// cardinality / input cardinality, S in [1/|R|, 0.5].
  double Time(AlgorithmKind kind, double selectivity) const;

  CostBreakdown Breakdown(AlgorithmKind kind, double selectivity) const;

  const Config& config() const { return cfg_; }

  // Resolved defaults.
  int64_t crossover_threshold() const;
  int64_t sample_total() const;
  int64_t few_groups_threshold() const;

 private:
  // Traditional algorithms (traditional.cc).
  CostBreakdown CentralizedTwoPhase(double S) const;
  CostBreakdown TwoPhase(double S) const;
  CostBreakdown Repartitioning(double S) const;
  CostBreakdown SortTwoPhase(double S) const;
  // New algorithms (adaptive.cc).
  CostBreakdown Sampling(double S) const;
  CostBreakdown AdaptiveTwoPhase(double S) const;
  CostBreakdown AdaptiveRepartitioning(double S) const;

  // Shared pieces.
  double Pages(double bytes) const;
  /// Fraction of input not absorbed by the first in-memory pass when
  /// `groups` distinct groups hit a table of M entries.
  double OverflowFraction(double groups) const;
  /// Local phase of the two-phase family on `tuples` tuples holding
  /// `groups_in_table` groups; fills scan/select/agg/overflow/emit and
  /// send-side protocol; returns bytes of partials produced.
  struct LocalPhase {
    CostBreakdown costs;
    double partial_bytes_per_node = 0;
    double partial_tuples_per_node = 0;
  };
  LocalPhase LocalAggregationPhase(double tuples_per_node,
                                   double groups_per_node,
                                   bool charge_scan_select) const;
  /// Adds the wire time of `pages_per_node` message pages per node:
  /// per-node on a high-bandwidth network, serialized cluster-wide on a
  /// limited-bandwidth one.
  void AddWire(CostBreakdown& b, double pages_per_node) const;

  Config cfg_;
};

}  // namespace adaptagg

#endif  // ADAPTAGG_MODEL_COST_MODEL_H_
