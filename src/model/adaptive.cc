#include <algorithm>
#include <cmath>

#include "model/cost_model.h"
#include "model/sampling_model.h"

namespace adaptagg {

CostBreakdown CostModel::Sampling(double S) const {
  const SystemParams& p = cfg_.params;
  const double n = p.num_nodes;
  const double total_tuples = static_cast<double>(p.num_tuples);
  const double groups = std::max(1.0, S * total_tuples);
  const double groups_pn = std::min(groups, p.tuples_per_node());

  const double sample_tuples = static_cast<double>(sample_total());
  const double per_node = sample_tuples / n;

  // Estimation phase (§3.1): random page reads, local aggregation of the
  // sample, distinct keys to the coordinator, union + count there.
  const double tuples_per_page =
      static_cast<double>(p.page_bytes) / p.tuple_bytes;
  const double pages_sampled = per_node / tuples_per_page;
  const double distinct_local = ExpectedDistinct(per_node, groups_pn);
  const double distinct_total = ExpectedDistinct(sample_tuples, groups);

  CostBreakdown sample;
  sample.scan_io = pages_sampled * p.io_rand_s;
  sample.select_cpu = per_node * (p.t_r() + p.t_w());
  sample.agg_cpu = per_node * (p.t_r() + p.t_h() + p.t_a());
  sample.emit_cpu = distinct_local * p.t_w();
  const double key_bytes = distinct_local * p.projectivity * p.tuple_bytes;
  sample.net_protocol = Pages(key_bytes) * p.m_p();
  AddWire(sample, Pages(key_bytes));
  // Coordinator: receive all nodes' keys and count distinct (serial, but
  // tiny relative to the main phase).
  sample.coord_time =
      Pages(key_bytes * n) * p.m_p() + n * distinct_local * p.t_r();

  // Decision, then the chosen algorithm end to end.
  const bool use_repartitioning =
      distinct_total >= static_cast<double>(crossover_threshold());
  CostBreakdown chosen =
      use_repartitioning ? Repartitioning(S) : TwoPhase(S);
  chosen.sample_cost = sample.total();
  return chosen;
}

CostBreakdown CostModel::AdaptiveTwoPhase(double S) const {
  const SystemParams& p = cfg_.params;
  const double n = p.num_nodes;
  const double tuples_pn = p.tuples_per_node();
  const double total_tuples = static_cast<double>(p.num_tuples);
  const double groups = std::max(1.0, S * total_tuples);
  const double groups_pn = std::min(groups, tuples_pn);
  const double m = static_cast<double>(p.max_hash_entries);

  // Tuples a node processes before its table holds M groups: the local
  // selectivity is groups_pn / tuples_pn, so the table fills after
  // M / (groups_pn / tuples_pn) tuples (§3.2: |P_i| = min(M/S_l, |R_i|)).
  const double local_rate = groups_pn / tuples_pn;
  const double fill_tuples =
      local_rate > 0 ? m / local_rate : tuples_pn;
  const double p_i = std::min(fill_tuples, tuples_pn);
  const double table_groups = std::min(m, groups_pn);
  const double rest = tuples_pn - p_i;

  CostBreakdown b;
  // Scan + select cover the whole partition either way.
  if (cfg_.include_scan_io) {
    b.scan_io = Pages(p.bytes_per_node()) * p.io_seq_s;
  }
  b.select_cpu = tuples_pn * (p.t_r() + p.t_w());

  // Segment 1: Two-Phase-style local aggregation of the first p_i tuples.
  // Never overflows — overflow is exactly the switch point.
  b.agg_cpu = p_i * (p.t_r() + p.t_h() + p.t_a());
  b.emit_cpu = table_groups * p.t_w();
  const double partial_bytes = table_groups * p.projectivity * p.tuple_bytes;
  b.net_protocol += Pages(partial_bytes) * p.m_p();
  AddWire(b, Pages(partial_bytes));

  // Segment 2: repartition the remaining tuples raw.
  const double raw_bytes = rest * p.projectivity * p.tuple_bytes;
  b.route_cpu = rest * (p.t_h() + p.t_d());
  b.net_protocol += Pages(raw_bytes) * p.m_p();
  AddWire(b, Pages(raw_bytes));

  // Global phase: each node receives its share of all partials and raws.
  const double recv_tuples = table_groups + rest;  // (N*(tg+rest))/N
  const double recv_bytes = partial_bytes + raw_bytes;
  const double final_groups_pn = groups / n;
  b.net_protocol += Pages(recv_bytes) * p.m_p();
  b.merge_cpu = recv_tuples * (p.t_r() + p.t_a());
  b.overflow_io = OverflowFraction(final_groups_pn) * Pages(recv_bytes) *
                  2 * p.io_seq_s;
  b.emit_cpu += final_groups_pn * p.t_w();
  if (cfg_.include_store_io) {
    b.store_io = Pages(final_groups_pn * p.projectivity * p.tuple_bytes) *
                 p.io_seq_s;
  }
  return b;
}

CostBreakdown CostModel::AdaptiveRepartitioning(double S) const {
  const SystemParams& p = cfg_.params;
  const double tuples_pn = p.tuples_per_node();
  const double total_tuples = static_cast<double>(p.num_tuples);
  const double groups = std::max(1.0, S * total_tuples);
  const double groups_pn = std::min(groups, tuples_pn);

  // Decision after init_seg tuples: distinct groups seen so far.
  const double init_seg =
      std::min(static_cast<double>(cfg_.init_seg), tuples_pn);
  const double seen = ExpectedDistinct(init_seg, groups_pn);
  const bool stay_repartitioning =
      seen >= static_cast<double>(few_groups_threshold());

  if (stay_repartitioning) {
    return Repartitioning(S);
  }

  // Switched: the first init_seg tuples per node went through the
  // repartitioning path; the rest behave as Adaptive Two Phase — local
  // aggregation until the table holds M groups, then repartitioning
  // again (§3.3 composes the two adaptive behaviors; a cost model that
  // let the table absorb unbounded groups would wrongly make a mistaken
  // switch look cheap at high selectivity).
  CostBreakdown b;
  if (cfg_.include_scan_io) {
    b.scan_io = Pages(p.bytes_per_node()) * p.io_seq_s;
  }
  b.select_cpu = tuples_pn * (p.t_r() + p.t_w());

  const double init_bytes = init_seg * p.projectivity * p.tuple_bytes;
  b.route_cpu = init_seg * (p.t_h() + p.t_d());
  b.net_protocol += Pages(init_bytes) * p.m_p();
  AddWire(b, Pages(init_bytes));

  // Segment 2 (A-2P on the remaining tuples): locally aggregate until M
  // groups accumulate, then route the remainder raw.
  const double rest = tuples_pn - init_seg;
  const double m = static_cast<double>(p.max_hash_entries);
  const double local_rate = groups_pn / tuples_pn;
  const double fill_tuples = local_rate > 0 ? m / local_rate : rest;
  const double p_i = std::min(fill_tuples, rest);
  const double table_groups = std::min(m, groups_pn);
  const double rest_raw = rest - p_i;

  b.agg_cpu = p_i * (p.t_r() + p.t_h() + p.t_a());
  b.emit_cpu = table_groups * p.t_w();
  const double partial_bytes = table_groups * p.projectivity * p.tuple_bytes;
  b.net_protocol += Pages(partial_bytes) * p.m_p();
  AddWire(b, Pages(partial_bytes));

  const double raw_bytes = rest_raw * p.projectivity * p.tuple_bytes;
  b.route_cpu += rest_raw * (p.t_h() + p.t_d());
  b.net_protocol += Pages(raw_bytes) * p.m_p();
  AddWire(b, Pages(raw_bytes));

  // Global phase: raw init-segment + raw overflow + everyone's partials.
  const double recv_tuples = init_seg + rest_raw + table_groups;
  const double recv_bytes = init_bytes + raw_bytes + partial_bytes;
  const double final_groups_pn = groups / p.num_nodes;
  b.net_protocol += Pages(recv_bytes) * p.m_p();
  b.merge_cpu = recv_tuples * (p.t_r() + p.t_a());
  b.overflow_io = OverflowFraction(final_groups_pn) * Pages(recv_bytes) *
                  2 * p.io_seq_s;
  b.emit_cpu += final_groups_pn * p.t_w();
  if (cfg_.include_store_io) {
    b.store_io = Pages(final_groups_pn * p.projectivity * p.tuple_bytes) *
                 p.io_seq_s;
  }
  return b;
}

}  // namespace adaptagg
