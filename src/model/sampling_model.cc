#include "model/sampling_model.h"

#include <cmath>

namespace adaptagg {

int64_t RequiredSampleSize(int64_t crossover_threshold) {
  if (crossover_threshold <= 1) return 16;
  double n = static_cast<double>(crossover_threshold);
  // Coupon collector: n(ln n + c). c = 2.25 reproduces the paper's
  // example of ~2563 samples for a threshold of 320.
  double samples = n * (std::log(n) + 2.25);
  return static_cast<int64_t>(std::ceil(samples));
}

int64_t DefaultCrossoverThreshold(int num_processors) {
  return 100LL * num_processors;
}

}  // namespace adaptagg
