#include <algorithm>
#include <cmath>

#include "model/cost_model.h"

namespace adaptagg {

// Shared quantities (paper notation):
//   |R|   total tuples,  |R_i| = |R|/N   tuples per node
//   G     = S * |R|      total groups
//   S_l   = min(S*N, 1)  phase-1 (local) selectivity, so that
//           |R_i| * S_l  = min(G, |R_i|) is the groups seen per node
//   S_g   = max(1/N, S)  phase-2 (global) selectivity, S_g = S / S_l
// Table 1 prints S_l/S_g with max/min swapped; dimensional analysis of
// the cost terms fixes the intent (see DESIGN.md).

CostBreakdown CostModel::CentralizedTwoPhase(double S) const {
  const SystemParams& p = cfg_.params;
  const double tuples_pn = p.tuples_per_node();
  const double groups = std::max(1.0, S * static_cast<double>(p.num_tuples));
  const double groups_pn = std::min(groups, tuples_pn);

  // Phase 1 on every node (identical under uniform data).
  LocalPhase phase1 = LocalAggregationPhase(tuples_pn, groups_pn,
                                            /*charge_scan_select=*/true);
  CostBreakdown b = phase1.costs;

  // Phase 2: sequential merge at the coordinator.
  const double g_tuples = phase1.partial_tuples_per_node * p.num_nodes;
  const double g_bytes = phase1.partial_bytes_per_node * p.num_nodes;
  CostBreakdown c;
  c.net_protocol = Pages(g_bytes) * p.m_p();
  c.merge_cpu = g_tuples * (p.t_r() + p.t_a());
  c.overflow_io = OverflowFraction(groups) * Pages(g_bytes) * 2 * p.io_seq_s;
  c.emit_cpu = groups * p.t_w();
  if (cfg_.include_store_io) {
    c.store_io =
        Pages(groups * p.projectivity * p.tuple_bytes) * p.io_seq_s;
  }
  b.coord_time = c.total();
  return b;
}

CostBreakdown CostModel::TwoPhase(double S) const {
  const SystemParams& p = cfg_.params;
  const double n = p.num_nodes;
  const double tuples_pn = p.tuples_per_node();
  const double groups = std::max(1.0, S * static_cast<double>(p.num_tuples));
  const double groups_pn = std::min(groups, tuples_pn);

  LocalPhase phase1 = LocalAggregationPhase(tuples_pn, groups_pn,
                                            /*charge_scan_select=*/true);
  CostBreakdown b = phase1.costs;

  // Phase 2, parallel: each node receives 1/N of all partials and owns
  // G/N final groups.
  const double recv_tuples = phase1.partial_tuples_per_node;  // N*g_pn/N
  const double recv_bytes = phase1.partial_bytes_per_node;
  const double final_groups_pn = groups / n;
  b.net_protocol += Pages(recv_bytes) * p.m_p();
  b.merge_cpu += recv_tuples * (p.t_r() + p.t_a());
  b.overflow_io += OverflowFraction(final_groups_pn) * Pages(recv_bytes) *
                   2 * p.io_seq_s;
  b.emit_cpu += final_groups_pn * p.t_w();
  if (cfg_.include_store_io) {
    b.store_io += Pages(final_groups_pn * p.projectivity * p.tuple_bytes) *
                  p.io_seq_s;
  }
  return b;
}

CostBreakdown CostModel::SortTwoPhase(double S) const {
  // The [BBDW83]-style baseline: Two Phase, but with sort-based
  // aggregation whose intermediate I/O scales with the INPUT that
  // exceeds the memory bound, not with the group count — the structural
  // reason the paper assumes hashing.
  CostBreakdown b = TwoPhase(S);
  const SystemParams& p = cfg_.params;
  const double tuples_pn = p.tuples_per_node();
  const double m = static_cast<double>(p.max_hash_entries);
  const double groups =
      std::max(1.0, S * static_cast<double>(p.num_tuples));
  const double groups_pn = std::min(groups, tuples_pn);

  b.overflow_io = 0;  // replace hash-overflow I/O with sort-run I/O
  if (tuples_pn > m) {
    // Local phase: every projected record is written to a run and read
    // back for the merge.
    b.overflow_io += Pages(p.projectivity * p.bytes_per_node()) * 2 *
                     p.io_seq_s;
  }
  if (groups_pn > m) {
    // Global phase: the received partials exceed memory too.
    b.overflow_io += Pages(groups_pn * p.projectivity * p.tuple_bytes) *
                     2 * p.io_seq_s;
  }
  return b;
}

CostBreakdown CostModel::Repartitioning(double S) const {
  const SystemParams& p = cfg_.params;
  const double n = p.num_nodes;
  const double tuples_pn = p.tuples_per_node();
  const double bytes_pn = p.bytes_per_node();
  const double total_tuples = static_cast<double>(p.num_tuples);
  const double groups = std::max(1.0, S * total_tuples);
  // When there are fewer groups than nodes only `active` nodes receive
  // work after the exchange (§2.3: R_i = R * max(S, 1/N) in the best
  // case).
  const double active = std::min(n, groups);

  CostBreakdown b;
  if (cfg_.include_scan_io) b.scan_io = Pages(bytes_pn) * p.io_seq_s;
  b.select_cpu = tuples_pn * (p.t_r() + p.t_w());
  b.route_cpu = tuples_pn * (p.t_h() + p.t_d());

  const double send_bytes = p.projectivity * bytes_pn;
  const double recv_tuples = total_tuples / active;
  const double recv_bytes = p.projectivity * p.tuple_bytes * recv_tuples;
  b.net_protocol = Pages(send_bytes) * p.m_p() +  // send side
                   Pages(recv_bytes) * p.m_p();   // receive side
  AddWire(b, Pages(send_bytes));

  const double groups_per_active = groups / active;
  b.merge_cpu = recv_tuples * (p.t_r() + p.t_a());
  b.overflow_io = OverflowFraction(groups_per_active) * Pages(recv_bytes) *
                  2 * p.io_seq_s;
  b.emit_cpu = groups_per_active * p.t_w();
  if (cfg_.include_store_io) {
    b.store_io = Pages(groups_per_active * p.projectivity * p.tuple_bytes) *
                 p.io_seq_s;
  }
  return b;
}

}  // namespace adaptagg
