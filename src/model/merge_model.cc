#include "model/merge_model.h"

#include <algorithm>

#include "model/locality_model.h"

namespace adaptagg {

const char* MergeModeToString(MergeMode mode) {
  switch (mode) {
    case MergeMode::kAuto:
      return "auto";
    case MergeMode::kCentral:
      return "central";
    case MergeMode::kTree:
      return "tree";
    case MergeMode::kRadix:
      return "radix";
    case MergeMode::kShared:
      return "shared";
  }
  return "?";
}

const char* MergeTopologyToString(MergeTopology topology) {
  switch (topology) {
    case MergeTopology::kSeed:
      return "seed";
    case MergeTopology::kCentral:
      return "central";
    case MergeTopology::kTree:
      return "tree";
    case MergeTopology::kRadix:
      return "radix";
    case MergeTopology::kShared:
      return "shared";
  }
  return "?";
}

MergeDecision DecideMergeTopology(const MergeDecisionInputs& in) {
  MergeDecision d;
  d.est_groups = in.est_groups;
  d.skew_q8 = in.skew_q8;
  const int64_t n = std::max(in.num_nodes, 1);
  const int64_t m = std::max<int64_t>(in.max_hash_entries, 1);
  if (in.est_groups <= 0 || n <= 1) return d;

  // Radix first: it keeps the seed wire pattern (always sound, spill
  // included), and cache-busting fold work dominates every other
  // consideration once it applies. Same engage gate as the scan-side
  // decision, over the per-owner share of the estimate.
  const RadixDecision rd = DecideRadixPartitioning(
      RadixMode::kAuto, in.est_groups / n, m, std::max<int64_t>(
          in.slot_bytes, 1), /*l2_bytes=*/-1, in.radix_llc_bytes);
  if (rd.engage) {
    d.topology = MergeTopology::kRadix;
    return d;
  }

  // Repartitioning ships raw tuples straight to their owners; its merge
  // is already partitioned and holds no partial tables to reduce, so a
  // non-seed reduction is pure added work.
  if (in.use_repartitioning) return d;

  // Non-seed reductions fold the whole estimate through scratch tables
  // while the modeled charges replicate the seed stream; stay on the
  // seed path whenever its per-owner merge share could spill.
  if (in.est_groups * kNoSpillMargin > n * m) return d;

  // Tree: at kTreeMinNodes+ nodes, the seed scatter sends O(N^2)
  // mostly-empty pages (every node pays m_p + m_l per peer even for a
  // handful of groups); the binomial tree sends O(N) and each node
  // folds at most log2(N) small tables.
  if (n >= kTreeMinNodes &&
      in.est_groups <= kTreeGroupsPerNodeCeiling * n) {
    d.topology = MergeTopology::kTree;
    return d;
  }

  // Shared: inproc only (the table must be addressable by every node),
  // enough groups to dilute slot contention, and low skew so no single
  // slot serializes the fold.
  if (in.inproc && in.skew_q8 <= kSharedSkewMaxQ8 &&
      in.est_groups >= kSharedMinGroups) {
    d.topology = MergeTopology::kShared;
    return d;
  }

  return d;
}

}  // namespace adaptagg
