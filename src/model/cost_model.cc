#include "model/cost_model.h"

#include <cmath>
#include <sstream>

#include "common/logging.h"
#include "model/sampling_model.h"

namespace adaptagg {

std::string CostBreakdown::ToString() const {
  std::ostringstream os;
  os.precision(4);
  os << "total=" << total() << "s (scan=" << scan_io
     << " select=" << select_cpu << " agg=" << agg_cpu
     << " route=" << route_cpu << " ovf=" << overflow_io
     << " emit=" << emit_cpu << " proto=" << net_protocol
     << " wire=" << net_wire << " merge=" << merge_cpu
     << " store=" << store_io << " sample=" << sample_cost
     << " coord=" << coord_time << ")";
  return os.str();
}

double ExpectedDistinct(double draws, double groups) {
  if (groups <= 1.0) return groups;
  if (draws <= 0.0) return 0.0;
  // G(1 - (1 - 1/G)^draws), computed stably for large G.
  return groups * (1.0 - std::exp(draws * std::log1p(-1.0 / groups)));
}

CostModel::CostModel(Config config) : cfg_(std::move(config)) {
  ADAPTAGG_CHECK(cfg_.params.num_nodes > 0);
}

int64_t CostModel::crossover_threshold() const {
  return cfg_.crossover_threshold > 0
             ? cfg_.crossover_threshold
             : DefaultCrossoverThreshold(cfg_.params.num_nodes);
}

int64_t CostModel::sample_total() const {
  return cfg_.sample_size > 0 ? cfg_.sample_size
                              : RequiredSampleSize(crossover_threshold());
}

int64_t CostModel::few_groups_threshold() const {
  return cfg_.few_groups_threshold > 0 ? cfg_.few_groups_threshold
                                       : crossover_threshold();
}

double CostModel::Pages(double bytes) const {
  return bytes / cfg_.params.page_bytes;
}

double CostModel::OverflowFraction(double groups) const {
  if (groups <= 0) return 0.0;
  double m = static_cast<double>(cfg_.params.max_hash_entries);
  return std::max(0.0, 1.0 - m / groups);
}

void CostModel::AddWire(CostBreakdown& b, double pages_per_node) const {
  const SystemParams& p = cfg_.params;
  if (p.network == NetworkKind::kHighBandwidth) {
    b.net_wire += pages_per_node * p.m_l();
  } else {
    // The shared medium serializes all nodes' transfers: the elapsed wire
    // time is the cluster-wide total.
    b.net_wire += pages_per_node * p.num_nodes * p.m_l();
  }
}

CostModel::LocalPhase CostModel::LocalAggregationPhase(
    double tuples_per_node, double groups_per_node,
    bool charge_scan_select) const {
  const SystemParams& p = cfg_.params;
  LocalPhase out;
  CostBreakdown& b = out.costs;
  double bytes = tuples_per_node * p.tuple_bytes;
  if (charge_scan_select) {
    if (cfg_.include_scan_io) b.scan_io += Pages(bytes) * p.io_seq_s;
    b.select_cpu += tuples_per_node * (p.t_r() + p.t_w());
  }
  b.agg_cpu += tuples_per_node * (p.t_r() + p.t_h() + p.t_a());
  b.overflow_io += OverflowFraction(groups_per_node) *
                   Pages(p.projectivity * bytes) * 2 * p.io_seq_s;
  b.emit_cpu += groups_per_node * p.t_w();
  out.partial_tuples_per_node = groups_per_node;
  out.partial_bytes_per_node =
      groups_per_node * p.projectivity * p.tuple_bytes;
  b.net_protocol += Pages(out.partial_bytes_per_node) * p.m_p();
  AddWire(b, Pages(out.partial_bytes_per_node));
  return out;
}

double CostModel::Time(AlgorithmKind kind, double selectivity) const {
  return Breakdown(kind, selectivity).total();
}

CostBreakdown CostModel::Breakdown(AlgorithmKind kind,
                                   double selectivity) const {
  switch (kind) {
    case AlgorithmKind::kCentralizedTwoPhase:
      return CentralizedTwoPhase(selectivity);
    case AlgorithmKind::kTwoPhase:
    case AlgorithmKind::kGraefeTwoPhase:  // modeled as 2P (see §3.2)
      return TwoPhase(selectivity);
    case AlgorithmKind::kRepartitioning:
      return Repartitioning(selectivity);
    case AlgorithmKind::kSampling:
      return Sampling(selectivity);
    case AlgorithmKind::kAdaptiveTwoPhase:
      return AdaptiveTwoPhase(selectivity);
    case AlgorithmKind::kAdaptiveRepartitioning:
      return AdaptiveRepartitioning(selectivity);
    case AlgorithmKind::kSortTwoPhase:
      return SortTwoPhase(selectivity);
  }
  ADAPTAGG_CHECK(false) << "unknown algorithm";
  return CostBreakdown();
}

}  // namespace adaptagg
