#ifndef ADAPTAGG_OBS_HISTOGRAM_H_
#define ADAPTAGG_OBS_HISTOGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

namespace adaptagg {

/// Fixed bucket layout of a latency/size histogram: `edges` are the
/// inclusive upper bounds of the finite buckets, strictly increasing.
/// A value v lands in the first bucket whose edge satisfies v <= edge;
/// values above the last edge land in the implicit overflow bucket, so a
/// histogram always has edges.size() + 1 buckets. Buckets are fixed at
/// registration time — observation never allocates.
struct HistogramSpec {
  std::vector<int64_t> edges;

  /// `count` buckets spanning [0, ...) with upper bounds start,
  /// start*factor, start*factor^2, ... (factor > 1). The classic
  /// latency/size layout: exponentially wider buckets.
  static HistogramSpec Exponential(int64_t start, double factor,
                                   int count);

  /// `count` buckets with upper bounds width, 2*width, ..., count*width.
  static HistogramSpec Linear(int64_t width, int count);

  /// Index of the bucket `value` falls into (edges.size() = overflow).
  int BucketOf(int64_t value) const;

  /// Number of buckets including the overflow bucket.
  int num_buckets() const { return static_cast<int>(edges.size()) + 1; }

  /// Human-readable bound of bucket `i`: "<=edge" or ">last_edge".
  std::string BucketLabel(int i) const;
};

}  // namespace adaptagg

#endif  // ADAPTAGG_OBS_HISTOGRAM_H_
