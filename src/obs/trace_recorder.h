#ifndef ADAPTAGG_OBS_TRACE_RECORDER_H_
#define ADAPTAGG_OBS_TRACE_RECORDER_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "obs/metric_registry.h"
#include "sim/cost_clock.h"

namespace adaptagg {

/// One structured trace event of a node: a phase span (scan, merge,
/// emit, ...) or an instant decision point (an adaptive switch). Times
/// are kept on both timelines the engine runs on — the simulated
/// CostClock (the paper's modeled time) and host wall time relative to
/// the run's start — so a trace can answer "where did modeled time go"
/// and "where did the real CPU go" from the same file.
struct TraceEvent {
  /// Span (has a duration) vs instant (a point decision).
  enum class Kind : uint8_t { kSpan = 0, kInstant = 1 };

  Kind kind = Kind::kSpan;
  std::string name;
  int node_id = 0;
  /// Simulated-clock interval; for instants, begin == end.
  double sim_begin_s = 0;
  double sim_end_s = 0;
  /// Wall-clock interval, seconds since the run's epoch.
  double wall_begin_s = 0;
  double wall_end_s = 0;
  /// Structured payload (e.g. an adaptive switch's observed cardinality
  /// inputs). Integer-valued by design: everything the decision points
  /// observe is a count or a tuple index.
  std::vector<std::pair<std::string, int64_t>> args;

  double sim_duration_s() const { return sim_end_s - sim_begin_s; }
  double wall_duration_s() const { return wall_end_s - wall_begin_s; }
};

/// Seconds on the host's monotonic clock (the trace wall timeline).
/// This is the engine's one sanctioned wall-time source for
/// observability: lint rule D1 allowlists this header and its
/// implementation; algorithm code must charge the CostClock instead.
double WallSeconds();

/// Collects one node's trace events. Single-writer by construction —
/// only the owning node's thread records during a run, and the cluster
/// concatenates recorders strictly after the node threads join — so the
/// class carries no lock and no ADAPTAGG_GUARDED_BY members; the join
/// is the synchronization point. Disabled recorders drop events at the
/// door, so instrumentation sites never check configuration themselves.
class TraceRecorder {
 public:
  /// `wall_epoch_s` is the cluster-wide run start (WallSeconds() at run
  /// setup), shared across nodes so their wall timelines align.
  TraceRecorder(int node_id, bool enabled, double wall_epoch_s)
      : node_id_(node_id), enabled_(enabled), wall_epoch_s_(wall_epoch_s) {}

  bool enabled() const { return enabled_; }
  int node_id() const { return node_id_; }
  double wall_epoch_s() const { return wall_epoch_s_; }

  void RecordSpan(std::string name, double sim_begin_s, double sim_end_s,
                  double wall_begin_s, double wall_end_s,
                  std::vector<std::pair<std::string, int64_t>> args = {});

  /// Records a point event at the node's current simulated time.
  void RecordInstant(std::string name, double sim_at_s,
                     std::vector<std::pair<std::string, int64_t>> args = {});

  const std::vector<TraceEvent>& events() const { return events_; }
  std::vector<TraceEvent> TakeEvents() { return std::move(events_); }

 private:
  int node_id_;
  bool enabled_;
  double wall_epoch_s_;
  std::vector<TraceEvent> events_;
};

/// RAII span: captures (sim, wall) time at construction and, on End() or
/// destruction, records the span into the recorder (when tracing) and
/// bumps the phase's registry counters `phase.<name>.sim_us`,
/// `phase.<name>.wall_us` and `phase.<name>.count` (when metrics are on).
/// Both sinks are nullable, so a fully disabled run pays two clock reads
/// and nothing else.
class PhaseTimer {
 public:
  PhaseTimer(TraceRecorder* recorder, MetricRegistry* registry,
             const CostClock* clock, std::string name);

  PhaseTimer(const PhaseTimer&) = delete;
  PhaseTimer& operator=(const PhaseTimer&) = delete;

  ~PhaseTimer() { End(); }

  /// Attaches a structured argument to the span (kept on the trace
  /// event; ignored when only metrics are enabled).
  void AddArg(const std::string& key, int64_t value);

  /// Closes the span; idempotent (the destructor is then a no-op).
  void End();

 private:
  TraceRecorder* recorder_;
  MetricRegistry* registry_;
  const CostClock* clock_;
  std::string name_;
  double sim_begin_s_;
  double wall_begin_s_;
  std::vector<std::pair<std::string, int64_t>> args_;
  bool ended_ = false;
};

}  // namespace adaptagg

#endif  // ADAPTAGG_OBS_TRACE_RECORDER_H_
