#ifndef ADAPTAGG_OBS_NODE_OBS_H_
#define ADAPTAGG_OBS_NODE_OBS_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "obs/metric_registry.h"
#include "obs/obs_config.h"
#include "obs/trace_recorder.h"
#include "sim/cost_clock.h"

namespace adaptagg {

/// One node's observability shard: a MetricRegistry, a TraceRecorder,
/// and pre-bound handles for every engine metric, so hot paths pay a
/// pointer-null check (or nothing, under ADAPTAGG_OBS_DISABLED) instead
/// of a name lookup. Owned by NodeContext; the cluster merges the
/// per-node snapshots and concatenates the per-node event logs after
/// the node threads join.
class NodeObs {
 public:
  /// `clock` is the node's simulated clock (spans read it at begin/end);
  /// `wall_epoch_s` is the cluster-wide run start so all nodes share one
  /// wall timeline.
  NodeObs(int node_id, const ObsConfig& config, const CostClock* clock,
          double wall_epoch_s);

  NodeObs(const NodeObs&) = delete;
  NodeObs& operator=(const NodeObs&) = delete;

  MetricRegistry& registry() { return registry_; }
  TraceRecorder& trace() { return trace_; }
  const ObsConfig& config() const { return config_; }

  /// Opens a phase span named `name` ("scan", "merge", "emit", ...).
  /// Feeds the phase.<name>.{sim_us,wall_us,count} counters when spans
  /// and metrics are on, and the trace event log when traces are on.
  PhaseTimer StartPhase(std::string name) {
    return PhaseTimer(&trace_, phase_registry_, clock_, std::move(name));
  }

  /// Records an adaptive-switch decision: bumps core.switches and emits
  /// an instant trace event at the node's current simulated time carrying
  /// the observed cardinality inputs that drove the decision.
  void RecordSwitch(const std::string& name,
                    std::vector<std::pair<std::string, int64_t>> args);

  /// Emits an instant trace event for a fault-injection or failure-
  /// detection event (injection points, detection points, aborts), so a
  /// trace of a faulty run shows exactly where the cluster degraded.
  /// Counters are bumped separately via the fault_* handles.
  void RecordFault(const std::string& name,
                   std::vector<std::pair<std::string, int64_t>> args);

  /// Emits an instant trace event for a runtime tuning decision that is
  /// not an algorithm switch (SIMD dispatch resolution, radix
  /// pre-partitioning engagement): instant-only, no counter — these
  /// change wall-clock behavior, never the simulated plan, and must not
  /// perturb core.switches.
  void RecordDecision(const std::string& name,
                      std::vector<std::pair<std::string, int64_t>> args);

  /// Copies the shard's metrics; safe while the node thread is running.
  MetricsSnapshot Snapshot() const { return registry_.Snapshot(); }

  // Pre-bound handles, grouped by subsystem. All are value-type and
  // null-safe; sites update them unconditionally.

  // Scan.
  Counter scan_tuples;

  // Network.
  Counter net_msgs_sent;
  Counter net_bytes_sent;
  Counter net_pages_sent;
  Counter net_raw_records_sent;
  Counter net_partial_records_sent;
  Counter net_raw_records_received;
  Counter net_partial_records_received;
  Gauge net_channel_depth_high_water;
  /// Outgoing page payloads served from the node's buffer pool.
  Counter net_page_pool_hits;
  /// Outgoing page payloads that needed a fresh allocation (pool dry).
  Counter net_page_pool_allocs;
  Histogram net_msg_bytes;
  /// Pages sent to each exchange destination, observed once per
  /// destination at exchange flush: the spread of this histogram is the
  /// routing skew of the run.
  Histogram net_exchange_pages_per_dest;

  // Core / algorithm control flow.
  Counter core_switches;
  Counter core_result_rows;
  Counter core_rows_filtered_by_having;
  /// Resolved final-merge topology (MergeTopology enum value). Every
  /// node resolves identically, so the max-merge across shards is the
  /// run's topology; 0 (= seed) doubles as "never resolved".
  Gauge core_merge_topology;

  // Aggregation: spilling.
  Counter agg_spill_records;
  Counter agg_spill_pages_written;
  Counter agg_spill_pages_read;

  // Aggregation: hash table.
  Counter agg_ht_probes;
  Counter agg_ht_hits;
  Counter agg_ht_inserts;
  Counter agg_ht_resizes;

  // Aggregation: batch kernels.
  Counter agg_batch_tuples;
  Counter agg_batch_fused_tuples;
  Counter agg_batch_identity_copy_tuples;

  // Fault injection and failure detection.
  Counter fault_msgs_dropped;
  Counter fault_msgs_duplicated;
  Counter fault_msgs_delayed;
  Counter fault_msgs_corrupted;
  Counter fault_crashes_injected;
  Counter fault_straggle_sleeps;
  Counter fault_heartbeats_sent;
  Counter fault_dup_discarded;
  Counter fault_seq_gaps;
  Counter fault_frames_rejected;
  Counter fault_deadline_aborts;
  /// Wall time from the run's first node failure to each later node
  /// noticing and unwinding (abort fan-out + detection latency).
  Histogram fault_abort_latency_us;

  // Fault recovery: checkpointed partials, replay dedupe, elasticity.
  /// Checkpoints this node durably wrote.
  Counter recovery_checkpoints_written;
  /// Payload bytes of the checkpoints this node durably wrote.
  Counter recovery_checkpoint_bytes;
  /// Checkpoint writes that failed on disk (previous checkpoint kept).
  Counter recovery_checkpoint_failures;
  /// Checkpoint opportunities skipped because the aggregation state was
  /// not snapshottable (spilled to disk or radix-staged).
  Counter recovery_checkpoints_skipped;
  /// Checkpoints that failed verification on load — torn or corrupted —
  /// forcing this node to replay from scratch instead.
  Counter recovery_checkpoint_data_loss;
  /// Replayed data pages skipped by the fold watermark, keeping merges
  /// exactly-once across re-execution.
  Counter recovery_pages_deduped;
  /// Inbound frames dropped for carrying a stale membership epoch.
  Counter recovery_stale_epoch_dropped;
  /// Re-execution attempts the run needed beyond the first (bumped on
  /// the coordinator's shard by the recovery loop).
  Counter recovery_attempts;
  /// Nodes that restored mid-query state from a checkpoint this run.
  Counter recovery_nodes_restored;
  /// Wall time of each re-execution attempt (coordinator's shard).
  Histogram recovery_attempt_wall_us;

 private:
  /// The config a shard actually honors: the caller's, or everything-off
  /// when the subsystem is compiled out — so a disabled build never
  /// creates cells or records events, and RunResult stays truly empty.
  static ObsConfig Effective(const ObsConfig& config) {
#if defined(ADAPTAGG_OBS_DISABLED)
    (void)config;
    return ObsConfig::Disabled();
#else
    return config;
#endif
  }

  ObsConfig config_;
  const CostClock* clock_;
  MetricRegistry registry_;
  TraceRecorder trace_;
  /// Registry pointer handed to PhaseTimers: null unless both spans and
  /// metrics are enabled (spans own the phase.* counters).
  MetricRegistry* phase_registry_;
};

}  // namespace adaptagg

#endif  // ADAPTAGG_OBS_NODE_OBS_H_
