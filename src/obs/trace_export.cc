#include "obs/trace_export.h"

#include <cmath>
#include <cstdio>
#include <sstream>

#include "obs/metrics_export.h"

namespace adaptagg {
namespace {

/// Microsecond timestamps with sub-microsecond resolution kept: the
/// simulated cost vocabulary works in fractions of a microsecond
/// (t_d = 0.25 us at 40 MIPS), and the trace viewer accepts doubles.
std::string Us(double seconds) {
  char buf[40];
  double us = seconds * 1e6;
  if (!std::isfinite(us)) us = 0;
  std::snprintf(buf, sizeof(buf), "%.4f", us);
  return buf;
}

void AppendArgs(
    std::ostringstream& os,
    const std::vector<std::pair<std::string, int64_t>>& args) {
  os << "{";
  for (size_t i = 0; i < args.size(); ++i) {
    if (i > 0) os << ", ";
    os << "\"" << JsonEscape(args[i].first) << "\": " << args[i].second;
  }
  os << "}";
}

}  // namespace

std::string ChromeTraceJson(const std::vector<TraceEvent>& events,
                            int num_nodes) {
  std::ostringstream os;
  os << "{\n\"displayTimeUnit\": \"ms\",\n";
  os << "\"otherData\": {\"tool\": \"adaptagg\", "
        "\"timeline\": \"simulated (CostClock) microseconds\"},\n";
  os << "\"traceEvents\": [\n";
  os << "{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 0, "
        "\"args\": {\"name\": \"adaptagg cluster\"}}";
  for (int node = 0; node < num_nodes; ++node) {
    os << ",\n{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 0, "
          "\"tid\": "
       << node << ", \"args\": {\"name\": \"node " << node << "\"}}";
    // Keep the viewer's track order == node order.
    os << ",\n{\"name\": \"thread_sort_index\", \"ph\": \"M\", "
          "\"pid\": 0, \"tid\": "
       << node << ", \"args\": {\"sort_index\": " << node << "}}";
  }
  for (const TraceEvent& e : events) {
    os << ",\n";
    if (e.kind == TraceEvent::Kind::kSpan) {
      os << "{\"name\": \"" << JsonEscape(e.name)
         << "\", \"ph\": \"X\", \"pid\": 0, \"tid\": " << e.node_id
         << ", \"ts\": " << Us(e.sim_begin_s)
         << ", \"dur\": " << Us(e.sim_duration_s()) << ", \"args\": ";
      std::vector<std::pair<std::string, int64_t>> args = e.args;
      args.emplace_back(
          "wall_us",
          static_cast<int64_t>(e.wall_duration_s() * 1e6 + 0.5));
      AppendArgs(os, args);
      os << "}";
    } else {
      os << "{\"name\": \"" << JsonEscape(e.name)
         << "\", \"ph\": \"i\", \"s\": \"t\", \"pid\": 0, \"tid\": "
         << e.node_id << ", \"ts\": " << Us(e.sim_begin_s)
         << ", \"args\": ";
      AppendArgs(os, e.args);
      os << "}";
    }
  }
  os << "\n]\n}\n";
  return os.str();
}

Status WriteChromeTrace(const std::vector<TraceEvent>& events,
                        int num_nodes, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::IOError("cannot open " + path + " for writing");
  }
  const std::string body = ChromeTraceJson(events, num_nodes);
  const size_t written = std::fwrite(body.data(), 1, body.size(), f);
  const bool closed = std::fclose(f) == 0;
  if (written != body.size() || !closed) {
    return Status::IOError("short write to " + path);
  }
  return Status::OK();
}

}  // namespace adaptagg
