#ifndef ADAPTAGG_OBS_METRIC_REGISTRY_H_
#define ADAPTAGG_OBS_METRIC_REGISTRY_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "obs/histogram.h"

namespace adaptagg {

/// What a metric measures, and therefore how shards merge:
/// counters sum, gauges keep the maximum, histograms sum per bucket.
enum class MetricKind : uint8_t {
  kCounter = 0,
  kGauge = 1,
  kHistogram = 2,
};

/// "counter", "gauge", or "histogram".
std::string MetricKindToString(MetricKind kind);

namespace internal_obs {

/// One registered metric. Lives in the registry's deque (stable address)
/// so handles can point straight at the atomics; updates are lock-free
/// relaxed atomic ops, safe against a concurrent Snapshot().
struct MetricCell {
  std::string name;
  MetricKind kind = MetricKind::kCounter;
  std::atomic<int64_t> value{0};
  HistogramSpec hist_spec;
  /// One atomic per bucket, sized at registration (kHistogram only).
  std::deque<std::atomic<int64_t>> buckets;
};

}  // namespace internal_obs

/// Monotonic counter handle. Value-type, trivially copyable; a
/// default-constructed (or disabled-registry) handle ignores updates, so
/// call sites never branch on configuration themselves.
class Counter {
 public:
  Counter() = default;

  void Add(int64_t n) {
#if !defined(ADAPTAGG_OBS_DISABLED)
    if (cell_ != nullptr) cell_->fetch_add(n, std::memory_order_relaxed);
#else
    (void)n;
#endif
  }
  void Increment() { Add(1); }

 private:
  friend class MetricRegistry;
  explicit Counter(std::atomic<int64_t>* cell) : cell_(cell) {}
  std::atomic<int64_t>* cell_ = nullptr;
};

/// High-water-mark gauge handle: Set records the latest value, UpdateMax
/// only ever raises it. Shards merge by maximum.
class Gauge {
 public:
  Gauge() = default;

  void Set(int64_t v) {
#if !defined(ADAPTAGG_OBS_DISABLED)
    if (cell_ != nullptr) cell_->store(v, std::memory_order_relaxed);
#else
    (void)v;
#endif
  }

  void UpdateMax(int64_t v) {
#if !defined(ADAPTAGG_OBS_DISABLED)
    if (cell_ == nullptr) return;
    int64_t cur = cell_->load(std::memory_order_relaxed);
    while (cur < v && !cell_->compare_exchange_weak(
                          cur, v, std::memory_order_relaxed)) {
    }
#else
    (void)v;
#endif
  }

 private:
  friend class MetricRegistry;
  explicit Gauge(std::atomic<int64_t>* cell) : cell_(cell) {}
  std::atomic<int64_t>* cell_ = nullptr;
};

/// Fixed-bucket histogram handle; Observe is one binary search over the
/// registered edges plus one relaxed increment.
class Histogram {
 public:
  Histogram() = default;

  void Observe(int64_t v) {
#if !defined(ADAPTAGG_OBS_DISABLED)
    if (cell_ == nullptr) return;
    const int b = cell_->hist_spec.BucketOf(v);
    cell_->buckets[static_cast<size_t>(b)].fetch_add(
        1, std::memory_order_relaxed);
    cell_->value.fetch_add(1, std::memory_order_relaxed);
#else
    (void)v;
#endif
  }

 private:
  friend class MetricRegistry;
  explicit Histogram(internal_obs::MetricCell* cell) : cell_(cell) {}
  internal_obs::MetricCell* cell_ = nullptr;
};

/// Point-in-time copy of a registry (or a merge of several): entries
/// sorted by name so snapshots are deterministic regardless of
/// registration or thread interleaving order.
struct MetricsSnapshot {
  /// One metric's value. For histograms `value` is the observation count
  /// and `bucket_counts`/`edges` carry the distribution.
  struct Entry {
    std::string name;
    MetricKind kind = MetricKind::kCounter;
    int64_t value = 0;
    std::vector<int64_t> edges;
    std::vector<int64_t> bucket_counts;
  };

  std::vector<Entry> entries;

  /// Folds `other` in by name: counters add, gauges take the max,
  /// histograms add per bucket (edges must agree; mismatched histograms
  /// keep this snapshot's buckets and only merge the total). Entries only
  /// present in `other` are copied over. Commutative and associative, so
  /// any merge tree over node shards yields the same snapshot. Merge
  /// mutates only this value-type snapshot — never a live registry — so
  /// the serving layer's finisher threads can fold per-session shards
  /// while node threads keep updating them: the race surface is entirely
  /// inside Snapshot(), which reads every cell with relaxed atomics.
  void Merge(const MetricsSnapshot& other);

  /// Value of `name`, or 0 when absent.
  int64_t Value(const std::string& name) const;

  /// Entry lookup; nullptr when absent.
  const Entry* Find(const std::string& name) const;

  bool empty() const { return entries.empty(); }
};

/// A per-node metric shard: registration is mutex-protected and returns
/// stable handles; the handles' update paths are lock-free (relaxed
/// atomics), so node threads never contend and a snapshot can be taken
/// mid-run from any thread. Re-registering a name returns the existing
/// cell (kind must match; mismatches return a dead handle and are
/// reported once via the error list, never by throwing).
class MetricRegistry {
 public:
  explicit MetricRegistry(bool enabled = true) : enabled_(enabled) {}

  MetricRegistry(const MetricRegistry&) = delete;
  MetricRegistry& operator=(const MetricRegistry&) = delete;

  bool enabled() const { return enabled_; }

  Counter counter(const std::string& name) ADAPTAGG_EXCLUDES(mu_);
  Gauge gauge(const std::string& name) ADAPTAGG_EXCLUDES(mu_);
  Histogram histogram(const std::string& name, const HistogramSpec& spec)
      ADAPTAGG_EXCLUDES(mu_);

  /// Reads every metric (relaxed) into a name-sorted snapshot. Safe to
  /// call from any thread while updates are in flight.
  MetricsSnapshot Snapshot() const ADAPTAGG_EXCLUDES(mu_);

  /// Kind-mismatch registrations observed so far (test hook).
  std::vector<std::string> registration_errors() const
      ADAPTAGG_EXCLUDES(mu_);

 private:
  /// Looks the cell up (or creates it) under mu_. `spec` is non-null
  /// only for histograms; bucket storage is initialized while the lock
  /// is still held so concurrent registration and Snapshot() never see
  /// the bucket deque mid-growth. The returned cell pointer escapes the
  /// critical section deliberately: cells have stable deque addresses
  /// and are only ever updated through their atomics (never guarded
  /// fields), so handle updates stay lock-free.
  internal_obs::MetricCell* FindOrCreate(const std::string& name,
                                         MetricKind kind,
                                         const HistogramSpec* spec)
      ADAPTAGG_EXCLUDES(mu_);

  bool enabled_;
  mutable Mutex mu_;
  std::deque<internal_obs::MetricCell> cells_ ADAPTAGG_GUARDED_BY(mu_);
  std::vector<std::string> errors_ ADAPTAGG_GUARDED_BY(mu_);
};

}  // namespace adaptagg

#endif  // ADAPTAGG_OBS_METRIC_REGISTRY_H_
