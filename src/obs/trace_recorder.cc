#include "obs/trace_recorder.h"

#include <chrono>

namespace adaptagg {

double WallSeconds() {
  using clock = std::chrono::steady_clock;
  return std::chrono::duration<double>(clock::now().time_since_epoch())
      .count();
}

void TraceRecorder::RecordSpan(
    std::string name, double sim_begin_s, double sim_end_s,
    double wall_begin_s, double wall_end_s,
    std::vector<std::pair<std::string, int64_t>> args) {
  if (!enabled_) return;
  TraceEvent e;
  e.kind = TraceEvent::Kind::kSpan;
  e.name = std::move(name);
  e.node_id = node_id_;
  e.sim_begin_s = sim_begin_s;
  e.sim_end_s = sim_end_s;
  e.wall_begin_s = wall_begin_s;
  e.wall_end_s = wall_end_s;
  e.args = std::move(args);
  events_.push_back(std::move(e));
}

void TraceRecorder::RecordInstant(
    std::string name, double sim_at_s,
    std::vector<std::pair<std::string, int64_t>> args) {
  if (!enabled_) return;
  TraceEvent e;
  e.kind = TraceEvent::Kind::kInstant;
  e.name = std::move(name);
  e.node_id = node_id_;
  e.sim_begin_s = sim_at_s;
  e.sim_end_s = sim_at_s;
  e.wall_begin_s = WallSeconds() - wall_epoch_s_;
  e.wall_end_s = e.wall_begin_s;
  e.args = std::move(args);
  events_.push_back(std::move(e));
}

PhaseTimer::PhaseTimer(TraceRecorder* recorder, MetricRegistry* registry,
                       const CostClock* clock, std::string name)
    : recorder_(recorder),
      registry_(registry),
      clock_(clock),
      name_(std::move(name)),
      sim_begin_s_(clock != nullptr ? clock->now() : 0),
      wall_begin_s_(WallSeconds()) {}

void PhaseTimer::AddArg(const std::string& key, int64_t value) {
  if (ended_) return;
  args_.emplace_back(key, value);
}

void PhaseTimer::End() {
  if (ended_) return;
  ended_ = true;
  const double sim_end = clock_ != nullptr ? clock_->now() : 0;
  const double wall_end = WallSeconds();
  if (registry_ != nullptr) {
    const double sim_us = (sim_end - sim_begin_s_) * 1e6;
    const double wall_us = (wall_end - wall_begin_s_) * 1e6;
    registry_->counter("phase." + name_ + ".sim_us")
        .Add(static_cast<int64_t>(sim_us + 0.5));
    registry_->counter("phase." + name_ + ".wall_us")
        .Add(static_cast<int64_t>(wall_us + 0.5));
    registry_->counter("phase." + name_ + ".count").Increment();
  }
  if (recorder_ != nullptr && recorder_->enabled()) {
    const double epoch = recorder_->wall_epoch_s();
    recorder_->RecordSpan(name_, sim_begin_s_, sim_end,
                          wall_begin_s_ - epoch, wall_end - epoch,
                          std::move(args_));
  }
}

}  // namespace adaptagg
