#include "obs/node_obs.h"

namespace adaptagg {
namespace {

/// Message sizes span one header byte to multi-page batches: power-of-two
/// buckets from 64 bytes up to ~2 MB cover that in 16 buckets.
HistogramSpec MsgBytesSpec() {
  return HistogramSpec::Exponential(/*start=*/64, /*factor=*/2.0,
                                    /*count=*/16);
}

/// Abort latencies span sub-millisecond inproc fan-out to multi-second
/// timeout detection: 100 us .. ~28 min in 12 power-of-4 buckets.
HistogramSpec AbortLatencySpec() {
  return HistogramSpec::Exponential(/*start=*/100, /*factor=*/4.0,
                                    /*count=*/12);
}

/// Per-destination exchange page counts range from one page to
/// millions on skewed long runs: power-of-two buckets from 1.
HistogramSpec PagesPerDestSpec() {
  return HistogramSpec::Exponential(/*start=*/1, /*factor=*/2.0,
                                    /*count=*/20);
}

}  // namespace

NodeObs::NodeObs(int node_id, const ObsConfig& config,
                 const CostClock* clock, double wall_epoch_s)
    : config_(Effective(config)),
      clock_(clock),
      registry_(config_.metrics),
      trace_(node_id, config_.spans && config_.traces, wall_epoch_s),
      phase_registry_(config_.spans && config_.metrics ? &registry_
                                                       : nullptr) {
  scan_tuples = registry_.counter("scan.tuples");

  net_msgs_sent = registry_.counter("net.msgs_sent");
  net_bytes_sent = registry_.counter("net.bytes_sent");
  net_pages_sent = registry_.counter("net.pages_sent");
  net_raw_records_sent = registry_.counter("net.raw_records_sent");
  net_partial_records_sent = registry_.counter("net.partial_records_sent");
  net_raw_records_received =
      registry_.counter("net.raw_records_received");
  net_partial_records_received =
      registry_.counter("net.partial_records_received");
  net_channel_depth_high_water =
      registry_.gauge("net.channel_depth_high_water");
  net_page_pool_hits = registry_.counter("net.page_pool_hits");
  net_page_pool_allocs = registry_.counter("net.page_pool_allocs");
  net_msg_bytes = registry_.histogram("net.msg_bytes", MsgBytesSpec());
  net_exchange_pages_per_dest = registry_.histogram(
      "net.exchange_pages_per_dest", PagesPerDestSpec());

  core_switches = registry_.counter("core.switches");
  core_result_rows = registry_.counter("core.result_rows");
  core_rows_filtered_by_having =
      registry_.counter("core.rows_filtered_by_having");
  core_merge_topology = registry_.gauge("core.merge_topology");

  agg_spill_records = registry_.counter("agg.spill.records");
  agg_spill_pages_written = registry_.counter("agg.spill.pages_written");
  agg_spill_pages_read = registry_.counter("agg.spill.pages_read");

  agg_ht_probes = registry_.counter("agg.ht.probes");
  agg_ht_hits = registry_.counter("agg.ht.hits");
  agg_ht_inserts = registry_.counter("agg.ht.inserts");
  agg_ht_resizes = registry_.counter("agg.ht.resizes");

  agg_batch_tuples = registry_.counter("agg.batch.tuples");
  agg_batch_fused_tuples = registry_.counter("agg.batch.fused_tuples");
  agg_batch_identity_copy_tuples =
      registry_.counter("agg.batch.identity_copy_tuples");

  fault_msgs_dropped = registry_.counter("fault.msgs_dropped");
  fault_msgs_duplicated = registry_.counter("fault.msgs_duplicated");
  fault_msgs_delayed = registry_.counter("fault.msgs_delayed");
  fault_msgs_corrupted = registry_.counter("fault.msgs_corrupted");
  fault_crashes_injected = registry_.counter("fault.crashes_injected");
  fault_straggle_sleeps = registry_.counter("fault.straggle_sleeps");
  fault_heartbeats_sent = registry_.counter("fault.heartbeats_sent");
  fault_dup_discarded = registry_.counter("fault.dup_discarded");
  fault_seq_gaps = registry_.counter("fault.seq_gaps");
  fault_frames_rejected = registry_.counter("fault.frames_rejected");
  fault_deadline_aborts = registry_.counter("fault.deadline_aborts");
  fault_abort_latency_us =
      registry_.histogram("fault.abort_latency_us", AbortLatencySpec());

  recovery_checkpoints_written =
      registry_.counter("recovery.checkpoints_written");
  recovery_checkpoint_bytes = registry_.counter("recovery.checkpoint_bytes");
  recovery_checkpoint_failures =
      registry_.counter("recovery.checkpoint_failures");
  recovery_checkpoints_skipped =
      registry_.counter("recovery.checkpoints_skipped");
  recovery_checkpoint_data_loss =
      registry_.counter("recovery.checkpoint_data_loss");
  recovery_pages_deduped = registry_.counter("recovery.pages_deduped");
  recovery_stale_epoch_dropped =
      registry_.counter("recovery.stale_epoch_dropped");
  recovery_attempts = registry_.counter("recovery.attempts");
  recovery_nodes_restored = registry_.counter("recovery.nodes_restored");
  recovery_attempt_wall_us =
      registry_.histogram("recovery.attempt_wall_us", AbortLatencySpec());
}

void NodeObs::RecordSwitch(
    const std::string& name,
    std::vector<std::pair<std::string, int64_t>> args) {
  core_switches.Increment();
  if (trace_.enabled()) {
    trace_.RecordInstant(name, clock_ != nullptr ? clock_->now() : 0,
                         std::move(args));
  }
}

void NodeObs::RecordFault(
    const std::string& name,
    std::vector<std::pair<std::string, int64_t>> args) {
  if (trace_.enabled()) {
    trace_.RecordInstant(name, clock_ != nullptr ? clock_->now() : 0,
                         std::move(args));
  }
}

void NodeObs::RecordDecision(
    const std::string& name,
    std::vector<std::pair<std::string, int64_t>> args) {
  if (trace_.enabled()) {
    trace_.RecordInstant(name, clock_ != nullptr ? clock_->now() : 0,
                         std::move(args));
  }
}

}  // namespace adaptagg
