#ifndef ADAPTAGG_OBS_TRACE_EXPORT_H_
#define ADAPTAGG_OBS_TRACE_EXPORT_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "obs/trace_recorder.h"

namespace adaptagg {

/// Renders trace events as Chrome trace-event JSON (the "JSON Array
/// Format" with a traceEvents wrapper), loadable in Perfetto and
/// chrome://tracing. The simulated clock is the primary timeline
/// (microsecond `ts`/`dur`); each node is one named track (`tid` =
/// node id) in a single process; spans become complete ("X") events
/// carrying their wall-clock duration and structured args; instants
/// become thread-scoped instant ("i") events.
std::string ChromeTraceJson(const std::vector<TraceEvent>& events,
                            int num_nodes);

/// Writes ChromeTraceJson to `path`.
Status WriteChromeTrace(const std::vector<TraceEvent>& events,
                        int num_nodes, const std::string& path);

}  // namespace adaptagg

#endif  // ADAPTAGG_OBS_TRACE_EXPORT_H_
