#include "obs/metric_registry.h"

#include <algorithm>

namespace adaptagg {

std::string MetricKindToString(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter:
      return "counter";
    case MetricKind::kGauge:
      return "gauge";
    case MetricKind::kHistogram:
      return "histogram";
  }
  return "unknown";
}

internal_obs::MetricCell* MetricRegistry::FindOrCreate(
    const std::string& name, MetricKind kind, const HistogramSpec* spec) {
  if (!enabled_) return nullptr;
  MutexLock lock(&mu_);
  for (internal_obs::MetricCell& cell : cells_) {
    if (cell.name == name) {
      if (cell.kind != kind) {
        errors_.push_back("metric '" + name + "' registered as " +
                          MetricKindToString(cell.kind) +
                          " but requested as " + MetricKindToString(kind));
        return nullptr;
      }
      return &cell;
    }
  }
  cells_.emplace_back();
  internal_obs::MetricCell& cell = cells_.back();
  cell.name = name;
  cell.kind = kind;
  if (spec != nullptr) {
    cell.hist_spec = *spec;
    for (int i = 0; i < spec->num_buckets(); ++i) {
      cell.buckets.emplace_back(0);
    }
  }
  return &cell;
}

Counter MetricRegistry::counter(const std::string& name) {
  internal_obs::MetricCell* cell =
      FindOrCreate(name, MetricKind::kCounter, nullptr);
  return cell != nullptr ? Counter(&cell->value) : Counter();
}

Gauge MetricRegistry::gauge(const std::string& name) {
  internal_obs::MetricCell* cell =
      FindOrCreate(name, MetricKind::kGauge, nullptr);
  return cell != nullptr ? Gauge(&cell->value) : Gauge();
}

Histogram MetricRegistry::histogram(const std::string& name,
                                    const HistogramSpec& spec) {
  internal_obs::MetricCell* cell =
      FindOrCreate(name, MetricKind::kHistogram, &spec);
  return cell != nullptr ? Histogram(cell) : Histogram();
}

MetricsSnapshot MetricRegistry::Snapshot() const {
  MetricsSnapshot snap;
  {
    MutexLock lock(&mu_);
    snap.entries.reserve(cells_.size());
    for (const internal_obs::MetricCell& cell : cells_) {
      MetricsSnapshot::Entry e;
      e.name = cell.name;
      e.kind = cell.kind;
      e.value = cell.value.load(std::memory_order_relaxed);
      if (cell.kind == MetricKind::kHistogram) {
        e.edges = cell.hist_spec.edges;
        e.bucket_counts.reserve(cell.buckets.size());
        for (const std::atomic<int64_t>& b : cell.buckets) {
          e.bucket_counts.push_back(b.load(std::memory_order_relaxed));
        }
      }
      snap.entries.push_back(std::move(e));
    }
  }
  std::sort(snap.entries.begin(), snap.entries.end(),
            [](const MetricsSnapshot::Entry& a,
               const MetricsSnapshot::Entry& b) { return a.name < b.name; });
  return snap;
}

std::vector<std::string> MetricRegistry::registration_errors() const {
  MutexLock lock(&mu_);
  return errors_;
}

void MetricsSnapshot::Merge(const MetricsSnapshot& other) {
  for (const Entry& theirs : other.entries) {
    auto it = std::lower_bound(
        entries.begin(), entries.end(), theirs.name,
        [](const Entry& e, const std::string& name) {
          return e.name < name;
        });
    if (it == entries.end() || it->name != theirs.name) {
      entries.insert(it, theirs);
      continue;
    }
    Entry& mine = *it;
    switch (mine.kind) {
      case MetricKind::kCounter:
        mine.value += theirs.value;
        break;
      case MetricKind::kGauge:
        mine.value = std::max(mine.value, theirs.value);
        break;
      case MetricKind::kHistogram:
        mine.value += theirs.value;
        if (mine.edges == theirs.edges &&
            mine.bucket_counts.size() == theirs.bucket_counts.size()) {
          for (size_t i = 0; i < mine.bucket_counts.size(); ++i) {
            mine.bucket_counts[i] += theirs.bucket_counts[i];
          }
        }
        break;
    }
  }
}

int64_t MetricsSnapshot::Value(const std::string& name) const {
  const Entry* e = Find(name);
  return e != nullptr ? e->value : 0;
}

const MetricsSnapshot::Entry* MetricsSnapshot::Find(
    const std::string& name) const {
  auto it = std::lower_bound(entries.begin(), entries.end(), name,
                             [](const Entry& e, const std::string& n) {
                               return e.name < n;
                             });
  if (it == entries.end() || it->name != name) return nullptr;
  return &*it;
}

}  // namespace adaptagg
