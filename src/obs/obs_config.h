#ifndef ADAPTAGG_OBS_OBS_CONFIG_H_
#define ADAPTAGG_OBS_OBS_CONFIG_H_

namespace adaptagg {

/// Runtime switches of the observability subsystem. Carried by
/// AlgorithmOptions into every cluster run; each node's NodeObs is
/// configured from it. The compile-time kill switch is the CMake option
/// ADAPTAGG_OBS=OFF (defining ADAPTAGG_OBS_DISABLED), which turns every
/// metric/trace call site into a no-op regardless of these flags.
struct ObsConfig {
  /// Per-node counters, gauges, and histograms (MetricRegistry). The
  /// merged snapshot rides back on RunResult::metrics.
  bool metrics = true;
  /// Structured phase spans and adaptive-switch decision events
  /// (TraceRecorder), in simulated and wall time. Spans also feed the
  /// per-phase time counters of the registry.
  bool spans = true;
  /// Keep the full event log on RunResult::trace_events so it can be
  /// exported as a Chrome trace (one track per node). Off by default:
  /// traces of big runs are large; metrics and span counters are not.
  bool traces = false;

  /// Everything off: the hot paths see only null handles.
  static ObsConfig Disabled() {
    ObsConfig c;
    c.metrics = false;
    c.spans = false;
    c.traces = false;
    return c;
  }

  /// Metrics + spans + the exportable event log.
  static ObsConfig Full() {
    ObsConfig c;
    c.traces = true;
    return c;
  }
};

}  // namespace adaptagg

#endif  // ADAPTAGG_OBS_OBS_CONFIG_H_
