#ifndef ADAPTAGG_OBS_METRICS_EXPORT_H_
#define ADAPTAGG_OBS_METRICS_EXPORT_H_

#include <string>

#include "common/status.h"
#include "obs/metric_registry.h"

namespace adaptagg {

/// Escapes `s` for inclusion inside a JSON string literal (quotes,
/// backslashes, control characters).
std::string JsonEscape(const std::string& s);

/// Compact JSON object, one member per metric in name order:
/// counters/gauges as bare numbers, histograms as
/// {"count": n, "edges": [...], "buckets": [...]}. `indent` spaces
/// prefix every line when > 0 (for embedding in an outer document);
/// 0 yields a single line.
std::string MetricsToJson(const MetricsSnapshot& snapshot, int indent = 0);

/// Human-readable dump, one "name value" line per metric in name order;
/// histogram buckets are rendered as "label:count" pairs.
std::string MetricsToText(const MetricsSnapshot& snapshot);

/// Writes MetricsToJson(snapshot, 2) to `path`.
Status WriteMetricsJson(const MetricsSnapshot& snapshot,
                        const std::string& path);

}  // namespace adaptagg

#endif  // ADAPTAGG_OBS_METRICS_EXPORT_H_
