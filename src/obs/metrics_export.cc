#include "obs/metrics_export.h"

#include <cstdio>
#include <sstream>

namespace adaptagg {
namespace {

void AppendHistogramJson(std::ostringstream& os,
                         const MetricsSnapshot::Entry& e) {
  os << "{\"count\": " << e.value << ", \"edges\": [";
  for (size_t i = 0; i < e.edges.size(); ++i) {
    if (i > 0) os << ", ";
    os << e.edges[i];
  }
  os << "], \"buckets\": [";
  for (size_t i = 0; i < e.bucket_counts.size(); ++i) {
    if (i > 0) os << ", ";
    os << e.bucket_counts[i];
  }
  os << "]}";
}

}  // namespace

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string MetricsToJson(const MetricsSnapshot& snapshot, int indent) {
  // indent == 0: one line. indent > 0: members on their own lines at
  // `indent` columns, closing brace two columns back (so the object can
  // be embedded as a member of an outer document).
  const std::string pad(static_cast<size_t>(indent > 0 ? indent : 0), ' ');
  const std::string close_pad(
      static_cast<size_t>(indent > 2 ? indent - 2 : 0), ' ');
  const char* nl = indent > 0 ? "\n" : "";
  const char* sp = indent > 0 ? "" : " ";
  std::ostringstream os;
  os << "{" << nl;
  for (size_t i = 0; i < snapshot.entries.size(); ++i) {
    const MetricsSnapshot::Entry& e = snapshot.entries[i];
    os << pad << "\"" << JsonEscape(e.name) << "\": ";
    if (e.kind == MetricKind::kHistogram) {
      AppendHistogramJson(os, e);
    } else {
      os << e.value;
    }
    if (i + 1 < snapshot.entries.size()) os << "," << sp;
    os << nl;
  }
  os << close_pad << "}";
  return os.str();
}

std::string MetricsToText(const MetricsSnapshot& snapshot) {
  std::ostringstream os;
  for (const MetricsSnapshot::Entry& e : snapshot.entries) {
    os << e.name << " " << e.value;
    if (e.kind == MetricKind::kHistogram) {
      HistogramSpec spec;
      spec.edges = e.edges;
      os << " [";
      for (size_t b = 0; b < e.bucket_counts.size(); ++b) {
        if (b > 0) os << " ";
        os << spec.BucketLabel(static_cast<int>(b)) << ":"
           << e.bucket_counts[b];
      }
      os << "]";
    }
    os << "\n";
  }
  return os.str();
}

Status WriteMetricsJson(const MetricsSnapshot& snapshot,
                        const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::IOError("cannot open " + path + " for writing");
  }
  const std::string body = MetricsToJson(snapshot, 2) + "\n";
  const size_t written = std::fwrite(body.data(), 1, body.size(), f);
  const bool closed = std::fclose(f) == 0;
  if (written != body.size() || !closed) {
    return Status::IOError("short write to " + path);
  }
  return Status::OK();
}

}  // namespace adaptagg
