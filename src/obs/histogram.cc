#include "obs/histogram.h"

#include <algorithm>

namespace adaptagg {

HistogramSpec HistogramSpec::Exponential(int64_t start, double factor,
                                         int count) {
  HistogramSpec spec;
  spec.edges.reserve(static_cast<size_t>(count));
  double edge = static_cast<double>(start);
  int64_t last = 0;
  for (int i = 0; i < count; ++i) {
    int64_t e = static_cast<int64_t>(edge);
    // Guarantee strictly increasing integer edges even when the factor
    // advances by less than 1 at the small end.
    e = std::max(e, last + 1);
    spec.edges.push_back(e);
    last = e;
    edge *= factor;
  }
  return spec;
}

HistogramSpec HistogramSpec::Linear(int64_t width, int count) {
  HistogramSpec spec;
  spec.edges.reserve(static_cast<size_t>(count));
  for (int i = 1; i <= count; ++i) {
    spec.edges.push_back(width * i);
  }
  return spec;
}

int HistogramSpec::BucketOf(int64_t value) const {
  // Binary search for the first edge >= value; edges are tiny (tens of
  // entries) so this is a handful of comparisons.
  auto it = std::lower_bound(edges.begin(), edges.end(), value);
  return static_cast<int>(it - edges.begin());
}

std::string HistogramSpec::BucketLabel(int i) const {
  if (i >= static_cast<int>(edges.size())) {
    return edges.empty() ? "all"
                         : ">" + std::to_string(edges.back());
  }
  return "<=" + std::to_string(edges[static_cast<size_t>(i)]);
}

}  // namespace adaptagg
