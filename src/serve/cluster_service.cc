#include "serve/cluster_service.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "agg/hash_table.h"
#include "cluster/recovery.h"
#include "common/simd.h"
#include "core/algorithm.h"
#include "model/recovery_model.h"
#include "net/fault.h"
#include "obs/trace_recorder.h"

namespace adaptagg {

// ---------------------------------------------------------------------------
// QueryTicket

const RunResult& QueryTicket::Wait() {
  MutexLock lock(&mu_);
  while (!done_) cv_.Wait(mu_);
  return result_;
}

bool QueryTicket::done() const {
  MutexLock lock(&mu_);
  return done_;
}

double QueryTicket::complete_wall_s() const {
  MutexLock lock(&mu_);
  return complete_wall_s_;
}

void QueryTicket::Complete(RunResult result, double wall_s) {
  MutexLock lock(&mu_);
  result_ = std::move(result);
  complete_wall_s_ = wall_s;
  done_ = true;
  cv_.NotifyAll();
}

// ---------------------------------------------------------------------------
// Internal session state

/// One admitted query's execution state: its namespaced exchange
/// endpoints, per-node scoped disks and partition views, contexts, and
/// completion bookkeeping. Owned by the service's active_ map from
/// admission until the last node finishes.
struct ClusterService::Session {
  uint32_t query_id = 0;
  ServeQuery q;
  std::unique_ptr<Algorithm> owned_algo;
  const Algorithm* algo = nullptr;

  /// Relation version at submission; the result is cached only when the
  /// version is unchanged at completion (a mutation mid-run makes the
  /// rows unrepresentative of either version).
  uint64_t rel_version = 0;
  bool cacheable = false;
  std::string fingerprint;
  int64_t est_bytes = 0;

  /// Fault-recovery bookkeeping: 1-based execution attempt, the
  /// resolved checkpoint cadence, and the session-lifetime recovery
  /// runtime whose checkpoint store survives across attempts.
  int attempt = 1;
  int64_t ckpt_every = 0;
  std::unique_ptr<RecoveryRuntime> recovery;

  QueryTicketPtr ticket;

  // Per-attempt execution state: rebuilt by StartAttempt so a replay
  // runs on fresh endpoints, sinks, and contexts.
  std::vector<std::unique_ptr<Transport>> transports;
  /// Per-node Disk views: shared base data, session-private stats, so
  /// each session's modeled I/O time is byte-identical to a solo run.
  std::vector<std::unique_ptr<ScopedDisk>> disks;
  /// Read-only partition views bound to the scoped disks.
  std::vector<std::unique_ptr<HeapFile>> partitions;
  std::unique_ptr<NetworkModel> net;
  std::unique_ptr<GatherSink> gathered;
  /// Session-private shared merge arena (the shared topology's
  /// concurrent table); rebuilt per attempt like the other plane state.
  std::unique_ptr<SharedMergeArena> merge_arena;
  std::vector<std::unique_ptr<NodeContext>> contexts;
  std::vector<Status> statuses;
  std::unique_ptr<FailureFanout> fanout;
  std::atomic<int> nodes_remaining{0};
  std::chrono::steady_clock::time_point wall_start;
};

/// One node's work feed: admitted sessions enqueue one task per node;
/// the node's resident workers block here between queries.
struct ClusterService::NodeTaskQueue {
  struct Task {
    Session* session = nullptr;
    int node = 0;
  };

  void Push(Task t) ADAPTAGG_EXCLUDES(mu) {
    MutexLock lock(&mu);
    tasks.push_back(t);
    cv.NotifyOne();
  }

  /// Blocks for the next task; false once closed and drained.
  bool Pop(Task* out) ADAPTAGG_EXCLUDES(mu) {
    MutexLock lock(&mu);
    while (tasks.empty() && !closed) cv.Wait(mu);
    if (tasks.empty()) return false;
    *out = tasks.front();
    tasks.pop_front();
    return true;
  }

  void Close() ADAPTAGG_EXCLUDES(mu) {
    MutexLock lock(&mu);
    closed = true;
    cv.NotifyAll();
  }

  Mutex mu;
  CondVar cv;
  std::deque<Task> tasks ADAPTAGG_GUARDED_BY(mu);
  bool closed ADAPTAGG_GUARDED_BY(mu) = false;
};

// ---------------------------------------------------------------------------
// ClusterService

Result<std::unique_ptr<ClusterService>> ClusterService::Start(
    ServiceConfig config, PartitionedRelation* rel) {
  if (rel->num_nodes() != config.params.num_nodes) {
    return Status::InvalidArgument(
        "relation has " + std::to_string(rel->num_nodes()) +
        " partitions but the service has " +
        std::to_string(config.params.num_nodes) + " nodes");
  }
  if (config.scheduler.max_inflight < 1) {
    return Status::InvalidArgument("scheduler.max_inflight must be >= 1");
  }
  Cluster::TransportFactory factory = config.transport_factory;
  if (!factory) {
    factory = [](int n) -> Result<std::vector<std::unique_ptr<Transport>>> {
      return MakeInprocMesh(n);
    };
  }
  Result<std::vector<std::unique_ptr<Transport>>> mesh =
      factory(config.params.num_nodes);
  if (!mesh.ok()) return mesh.status();
  return std::unique_ptr<ClusterService>(new ClusterService(
      std::move(config), rel, std::move(factory), std::move(*mesh)));
}

ClusterService::ClusterService(ServiceConfig config, PartitionedRelation* rel,
                               Cluster::TransportFactory mesh_factory,
                               std::vector<std::unique_ptr<Transport>> mesh)
    : config_(std::move(config)),
      rel_(rel),
      mesh_factory_(std::move(mesh_factory)),
      router_(std::make_unique<SessionRouter>(std::move(mesh))),
      cache_(config_.cache_entries, config_.cache_min_cost_us),
      scheduler_(config_.scheduler) {
  admitted_ = metrics_.counter("serve.admitted");
  rejected_queue_full_ = metrics_.counter("serve.rejected.queue_full");
  rejected_memory_ = metrics_.counter("serve.rejected.memory");
  cache_hits_ = metrics_.counter("serve.cache.hits");
  cache_misses_ = metrics_.counter("serve.cache.misses");
  cache_skipped_cheap_ = metrics_.counter("serve.cache.skipped_cheap");
  completed_ = metrics_.counter("serve.completed");
  aborted_ = metrics_.counter("serve.aborted");
  replays_ = metrics_.counter("serve.recovery.replays");
  resizes_ = metrics_.counter("serve.resizes");
  inflight_high_water_ = metrics_.gauge("serve.inflight_high_water");
  queue_depth_high_water_ = metrics_.gauge("serve.queue_depth_high_water");
  late_frames_dropped_ = metrics_.gauge("serve.late_frames_dropped");
  heartbeats_shared_ = metrics_.gauge("serve.heartbeats_shared");
  // 100us..~6.7s in factor-2 buckets: covers a cache-warm in-process
  // query through a heavily queued one.
  latency_us_ = metrics_.histogram("serve.latency_us",
                                   HistogramSpec::Exponential(100, 2.0, 17));

  const int n = config_.params.num_nodes;
  // max_inflight workers per node: every admitted session (at most
  // max_inflight of them) always finds a free worker on every node, so
  // admission control is the only scheduler and sessions never deadlock
  // waiting for each other's workers.
  const int pool = config_.scheduler.max_inflight;
  task_queues_.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    task_queues_.push_back(std::make_unique<NodeTaskQueue>());
  }
  workers_.reserve(static_cast<size_t>(n * pool));
  alive_workers_.store(n * pool, std::memory_order_release);
  for (int i = 0; i < n; ++i) {
    for (int w = 0; w < pool; ++w) {
      workers_.emplace_back([this, i] { WorkerLoop(i); });
    }
  }
}

ClusterService::~ClusterService() { Shutdown(); }

Result<QueryTicketPtr> ClusterService::Submit(ServeQuery query) {
  {
    MutexLock lock(&mu_);
    if (!accepting_) {
      return Status::FailedPrecondition("ClusterService is shut down");
    }
  }

  Status valid = ValidateRunOptions(query.spec, query.options);
  if (!valid.ok()) return valid;

  auto session = std::make_unique<Session>();
  session->query_id = next_query_id_.fetch_add(1, std::memory_order_relaxed);
  session->q = std::move(query);
  session->q.options.query_id = session->query_id;
  if (session->q.custom_algorithm != nullptr) {
    session->algo = session->q.custom_algorithm;
  } else {
    session->owned_algo = MakeAlgorithm(session->q.algorithm);
    session->algo = session->owned_algo.get();
  }

  auto ticket = std::make_shared<QueryTicket>();
  ticket->query_id_ = session->query_id;
  ticket->submit_wall_s_ = WallSeconds();
  session->ticket = ticket;

  // Snapshot the system parameters under the lock: Resize rewrites
  // config_.params.num_nodes while the plane is swapped, and this path
  // reads params before deciding whether to park.
  SystemParams params_now;
  {
    MutexLock lock(&mu_);
    params_now = config_.params;
  }

  // Cache: only gathered, fault-free queries are answerable from (and
  // into) the cache — a fault plan changes the outcome, and without
  // gathered rows there is nothing to serve.
  session->rel_version = rel_->version();
  session->cacheable = session->q.options.gather_results &&
                       session->q.options.fault_plan.empty() &&
                       config_.cache_entries > 0;
  if (session->cacheable) {
    session->fingerprint =
        QueryFingerprint(session->q.spec, session->q.options);
    std::optional<ResultCache::Entry> hit =
        cache_.Lookup({session->rel_version, session->fingerprint});
    if (hit.has_value()) {
      cache_hits_.Increment();
      RunResult result;
      result.query_id = session->query_id;
      result.num_nodes = params_now.num_nodes;
      result.from_cache = true;
      result.results = std::move(hit->results);
      const double wall = WallSeconds();
      latency_us_.Observe(
          static_cast<int64_t>((wall - ticket->submit_wall_s_) * 1e6));
      ticket->Complete(std::move(result), wall);
      return ticket;
    }
    cache_misses_.Increment();
  }

  session->est_bytes = EstimateQueryMemoryBytes(
      session->q.spec, session->q.options, params_now);

  MutexLock lock(&mu_);
  if (!accepting_) {
    return Status::FailedPrecondition("ClusterService is shut down");
  }
  // Mid-resize the data plane is being swapped: park the submission in
  // the pending queue (still bounded) and let the post-resize pump
  // admit it against the new node count.
  if (resizing_) {
    if (static_cast<int>(pending_.size()) >=
        config_.scheduler.queue_capacity) {
      rejected_queue_full_.Increment();
      return Status::ResourceExhausted(
          "submission queue full during resize (" +
          std::to_string(pending_.size()) + " queued)");
    }
    pending_.push_back(std::move(session));
    pending_high_water_ = std::max(pending_high_water_, pending_.size());
    queue_depth_high_water_.UpdateMax(
        static_cast<int64_t>(pending_high_water_));
    return ticket;
  }
  const Scheduler::Decision decision = scheduler_.Offer(
      session->est_bytes, static_cast<int>(pending_.size()));
  switch (decision) {
    case Scheduler::Decision::kAdmit: {
      scheduler_.Admit(session->est_bytes);
      Session* raw = session.get();
      active_.emplace(raw->query_id, std::move(session));
      Activate(raw);
      return ticket;
    }
    case Scheduler::Decision::kQueue: {
      pending_.push_back(std::move(session));
      pending_high_water_ = std::max(pending_high_water_, pending_.size());
      queue_depth_high_water_.UpdateMax(
          static_cast<int64_t>(pending_high_water_));
      return ticket;
    }
    case Scheduler::Decision::kRejectQueueFull:
      rejected_queue_full_.Increment();
      return Status::ResourceExhausted(
          "submission queue full (" +
          std::to_string(config_.scheduler.queue_capacity) +
          " queued, " + std::to_string(scheduler_.inflight()) +
          " in flight)");
    case Scheduler::Decision::kRejectMemory:
      rejected_memory_.Increment();
      return Status::ResourceExhausted(
          "estimated working set " + std::to_string(session->est_bytes) +
          " bytes exceeds the service memory budget of " +
          std::to_string(config_.scheduler.memory_budget_bytes) + " bytes");
  }
  return Status::Internal("unreachable scheduler decision");
}

void ClusterService::Activate(Session* s) {
  admitted_.Increment();
  inflight_high_water_.UpdateMax(scheduler_.inflight_high_water());

  // Resolve the recovery configuration once per session, as in
  // Cluster::Run; the checkpoint store lives on the session so a replay
  // attempt reads what the crashed attempt wrote.
  if (s->q.options.recovery.enabled) {
    s->ckpt_every = s->q.options.recovery.checkpoint_every_batches;
    if (s->ckpt_every < 0) {
      const int64_t est_groups = s->q.options.max_hash_entries > 0
                                     ? s->q.options.max_hash_entries
                                     : config_.params.max_hash_entries;
      s->ckpt_every = DecideCheckpointInterval(config_.params, est_groups,
                                               s->q.spec.partial_width())
                          .every_batches;
    }
    s->recovery = std::make_unique<RecoveryRuntime>(
        config_.params.num_nodes, static_cast<int>(config_.params.page_bytes),
        s->ckpt_every,
        MakeCheckpointDiskFactory(
            s->q.options.fault_plan,
            static_cast<int>(config_.params.page_bytes)));
  }

  StartAttempt(s);
}

void ClusterService::StartAttempt(Session* s) {
  // Sessions execute at the current membership epoch; frames a retired
  // pre-resize plane might have left behind carry an older epoch and
  // are dropped on admission.
  s->q.options.epoch = membership_epoch_;
  // A replay runs under a fresh wire-level query id: the crashed
  // attempt's in-flight frames (partial pages, its abort broadcast)
  // still carry the old id through the shared mesh, and the router must
  // drop them as late instead of feeding them into the new attempt.
  // The ticket keeps the original query_id.
  if (s->attempt > 1) {
    s->q.options.query_id =
        next_query_id_.fetch_add(1, std::memory_order_relaxed);
  }

  Result<std::vector<std::unique_ptr<Transport>>> endpoints =
      router_->OpenSession(s->q.options.query_id);
  if (!endpoints.ok()) {
    scheduler_.Release(s->est_bytes);
    RunResult result;
    result.query_id = s->query_id;
    result.status = endpoints.status();
    QueryTicketPtr ticket = std::move(s->ticket);
    active_.erase(s->query_id);
    if (active_.empty()) drained_cv_.NotifyAll();
    ticket->Complete(std::move(result), WallSeconds());
    return;
  }
  s->transports = std::move(*endpoints);

  const int n = config_.params.num_nodes;
  const bool inject_faults = !s->q.options.fault_plan.empty();
  if (inject_faults) {
    for (int i = 0; i < n; ++i) {
      s->transports[static_cast<size_t>(i)] =
          std::make_unique<FaultyTransport>(
              std::move(s->transports[static_cast<size_t>(i)]),
              s->q.options.fault_plan);
    }
  }

  s->net = std::make_unique<NetworkModel>(config_.params);
  s->gathered = std::make_unique<GatherSink>();
  s->merge_arena = std::make_unique<SharedMergeArena>();
  s->fanout = std::make_unique<FailureFanout>();
  // One wall epoch per attempt, as in Cluster::Run, so its nodes' trace
  // wall timelines share an origin.
  const double wall_epoch_s = WallSeconds();
  s->disks.clear();
  s->partitions.clear();
  s->contexts.clear();
  s->disks.reserve(static_cast<size_t>(n));
  s->partitions.reserve(static_cast<size_t>(n));
  s->contexts.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    s->disks.push_back(std::make_unique<ScopedDisk>(&rel_->disk(i)));
    s->partitions.push_back(std::make_unique<HeapFile>(
        HeapFile::View(s->disks.back().get(), rel_->partition(i))));
    s->contexts.push_back(std::make_unique<NodeContext>(
        i, config_.params, s->q.spec, s->q.options,
        s->partitions.back().get(), s->disks.back().get(),
        s->transports[static_cast<size_t>(i)].get(), s->net.get(),
        wall_epoch_s));
    s->contexts.back()->SetGather(s->gathered.get());
    s->contexts.back()->SetMergeArena(s->merge_arena.get());
    if (s->recovery != nullptr) {
      s->contexts.back()->SetRecovery(&s->recovery->node(i));
    }
    if (inject_faults) {
      static_cast<FaultyTransport*>(
          s->transports[static_cast<size_t>(i)].get())
          ->set_observer(MakeFaultObserver(&s->contexts.back()->obs()));
    }
  }
  s->contexts.front()->obs().RecordDecision(
      "simd.dispatch",
      {{"kind", static_cast<int64_t>(simd::ActiveDispatch())},
       {"forced_scalar", simd::ForcedScalar() ? 1 : 0}});
  if (s->recovery != nullptr) {
    s->contexts.front()->obs().RecordDecision(
        "recovery.checkpoint_interval",
        {{"every_batches", s->ckpt_every},
         {"max_attempts",
          static_cast<int64_t>(
              std::max(1, s->q.options.recovery.max_attempts))},
         {"attempt", static_cast<int64_t>(s->attempt)}});
  }

  s->statuses.assign(static_cast<size_t>(n), Status());
  s->nodes_remaining.store(n, std::memory_order_release);
  if (s->attempt == 1) s->wall_start = std::chrono::steady_clock::now();
  for (int i = 0; i < n; ++i) {
    task_queues_[static_cast<size_t>(i)]->Push({s, i});
  }
}

void ClusterService::WorkerLoop(int node) {
  NodeTaskQueue& queue = *task_queues_[static_cast<size_t>(node)];
  NodeTaskQueue::Task task;
  while (queue.Pop(&task)) {
    Session& s = *task.session;
    NodeContext& ctx = *s.contexts[static_cast<size_t>(node)];
    Status st = s.algo->RunNode(ctx);
    if (!st.ok()) s.fanout->OnNodeFailure(ctx);
    s.statuses[static_cast<size_t>(node)] = st;
    // The last node to finish assembles the session's result; the
    // acq_rel fence makes every node's writes visible to it.
    if (s.nodes_remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      FinishSession(&s);
    }
  }
  alive_workers_.fetch_sub(1, std::memory_order_acq_rel);
}

void ClusterService::FinishSession(Session* s) {
  const auto wall_end = std::chrono::steady_clock::now();
  Status root = PickRootCause(s->statuses);

  // Survivor re-execution: an injected-crash failure earns a replay on
  // fresh endpoints, restoring each node from its latest checkpoint.
  // Any other error (a real abort, a timeout with no crash) keeps the
  // clean-abort path.
  if (!root.ok() && s->recovery != nullptr &&
      s->attempt < std::max(1, s->q.options.recovery.max_attempts)) {
    bool any_crashed = false;
    for (const auto& ctx : s->contexts) any_crashed |= ctx->crashed();
    if (any_crashed) {
      replays_.Increment();
      // Consume the crash specs that fired — first matching spec per
      // crashed node, mirroring CrashForNode — so the replay does not
      // re-crash and a double-crash plan terminates.
      auto& fs = s->q.options.fault_plan.faults;
      for (size_t i = 0; i < s->contexts.size(); ++i) {
        if (!s->contexts[i]->crashed()) continue;
        for (auto it = fs.begin(); it != fs.end(); ++it) {
          if (it->kind == FaultKind::kCrash &&
              it->node == static_cast<int>(i)) {
            fs.erase(it);
            break;
          }
        }
      }
      router_->CloseSession(s->q.options.query_id);
      ++s->attempt;
      MutexLock lock(&mu_);
      StartAttempt(s);
      return;
    }
  }

  RunResult result;
  result.query_id = s->query_id;
  result.wall_time_s =
      std::chrono::duration<double>(wall_end - s->wall_start).count();
  result.status = root;
  if (s->recovery != nullptr) {
    s->contexts.front()->obs().recovery_attempts.Add(s->attempt - 1);
  }
  FinalizeRunResult(s->contexts, *s->net, *s->gathered, s->q.spec, result);
  router_->CloseSession(s->q.options.query_id);

  if (result.status.ok()) {
    completed_.Increment();
    // Cache only when the relation hasn't moved under the run: a
    // version bump mid-query means these rows describe neither the old
    // nor the new contents reliably enough to replay.
    if (s->cacheable && rel_->version() == s->rel_version) {
      // Insert refuses results under the cost floor; cacheable implies
      // the cache is enabled, so a refusal here is always the floor.
      if (!cache_.Insert({s->rel_version, s->fingerprint},
                         {result.results, result.sim_time_s})) {
        cache_skipped_cheap_.Increment();
      }
    }
  } else {
    aborted_.Increment();
  }

  QueryTicketPtr ticket = std::move(s->ticket);
  std::unique_ptr<Session> self;
  {
    MutexLock lock(&mu_);
    auto it = active_.find(s->query_id);
    self = std::move(it->second);
    active_.erase(it);
    scheduler_.Release(s->est_bytes);
    PumpPending();
    if (active_.empty()) drained_cv_.NotifyAll();
  }

  const double wall = WallSeconds();
  latency_us_.Observe(
      static_cast<int64_t>((wall - ticket->submit_wall_s()) * 1e6));
  ticket->Complete(std::move(result), wall);
  // `self` (the session, including the state `result` was assembled
  // from) dies here, after the ticket no longer needs it.
}

void ClusterService::PumpPending() {
  while (!resizing_ && !pending_.empty() &&
         scheduler_.CanStart(pending_.front()->est_bytes)) {
    std::unique_ptr<Session> next = std::move(pending_.front());
    pending_.pop_front();
    scheduler_.Admit(next->est_bytes);
    Session* raw = next.get();
    active_.emplace(raw->query_id, std::move(next));
    Activate(raw);
  }
}

Status ClusterService::Resize(int new_num_nodes) {
  if (new_num_nodes <= 0) {
    return Status::InvalidArgument("num_nodes must be positive");
  }
  {
    MutexLock lock(&mu_);
    if (!accepting_) {
      return Status::FailedPrecondition("ClusterService is shut down");
    }
    if (resizing_) {
      return Status::FailedPrecondition("a resize is already in progress");
    }
    if (new_num_nodes == config_.params.num_nodes) return Status::OK();
    // Quiesce: the flag parks new submissions in pending_ and stalls the
    // completion pump; in-flight sessions drain normally.
    resizing_ = true;
    while (!active_.empty()) drained_cv_.Wait(mu_);
  }

  // Build the replacement mesh before touching the old plane, so a
  // factory failure (e.g. a TCP bind conflict) leaves the service
  // serving at the old size.
  Result<std::vector<std::unique_ptr<Transport>>> mesh =
      mesh_factory_(new_num_nodes);
  if (!mesh.ok()) {
    MutexLock lock(&mu_);
    resizing_ = false;
    PumpPending();
    return mesh.status();
  }

  // Retire the old data plane: no sessions are in flight, so closing
  // the queues and joining the workers cannot strand work.
  for (auto& queue : task_queues_) queue->Close();
  for (std::thread& t : workers_) {
    if (t.joinable()) t.join();
  }
  workers_.clear();
  task_queues_.clear();
  router_->Stop();

  // Redistribute the relation's tuples across the new node count. On
  // failure the relation may be mid-move and the old plane is gone:
  // fail hard rather than serve wrong shards.
  Status rebalanced = rel_->Rebalance(new_num_nodes);
  if (!rebalanced.ok()) {
    MutexLock lock(&mu_);
    accepting_ = false;
    joined_ = true;  // the workers above are already joined
    resizing_ = false;
    return rebalanced;
  }
  // The relation version bump above already fences the result cache;
  // dropping the entries too keeps its footprint honest.
  cache_.InvalidateAll();

  router_ = std::make_unique<SessionRouter>(std::move(*mesh));
  const int pool = config_.scheduler.max_inflight;
  task_queues_.reserve(static_cast<size_t>(new_num_nodes));
  for (int i = 0; i < new_num_nodes; ++i) {
    task_queues_.push_back(std::make_unique<NodeTaskQueue>());
  }
  workers_.reserve(static_cast<size_t>(new_num_nodes * pool));
  alive_workers_.store(new_num_nodes * pool, std::memory_order_release);
  for (int i = 0; i < new_num_nodes; ++i) {
    for (int w = 0; w < pool; ++w) {
      workers_.emplace_back([this, i] { WorkerLoop(i); });
    }
  }

  MutexLock lock(&mu_);
  config_.params.num_nodes = new_num_nodes;
  ++membership_epoch_;
  resizes_.Increment();
  resizing_ = false;
  // Admit whatever parked while the plane was down, now at the new size.
  PumpPending();
  return Status::OK();
}

uint32_t ClusterService::membership_epoch() const {
  MutexLock lock(&mu_);
  return membership_epoch_;
}

void ClusterService::Shutdown() {
  std::vector<std::unique_ptr<Session>> rejected;
  bool do_join = false;
  {
    MutexLock lock(&mu_);
    accepting_ = false;
    while (!pending_.empty()) {
      rejected.push_back(std::move(pending_.front()));
      pending_.pop_front();
    }
    while (!active_.empty()) drained_cv_.Wait(mu_);
    if (!joined_) {
      joined_ = true;
      do_join = true;
    }
  }
  for (std::unique_ptr<Session>& s : rejected) {
    RunResult result;
    result.query_id = s->query_id;
    result.status =
        Status::FailedPrecondition("service shut down before query started");
    s->ticket->Complete(std::move(result), WallSeconds());
  }
  if (do_join) {
    for (auto& queue : task_queues_) queue->Close();
    for (std::thread& t : workers_) {
      if (t.joinable()) t.join();
    }
    router_->Stop();
  }
}

MetricsSnapshot ClusterService::Metrics() const {
  // Router counters are scraped into gauges at snapshot time (handles
  // are value types, so the const copies below update the same cells).
  Gauge late = late_frames_dropped_;
  late.Set(static_cast<int64_t>(router_->late_frames_dropped()));
  Gauge shared = heartbeats_shared_;
  shared.Set(static_cast<int64_t>(router_->heartbeats_shared()));
  return metrics_.Snapshot();
}

int ClusterService::resident_threads() const {
  return alive_workers_.load(std::memory_order_acquire) +
         router_->alive_demux_threads();
}

}  // namespace adaptagg
