#ifndef ADAPTAGG_SERVE_CLUSTER_SERVICE_H_
#define ADAPTAGG_SERVE_CLUSTER_SERVICE_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <thread>
#include <vector>

#include "cluster/cluster.h"
#include "cluster/run_assembly.h"
#include "common/algorithm_kind.h"
#include "net/session_router.h"
#include "obs/metric_registry.h"
#include "serve/result_cache.h"
#include "serve/scheduler.h"
#include "storage/partitioned_relation.h"
#include "storage/scoped_disk.h"

namespace adaptagg {

/// One aggregate-query submission to a ClusterService.
struct ServeQuery {
  /// The compiled aggregation (group-by columns + aggregate ops).
  AggregationSpec spec;
  /// Which parallel algorithm runs it. The default — the paper's
  /// Sampling algorithm — makes every admitted query take its own
  /// adaptive decision from a fresh sample.
  AlgorithmKind algorithm = AlgorithmKind::kSampling;
  /// Tunables, WHERE/HAVING predicates, obs switches, fault plan.
  /// `options.query_id` is overwritten with the session's id.
  AlgorithmOptions options;
  /// Test hook: run this algorithm instance instead of
  /// MakeAlgorithm(algorithm). Must outlive the query's session.
  const Algorithm* custom_algorithm = nullptr;
};

/// Handle to one submitted query: blocks until its session completes and
/// carries the final RunResult. Submit/complete wall stamps feed the
/// serving benchmark's latency percentiles.
class QueryTicket {
 public:
  uint32_t query_id() const { return query_id_; }

  /// Blocks until the query finishes (successfully, aborted, or
  /// rejected at activation); returns the final result. Idempotent.
  const RunResult& Wait() ADAPTAGG_EXCLUDES(mu_);

  bool done() const ADAPTAGG_EXCLUDES(mu_);

  /// WallSeconds() at submission / completion (0 until done).
  double submit_wall_s() const { return submit_wall_s_; }
  double complete_wall_s() const ADAPTAGG_EXCLUDES(mu_);

 private:
  friend class ClusterService;

  void Complete(RunResult result, double wall_s) ADAPTAGG_EXCLUDES(mu_);

  uint32_t query_id_ = 0;
  double submit_wall_s_ = 0;
  mutable Mutex mu_;
  CondVar cv_;
  bool done_ ADAPTAGG_GUARDED_BY(mu_) = false;
  double complete_wall_s_ ADAPTAGG_GUARDED_BY(mu_) = 0;
  RunResult result_ ADAPTAGG_GUARDED_BY(mu_);
};

using QueryTicketPtr = std::shared_ptr<QueryTicket>;

/// Configuration of a resident ClusterService.
struct ServiceConfig {
  /// Cluster shape and cost model; params.num_nodes must match the
  /// served relation's partition count.
  SystemParams params;
  /// Admission control (max in-flight, queue bound, memory budget).
  SchedulerConfig scheduler;
  /// Result-cache capacity in entries; 0 disables caching.
  size_t cache_entries = 64;
  /// Result-cache admission floor in modeled microseconds: a completed
  /// query cheaper than this is served but not cached (re-execution
  /// beats evicting an expensive neighbor). 0 caches everything.
  int64_t cache_min_cost_us = 0;
  /// Physical mesh factory (empty: in-process mesh). The mesh is built
  /// once and shared by every session through the SessionRouter.
  Cluster::TransportFactory transport_factory;
};

/// A resident multi-query serving layer over one partitioned relation:
/// owns long-lived node worker threads, a shared physical mesh
/// demultiplexed per query by a SessionRouter, an admission-control
/// Scheduler, and a ResultCache. Concurrent Submit()s each get an
/// isolated QuerySession — query-id-namespaced channels, per-session
/// ScopedDisks and obs scope, its own NetworkModel and adaptive
/// decision — while the algorithms themselves run unchanged against
/// NodeContext. See DESIGN.md §11.
class ClusterService {
 public:
  /// Builds the mesh, starts the router's demux threads and the
  /// per-node worker pools (scheduler.max_inflight workers per node,
  /// so every admitted session always finds a free worker per node).
  /// `rel` must outlive the service; concurrent queries share its
  /// partitions read-only.
  static Result<std::unique_ptr<ClusterService>> Start(
      ServiceConfig config, PartitionedRelation* rel);

  ~ClusterService();

  ClusterService(const ClusterService&) = delete;
  ClusterService& operator=(const ClusterService&) = delete;

  /// Submits one query. Returns a ticket immediately on admission (or
  /// a cache hit, which completes the ticket without touching the data
  /// plane), kResourceExhausted on backpressure or memory rejection,
  /// kFailedPrecondition after Shutdown.
  Result<QueryTicketPtr> Submit(ServeQuery query);

  /// Drains in-flight sessions, fails queued submissions, then stops
  /// and joins every resident thread. Idempotent; called by the
  /// destructor.
  void Shutdown();

  /// Elastic node join/leave: resizes the resident cluster to
  /// `new_num_nodes` between queries. Quiesces (in-flight sessions
  /// drain; new submissions park in the pending queue), builds the new
  /// mesh first (a factory failure leaves the old plane serving),
  /// retires the old workers and router, rebalances the relation's
  /// partitions round-robin across the new node count, rebuilds the
  /// data plane, and bumps the membership epoch so frames from the old
  /// plane can never fold into a post-resize query. Blocks until done;
  /// must not be called concurrently with Shutdown or another Resize.
  Status Resize(int new_num_nodes);

  /// Current cluster-membership epoch: 0 at start, +1 per completed
  /// Resize. Every session is stamped with the epoch it was activated
  /// under; stale-epoch frames are dropped on admission.
  uint32_t membership_epoch() const ADAPTAGG_EXCLUDES(mu_);

  /// Drops every cached result (explicit invalidation hook for
  /// out-of-band relation mutation; version-keyed lookups already
  /// never serve a stale entry after PartitionedRelation::BumpVersion).
  void InvalidateCache() { cache_.InvalidateAll(); }

  /// Snapshot of the service-level serve.* counters (admissions,
  /// rejections, cache traffic, in-flight high-water, latency
  /// histogram, router drop/share counters).
  MetricsSnapshot Metrics() const;

  /// Worker + demux threads currently alive (0 after Shutdown — the
  /// leaked-thread assertion of the clean-shutdown test).
  int resident_threads() const;

  const SystemParams& params() const { return config_.params; }
  const SessionRouter& router() const { return *router_; }

 private:
  struct Session;
  struct NodeTaskQueue;

  ClusterService(ServiceConfig config, PartitionedRelation* rel,
                 Cluster::TransportFactory mesh_factory,
                 std::vector<std::unique_ptr<Transport>> mesh);

  /// Admission-time setup (metrics, recovery runtime) followed by the
  /// first StartAttempt.
  void Activate(Session* session) ADAPTAGG_REQUIRES(mu_);

  /// Builds one execution attempt's per-node state (router endpoints,
  /// scoped disks, partition views, contexts, gather sink) and enqueues
  /// one task per node onto the worker pools. Called by Activate for
  /// attempt 1 and by FinishSession's replay branch after a crash.
  void StartAttempt(Session* session) ADAPTAGG_REQUIRES(mu_);

  /// Pumps queued submissions in FIFO order while capacity lasts (and
  /// the data plane is not mid-resize).
  void PumpPending() ADAPTAGG_REQUIRES(mu_);

  void WorkerLoop(int node);

  /// Last node's finisher: assembles the RunResult, feeds the cache,
  /// releases the admission reservation, pumps the pending queue, and
  /// completes the ticket.
  void FinishSession(Session* session);

  ServiceConfig config_;
  PartitionedRelation* rel_;
  /// Kept beyond Start so Resize can build a replacement mesh.
  Cluster::TransportFactory mesh_factory_;
  std::unique_ptr<SessionRouter> router_;
  ResultCache cache_;

  mutable Mutex mu_;
  Scheduler scheduler_ ADAPTAGG_GUARDED_BY(mu_);
  bool accepting_ ADAPTAGG_GUARDED_BY(mu_) = true;
  bool joined_ ADAPTAGG_GUARDED_BY(mu_) = false;
  /// True while Resize is swapping the data plane: submissions park in
  /// pending_ and the completion pump stalls until the swap finishes.
  bool resizing_ ADAPTAGG_GUARDED_BY(mu_) = false;
  uint32_t membership_epoch_ ADAPTAGG_GUARDED_BY(mu_) = 0;
  std::map<uint32_t, std::unique_ptr<Session>> active_
      ADAPTAGG_GUARDED_BY(mu_);
  std::deque<std::unique_ptr<Session>> pending_ ADAPTAGG_GUARDED_BY(mu_);
  size_t pending_high_water_ ADAPTAGG_GUARDED_BY(mu_) = 0;
  CondVar drained_cv_;

  std::atomic<uint32_t> next_query_id_{1};
  std::atomic<int> alive_workers_{0};

  std::vector<std::unique_ptr<NodeTaskQueue>> task_queues_;
  std::vector<std::thread> workers_;

  // Service-level observability: serve.* lives in its own registry,
  // separate from the per-session shards merged into each RunResult.
  MetricRegistry metrics_{true};
  Counter admitted_;
  Counter rejected_queue_full_;
  Counter rejected_memory_;
  Counter cache_hits_;
  Counter cache_misses_;
  Counter cache_skipped_cheap_;
  Counter completed_;
  Counter aborted_;
  Counter replays_;
  Counter resizes_;
  Gauge inflight_high_water_;
  Gauge queue_depth_high_water_;
  Gauge late_frames_dropped_;
  Gauge heartbeats_shared_;
  Histogram latency_us_;
};

}  // namespace adaptagg

#endif  // ADAPTAGG_SERVE_CLUSTER_SERVICE_H_
