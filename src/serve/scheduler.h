#ifndef ADAPTAGG_SERVE_SCHEDULER_H_
#define ADAPTAGG_SERVE_SCHEDULER_H_

#include <cstdint>
#include <string>

#include "agg/agg_spec.h"
#include "cluster/node_context.h"
#include "sim/params.h"

namespace adaptagg {

/// Admission-control knobs of a ClusterService.
struct SchedulerConfig {
  /// Queries executing concurrently; further admissible submissions
  /// queue. Also sizes the service's per-node worker pools.
  int max_inflight = 4;
  /// Bounded submission queue: submissions arriving with the queue full
  /// are rejected with kResourceExhausted (backpressure).
  int queue_capacity = 16;
  /// Total estimated working-set bytes allowed in flight; <= 0 means
  /// unlimited. A query whose estimate exceeds the whole budget is
  /// rejected outright (it could never run); one that merely doesn't
  /// fit *now* queues.
  int64_t memory_budget_bytes = -1;
};

/// Upper-bound estimate of one query's cluster-wide working set, from
/// the same accounting AggHashTable::MemoryBytes reports at runtime:
/// every node may fill its hash-table bound M with slots of
/// partial_width bytes plus the bucket index (16 bytes of overhead per
/// entry covers the bucket word and radix staging amortized). Two
/// tables can be live per node (local phase + merge receiver), hence
/// the factor 2. Deliberately pessimistic: admission reserves for the
/// worst case, the common case releases early.
int64_t EstimateQueryMemoryBytes(const AggregationSpec& spec,
                                 const AlgorithmOptions& options,
                                 const SystemParams& params);

/// Admission-control policy of the serving layer: bounds concurrent
/// queries, total in-flight memory, and the submission queue. Pure
/// bookkeeping — the ClusterService holds the lock and owns the actual
/// pending queue; this object just decides and counts, which keeps the
/// policy unit-testable without threads.
class Scheduler {
 public:
  enum class Decision {
    kAdmit,            ///< run now
    kQueue,            ///< admissible, but wait for capacity
    kRejectQueueFull,  ///< backpressure: queue at capacity
    kRejectMemory,     ///< estimate exceeds the whole memory budget
  };

  explicit Scheduler(SchedulerConfig config) : config_(config) {}

  const SchedulerConfig& config() const { return config_; }

  /// Decides what to do with a submission of estimated size `bytes`
  /// given `queued_now` submissions already waiting. Pure — records
  /// nothing; follow up with Admit() when running it.
  Decision Offer(int64_t bytes, int queued_now) const;

  /// True when a query of `bytes` can start now (a slot is free and the
  /// remaining memory budget fits it). The dequeue check.
  bool CanStart(int64_t bytes) const;

  /// Commits an admission of `bytes`.
  void Admit(int64_t bytes);

  /// Releases a finished query's reservation.
  void Release(int64_t bytes);

  int inflight() const { return inflight_; }
  int inflight_high_water() const { return inflight_high_water_; }
  int64_t inflight_bytes() const { return inflight_bytes_; }

 private:
  SchedulerConfig config_;
  int inflight_ = 0;
  int inflight_high_water_ = 0;
  int64_t inflight_bytes_ = 0;
};

std::string SchedulerDecisionToString(Scheduler::Decision d);

}  // namespace adaptagg

#endif  // ADAPTAGG_SERVE_SCHEDULER_H_
