#include "serve/result_cache.h"

#include <vector>

namespace adaptagg {

std::string QueryFingerprint(const AggregationSpec& spec,
                             const AlgorithmOptions& options) {
  std::string fp = "g:";
  for (int col : spec.group_cols()) {
    fp += std::to_string(col);
    fp += ',';
  }
  fp += "|a:";
  for (const AggDescriptor& agg : spec.aggs()) {
    fp += AggKindToString(agg.kind);
    fp += '(';
    fp += std::to_string(agg.input_col);
    fp += ')';
    fp += agg.name;
    fp += ',';
  }
  // Predicates print canonically (resolved column indices, literal
  // values), so structurally equal trees fingerprint equally.
  fp += "|w:";
  if (options.where != nullptr) fp += options.where->ToString();
  fp += "|h:";
  if (options.having != nullptr) fp += options.having->ToString();
  return fp;
}

std::optional<ResultCache::Entry> ResultCache::Lookup(const Key& key) {
  MutexLock lock(&mu_);
  auto it = entries_.find(key);
  if (it == entries_.end()) return std::nullopt;
  lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
  return it->second.entry;
}

bool ResultCache::Insert(const Key& key, Entry entry) {
  if (max_entries_ == 0) return false;
  MutexLock lock(&mu_);
  if (min_cost_us_ > 0 && entry.sim_time_s * 1e6 <
                              static_cast<double>(min_cost_us_)) {
    // Below the admission floor: re-running this query costs less than
    // the slot it would occupy (and the eviction it might force).
    ++skipped_cheap_;
    return false;
  }
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    it->second.entry = std::move(entry);
    lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
    return true;
  }
  while (entries_.size() >= max_entries_) {
    entries_.erase(lru_.back());
    lru_.pop_back();
    ++evictions_;
  }
  lru_.push_front(key);
  entries_.emplace(key, Slot{std::move(entry), lru_.begin()});
  return true;
}

void ResultCache::InvalidateAll() {
  MutexLock lock(&mu_);
  entries_.clear();
  lru_.clear();
}

size_t ResultCache::size() const {
  MutexLock lock(&mu_);
  return entries_.size();
}

uint64_t ResultCache::evictions() const {
  MutexLock lock(&mu_);
  return evictions_;
}

uint64_t ResultCache::skipped_cheap() const {
  MutexLock lock(&mu_);
  return skipped_cheap_;
}

}  // namespace adaptagg
