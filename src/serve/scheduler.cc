#include "serve/scheduler.h"

#include <algorithm>

namespace adaptagg {

int64_t EstimateQueryMemoryBytes(const AggregationSpec& spec,
                                 const AlgorithmOptions& options,
                                 const SystemParams& params) {
  const int64_t m = options.max_hash_entries > 0 ? options.max_hash_entries
                                                 : params.max_hash_entries;
  const int64_t per_entry = spec.partial_width() + 16;
  const int64_t n = params.num_nodes;
  const int64_t g = options.estimated_groups;
  if (g <= 0) return 2 * m * per_entry * n;
  // With a group estimate the bound tightens: the local phase holds at
  // most min(M, G) groups and the merge phase at most this node's share
  // of the global groups. Still an upper bound (both terms <= M, so the
  // estimate never exceeds the blind 2*M reservation).
  const int64_t local_entries = std::min(m, g);
  const int64_t merge_entries = std::min(m, g / n + 1);
  return (local_entries + merge_entries) * per_entry * n;
}

Scheduler::Decision Scheduler::Offer(int64_t bytes, int queued_now) const {
  if (config_.memory_budget_bytes > 0 &&
      bytes > config_.memory_budget_bytes) {
    return Decision::kRejectMemory;
  }
  if (CanStart(bytes) && queued_now == 0) return Decision::kAdmit;
  if (queued_now >= config_.queue_capacity) {
    return Decision::kRejectQueueFull;
  }
  return Decision::kQueue;
}

bool Scheduler::CanStart(int64_t bytes) const {
  if (inflight_ >= config_.max_inflight) return false;
  if (config_.memory_budget_bytes > 0 &&
      inflight_bytes_ + bytes > config_.memory_budget_bytes) {
    return false;
  }
  return true;
}

void Scheduler::Admit(int64_t bytes) {
  ++inflight_;
  inflight_high_water_ = std::max(inflight_high_water_, inflight_);
  inflight_bytes_ += bytes;
}

void Scheduler::Release(int64_t bytes) {
  --inflight_;
  inflight_bytes_ -= bytes;
}

std::string SchedulerDecisionToString(Scheduler::Decision d) {
  switch (d) {
    case Scheduler::Decision::kAdmit:
      return "admit";
    case Scheduler::Decision::kQueue:
      return "queue";
    case Scheduler::Decision::kRejectQueueFull:
      return "reject-queue-full";
    case Scheduler::Decision::kRejectMemory:
      return "reject-memory";
  }
  return "?";
}

}  // namespace adaptagg
