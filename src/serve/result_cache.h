#ifndef ADAPTAGG_SERVE_RESULT_CACHE_H_
#define ADAPTAGG_SERVE_RESULT_CACHE_H_

#include <cstdint>
#include <list>
#include <map>
#include <optional>
#include <string>
#include <utility>

#include "agg/reference.h"
#include "cluster/node_context.h"
#include "common/mutex.h"

namespace adaptagg {

/// Semantic fingerprint of an aggregate query: everything that
/// determines its result set — group columns, aggregate descriptors,
/// and the WHERE/HAVING predicates — and nothing that doesn't (the
/// algorithm choice and its tuning knobs change how a result is
/// computed, never what it is; every algorithm is differentially tested
/// to produce identical rows). Two submissions with equal fingerprints
/// against the same relation version are the same query.
std::string QueryFingerprint(const AggregationSpec& spec,
                             const AlgorithmOptions& options);

/// LRU cache of gathered result sets, keyed on (relation version,
/// query fingerprint). The version half of the key is the invalidation
/// rule: any relation mutation bumps PartitionedRelation::version(), so
/// entries cached against older versions can never be looked up again —
/// they age out of the LRU ring. InvalidateAll() additionally drops
/// everything at once (explicit invalidation hook for out-of-band
/// mutation). Thread-safe: sessions finish (insert) and submissions
/// look up concurrently.
class ResultCache {
 public:
  struct Key {
    uint64_t relation_version = 0;
    std::string fingerprint;

    bool operator<(const Key& o) const {
      return relation_version != o.relation_version
                 ? relation_version < o.relation_version
                 : fingerprint < o.fingerprint;
    }
  };

  /// One cached result: the gathered rows plus the modeled time the
  /// original run spent producing them (reported alongside hits so
  /// callers can see what the cache saved).
  struct Entry {
    ResultSet results;
    double sim_time_s = 0;
  };

  /// `max_entries` == 0 disables the cache (every Lookup misses, every
  /// Insert is dropped). `min_cost_us` is the admission floor: a result
  /// whose modeled production cost is below it is not worth a slot — a
  /// re-execution is cheaper than the eviction it would force on a more
  /// expensive neighbor. 0 admits everything.
  explicit ResultCache(size_t max_entries, int64_t min_cost_us = 0)
      : max_entries_(max_entries), min_cost_us_(min_cost_us) {}

  ResultCache(const ResultCache&) = delete;
  ResultCache& operator=(const ResultCache&) = delete;

  /// Copy of the cached entry, refreshing its LRU recency; nullopt on
  /// miss.
  std::optional<Entry> Lookup(const Key& key) ADAPTAGG_EXCLUDES(mu_);

  /// Inserts (or refreshes) an entry, evicting the least recently used
  /// one when full. Returns false when the entry was not stored — the
  /// cache is disabled, or the result's modeled cost sits below the
  /// admission floor (counted in skipped_cheap()).
  bool Insert(const Key& key, Entry entry) ADAPTAGG_EXCLUDES(mu_);

  /// Drops every entry (explicit invalidation).
  void InvalidateAll() ADAPTAGG_EXCLUDES(mu_);

  size_t size() const ADAPTAGG_EXCLUDES(mu_);
  uint64_t evictions() const ADAPTAGG_EXCLUDES(mu_);
  /// Inserts refused by the cost-floor admission rule.
  uint64_t skipped_cheap() const ADAPTAGG_EXCLUDES(mu_);

 private:
  struct Slot {
    Entry entry;
    std::list<Key>::iterator lru_pos;
  };

  size_t max_entries_;
  int64_t min_cost_us_;
  mutable Mutex mu_;
  /// Most recently used at the front.
  std::list<Key> lru_ ADAPTAGG_GUARDED_BY(mu_);
  std::map<Key, Slot> entries_ ADAPTAGG_GUARDED_BY(mu_);
  uint64_t evictions_ ADAPTAGG_GUARDED_BY(mu_) = 0;
  uint64_t skipped_cheap_ ADAPTAGG_GUARDED_BY(mu_) = 0;
};

}  // namespace adaptagg

#endif  // ADAPTAGG_SERVE_RESULT_CACHE_H_
