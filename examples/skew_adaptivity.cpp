// Output skew demo (§6.2 / Figure 9): four of eight nodes hold a single
// group each; the other four hold thousands. A static algorithm must
// treat every node the same; the adaptive algorithms let exactly the
// overloaded nodes switch strategy. This is the paper's "better than the
// best traditional algorithm" scenario.

#include <cstdio>

#include "agg/reference.h"
#include "cluster/cluster.h"
#include "core/query.h"
#include "workload/skew.h"

using namespace adaptagg;

int main() {
  OutputSkewSpec sspec;
  sspec.num_nodes = 8;
  sspec.single_group_nodes = 4;
  sspec.num_tuples = 400'000;
  sspec.num_groups = 40'000;
  auto rel = GenerateOutputSkewRelation(sspec);
  if (!rel.ok()) {
    std::fprintf(stderr, "generate: %s\n", rel.status().ToString().c_str());
    return 1;
  }

  SystemParams params = SystemParams::Cluster8();
  params.num_tuples = sspec.num_tuples;
  params.max_hash_entries = 2'000;

  auto query = MakeBenchQuery(&rel->schema());
  if (!query.ok()) return 1;

  Cluster cluster(params);
  std::printf(
      "8 nodes, %lld tuples, %lld groups; nodes 0-3 hold ONE group each\n\n",
      static_cast<long long>(sspec.num_tuples),
      static_cast<long long>(sspec.num_groups));

  Query q;
  q.spec = *query;
  double best_static = 0, adaptive_time = 0;
  for (AlgorithmKind kind :
       {AlgorithmKind::kTwoPhase, AlgorithmKind::kRepartitioning,
        AlgorithmKind::kAdaptiveTwoPhase,
        AlgorithmKind::kAdaptiveRepartitioning}) {
    RunResult run = q.Execute(cluster, *rel, kind);
    if (!run.status.ok()) {
      std::fprintf(stderr, "%s: %s\n", AlgorithmKindToString(kind).c_str(),
                   run.status.ToString().c_str());
      return 1;
    }
    std::printf("%-6s modeled=%8.3fs  spilled=%-8lld  per-node switch: ",
                AlgorithmKindToString(kind).c_str(), run.sim_time_s,
                static_cast<long long>(run.total_spilled_records()));
    for (const auto& s : run.node_stats) {
      std::printf("%c", s.switched ? 'S' : '.');
    }
    std::printf("\n");
    if (kind == AlgorithmKind::kTwoPhase) {
      best_static = run.sim_time_s;
    } else if (kind == AlgorithmKind::kRepartitioning) {
      best_static = std::min(best_static, run.sim_time_s);
    } else if (kind == AlgorithmKind::kAdaptiveTwoPhase) {
      adaptive_time = run.sim_time_s;
    }
  }

  std::printf(
      "\nA-2P switches only the overloaded nodes (pattern ....SSSS), so it"
      "\nruns %.2fx the best static algorithm (<1 means faster).\n",
      adaptive_time / best_static);
  return 0;
}
