// TPC-D-flavored workload (the paper's motivation: 15 of 17 TPC-D
// queries aggregate, with result sizes from a handful of rows to
// millions). Runs three queries spanning the selectivity spectrum on the
// same lineitem relation and shows how the adaptive algorithms handle
// each without being told the group count:
//
//   Q1-like   : GROUP BY returnflag, linestatus     (6 groups)
//   per-part  : GROUP BY l_partkey                  (mid cardinality)
//   DISTINCT  : SELECT DISTINCT l_orderkey          (~|R|/4 groups)

#include <cstdio>

#include "agg/reference.h"
#include "cluster/cluster.h"
#include "core/query.h"
#include "workload/tpcd.h"

using namespace adaptagg;

namespace {

int RunQuery(const char* name, Cluster& cluster,
             const AggregationSpec& query, PartitionedRelation& rel) {
  std::printf("--- %s ---\n", name);
  Query q;
  q.spec = query;
  for (AlgorithmKind kind :
       {AlgorithmKind::kTwoPhase, AlgorithmKind::kRepartitioning,
        AlgorithmKind::kAdaptiveTwoPhase}) {
    RunResult run = q.Execute(cluster, rel, kind);
    if (!run.status.ok()) {
      std::fprintf(stderr, "%s failed: %s\n",
                   AlgorithmKindToString(kind).c_str(),
                   run.status.ToString().c_str());
      return 1;
    }
    std::printf("  %-6s rows=%-8lld modeled=%8.4fs switched=%d/%d\n",
                AlgorithmKindToString(kind).c_str(),
                static_cast<long long>(run.results.num_rows()),
                run.sim_time_s, run.nodes_switched(),
                cluster.params().num_nodes);
  }
  auto ref = ReferenceAggregate(query, rel);
  if (!ref.ok()) return 1;
  std::printf("  reference rows=%lld\n\n",
              static_cast<long long>(ref->num_rows()));
  return 0;
}

}  // namespace

int main() {
  TpcdSpec tspec;
  tspec.num_nodes = 4;
  tspec.num_rows = 200'000;
  auto rel = GenerateLineitem(tspec);
  if (!rel.ok()) {
    std::fprintf(stderr, "generate: %s\n", rel.status().ToString().c_str());
    return 1;
  }
  std::printf("lineitem: %lld rows on %d nodes, schema %s\n\n",
              static_cast<long long>(rel->total_tuples()), tspec.num_nodes,
              rel->schema().ToString().c_str());

  SystemParams params;
  params.num_nodes = tspec.num_nodes;
  params.num_tuples = tspec.num_rows;
  params.max_hash_entries = 5'000;
  Cluster cluster(params);

  auto q1 = MakeQ1Query(&rel->schema());
  auto per_part = MakePerPartQuery(&rel->schema());
  auto distinct = MakeDistinctOrdersQuery(&rel->schema());
  if (!q1.ok() || !per_part.ok() || !distinct.ok()) {
    std::fprintf(stderr, "query build failed\n");
    return 1;
  }

  if (RunQuery("Q1 pricing summary (6 groups)", cluster, *q1, *rel) != 0) {
    return 1;
  }
  if (RunQuery("per-part COUNT/SUM (mid cardinality)", cluster, *per_part,
               *rel) != 0) {
    return 1;
  }
  if (RunQuery("DISTINCT l_orderkey (duplicate elimination)", cluster,
               *distinct, *rel) != 0) {
    return 1;
  }

  std::printf(
      "Note how A-2P stays in two-phase mode for Q1 but switches for the\n"
      "duplicate-elimination query — the adaptive behavior the paper\n"
      "proposes, with no optimizer estimate needed.\n");
  return 0;
}
