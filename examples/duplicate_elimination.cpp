// Duplicate elimination (SELECT DISTINCT) — the paper's footnote 2 case
// where the "number of groups" is comparable to the input size, i.e. the
// regime where Repartitioning (and the adaptive algorithms, which will
// choose it) must win. DISTINCT is just aggregation with zero aggregate
// functions in this library.

#include <cstdio>

#include "agg/reference.h"
#include "cluster/cluster.h"
#include "core/query.h"
#include "workload/generator.h"

using namespace adaptagg;

int main() {
  WorkloadSpec workload;
  workload.num_nodes = 4;
  workload.num_tuples = 200'000;
  // Half the tuples are duplicates: |result| = |R| / 2, the paper's
  // upper end of the selectivity range (S = 0.5).
  workload.num_groups = 100'000;
  auto rel = GenerateRelation(workload);
  if (!rel.ok()) {
    std::fprintf(stderr, "generate: %s\n", rel.status().ToString().c_str());
    return 1;
  }

  // SELECT DISTINCT g, i.e. group by g with no aggregates.
  auto distinct = MakeDistinctSpec(&rel->schema(), {kBenchGroupCol});
  if (!distinct.ok()) {
    std::fprintf(stderr, "spec: %s\n",
                 distinct.status().ToString().c_str());
    return 1;
  }

  SystemParams params;
  params.num_nodes = workload.num_nodes;
  params.num_tuples = workload.num_tuples;
  params.max_hash_entries = 4'000;
  Cluster cluster(params);

  std::printf("SELECT DISTINCT over %lld tuples (%lld distinct values)\n\n",
              static_cast<long long>(workload.num_tuples),
              static_cast<long long>(workload.num_groups));
  std::printf("%-6s  %10s  %10s  %8s  %s\n", "algo", "modeled(s)",
              "distinct", "spilled", "switched");
  Query q;
  q.spec = *distinct;
  for (AlgorithmKind kind : AllAlgorithms()) {
    RunResult run = q.Execute(cluster, *rel, kind);
    if (!run.status.ok()) {
      std::fprintf(stderr, "%s: %s\n", AlgorithmKindToString(kind).c_str(),
                   run.status.ToString().c_str());
      return 1;
    }
    std::printf("%-6s  %10.4f  %10lld  %8lld  %d/%d\n",
                AlgorithmKindToString(kind).c_str(), run.sim_time_s,
                static_cast<long long>(run.results.num_rows()),
                static_cast<long long>(run.total_spilled_records()),
                run.nodes_switched(), params.num_nodes);
  }

  auto ref = ReferenceAggregate(*distinct, *rel);
  if (!ref.ok()) return 1;
  std::printf("\nreference distinct count: %lld\n",
              static_cast<long long>(ref->num_rows()));
  std::printf(
      "Repartitioning-style execution avoids both the duplicated\n"
      "aggregation work and most of the intermediate I/O here; A-2P and\n"
      "A-Rep discover that on their own.\n");
  return 0;
}
