// Quickstart: generate a partitioned relation, run an adaptive parallel
// aggregation on a simulated shared-nothing cluster, and read the result.
//
//   SELECT g, COUNT(*), SUM(v) FROM R GROUP BY g
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "agg/reference.h"
#include "serve/cluster_service.h"
#include "workload/generator.h"

using namespace adaptagg;

int main() {
  // 1. A 4-node cluster with the paper's Table 1 cost parameters.
  SystemParams params;
  params.num_nodes = 4;
  params.num_tuples = 100'000;
  params.max_hash_entries = 2'000;  // per-node hash table bound M

  // 2. A synthetic relation: 100K 100-byte tuples, 5000 groups,
  //    round-robin partitioned over the 4 nodes.
  WorkloadSpec workload;
  workload.num_nodes = params.num_nodes;
  workload.num_tuples = params.num_tuples;
  workload.num_groups = 5'000;
  auto rel = GenerateRelation(workload);
  if (!rel.ok()) {
    std::fprintf(stderr, "generate: %s\n", rel.status().ToString().c_str());
    return 1;
  }

  // 3. The query: COUNT(*) and SUM(v) grouped by g.
  auto query = MakeBenchQuery(&rel->schema());
  if (!query.ok()) {
    std::fprintf(stderr, "query: %s\n", query.status().ToString().c_str());
    return 1;
  }

  // 4. Start the resident serving layer and submit the query with the
  //    Adaptive Two Phase algorithm (§3.2): it starts as Two Phase and
  //    each node independently switches to repartitioning if its hash
  //    table overflows. 5000 groups > M=2000, so they all will.
  ServiceConfig config;
  config.params = params;
  auto service = ClusterService::Start(config, &*rel);
  if (!service.ok()) {
    std::fprintf(stderr, "start: %s\n",
                 service.status().ToString().c_str());
    return 1;
  }

  ServeQuery submission;
  submission.spec = *query;
  submission.algorithm = AlgorithmKind::kAdaptiveTwoPhase;
  auto ticket = (*service)->Submit(std::move(submission));
  if (!ticket.ok()) {
    std::fprintf(stderr, "submit: %s\n", ticket.status().ToString().c_str());
    return 1;
  }
  RunResult run = (*ticket)->Wait();
  if (!run.status.ok()) {
    std::fprintf(stderr, "run: %s\n", run.status.ToString().c_str());
    return 1;
  }

  std::printf("result rows        : %lld\n",
              static_cast<long long>(run.results.num_rows()));
  std::printf("modeled time       : %.4f s\n", run.sim_time_s);
  std::printf("wall time          : %.4f s\n", run.wall_time_s);
  std::printf("nodes that switched: %d of %d\n", run.nodes_switched(),
              params.num_nodes);
  for (int i = 0; i < params.num_nodes; ++i) {
    std::printf("  node %d: %s\n", i, run.clocks[i].ToString().c_str());
  }

  // 5. Peek at a few result rows (g, cnt, sum_v).
  run.results.Sort();
  std::printf("first rows:\n");
  for (int64_t i = 0; i < std::min<int64_t>(5, run.results.num_rows());
       ++i) {
    TupleView row = run.results.row(i);
    std::printf("  g=%lld cnt=%lld sum_v=%lld\n",
                static_cast<long long>(row.GetInt64(0)),
                static_cast<long long>(row.GetInt64(1)),
                static_cast<long long>(row.GetInt64(2)));
  }

  // 6. Cross-check against the single-threaded reference oracle.
  auto expected = ReferenceAggregate(*query, *rel);
  if (!expected.ok() || !ResultSetsEqual(run.results, *expected)) {
    std::fprintf(stderr, "result mismatch against reference!\n");
    return 1;
  }
  std::printf("verified against reference aggregate: OK\n");

  // 7. Resubmit the same query: the service answers from its result
  //    cache without touching the data plane.
  ServeQuery again;
  again.spec = *query;
  again.algorithm = AlgorithmKind::kAdaptiveTwoPhase;
  auto cached = (*service)->Submit(std::move(again));
  if (!cached.ok()) return 1;
  const RunResult& hit = (*cached)->Wait();
  std::printf("resubmitted: from_cache=%s rows=%lld\n",
              hit.from_cache ? "true" : "false",
              static_cast<long long>(hit.results.num_rows()));
  return 0;
}
