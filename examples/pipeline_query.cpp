// Full SQL-shaped query through the builder API (§2's operator
// pipeline): WHERE is evaluated by a select operator feeding each node's
// aggregation, HAVING after grouping on the emitted rows.
//
//   SELECT g, COUNT(*) AS cnt, SUM(v) AS total, MAX(v) AS peak
//   FROM R
//   WHERE v >= 25000 AND v < 75000
//   GROUP BY g
//   HAVING cnt >= 75

#include <cstdio>

#include "core/query.h"
#include "workload/generator.h"

using namespace adaptagg;

int main() {
  WorkloadSpec workload;
  workload.num_nodes = 4;
  workload.num_tuples = 300'000;
  workload.num_groups = 2'000;
  auto rel = GenerateRelation(workload);
  if (!rel.ok()) {
    std::fprintf(stderr, "generate: %s\n", rel.status().ToString().c_str());
    return 1;
  }

  auto query = QueryBuilder(&rel->schema())
                   .Where(And(Ge(ColNamed("v"), Lit(int64_t{25'000})),
                              Lt(ColNamed("v"), Lit(int64_t{75'000}))))
                   .GroupBy({"g"})
                   .Count("cnt")
                   .Sum("v", "total")
                   .Max("v", "peak")
                   .Having(Ge(ColNamed("cnt"), Lit(int64_t{75})))
                   .Build();
  if (!query.ok()) {
    std::fprintf(stderr, "build: %s\n", query.status().ToString().c_str());
    return 1;
  }
  std::printf("%s\n\n", query->ToString().c_str());

  SystemParams params;
  params.num_nodes = workload.num_nodes;
  params.num_tuples = workload.num_tuples;
  params.max_hash_entries = 1'000;
  Cluster cluster(params);

  for (AlgorithmKind kind :
       {AlgorithmKind::kTwoPhase, AlgorithmKind::kAdaptiveTwoPhase}) {
    RunResult run = query->Execute(cluster, *rel, kind);
    if (!run.status.ok()) {
      std::fprintf(stderr, "%s: %s\n", AlgorithmKindToString(kind).c_str(),
                   run.status.ToString().c_str());
      return 1;
    }
    int64_t dropped = 0, scanned = 0;
    for (const auto& s : run.node_stats) {
      dropped += s.rows_filtered_by_having;
      scanned += s.tuples_scanned;
    }
    std::printf(
        "%-6s modeled=%.4fs  tuples passing WHERE=%lld  groups kept=%lld"
        "  dropped by HAVING=%lld  switched=%d/%d\n",
        AlgorithmKindToString(kind).c_str(), run.sim_time_s,
        static_cast<long long>(scanned),
        static_cast<long long>(run.results.num_rows()),
        static_cast<long long>(dropped), run.nodes_switched(),
        params.num_nodes);
  }

  // Show a few of the surviving groups.
  RunResult run =
      query->Execute(cluster, *rel, AlgorithmKind::kAdaptiveTwoPhase);
  if (!run.status.ok()) return 1;
  run.results.Sort();
  std::printf("\n  g     cnt   total     peak\n");
  for (int64_t i = 0; i < std::min<int64_t>(5, run.results.num_rows());
       ++i) {
    TupleView row = run.results.row(i);
    std::printf("  %-5lld %-5lld %-9lld %lld\n",
                static_cast<long long>(row.GetInt64(0)),
                static_cast<long long>(row.GetInt64(1)),
                static_cast<long long>(row.GetInt64(2)),
                static_cast<long long>(row.GetInt64(3)));
  }
  return 0;
}
