// Runs the same aggregation over REAL loopback TCP sockets instead of
// in-process channels — the engine's stand-in for the paper's PVM
// cluster messaging. Demonstrates that the algorithms only depend on the
// Transport interface, and that the serving layer multiplexes query
// sessions over one physical mesh regardless of what carries the frames.

#include <cstdio>

#include "agg/reference.h"
#include "serve/cluster_service.h"
#include "workload/generator.h"

using namespace adaptagg;

int main() {
  WorkloadSpec workload;
  workload.num_nodes = 4;
  workload.num_tuples = 50'000;
  workload.num_groups = 2'000;
  auto rel = GenerateRelation(workload);
  if (!rel.ok()) {
    std::fprintf(stderr, "generate: %s\n", rel.status().ToString().c_str());
    return 1;
  }
  auto query = MakeBenchQuery(&rel->schema());
  if (!query.ok()) return 1;

  SystemParams params;
  params.num_nodes = workload.num_nodes;
  params.num_tuples = workload.num_tuples;
  params.max_hash_entries = 1'000;

  ServiceConfig config;
  config.params = params;
  config.transport_factory = [](int n) {
    // 4 consecutive loopback ports; every pair of nodes gets a socket.
    return MakeTcpMesh(n, 46100);
  };
  auto service = ClusterService::Start(config, &*rel);
  if (!service.ok()) {
    std::fprintf(stderr, "start: %s\n",
                 service.status().ToString().c_str());
    return 1;
  }

  std::printf("running A-2P over a %d-node TCP loopback mesh...\n",
              params.num_nodes);
  ServeQuery submission;
  submission.spec = *query;
  submission.algorithm = AlgorithmKind::kAdaptiveTwoPhase;
  auto ticket = (*service)->Submit(std::move(submission));
  if (!ticket.ok()) {
    std::fprintf(stderr, "submit: %s\n", ticket.status().ToString().c_str());
    return 1;
  }
  RunResult run = (*ticket)->Wait();
  if (!run.status.ok()) {
    std::fprintf(stderr, "run: %s\n", run.status.ToString().c_str());
    return 1;
  }
  std::printf("rows=%lld modeled=%.4fs wall=%.4fs switched=%d/%d\n",
              static_cast<long long>(run.results.num_rows()),
              run.sim_time_s, run.wall_time_s, run.nodes_switched(),
              params.num_nodes);

  auto expected = ReferenceAggregate(*query, *rel);
  if (!expected.ok() || !ResultSetsEqual(run.results, *expected)) {
    std::fprintf(stderr, "MISMATCH against reference\n");
    return 1;
  }
  std::printf("verified against reference aggregate: OK\n");
  return 0;
}
