#include <gtest/gtest.h>

#include "test_util.h"

namespace adaptagg {
namespace {

using testing_util::SmallClusterParams;

// Real loopback sockets instead of in-process channels: the engine must
// produce identical results over a genuine network transport.
TEST(TcpCluster, TwoPhaseOverSockets) {
  WorkloadSpec wspec;
  wspec.num_nodes = 3;
  wspec.num_tuples = 6'000;
  wspec.num_groups = 200;
  ASSERT_OK_AND_ASSIGN(PartitionedRelation rel, GenerateRelation(wspec));
  ASSERT_OK_AND_ASSIGN(AggregationSpec spec,
                       MakeBenchQuery(&rel.schema()));
  ASSERT_OK_AND_ASSIGN(ResultSet expected, ReferenceAggregate(spec, rel));

  Cluster cluster(SmallClusterParams(3, wspec.num_tuples));
  cluster.set_transport_factory(
      [](int n) { return MakeTcpMesh(n, 42150); });
  RunResult run =
      cluster.Run(*MakeAlgorithm(AlgorithmKind::kTwoPhase), spec, rel);
  ASSERT_OK(run.status);
  EXPECT_TRUE(ResultSetsEqual(run.results, expected));
}

TEST(TcpCluster, AdaptiveAlgorithmsOverSockets) {
  WorkloadSpec wspec;
  wspec.num_nodes = 3;
  wspec.num_tuples = 6'000;
  wspec.num_groups = 1'500;  // forces adaptive switching with M=256
  ASSERT_OK_AND_ASSIGN(PartitionedRelation rel, GenerateRelation(wspec));
  ASSERT_OK_AND_ASSIGN(AggregationSpec spec,
                       MakeBenchQuery(&rel.schema()));
  ASSERT_OK_AND_ASSIGN(ResultSet expected, ReferenceAggregate(spec, rel));

  SystemParams params = SmallClusterParams(3, wspec.num_tuples, 256);
  int port = 42250;
  for (AlgorithmKind kind : {AlgorithmKind::kAdaptiveTwoPhase,
                             AlgorithmKind::kAdaptiveRepartitioning,
                             AlgorithmKind::kSampling}) {
    SCOPED_TRACE(AlgorithmKindToString(kind));
    Cluster cluster(params);
    int base = port;
    port += 10;
    cluster.set_transport_factory(
        [base](int n) { return MakeTcpMesh(n, base); });
    AlgorithmOptions opts;
    opts.init_seg = 500;
    RunResult run = cluster.Run(*MakeAlgorithm(kind), spec, rel, opts);
    ASSERT_OK(run.status);
    EXPECT_TRUE(ResultSetsEqual(run.results, expected));
  }
}

}  // namespace
}  // namespace adaptagg
