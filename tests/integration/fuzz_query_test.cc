#include <gtest/gtest.h>

#include "common/random.h"
#include "test_util.h"

namespace adaptagg {
namespace {

using testing_util::SmallClusterParams;

// Randomized end-to-end property testing: random schemas, random
// GROUP BY column sets, random aggregate lists, random data
// distributions and cluster shapes — every run of every algorithm must
// match the independent single-threaded oracle bit-for-bit (modulo
// double summation order). Each seed is an independent scenario; the
// suite is deterministic per seed.

struct Scenario {
  Schema schema;
  std::unique_ptr<PartitionedRelation> rel;
  std::unique_ptr<AggregationSpec> spec;
  int num_nodes = 0;
  int64_t max_hash_entries = 0;
};

Result<Scenario> MakeScenario(uint64_t seed) {
  Prng prng(seed);
  Scenario out;

  // Random schema: 2-6 columns, mixed types; at least one int64 for
  // values.
  int num_cols = 2 + static_cast<int>(prng.NextBelow(5));
  std::vector<Field> fields;
  fields.push_back({"c0", DataType::kInt64, 8});  // always a group col
  for (int c = 1; c < num_cols; ++c) {
    Field f;
    f.name = "c" + std::to_string(c);
    switch (prng.NextBelow(3)) {
      case 0:
        f.type = DataType::kInt64;
        f.width = 8;
        break;
      case 1:
        f.type = DataType::kDouble;
        f.width = 8;
        break;
      default:
        f.type = DataType::kBytes;
        f.width = 1 + static_cast<int>(prng.NextBelow(12));
        break;
    }
    fields.push_back(std::move(f));
  }
  out.schema = Schema(std::move(fields));

  // Random cluster/workload shape.
  out.num_nodes = 1 + static_cast<int>(prng.NextBelow(5));
  out.max_hash_entries = 16 << prng.NextBelow(6);  // 16..512
  int64_t tuples = 2'000 + static_cast<int64_t>(prng.NextBelow(6'000));
  int64_t groups = 1 + static_cast<int64_t>(prng.NextBelow(2'000));

  ADAPTAGG_ASSIGN_OR_RETURN(
      PartitionedRelation rel,
      PartitionedRelation::Create(out.schema, out.num_nodes));
  out.rel = std::make_unique<PartitionedRelation>(std::move(rel));
  const Schema& s = out.rel->schema();

  TupleBuffer t(&s);
  for (int64_t i = 0; i < tuples; ++i) {
    uint64_t g = prng.NextBelow(static_cast<uint64_t>(groups));
    for (int c = 0; c < s.num_fields(); ++c) {
      switch (s.field(c).type) {
        case DataType::kInt64:
          t.SetInt64(c, c == 0 ? static_cast<int64_t>(g)
                               : static_cast<int64_t>(prng.NextBelow(
                                     1'000'000)) -
                                     500'000);
          break;
        case DataType::kDouble:
          t.SetDouble(c, static_cast<double>(prng.NextBelow(1'000'000)) /
                             1'009.0);
          break;
        case DataType::kBytes:
          t.SetBytes(c, std::string(1, static_cast<char>(
                                           'a' + g % 7)));
          break;
      }
    }
    ADAPTAGG_RETURN_IF_ERROR(out.rel->Append(
        static_cast<int>(prng.NextBelow(
            static_cast<uint64_t>(out.num_nodes))),
        t.view()));
  }
  ADAPTAGG_RETURN_IF_ERROR(out.rel->Flush());

  // Random query: group by c0 plus possibly one more column; 0-4
  // aggregates over random numeric columns.
  std::vector<int> group_cols = {0};
  if (prng.NextBelow(2) == 1 && s.num_fields() > 1) {
    group_cols.push_back(1 + static_cast<int>(prng.NextBelow(
                                 static_cast<uint64_t>(s.num_fields() - 1))));
  }
  std::vector<int> numeric_cols;
  for (int c = 0; c < s.num_fields(); ++c) {
    if (s.field(c).type != DataType::kBytes) numeric_cols.push_back(c);
  }
  std::vector<AggDescriptor> aggs;
  int num_aggs = static_cast<int>(prng.NextBelow(5));
  static const AggKind kKinds[] = {AggKind::kCount, AggKind::kSum,
                                   AggKind::kAvg, AggKind::kMin,
                                   AggKind::kMax};
  for (int a = 0; a < num_aggs; ++a) {
    AggKind kind = kKinds[prng.NextBelow(5)];
    AggDescriptor d;
    d.kind = kind;
    d.name = "a" + std::to_string(a);
    d.input_col =
        kind == AggKind::kCount
            ? -1
            : numeric_cols[prng.NextBelow(numeric_cols.size())];
    aggs.push_back(std::move(d));
  }
  // Zero aggregates with one group column is DISTINCT: fine. But make
  // sure the spec is non-trivial at least sometimes.
  ADAPTAGG_ASSIGN_OR_RETURN(
      AggregationSpec spec,
      AggregationSpec::Make(&out.rel->schema(), std::move(group_cols),
                            std::move(aggs)));
  out.spec = std::make_unique<AggregationSpec>(std::move(spec));
  return out;
}

class FuzzQuery : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FuzzQuery, AllAlgorithmsMatchOracle) {
  ASSERT_OK_AND_ASSIGN(Scenario sc, MakeScenario(GetParam()));
  ASSERT_OK_AND_ASSIGN(ResultSet expected,
                       ReferenceAggregate(*sc.spec, *sc.rel));
  SystemParams params = SmallClusterParams(
      sc.num_nodes, sc.rel->total_tuples(), sc.max_hash_entries);
  Cluster cluster(params);
  AlgorithmOptions opts;
  opts.init_seg = 300;
  for (AlgorithmKind kind : AllAlgorithms()) {
    SCOPED_TRACE(AlgorithmKindToString(kind));
    RunResult run = cluster.Run(*MakeAlgorithm(kind), *sc.spec, *sc.rel,
                                opts);
    ASSERT_OK(run.status);
    EXPECT_TRUE(ResultSetsEqual(run.results, expected))
        << "seed=" << GetParam() << " nodes=" << sc.num_nodes
        << " M=" << sc.max_hash_entries << " got "
        << run.results.num_rows() << " rows, expected "
        << expected.num_rows();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzQuery,
                         ::testing::Range<uint64_t>(1, 21));

}  // namespace
}  // namespace adaptagg
