#include <gtest/gtest.h>

#include "model/cost_model.h"
#include "test_util.h"

namespace adaptagg {
namespace {

using testing_util::SmallClusterParams;

// The reproduction's keystone: the execution engine charges the same
// Table 1 costs the analytical model computes in closed form, so on the
// same configuration the two must agree — not to the decimal (the model
// idealizes distinct-value counts and page packing; the engine measures
// them), but within a modest band, and they must agree on *ordering*
// (which algorithm wins where), since that is what the paper's figures
// claim.

struct Agreement {
  double engine_s = 0;
  double model_s = 0;
  double ratio() const { return engine_s / model_s; }
};

Result<Agreement> Measure(AlgorithmKind kind, const SystemParams& params,
                          int64_t groups, uint64_t seed) {
  WorkloadSpec wspec;
  wspec.num_nodes = params.num_nodes;
  wspec.num_tuples = params.num_tuples;
  wspec.num_groups = groups;
  wspec.seed = seed;
  ADAPTAGG_ASSIGN_OR_RETURN(PartitionedRelation rel,
                            GenerateRelation(wspec));
  ADAPTAGG_ASSIGN_OR_RETURN(AggregationSpec spec,
                            MakeBenchQuery(&rel.schema()));
  Cluster cluster(params);
  AlgorithmOptions opts;
  opts.gather_results = false;
  RunResult run = cluster.Run(*MakeAlgorithm(kind), spec, rel, opts);
  ADAPTAGG_RETURN_IF_ERROR(run.status);

  CostModel::Config cfg;
  cfg.params = params;
  CostModel model(cfg);
  Agreement out;
  out.engine_s = run.sim_time_s;
  out.model_s = model.Time(kind, wspec.selectivity());
  return out;
}

SystemParams AgreementParams() {
  // High-bandwidth so no serialized-wire term muddies the comparison;
  // paper-default M relative to the scaled-down relation.
  SystemParams p;
  p.num_nodes = 8;
  p.num_tuples = 200'000;
  p.max_hash_entries = 1'000;
  p.network = NetworkKind::kHighBandwidth;
  return p;
}

class ModelEngineAgreement
    : public ::testing::TestWithParam<std::tuple<AlgorithmKind, int64_t>> {
};

TEST_P(ModelEngineAgreement, WithinBand) {
  auto [kind, groups] = GetParam();
  SystemParams params = AgreementParams();
  ASSERT_OK_AND_ASSIGN(Agreement a, Measure(kind, params, groups, 7));
  // The model idealizes balance: with a handful of groups over 8 nodes
  // the engine's busiest node carries 2-3 groups where the model assumes
  // an even spread, so allow up to ~2x there; agreement tightens as
  // groups grow.
  const double upper = groups < 100 ? 2.2 : 1.7;
  EXPECT_GT(a.ratio(), 0.6) << "engine " << a.engine_s << "s vs model "
                            << a.model_s << "s";
  EXPECT_LT(a.ratio(), upper) << "engine " << a.engine_s << "s vs model "
                              << a.model_s << "s";
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ModelEngineAgreement,
    ::testing::Combine(
        ::testing::Values(AlgorithmKind::kTwoPhase,
                          AlgorithmKind::kRepartitioning,
                          AlgorithmKind::kCentralizedTwoPhase,
                          AlgorithmKind::kAdaptiveTwoPhase),
        ::testing::Values<int64_t>(10, 2'000, 50'000)),
    [](const ::testing::TestParamInfo<std::tuple<AlgorithmKind, int64_t>>&
           info) {
      std::string name =
          AlgorithmKindToString(std::get<0>(info.param)) + "_g" +
          std::to_string(std::get<1>(info.param));
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

TEST(ModelEngineAgreement, CrossoverOrderingMatches) {
  // The model and the engine must agree on who wins at the extremes of
  // the selectivity range (Figure 1's claim).
  SystemParams params = AgreementParams();
  CostModel::Config cfg;
  cfg.params = params;
  CostModel model(cfg);

  // Low selectivity: 2P beats Rep in both worlds.
  {
    int64_t groups = 10;
    double s = static_cast<double>(groups) / params.num_tuples;
    ASSERT_OK_AND_ASSIGN(
        Agreement tp, Measure(AlgorithmKind::kTwoPhase, params, groups, 3));
    ASSERT_OK_AND_ASSIGN(
        Agreement rep,
        Measure(AlgorithmKind::kRepartitioning, params, groups, 3));
    EXPECT_LT(tp.engine_s, rep.engine_s);
    EXPECT_LT(model.Time(AlgorithmKind::kTwoPhase, s),
              model.Time(AlgorithmKind::kRepartitioning, s));
  }
  // High selectivity: Rep beats 2P in both worlds.
  {
    int64_t groups = 100'000;  // S = 0.5
    double s = static_cast<double>(groups) / params.num_tuples;
    ASSERT_OK_AND_ASSIGN(
        Agreement tp, Measure(AlgorithmKind::kTwoPhase, params, groups, 4));
    ASSERT_OK_AND_ASSIGN(
        Agreement rep,
        Measure(AlgorithmKind::kRepartitioning, params, groups, 4));
    EXPECT_LT(rep.engine_s, tp.engine_s);
    EXPECT_LT(model.Time(AlgorithmKind::kRepartitioning, s),
              model.Time(AlgorithmKind::kTwoPhase, s));
  }
}

TEST(ModelEngineAgreement, AdaptiveTracksBestInEngineToo) {
  // Figure 3 on the engine: A-2P within a modest factor of the better
  // static algorithm at both extremes.
  SystemParams params = AgreementParams();
  for (int64_t groups : {10LL, 100'000LL}) {
    ASSERT_OK_AND_ASSIGN(
        Agreement tp,
        Measure(AlgorithmKind::kTwoPhase, params, groups, 5));
    ASSERT_OK_AND_ASSIGN(
        Agreement rep,
        Measure(AlgorithmKind::kRepartitioning, params, groups, 5));
    ASSERT_OK_AND_ASSIGN(
        Agreement a2p,
        Measure(AlgorithmKind::kAdaptiveTwoPhase, params, groups, 5));
    double best = std::min(tp.engine_s, rep.engine_s);
    EXPECT_LE(a2p.engine_s, 1.35 * best) << "groups=" << groups;
  }
}

}  // namespace
}  // namespace adaptagg
