#include <gtest/gtest.h>

#include <tuple>

#include "test_util.h"

namespace adaptagg {
namespace {

using testing_util::ExpectMatchesReference;
using testing_util::SmallClusterParams;

// ---------------------------------------------------------------------------
// The central correctness property of the whole system: every algorithm,
// on every workload shape, produces exactly the rows of the
// single-threaded reference oracle. Parameterized over
// (algorithm x group count x distribution x hash-table bound) so the
// in-memory, spilling, and adaptive-switch paths are all exercised.

using PropertyParam =
    std::tuple<AlgorithmKind, int64_t /*groups*/,
               GroupDistribution, int64_t /*max_hash_entries*/>;

class CorrectnessProperty : public ::testing::TestWithParam<PropertyParam> {
};

TEST_P(CorrectnessProperty, MatchesReference) {
  const auto [kind, groups, distribution, max_entries] = GetParam();

  WorkloadSpec wspec;
  wspec.num_nodes = 4;
  wspec.num_tuples = 12'000;
  wspec.num_groups = groups;
  wspec.distribution = distribution;
  wspec.zipf_theta = distribution == GroupDistribution::kZipf ? 0.8 : 0.0;
  wspec.seed = 0xfeed + static_cast<uint64_t>(groups);
  ASSERT_OK_AND_ASSIGN(PartitionedRelation rel, GenerateRelation(wspec));
  ASSERT_OK_AND_ASSIGN(AggregationSpec spec,
                       MakeBenchQuery(&rel.schema()));

  SystemParams params =
      SmallClusterParams(4, wspec.num_tuples, max_entries);
  AlgorithmOptions opts;
  opts.init_seg = 500;  // small enough for A-Rep to judge mid-scan
  ExpectMatchesReference(kind, params, spec, rel, opts);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CorrectnessProperty,
    ::testing::Combine(
        ::testing::ValuesIn(AllAlgorithms()),
        ::testing::Values<int64_t>(1, 7, 400, 6'000),
        ::testing::Values(GroupDistribution::kUniform,
                          GroupDistribution::kZipf,
                          GroupDistribution::kSequential),
        ::testing::Values<int64_t>(64, 2'048)),
    [](const ::testing::TestParamInfo<PropertyParam>& info) {
      std::string name =
          AlgorithmKindToString(std::get<0>(info.param)) + "_g" +
          std::to_string(std::get<1>(info.param)) + "_" +
          GroupDistributionToString(std::get<2>(info.param)) + "_m" +
          std::to_string(std::get<3>(info.param));
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

// ---------------------------------------------------------------------------
// Placement must not affect the answer, only the work distribution.

class PlacementProperty
    : public ::testing::TestWithParam<std::tuple<AlgorithmKind, Placement>> {
};

TEST_P(PlacementProperty, PlacementInvariant) {
  const auto [kind, placement] = GetParam();
  WorkloadSpec wspec;
  wspec.num_nodes = 3;
  wspec.num_tuples = 9'000;
  wspec.num_groups = 250;
  wspec.placement = placement;
  ASSERT_OK_AND_ASSIGN(PartitionedRelation rel, GenerateRelation(wspec));
  ASSERT_OK_AND_ASSIGN(AggregationSpec spec,
                       MakeBenchQuery(&rel.schema()));
  ExpectMatchesReference(kind, SmallClusterParams(3, wspec.num_tuples),
                         spec, rel);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PlacementProperty,
    ::testing::Combine(::testing::ValuesIn(Figure8Algorithms()),
                       ::testing::Values(Placement::kRoundRobin,
                                         Placement::kHashOnGroup,
                                         Placement::kRandom)),
    [](const ::testing::TestParamInfo<std::tuple<AlgorithmKind, Placement>>&
           info) {
      std::string name =
          AlgorithmKindToString(std::get<0>(info.param)) + "_p" +
          std::to_string(static_cast<int>(std::get<1>(info.param)));
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

// ---------------------------------------------------------------------------
// Cluster-size sweep: 1..6 nodes, including the degenerate single node.

class NodeCountProperty : public ::testing::TestWithParam<int> {};

TEST_P(NodeCountProperty, AllAlgorithmsAllNodeCounts) {
  const int n = GetParam();
  WorkloadSpec wspec;
  wspec.num_nodes = n;
  wspec.num_tuples = 6'000;
  wspec.num_groups = 300;
  ASSERT_OK_AND_ASSIGN(PartitionedRelation rel, GenerateRelation(wspec));
  ASSERT_OK_AND_ASSIGN(AggregationSpec spec,
                       MakeBenchQuery(&rel.schema()));
  SystemParams params = SmallClusterParams(n, wspec.num_tuples, 128);
  for (AlgorithmKind kind : AllAlgorithms()) {
    SCOPED_TRACE(AlgorithmKindToString(kind));
    ExpectMatchesReference(kind, params, spec, rel);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, NodeCountProperty,
                         ::testing::Values(1, 2, 3, 5, 6));

// ---------------------------------------------------------------------------
// All aggregate kinds, both numeric input types, multi-column keys.

TEST(AggregateKindsProperty, FullAggregateMix) {
  std::vector<Field> fields;
  fields.push_back({"k1", DataType::kInt64, 8});
  fields.push_back({"k2", DataType::kBytes, 4});
  fields.push_back({"vi", DataType::kInt64, 8});
  fields.push_back({"vd", DataType::kDouble, 8});
  Schema schema(std::move(fields));

  ASSERT_OK_AND_ASSIGN(PartitionedRelation rel,
                       PartitionedRelation::Create(schema, 3));
  Prng prng(99);
  TupleBuffer t(&rel.schema());
  for (int i = 0; i < 5'000; ++i) {
    uint64_t g = prng.NextBelow(200);
    t.SetInt64(0, static_cast<int64_t>(g));
    t.SetBytes(1, std::string(1, static_cast<char>('a' + g % 5)));
    t.SetInt64(2, static_cast<int64_t>(prng.NextBelow(1000)) - 500);
    t.SetDouble(3, static_cast<double>(prng.NextBelow(1'000'000)) / 997.0);
    ASSERT_OK(rel.Append(i % 3, t.view()));
  }
  ASSERT_OK(rel.Flush());

  std::vector<AggDescriptor> aggs;
  aggs.push_back({AggKind::kCount, -1, "cnt"});
  aggs.push_back({AggKind::kSum, 2, "sum_i"});
  aggs.push_back({AggKind::kSum, 3, "sum_d"});
  aggs.push_back({AggKind::kAvg, 2, "avg_i"});
  aggs.push_back({AggKind::kAvg, 3, "avg_d"});
  aggs.push_back({AggKind::kMin, 2, "min_i"});
  aggs.push_back({AggKind::kMax, 3, "max_d"});
  ASSERT_OK_AND_ASSIGN(
      AggregationSpec spec,
      AggregationSpec::Make(&rel.schema(), {0, 1}, std::move(aggs)));

  SystemParams params = SmallClusterParams(3, 5'000, 64);
  for (AlgorithmKind kind : AllAlgorithms()) {
    SCOPED_TRACE(AlgorithmKindToString(kind));
    ExpectMatchesReference(kind, params, spec, rel);
  }
}

}  // namespace
}  // namespace adaptagg
