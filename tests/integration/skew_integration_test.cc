#include <gtest/gtest.h>

#include "test_util.h"
#include "workload/skew.h"

namespace adaptagg {
namespace {

using testing_util::ExpectMatchesReference;
using testing_util::SmallClusterParams;

OutputSkewSpec SmallOutputSkew(int64_t groups) {
  OutputSkewSpec spec;
  spec.num_nodes = 8;
  spec.single_group_nodes = 4;
  spec.num_tuples = 24'000;
  spec.num_groups = groups;
  return spec;
}

TEST(OutputSkew, AllAlgorithmsCorrectUnderSkew) {
  OutputSkewSpec sspec = SmallOutputSkew(2'000);
  ASSERT_OK_AND_ASSIGN(PartitionedRelation rel,
                       GenerateOutputSkewRelation(sspec));
  ASSERT_OK_AND_ASSIGN(AggregationSpec spec,
                       MakeBenchQuery(&rel.schema()));
  SystemParams params = SmallClusterParams(8, sspec.num_tuples, 256);
  for (AlgorithmKind kind : AllAlgorithms()) {
    SCOPED_TRACE(AlgorithmKindToString(kind));
    AlgorithmOptions opts;
    opts.init_seg = 500;
    ExpectMatchesReference(kind, params, spec, rel, opts);
  }
}

TEST(OutputSkew, OnlySkewedNodesSwitchInAdaptiveTwoPhase) {
  // §6.2 case 2: nodes holding many groups overflow and repartition;
  // single-group nodes stay in the local-aggregation mode. This per-node
  // independence is the paper's key argument for the adaptive algorithms.
  OutputSkewSpec sspec = SmallOutputSkew(5'000);
  ASSERT_OK_AND_ASSIGN(PartitionedRelation rel,
                       GenerateOutputSkewRelation(sspec));
  ASSERT_OK_AND_ASSIGN(AggregationSpec spec,
                       MakeBenchQuery(&rel.schema()));
  SystemParams params = SmallClusterParams(8, sspec.num_tuples, 256);

  Cluster cluster(params);
  RunResult run = cluster.Run(
      *MakeAlgorithm(AlgorithmKind::kAdaptiveTwoPhase), spec, rel);
  ASSERT_OK(run.status);
  for (int node = 0; node < 8; ++node) {
    if (node < sspec.single_group_nodes) {
      EXPECT_FALSE(run.node_stats[node].switched)
          << "single-group node " << node << " must not switch";
    } else {
      EXPECT_TRUE(run.node_stats[node].switched)
          << "many-group node " << node << " must switch";
    }
  }
}

TEST(OutputSkew, AdaptiveBeatsStaticTwoPhaseOnModeledTime) {
  // The paper's Figure 9 claim: with output skew, A-2P outperforms plain
  // 2P because skewed nodes avoid intermediate I/O by repartitioning.
  OutputSkewSpec sspec = SmallOutputSkew(8'000);
  ASSERT_OK_AND_ASSIGN(PartitionedRelation rel,
                       GenerateOutputSkewRelation(sspec));
  ASSERT_OK_AND_ASSIGN(AggregationSpec spec,
                       MakeBenchQuery(&rel.schema()));
  SystemParams params = SmallClusterParams(8, sspec.num_tuples, 128);

  Cluster cluster(params);
  RunResult two_phase =
      cluster.Run(*MakeAlgorithm(AlgorithmKind::kTwoPhase), spec, rel);
  ASSERT_OK(two_phase.status);
  RunResult adaptive = cluster.Run(
      *MakeAlgorithm(AlgorithmKind::kAdaptiveTwoPhase), spec, rel);
  ASSERT_OK(adaptive.status);

  EXPECT_LT(adaptive.sim_time_s, two_phase.sim_time_s);
  // And 2P must actually have spilled for the comparison to be about
  // intermediate I/O.
  EXPECT_GT(two_phase.total_spilled_records(), 0);
}

TEST(InputSkew, CorrectnessWithSkewedPartitionSizes) {
  WorkloadSpec wspec;
  wspec.num_nodes = 4;
  wspec.num_tuples = 16'000;
  wspec.num_groups = 500;
  wspec.input_skew_factor = 5.0;  // one node gets 5x the tuples
  wspec.input_skew_nodes = 1;
  ASSERT_OK_AND_ASSIGN(PartitionedRelation rel, GenerateRelation(wspec));
  // The skewed node really is bigger.
  EXPECT_GT(rel.partition(0).num_tuples(),
            3 * rel.partition(1).num_tuples());
  ASSERT_OK_AND_ASSIGN(AggregationSpec spec,
                       MakeBenchQuery(&rel.schema()));
  SystemParams params = SmallClusterParams(4, wspec.num_tuples, 256);
  for (AlgorithmKind kind : AllAlgorithms()) {
    SCOPED_TRACE(AlgorithmKindToString(kind));
    ExpectMatchesReference(kind, params, spec, rel);
  }
}

TEST(InputSkew, SkewedNodeDominatesModeledTime) {
  // §6.1: the skewed node's extra I/O and processing set the completion
  // time; its clock should be the max by a clear margin.
  WorkloadSpec wspec;
  wspec.num_nodes = 4;
  wspec.num_tuples = 20'000;
  wspec.num_groups = 50;
  wspec.input_skew_factor = 4.0;
  ASSERT_OK_AND_ASSIGN(PartitionedRelation rel, GenerateRelation(wspec));
  ASSERT_OK_AND_ASSIGN(AggregationSpec spec,
                       MakeBenchQuery(&rel.schema()));
  Cluster cluster(SmallClusterParams(4, wspec.num_tuples));
  RunResult run =
      cluster.Run(*MakeAlgorithm(AlgorithmKind::kTwoPhase), spec, rel);
  ASSERT_OK(run.status);
  double max_other = 0;
  for (int i = 1; i < 4; ++i) {
    max_other = std::max(max_other, run.clocks[i].cpu_s() +
                                        run.clocks[i].io_s());
  }
  EXPECT_GT(run.clocks[0].cpu_s() + run.clocks[0].io_s(), max_other);
}

}  // namespace
}  // namespace adaptagg
