#include <gtest/gtest.h>

#include "test_util.h"
#include "workload/tpcd.h"

namespace adaptagg {
namespace {

using testing_util::ExpectMatchesReference;
using testing_util::SmallClusterParams;

TEST(EndToEnd, QuickstartFlow) {
  // The README quickstart: generate, aggregate adaptively, inspect.
  WorkloadSpec wspec;
  wspec.num_nodes = 4;
  wspec.num_tuples = 20'000;
  wspec.num_groups = 100;
  ASSERT_OK_AND_ASSIGN(PartitionedRelation rel, GenerateRelation(wspec));
  ASSERT_OK_AND_ASSIGN(AggregationSpec spec,
                       MakeBenchQuery(&rel.schema()));

  Cluster cluster(SmallClusterParams(4, wspec.num_tuples));
  RunResult run = cluster.Run(*MakeAlgorithm(AlgorithmKind::kAdaptiveTwoPhase),
                              spec, rel);
  ASSERT_OK(run.status);
  EXPECT_EQ(run.results.num_rows(), 100);
  EXPECT_GT(run.sim_time_s, 0.0);
  EXPECT_EQ(run.nodes_switched(), 0);  // 100 groups fit in M=512
}

TEST(EndToEnd, AllAlgorithmsAgreeOnMediumWorkload) {
  WorkloadSpec wspec;
  wspec.num_nodes = 4;
  wspec.num_tuples = 30'000;
  wspec.num_groups = 3'000;  // > M=512 per node: forces overflow paths
  ASSERT_OK_AND_ASSIGN(PartitionedRelation rel, GenerateRelation(wspec));
  ASSERT_OK_AND_ASSIGN(AggregationSpec spec,
                       MakeBenchQuery(&rel.schema()));
  SystemParams params = SmallClusterParams(4, wspec.num_tuples);
  for (AlgorithmKind kind : AllAlgorithms()) {
    SCOPED_TRACE(AlgorithmKindToString(kind));
    ExpectMatchesReference(kind, params, spec, rel);
  }
}

TEST(EndToEnd, TpcdQ1AcrossAlgorithms) {
  TpcdSpec tspec;
  tspec.num_nodes = 4;
  tspec.num_rows = 40'000;
  ASSERT_OK_AND_ASSIGN(PartitionedRelation rel, GenerateLineitem(tspec));
  ASSERT_OK_AND_ASSIGN(AggregationSpec q1, MakeQ1Query(&rel.schema()));
  SystemParams params = SmallClusterParams(4, tspec.num_rows);
  for (AlgorithmKind kind : AllAlgorithms()) {
    SCOPED_TRACE(AlgorithmKindToString(kind));
    ExpectMatchesReference(kind, params, q1, rel);
  }
  // Q1 groups: 3 return flags x 2 line statuses.
  ASSERT_OK_AND_ASSIGN(ResultSet ref, ReferenceAggregate(q1, rel));
  EXPECT_EQ(ref.num_rows(), 6);
}

TEST(EndToEnd, DuplicateEliminationHighSelectivity) {
  // DISTINCT with result ~ half the input: the regime the paper calls
  // out for Repartitioning/duplicate elimination.
  WorkloadSpec wspec;
  wspec.num_nodes = 4;
  wspec.num_tuples = 20'000;
  wspec.num_groups = 10'000;
  ASSERT_OK_AND_ASSIGN(PartitionedRelation rel, GenerateRelation(wspec));
  ASSERT_OK_AND_ASSIGN(
      AggregationSpec distinct,
      MakeDistinctSpec(&rel.schema(), {kBenchGroupCol}));
  SystemParams params = SmallClusterParams(4, wspec.num_tuples);
  for (AlgorithmKind kind :
       {AlgorithmKind::kRepartitioning, AlgorithmKind::kAdaptiveTwoPhase,
        AlgorithmKind::kAdaptiveRepartitioning}) {
    SCOPED_TRACE(AlgorithmKindToString(kind));
    ExpectMatchesReference(kind, params, distinct, rel);
  }
}

TEST(EndToEnd, ScalarAggregateSingleGroup) {
  // S = 1/|R|: scalar aggregation is the degenerate single-group case.
  WorkloadSpec wspec;
  wspec.num_nodes = 4;
  wspec.num_tuples = 8'000;
  wspec.num_groups = 1;
  ASSERT_OK_AND_ASSIGN(PartitionedRelation rel, GenerateRelation(wspec));
  ASSERT_OK_AND_ASSIGN(AggregationSpec spec,
                       MakeBenchQuery(&rel.schema()));
  SystemParams params = SmallClusterParams(4, wspec.num_tuples);
  for (AlgorithmKind kind : AllAlgorithms()) {
    SCOPED_TRACE(AlgorithmKindToString(kind));
    ExpectMatchesReference(kind, params, spec, rel);
  }
}

TEST(EndToEnd, EmptyRelation) {
  WorkloadSpec wspec;
  wspec.num_nodes = 4;
  wspec.num_tuples = 0;
  wspec.num_groups = 1;
  // num_groups > num_tuples is rejected; build the empty relation by hand.
  Schema schema = MakeBenchSchema(100);
  ASSERT_OK_AND_ASSIGN(PartitionedRelation rel,
                       PartitionedRelation::Create(schema, 4));
  ASSERT_OK(rel.Flush());
  ASSERT_OK_AND_ASSIGN(AggregationSpec spec,
                       MakeBenchQuery(&rel.schema()));
  SystemParams params = SmallClusterParams(4, 1);
  for (AlgorithmKind kind : AllAlgorithms()) {
    SCOPED_TRACE(AlgorithmKindToString(kind));
    Cluster cluster(params);
    RunResult run = cluster.Run(*MakeAlgorithm(kind), spec, rel);
    ASSERT_OK(run.status);
    EXPECT_EQ(run.results.num_rows(), 0);
  }
}

TEST(EndToEnd, ResultsAreStoredOnNodeDisks) {
  WorkloadSpec wspec;
  wspec.num_nodes = 2;
  wspec.num_tuples = 4'000;
  wspec.num_groups = 50;
  ASSERT_OK_AND_ASSIGN(PartitionedRelation rel, GenerateRelation(wspec));
  ASSERT_OK_AND_ASSIGN(AggregationSpec spec,
                       MakeBenchQuery(&rel.schema()));
  Cluster cluster(SmallClusterParams(2, wspec.num_tuples));
  RunResult run =
      cluster.Run(*MakeAlgorithm(AlgorithmKind::kTwoPhase), spec, rel);
  ASSERT_OK(run.status);
  // Store I/O happened: disks saw writes beyond the loaded relation.
  int64_t writes = 0;
  for (int i = 0; i < 2; ++i) writes += rel.disk(i).stats().pages_written;
  EXPECT_GT(writes, 0);
  int64_t rows = 0;
  for (const auto& s : run.node_stats) rows += s.result_rows;
  EXPECT_EQ(rows, 50);
}

TEST(EndToEnd, GatherCanBeDisabled) {
  WorkloadSpec wspec;
  wspec.num_nodes = 2;
  wspec.num_tuples = 2'000;
  wspec.num_groups = 10;
  ASSERT_OK_AND_ASSIGN(PartitionedRelation rel, GenerateRelation(wspec));
  ASSERT_OK_AND_ASSIGN(AggregationSpec spec,
                       MakeBenchQuery(&rel.schema()));
  Cluster cluster(SmallClusterParams(2, wspec.num_tuples));
  AlgorithmOptions opts;
  opts.gather_results = false;
  RunResult run = cluster.Run(*MakeAlgorithm(AlgorithmKind::kTwoPhase),
                              spec, rel, opts);
  ASSERT_OK(run.status);
  EXPECT_EQ(run.results.num_rows(), 0);
  EXPECT_EQ(run.total_result_rows(), 10);
}

}  // namespace
}  // namespace adaptagg
