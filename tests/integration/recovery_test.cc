#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "cluster/node_context.h"
#include "core/phases.h"
#include "net/fault.h"
#include "net/transport.h"
#include "test_util.h"

namespace adaptagg {
namespace {

using testing_util::SmallClusterParams;

// ---------------------------------------------------------------------
// The no-perturbation contract: checkpointing is wall-clock-only work on
// dedicated disks, so a fault-free run with recovery ON must be
// bit-identical — modeled time, adaptive switches, result rows — to the
// same run with recovery OFF.

class RecoveryParityTest : public ::testing::Test {
 protected:
  void SetUp() override {
    WorkloadSpec wspec;
    wspec.num_nodes = 3;
    wspec.num_tuples = 9'000;
    wspec.num_groups = 300;
    ASSERT_OK_AND_ASSIGN(rel_, GenerateRelation(wspec));
    auto spec = MakeBenchQuery(&rel_->schema());
    ASSERT_TRUE(spec.ok());
    spec_ = std::make_unique<AggregationSpec>(std::move(spec).value());
    params_ = SmallClusterParams(3, wspec.num_tuples, 256);
  }

  RunResult RunWith(AlgorithmKind kind, bool recovery,
                    int64_t every_batches) {
    Cluster cluster(params_);
    AlgorithmOptions opts;
    opts.gather_results = true;
    opts.recovery.enabled = recovery;
    opts.recovery.checkpoint_every_batches = every_batches;
    return cluster.Run(*MakeAlgorithm(kind), *spec_, *rel_, opts);
  }

  std::optional<PartitionedRelation> rel_;
  std::unique_ptr<AggregationSpec> spec_;
  SystemParams params_;
};

TEST_F(RecoveryParityTest, FaultFreeRunsAreBitIdenticalWithCheckpointing) {
  const AlgorithmKind kinds[] = {
      AlgorithmKind::kTwoPhase, AlgorithmKind::kRepartitioning,
      AlgorithmKind::kAdaptiveTwoPhase, AlgorithmKind::kSampling};
  for (AlgorithmKind kind : kinds) {
    SCOPED_TRACE(AlgorithmKindToString(kind));
    RunResult off = RunWith(kind, /*recovery=*/false, 0);
    RunResult on = RunWith(kind, /*recovery=*/true, /*every_batches=*/4);
    ASSERT_OK(off.status);
    ASSERT_OK(on.status);
    // Same modeled outcome: same adaptive switches, byte-identical
    // result rows, and clock totals equal to within the ~1e-15
    // summation-order jitter that two identical one-shot runs already
    // show (totals are double sums accumulated in message arrival
    // order; see the serving-layer parity test).
    EXPECT_NEAR(off.sim_time_s, on.sim_time_s, 1e-9);
    EXPECT_NEAR(off.wire_time_s, on.wire_time_s, 1e-9);
    EXPECT_EQ(off.nodes_switched(), on.nodes_switched());
    EXPECT_TRUE(ResultSetsEqual(off.results, on.results));
    // And the checkpointing actually happened on the recovery side.
    EXPECT_GT(on.metrics.Value("recovery.checkpoints_written"), 0);
    EXPECT_EQ(off.metrics.Value("recovery.checkpoints_written"), 0);
  }
}

TEST_F(RecoveryParityTest, AutoCadenceAlsoLeavesModeledTimeUntouched) {
  RunResult off = RunWith(AlgorithmKind::kTwoPhase, false, 0);
  // -1 asks the cost model (DecideCheckpointInterval) for the cadence.
  RunResult on = RunWith(AlgorithmKind::kTwoPhase, true, -1);
  ASSERT_OK(off.status);
  ASSERT_OK(on.status);
  EXPECT_NEAR(off.sim_time_s, on.sim_time_s, 1e-9);
  EXPECT_TRUE(ResultSetsEqual(off.results, on.results));
}

TEST_F(RecoveryParityTest, CadenceZeroMeansNoCheckpoints) {
  RunResult on = RunWith(AlgorithmKind::kTwoPhase, true, 0);
  ASSERT_OK(on.status);
  EXPECT_EQ(on.metrics.Value("recovery.checkpoints_written"), 0);
}

// ---------------------------------------------------------------------
// Membership-epoch hygiene: a frame stamped with another epoch is a
// stale leftover of a pre-resize mesh and must be dropped on admission,
// before any sequence or aggregation bookkeeping.

TEST(StaleEpochTest, MismatchedEpochFramesAreDroppedOnAdmission) {
  auto mesh = MakeInprocMesh(2);
  SystemParams params = SmallClusterParams(2, 100);
  NetworkModel net(params);
  Schema schema = MakeBenchSchema(32);
  auto spec_or = MakeBenchQuery(&schema);
  ASSERT_TRUE(spec_or.ok());
  AggregationSpec spec = std::move(spec_or).value();

  AlgorithmOptions old_epoch;
  old_epoch.epoch = 1;
  AlgorithmOptions new_epoch;
  new_epoch.epoch = 2;

  NodeContext receiver(1, params, spec, new_epoch, nullptr, nullptr,
                       mesh[1].get(), &net);

  // A sender still living in epoch 1 — its frame must vanish at the
  // receiver without touching sequence state.
  {
    NodeContext stale_sender(0, params, spec, old_epoch, nullptr, nullptr,
                             mesh[0].get(), &net);
    Message m;
    m.type = MessageType::kEndOfStream;
    m.phase = kPhaseData;
    ASSERT_OK(stale_sender.Send(1, std::move(m)));
  }
  ASSERT_OK_AND_ASSIGN(std::optional<Message> dropped,
                       receiver.TryRecv());
  EXPECT_FALSE(dropped.has_value());
  EXPECT_EQ(receiver.obs().registry().Snapshot().Value(
                "recovery.stale_epoch_dropped"),
            1);

  // A current-epoch sender on the same endpoint gets through — and the
  // stale frame left no sequence-number shadow behind.
  {
    NodeContext live_sender(0, params, spec, new_epoch, nullptr, nullptr,
                            mesh[0].get(), &net);
    Message m;
    m.type = MessageType::kEndOfStream;
    m.phase = kPhaseData;
    ASSERT_OK(live_sender.Send(1, std::move(m)));
  }
  ASSERT_OK_AND_ASSIGN(std::optional<Message> delivered,
                       receiver.TryRecv());
  ASSERT_TRUE(delivered.has_value());
  EXPECT_EQ(delivered->type, MessageType::kEndOfStream);
}

}  // namespace
}  // namespace adaptagg
