#include <gtest/gtest.h>

#include "storage/faulty_disk.h"
#include "test_util.h"

namespace adaptagg {
namespace {

using testing_util::SmallClusterParams;

// Builds a 4-node relation where node `faulty_node`'s disk can be made
// to fail on demand. Returns the relation; the FaultySimDisk pointer is
// written to *disk.
Result<PartitionedRelation> MakeFaultyRelation(int faulty_node,
                                               FaultySimDisk** disk,
                                               int64_t groups = 400) {
  Schema schema = MakeBenchSchema(100);
  std::vector<std::unique_ptr<Disk>> disks;
  for (int i = 0; i < 4; ++i) {
    disks.push_back(std::make_unique<FaultySimDisk>(kDefaultPageSize));
  }
  *disk = static_cast<FaultySimDisk*>(disks[faulty_node].get());
  ADAPTAGG_ASSIGN_OR_RETURN(
      PartitionedRelation rel,
      PartitionedRelation::CreateWithDisks(schema, std::move(disks)));
  Prng prng(4242);
  TupleBuffer t(&rel.schema());
  for (int64_t i = 0; i < 12'000; ++i) {
    t.SetInt64(kBenchGroupCol,
               static_cast<int64_t>(prng.NextBelow(
                   static_cast<uint64_t>(groups))));
    t.SetInt64(kBenchValueCol, static_cast<int64_t>(i % 1000));
    ADAPTAGG_RETURN_IF_ERROR(rel.Append(static_cast<int>(i % 4), t.view()));
  }
  ADAPTAGG_RETURN_IF_ERROR(rel.Flush());
  return rel;
}

class FaultInjection : public ::testing::TestWithParam<AlgorithmKind> {};

TEST_P(FaultInjection, ScanReadFailureSurfacesAsIOError) {
  FaultySimDisk* disk = nullptr;
  ASSERT_OK_AND_ASSIGN(PartitionedRelation rel,
                       MakeFaultyRelation(2, &disk));
  // Allow the scan to get partway through node 2's partition, then fail.
  disk->FailReadsAfter(10);
  Cluster cluster(SmallClusterParams(4, 12'000));
  RunResult run = cluster.Run(*MakeAlgorithm(GetParam()),
                              *MakeBenchQuery(&rel.schema()), rel);
  EXPECT_FALSE(run.status.ok());
  EXPECT_EQ(run.status.code(), StatusCode::kIOError);
  EXPECT_NE(run.status.message().find("injected"), std::string::npos);
}

TEST_P(FaultInjection, ResultStoreWriteFailureSurfaces) {
  FaultySimDisk* disk = nullptr;
  ASSERT_OK_AND_ASSIGN(PartitionedRelation rel,
                       MakeFaultyRelation(1, &disk));
  // Loading already happened; now let reads succeed but writes (spills
  // and the result store) fail immediately.
  disk->FailWritesAfter(0);
  Cluster cluster(SmallClusterParams(4, 12'000));
  RunResult run = cluster.Run(*MakeAlgorithm(GetParam()),
                              *MakeBenchQuery(&rel.schema()), rel);
  EXPECT_FALSE(run.status.ok());
  EXPECT_EQ(run.status.code(), StatusCode::kIOError);
}

INSTANTIATE_TEST_SUITE_P(
    Engine, FaultInjection,
    ::testing::Values(AlgorithmKind::kTwoPhase,
                      AlgorithmKind::kRepartitioning,
                      AlgorithmKind::kAdaptiveTwoPhase,
                      AlgorithmKind::kAdaptiveRepartitioning),
    [](const ::testing::TestParamInfo<AlgorithmKind>& info) {
      std::string name = AlgorithmKindToString(info.param);
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

TEST(FaultInjection, SpillWriteFailureDuringOverflow) {
  FaultySimDisk* disk = nullptr;
  ASSERT_OK_AND_ASSIGN(PartitionedRelation rel,
                       MakeFaultyRelation(0, &disk, /*groups=*/6'000));
  // Tiny table forces spilling on every node; node 0's spill writes die
  // after a handful of pages.
  int64_t loaded_pages = disk->stats().pages_written;
  (void)loaded_pages;
  disk->FailWritesAfter(3);
  Cluster cluster(SmallClusterParams(4, 12'000, /*M=*/64));
  RunResult run = cluster.Run(*MakeAlgorithm(AlgorithmKind::kTwoPhase),
                              *MakeBenchQuery(&rel.schema()), rel);
  EXPECT_FALSE(run.status.ok());
  EXPECT_EQ(run.status.code(), StatusCode::kIOError);
  EXPECT_NE(run.status.message().find("node 0"), std::string::npos);
}

TEST(FaultInjection, SamplingRandomReadFailure) {
  FaultySimDisk* disk = nullptr;
  ASSERT_OK_AND_ASSIGN(PartitionedRelation rel,
                       MakeFaultyRelation(3, &disk));
  disk->FailReadsAfter(0);
  Cluster cluster(SmallClusterParams(4, 12'000));
  RunResult run = cluster.Run(*MakeAlgorithm(AlgorithmKind::kSampling),
                              *MakeBenchQuery(&rel.schema()), rel);
  EXPECT_FALSE(run.status.ok());
  EXPECT_EQ(run.status.code(), StatusCode::kIOError);
}

TEST(FaultInjection, HeapScannerReportsStatusNotCrash) {
  FaultySimDisk disk(512);
  Schema schema({{"k", DataType::kInt64, 8}});
  auto hf = HeapFile::Create(&disk, &schema, "t");
  ASSERT_TRUE(hf.ok());
  TupleBuffer t(&schema);
  for (int64_t i = 0; i < 500; ++i) {
    t.SetInt64(0, i);
    ASSERT_TRUE(hf->Append(t.view()).ok());
  }
  ASSERT_TRUE(hf->Flush().ok());

  disk.FailReadsAfter(2);
  HeapFileScanner scanner(&*hf);
  int64_t yielded = 0;
  while (scanner.Next().valid()) ++yielded;
  EXPECT_FALSE(scanner.status().ok());
  EXPECT_GT(yielded, 0);
  EXPECT_LT(yielded, 500);
  // Scanner stays ended after the error.
  EXPECT_FALSE(scanner.Next().valid());
}

}  // namespace
}  // namespace adaptagg
