#include <gtest/gtest.h>

#include <cstdlib>

#include "test_util.h"

namespace adaptagg {
namespace {

using testing_util::SmallClusterParams;

const char* TmpDir() {
  const char* t = std::getenv("TMPDIR");
  return t != nullptr ? t : "/tmp";
}

// The whole engine on REAL files: partitions, spills, and result stores
// all live on FileDisk-backed storage instead of SimDisk. Validates the
// storage abstraction end to end (the paper's one-disk-per-node setup,
// with actual bytes hitting the filesystem).
TEST(FileDiskEngine, TwoPhaseAndAdaptiveOnRealFiles) {
  Schema schema = MakeBenchSchema(100);
  std::vector<std::unique_ptr<Disk>> disks;
  for (int i = 0; i < 3; ++i) {
    disks.push_back(
        std::make_unique<FileDisk>(TmpDir(), kDefaultPageSize));
  }
  auto rel_or =
      PartitionedRelation::CreateWithDisks(schema, std::move(disks));
  ASSERT_TRUE(rel_or.ok()) << rel_or.status().ToString();
  PartitionedRelation rel = std::move(rel_or).value();

  Prng prng(31);
  TupleBuffer t(&rel.schema());
  for (int64_t i = 0; i < 9'000; ++i) {
    t.SetInt64(kBenchGroupCol,
               static_cast<int64_t>(prng.NextBelow(2'500)));
    t.SetInt64(kBenchValueCol, static_cast<int64_t>(i % 500));
    ASSERT_OK(rel.Append(static_cast<int>(i % 3), t.view()));
  }
  ASSERT_OK(rel.Flush());

  ASSERT_OK_AND_ASSIGN(AggregationSpec spec,
                       MakeBenchQuery(&rel.schema()));
  ASSERT_OK_AND_ASSIGN(ResultSet expected, ReferenceAggregate(spec, rel));

  // Tiny M so spill files are really written to and read from disk.
  Cluster cluster(SmallClusterParams(3, 9'000, /*M=*/128));
  for (AlgorithmKind kind :
       {AlgorithmKind::kTwoPhase, AlgorithmKind::kAdaptiveTwoPhase}) {
    SCOPED_TRACE(AlgorithmKindToString(kind));
    RunResult run = cluster.Run(*MakeAlgorithm(kind), spec, rel);
    ASSERT_OK(run.status);
    EXPECT_TRUE(ResultSetsEqual(run.results, expected));
    EXPECT_GT(run.total_spilled_records(), 0)
        << "expected real spill I/O with M=128 and 2500 groups";
  }
}

}  // namespace
}  // namespace adaptagg
