#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "net/fault.h"
#include "net/transport.h"
#include "test_util.h"

namespace adaptagg {
namespace {

using testing_util::SmallClusterParams;

/// One cell of the fault matrix: a plan, the transport, the algorithm,
/// and the contract the run must satisfy — either it completes with the
/// correct result, or it aborts cleanly within the deadline with a
/// status that names a node. No outcome is allowed to hang.
struct FaultCase {
  const char* label;
  const char* plan;
  bool expect_ok;
  /// Substring the abort status must carry (nullptr: any message).
  const char* expect_substr;
};

constexpr FaultCase kCases[] = {
    // A dropped repartition/merge message is detected as sequence loss
    // or peer silence — never an indefinite wait.
    {"drop", "drop:from=1,to=2,nth=0", false, "node"},
    // Duplicated delivery is discarded by sequence-number dedup; the
    // aggregate must not double-count.
    {"duplicate", "dup:from=1,to=2,nth=0", true, nullptr},
    // A delayed message still arrives; heartbeats keep peers patient.
    {"delay", "delay:from=1,to=2,nth=0,factor=50", true, nullptr},
    // A corrupted frame fails its checksum and becomes a detectable
    // drop.
    {"corrupt", "corrupt:from=1,to=2,nth=0", false, "node"},
    // A fail-stop crash mid-scan aborts the whole run with a status
    // naming the dead node.
    {"crash", "crash:node=1,tuple=500", false, "node 1"},
    // A straggler survives: heartbeats prove liveness until it catches
    // up.
    {"straggler", "straggle:node=1,factor=20", true, nullptr},
};

class FaultMatrixTest : public ::testing::Test {
 protected:
  void RunMatrix(bool tcp, int base_port) {
    WorkloadSpec wspec;
    wspec.num_nodes = 3;
    wspec.num_tuples = 6'000;
    wspec.num_groups = 200;
    ASSERT_OK_AND_ASSIGN(PartitionedRelation rel,
                         GenerateRelation(wspec));
    ASSERT_OK_AND_ASSIGN(AggregationSpec spec,
                         MakeBenchQuery(&rel.schema()));
    ASSERT_OK_AND_ASSIGN(ResultSet expected,
                         ReferenceAggregate(spec, rel));

    // One traditional algorithm (Repartitioning: raw-tuple traffic in
    // the scan phase) and one adaptive (A-2P: partials in the merge
    // phase), so faults hit both traffic shapes.
    const AlgorithmKind kinds[] = {AlgorithmKind::kRepartitioning,
                                   AlgorithmKind::kAdaptiveTwoPhase};
    SystemParams params = SmallClusterParams(3, wspec.num_tuples, 256);

    int port = base_port;
    for (AlgorithmKind kind : kinds) {
      for (const FaultCase& fc : kCases) {
        SCOPED_TRACE(std::string(AlgorithmKindToString(kind)) + "/" +
                     fc.label + (tcp ? "/tcp" : "/inproc"));
        Cluster cluster(params);
        if (tcp) {
          const int base = port;
          port += 10;
          cluster.set_transport_factory(
              [base](int n) { return MakeTcpMesh(n, base); });
        }
        AlgorithmOptions opts;
        ASSERT_OK_AND_ASSIGN(opts.fault_plan, FaultPlan::Parse(fc.plan));
        opts.failure.enabled = true;
        opts.failure.recv_idle_timeout_s = 2.0;

        RunResult run =
            cluster.Run(*MakeAlgorithm(kind), spec, rel, opts);
        if (fc.expect_ok) {
          ASSERT_OK(run.status);
          EXPECT_TRUE(ResultSetsEqual(run.results, expected));
        } else {
          ASSERT_FALSE(run.status.ok());
          // Clean, descriptive abort: an expected failure code, and a
          // message naming the node at fault.
          EXPECT_TRUE(
              run.status.code() == StatusCode::kNetworkError ||
              run.status.code() == StatusCode::kDeadlineExceeded ||
              run.status.code() == StatusCode::kInternal)
              << run.status.ToString();
          if (fc.expect_substr != nullptr) {
            EXPECT_NE(run.status.message().find(fc.expect_substr),
                      std::string::npos)
                << run.status.ToString();
          }
        }
      }
    }
  }
};

TEST_F(FaultMatrixTest, InprocMesh) { RunMatrix(/*tcp=*/false, 0); }

TEST_F(FaultMatrixTest, TcpMesh) { RunMatrix(/*tcp=*/true, 47000); }

// The two acceptance scenarios called out by the issue, pinned as their
// own tests so a regression is named precisely.
TEST_F(FaultMatrixTest, DropRepartitionMessageAbortsDescriptively) {
  WorkloadSpec wspec;
  wspec.num_nodes = 3;
  wspec.num_tuples = 6'000;
  wspec.num_groups = 200;
  ASSERT_OK_AND_ASSIGN(PartitionedRelation rel, GenerateRelation(wspec));
  ASSERT_OK_AND_ASSIGN(AggregationSpec spec,
                       MakeBenchQuery(&rel.schema()));

  AlgorithmOptions opts;
  ASSERT_OK_AND_ASSIGN(opts.fault_plan,
                       FaultPlan::Parse("drop:from=1,to=2,nth=0"));
  opts.failure.enabled = true;
  opts.failure.recv_idle_timeout_s = 2.0;

  Cluster cluster(SmallClusterParams(3, wspec.num_tuples, 256));
  RunResult run = cluster.Run(
      *MakeAlgorithm(AlgorithmKind::kRepartitioning), spec, rel, opts);
  ASSERT_FALSE(run.status.ok());
  EXPECT_TRUE(run.status.code() == StatusCode::kNetworkError ||
              run.status.code() == StatusCode::kDeadlineExceeded)
      << run.status.ToString();
  EXPECT_NE(run.status.message().find("node"), std::string::npos)
      << run.status.ToString();
}

// ---------------------------------------------------------------
// Recovery matrix: {crash@scan, crash@merge, crash@emit} x
// {checkpointed, uncheckpointed} x {inproc, tcp}. With recovery
// enabled, every cell must COMPLETE — survivor re-execution replays
// the crashed attempt from the last checkpoint (or scratch) — and the
// result multiset must be byte-identical to the fault-free run.

class RecoveryMatrixTest : public ::testing::Test {
 protected:
  void RunMatrix(bool tcp, int base_port) {
    WorkloadSpec wspec;
    wspec.num_nodes = 3;
    wspec.num_tuples = 6'000;
    wspec.num_groups = 200;
    ASSERT_OK_AND_ASSIGN(PartitionedRelation rel,
                         GenerateRelation(wspec));
    ASSERT_OK_AND_ASSIGN(AggregationSpec spec,
                         MakeBenchQuery(&rel.schema()));
    ASSERT_OK_AND_ASSIGN(ResultSet expected,
                         ReferenceAggregate(spec, rel));

    const AlgorithmKind kinds[] = {AlgorithmKind::kRepartitioning,
                                   AlgorithmKind::kAdaptiveTwoPhase};
    const char* crashes[] = {"crash:node=1,tuple=500",
                             "crash:node=1,phase=merge",
                             "crash:node=1,phase=emit"};
    // 4 = checkpoint every 4 batches; 0 = recovery without checkpoints
    // (replay from scratch) — both must land on the same rows.
    const int64_t cadences[] = {4, 0};
    SystemParams params = SmallClusterParams(3, wspec.num_tuples, 256);

    int port = base_port;
    for (AlgorithmKind kind : kinds) {
      for (const char* crash : crashes) {
        for (int64_t cadence : cadences) {
          SCOPED_TRACE(std::string(AlgorithmKindToString(kind)) + "/" +
                       crash + "/every=" + std::to_string(cadence) +
                       (tcp ? "/tcp" : "/inproc"));
          Cluster cluster(params);
          if (tcp) {
            // Each attempt builds a fresh mesh; bump the port block per
            // call so the replay never races the dying listeners.
            const int base = port;
            port += 40;
            cluster.set_transport_factory(
                [base, used = 0](int n) mutable {
                  const int at = base + used;
                  used += 10;
                  return MakeTcpMesh(n, at);
                });
          }
          AlgorithmOptions opts;
          opts.gather_results = true;
          ASSERT_OK_AND_ASSIGN(opts.fault_plan, FaultPlan::Parse(crash));
          opts.failure.enabled = true;
          opts.failure.recv_idle_timeout_s = 2.0;
          opts.recovery.enabled = true;
          opts.recovery.checkpoint_every_batches = cadence;

          RunResult run =
              cluster.Run(*MakeAlgorithm(kind), spec, rel, opts);
          ASSERT_OK(run.status);
          EXPECT_TRUE(ResultSetsEqual(run.results, expected));
          EXPECT_EQ(run.metrics.Value("recovery.attempts"), 1);
        }
      }
    }
  }
};

TEST_F(RecoveryMatrixTest, InprocMesh) { RunMatrix(/*tcp=*/false, 0); }

TEST_F(RecoveryMatrixTest, TcpMesh) { RunMatrix(/*tcp=*/true, 48000); }

TEST_F(RecoveryMatrixTest, DoubleCrashSameNodeRecoversTwice) {
  WorkloadSpec wspec;
  wspec.num_nodes = 3;
  wspec.num_tuples = 6'000;
  wspec.num_groups = 200;
  ASSERT_OK_AND_ASSIGN(PartitionedRelation rel, GenerateRelation(wspec));
  ASSERT_OK_AND_ASSIGN(AggregationSpec spec,
                       MakeBenchQuery(&rel.schema()));
  ASSERT_OK_AND_ASSIGN(ResultSet expected, ReferenceAggregate(spec, rel));

  AlgorithmOptions opts;
  opts.gather_results = true;
  ASSERT_OK_AND_ASSIGN(
      opts.fault_plan,
      FaultPlan::Parse("crash:node=1,tuple=500;crash:node=1,phase=merge"));
  opts.failure.enabled = true;
  opts.failure.recv_idle_timeout_s = 2.0;
  opts.recovery.enabled = true;
  opts.recovery.checkpoint_every_batches = 4;
  opts.recovery.max_attempts = 3;

  Cluster cluster(SmallClusterParams(3, wspec.num_tuples, 256));
  RunResult run = cluster.Run(
      *MakeAlgorithm(AlgorithmKind::kAdaptiveTwoPhase), spec, rel, opts);
  ASSERT_OK(run.status);
  EXPECT_TRUE(ResultSetsEqual(run.results, expected));
  EXPECT_EQ(run.metrics.Value("recovery.attempts"), 2);
}

TEST_F(RecoveryMatrixTest, TwoNodesCrashingTogetherRecoverInOneReplay) {
  WorkloadSpec wspec;
  wspec.num_nodes = 3;
  wspec.num_tuples = 6'000;
  wspec.num_groups = 200;
  ASSERT_OK_AND_ASSIGN(PartitionedRelation rel, GenerateRelation(wspec));
  ASSERT_OK_AND_ASSIGN(AggregationSpec spec,
                       MakeBenchQuery(&rel.schema()));
  ASSERT_OK_AND_ASSIGN(ResultSet expected, ReferenceAggregate(spec, rel));

  AlgorithmOptions opts;
  opts.gather_results = true;
  ASSERT_OK_AND_ASSIGN(
      opts.fault_plan,
      FaultPlan::Parse("crash:node=0,tuple=500;crash:node=2,tuple=600"));
  opts.failure.enabled = true;
  opts.failure.recv_idle_timeout_s = 2.0;
  opts.recovery.enabled = true;
  opts.recovery.checkpoint_every_batches = 4;

  Cluster cluster(SmallClusterParams(3, wspec.num_tuples, 256));
  RunResult run = cluster.Run(
      *MakeAlgorithm(AlgorithmKind::kRepartitioning), spec, rel, opts);
  ASSERT_OK(run.status);
  EXPECT_TRUE(ResultSetsEqual(run.results, expected));
  EXPECT_EQ(run.metrics.Value("recovery.attempts"), 1);
}

TEST_F(RecoveryMatrixTest, FailingCheckpointDiskDegradesToScratchReplay) {
  WorkloadSpec wspec;
  wspec.num_nodes = 3;
  wspec.num_tuples = 6'000;
  wspec.num_groups = 200;
  ASSERT_OK_AND_ASSIGN(PartitionedRelation rel, GenerateRelation(wspec));
  ASSERT_OK_AND_ASSIGN(AggregationSpec spec,
                       MakeBenchQuery(&rel.schema()));
  ASSERT_OK_AND_ASSIGN(ResultSet expected, ReferenceAggregate(spec, rel));

  AlgorithmOptions opts;
  opts.gather_results = true;
  // Node 1's checkpoint disk rejects every append: no checkpoint ever
  // becomes durable, so the replay runs from scratch — and must still
  // land on exactly the fault-free rows.
  ASSERT_OK_AND_ASSIGN(
      opts.fault_plan,
      FaultPlan::Parse("crash:node=1,tuple=500;disk-fail:node=1,nth=0"));
  opts.failure.enabled = true;
  opts.failure.recv_idle_timeout_s = 2.0;
  opts.recovery.enabled = true;
  opts.recovery.checkpoint_every_batches = 2;

  // Two Phase checkpoints on scan progress, so the write attempts (and
  // their failures) land at deterministic batch boundaries.
  Cluster cluster(SmallClusterParams(3, wspec.num_tuples, 256));
  RunResult run = cluster.Run(
      *MakeAlgorithm(AlgorithmKind::kTwoPhase), spec, rel, opts);
  ASSERT_OK(run.status);
  EXPECT_TRUE(ResultSetsEqual(run.results, expected));
  EXPECT_GT(run.metrics.Value("recovery.checkpoint_failures"), 0);
}

TEST_F(RecoveryMatrixTest, TornCheckpointIsDataLossNeverAWrongAnswer) {
  WorkloadSpec wspec;
  wspec.num_nodes = 3;
  wspec.num_tuples = 6'000;
  wspec.num_groups = 200;
  ASSERT_OK_AND_ASSIGN(PartitionedRelation rel, GenerateRelation(wspec));
  ASSERT_OK_AND_ASSIGN(AggregationSpec spec,
                       MakeBenchQuery(&rel.schema()));
  ASSERT_OK_AND_ASSIGN(ResultSet expected, ReferenceAggregate(spec, rel));

  AlgorithmOptions opts;
  opts.gather_results = true;
  // Two Phase with cadence 3 and a crash at ~batch 4: node 1 writes
  // exactly one checkpoint (at scan batch 3 = tuple 384) before dying,
  // and that very first checkpoint append is torn (persisted
  // half-zeroed, reported as success). The replay must detect the
  // damage via CRC, count it as data loss, and fall back to a scratch
  // replay — never fold the damaged partials.
  ASSERT_OK_AND_ASSIGN(
      opts.fault_plan,
      FaultPlan::Parse("crash:node=1,tuple=400;torn-write:node=1,nth=0"));
  opts.failure.enabled = true;
  opts.failure.recv_idle_timeout_s = 2.0;
  opts.recovery.enabled = true;
  opts.recovery.checkpoint_every_batches = 3;

  Cluster cluster(SmallClusterParams(3, wspec.num_tuples, 256));
  RunResult run = cluster.Run(
      *MakeAlgorithm(AlgorithmKind::kTwoPhase), spec, rel, opts);
  ASSERT_OK(run.status);
  EXPECT_TRUE(ResultSetsEqual(run.results, expected));
  EXPECT_GT(run.metrics.Value("recovery.checkpoint_data_loss"), 0);
}

TEST_F(RecoveryMatrixTest, RecoveryDisabledKeepsTheCleanAbortPath) {
  WorkloadSpec wspec;
  wspec.num_nodes = 3;
  wspec.num_tuples = 6'000;
  wspec.num_groups = 200;
  ASSERT_OK_AND_ASSIGN(PartitionedRelation rel, GenerateRelation(wspec));
  ASSERT_OK_AND_ASSIGN(AggregationSpec spec,
                       MakeBenchQuery(&rel.schema()));

  AlgorithmOptions opts;
  ASSERT_OK_AND_ASSIGN(opts.fault_plan,
                       FaultPlan::Parse("crash:node=1,tuple=500"));
  opts.failure.enabled = true;
  opts.failure.recv_idle_timeout_s = 2.0;
  // recovery.enabled stays false: the run must abort descriptively,
  // exactly as before the recovery subsystem existed.

  Cluster cluster(SmallClusterParams(3, wspec.num_tuples, 256));
  RunResult run = cluster.Run(
      *MakeAlgorithm(AlgorithmKind::kAdaptiveTwoPhase), spec, rel, opts);
  ASSERT_FALSE(run.status.ok());
  EXPECT_NE(run.status.message().find("injected crash"),
            std::string::npos)
      << run.status.ToString();
  EXPECT_EQ(run.metrics.Value("recovery.attempts"), 0);
}

TEST_F(FaultMatrixTest, CrashNodeMidScanAbortsDescriptively) {
  WorkloadSpec wspec;
  wspec.num_nodes = 3;
  wspec.num_tuples = 6'000;
  wspec.num_groups = 200;
  ASSERT_OK_AND_ASSIGN(PartitionedRelation rel, GenerateRelation(wspec));
  ASSERT_OK_AND_ASSIGN(AggregationSpec spec,
                       MakeBenchQuery(&rel.schema()));

  AlgorithmOptions opts;
  ASSERT_OK_AND_ASSIGN(opts.fault_plan,
                       FaultPlan::Parse("crash:node=1,tuple=500"));
  opts.failure.enabled = true;
  opts.failure.recv_idle_timeout_s = 2.0;

  Cluster cluster(SmallClusterParams(3, wspec.num_tuples, 256));
  RunResult run = cluster.Run(
      *MakeAlgorithm(AlgorithmKind::kAdaptiveTwoPhase), spec, rel, opts);
  ASSERT_FALSE(run.status.ok());
  EXPECT_NE(run.status.message().find("injected crash"),
            std::string::npos)
      << run.status.ToString();
  EXPECT_NE(run.status.message().find("node 1"), std::string::npos)
      << run.status.ToString();
  EXPECT_EQ(run.metrics.Value("fault.crashes_injected"), 1);
}

}  // namespace
}  // namespace adaptagg
