#include <gtest/gtest.h>

#include "core/query.h"
#include "test_util.h"

namespace adaptagg {
namespace {

using testing_util::SmallClusterParams;

// Oracle for filtered queries: copy the relation keeping only rows that
// pass `where`, reference-aggregate the copy, then drop result rows that
// fail `having`.
Result<ResultSet> FilteredReference(const AggregationSpec& spec,
                                    PartitionedRelation& rel,
                                    const ExprPtr& where,
                                    const ExprPtr& having) {
  ADAPTAGG_ASSIGN_OR_RETURN(
      PartitionedRelation filtered,
      PartitionedRelation::Create(spec.input_schema(), rel.num_nodes()));
  for (int node = 0; node < rel.num_nodes(); ++node) {
    HeapFileScanner scan(&rel.partition(node));
    for (TupleView t = scan.Next(); t.valid(); t = scan.Next()) {
      if (where == nullptr || EvalPredicate(*where, t)) {
        ADAPTAGG_RETURN_IF_ERROR(filtered.Append(node, t));
      }
    }
  }
  ADAPTAGG_RETURN_IF_ERROR(filtered.Flush());
  // The filtered relation has its own schema copy; rebuild the spec
  // against it so layouts resolve identically.
  ADAPTAGG_ASSIGN_OR_RETURN(
      AggregationSpec respec,
      AggregationSpec::Make(&filtered.schema(), spec.group_cols(),
                            spec.aggs()));
  ADAPTAGG_ASSIGN_OR_RETURN(ResultSet out,
                            ReferenceAggregate(respec, filtered));
  if (having != nullptr) {
    ADAPTAGG_RETURN_IF_ERROR(ValidatePredicate(*having, out.schema));
    std::vector<std::vector<uint8_t>> kept;
    for (auto& row : out.rows) {
      TupleView v(row.data(), &out.schema);
      if (EvalPredicate(*having, v)) kept.push_back(std::move(row));
    }
    out.rows = std::move(kept);
  }
  return out;
}

struct Fixture {
  PartitionedRelation rel;
  Query query;
};

Result<Fixture> MakeFixture(int64_t groups, ExprPtr where, ExprPtr having) {
  WorkloadSpec wspec;
  wspec.num_nodes = 4;
  wspec.num_tuples = 16'000;
  wspec.num_groups = groups;
  ADAPTAGG_ASSIGN_OR_RETURN(PartitionedRelation rel,
                            GenerateRelation(wspec));
  QueryBuilder builder(&rel.schema());
  if (where != nullptr) builder.Where(where);
  builder.GroupBy({"g"}).Count("cnt").Sum("v", "total");
  if (having != nullptr) builder.Having(having);
  ADAPTAGG_ASSIGN_OR_RETURN(Query query, builder.Build());
  return Fixture{std::move(rel), std::move(query)};
}

class WhereHavingProperty : public ::testing::TestWithParam<AlgorithmKind> {
};

TEST_P(WhereHavingProperty, WhereFiltersMatchOracle) {
  ExprPtr where = Lt(ColNamed("v"), Lit(int64_t{50'000}));  // ~half
  ASSERT_OK_AND_ASSIGN(Fixture f, MakeFixture(500, where, nullptr));
  Cluster cluster(SmallClusterParams(4, 16'000, 256));
  RunResult run = f.query.Execute(cluster, f.rel, GetParam());
  ASSERT_OK(run.status);
  ASSERT_OK_AND_ASSIGN(
      ResultSet expected,
      FilteredReference(f.query.spec, f.rel, where, nullptr));
  EXPECT_TRUE(ResultSetsEqual(run.results, expected))
      << "got " << run.results.num_rows() << " rows, expected "
      << expected.num_rows();
  EXPECT_LT(run.results.num_rows(), 501);
}

TEST_P(WhereHavingProperty, HavingFiltersMatchOracle) {
  ExprPtr having = Ge(ColNamed("cnt"), Lit(int64_t{30}));
  ASSERT_OK_AND_ASSIGN(Fixture f, MakeFixture(600, nullptr, having));
  Cluster cluster(SmallClusterParams(4, 16'000, 256));
  RunResult run = f.query.Execute(cluster, f.rel, GetParam());
  ASSERT_OK(run.status);
  ASSERT_OK_AND_ASSIGN(
      ResultSet expected,
      FilteredReference(f.query.spec, f.rel, nullptr, having));
  EXPECT_TRUE(ResultSetsEqual(run.results, expected));
  // HAVING actually dropped groups.
  int64_t dropped = 0;
  for (const auto& s : run.node_stats) {
    dropped += s.rows_filtered_by_having;
  }
  EXPECT_GT(dropped, 0);
  EXPECT_EQ(dropped + run.results.num_rows(), 600);
}

TEST_P(WhereHavingProperty, CombinedWhereAndHaving) {
  ExprPtr where = Ge(ColNamed("v"), Lit(int64_t{10'000}));
  ExprPtr having = Lt(ColNamed("total"), Lit(int64_t{1'000'000}));
  ASSERT_OK_AND_ASSIGN(Fixture f, MakeFixture(300, where, having));
  Cluster cluster(SmallClusterParams(4, 16'000, 128));
  RunResult run = f.query.Execute(cluster, f.rel, GetParam());
  ASSERT_OK(run.status);
  ASSERT_OK_AND_ASSIGN(
      ResultSet expected,
      FilteredReference(f.query.spec, f.rel, where, having));
  EXPECT_TRUE(ResultSetsEqual(run.results, expected));
}

INSTANTIATE_TEST_SUITE_P(
    AllAlgorithms, WhereHavingProperty,
    ::testing::ValuesIn(AllAlgorithms()),
    [](const ::testing::TestParamInfo<AlgorithmKind>& info) {
      std::string name = AlgorithmKindToString(info.param);
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

TEST(WhereHaving, WhereThatDropsEverything) {
  ExprPtr where = Lt(ColNamed("v"), Lit(int64_t{-1}));
  ASSERT_OK_AND_ASSIGN(Fixture f, MakeFixture(100, where, nullptr));
  Cluster cluster(SmallClusterParams(4, 16'000));
  RunResult run =
      f.query.Execute(cluster, f.rel, AlgorithmKind::kAdaptiveTwoPhase);
  ASSERT_OK(run.status);
  EXPECT_EQ(run.results.num_rows(), 0);
}

TEST(WhereHaving, InvalidPredicatesRejectedByClusterRun) {
  ASSERT_OK_AND_ASSIGN(Fixture f, MakeFixture(100, nullptr, nullptr));
  Cluster cluster(SmallClusterParams(4, 16'000));
  AlgorithmOptions opts;
  opts.where = Col(99);  // out of range for the input schema
  RunResult run = cluster.Run(*MakeAlgorithm(AlgorithmKind::kTwoPhase),
                              f.query.spec, f.rel, opts);
  EXPECT_FALSE(run.status.ok());
  EXPECT_NE(run.status.message().find("WHERE"), std::string::npos);

  AlgorithmOptions opts2;
  opts2.having = ColNamed("does_not_exist");
  RunResult run2 = cluster.Run(*MakeAlgorithm(AlgorithmKind::kTwoPhase),
                               f.query.spec, f.rel, opts2);
  EXPECT_FALSE(run2.status.ok());
  EXPECT_NE(run2.status.message().find("HAVING"), std::string::npos);
}

}  // namespace
}  // namespace adaptagg
