#include "core/query.h"

#include <gtest/gtest.h>

#include "test_util.h"
#include "workload/tpcd.h"

namespace adaptagg {
namespace {

using testing_util::SmallClusterParams;

TEST(QueryBuilder, BuildsFullQuery) {
  Schema schema = MakeBenchSchema(100);
  auto q = QueryBuilder(&schema)
               .Where(Gt(ColNamed("v"), Lit(int64_t{100})))
               .GroupBy({"g"})
               .Count("cnt")
               .Sum("v", "total")
               .Having(Ge(ColNamed("cnt"), Lit(int64_t{2})))
               .Build();
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->spec.final_schema().num_fields(), 3);
  EXPECT_NE(q->where, nullptr);
  EXPECT_NE(q->having, nullptr);
  std::string s = q->ToString();
  EXPECT_NE(s.find("WHERE"), std::string::npos);
  EXPECT_NE(s.find("GROUP BY g"), std::string::npos);
  EXPECT_NE(s.find("HAVING"), std::string::npos);
}

TEST(QueryBuilder, RejectsUnknownColumns) {
  Schema schema = MakeBenchSchema(100);
  EXPECT_FALSE(
      QueryBuilder(&schema).GroupBy({"nope"}).Count("c").Build().ok());
  EXPECT_FALSE(
      QueryBuilder(&schema).GroupBy({"g"}).Sum("nope", "s").Build().ok());
  // HAVING referencing a column that is not in the output.
  EXPECT_FALSE(QueryBuilder(&schema)
                   .GroupBy({"g"})
                   .Count("c")
                   .Having(Gt(ColNamed("v"), Lit(int64_t{0})))
                   .Build()
                   .ok());
  // WHERE over a bytes column as a bare predicate.
  EXPECT_FALSE(QueryBuilder(&schema)
                   .Where(ColNamed("pad"))
                   .GroupBy({"g"})
                   .Count("c")
                   .Build()
                   .ok());
}

TEST(QueryBuilder, DistinctIsZeroAggregates) {
  Schema schema = MakeBenchSchema(100);
  auto q = QueryBuilder(&schema).GroupBy({"g", "v"}).Build();
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->spec.state_width(), 0);
  EXPECT_EQ(q->spec.final_schema().num_fields(), 2);
}

TEST(QueryBuilder, AllAggregateKinds) {
  Schema schema = MakeBenchSchema(100);
  auto q = QueryBuilder(&schema)
               .GroupBy({"g"})
               .Count("c")
               .Sum("v", "s")
               .Avg("v", "a")
               .Min("v", "mn")
               .Max("v", "mx")
               .Build();
  ASSERT_TRUE(q.ok());
  const Schema& fin = q->spec.final_schema();
  ASSERT_EQ(fin.num_fields(), 6);
  EXPECT_EQ(fin.field(3).name, "a");
  EXPECT_EQ(fin.field(3).type, DataType::kDouble);
}

TEST(Query, ExecuteEndToEnd) {
  WorkloadSpec wspec;
  wspec.num_nodes = 4;
  wspec.num_tuples = 20'000;
  wspec.num_groups = 200;
  ASSERT_OK_AND_ASSIGN(PartitionedRelation rel, GenerateRelation(wspec));
  auto q = QueryBuilder(&rel.schema())
               .GroupBy({"g"})
               .Count("cnt")
               .Sum("v", "total")
               .Build();
  ASSERT_TRUE(q.ok());

  Cluster cluster(SmallClusterParams(4, wspec.num_tuples));
  RunResult run = q->Execute(cluster, rel,
                             AlgorithmKind::kAdaptiveTwoPhase);
  ASSERT_OK(run.status);
  EXPECT_EQ(run.results.num_rows(), 200);

  // Must match the no-builder path.
  ASSERT_OK_AND_ASSIGN(ResultSet expected,
                       ReferenceAggregate(q->spec, rel));
  EXPECT_TRUE(ResultSetsEqual(run.results, expected));
}

TEST(Query, Q1OnLineitemViaBuilder) {
  TpcdSpec tspec;
  tspec.num_nodes = 2;
  tspec.num_rows = 10'000;
  ASSERT_OK_AND_ASSIGN(PartitionedRelation rel, GenerateLineitem(tspec));
  // Q1 with its date predicate: l_shipdate <= threshold.
  auto q = QueryBuilder(&rel.schema())
               .Where(Le(ColNamed("l_shipdate"), Lit(int64_t{10'000})))
               .GroupBy({"l_returnflag", "l_linestatus"})
               .Count("count_order")
               .Sum("l_quantity", "sum_qty")
               .Avg("l_discount", "avg_disc")
               .Build();
  ASSERT_TRUE(q.ok()) << q.status().ToString();

  Cluster cluster(SmallClusterParams(2, tspec.num_rows));
  RunResult run = q->Execute(cluster, rel, AlgorithmKind::kTwoPhase);
  ASSERT_OK(run.status);
  EXPECT_GE(run.results.num_rows(), 4);
  EXPECT_LE(run.results.num_rows(), 6);
  // The predicate bites: total counted rows < input rows.
  int64_t counted = 0;
  for (int64_t i = 0; i < run.results.num_rows(); ++i) {
    counted += run.results.row(i).GetInt64(2);
  }
  EXPECT_LT(counted, tspec.num_rows);
  EXPECT_GT(counted, 0);
}

}  // namespace
}  // namespace adaptagg
