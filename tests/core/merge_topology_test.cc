// The merge-topology invariance matrix: every pinned topology, through
// every supported algorithm body, over both transports, must emit
// byte-identical rows on the same nodes at the identical modeled time
// as the seed wire. Only wall-clock behavior may differ — that is the
// whole contract of DESIGN.md §12.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "model/merge_model.h"
#include "test_util.h"

namespace adaptagg {
namespace {

using testing_util::SmallClusterParams;

struct Fixture {
  PartitionedRelation rel;
  AggregationSpec spec;
};

Result<Fixture> MakeFixture(int nodes, int64_t tuples, int64_t groups) {
  WorkloadSpec wspec;
  wspec.num_nodes = nodes;
  wspec.num_tuples = tuples;
  wspec.num_groups = groups;
  ADAPTAGG_ASSIGN_OR_RETURN(PartitionedRelation rel,
                            GenerateRelation(wspec));
  ADAPTAGG_ASSIGN_OR_RETURN(AggregationSpec spec,
                            MakeBenchQuery(&rel.schema()));
  return Fixture{std::move(rel), std::move(spec)};
}

RunResult RunWith(const SystemParams& params, AlgorithmKind kind,
                  Fixture& f, MergeMode mode, int tcp_base_port) {
  Cluster cluster(params);
  if (tcp_base_port > 0) {
    cluster.set_transport_factory([tcp_base_port](int n) {
      return MakeTcpMesh(n, tcp_base_port);
    });
  }
  AlgorithmOptions opts;
  opts.gather_results = true;
  opts.obs.traces = true;
  opts.merge_mode = mode;
  return cluster.Run(*MakeAlgorithm(kind), f.spec, f.rel, opts);
}

/// Topology values resolved by each node, from the `merge.topology`
/// decision instants.
std::vector<int64_t> ResolvedTopologies(const RunResult& run) {
  std::vector<int64_t> out;
  for (const TraceEvent& e : run.trace_events) {
    if (e.kind != TraceEvent::Kind::kInstant ||
        e.name != "merge.topology") {
      continue;
    }
    for (const auto& [k, v] : e.args) {
      if (k == "topology") out.push_back(v);
    }
  }
  return out;
}

void ExpectAllResolved(const RunResult& run, MergeTopology want,
                       int nodes) {
  const std::vector<int64_t> got = ResolvedTopologies(run);
  ASSERT_EQ(static_cast<int>(got.size()), nodes);
  for (int64_t t : got) {
    EXPECT_EQ(t, static_cast<int64_t>(want))
        << "expected every node to resolve "
        << MergeTopologyToString(want);
  }
}

/// The invariance contract against a seed baseline: identical rows with
/// identical values, identical modeled time, and the seed's per-node
/// accounting (every final row must surface on its seed owner node).
/// The default `sim_tol` is a picosecond: three orders below the
/// smallest modeled charge (microseconds), so any real cost
/// perturbation still fails, but immune to double-summation ULP noise.
/// ULP noise is inherent to the comparison, not a topology defect: a
/// *seed* run's receive side sums per-page charges in arrival order,
/// and inproc multi-sender interleaving is scheduling-dependent, so the
/// seed's own last bit flips run to run, while the ledger replay sums
/// the same multiset in fixed node order. Cells where page fills vary
/// run-to-run (A-Rep's mid-stream switch flush) or sockets reorder
/// arrivals (TCP) get a looser nanosecond bound.
void ExpectSeedInvariant(const RunResult& run, const RunResult& seed,
                         double sim_tol = 1e-12) {
  EXPECT_TRUE(ResultSetsEqual(run.results, seed.results, 0.0))
      << "topology changed an emitted value";
  EXPECT_NEAR(run.sim_time_s, seed.sim_time_s, sim_tol);
  ASSERT_EQ(run.node_stats.size(), seed.node_stats.size());
  for (size_t i = 0; i < run.node_stats.size(); ++i) {
    SCOPED_TRACE("node " + std::to_string(i));
    EXPECT_EQ(run.node_stats[i].tuples_scanned,
              seed.node_stats[i].tuples_scanned);
    EXPECT_EQ(run.node_stats[i].raw_records_sent,
              seed.node_stats[i].raw_records_sent);
    EXPECT_EQ(run.node_stats[i].partial_records_sent,
              seed.node_stats[i].partial_records_sent);
    EXPECT_EQ(run.node_stats[i].partial_records_received,
              seed.node_stats[i].partial_records_received);
    EXPECT_EQ(run.node_stats[i].result_rows,
              seed.node_stats[i].result_rows);
  }
}

const AlgorithmKind kMatrixAlgorithms[] = {
    AlgorithmKind::kTwoPhase,
    AlgorithmKind::kRepartitioning,
    AlgorithmKind::kAdaptiveTwoPhase,
};

const MergeMode kPinnedModes[] = {
    MergeMode::kCentral,
    MergeMode::kTree,
    MergeMode::kRadix,
    MergeMode::kShared,
};

MergeTopology ExpectedInproc(MergeMode mode) {
  switch (mode) {
    case MergeMode::kCentral:
      return MergeTopology::kCentral;
    case MergeMode::kTree:
      return MergeTopology::kTree;
    case MergeMode::kRadix:
      return MergeTopology::kRadix;
    case MergeMode::kShared:
      return MergeTopology::kShared;
    case MergeMode::kAuto:
      break;
  }
  return MergeTopology::kSeed;
}

TEST(MergeTopologyMatrix, PinnedTopologiesMatchSeedInproc) {
  const int kNodes = 4;
  ASSERT_OK_AND_ASSIGN(Fixture f, MakeFixture(kNodes, 8'000, 300));
  const SystemParams params =
      SmallClusterParams(kNodes, 8'000, /*max=*/2'048);
  ASSERT_OK_AND_ASSIGN(ResultSet expected,
                       ReferenceAggregate(f.spec, f.rel));
  for (AlgorithmKind kind : kMatrixAlgorithms) {
    SCOPED_TRACE(AlgorithmKindToString(kind));
    // kAuto without a sampling phase is the seed wire on every body.
    const RunResult seed =
        RunWith(params, kind, f, MergeMode::kAuto, /*tcp=*/0);
    ASSERT_OK(seed.status);
    ASSERT_TRUE(ResultSetsEqual(seed.results, expected));
    ExpectAllResolved(seed, MergeTopology::kSeed, kNodes);
    for (MergeMode mode : kPinnedModes) {
      SCOPED_TRACE(MergeModeToString(mode));
      const RunResult run = RunWith(params, kind, f, mode, /*tcp=*/0);
      ASSERT_OK(run.status);
      ExpectAllResolved(run, ExpectedInproc(mode), kNodes);
      ExpectSeedInvariant(run, seed);
    }
  }
}

TEST(MergeTopologyMatrix, PinnedTopologiesMatchSeedOverTcp) {
  const int kNodes = 3;
  ASSERT_OK_AND_ASSIGN(Fixture f, MakeFixture(kNodes, 4'000, 150));
  const SystemParams params =
      SmallClusterParams(kNodes, 4'000, /*max=*/1'024);
  int port = 43'150;
  for (AlgorithmKind kind : kMatrixAlgorithms) {
    SCOPED_TRACE(AlgorithmKindToString(kind));
    const RunResult seed = RunWith(params, kind, f, MergeMode::kAuto, port);
    port += 20;
    ASSERT_OK(seed.status);
    ExpectAllResolved(seed, MergeTopology::kSeed, kNodes);
    for (MergeMode mode : kPinnedModes) {
      SCOPED_TRACE(MergeModeToString(mode));
      const RunResult run = RunWith(params, kind, f, mode, port);
      port += 20;
      ASSERT_OK(run.status);
      // kShared needs a shared-memory mesh; over sockets it demotes to
      // the seed wire instead of failing.
      const MergeTopology want = mode == MergeMode::kShared
                                     ? MergeTopology::kSeed
                                     : ExpectedInproc(mode);
      ExpectAllResolved(run, want, kNodes);
      ExpectSeedInvariant(run, seed, /*sim_tol=*/1e-9);
    }
  }
}

TEST(MergeTopologyMatrix, CentralizedBodySupportsPinnedTree) {
  // C-2P's star is itself a reduction; the plane generalizes it to the
  // binomial tree (and kCentral collapses to the seed star wire-wise,
  // but must still match through the phantom-charge path).
  const int kNodes = 4;
  ASSERT_OK_AND_ASSIGN(Fixture f, MakeFixture(kNodes, 6'000, 100));
  const SystemParams params =
      SmallClusterParams(kNodes, 6'000, /*max=*/2'048);
  const RunResult seed = RunWith(params, AlgorithmKind::kCentralizedTwoPhase,
                                 f, MergeMode::kAuto, /*tcp=*/0);
  ASSERT_OK(seed.status);
  for (MergeMode mode : kPinnedModes) {
    SCOPED_TRACE(MergeModeToString(mode));
    const RunResult run = RunWith(params, AlgorithmKind::kCentralizedTwoPhase,
                                  f, mode, /*tcp=*/0);
    ASSERT_OK(run.status);
    ExpectSeedInvariant(run, seed);
  }
}

TEST(MergeTopologyMatrix, GraefeBodySupportsPinnedTopologies) {
  const int kNodes = 4;
  ASSERT_OK_AND_ASSIGN(Fixture f, MakeFixture(kNodes, 6'000, 200));
  const SystemParams params =
      SmallClusterParams(kNodes, 6'000, /*max=*/2'048);
  const RunResult seed = RunWith(params, AlgorithmKind::kGraefeTwoPhase, f,
                                 MergeMode::kAuto, /*tcp=*/0);
  ASSERT_OK(seed.status);
  for (MergeMode mode : kPinnedModes) {
    SCOPED_TRACE(MergeModeToString(mode));
    const RunResult run = RunWith(params, AlgorithmKind::kGraefeTwoPhase, f,
                                  mode, /*tcp=*/0);
    ASSERT_OK(run.status);
    ExpectSeedInvariant(run, seed);
  }
}

TEST(MergeTopologyMatrix, AdaptiveRepartitioningSupportsPinnedTopologies) {
  // Groups >> M so A-Rep actually exercises its end-of-phase switch
  // while the merge plane is active.
  const int kNodes = 4;
  ASSERT_OK_AND_ASSIGN(Fixture f, MakeFixture(kNodes, 8'000, 1'200));
  const SystemParams params =
      SmallClusterParams(kNodes, 8'000, /*max=*/512);
  const RunResult seed =
      RunWith(params, AlgorithmKind::kAdaptiveRepartitioning, f,
              MergeMode::kAuto, /*tcp=*/0);
  ASSERT_OK(seed.status);
  for (MergeMode mode : kPinnedModes) {
    SCOPED_TRACE(MergeModeToString(mode));
    const RunResult run =
        RunWith(params, AlgorithmKind::kAdaptiveRepartitioning, f, mode,
                /*tcp=*/0);
    ASSERT_OK(run.status);
    ExpectSeedInvariant(run, seed, /*sim_tol=*/1e-9);
  }
}

TEST(MergeTopologyMatrix, SingleNodeDemotesToSeed) {
  ASSERT_OK_AND_ASSIGN(Fixture f, MakeFixture(1, 2'000, 50));
  const SystemParams params = SmallClusterParams(1, 2'000);
  const RunResult seed = RunWith(params, AlgorithmKind::kTwoPhase, f,
                                 MergeMode::kAuto, /*tcp=*/0);
  ASSERT_OK(seed.status);
  for (MergeMode mode : {MergeMode::kCentral, MergeMode::kTree}) {
    SCOPED_TRACE(MergeModeToString(mode));
    const RunResult run =
        RunWith(params, AlgorithmKind::kTwoPhase, f, mode, /*tcp=*/0);
    ASSERT_OK(run.status);
    ExpectAllResolved(run, MergeTopology::kSeed, 1);
    ExpectSeedInvariant(run, seed);
  }
}

TEST(MergeTopologyMatrix, SamplingAutoPicksTopologyAndMatchesReference) {
  // Many nodes, few groups: the sampling estimate should route kAuto to
  // the tree reduction, and the run must still match the reference.
  const int kNodes = 8;
  ASSERT_OK_AND_ASSIGN(Fixture f, MakeFixture(kNodes, 16'000, 60));
  const SystemParams params =
      SmallClusterParams(kNodes, 16'000, /*max=*/4'096);
  ASSERT_OK_AND_ASSIGN(ResultSet expected,
                       ReferenceAggregate(f.spec, f.rel));
  AlgorithmOptions opts;
  opts.gather_results = true;
  opts.obs.traces = true;
  opts.crossover_threshold = 1'000'000;  // keep the two-phase body
  Cluster cluster(params);
  RunResult run = cluster.Run(*MakeAlgorithm(AlgorithmKind::kSampling),
                              f.spec, f.rel, opts);
  ASSERT_OK(run.status);
  EXPECT_TRUE(ResultSetsEqual(run.results, expected));
  ExpectAllResolved(run, MergeTopology::kTree, kNodes);
}

TEST(MergeTopologyMatrix, SamplingAutoPicksSharedInproc) {
  // Plenty of uniform groups on an inproc mesh: kAuto should land on
  // the shared concurrent table.
  const int kNodes = 4;
  ASSERT_OK_AND_ASSIGN(Fixture f, MakeFixture(kNodes, 24'000, 3'000));
  const SystemParams params =
      SmallClusterParams(kNodes, 24'000, /*max=*/16'384);
  ASSERT_OK_AND_ASSIGN(ResultSet expected,
                       ReferenceAggregate(f.spec, f.rel));
  AlgorithmOptions opts;
  opts.gather_results = true;
  opts.obs.traces = true;
  opts.crossover_threshold = 1'000'000;
  Cluster cluster(params);
  RunResult run = cluster.Run(*MakeAlgorithm(AlgorithmKind::kSampling),
                              f.spec, f.rel, opts);
  ASSERT_OK(run.status);
  EXPECT_TRUE(ResultSetsEqual(run.results, expected));
  ExpectAllResolved(run, MergeTopology::kShared, kNodes);
}

TEST(MergeTopologyMatrix, RecoveryRunsDemoteToSeed) {
  // The replay protocol assumes the seed wire: a recovery-enabled run
  // with a pinned tree must resolve seed on every node and still match.
  const int kNodes = 4;
  ASSERT_OK_AND_ASSIGN(Fixture f, MakeFixture(kNodes, 6'000, 200));
  const SystemParams params =
      SmallClusterParams(kNodes, 6'000, /*max=*/2'048);
  ASSERT_OK_AND_ASSIGN(ResultSet expected,
                       ReferenceAggregate(f.spec, f.rel));
  Cluster cluster(params);
  AlgorithmOptions opts;
  opts.gather_results = true;
  opts.obs.traces = true;
  opts.merge_mode = MergeMode::kTree;
  opts.recovery.enabled = true;
  RunResult run = cluster.Run(*MakeAlgorithm(AlgorithmKind::kTwoPhase),
                              f.spec, f.rel, opts);
  ASSERT_OK(run.status);
  EXPECT_TRUE(ResultSetsEqual(run.results, expected));
  ExpectAllResolved(run, MergeTopology::kSeed, kNodes);
}

}  // namespace
}  // namespace adaptagg
