#include <gtest/gtest.h>

#include "core/phases.h"
#include "test_util.h"

namespace adaptagg {
namespace {

using testing_util::SmallClusterParams;

// Direct protocol tests of DataReceiver: phase filtering, EOS counting,
// end-of-phase latching, abort handling, record routing.
class ReceiverTest : public ::testing::Test {
 protected:
  ReceiverTest()
      : mesh_(MakeInprocMesh(1)),
        params_(SmallClusterParams(1, 100)),
        net_(params_),
        schema_(MakeBenchSchema(32)) {
    auto spec = MakeBenchQuery(&schema_);
    EXPECT_TRUE(spec.ok());
    spec_ = std::make_unique<AggregationSpec>(std::move(spec).value());
    ctx_ = std::make_unique<NodeContext>(0, params_, *spec_, options_,
                                         nullptr, nullptr, mesh_[0].get(),
                                         &net_);
  }

  // Pushes a message into the node's own inbox.
  void Push(MessageType type, uint32_t phase,
            std::vector<uint8_t> payload = {}) {
    Message m;
    m.type = type;
    m.phase = phase;
    m.payload = std::move(payload);
    ASSERT_OK(ctx_->Send(0, std::move(m)));
  }

  std::vector<uint8_t> RawPage(std::vector<int64_t> keys) {
    PageBuilder builder(params_.message_page_bytes,
                        spec_->projected_width());
    std::vector<uint8_t> rec(
        static_cast<size_t>(spec_->projected_width()), 0);
    for (int64_t k : keys) {
      std::memcpy(rec.data(), &k, 8);
      builder.Append(rec.data());
    }
    return builder.Finish();
  }

  std::vector<std::unique_ptr<Transport>> mesh_;
  SystemParams params_;
  NetworkModel net_;
  Schema schema_;
  std::unique_ptr<AggregationSpec> spec_;
  AlgorithmOptions options_;
  std::unique_ptr<NodeContext> ctx_;
};

TEST_F(ReceiverTest, CountsOnlyDataPhaseEos) {
  SimDisk disk(4096);
  SpillingAggregator agg(spec_.get(), &disk, 64);
  DataReceiver recv(ctx_.get(), &agg, /*expected_eos=*/2);

  Push(MessageType::kEndOfStream, kPhaseSample);  // ignored
  Push(MessageType::kEndOfStream, kPhaseData);
  ASSERT_OK(recv.Poll());
  EXPECT_FALSE(recv.done());
  Push(MessageType::kEndOfStream, kPhaseData);
  ASSERT_OK(recv.Drain());
  EXPECT_TRUE(recv.done());
}

TEST_F(ReceiverTest, LatchesEndOfPhase) {
  SimDisk disk(4096);
  SpillingAggregator agg(spec_.get(), &disk, 64);
  DataReceiver recv(ctx_.get(), &agg, 1);
  EXPECT_FALSE(recv.end_of_phase_seen());
  Push(MessageType::kEndOfPhase, kPhaseData);
  ASSERT_OK(recv.Poll());
  EXPECT_TRUE(recv.end_of_phase_seen());
  // Latch persists across further messages.
  Push(MessageType::kEndOfStream, kPhaseData);
  ASSERT_OK(recv.Drain());
  EXPECT_TRUE(recv.end_of_phase_seen());
}

TEST_F(ReceiverTest, RoutesRawRecordsIntoAggregator) {
  SimDisk disk(4096);
  SpillingAggregator agg(spec_.get(), &disk, 64);
  DataReceiver recv(ctx_.get(), &agg, 1);
  Push(MessageType::kRawPage, kPhaseData, RawPage({1, 2, 2, 3, 3, 3}));
  Push(MessageType::kEndOfStream, kPhaseData);
  ASSERT_OK(recv.Drain());
  EXPECT_EQ(ctx_->stats().raw_records_received, 6);
  int emitted = 0;
  ASSERT_OK(
      agg.Finish([&](const uint8_t*, const uint8_t*) { ++emitted; }));
  EXPECT_EQ(emitted, 3);
}

TEST_F(ReceiverTest, AbortSurfacesAsError) {
  SimDisk disk(4096);
  SpillingAggregator agg(spec_.get(), &disk, 64);
  DataReceiver recv(ctx_.get(), &agg, 1);
  Push(MessageType::kAbort, kPhaseData);
  Status st = recv.Poll();
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.message().find("aborted by peer"), std::string::npos);
}

TEST_F(ReceiverTest, ControlMessageInDataPhaseIsAProtocolError) {
  SimDisk disk(4096);
  SpillingAggregator agg(spec_.get(), &disk, 64);
  DataReceiver recv(ctx_.get(), &agg, 1);
  Push(MessageType::kControl, kPhaseData, {1});
  EXPECT_FALSE(recv.Poll().ok());
}

TEST_F(ReceiverTest, GenericSinksReceiveRecordBatches) {
  int raw = 0, partial = 0;
  DataReceiver recv(
      ctx_.get(),
      [&](const TupleBatch& b) {
        raw += b.size();
        return Status::OK();
      },
      [&](const TupleBatch& b) {
        partial += b.size();
        return Status::OK();
      },
      1);
  Push(MessageType::kRawPage, kPhaseData, RawPage({7, 8}));
  // A partial page with one record.
  PageBuilder builder(params_.message_page_bytes, spec_->partial_width());
  std::vector<uint8_t> rec(static_cast<size_t>(spec_->partial_width()), 0);
  builder.Append(rec.data());
  Push(MessageType::kPartialPage, kPhaseData, builder.Finish());
  Push(MessageType::kEndOfStream, kPhaseData);
  ASSERT_OK(recv.Drain());
  EXPECT_EQ(raw, 2);
  EXPECT_EQ(partial, 1);
}

TEST_F(ReceiverTest, WidePageIsChunkedIntoBatchSizedViews) {
  // A 2 KB page of 8-byte records (the bench key width is the record) can
  // exceed kBatchWidth; the receiver must window the decode.
  std::vector<int64_t> keys;
  const int capacity =
      PageBuilder::Capacity(params_.message_page_bytes,
                            spec_->projected_width());
  for (int i = 0; i < capacity; ++i) keys.push_back(i % 17);
  ASSERT_GT(capacity, 0);
  std::vector<int> batch_sizes;
  int total = 0;
  DataReceiver recv(
      ctx_.get(),
      [&](const TupleBatch& b) {
        EXPECT_LE(b.size(), kBatchWidth);
        batch_sizes.push_back(b.size());
        total += b.size();
        return Status::OK();
      },
      [&](const TupleBatch&) { return Status::OK(); }, 1);
  Push(MessageType::kRawPage, kPhaseData, RawPage(keys));
  Push(MessageType::kEndOfStream, kPhaseData);
  ASSERT_OK(recv.Drain());
  EXPECT_EQ(total, capacity);
  if (capacity > kBatchWidth) {
    EXPECT_GE(batch_sizes.size(), 2u);
  }
  EXPECT_EQ(ctx_->stats().raw_records_received, capacity);
}

TEST_F(ReceiverTest, SinkErrorPropagates) {
  DataReceiver recv(
      ctx_.get(),
      [&](const TupleBatch&) { return Status::Internal("sink exploded"); },
      [&](const TupleBatch&) { return Status::OK(); }, 1);
  Push(MessageType::kRawPage, kPhaseData, RawPage({1}));
  Status st = recv.Poll();
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.message().find("sink exploded"), std::string::npos);
}

TEST_F(ReceiverTest, ForgedHeaderCountIsRejected) {
  // A page whose header claims more records than a page can hold must be
  // rejected with a descriptive network error, not read out of bounds.
  std::vector<uint8_t> payload = RawPage({1, 2, 3});
  const uint32_t forged = 1u << 20;
  std::memcpy(payload.data(), &forged, sizeof(forged));
  SimDisk disk(4096);
  SpillingAggregator agg(spec_.get(), &disk, 64);
  DataReceiver recv(ctx_.get(), &agg, 1);
  Push(MessageType::kRawPage, kPhaseData, std::move(payload));
  Status st = recv.Poll();
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kNetworkError);
  EXPECT_NE(st.message().find("forged page header"), std::string::npos);
  EXPECT_EQ(ctx_->stats().raw_records_received, 0);
}

TEST_F(ReceiverTest, TruncatedPagePayloadIsRejected) {
  // Header claims records the (trimmed) payload does not carry.
  std::vector<uint8_t> payload = RawPage({1, 2, 3, 4});
  payload.resize(4 + static_cast<size_t>(spec_->projected_width()) * 2);
  SimDisk disk(4096);
  SpillingAggregator agg(spec_.get(), &disk, 64);
  DataReceiver recv(ctx_.get(), &agg, 1);
  Push(MessageType::kRawPage, kPhaseData, std::move(payload));
  Status st = recv.Poll();
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kNetworkError);
  EXPECT_NE(st.message().find("truncated page"), std::string::npos);
}

TEST_F(ReceiverTest, UndersizedPayloadIsRejected) {
  SimDisk disk(4096);
  SpillingAggregator agg(spec_.get(), &disk, 64);
  DataReceiver recv(ctx_.get(), &agg, 1);
  Push(MessageType::kPartialPage, kPhaseData, {0x01, 0x02});
  Status st = recv.Poll();
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kNetworkError);
}

}  // namespace
}  // namespace adaptagg
