#include <gtest/gtest.h>

#include "core/phases.h"
#include "test_util.h"

namespace adaptagg {
namespace {

using testing_util::SmallClusterParams;

// Direct protocol tests of DataReceiver: phase filtering, EOS counting,
// end-of-phase latching, abort handling, record routing.
class ReceiverTest : public ::testing::Test {
 protected:
  ReceiverTest()
      : mesh_(MakeInprocMesh(1)),
        params_(SmallClusterParams(1, 100)),
        net_(params_),
        schema_(MakeBenchSchema(32)) {
    auto spec = MakeBenchQuery(&schema_);
    EXPECT_TRUE(spec.ok());
    spec_ = std::make_unique<AggregationSpec>(std::move(spec).value());
    ctx_ = std::make_unique<NodeContext>(0, params_, *spec_, options_,
                                         nullptr, nullptr, mesh_[0].get(),
                                         &net_);
  }

  // Pushes a message into the node's own inbox.
  void Push(MessageType type, uint32_t phase,
            std::vector<uint8_t> payload = {}) {
    Message m;
    m.type = type;
    m.phase = phase;
    m.payload = std::move(payload);
    ASSERT_OK(ctx_->Send(0, std::move(m)));
  }

  std::vector<uint8_t> RawPage(std::vector<int64_t> keys) {
    PageBuilder builder(params_.message_page_bytes,
                        spec_->projected_width());
    std::vector<uint8_t> rec(
        static_cast<size_t>(spec_->projected_width()), 0);
    for (int64_t k : keys) {
      std::memcpy(rec.data(), &k, 8);
      builder.Append(rec.data());
    }
    return builder.Finish();
  }

  std::vector<std::unique_ptr<Transport>> mesh_;
  SystemParams params_;
  NetworkModel net_;
  Schema schema_;
  std::unique_ptr<AggregationSpec> spec_;
  AlgorithmOptions options_;
  std::unique_ptr<NodeContext> ctx_;
};

TEST_F(ReceiverTest, CountsOnlyDataPhaseEos) {
  SimDisk disk(4096);
  SpillingAggregator agg(spec_.get(), &disk, 64);
  DataReceiver recv(ctx_.get(), &agg, /*expected_eos=*/2);

  Push(MessageType::kEndOfStream, kPhaseSample);  // ignored
  Push(MessageType::kEndOfStream, kPhaseData);
  ASSERT_OK(recv.Poll());
  EXPECT_FALSE(recv.done());
  Push(MessageType::kEndOfStream, kPhaseData);
  ASSERT_OK(recv.Drain());
  EXPECT_TRUE(recv.done());
}

TEST_F(ReceiverTest, LatchesEndOfPhase) {
  SimDisk disk(4096);
  SpillingAggregator agg(spec_.get(), &disk, 64);
  DataReceiver recv(ctx_.get(), &agg, 1);
  EXPECT_FALSE(recv.end_of_phase_seen());
  Push(MessageType::kEndOfPhase, kPhaseData);
  ASSERT_OK(recv.Poll());
  EXPECT_TRUE(recv.end_of_phase_seen());
  // Latch persists across further messages.
  Push(MessageType::kEndOfStream, kPhaseData);
  ASSERT_OK(recv.Drain());
  EXPECT_TRUE(recv.end_of_phase_seen());
}

TEST_F(ReceiverTest, RoutesRawRecordsIntoAggregator) {
  SimDisk disk(4096);
  SpillingAggregator agg(spec_.get(), &disk, 64);
  DataReceiver recv(ctx_.get(), &agg, 1);
  Push(MessageType::kRawPage, kPhaseData, RawPage({1, 2, 2, 3, 3, 3}));
  Push(MessageType::kEndOfStream, kPhaseData);
  ASSERT_OK(recv.Drain());
  EXPECT_EQ(ctx_->stats().raw_records_received, 6);
  int emitted = 0;
  ASSERT_OK(
      agg.Finish([&](const uint8_t*, const uint8_t*) { ++emitted; }));
  EXPECT_EQ(emitted, 3);
}

TEST_F(ReceiverTest, AbortSurfacesAsError) {
  SimDisk disk(4096);
  SpillingAggregator agg(spec_.get(), &disk, 64);
  DataReceiver recv(ctx_.get(), &agg, 1);
  Push(MessageType::kAbort, kPhaseData);
  Status st = recv.Poll();
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.message().find("aborted by peer"), std::string::npos);
}

TEST_F(ReceiverTest, ControlMessageInDataPhaseIsAProtocolError) {
  SimDisk disk(4096);
  SpillingAggregator agg(spec_.get(), &disk, 64);
  DataReceiver recv(ctx_.get(), &agg, 1);
  Push(MessageType::kControl, kPhaseData, {1});
  EXPECT_FALSE(recv.Poll().ok());
}

TEST_F(ReceiverTest, GenericSinksReceiveRecords) {
  int raw = 0, partial = 0;
  DataReceiver recv(
      ctx_.get(),
      [&](const uint8_t*) {
        ++raw;
        return Status::OK();
      },
      [&](const uint8_t*) {
        ++partial;
        return Status::OK();
      },
      1);
  Push(MessageType::kRawPage, kPhaseData, RawPage({7, 8}));
  // A partial page with one record.
  PageBuilder builder(params_.message_page_bytes, spec_->partial_width());
  std::vector<uint8_t> rec(static_cast<size_t>(spec_->partial_width()), 0);
  builder.Append(rec.data());
  Push(MessageType::kPartialPage, kPhaseData, builder.Finish());
  Push(MessageType::kEndOfStream, kPhaseData);
  ASSERT_OK(recv.Drain());
  EXPECT_EQ(raw, 2);
  EXPECT_EQ(partial, 1);
}

TEST_F(ReceiverTest, SinkErrorPropagates) {
  DataReceiver recv(
      ctx_.get(),
      [&](const uint8_t*) { return Status::Internal("sink exploded"); },
      [&](const uint8_t*) { return Status::OK(); }, 1);
  Push(MessageType::kRawPage, kPhaseData, RawPage({1}));
  Status st = recv.Poll();
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.message().find("sink exploded"), std::string::npos);
}

}  // namespace
}  // namespace adaptagg
