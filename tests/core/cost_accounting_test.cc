#include <gtest/gtest.h>

#include "test_util.h"

namespace adaptagg {
namespace {

using testing_util::SmallClusterParams;

// Exact accounting: on a tiny, fully-deterministic workload the engine's
// charged costs must equal the paper's §2 formulas to the last
// microsecond. 2 nodes, 100 tuples/node (3 pages of 40+40+20), exactly
// 4 groups (sequential distribution), M large (no spill anywhere),
// high-bandwidth network.

constexpr int kNodes = 2;
constexpr int64_t kTuplesPerNode = 100;
constexpr int64_t kTuples = kNodes * kTuplesPerNode;
constexpr int64_t kGroups = 4;
constexpr int64_t kPagesPerNode = 3;  // ceil(100 / 40) with 100B tuples
// Sequential groups (i % 4) over round-robin placement (i % 2) means
// node 0 holds exactly groups {0, 2} and node 1 {1, 3}.
constexpr int64_t kLocalGroupsPerNode = 2;

struct Fixture {
  PartitionedRelation rel;
  AggregationSpec spec;
};

Result<Fixture> MakeFixture() {
  WorkloadSpec wspec;
  wspec.num_nodes = kNodes;
  wspec.num_tuples = kTuples;
  wspec.num_groups = kGroups;
  wspec.distribution = GroupDistribution::kSequential;
  ADAPTAGG_ASSIGN_OR_RETURN(PartitionedRelation rel,
                            GenerateRelation(wspec));
  ADAPTAGG_ASSIGN_OR_RETURN(AggregationSpec spec,
                            MakeBenchQuery(&rel.schema()));
  return Fixture{std::move(rel), std::move(spec)};
}

double TotalCpu(const RunResult& run) {
  double s = 0;
  for (const auto& c : run.clocks) s += c.cpu_s();
  return s;
}
double TotalIo(const RunResult& run) {
  double s = 0;
  for (const auto& c : run.clocks) s += c.io_s();
  return s;
}
double TotalNet(const RunResult& run) {
  double s = 0;
  for (const auto& c : run.clocks) s += c.net_s();
  return s;
}

TEST(CostAccounting, RepartitioningMatchesPaperFormulas) {
  ASSERT_OK_AND_ASSIGN(Fixture f, MakeFixture());
  SystemParams p = SmallClusterParams(kNodes, kTuples, /*M=*/10'000);
  Cluster cluster(p);
  RunResult run = cluster.Run(
      *MakeAlgorithm(AlgorithmKind::kRepartitioning), f.spec, f.rel);
  ASSERT_OK(run.status);

  // --- CPU ---
  // select: |R|(t_r + t_w); route: |R|(t_h + t_d);
  // merge on receipt: |R|(t_r + t_a); result generation: G * t_w.
  double expected_cpu = kTuples * (p.t_r() + p.t_w()) +
                        kTuples * (p.t_h() + p.t_d()) +
                        kTuples * (p.t_r() + p.t_a()) +
                        kGroups * p.t_w();
  EXPECT_NEAR(TotalCpu(run), expected_cpu, 1e-12);

  // --- I/O ---
  // Scan: 3 sequential pages per node; store: one result page per node
  // that owns at least one group.
  int nodes_with_rows = 0;
  int64_t raw_sent = 0, raw_received = 0;
  for (const auto& s : run.node_stats) {
    if (s.result_rows > 0) ++nodes_with_rows;
    raw_sent += s.raw_records_sent;
    raw_received += s.raw_records_received;
  }
  EXPECT_EQ(raw_sent, kTuples);
  EXPECT_EQ(raw_received, kTuples);
  double expected_io =
      (kNodes * kPagesPerNode + nodes_with_rows) * p.io_seq_s;
  EXPECT_NEAR(TotalIo(run), expected_io, 1e-12);

  // --- network ---
  // Every data message carries one 2 KB page = 0.5 model pages: sender
  // pays 0.5(m_p + m_l) (high bandwidth), receiver pays 0.5 m_p. EOS
  // messages are free. Each node broadcasts EOS to both nodes.
  int64_t total_msgs = 0;
  for (const auto& s : run.node_stats) total_msgs += s.messages_sent;
  int64_t data_msgs = total_msgs - kNodes * kNodes;  // minus EOS
  EXPECT_GT(data_msgs, 0);
  double expected_net =
      data_msgs * 0.5 * (p.m_p() + p.m_l())  // send side
      + data_msgs * 0.5 * p.m_p();           // receive side
  EXPECT_NEAR(TotalNet(run), expected_net, 1e-12);
}

TEST(CostAccounting, TwoPhaseMatchesPaperFormulas) {
  ASSERT_OK_AND_ASSIGN(Fixture f, MakeFixture());
  SystemParams p = SmallClusterParams(kNodes, kTuples, /*M=*/10'000);
  Cluster cluster(p);
  RunResult run =
      cluster.Run(*MakeAlgorithm(AlgorithmKind::kTwoPhase), f.spec, f.rel);
  ASSERT_OK(run.status);

  // Each node sees all 4 groups locally (sequential distribution), so
  // partials total N * G.
  int64_t partials_sent = 0, partials_received = 0;
  for (const auto& s : run.node_stats) {
    partials_sent += s.partial_records_sent;
    partials_received += s.partial_records_received;
  }
  EXPECT_EQ(partials_sent, kNodes * kLocalGroupsPerNode);
  EXPECT_EQ(partials_received, kNodes * kLocalGroupsPerNode);

  // select |R|(t_r+t_w); local agg |R|(t_r+t_h+t_a); partial
  // generation and merge on the per-node local group counts; final
  // G*t_w.
  const int64_t partials = kNodes * kLocalGroupsPerNode;
  double expected_cpu = kTuples * (p.t_r() + p.t_w()) +
                        kTuples * (p.t_r() + p.t_h() + p.t_a()) +
                        partials * p.t_w() +
                        partials * (p.t_r() + p.t_a()) +
                        kGroups * p.t_w();
  EXPECT_NEAR(TotalCpu(run), expected_cpu, 1e-12);

  int nodes_with_rows = 0;
  for (const auto& s : run.node_stats) {
    if (s.result_rows > 0) ++nodes_with_rows;
  }
  double expected_io =
      (kNodes * kPagesPerNode + nodes_with_rows) * p.io_seq_s;
  EXPECT_NEAR(TotalIo(run), expected_io, 1e-12);
}

TEST(CostAccounting, HavingEvaluationChargesReadPerGroup) {
  ASSERT_OK_AND_ASSIGN(Fixture f, MakeFixture());
  SystemParams p = SmallClusterParams(kNodes, kTuples, /*M=*/10'000);
  Cluster cluster(p);
  AlgorithmOptions opts;
  // cnt >= 0 keeps everything but still costs one t_r per group.
  opts.having = Ge(ColNamed("cnt"), Lit(int64_t{0}));
  RunResult with = cluster.Run(*MakeAlgorithm(AlgorithmKind::kTwoPhase),
                               f.spec, f.rel, opts);
  RunResult without =
      cluster.Run(*MakeAlgorithm(AlgorithmKind::kTwoPhase), f.spec, f.rel);
  ASSERT_OK(with.status);
  ASSERT_OK(without.status);
  EXPECT_NEAR(TotalCpu(with) - TotalCpu(without), kGroups * p.t_r(),
              1e-12);
}

}  // namespace
}  // namespace adaptagg
