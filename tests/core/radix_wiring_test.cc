// End-to-end wiring of the radix pre-partitioning decision and SIMD
// dispatch observability: the cluster records the decisions as trace
// instants, the auto policy engages off the sampling estimate (and only
// then), and radix runs emit exactly the hash-direct results.

#include <gtest/gtest.h>

#include <string>

#include "model/locality_model.h"
#include "test_util.h"

namespace adaptagg {
namespace {

using testing_util::SmallClusterParams;

struct Fixture {
  PartitionedRelation rel;
  AggregationSpec spec;
};

Result<Fixture> MakeFixture(int nodes, int64_t tuples, int64_t groups) {
  WorkloadSpec wspec;
  wspec.num_nodes = nodes;
  wspec.num_tuples = tuples;
  wspec.num_groups = groups;
  ADAPTAGG_ASSIGN_OR_RETURN(PartitionedRelation rel,
                            GenerateRelation(wspec));
  ADAPTAGG_ASSIGN_OR_RETURN(AggregationSpec spec,
                            MakeBenchQuery(&rel.schema()));
  return Fixture{std::move(rel), std::move(spec)};
}

int CountInstants(const RunResult& run, const std::string& name) {
  int count = 0;
  for (const TraceEvent& e : run.trace_events) {
    if (e.kind == TraceEvent::Kind::kInstant && e.name == name) ++count;
  }
  return count;
}

TEST(RadixWiring, SimdDispatchInstantRecordedOncePerRun) {
  ASSERT_OK_AND_ASSIGN(Fixture f, MakeFixture(2, 4'000, 50));
  Cluster cluster(SmallClusterParams(2, 4'000));
  AlgorithmOptions opts;
  opts.obs.traces = true;
  RunResult run = cluster.Run(*MakeAlgorithm(AlgorithmKind::kTwoPhase),
                              f.spec, f.rel, opts);
  ASSERT_OK(run.status);
  EXPECT_EQ(CountInstants(run, "simd.dispatch"), 1);
}

TEST(RadixWiring, ForcedRadixRecordsEngageInstantsAndMatchesReference) {
  ASSERT_OK_AND_ASSIGN(Fixture f, MakeFixture(2, 8'000, 200));
  const SystemParams params = SmallClusterParams(2, 8'000, /*max=*/4'096);
  AlgorithmOptions opts;
  opts.obs.traces = true;
  opts.radix_mode = RadixMode::kOn;
  opts.gather_results = true;

  ASSERT_OK_AND_ASSIGN(ResultSet expected,
                       ReferenceAggregate(f.spec, f.rel));
  Cluster cluster(params);
  RunResult run = cluster.Run(*MakeAlgorithm(AlgorithmKind::kTwoPhase),
                              f.spec, f.rel, opts);
  ASSERT_OK(run.status);
  EXPECT_TRUE(ResultSetsEqual(run.results, expected));
  // kOn engages the local table on both nodes and the global merge
  // table on both nodes.
  EXPECT_EQ(CountInstants(run, "radix.engage.local"), 2);
  EXPECT_EQ(CountInstants(run, "radix.engage.global"), 2);
}

TEST(RadixWiring, RadixOnAndOffEmitIdenticalResults) {
  ASSERT_OK_AND_ASSIGN(Fixture f, MakeFixture(4, 12'000, 300));
  const SystemParams params =
      SmallClusterParams(4, 12'000, /*max=*/4'096);
  AlgorithmOptions on;
  on.radix_mode = RadixMode::kOn;
  on.gather_results = true;
  AlgorithmOptions off;
  off.radix_mode = RadixMode::kOff;
  off.gather_results = true;

  Cluster cluster(params);
  RunResult run_on = cluster.Run(*MakeAlgorithm(AlgorithmKind::kTwoPhase),
                                 f.spec, f.rel, on);
  ASSERT_OK(run_on.status);
  RunResult run_off = cluster.Run(*MakeAlgorithm(AlgorithmKind::kTwoPhase),
                                  f.spec, f.rel, off);
  ASSERT_OK(run_off.status);
  EXPECT_TRUE(ResultSetsEqual(run_on.results, run_off.results, 0.0))
      << "radix must not change a single emitted value";
  // And neither perturbs the modeled time: staging is wall-clock-only.
  ASSERT_EQ(run_on.clocks.size(), run_off.clocks.size());
  EXPECT_EQ(run_on.sim_time_s, run_off.sim_time_s);
}

TEST(RadixWiring, AutoEngagesOffTheSamplingEstimate) {
  // Shrink the modeled caches so the sampled group estimate crosses the
  // LLC gate: sampling sets the per-node estimate, and the auto policy
  // must then engage the local aggregation.
  ASSERT_OK_AND_ASSIGN(Fixture f, MakeFixture(2, 10'000, 400));
  const SystemParams params =
      SmallClusterParams(2, 10'000, /*max=*/8'192);
  AlgorithmOptions opts;
  opts.obs.traces = true;
  opts.radix_mode = RadixMode::kAuto;
  opts.radix_l2_bytes = 1'024;
  opts.radix_llc_bytes = 1'024;
  opts.crossover_threshold = 1'000'000;  // keep the two-phase body
  opts.gather_results = true;

  ASSERT_OK_AND_ASSIGN(ResultSet expected,
                       ReferenceAggregate(f.spec, f.rel));
  Cluster cluster(params);
  RunResult run = cluster.Run(*MakeAlgorithm(AlgorithmKind::kSampling),
                              f.spec, f.rel, opts);
  ASSERT_OK(run.status);
  EXPECT_TRUE(ResultSetsEqual(run.results, expected));
  EXPECT_GE(CountInstants(run, "radix.engage.local"), 1);
  // The decision is observability-only: it must not count as an
  // adaptive switch.
  EXPECT_EQ(run.metrics.Value("core.switches"), 0);
}

TEST(RadixWiring, AutoStaysOffWithoutPressure) {
  // Few groups, default cache budgets: the working set fits the LLC,
  // nothing engages, and the run stays hash-direct with no instants.
  ASSERT_OK_AND_ASSIGN(Fixture f, MakeFixture(2, 6'000, 20));
  AlgorithmOptions opts;
  opts.obs.traces = true;
  opts.radix_mode = RadixMode::kAuto;
  Cluster cluster(SmallClusterParams(2, 6'000));
  RunResult run = cluster.Run(*MakeAlgorithm(AlgorithmKind::kSampling),
                              f.spec, f.rel, opts);
  ASSERT_OK(run.status);
  EXPECT_EQ(CountInstants(run, "radix.engage.local"), 0);
  EXPECT_EQ(CountInstants(run, "radix.engage.global"), 0);
}

TEST(RadixWiring, RepartitioningBodyEngagesGlobalTable) {
  // Forced radix through the repartitioning body: the merge-side table
  // engages on every node.
  ASSERT_OK_AND_ASSIGN(Fixture f, MakeFixture(2, 8'000, 500));
  AlgorithmOptions opts;
  opts.obs.traces = true;
  opts.radix_mode = RadixMode::kOn;
  opts.gather_results = true;

  ASSERT_OK_AND_ASSIGN(ResultSet expected,
                       ReferenceAggregate(f.spec, f.rel));
  Cluster cluster(SmallClusterParams(2, 8'000, /*max=*/4'096));
  RunResult run = cluster.Run(
      *MakeAlgorithm(AlgorithmKind::kRepartitioning), f.spec, f.rel, opts);
  ASSERT_OK(run.status);
  EXPECT_TRUE(ResultSetsEqual(run.results, expected));
  EXPECT_EQ(CountInstants(run, "radix.engage.global"), 2);
}

}  // namespace
}  // namespace adaptagg
