#include <gtest/gtest.h>

#include "model/sampling_model.h"
#include "test_util.h"

namespace adaptagg {
namespace {

using testing_util::SmallClusterParams;

struct Fixture {
  PartitionedRelation rel;
  AggregationSpec spec;
};

Result<Fixture> MakeFixture(int nodes, int64_t tuples, int64_t groups) {
  WorkloadSpec wspec;
  wspec.num_nodes = nodes;
  wspec.num_tuples = tuples;
  wspec.num_groups = groups;
  ADAPTAGG_ASSIGN_OR_RETURN(PartitionedRelation rel,
                            GenerateRelation(wspec));
  ADAPTAGG_ASSIGN_OR_RETURN(AggregationSpec spec,
                            MakeBenchQuery(&rel.schema()));
  return Fixture{std::move(rel), std::move(spec)};
}

TEST(RequiredSampleSize, MatchesPaperExample) {
  // §3.1: threshold 320 -> approximately 2563 samples (~10x threshold).
  int64_t samples = RequiredSampleSize(320);
  EXPECT_GE(samples, 2'300);
  EXPECT_LE(samples, 2'900);
  EXPECT_GT(RequiredSampleSize(3'200), RequiredSampleSize(320));
  EXPECT_GE(RequiredSampleSize(1), 1);
}

TEST(DefaultCrossoverThreshold, ScalesWithProcessors) {
  EXPECT_EQ(DefaultCrossoverThreshold(32), 3'200);
  EXPECT_EQ(DefaultCrossoverThreshold(8), 800);
}

TEST(Sampling, ChoosesTwoPhaseForFewGroups) {
  ASSERT_OK_AND_ASSIGN(Fixture f, MakeFixture(4, 20'000, 10));
  Cluster cluster(SmallClusterParams(4, 20'000));
  AlgorithmOptions opts;
  opts.crossover_threshold = 200;
  RunResult run = cluster.Run(*MakeAlgorithm(AlgorithmKind::kSampling),
                              f.spec, f.rel, opts);
  ASSERT_OK(run.status);
  // The Two Phase body never ships raw tuples.
  int64_t raw = 0, partial = 0;
  for (const auto& s : run.node_stats) {
    raw += s.raw_records_sent;
    partial += s.partial_records_sent;
  }
  EXPECT_EQ(raw, 0);
  EXPECT_GT(partial, 0);
}

TEST(Sampling, ChoosesRepartitioningForManyGroups) {
  ASSERT_OK_AND_ASSIGN(Fixture f, MakeFixture(4, 20'000, 10'000));
  Cluster cluster(SmallClusterParams(4, 20'000));
  AlgorithmOptions opts;
  opts.crossover_threshold = 200;
  RunResult run = cluster.Run(*MakeAlgorithm(AlgorithmKind::kSampling),
                              f.spec, f.rel, opts);
  ASSERT_OK(run.status);
  int64_t raw = 0;
  for (const auto& s : run.node_stats) raw += s.raw_records_sent;
  EXPECT_EQ(raw, 20'000) << "Repartitioning ships every tuple";
}

TEST(Sampling, RandomPageReadsAreCharged) {
  ASSERT_OK_AND_ASSIGN(Fixture f, MakeFixture(4, 20'000, 500));
  Cluster cluster(SmallClusterParams(4, 20'000));
  RunResult run = cluster.Run(*MakeAlgorithm(AlgorithmKind::kSampling),
                              f.spec, f.rel);
  ASSERT_OK(run.status);
  // Sampling reads pages out of order: random read counters move.
  int64_t rand_reads = 0;
  for (int i = 0; i < 4; ++i) {
    rand_reads += f.rel.disk(i).stats().pages_read_rand;
  }
  EXPECT_GT(rand_reads, 0);
}

TEST(Sampling, ExplicitSampleSizeHonored) {
  ASSERT_OK_AND_ASSIGN(Fixture f, MakeFixture(4, 20'000, 10'000));
  Cluster cluster(SmallClusterParams(4, 20'000));
  AlgorithmOptions opts;
  opts.crossover_threshold = 50;
  opts.sample_size = 400;  // 100 tuples/node: still plenty to see 50
  RunResult run = cluster.Run(*MakeAlgorithm(AlgorithmKind::kSampling),
                              f.spec, f.rel, opts);
  ASSERT_OK(run.status);
  int64_t raw = 0;
  for (const auto& s : run.node_stats) raw += s.raw_records_sent;
  EXPECT_EQ(raw, 20'000);
}

TEST(Sampling, DeterministicDecisionAcrossRuns) {
  ASSERT_OK_AND_ASSIGN(Fixture f, MakeFixture(4, 10'000, 900));
  Cluster cluster(SmallClusterParams(4, 10'000));
  AlgorithmOptions opts;
  opts.crossover_threshold = 400;
  opts.seed = 7;
  RunResult a = cluster.Run(*MakeAlgorithm(AlgorithmKind::kSampling),
                            f.spec, f.rel, opts);
  RunResult b = cluster.Run(*MakeAlgorithm(AlgorithmKind::kSampling),
                            f.spec, f.rel, opts);
  ASSERT_OK(a.status);
  ASSERT_OK(b.status);
  int64_t raw_a = 0, raw_b = 0;
  for (const auto& s : a.node_stats) raw_a += s.raw_records_sent;
  for (const auto& s : b.node_stats) raw_b += s.raw_records_sent;
  EXPECT_EQ(raw_a, raw_b);
}

}  // namespace
}  // namespace adaptagg
