#include <gtest/gtest.h>

#include "test_util.h"

namespace adaptagg {
namespace {

using testing_util::ExpectMatchesReference;
using testing_util::SmallClusterParams;

struct Fixture {
  PartitionedRelation rel;
  AggregationSpec spec;
};

Result<Fixture> MakeFixture(int nodes, int64_t tuples, int64_t groups,
                            uint64_t seed = 1) {
  WorkloadSpec wspec;
  wspec.num_nodes = nodes;
  wspec.num_tuples = tuples;
  wspec.num_groups = groups;
  wspec.seed = seed;
  ADAPTAGG_ASSIGN_OR_RETURN(PartitionedRelation rel,
                            GenerateRelation(wspec));
  ADAPTAGG_ASSIGN_OR_RETURN(AggregationSpec spec,
                            MakeBenchQuery(&rel.schema()));
  return Fixture{std::move(rel), std::move(spec)};
}

TEST(CentralizedTwoPhase, CoordinatorEmitsEverything) {
  ASSERT_OK_AND_ASSIGN(Fixture f, MakeFixture(4, 8'000, 100));
  Cluster cluster(SmallClusterParams(4, 8'000));
  RunResult run = cluster.Run(
      *MakeAlgorithm(AlgorithmKind::kCentralizedTwoPhase), f.spec, f.rel);
  ASSERT_OK(run.status);
  // All result rows come from node 0; workers emit none.
  EXPECT_EQ(run.node_stats[0].result_rows, 100);
  for (int i = 1; i < 4; ++i) {
    EXPECT_EQ(run.node_stats[i].result_rows, 0);
  }
  // Every node shipped partials (the group count is far below |R_i|).
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(run.node_stats[i].partial_records_sent, 100);
  }
}

TEST(TwoPhase, ResultRowsSpreadAcrossNodes) {
  ASSERT_OK_AND_ASSIGN(Fixture f, MakeFixture(4, 8'000, 400));
  Cluster cluster(SmallClusterParams(4, 8'000));
  RunResult run =
      cluster.Run(*MakeAlgorithm(AlgorithmKind::kTwoPhase), f.spec, f.rel);
  ASSERT_OK(run.status);
  EXPECT_EQ(run.total_result_rows(), 400);
  // Hash partitioning spreads the 400 groups over all 4 nodes.
  for (int i = 0; i < 4; ++i) {
    EXPECT_GT(run.node_stats[i].result_rows, 0);
    EXPECT_LT(run.node_stats[i].result_rows, 400);
  }
}

TEST(TwoPhase, DuplicatedWorkVersusRepartitioning) {
  // §2.2's complaint: with many groups, 2P performs ~2 aggregate
  // operations per tuple (local + merge) where Rep performs ~1. Observe
  // it directly through the record counters.
  ASSERT_OK_AND_ASSIGN(Fixture f, MakeFixture(4, 8'000, 4'000));
  SystemParams params = SmallClusterParams(4, 8'000, 100'000);
  Cluster cluster(params);

  RunResult two_phase =
      cluster.Run(*MakeAlgorithm(AlgorithmKind::kTwoPhase), f.spec, f.rel);
  ASSERT_OK(two_phase.status);
  RunResult rep = cluster.Run(
      *MakeAlgorithm(AlgorithmKind::kRepartitioning), f.spec, f.rel);
  ASSERT_OK(rep.status);

  int64_t partials = 0;
  for (const auto& s : two_phase.node_stats) {
    partials += s.partial_records_received;
  }
  // Nearly every tuple forms (almost) its own local group, so the merge
  // phase re-processes close to the full input on top of the local pass.
  EXPECT_GT(partials, 8'000 / 2);
  // Rep processes each tuple for aggregation exactly once.
  int64_t raw = 0;
  for (const auto& s : rep.node_stats) raw += s.raw_records_received;
  EXPECT_EQ(raw, 8'000);
}

TEST(Repartitioning, AllTuplesShipped) {
  ASSERT_OK_AND_ASSIGN(Fixture f, MakeFixture(4, 8'000, 100));
  Cluster cluster(SmallClusterParams(4, 8'000));
  RunResult run = cluster.Run(
      *MakeAlgorithm(AlgorithmKind::kRepartitioning), f.spec, f.rel);
  ASSERT_OK(run.status);
  int64_t sent = 0, received = 0;
  for (const auto& s : run.node_stats) {
    sent += s.raw_records_sent;
    received += s.raw_records_received;
    EXPECT_EQ(s.partial_records_sent, 0);
  }
  EXPECT_EQ(sent, 8'000);
  EXPECT_EQ(received, 8'000);
}

TEST(Repartitioning, FewGroupsConcentrateOnFewNodes) {
  // §2.3: fewer groups than nodes -> at most `groups` nodes get work.
  ASSERT_OK_AND_ASSIGN(Fixture f, MakeFixture(6, 6'000, 2));
  Cluster cluster(SmallClusterParams(6, 6'000));
  RunResult run = cluster.Run(
      *MakeAlgorithm(AlgorithmKind::kRepartitioning), f.spec, f.rel);
  ASSERT_OK(run.status);
  int nodes_with_rows = 0;
  for (const auto& s : run.node_stats) {
    if (s.result_rows > 0) ++nodes_with_rows;
  }
  EXPECT_LE(nodes_with_rows, 2);
}

TEST(AllAlgorithms, SimulatedTimeIsPositiveAndBreakdownConsistent) {
  ASSERT_OK_AND_ASSIGN(Fixture f, MakeFixture(4, 8'000, 500));
  Cluster cluster(SmallClusterParams(4, 8'000));
  for (AlgorithmKind kind : AllAlgorithms()) {
    SCOPED_TRACE(AlgorithmKindToString(kind));
    RunResult run = cluster.Run(*MakeAlgorithm(kind), f.spec, f.rel);
    ASSERT_OK(run.status);
    EXPECT_GT(run.sim_time_s, 0);
    for (const auto& clock : run.clocks) {
      EXPECT_GE(clock.cpu_s(), 0);
      EXPECT_GE(clock.io_s(), 0);
      EXPECT_GE(clock.net_s(), 0);
      // now() is the sum of the components by construction.
      EXPECT_NEAR(clock.now(), clock.cpu_s() + clock.io_s() +
                                   clock.net_s() + clock.idle_s(),
                  1e-9);
      EXPECT_LE(clock.now(), run.sim_time_s + 1e-12);
    }
    // Scanning I/O happened on every node.
    for (const auto& clock : run.clocks) {
      EXPECT_GT(clock.io_s(), 0);
    }
  }
}

TEST(AllAlgorithms, DeterministicSimTimeAcrossRuns) {
  // Modeled time must be independent of thread scheduling: two runs of
  // the same algorithm on the same data report per-node CPU and I/O
  // equal to within floating-point accumulation order (the set of
  // charges is identical; only the order messages drain differs).
  ASSERT_OK_AND_ASSIGN(Fixture f, MakeFixture(4, 6'000, 300));
  Cluster cluster(SmallClusterParams(4, 6'000));
  for (AlgorithmKind kind :
       {AlgorithmKind::kTwoPhase, AlgorithmKind::kRepartitioning,
        AlgorithmKind::kCentralizedTwoPhase}) {
    SCOPED_TRACE(AlgorithmKindToString(kind));
    RunResult a = cluster.Run(*MakeAlgorithm(kind), f.spec, f.rel);
    RunResult b = cluster.Run(*MakeAlgorithm(kind), f.spec, f.rel);
    ASSERT_OK(a.status);
    ASSERT_OK(b.status);
    for (int i = 0; i < 4; ++i) {
      EXPECT_NEAR(a.clocks[i].cpu_s(), b.clocks[i].cpu_s(),
                  1e-9 * a.clocks[i].cpu_s());
      EXPECT_NEAR(a.clocks[i].io_s(), b.clocks[i].io_s(),
                  1e-9 * std::max(a.clocks[i].io_s(), 1e-6));
    }
  }
}

TEST(Cluster, MismatchedPartitionsRejected) {
  ASSERT_OK_AND_ASSIGN(Fixture f, MakeFixture(4, 1'000, 10));
  Cluster cluster(SmallClusterParams(8, 1'000));  // 8 != 4
  RunResult run =
      cluster.Run(*MakeAlgorithm(AlgorithmKind::kTwoPhase), f.spec, f.rel);
  EXPECT_FALSE(run.status.ok());
  EXPECT_EQ(run.status.code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace adaptagg
