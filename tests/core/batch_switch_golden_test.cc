// Golden switch-point tests: the batched scan pipeline must reproduce
// the exact per-node switch_at_tuple values (and send/row counts) that
// the original tuple-at-a-time loops produced. The goldens below were
// captured from the pre-batch implementation on these deterministic
// configurations.
//
// A-2P and Graefe switch points are purely local decisions (the memory
// bound fills at a fixed tuple), so they are pinned exactly for any node
// count. A-Rep's *own* decisions (the init_seg judgment and subsequent
// table overflow) are also deterministic and pinned; its *follow-suit*
// switches depend on when a peer's end-of-phase broadcast arrives, so
// multi-node A-Rep gets structural invariants instead of exact pins.

#include <gtest/gtest.h>

#include "core/phases.h"
#include "test_util.h"

namespace adaptagg {
namespace {

using testing_util::SmallClusterParams;

struct NodeGolden {
  int64_t switch_at_tuple;
  int64_t raw_records_sent;
  int64_t partial_records_sent;
  int64_t result_rows;
};

RunResult RunConfig(AlgorithmKind kind, int nodes, int64_t tuples,
                    int64_t groups, int64_t m, AlgorithmOptions opts = {}) {
  WorkloadSpec wspec;
  wspec.num_nodes = nodes;
  wspec.num_tuples = tuples;
  wspec.num_groups = groups;
  auto rel = GenerateRelation(wspec);
  EXPECT_TRUE(rel.ok());
  auto spec = MakeBenchQuery(&rel->schema());
  EXPECT_TRUE(spec.ok());
  Cluster cluster(SmallClusterParams(nodes, tuples, m));
  RunResult run = cluster.Run(*MakeAlgorithm(kind), *spec, *rel, opts);
  EXPECT_TRUE(run.status.ok()) << run.status.ToString();
  return run;
}

void ExpectGolden(const RunResult& run,
                  const std::vector<NodeGolden>& golden) {
  ASSERT_EQ(run.node_stats.size(), golden.size());
  for (size_t i = 0; i < golden.size(); ++i) {
    SCOPED_TRACE("node " + std::to_string(i));
    const auto& s = run.node_stats[i];
    EXPECT_TRUE(s.switched);
    EXPECT_EQ(s.switch_at_tuple, golden[i].switch_at_tuple);
    EXPECT_EQ(s.raw_records_sent, golden[i].raw_records_sent);
    EXPECT_EQ(s.partial_records_sent, golden[i].partial_records_sent);
    EXPECT_EQ(s.result_rows, golden[i].result_rows);
  }
}

TEST(BatchSwitchGolden, AdaptiveTwoPhaseFourNodes) {
  RunResult run =
      RunConfig(AlgorithmKind::kAdaptiveTwoPhase, 4, 8'000, 4'000, 128);
  ExpectGolden(run, {{131, 1870, 128, 869},
                     {129, 1872, 128, 861},
                     {134, 1867, 128, 896},
                     {131, 1870, 128, 848}});
}

TEST(BatchSwitchGolden, GraefeTwoPhaseFourNodes) {
  RunResult run =
      RunConfig(AlgorithmKind::kGraefeTwoPhase, 4, 8'000, 4'000, 128);
  ExpectGolden(run, {{131, 1808, 128, 869},
                     {129, 1819, 128, 861},
                     {134, 1810, 128, 896},
                     {131, 1799, 128, 848}});
}

TEST(BatchSwitchGolden, AdaptiveTwoPhaseAblationFraction) {
  AlgorithmOptions opts;
  opts.switch_fill_fraction = 0.25;
  RunResult run = RunConfig(AlgorithmKind::kAdaptiveTwoPhase, 2, 4'000,
                            2'000, 1'000, opts);
  ExpectGolden(run, {{272, 1729, 250, 870}, {265, 1736, 250, 854}});
}

TEST(BatchSwitchGolden, AdaptiveTwoPhaseSingleNode) {
  RunResult run =
      RunConfig(AlgorithmKind::kAdaptiveTwoPhase, 1, 5'000, 900, 777);
  ExpectGolden(run, {{1775, 3226, 777, 894}});
}

TEST(BatchSwitchGolden, AdaptiveRepartitioningOwnDecisionAtInitSeg) {
  // 20 groups < few_groups=50 at the init_seg=700 judgment: the node
  // decides on its own to go local at exactly tuple 700.
  AlgorithmOptions opts;
  opts.init_seg = 700;
  opts.few_groups_threshold = 50;
  RunResult run = RunConfig(AlgorithmKind::kAdaptiveRepartitioning, 1,
                            5'000, 20, 512, opts);
  ExpectGolden(run, {{700, 700, 20, 20}});
}

TEST(BatchSwitchGolden, AdaptiveRepartitioningLocalOverflowAfterSwitch) {
  // Switches to local at init_seg=500 (400 observed groups < 450), then
  // the 256-entry local table overflows and it repartitions again; the
  // raw-record count pins the exact overflow tuple.
  AlgorithmOptions opts;
  opts.init_seg = 500;
  opts.few_groups_threshold = 450;
  RunResult run = RunConfig(AlgorithmKind::kAdaptiveRepartitioning, 1,
                            6'000, 400, 256, opts);
  ExpectGolden(run, {{500, 5'611, 256, 400}});
}

TEST(BatchSwitchGolden, AdaptiveRepartitioningMultiNodeInvariants) {
  // With multiple nodes the non-deciding nodes follow suit when the
  // end-of-phase broadcast arrives — a poll-time event, so the exact
  // tuple is scheduling-dependent. Structurally it must always be either
  // the decider's own init_seg point or a full-batch poll boundary.
  AlgorithmOptions opts;
  opts.init_seg = 1'000;
  opts.few_groups_threshold = 400;
  RunResult run = RunConfig(AlgorithmKind::kAdaptiveRepartitioning, 4,
                            12'000, 20, 512, opts);
  int own_decisions = 0;
  for (const auto& s : run.node_stats) {
    EXPECT_TRUE(s.switched);
    EXPECT_EQ(s.partial_records_sent, 20);
    if (s.switch_at_tuple == 1'000) {
      ++own_decisions;
    } else {
      EXPECT_EQ(s.switch_at_tuple % kPollInterval, 0)
          << "follow-suit switches happen on poll boundaries, got "
          << s.switch_at_tuple;
    }
  }
  EXPECT_GE(own_decisions, 1) << "someone must have decided first";
}

}  // namespace
}  // namespace adaptagg
