#include <gtest/gtest.h>

#include "core/phases.h"
#include "test_util.h"

namespace adaptagg {
namespace {

using testing_util::SmallClusterParams;

struct Fixture {
  PartitionedRelation rel;
  AggregationSpec spec;
};

Result<Fixture> MakeFixture(int nodes, int64_t tuples, int64_t groups) {
  WorkloadSpec wspec;
  wspec.num_nodes = nodes;
  wspec.num_tuples = tuples;
  wspec.num_groups = groups;
  ADAPTAGG_ASSIGN_OR_RETURN(PartitionedRelation rel,
                            GenerateRelation(wspec));
  ADAPTAGG_ASSIGN_OR_RETURN(AggregationSpec spec,
                            MakeBenchQuery(&rel.schema()));
  return Fixture{std::move(rel), std::move(spec)};
}

// --------------------------------------------------------------------------
// Adaptive Two Phase (§3.2): the switch must fire exactly when the local
// group count exceeds the table bound M.

TEST(AdaptiveTwoPhase, NoSwitchWhenGroupsFit) {
  ASSERT_OK_AND_ASSIGN(Fixture f, MakeFixture(4, 8'000, 100));
  Cluster cluster(SmallClusterParams(4, 8'000, /*M=*/512));
  RunResult run = cluster.Run(
      *MakeAlgorithm(AlgorithmKind::kAdaptiveTwoPhase), f.spec, f.rel);
  ASSERT_OK(run.status);
  EXPECT_EQ(run.nodes_switched(), 0);
  int64_t raw = 0;
  for (const auto& s : run.node_stats) raw += s.raw_records_sent;
  EXPECT_EQ(raw, 0) << "no raw repartitioning when 2P suffices";
}

TEST(AdaptiveTwoPhase, AllNodesSwitchWhenGroupsOverflow) {
  ASSERT_OK_AND_ASSIGN(Fixture f, MakeFixture(4, 8'000, 4'000));
  Cluster cluster(SmallClusterParams(4, 8'000, /*M=*/128));
  RunResult run = cluster.Run(
      *MakeAlgorithm(AlgorithmKind::kAdaptiveTwoPhase), f.spec, f.rel);
  ASSERT_OK(run.status);
  EXPECT_EQ(run.nodes_switched(), 4);
  for (const auto& s : run.node_stats) {
    // The switch happens once the table holds M groups — i.e. after at
    // least M tuples and well before the end of the partition.
    EXPECT_GE(s.switch_at_tuple, 128);
    EXPECT_LT(s.switch_at_tuple, 8'000 / 4);
    EXPECT_GT(s.raw_records_sent, 0);
    // Exactly M partials were flushed at switch time.
    EXPECT_EQ(s.partial_records_sent, 128);
  }
}

TEST(AdaptiveTwoPhase, SwitchPointRespectsAblationKnob) {
  ASSERT_OK_AND_ASSIGN(Fixture f, MakeFixture(2, 4'000, 2'000));
  SystemParams params = SmallClusterParams(2, 4'000, /*M=*/1'000);
  Cluster cluster(params);
  AlgorithmOptions half;
  half.switch_fill_fraction = 0.25;
  RunResult run = cluster.Run(
      *MakeAlgorithm(AlgorithmKind::kAdaptiveTwoPhase), f.spec, f.rel, half);
  ASSERT_OK(run.status);
  for (const auto& s : run.node_stats) {
    EXPECT_TRUE(s.switched);
    EXPECT_EQ(s.partial_records_sent, 250);  // M * 0.25
  }
}

TEST(AdaptiveTwoPhase, LocalTableNeverSpillsLocally) {
  // A-2P's point is to avoid local intermediate I/O entirely: local
  // overflow turns into repartitioning, so only the *global* phase may
  // spill. With M large enough globally (G/N < M), no spill at all.
  ASSERT_OK_AND_ASSIGN(Fixture f, MakeFixture(4, 8'000, 1'600));
  Cluster cluster(SmallClusterParams(4, 8'000, /*M=*/512));
  RunResult run = cluster.Run(
      *MakeAlgorithm(AlgorithmKind::kAdaptiveTwoPhase), f.spec, f.rel);
  ASSERT_OK(run.status);
  EXPECT_EQ(run.nodes_switched(), 4);  // 1600 local groups > 512
  // G/N = 400 < 512: global tables fit, so nothing spilled anywhere.
  EXPECT_EQ(run.total_spilled_records(), 0);
}

// --------------------------------------------------------------------------
// Adaptive Repartitioning (§3.3).

TEST(AdaptiveRepartitioning, SticksWithRepartitioningWhenGroupsAreMany) {
  ASSERT_OK_AND_ASSIGN(Fixture f, MakeFixture(4, 12'000, 6'000));
  SystemParams params = SmallClusterParams(4, 12'000, 512);
  Cluster cluster(params);
  AlgorithmOptions opts;
  opts.init_seg = 1'000;
  opts.few_groups_threshold = 400;
  RunResult run = cluster.Run(
      *MakeAlgorithm(AlgorithmKind::kAdaptiveRepartitioning), f.spec,
      f.rel, opts);
  ASSERT_OK(run.status);
  EXPECT_EQ(run.nodes_switched(), 0);
  int64_t raw = 0, partial = 0;
  for (const auto& s : run.node_stats) {
    raw += s.raw_records_sent;
    partial += s.partial_records_sent;
  }
  EXPECT_EQ(raw, 12'000);
  EXPECT_EQ(partial, 0);
}

TEST(AdaptiveRepartitioning, SwitchesToTwoPhaseWhenGroupsAreFew) {
  ASSERT_OK_AND_ASSIGN(Fixture f, MakeFixture(4, 12'000, 20));
  SystemParams params = SmallClusterParams(4, 12'000, 512);
  Cluster cluster(params);
  AlgorithmOptions opts;
  opts.init_seg = 1'000;
  opts.few_groups_threshold = 400;
  RunResult run = cluster.Run(
      *MakeAlgorithm(AlgorithmKind::kAdaptiveRepartitioning), f.spec,
      f.rel, opts);
  ASSERT_OK(run.status);
  // Every node sees only 20 groups in its first 1000 tuples -> all
  // switch.
  EXPECT_EQ(run.nodes_switched(), 4);
  for (const auto& s : run.node_stats) {
    // Only the initial segment went out raw.
    EXPECT_LE(s.raw_records_sent, opts.init_seg + kPollInterval);
    EXPECT_GT(s.partial_records_sent, 0);
  }
}

TEST(AdaptiveRepartitioning, EndOfPhasePropagatesAcrossNodes) {
  // Give only node 0 few groups locally (the others would not switch on
  // their own within init_seg); node 0's end-of-phase must pull the
  // others out of repartitioning too (§3.3 "follow suit").
  Schema schema = MakeBenchSchema(100);
  ASSERT_OK_AND_ASSIGN(PartitionedRelation rel,
                       PartitionedRelation::Create(schema, 4));
  Prng prng(5);
  TupleBuffer t(&schema);
  const int64_t per_node = 4'000;
  for (int node = 0; node < 4; ++node) {
    for (int64_t i = 0; i < per_node; ++i) {
      // Node 0: a single group. Others: thousands of groups.
      uint64_t g = node == 0 ? 0 : 10 + prng.NextBelow(3'000);
      t.SetInt64(kBenchGroupCol, static_cast<int64_t>(g));
      t.SetInt64(kBenchValueCol, static_cast<int64_t>(g % 97));
      ASSERT_OK(rel.Append(node, t.view()));
    }
  }
  ASSERT_OK(rel.Flush());
  ASSERT_OK_AND_ASSIGN(AggregationSpec spec, MakeBenchQuery(&rel.schema()));

  SystemParams params = SmallClusterParams(4, 4 * per_node, 8'000);
  Cluster cluster(params);
  AlgorithmOptions opts;
  opts.init_seg = 500;
  opts.few_groups_threshold = 100;
  RunResult run = cluster.Run(
      *MakeAlgorithm(AlgorithmKind::kAdaptiveRepartitioning), spec, rel,
      opts);
  ASSERT_OK(run.status);
  EXPECT_TRUE(run.node_stats[0].switched);
  // At least one other node must have followed suit via the message (it
  // cannot have decided locally: it sees ~500 distinct groups in 500
  // tuples, far above the threshold of 100).
  int followers = 0;
  for (int i = 1; i < 4; ++i) {
    if (run.node_stats[i].switched) ++followers;
  }
  EXPECT_GE(followers, 1);
  // Correctness under the mixed-mode execution.
  ASSERT_OK_AND_ASSIGN(ResultSet expected, ReferenceAggregate(spec, rel));
  EXPECT_TRUE(ResultSetsEqual(run.results, expected));
}

TEST(AdaptiveRepartitioning, DoubleSwitchWhenDecisionWasWrong) {
  // A-Rep composes both adaptive behaviors (§3.3): a node that switches
  // to local aggregation but then overflows its table flushes partials
  // and returns to repartitioning. Provoke it: few distinct groups in
  // the first init_seg tuples, many afterwards.
  Schema schema = MakeBenchSchema(100);
  ASSERT_OK_AND_ASSIGN(PartitionedRelation rel,
                       PartitionedRelation::Create(schema, 2));
  Prng prng(99);
  TupleBuffer t(&schema);
  const int64_t per_node = 6'000;
  for (int node = 0; node < 2; ++node) {
    for (int64_t i = 0; i < per_node; ++i) {
      // First third: 5 groups. Rest: thousands.
      uint64_t g = i < per_node / 3 ? i % 5 : 100 + prng.NextBelow(3'000);
      t.SetInt64(kBenchGroupCol, static_cast<int64_t>(g));
      t.SetInt64(kBenchValueCol, static_cast<int64_t>(g % 101));
      ASSERT_OK(rel.Append(node, t.view()));
    }
  }
  ASSERT_OK(rel.Flush());
  ASSERT_OK_AND_ASSIGN(AggregationSpec spec, MakeBenchQuery(&rel.schema()));

  SystemParams params = SmallClusterParams(2, 2 * per_node, /*M=*/64);
  Cluster cluster(params);
  AlgorithmOptions opts;
  opts.init_seg = 500;
  opts.few_groups_threshold = 50;
  RunResult run = cluster.Run(
      *MakeAlgorithm(AlgorithmKind::kAdaptiveRepartitioning), spec, rel,
      opts);
  ASSERT_OK(run.status);
  for (const auto& s : run.node_stats) {
    EXPECT_TRUE(s.switched);  // switched to local aggregation first...
    // ...then the 3000-group tail overflowed M=64 and went raw again:
    // raw records well beyond the init segment alone.
    EXPECT_GT(s.raw_records_sent, opts.init_seg + 1'000);
    EXPECT_GT(s.partial_records_sent, 0);
  }
  ASSERT_OK_AND_ASSIGN(ResultSet expected, ReferenceAggregate(spec, rel));
  EXPECT_TRUE(ResultSetsEqual(run.results, expected));
}

// --------------------------------------------------------------------------
// Graefe's optimized Two Phase.

TEST(GraefeTwoPhase, ForwardsRawOnOverflowAndKeepsTable) {
  ASSERT_OK_AND_ASSIGN(Fixture f, MakeFixture(4, 8'000, 4'000));
  Cluster cluster(SmallClusterParams(4, 8'000, /*M=*/128));
  RunResult run = cluster.Run(
      *MakeAlgorithm(AlgorithmKind::kGraefeTwoPhase), f.spec, f.rel);
  ASSERT_OK(run.status);
  for (const auto& s : run.node_stats) {
    EXPECT_TRUE(s.switched);
    EXPECT_GT(s.raw_records_sent, 0);
    // Table kept until the end: exactly M partials emitted afterwards.
    EXPECT_EQ(s.partial_records_sent, 128);
  }
}

TEST(GraefeTwoPhase, MoreTrafficThanAdaptiveTwoPhase) {
  // §3.2's argument 2: Graefe's optimization still routes the *hits* of
  // late tuples through the local table but misses go raw; every raw
  // record that finds no entry at the destination cost a message for
  // nothing. A-2P sends raw records too, but frees memory and avoids the
  // double pass. At minimum, the two should produce identical results
  // while Graefe's local tables hold memory the whole time.
  ASSERT_OK_AND_ASSIGN(Fixture f, MakeFixture(4, 8'000, 4'000));
  Cluster cluster(SmallClusterParams(4, 8'000, /*M=*/128));
  RunResult graefe = cluster.Run(
      *MakeAlgorithm(AlgorithmKind::kGraefeTwoPhase), f.spec, f.rel);
  RunResult a2p = cluster.Run(
      *MakeAlgorithm(AlgorithmKind::kAdaptiveTwoPhase), f.spec, f.rel);
  ASSERT_OK(graefe.status);
  ASSERT_OK(a2p.status);
  EXPECT_TRUE(ResultSetsEqual(graefe.results, a2p.results));
}

}  // namespace
}  // namespace adaptagg
