#include "net/transport.h"

#include <gtest/gtest.h>

#include <thread>

namespace adaptagg {
namespace {

Message Make(MessageType type, uint32_t phase, std::vector<uint8_t> payload) {
  Message m;
  m.type = type;
  m.phase = phase;
  m.payload = std::move(payload);
  return m;
}

TEST(InprocTransport, MeshDelivery) {
  auto mesh = MakeInprocMesh(3);
  ASSERT_EQ(mesh.size(), 3u);
  EXPECT_EQ(mesh[1]->node_id(), 1);
  EXPECT_EQ(mesh[1]->num_nodes(), 3);

  ASSERT_TRUE(
      mesh[0]->Send(2, Make(MessageType::kRawPage, 1, {1, 2, 3})).ok());
  auto m = mesh[2]->Recv();
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(m->from, 0);
  EXPECT_EQ(m->payload.size(), 3u);
}

TEST(InprocTransport, SelfSend) {
  auto mesh = MakeInprocMesh(2);
  ASSERT_TRUE(
      mesh[1]->Send(1, Make(MessageType::kControl, 0, {7})).ok());
  auto m = mesh[1]->TryRecv();
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->from, 1);
}

TEST(InprocTransport, TryRecvEmptyAndBadDest) {
  auto mesh = MakeInprocMesh(2);
  EXPECT_FALSE(mesh[0]->TryRecv().has_value());
  EXPECT_FALSE(mesh[0]->Send(5, Make(MessageType::kControl, 0, {})).ok());
  EXPECT_FALSE(mesh[0]->Send(-1, Make(MessageType::kControl, 0, {})).ok());
}

TEST(InprocTransport, PairwiseOrderPreserved) {
  auto mesh = MakeInprocMesh(2);
  for (uint8_t i = 0; i < 100; ++i) {
    ASSERT_TRUE(
        mesh[0]->Send(1, Make(MessageType::kRawPage, 1, {i})).ok());
  }
  for (uint8_t i = 0; i < 100; ++i) {
    auto m = mesh[1]->Recv();
    ASSERT_TRUE(m.ok());
    EXPECT_EQ(m->payload[0], i);
  }
}

TEST(TcpTransport, MeshRoundtrip) {
  auto mesh_or = MakeTcpMesh(3, 42900);
  ASSERT_TRUE(mesh_or.ok()) << mesh_or.status().ToString();
  auto& mesh = *mesh_or;

  // Every ordered pair exchanges one tagged message.
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 3; ++j) {
      uint8_t tag = static_cast<uint8_t>(i * 3 + j);
      ASSERT_TRUE(mesh[static_cast<size_t>(i)]
                      ->Send(j, Make(MessageType::kRawPage, 1, {tag}))
                      .ok());
    }
  }
  for (int j = 0; j < 3; ++j) {
    int got = 0;
    bool from_seen[3] = {};
    while (got < 3) {
      auto m = mesh[static_cast<size_t>(j)]->Recv();
      ASSERT_TRUE(m.ok());
      EXPECT_EQ(m->payload[0], m->from * 3 + j);
      from_seen[m->from] = true;
      ++got;
    }
    EXPECT_TRUE(from_seen[0] && from_seen[1] && from_seen[2]);
  }
}

TEST(TcpTransport, LargePayloadSurvivesFraming) {
  auto mesh_or = MakeTcpMesh(2, 42950);
  ASSERT_TRUE(mesh_or.ok()) << mesh_or.status().ToString();
  auto& mesh = *mesh_or;
  std::vector<uint8_t> big(64 * 1024);
  for (size_t i = 0; i < big.size(); ++i) {
    big[i] = static_cast<uint8_t>(i * 31);
  }
  ASSERT_TRUE(
      mesh[0]->Send(1, Make(MessageType::kPartialPage, 2, big)).ok());
  auto m = mesh[1]->Recv();
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(m->payload, big);
  EXPECT_EQ(m->phase, 2u);
}

TEST(TcpTransport, ConcurrentSendersToOneReceiver) {
  auto mesh_or = MakeTcpMesh(3, 43000);
  ASSERT_TRUE(mesh_or.ok()) << mesh_or.status().ToString();
  auto& mesh = *mesh_or;
  constexpr int kEach = 200;
  std::thread s1([&] {
    for (int i = 0; i < kEach; ++i) {
      ASSERT_TRUE(
          mesh[1]->Send(0, Make(MessageType::kRawPage, 1, {1})).ok());
    }
  });
  std::thread s2([&] {
    for (int i = 0; i < kEach; ++i) {
      ASSERT_TRUE(
          mesh[2]->Send(0, Make(MessageType::kRawPage, 1, {2})).ok());
    }
  });
  int counts[3] = {};
  for (int i = 0; i < 2 * kEach; ++i) {
    auto m = mesh[0]->Recv();
    ASSERT_TRUE(m.ok());
    ++counts[m->from];
  }
  s1.join();
  s2.join();
  EXPECT_EQ(counts[1], kEach);
  EXPECT_EQ(counts[2], kEach);
}

}  // namespace
}  // namespace adaptagg
