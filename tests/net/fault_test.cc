#include "net/fault.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cstring>
#include <vector>

#include "common/crc32c.h"
#include "net/message.h"
#include "net/transport.h"
#include "test_util.h"

namespace adaptagg {
namespace {

// --- CRC-32C ---

TEST(Crc32c, KnownVector) {
  // The canonical CRC-32C check value: crc("123456789") == 0xE3069283.
  const uint8_t data[] = {'1', '2', '3', '4', '5', '6', '7', '8', '9'};
  EXPECT_EQ(Crc32c(0, data, sizeof(data)), 0xE3069283u);
}

TEST(Crc32c, Composable) {
  const uint8_t data[] = {'1', '2', '3', '4', '5', '6', '7', '8', '9'};
  uint32_t part = Crc32c(0, data, 4);
  EXPECT_EQ(Crc32c(part, data + 4, 5), 0xE3069283u);
}

TEST(Crc32c, DetectsSingleBitFlip) {
  std::vector<uint8_t> buf(256);
  for (size_t i = 0; i < buf.size(); ++i) {
    buf[i] = static_cast<uint8_t>(i * 7 + 3);
  }
  const uint32_t good = Crc32c(0, buf.data(), buf.size());
  for (size_t byte : {size_t{0}, buf.size() / 2, buf.size() - 1}) {
    buf[byte] ^= 0x10;
    EXPECT_NE(Crc32c(0, buf.data(), buf.size()), good);
    buf[byte] ^= 0x10;
  }
}

// --- FaultPlan parsing ---

TEST(FaultPlan, ParsesFullGrammar) {
  ASSERT_OK_AND_ASSIGN(
      FaultPlan plan,
      FaultPlan::Parse("drop:from=1,to=2,nth=0;crash:node=2,tuple=5000;"
                       "straggle:node=3,factor=4;seed=7"));
  ASSERT_EQ(plan.faults.size(), 3u);
  EXPECT_EQ(plan.seed, 7u);

  EXPECT_EQ(plan.faults[0].kind, FaultKind::kDrop);
  EXPECT_EQ(plan.faults[0].from, 1);
  EXPECT_EQ(plan.faults[0].to, 2);
  EXPECT_EQ(plan.faults[0].nth, 0);

  EXPECT_EQ(plan.faults[1].kind, FaultKind::kCrash);
  EXPECT_EQ(plan.faults[1].node, 2);
  EXPECT_EQ(plan.faults[1].tuple, 5000);

  EXPECT_EQ(plan.faults[2].kind, FaultKind::kStraggle);
  EXPECT_EQ(plan.faults[2].node, 3);
  EXPECT_DOUBLE_EQ(plan.faults[2].secs, 0.004);

  const FaultSpec* crash = plan.CrashForNode(2);
  ASSERT_NE(crash, nullptr);
  EXPECT_EQ(crash->tuple, 5000);
  EXPECT_EQ(plan.CrashForNode(0), nullptr);
  EXPECT_DOUBLE_EQ(plan.StraggleSecsForNode(3), 0.004);
  EXPECT_DOUBLE_EQ(plan.StraggleSecsForNode(1), 0);
}

TEST(FaultPlan, ToStringRoundTrips) {
  const std::string text =
      "drop:from=1,to=2,nth=0;dup:nth=-1;crash:node=2,phase=merge;seed=9";
  ASSERT_OK_AND_ASSIGN(FaultPlan plan, FaultPlan::Parse(text));
  ASSERT_OK_AND_ASSIGN(FaultPlan again, FaultPlan::Parse(plan.ToString()));
  EXPECT_EQ(again.ToString(), plan.ToString());
  ASSERT_EQ(again.faults.size(), plan.faults.size());
  EXPECT_EQ(again.seed, 9u);
  EXPECT_EQ(again.faults[2].phase, "merge");
}

TEST(FaultPlan, EmptyTextIsEmptyPlan) {
  ASSERT_OK_AND_ASSIGN(FaultPlan plan, FaultPlan::Parse(""));
  EXPECT_TRUE(plan.empty());
  ASSERT_OK_AND_ASSIGN(plan, FaultPlan::Parse(" ; ; "));
  EXPECT_TRUE(plan.empty());
}

TEST(FaultPlan, RejectsMalformedClauses) {
  EXPECT_FALSE(FaultPlan::Parse("explode:node=1").ok());
  EXPECT_FALSE(FaultPlan::Parse("drop").ok());
  EXPECT_FALSE(FaultPlan::Parse("drop:banana").ok());
  EXPECT_FALSE(FaultPlan::Parse("drop:from=abc").ok());
  EXPECT_FALSE(FaultPlan::Parse("drop:color=red").ok());
  EXPECT_FALSE(FaultPlan::Parse("crash:tuple=5").ok());          // no node
  EXPECT_FALSE(FaultPlan::Parse("crash:node=1").ok());  // no trigger
  EXPECT_FALSE(FaultPlan::Parse("straggle:node=1").ok());        // no secs
  EXPECT_FALSE(FaultPlan::Parse("delay:from=0,to=1").ok());      // no secs
  EXPECT_FALSE(FaultPlan::Parse("seed=xyz").ok());
}

// --- FaultyTransport over a real inproc mesh ---

Message DataMsg(uint8_t tag) {
  Message m;
  m.type = MessageType::kRawPage;
  m.phase = 1;
  m.payload = {tag};
  return m;
}

TEST(FaultyTransport, DropSwallowsTheNthMatch) {
  ASSERT_OK_AND_ASSIGN(FaultPlan plan,
                       FaultPlan::Parse("drop:from=0,to=1,nth=0"));
  auto mesh = MakeInprocMesh(2);
  std::vector<FaultEvent> events;
  FaultyTransport faulty(std::move(mesh[0]), plan,
                         [&](const FaultEvent& e) { events.push_back(e); });

  ASSERT_OK(faulty.Send(1, DataMsg(1)));  // dropped
  ASSERT_OK(faulty.Send(1, DataMsg(2)));  // delivered
  ASSERT_OK_AND_ASSIGN(Message got, mesh[1]->RecvWithDeadline(5.0));
  ASSERT_EQ(got.payload.size(), 1u);
  EXPECT_EQ(got.payload[0], 2);
  EXPECT_FALSE(mesh[1]->TryRecv().has_value());

  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].kind, FaultKind::kDrop);
  EXPECT_EQ(events[0].node, 0);
  EXPECT_EQ(events[0].peer, 1);
}

TEST(FaultyTransport, DuplicateDeliversTwice) {
  ASSERT_OK_AND_ASSIGN(FaultPlan plan,
                       FaultPlan::Parse("dup:from=0,to=1,nth=0"));
  auto mesh = MakeInprocMesh(2);
  FaultyTransport faulty(std::move(mesh[0]), plan);

  ASSERT_OK(faulty.Send(1, DataMsg(7)));
  ASSERT_OK_AND_ASSIGN(Message first, mesh[1]->RecvWithDeadline(5.0));
  ASSERT_OK_AND_ASSIGN(Message second, mesh[1]->RecvWithDeadline(5.0));
  EXPECT_EQ(first.payload, second.payload);
  EXPECT_FALSE(mesh[1]->TryRecv().has_value());
}

TEST(FaultyTransport, DelaySleepsButDelivers) {
  ASSERT_OK_AND_ASSIGN(FaultPlan plan,
                       FaultPlan::Parse("delay:from=0,to=1,nth=0,secs=0.05"));
  auto mesh = MakeInprocMesh(2);
  FaultyTransport faulty(std::move(mesh[0]), plan);

  const auto start = std::chrono::steady_clock::now();
  ASSERT_OK(faulty.Send(1, DataMsg(3)));
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  EXPECT_GE(elapsed, 0.04);
  ASSERT_OK_AND_ASSIGN(Message got, mesh[1]->RecvWithDeadline(5.0));
  EXPECT_EQ(got.payload[0], 3);
}

TEST(FaultyTransport, CorruptBecomesADetectableDrop) {
  ASSERT_OK_AND_ASSIGN(FaultPlan plan,
                       FaultPlan::Parse("corrupt:from=0,to=1,nth=0"));
  auto mesh = MakeInprocMesh(2);
  FaultyTransport faulty(std::move(mesh[0]), plan);

  Message big = DataMsg(0);
  big.payload.assign(512, 0xAB);
  ASSERT_OK(faulty.Send(1, std::move(big)));   // CRC rejects the frame
  ASSERT_OK(faulty.Send(1, DataMsg(9)));       // next one is clean
  ASSERT_OK_AND_ASSIGN(Message got, mesh[1]->RecvWithDeadline(5.0));
  ASSERT_EQ(got.payload.size(), 1u);
  EXPECT_EQ(got.payload[0], 9);
  EXPECT_FALSE(mesh[1]->TryRecv().has_value());
}

TEST(FaultyTransport, EveryMatchWhenNthIsMinusOne) {
  ASSERT_OK_AND_ASSIGN(FaultPlan plan,
                       FaultPlan::Parse("drop:from=0,to=1,nth=-1"));
  auto mesh = MakeInprocMesh(2);
  FaultyTransport faulty(std::move(mesh[0]), plan);
  for (int i = 0; i < 5; ++i) {
    ASSERT_OK(faulty.Send(1, DataMsg(static_cast<uint8_t>(i))));
  }
  EXPECT_FALSE(mesh[1]->TryRecv().has_value());
}

TEST(FaultyTransport, HeartbeatsAndAbortsAreExempt) {
  // nth=0 would hit the first message — but heartbeats and aborts are
  // neither faulted nor counted, so the beacon passes and the first
  // *data* message is the one dropped.
  ASSERT_OK_AND_ASSIGN(FaultPlan plan,
                       FaultPlan::Parse("drop:from=0,to=1,nth=0"));
  auto mesh = MakeInprocMesh(2);
  FaultyTransport faulty(std::move(mesh[0]), plan);

  Message hb;
  hb.type = MessageType::kHeartbeat;
  ASSERT_OK(faulty.Send(1, std::move(hb)));
  Message abort;
  abort.type = MessageType::kAbort;
  ASSERT_OK(faulty.Send(1, std::move(abort)));
  ASSERT_OK(faulty.Send(1, DataMsg(1)));  // dropped (first eligible)
  ASSERT_OK(faulty.Send(1, DataMsg(2)));

  ASSERT_OK_AND_ASSIGN(Message got1, mesh[1]->RecvWithDeadline(5.0));
  EXPECT_EQ(got1.type, MessageType::kHeartbeat);
  ASSERT_OK_AND_ASSIGN(Message got2, mesh[1]->RecvWithDeadline(5.0));
  EXPECT_EQ(got2.type, MessageType::kAbort);
  ASSERT_OK_AND_ASSIGN(Message got3, mesh[1]->RecvWithDeadline(5.0));
  EXPECT_EQ(got3.payload[0], 2);
}

TEST(FaultyTransport, FailStopSwallowsEverything) {
  FaultPlan plan;  // even an empty plan supports fail-stop
  auto mesh = MakeInprocMesh(2);
  FaultyTransport faulty(std::move(mesh[0]), plan);
  faulty.SimulateFailStop();
  ASSERT_OK(faulty.Send(1, DataMsg(1)));
  Message abort;
  abort.type = MessageType::kAbort;
  ASSERT_OK(faulty.Send(1, std::move(abort)));
  EXPECT_FALSE(mesh[1]->TryRecv().has_value());
}

// --- RecvWithDeadline across substrates ---

TEST(RecvWithDeadline, InprocTimesOutWithDeadlineExceeded) {
  auto mesh = MakeInprocMesh(2);
  const auto start = std::chrono::steady_clock::now();
  Result<Message> got = mesh[0]->RecvWithDeadline(0.05);
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_GE(elapsed, 0.04);
  EXPECT_LT(elapsed, 5.0);
}

TEST(RecvWithDeadline, TcpTimesOutWithDeadlineExceeded) {
  ASSERT_OK_AND_ASSIGN(auto mesh, MakeTcpMesh(2, 47900));
  Result<Message> got = mesh[1]->RecvWithDeadline(0.05);
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kDeadlineExceeded);

  // A message sent before the deadline is returned instead.
  ASSERT_OK(mesh[0]->Send(1, DataMsg(5)));
  ASSERT_OK_AND_ASSIGN(Message msg, mesh[1]->RecvWithDeadline(5.0));
  EXPECT_EQ(msg.payload[0], 5);
}

}  // namespace
}  // namespace adaptagg
