#include "net/network_model.h"

#include <gtest/gtest.h>

namespace adaptagg {
namespace {

Message PageMessage(size_t bytes) {
  Message m;
  m.type = MessageType::kRawPage;
  m.payload.assign(bytes, 0);
  return m;
}

TEST(NetworkModel, HighBandwidthChargesSenderProtocolPlusWire) {
  SystemParams p = SystemParams::Paper32();  // high bandwidth
  NetworkModel net(p);
  CostClock clock;
  Message m = PageMessage(4096);  // exactly one model page
  net.OnSend(clock, m);
  EXPECT_DOUBLE_EQ(clock.net_s(), p.m_p() + p.m_l());
  EXPECT_DOUBLE_EQ(m.depart_time, clock.now());
}

TEST(NetworkModel, CostsScaleWithPayloadFraction) {
  SystemParams p = SystemParams::Paper32();
  NetworkModel net(p);
  CostClock clock;
  Message m = PageMessage(2048);  // half a model page
  net.OnSend(clock, m);
  EXPECT_DOUBLE_EQ(clock.net_s(), 0.5 * (p.m_p() + p.m_l()));
}

TEST(NetworkModel, EmptyPayloadIsFree) {
  SystemParams p = SystemParams::Paper32();
  NetworkModel net(p);
  CostClock clock;
  Message m;
  m.type = MessageType::kEndOfStream;
  net.OnSend(clock, m);
  EXPECT_DOUBLE_EQ(clock.now(), 0.0);
  net.OnReceive(clock, m);
  EXPECT_DOUBLE_EQ(clock.now(), 0.0);
}

TEST(NetworkModel, ReceiverChargesOnlyOwnProtocolCost) {
  SystemParams p = SystemParams::Paper32();
  NetworkModel net(p);
  CostClock sender;
  sender.AddCpu(1.0);  // sender is at t=1s
  Message m = PageMessage(4096);
  net.OnSend(sender, m);
  EXPECT_DOUBLE_EQ(m.depart_time, sender.now());

  CostClock receiver;  // receiver still at t=0
  net.OnReceive(receiver, m);
  // The receiver pays protocol CPU but is not dragged to the sender's
  // clock: completion time is max over nodes of own busy time (§2's
  // no-overlap, fully-parallel accounting).
  EXPECT_DOUBLE_EQ(receiver.now(), p.m_p());
  EXPECT_DOUBLE_EQ(receiver.idle_s(), 0.0);
}

TEST(NetworkModel, LimitedBandwidthAccumulatesSerializedWire) {
  SystemParams p = SystemParams::Cluster8();  // limited bandwidth
  NetworkModel net(p);
  const double wire = p.m_l();  // one full model page

  CostClock a, b;
  Message ma = PageMessage(4096);
  Message mb = PageMessage(2048);
  EXPECT_DOUBLE_EQ(net.serialized_wire_s(), 0.0);
  net.OnSend(a, ma);
  net.OnSend(b, mb);
  // The shared medium's total occupancy is the sum of all transfers,
  // regardless of which node sent them ("fixed data takes fixed time
  // independent of the number of processors", §2).
  EXPECT_NEAR(net.serialized_wire_s(), 1.5 * wire, 1e-12);
  // Senders pay protocol CPU only; the wire occupies the medium, not the
  // sender's processor.
  EXPECT_NEAR(a.net_s(), p.m_p(), 1e-12);
  EXPECT_NEAR(b.net_s(), 0.5 * p.m_p(), 1e-12);
  EXPECT_DOUBLE_EQ(a.idle_s(), 0.0);
}

TEST(NetworkModel, HighBandwidthHasNoSerializedWire) {
  SystemParams p = SystemParams::Paper32();
  NetworkModel net(p);
  CostClock a;
  Message m = PageMessage(4096);
  net.OnSend(a, m);
  EXPECT_DOUBLE_EQ(net.serialized_wire_s(), 0.0);
}

}  // namespace
}  // namespace adaptagg
