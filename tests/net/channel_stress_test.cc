#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <thread>
#include <vector>

#include "net/channel.h"

namespace adaptagg {
namespace {

// TSan-targeted interleaving tests for the MPSC inbox. Sized to finish in
// well under a second uninstrumented while still giving the sanitizers
// enough schedule diversity to bite on a real race.

Message Tagged(int producer, int seq) {
  Message m;
  m.type = MessageType::kRawPage;
  m.from = producer;
  m.payload.resize(sizeof(int));
  std::memcpy(m.payload.data(), &seq, sizeof(int));
  return m;
}

int SeqOf(const Message& m) {
  int seq = -1;
  std::memcpy(&seq, m.payload.data(), sizeof(int));
  return seq;
}

// Per-producer FIFO must hold no matter how pushes interleave: the
// consumer checks that each producer's sequence numbers arrive in order.
TEST(ChannelStress, ManyProducersPreservePerProducerOrder) {
  constexpr int kProducers = 8;
  constexpr int kEach = 2'000;
  Channel ch;
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&ch, p] {
      for (int i = 0; i < kEach; ++i) ch.Push(Tagged(p, i));
    });
  }
  std::vector<int> next_seq(kProducers, 0);
  for (int i = 0; i < kProducers * kEach; ++i) {
    Message m = ch.Pop();
    ASSERT_GE(m.from, 0);
    ASSERT_LT(m.from, kProducers);
    EXPECT_EQ(SeqOf(m), next_seq[static_cast<size_t>(m.from)]++);
  }
  for (auto& t : producers) t.join();
  EXPECT_EQ(ch.size(), 0u);
}

// The engine's poll-while-scanning pattern: the consumer alternates
// blocking Pop with bursts of TryPop while producers are mid-flight.
TEST(ChannelStress, MixedPopAndTryPopDrainsEverything) {
  constexpr int kProducers = 4;
  constexpr int kEach = 1'500;
  Channel ch;
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&ch, p] {
      for (int i = 0; i < kEach; ++i) ch.Push(Tagged(p, i));
    });
  }
  int received = 0;
  bool blocking = true;
  while (received < kProducers * kEach) {
    if (blocking) {
      ch.Pop();
      ++received;
    } else {
      while (std::optional<Message> m = ch.TryPop()) {
        ++received;
        if (received == kProducers * kEach) break;
      }
    }
    blocking = !blocking;
  }
  for (auto& t : producers) t.join();
  EXPECT_FALSE(ch.TryPop().has_value());
}

// size() is documented safe from any thread; hammer it during a push
// storm. The assertions are on monotonicity of drained counts — the real
// check is TSan observing the size() reads against concurrent Push.
TEST(ChannelStress, SizeIsSafeFromOtherThreads) {
  constexpr int kMessages = 4'000;
  Channel ch;
  std::atomic<bool> done{false};
  std::thread watcher([&] {
    size_t max_seen = 0;
    while (!done.load(std::memory_order_acquire)) {
      max_seen = std::max(max_seen, ch.size());
    }
    EXPECT_LE(max_seen, static_cast<size_t>(kMessages));
  });
  std::thread producer([&] {
    for (int i = 0; i < kMessages; ++i) ch.Push(Tagged(0, i));
  });
  for (int i = 0; i < kMessages; ++i) ch.Pop();
  producer.join();
  done.store(true, std::memory_order_release);
  watcher.join();
  EXPECT_EQ(ch.size(), 0u);
}

// Large payloads moved through the channel concurrently: catches
// use-after-move / double-free bugs under ASan as well as races.
TEST(ChannelStress, ConcurrentLargePayloadsStayIntact) {
  constexpr int kProducers = 4;
  constexpr int kEach = 200;
  constexpr size_t kPayload = 16 * 1024;
  Channel ch;
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&ch, p] {
      for (int i = 0; i < kEach; ++i) {
        Message m = Tagged(p, i);
        m.payload.resize(kPayload, static_cast<uint8_t>(p + 1));
        ch.Push(std::move(m));
      }
    });
  }
  for (int i = 0; i < kProducers * kEach; ++i) {
    Message m = ch.Pop();
    ASSERT_EQ(m.payload.size(), kPayload);
    EXPECT_EQ(m.payload.back(), static_cast<uint8_t>(m.from + 1));
  }
  for (auto& t : producers) t.join();
}

}  // namespace
}  // namespace adaptagg
