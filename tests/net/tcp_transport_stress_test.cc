#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <cstring>
#include <thread>
#include <vector>

#include "net/transport.h"
#include "test_util.h"

namespace adaptagg {
namespace {

// Lifecycle stress for the TCP loopback mesh: repeated bind/connect/
// teardown, teardown with traffic still buffered, and concurrent
// all-to-all sends. Run under TSan these exercise the reader-thread
// shutdown handshake in ~TcpTransport; under ASan the fd and Message
// ownership across threads.

Message Tagged(int seq) {
  Message m;
  m.type = MessageType::kControl;
  m.payload.resize(sizeof(int));
  std::memcpy(m.payload.data(), &seq, sizeof(int));
  return m;
}

TEST(TcpTransportStress, RepeatedBindConnectTeardown) {
  constexpr int kRounds = 6;
  for (int round = 0; round < kRounds; ++round) {
    // Same base port every round: teardown must release the ports
    // (SO_REUSEADDR + closed listeners) or the next round's bind fails.
    auto mesh = MakeTcpMesh(3, 43'500);
    ASSERT_TRUE(mesh.ok()) << "round " << round << ": "
                           << mesh.status().ToString();
    ASSERT_OK((*mesh)[0]->Send(1, Tagged(round)));
    ASSERT_OK_AND_ASSIGN(Message got, (*mesh)[1]->Recv());
    EXPECT_EQ(got.from, 0);
    // Mesh destroyed here with all sockets quiescent.
  }
}

// Destroying the mesh while messages are still in flight and unconsumed
// must not leak, double-close, or race the reader threads.
TEST(TcpTransportStress, TeardownWithUnconsumedTraffic) {
  constexpr int kRounds = 4;
  for (int round = 0; round < kRounds; ++round) {
    auto mesh = MakeTcpMesh(3, 43'600);
    ASSERT_TRUE(mesh.ok()) << mesh.status().ToString();
    for (int from = 0; from < 3; ++from) {
      for (int to = 0; to < 3; ++to) {
        ASSERT_OK((*mesh)[static_cast<size_t>(from)]->Send(to, Tagged(round)));
      }
    }
    // Consume one message on one node only; the rest are dropped by
    // teardown while reader threads may still be mid-ReadLoop.
    ASSERT_OK_AND_ASSIGN(Message got, (*mesh)[1]->Recv());
    (void)got;
  }
}

// All nodes send to all peers from their own threads simultaneously,
// then drain their inboxes; per-link FIFO must survive the contention.
TEST(TcpTransportStress, ConcurrentAllToAllKeepsPerLinkOrder) {
  constexpr int kNodes = 3;
  constexpr int kEach = 300;
  auto mesh = MakeTcpMesh(kNodes, 43'700);
  ASSERT_TRUE(mesh.ok()) << mesh.status().ToString();

  std::vector<std::thread> nodes;
  nodes.reserve(kNodes);
  for (int id = 0; id < kNodes; ++id) {
    nodes.emplace_back([&mesh, id] {
      Transport& me = *(*mesh)[static_cast<size_t>(id)];
      for (int seq = 0; seq < kEach; ++seq) {
        for (int to = 0; to < kNodes; ++to) {
          if (to == id) continue;
          Status st = me.Send(to, Tagged(seq));
          ASSERT_TRUE(st.ok()) << st.ToString();
        }
      }
      std::vector<int> next(kNodes, 0);
      for (int i = 0; i < (kNodes - 1) * kEach; ++i) {
        Result<Message> got = me.Recv();
        ASSERT_TRUE(got.ok()) << got.status().ToString();
        int seq = -1;
        std::memcpy(&seq, got->payload.data(), sizeof(int));
        EXPECT_EQ(seq, next[static_cast<size_t>(got->from)]++);
      }
    });
  }
  for (auto& t : nodes) t.join();
}

// Failure path: binding into an occupied port must return an error (not
// crash) and must clean up the half-built mesh. MakeTcpMesh closes its
// own listeners before returning, so the collision is staged with a raw
// socket held open across the call.
TEST(TcpTransportStress, PortCollisionFailsCleanly) {
  int blocker = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(blocker, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(43'801);  // second node's port of the mesh below
  ASSERT_EQ(::bind(blocker, reinterpret_cast<sockaddr*>(&addr),
                   sizeof(addr)),
            0);
  ASSERT_EQ(::listen(blocker, 1), 0);

  auto mesh = MakeTcpMesh(2, 43'800);
  EXPECT_FALSE(mesh.ok());
  EXPECT_EQ(mesh.status().code(), StatusCode::kNetworkError);
  ::close(blocker);
}

}  // namespace
}  // namespace adaptagg
