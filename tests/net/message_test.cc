#include "net/message.h"

#include <gtest/gtest.h>

#include <cstring>

namespace adaptagg {
namespace {

TEST(Message, SerializeDeserializeRoundtrip) {
  Message m;
  m.type = MessageType::kPartialPage;
  m.from = 5;
  m.phase = 1;
  m.depart_time = 3.25;
  m.payload = {1, 2, 3, 4, 5};

  std::vector<uint8_t> wire = m.Serialize();
  // Frame length prefix.
  uint32_t len;
  std::memcpy(&len, wire.data(), 4);
  EXPECT_EQ(len, wire.size() - 4);

  auto back = Message::Deserialize(wire.data() + 4, wire.size() - 4);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->type, MessageType::kPartialPage);
  EXPECT_EQ(back->from, 5);
  EXPECT_EQ(back->phase, 1u);
  EXPECT_DOUBLE_EQ(back->depart_time, 3.25);
  EXPECT_EQ(back->payload, m.payload);
}

TEST(Message, EmptyPayloadRoundtrip) {
  Message m;
  m.type = MessageType::kEndOfStream;
  m.from = 0;
  m.phase = 7;
  std::vector<uint8_t> wire = m.Serialize();
  auto back = Message::Deserialize(wire.data() + 4, wire.size() - 4);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->type, MessageType::kEndOfStream);
  EXPECT_TRUE(back->payload.empty());
}

TEST(Message, DeserializeRejectsGarbage) {
  uint8_t tiny[3] = {1, 2, 3};
  EXPECT_FALSE(Message::Deserialize(tiny, 3).ok());

  // Bad type byte.
  Message m;
  m.type = MessageType::kControl;
  std::vector<uint8_t> wire = m.Serialize();
  wire[4] = 200;
  EXPECT_FALSE(
      Message::Deserialize(wire.data() + 4, wire.size() - 4).ok());
}

TEST(Message, TypeNames) {
  EXPECT_EQ(MessageTypeToString(MessageType::kRawPage), "raw-page");
  EXPECT_EQ(MessageTypeToString(MessageType::kEndOfPhase), "end-of-phase");
}

}  // namespace
}  // namespace adaptagg
