#include "net/message.h"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "common/crc32c.h"

namespace adaptagg {
namespace {

TEST(Message, SerializeDeserializeRoundtrip) {
  Message m;
  m.type = MessageType::kPartialPage;
  m.from = 5;
  m.phase = 1;
  m.depart_time = 3.25;
  m.payload = {1, 2, 3, 4, 5};

  std::vector<uint8_t> wire = m.Serialize();
  // Frame length prefix.
  uint32_t len;
  std::memcpy(&len, wire.data(), 4);
  EXPECT_EQ(len, wire.size() - 4);

  auto back = Message::Deserialize(wire.data() + 4, wire.size() - 4);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->type, MessageType::kPartialPage);
  EXPECT_EQ(back->from, 5);
  EXPECT_EQ(back->phase, 1u);
  EXPECT_DOUBLE_EQ(back->depart_time, 3.25);
  EXPECT_EQ(back->payload, m.payload);
}

TEST(Message, EmptyPayloadRoundtrip) {
  Message m;
  m.type = MessageType::kEndOfStream;
  m.from = 0;
  m.phase = 7;
  std::vector<uint8_t> wire = m.Serialize();
  auto back = Message::Deserialize(wire.data() + 4, wire.size() - 4);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->type, MessageType::kEndOfStream);
  EXPECT_TRUE(back->payload.empty());
}

TEST(Message, DeserializeRejectsGarbage) {
  uint8_t tiny[3] = {1, 2, 3};
  EXPECT_FALSE(Message::Deserialize(tiny, 3).ok());

  // Bad type byte.
  Message m;
  m.type = MessageType::kControl;
  std::vector<uint8_t> wire = m.Serialize();
  wire[4] = 200;
  EXPECT_FALSE(
      Message::Deserialize(wire.data() + 4, wire.size() - 4).ok());
}

TEST(Message, TypeNames) {
  EXPECT_EQ(MessageTypeToString(MessageType::kRawPage), "raw-page");
  EXPECT_EQ(MessageTypeToString(MessageType::kEndOfPhase), "end-of-phase");
  EXPECT_EQ(MessageTypeToString(MessageType::kHeartbeat), "heartbeat");
}

TEST(Message, ChargedBytesRoundtrips) {
  // A trimmed exchange page carries fewer wire bytes than the cost model
  // charges; the charged size must survive serialization.
  Message m;
  m.type = MessageType::kRawPage;
  m.payload = {1, 2, 3, 4};
  m.charged_bytes = 2048;
  std::vector<uint8_t> wire = m.Serialize();
  auto back = Message::Deserialize(wire.data() + 4, wire.size() - 4);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->charged_bytes, 2048u);
  EXPECT_EQ(back->payload, m.payload);

  // Default: 0 = "charge the real payload size".
  Message plain;
  plain.type = MessageType::kControl;
  wire = plain.Serialize();
  back = Message::Deserialize(wire.data() + 4, wire.size() - 4);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->charged_bytes, 0u);
}

TEST(Message, SequenceNumberRoundtrips) {
  Message m;
  m.type = MessageType::kRawPage;
  m.seq = 0x0123456789ABCDEFull;
  std::vector<uint8_t> wire = m.Serialize();
  auto back = Message::Deserialize(wire.data() + 4, wire.size() - 4);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->seq, 0x0123456789ABCDEFull);
}

TEST(Message, EpochAndPageSeqRoundtrip) {
  // The recovery/elasticity header fields must survive the wire and
  // default to 0 ("initial epoch" / "not a data page").
  Message m;
  m.type = MessageType::kPartialPage;
  m.epoch = 7;
  m.page_seq = 0xFEDCBA9876543210ull;
  std::vector<uint8_t> wire = m.Serialize();
  auto back = Message::Deserialize(wire.data() + 4, wire.size() - 4);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->epoch, 7u);
  EXPECT_EQ(back->page_seq, 0xFEDCBA9876543210ull);

  Message plain;
  plain.type = MessageType::kControl;
  wire = plain.Serialize();
  back = Message::Deserialize(wire.data() + 4, wire.size() - 4);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->epoch, 0u);
  EXPECT_EQ(back->page_seq, 0u);
}

TEST(Message, EveryTruncationIsRejected) {
  Message m;
  m.type = MessageType::kPartialPage;
  m.payload = {9, 8, 7};
  std::vector<uint8_t> wire = m.Serialize();
  // Every prefix shorter than the header is malformed, including zero.
  for (size_t len = 0; len < kHeaderBytes; ++len) {
    EXPECT_FALSE(Message::Deserialize(wire.data() + 4, len).ok())
        << "len=" << len;
  }
}

TEST(Message, OversizedFrameIsRejected) {
  // A frame one byte past the cap must be refused before any parsing:
  // a corrupted length prefix must not turn into a giant allocation.
  std::vector<uint8_t> huge(static_cast<size_t>(kMaxFrameBytes) + 1, 0);
  auto got = Message::Deserialize(huge.data(), huge.size());
  ASSERT_FALSE(got.ok());
}

TEST(Message, BadTypeRejectedEvenWithValidChecksum) {
  Message m;
  m.type = MessageType::kControl;
  std::vector<uint8_t> wire = m.Serialize();
  // Frame layout after the length prefix: [crc][type][...]. Overwrite
  // the type with an out-of-range value and re-sign the frame so the
  // CRC passes — the type check itself must still reject it.
  uint8_t* frame = wire.data() + 4;
  const size_t frame_len = wire.size() - 4;
  frame[4] = 200;
  const uint32_t crc = Crc32c(0, frame + 4, frame_len - 4);
  std::memcpy(frame, &crc, 4);
  auto got = Message::Deserialize(frame, frame_len);
  ASSERT_FALSE(got.ok());
  EXPECT_NE(got.status().message().find("type"), std::string::npos);
}

TEST(Message, CorruptedByteFailsTheChecksum) {
  Message m;
  m.type = MessageType::kRawPage;
  m.from = 3;
  m.payload = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<uint8_t> wire = m.Serialize();
  // Flip one bit in every post-CRC position in turn; all must be caught.
  for (size_t at = 8; at < wire.size(); ++at) {
    wire[at] ^= 0x01;
    EXPECT_FALSE(
        Message::Deserialize(wire.data() + 4, wire.size() - 4).ok())
        << "at=" << at;
    wire[at] ^= 0x01;
  }
  // Untouched frame still parses (the loop restored every byte).
  EXPECT_TRUE(Message::Deserialize(wire.data() + 4, wire.size() - 4).ok());
}

TEST(Message, RandomFramesNeverCrashTheParser) {
  // Deterministic fuzz: feed pseudo-random junk of assorted sizes; the
  // parser must return an error every time (a random 32-bit checksum
  // match is ~2^-32) and never crash or over-read.
  uint64_t state = 0x853C49E6748FEA9Bull;
  auto next = [&state]() {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    return static_cast<uint8_t>(state >> 33);
  };
  for (int round = 0; round < 500; ++round) {
    std::vector<uint8_t> frame(kHeaderBytes + (round % 97));
    for (uint8_t& b : frame) b = next();
    EXPECT_FALSE(Message::Deserialize(frame.data(), frame.size()).ok());
  }
}

}  // namespace
}  // namespace adaptagg
