#include "net/channel.h"

#include <gtest/gtest.h>

#include <thread>

namespace adaptagg {
namespace {

Message Make(MessageType type, int from) {
  Message m;
  m.type = type;
  m.from = from;
  return m;
}

TEST(Channel, FifoOrder) {
  Channel ch;
  ch.Push(Make(MessageType::kRawPage, 1));
  ch.Push(Make(MessageType::kPartialPage, 2));
  EXPECT_EQ(ch.size(), 2u);
  EXPECT_EQ(ch.Pop().from, 1);
  EXPECT_EQ(ch.Pop().from, 2);
  EXPECT_EQ(ch.size(), 0u);
}

TEST(Channel, TryPopEmptyReturnsNothing) {
  Channel ch;
  EXPECT_FALSE(ch.TryPop().has_value());
  ch.Push(Make(MessageType::kControl, 3));
  auto m = ch.TryPop();
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->from, 3);
  EXPECT_FALSE(ch.TryPop().has_value());
}

TEST(Channel, BlockingPopWakesOnPush) {
  Channel ch;
  std::thread producer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    ch.Push(Make(MessageType::kEndOfStream, 9));
  });
  Message m = ch.Pop();  // blocks until producer pushes
  EXPECT_EQ(m.from, 9);
  producer.join();
}

TEST(Channel, ManyProducersOneConsumer) {
  Channel ch;
  constexpr int kProducers = 4;
  constexpr int kEach = 1'000;
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kEach; ++i) {
        ch.Push(Make(MessageType::kRawPage, p));
      }
    });
  }
  int counts[kProducers] = {};
  for (int i = 0; i < kProducers * kEach; ++i) {
    ++counts[ch.Pop().from];
  }
  for (auto& t : producers) t.join();
  for (int p = 0; p < kProducers; ++p) {
    EXPECT_EQ(counts[p], kEach);
  }
  EXPECT_EQ(ch.size(), 0u);
}

TEST(Channel, PayloadMovesIntact) {
  Channel ch;
  Message m = Make(MessageType::kRawPage, 0);
  m.payload.assign(4096, 0x5C);
  ch.Push(std::move(m));
  Message out = ch.Pop();
  ASSERT_EQ(out.payload.size(), 4096u);
  EXPECT_EQ(out.payload[4095], 0x5C);
}

}  // namespace
}  // namespace adaptagg
