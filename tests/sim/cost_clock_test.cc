#include "sim/cost_clock.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace adaptagg {
namespace {

TEST(CostClock, ComponentsAccumulate) {
  CostClock c;
  EXPECT_DOUBLE_EQ(c.now(), 0);
  c.AddCpu(1.0);
  c.AddIo(2.0);
  c.AddNet(0.5);
  EXPECT_DOUBLE_EQ(c.cpu_s(), 1.0);
  EXPECT_DOUBLE_EQ(c.io_s(), 2.0);
  EXPECT_DOUBLE_EQ(c.net_s(), 0.5);
  EXPECT_DOUBLE_EQ(c.now(), 3.5);
  EXPECT_DOUBLE_EQ(c.idle_s(), 0);
}

TEST(CostClock, AdvanceToOnlyMovesForward) {
  CostClock c;
  c.AddCpu(1.0);
  c.AdvanceTo(0.5);  // in the past: no-op
  EXPECT_DOUBLE_EQ(c.now(), 1.0);
  EXPECT_DOUBLE_EQ(c.idle_s(), 0);
  c.AdvanceTo(2.5);
  EXPECT_DOUBLE_EQ(c.now(), 2.5);
  EXPECT_DOUBLE_EQ(c.idle_s(), 1.5);
}

TEST(CostClock, ResetClears) {
  CostClock c;
  c.AddIo(3.0);
  c.Reset();
  EXPECT_DOUBLE_EQ(c.now(), 0);
  EXPECT_DOUBLE_EQ(c.io_s(), 0);
}

TEST(CostClock, ToStringHasComponents) {
  CostClock c;
  c.AddCpu(0.25);
  std::string s = c.ToString();
  EXPECT_NE(s.find("cpu=0.25"), std::string::npos);
}

TEST(SharedEther, SequentialReservations) {
  SharedEther ether;
  // First sender at t=0 for 2s -> [0,2).
  EXPECT_DOUBLE_EQ(ether.Acquire(0.0, 2.0), 0.0);
  // Second wants t=1 but medium busy until 2 -> starts at 2.
  EXPECT_DOUBLE_EQ(ether.Acquire(1.0, 1.0), 2.0);
  // Third arrives later than the medium frees -> starts at its own time.
  EXPECT_DOUBLE_EQ(ether.Acquire(10.0, 1.0), 10.0);
  EXPECT_DOUBLE_EQ(ether.busy_until(), 11.0);
  ether.Reset();
  EXPECT_DOUBLE_EQ(ether.busy_until(), 0.0);
}

TEST(SharedEther, ConcurrentAcquisitionsNeverOverlap) {
  SharedEther ether;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 500;
  std::vector<std::vector<std::pair<double, double>>> slots(kThreads);
  {
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        for (int i = 0; i < kPerThread; ++i) {
          double start = ether.Acquire(0.0, 0.001);
          slots[t].emplace_back(start, start + 0.001);
        }
      });
    }
    for (auto& th : threads) th.join();
  }
  // Collect all intervals; after sorting they must tile without overlap.
  std::vector<std::pair<double, double>> all;
  for (auto& v : slots) all.insert(all.end(), v.begin(), v.end());
  std::sort(all.begin(), all.end());
  ASSERT_EQ(all.size(), static_cast<size_t>(kThreads * kPerThread));
  for (size_t i = 1; i < all.size(); ++i) {
    EXPECT_GE(all[i].first, all[i - 1].second - 1e-12)
        << "interval " << i << " overlaps its predecessor";
  }
  EXPECT_NEAR(ether.busy_until(), kThreads * kPerThread * 0.001, 1e-6);
}

}  // namespace
}  // namespace adaptagg
