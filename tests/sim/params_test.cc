#include "sim/params.h"

#include <gtest/gtest.h>

namespace adaptagg {
namespace {

TEST(SystemParams, Paper32Defaults) {
  SystemParams p = SystemParams::Paper32();
  EXPECT_EQ(p.num_nodes, 32);
  EXPECT_EQ(p.num_tuples, 8'000'000);
  EXPECT_EQ(p.tuple_bytes, 100);
  EXPECT_EQ(p.page_bytes, 4096);
  EXPECT_EQ(p.max_hash_entries, 10'000);
  EXPECT_EQ(p.network, NetworkKind::kHighBandwidth);
  // 800 MB relation.
  EXPECT_DOUBLE_EQ(p.relation_bytes(), 8e8);
  EXPECT_DOUBLE_EQ(p.tuples_per_node(), 250'000.0);
  EXPECT_DOUBLE_EQ(p.bytes_per_node(), 25e6);
}

TEST(SystemParams, InstructionTimesAt40Mips) {
  SystemParams p = SystemParams::Paper32();
  // 300 instructions at 40 MIPS = 7.5 microseconds.
  EXPECT_DOUBLE_EQ(p.t_r(), 7.5e-6);
  EXPECT_DOUBLE_EQ(p.t_w(), 2.5e-6);
  EXPECT_DOUBLE_EQ(p.t_h(), 10e-6);
  EXPECT_DOUBLE_EQ(p.t_a(), 7.5e-6);
  EXPECT_DOUBLE_EQ(p.t_d(), 0.25e-6);
  EXPECT_DOUBLE_EQ(p.m_p(), 25e-6);
  EXPECT_DOUBLE_EQ(p.m_l(), 2e-3);
}

TEST(SystemParams, Cluster8MatchesImplementationSection) {
  SystemParams p = SystemParams::Cluster8();
  EXPECT_EQ(p.num_nodes, 8);
  EXPECT_EQ(p.num_tuples, 2'000'000);
  EXPECT_EQ(p.network, NetworkKind::kLimitedBandwidth);
  // 25 MB per node, as in §5.
  EXPECT_DOUBLE_EQ(p.bytes_per_node(), 25e6);
  // 10 Mbit/s Ethernet: ~3.28 ms per 4 KB page.
  EXPECT_NEAR(p.m_l(), 4096.0 * 8 / 10e6, 1e-9);
}

TEST(SystemParams, ToStringMentionsKeyValues) {
  std::string s = SystemParams::Paper32().ToString();
  EXPECT_NE(s.find("N=32"), std::string::npos);
  EXPECT_NE(s.find("high-bandwidth"), std::string::npos);
  EXPECT_EQ(NetworkKindToString(NetworkKind::kLimitedBandwidth),
            "limited-bandwidth");
}

}  // namespace
}  // namespace adaptagg
