#include "storage/checkpoint.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "storage/faulty_disk.h"
#include "test_util.h"

namespace adaptagg {
namespace {

CheckpointState MakeState(int64_t hwm, bool complete, size_t local_bytes,
                          size_t global_bytes) {
  CheckpointState s;
  s.scan_hwm = hwm;
  s.scan_complete = complete;
  s.fold_watermarks = {3, 0, 7};
  s.local_partials.resize(local_bytes);
  for (size_t i = 0; i < local_bytes; ++i) {
    s.local_partials[i] = static_cast<uint8_t>(i * 13 + 1);
  }
  s.global_partials.resize(global_bytes);
  for (size_t i = 0; i < global_bytes; ++i) {
    s.global_partials[i] = static_cast<uint8_t>(i * 7 + 5);
  }
  return s;
}

TEST(CheckpointStoreTest, RoundTripsEveryField) {
  CheckpointStore store(2, 512);
  // Payload larger than one page, so the multi-page path is exercised.
  const CheckpointState written = MakeState(1280, false, 2000, 900);
  ASSERT_OK(store.Write(0, written));
  EXPECT_TRUE(store.Has(0));
  EXPECT_FALSE(store.Has(1));

  ASSERT_OK_AND_ASSIGN(CheckpointState loaded, store.Load(0));
  EXPECT_EQ(loaded.scan_hwm, written.scan_hwm);
  EXPECT_EQ(loaded.scan_complete, written.scan_complete);
  EXPECT_EQ(loaded.fold_watermarks, written.fold_watermarks);
  EXPECT_EQ(loaded.local_partials, written.local_partials);
  EXPECT_EQ(loaded.global_partials, written.global_partials);
}

TEST(CheckpointStoreTest, LoadWithoutWriteIsNotFound) {
  CheckpointStore store(1, 512);
  Result<CheckpointState> loaded = store.Load(0);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kNotFound);
}

TEST(CheckpointStoreTest, RewriteReplacesLatest) {
  CheckpointStore store(1, 512);
  ASSERT_OK(store.Write(0, MakeState(128, false, 64, 0)));
  ASSERT_OK(store.Write(0, MakeState(256, false, 128, 32)));
  ASSERT_OK_AND_ASSIGN(CheckpointState loaded, store.Load(0));
  EXPECT_EQ(loaded.scan_hwm, 256);
  EXPECT_EQ(loaded.local_partials.size(), 128u);
}

TEST(CheckpointStoreTest, TornWriteSurfacesAsDataLossNeverWrongState) {
  CheckpointStore store(1, 512, [](int) -> std::unique_ptr<Disk> {
    auto disk = std::make_unique<TornWriteDisk>(512);
    disk->TearWrite(0);  // the very first append persists half-zeroed
    return disk;
  });
  // The write itself reports success — that is the point of a torn
  // write — but the CRC check on read must refuse the damaged state.
  ASSERT_OK(store.Write(0, MakeState(128, false, 300, 0)));
  EXPECT_TRUE(store.Has(0));
  Result<CheckpointState> loaded = store.Load(0);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kDataLoss);

  // Drop after data loss: later attempts go straight to scratch.
  store.Drop(0);
  EXPECT_FALSE(store.Has(0));
  Result<CheckpointState> gone = store.Load(0);
  ASSERT_FALSE(gone.ok());
  EXPECT_EQ(gone.status().code(), StatusCode::kNotFound);
}

TEST(CheckpointStoreTest, FailedWriteKeepsPreviousCheckpointLatest) {
  auto* raw = new FaultySimDisk(512);
  CheckpointStore store(1, 512, [raw](int) {
    return std::unique_ptr<Disk>(raw);
  });
  ASSERT_OK(store.Write(0, MakeState(128, false, 64, 0)));

  raw->FailWritesAfter(0);  // every further append fails
  Status st = store.Write(0, MakeState(256, false, 128, 0));
  ASSERT_FALSE(st.ok());

  // The earlier generation is still the latest and still loads clean.
  ASSERT_OK_AND_ASSIGN(CheckpointState loaded, store.Load(0));
  EXPECT_EQ(loaded.scan_hwm, 128);
  EXPECT_EQ(loaded.local_partials.size(), 64u);
}

TEST(CheckpointStoreTest, NodesAreIndependent) {
  CheckpointStore store(3, 512);
  ASSERT_OK(store.Write(0, MakeState(128, false, 16, 0)));
  ASSERT_OK(store.Write(2, MakeState(512, true, 0, 64)));
  ASSERT_OK_AND_ASSIGN(CheckpointState n0, store.Load(0));
  ASSERT_OK_AND_ASSIGN(CheckpointState n2, store.Load(2));
  EXPECT_EQ(n0.scan_hwm, 128);
  EXPECT_FALSE(n0.scan_complete);
  EXPECT_TRUE(n2.scan_complete);
  EXPECT_FALSE(store.Has(1));
}

TEST(CheckpointStoreTest, PagesForTracksPayloadSize) {
  CheckpointStore store(1, 512);
  const int64_t small = store.PagesFor(MakeState(0, false, 10, 0));
  const int64_t large = store.PagesFor(MakeState(0, false, 5000, 5000));
  EXPECT_GE(small, 1);
  EXPECT_GT(large, small);
}

}  // namespace
}  // namespace adaptagg
