#include "storage/page.h"

#include <gtest/gtest.h>

namespace adaptagg {
namespace {

TEST(Page, Capacity) {
  EXPECT_EQ(PageBuilder::Capacity(4096, 100), 40);
  EXPECT_EQ(PageBuilder::Capacity(2048, 16), 127);  // header costs 4 bytes
  EXPECT_EQ(PageBuilder::Capacity(4096, 4092), 1);
}

TEST(Page, AppendAndReadBack) {
  PageBuilder builder(256, 8);
  int cap = PageBuilder::Capacity(256, 8);
  for (int64_t i = 0; i < cap; ++i) {
    ASSERT_FALSE(builder.full());
    builder.Append(reinterpret_cast<const uint8_t*>(&i));
  }
  EXPECT_TRUE(builder.full());
  std::vector<uint8_t> page = builder.Finish();
  ASSERT_EQ(page.size(), 256u);

  PageReader reader(page.data(), 256, 8);
  ASSERT_EQ(reader.count(), cap);
  for (int i = 0; i < cap; ++i) {
    int64_t v;
    std::memcpy(&v, reader.record(i), 8);
    EXPECT_EQ(v, i);
  }
}

TEST(Page, BuilderResetsAfterFinish) {
  PageBuilder builder(128, 16);
  uint8_t rec[16] = {1};
  builder.Append(rec);
  EXPECT_EQ(builder.count(), 1);
  std::vector<uint8_t> first = builder.Finish();
  EXPECT_EQ(builder.count(), 0);
  EXPECT_TRUE(builder.empty());

  rec[0] = 2;
  builder.Append(rec);
  std::vector<uint8_t> second = builder.Finish();
  PageReader r1(first.data(), 128, 16);
  PageReader r2(second.data(), 128, 16);
  EXPECT_EQ(r1.record(0)[0], 1);
  EXPECT_EQ(r2.record(0)[0], 2);
}

TEST(Page, PartialPageKeepsCount) {
  PageBuilder builder(4096, 100);
  uint8_t rec[100] = {};
  builder.Append(rec);
  builder.Append(rec);
  builder.Append(rec);
  std::vector<uint8_t> page = builder.Finish();
  PageReader reader(page.data(), 4096, 100);
  EXPECT_EQ(reader.count(), 3);
}

TEST(Page, EmptyPage) {
  PageBuilder builder(512, 32);
  std::vector<uint8_t> page = builder.Finish();
  PageReader reader(page.data(), 512, 32);
  EXPECT_EQ(reader.count(), 0);
}

TEST(Page, AppendBatchMatchesAppendPerRecord) {
  const int kPage = 256;
  const int kWidth = 8;
  const int cap = PageBuilder::Capacity(kPage, kWidth);
  std::vector<uint8_t> recs(static_cast<size_t>(cap) * kWidth);
  for (int64_t i = 0; i < cap; ++i) {
    std::memcpy(recs.data() + i * kWidth, &i, 8);
  }
  PageBuilder one(kPage, kWidth);
  for (int i = 0; i < cap; ++i) {
    one.Append(recs.data() + static_cast<size_t>(i) * kWidth);
  }
  PageBuilder bulk(kPage, kWidth);
  // Two runs, exercising append-at-offset.
  EXPECT_EQ(bulk.AppendBatch(recs.data(), 5), 5);
  EXPECT_EQ(bulk.AppendBatch(recs.data() + 5 * kWidth, cap - 5), cap - 5);
  EXPECT_TRUE(bulk.full());
  EXPECT_EQ(one.Finish(), bulk.Finish());
}

TEST(Page, AppendBatchClampsToRemainingRoom) {
  PageBuilder builder(128, 16);  // capacity 7
  const int cap = PageBuilder::Capacity(128, 16);
  std::vector<uint8_t> recs(static_cast<size_t>(cap + 10) * 16, 0x5A);
  EXPECT_EQ(builder.AppendBatch(recs.data(), cap + 10), cap);
  EXPECT_TRUE(builder.full());
  EXPECT_EQ(builder.AppendBatch(recs.data(), 1), 0);
}

TEST(Page, FinishWireTrimsTrailingPadding) {
  const int kPage = 2048;
  const int kWidth = 16;
  PageBuilder builder(kPage, kWidth);
  uint8_t rec[16];
  for (int i = 0; i < 3; ++i) {
    std::memset(rec, 10 + i, sizeof(rec));
    builder.Append(rec);
  }
  std::vector<uint8_t> wire = builder.FinishWire({});
  ASSERT_EQ(wire.size(), sizeof(uint32_t) + 3 * kWidth);
  uint32_t count;
  std::memcpy(&count, wire.data(), 4);
  EXPECT_EQ(count, 3u);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(wire[4 + static_cast<size_t>(i) * kWidth], 10 + i);
  }
  EXPECT_TRUE(builder.empty());
}

TEST(Page, FinishWireRecyclesDirtyReplacementBuffers) {
  const int kPage = 256;
  const int kWidth = 8;
  PageBuilder builder(kPage, kWidth);
  int64_t v = 41;
  builder.Append(reinterpret_cast<const uint8_t*>(&v));
  std::vector<uint8_t> first = builder.FinishWire({});

  // Hand back a garbage-filled recycled buffer; the next page's wire
  // bytes must be exactly the fresh records, no stale residue.
  std::vector<uint8_t> dirty(kPage, 0xFF);
  v = 42;
  builder.Append(reinterpret_cast<const uint8_t*>(&v));
  std::vector<uint8_t> second = builder.FinishWire(std::move(dirty));
  ASSERT_EQ(second.size(), sizeof(uint32_t) + kWidth);
  uint32_t count;
  std::memcpy(&count, second.data(), 4);
  EXPECT_EQ(count, 1u);
  int64_t got;
  std::memcpy(&got, second.data() + 4, 8);
  EXPECT_EQ(got, 42);
}

TEST(Page, ValidateWirePageAcceptsFullAndTrimmedPages) {
  PageBuilder builder(256, 8);
  int64_t v = 7;
  builder.Append(reinterpret_cast<const uint8_t*>(&v));
  builder.Append(reinterpret_cast<const uint8_t*>(&v));
  std::vector<uint8_t> full = builder.Finish();
  auto got = ValidateWirePage(full.data(), full.size(), 256, 8);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, 2);

  builder.Append(reinterpret_cast<const uint8_t*>(&v));
  std::vector<uint8_t> trimmed = builder.FinishWire({});
  got = ValidateWirePage(trimmed.data(), trimmed.size(), 256, 8);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, 1);
}

TEST(Page, ValidateWirePageRejectsShortForgedAndTruncated) {
  // Shorter than the header itself.
  uint8_t tiny[3] = {1, 2, 3};
  auto got = ValidateWirePage(tiny, sizeof(tiny), 256, 8);
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kNetworkError);

  // Count larger than any 256-byte page of 8-byte records can hold.
  std::vector<uint8_t> page(256, 0);
  uint32_t forged = 1000;
  std::memcpy(page.data(), &forged, 4);
  got = ValidateWirePage(page.data(), page.size(), 256, 8);
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kNetworkError);
  EXPECT_NE(got.status().message().find("forged page header"),
            std::string::npos);

  // Plausible count, but the payload bytes don't carry that many.
  uint32_t claims = 10;
  std::memcpy(page.data(), &claims, 4);
  got = ValidateWirePage(page.data(), 4 + 5 * 8, 256, 8);
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kNetworkError);
  EXPECT_NE(got.status().message().find("truncated page"),
            std::string::npos);
}

TEST(Page, ValidateWirePageFuzzedHeadersNeverOverread) {
  // Deterministic fuzz over garbage counts and payload sizes: every call
  // must either return a count consistent with the payload or a clean
  // kNetworkError — never crash (ASan guards the "never overread" half).
  uint64_t state = 0x9E3779B97F4A7C15ull;
  auto next = [&state]() {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    return static_cast<uint32_t>(state >> 32);
  };
  for (int round = 0; round < 2000; ++round) {
    const int record_size = 1 + static_cast<int>(next() % 64);
    const int page_size = 8 + static_cast<int>(next() % 2048);
    std::vector<uint8_t> payload(next() % 600);
    for (uint8_t& b : payload) b = static_cast<uint8_t>(next());
    if (payload.size() >= 4) {
      const uint32_t count = next();  // wild forged counts included
      std::memcpy(payload.data(), &count, 4);
    }
    auto got = ValidateWirePage(payload.data(), payload.size(), page_size,
                                record_size);
    if (got.ok()) {
      EXPECT_LE(sizeof(uint32_t) +
                    static_cast<size_t>(*got) *
                        static_cast<size_t>(record_size),
                payload.size());
      EXPECT_LE(*got, PageBuilder::Capacity(page_size, record_size));
    } else {
      EXPECT_EQ(got.status().code(), StatusCode::kNetworkError);
    }
  }
}

TEST(Page, PagePoolCountsHitsAndAllocs) {
  PagePool pool(4);
  std::vector<uint8_t> a = pool.Acquire();
  EXPECT_EQ(pool.allocs(), 1);
  EXPECT_EQ(pool.hits(), 0);
  a.resize(2048, 0x77);
  pool.Release(std::move(a));
  std::vector<uint8_t> b = pool.Acquire();
  EXPECT_EQ(pool.allocs(), 1);
  EXPECT_EQ(pool.hits(), 1);
  EXPECT_GE(b.capacity(), 2048u);
}

TEST(Page, PagePoolDropsReleasesBeyondCapacity) {
  PagePool pool(2);
  for (int i = 0; i < 5; ++i) {
    pool.Release(std::vector<uint8_t>(64, 1));
  }
  // Only two buffers were retained: two hits, then a fresh alloc.
  (void)pool.Acquire();
  (void)pool.Acquire();
  (void)pool.Acquire();
  EXPECT_EQ(pool.hits(), 2);
  EXPECT_EQ(pool.allocs(), 1);
}

}  // namespace
}  // namespace adaptagg
