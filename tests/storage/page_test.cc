#include "storage/page.h"

#include <gtest/gtest.h>

namespace adaptagg {
namespace {

TEST(Page, Capacity) {
  EXPECT_EQ(PageBuilder::Capacity(4096, 100), 40);
  EXPECT_EQ(PageBuilder::Capacity(2048, 16), 127);  // header costs 4 bytes
  EXPECT_EQ(PageBuilder::Capacity(4096, 4092), 1);
}

TEST(Page, AppendAndReadBack) {
  PageBuilder builder(256, 8);
  int cap = PageBuilder::Capacity(256, 8);
  for (int64_t i = 0; i < cap; ++i) {
    ASSERT_FALSE(builder.full());
    builder.Append(reinterpret_cast<const uint8_t*>(&i));
  }
  EXPECT_TRUE(builder.full());
  std::vector<uint8_t> page = builder.Finish();
  ASSERT_EQ(page.size(), 256u);

  PageReader reader(page.data(), 256, 8);
  ASSERT_EQ(reader.count(), cap);
  for (int i = 0; i < cap; ++i) {
    int64_t v;
    std::memcpy(&v, reader.record(i), 8);
    EXPECT_EQ(v, i);
  }
}

TEST(Page, BuilderResetsAfterFinish) {
  PageBuilder builder(128, 16);
  uint8_t rec[16] = {1};
  builder.Append(rec);
  EXPECT_EQ(builder.count(), 1);
  std::vector<uint8_t> first = builder.Finish();
  EXPECT_EQ(builder.count(), 0);
  EXPECT_TRUE(builder.empty());

  rec[0] = 2;
  builder.Append(rec);
  std::vector<uint8_t> second = builder.Finish();
  PageReader r1(first.data(), 128, 16);
  PageReader r2(second.data(), 128, 16);
  EXPECT_EQ(r1.record(0)[0], 1);
  EXPECT_EQ(r2.record(0)[0], 2);
}

TEST(Page, PartialPageKeepsCount) {
  PageBuilder builder(4096, 100);
  uint8_t rec[100] = {};
  builder.Append(rec);
  builder.Append(rec);
  builder.Append(rec);
  std::vector<uint8_t> page = builder.Finish();
  PageReader reader(page.data(), 4096, 100);
  EXPECT_EQ(reader.count(), 3);
}

TEST(Page, EmptyPage) {
  PageBuilder builder(512, 32);
  std::vector<uint8_t> page = builder.Finish();
  PageReader reader(page.data(), 512, 32);
  EXPECT_EQ(reader.count(), 0);
}

}  // namespace
}  // namespace adaptagg
