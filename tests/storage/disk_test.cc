#include "storage/disk.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>

namespace adaptagg {
namespace {

std::vector<uint8_t> MakePage(int page_size, uint8_t fill) {
  return std::vector<uint8_t>(static_cast<size_t>(page_size), fill);
}

class DiskTest : public ::testing::TestWithParam<bool /*use_file_disk*/> {
 protected:
  void SetUp() override {
    if (GetParam()) {
      const char* tmp = std::getenv("TMPDIR");
      disk_ = std::make_unique<FileDisk>(tmp != nullptr ? tmp : "/tmp", 512);
    } else {
      disk_ = std::make_unique<SimDisk>(512);
    }
  }
  std::unique_ptr<Disk> disk_;
};

TEST_P(DiskTest, CreateAppendReadRoundtrip) {
  auto file = disk_->CreateFile("t");
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE(disk_->AppendPage(*file, MakePage(512, 0xAA)).ok());
  ASSERT_TRUE(disk_->AppendPage(*file, MakePage(512, 0xBB)).ok());
  auto pages = disk_->NumPages(*file);
  ASSERT_TRUE(pages.ok());
  EXPECT_EQ(*pages, 2);

  std::vector<uint8_t> out;
  ASSERT_TRUE(disk_->ReadPage(*file, 0, out).ok());
  EXPECT_EQ(out[0], 0xAA);
  ASSERT_TRUE(disk_->ReadPage(*file, 1, out).ok());
  EXPECT_EQ(out[511], 0xBB);
}

TEST_P(DiskTest, ErrorsOnBadArguments) {
  auto file = disk_->CreateFile("t");
  ASSERT_TRUE(file.ok());
  // Wrong page size.
  EXPECT_EQ(disk_->AppendPage(*file, MakePage(100, 0)).code(),
            StatusCode::kInvalidArgument);
  // Out-of-range read.
  std::vector<uint8_t> out;
  EXPECT_EQ(disk_->ReadPage(*file, 0, out).code(),
            StatusCode::kOutOfRange);
  // Unknown file id.
  EXPECT_EQ(disk_->ReadPage(9999, 0, out).code(), StatusCode::kNotFound);
  EXPECT_EQ(disk_->NumPages(9999).status().code(), StatusCode::kNotFound);
  EXPECT_EQ(disk_->DeleteFile(9999).code(), StatusCode::kNotFound);
}

TEST_P(DiskTest, DeleteRemovesFile) {
  auto file = disk_->CreateFile("t");
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE(disk_->AppendPage(*file, MakePage(512, 1)).ok());
  ASSERT_TRUE(disk_->DeleteFile(*file).ok());
  std::vector<uint8_t> out;
  EXPECT_EQ(disk_->ReadPage(*file, 0, out).code(), StatusCode::kNotFound);
}

TEST_P(DiskTest, StatsDistinguishSequentialAndRandom) {
  auto file = disk_->CreateFile("t");
  ASSERT_TRUE(file.ok());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(
        disk_->AppendPage(*file, MakePage(512, static_cast<uint8_t>(i)))
            .ok());
  }
  EXPECT_EQ(disk_->stats().pages_written, 10);

  std::vector<uint8_t> out;
  // Sequential scan 0..9.
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(disk_->ReadPage(*file, i, out).ok());
  }
  EXPECT_EQ(disk_->stats().pages_read_seq, 10);
  EXPECT_EQ(disk_->stats().pages_read_rand, 0);

  // Jumping around is random.
  ASSERT_TRUE(disk_->ReadPage(*file, 5, out).ok());
  ASSERT_TRUE(disk_->ReadPage(*file, 2, out).ok());
  EXPECT_EQ(disk_->stats().pages_read_rand, 2);
  // ...but continuing from a jump is sequential again.
  ASSERT_TRUE(disk_->ReadPage(*file, 3, out).ok());
  EXPECT_EQ(disk_->stats().pages_read_seq, 11);
  EXPECT_EQ(disk_->stats().pages_read(), 13);

  disk_->ResetStats();
  EXPECT_EQ(disk_->stats().pages_read(), 0);
  EXPECT_EQ(disk_->stats().pages_written, 0);
}

TEST_P(DiskTest, MultipleFilesIndependent) {
  auto f1 = disk_->CreateFile("a");
  auto f2 = disk_->CreateFile("b");
  ASSERT_TRUE(f1.ok());
  ASSERT_TRUE(f2.ok());
  EXPECT_NE(*f1, *f2);
  ASSERT_TRUE(disk_->AppendPage(*f1, MakePage(512, 1)).ok());
  ASSERT_TRUE(disk_->AppendPage(*f2, MakePage(512, 2)).ok());
  std::vector<uint8_t> out;
  ASSERT_TRUE(disk_->ReadPage(*f2, 0, out).ok());
  EXPECT_EQ(out[0], 2);
}

INSTANTIATE_TEST_SUITE_P(SimAndFile, DiskTest, ::testing::Bool(),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "FileDisk" : "SimDisk";
                         });

}  // namespace
}  // namespace adaptagg
