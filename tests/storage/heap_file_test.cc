#include "storage/heap_file.h"

#include <gtest/gtest.h>

namespace adaptagg {
namespace {

class HeapFileTest : public ::testing::Test {
 protected:
  HeapFileTest()
      : disk_(512),
        schema_({{"k", DataType::kInt64, 8}, {"v", DataType::kInt64, 8}}) {}

  HeapFile MakeFile() {
    auto hf = HeapFile::Create(&disk_, &schema_, "t");
    EXPECT_TRUE(hf.ok());
    return std::move(hf).value();
  }

  void Fill(HeapFile& hf, int64_t n) {
    TupleBuffer t(&schema_);
    for (int64_t i = 0; i < n; ++i) {
      t.SetInt64(0, i);
      t.SetInt64(1, i * 2);
      ASSERT_TRUE(hf.Append(t.view()).ok());
    }
    ASSERT_TRUE(hf.Flush().ok());
  }

  SimDisk disk_;
  Schema schema_;
};

TEST_F(HeapFileTest, AppendScanRoundtrip) {
  HeapFile hf = MakeFile();
  Fill(hf, 100);
  EXPECT_EQ(hf.num_tuples(), 100);

  HeapFileScanner scanner(&hf);
  int64_t i = 0;
  for (TupleView t = scanner.Next(); t.valid(); t = scanner.Next(), ++i) {
    EXPECT_EQ(t.GetInt64(0), i);
    EXPECT_EQ(t.GetInt64(1), i * 2);
  }
  EXPECT_EQ(i, 100);
}

TEST_F(HeapFileTest, PageCountMatchesCapacity) {
  HeapFile hf = MakeFile();
  // 512-byte pages, 16-byte tuples, 4-byte header -> 31 tuples/page.
  int cap = PageBuilder::Capacity(512, 16);
  EXPECT_EQ(cap, 31);
  Fill(hf, 100);
  EXPECT_EQ(hf.num_pages(), (100 + cap - 1) / cap);
}

TEST_F(HeapFileTest, EmptyFileScan) {
  HeapFile hf = MakeFile();
  ASSERT_TRUE(hf.Flush().ok());
  EXPECT_EQ(hf.num_pages(), 0);
  HeapFileScanner scanner(&hf);
  EXPECT_FALSE(scanner.Next().valid());
}

TEST_F(HeapFileTest, FlushIdempotent) {
  HeapFile hf = MakeFile();
  Fill(hf, 5);
  int64_t pages = hf.num_pages();
  ASSERT_TRUE(hf.Flush().ok());  // nothing buffered -> no new page
  EXPECT_EQ(hf.num_pages(), pages);
}

TEST_F(HeapFileTest, SeekToPageForSampling) {
  HeapFile hf = MakeFile();
  Fill(hf, 100);
  HeapFileScanner scanner(&hf);
  ASSERT_TRUE(scanner.SeekToPage(2).ok());
  TupleView t = scanner.Next();
  ASSERT_TRUE(t.valid());
  EXPECT_EQ(t.GetInt64(0), 2 * 31);  // first tuple of page 2
  EXPECT_FALSE(scanner.SeekToPage(999).ok());
  EXPECT_FALSE(scanner.SeekToPage(-1).ok());
}

TEST_F(HeapFileTest, ScannerCountsPages) {
  HeapFile hf = MakeFile();
  Fill(hf, 100);
  HeapFileScanner scanner(&hf);
  while (scanner.Next().valid()) {
  }
  EXPECT_EQ(scanner.pages_read(), hf.num_pages());
}

TEST_F(HeapFileTest, DropDeletesBackingFile) {
  HeapFile hf = MakeFile();
  Fill(hf, 10);
  ASSERT_TRUE(hf.Drop().ok());
  std::vector<uint8_t> out;
  EXPECT_FALSE(disk_.ReadPage(hf.file_id(), 0, out).ok());
}

}  // namespace
}  // namespace adaptagg
