#include "storage/spill_file.h"

#include <gtest/gtest.h>

#include <cstring>

namespace adaptagg {
namespace {

class SpillFileTest : public ::testing::Test {
 protected:
  SpillFileTest() : disk_(256) {}

  SpillWriter MakeWriter(int raw_width, int partial_width) {
    auto w = SpillWriter::Create(&disk_, "spill", raw_width, partial_width);
    EXPECT_TRUE(w.ok());
    return std::move(w).value();
  }

  SimDisk disk_;
};

TEST_F(SpillFileTest, MixedTagRoundtrip) {
  SpillWriter w = MakeWriter(/*raw=*/16, /*partial=*/24);
  uint8_t raw[16];
  uint8_t partial[24];
  for (int i = 0; i < 100; ++i) {
    if (i % 3 == 0) {
      std::memset(partial, i, sizeof(partial));
      ASSERT_TRUE(w.Append(SpillTag::kPartial, partial).ok());
    } else {
      std::memset(raw, i, sizeof(raw));
      ASSERT_TRUE(w.Append(SpillTag::kRaw, raw).ok());
    }
  }
  ASSERT_TRUE(w.Flush().ok());
  EXPECT_EQ(w.num_records(), 100);
  EXPECT_GT(w.num_pages(), 1);

  SpillReader reader(&w);
  SpillTag tag;
  const uint8_t* rec = nullptr;
  int i = 0;
  while (reader.Next(&tag, &rec)) {
    if (i % 3 == 0) {
      EXPECT_EQ(tag, SpillTag::kPartial);
      EXPECT_EQ(rec[23], static_cast<uint8_t>(i));
    } else {
      EXPECT_EQ(tag, SpillTag::kRaw);
      EXPECT_EQ(rec[15], static_cast<uint8_t>(i));
    }
    ++i;
  }
  EXPECT_EQ(i, 100);
  EXPECT_EQ(reader.pages_read(), w.num_pages());
}

TEST_F(SpillFileTest, EmptySpill) {
  SpillWriter w = MakeWriter(8, 8);
  ASSERT_TRUE(w.Flush().ok());
  EXPECT_EQ(w.num_pages(), 0);
  SpillReader reader(&w);
  SpillTag tag;
  const uint8_t* rec;
  EXPECT_FALSE(reader.Next(&tag, &rec));
}

TEST_F(SpillFileTest, FlushMidStreamPreservesOrder) {
  SpillWriter w = MakeWriter(8, 8);
  int64_t v = 1;
  ASSERT_TRUE(w.Append(SpillTag::kRaw, reinterpret_cast<uint8_t*>(&v)).ok());
  ASSERT_TRUE(w.Flush().ok());
  v = 2;
  ASSERT_TRUE(w.Append(SpillTag::kRaw, reinterpret_cast<uint8_t*>(&v)).ok());
  ASSERT_TRUE(w.Flush().ok());
  EXPECT_EQ(w.num_pages(), 2);

  SpillReader reader(&w);
  SpillTag tag;
  const uint8_t* rec;
  ASSERT_TRUE(reader.Next(&tag, &rec));
  int64_t out;
  std::memcpy(&out, rec, 8);
  EXPECT_EQ(out, 1);
  ASSERT_TRUE(reader.Next(&tag, &rec));
  std::memcpy(&out, rec, 8);
  EXPECT_EQ(out, 2);
  EXPECT_FALSE(reader.Next(&tag, &rec));
}

TEST_F(SpillFileTest, DoubleFlushNoEmptyPage) {
  SpillWriter w = MakeWriter(8, 8);
  int64_t v = 1;
  ASSERT_TRUE(w.Append(SpillTag::kRaw, reinterpret_cast<uint8_t*>(&v)).ok());
  ASSERT_TRUE(w.Flush().ok());
  ASSERT_TRUE(w.Flush().ok());
  EXPECT_EQ(w.num_pages(), 1);
}

TEST_F(SpillFileTest, DropReleasesFile) {
  SpillWriter w = MakeWriter(8, 8);
  int64_t v = 9;
  ASSERT_TRUE(w.Append(SpillTag::kRaw, reinterpret_cast<uint8_t*>(&v)).ok());
  ASSERT_TRUE(w.Flush().ok());
  ASSERT_TRUE(w.Drop().ok());
  std::vector<uint8_t> page;
  EXPECT_FALSE(disk_.ReadPage(w.file_id(), 0, page).ok());
}

TEST_F(SpillFileTest, PagePackingRespectsFrameOverhead) {
  // 256-byte pages, 4-byte header, frames of 1+8 bytes -> 28 per page.
  SpillWriter w = MakeWriter(8, 0);
  int64_t v = 0;
  for (int i = 0; i < 28; ++i) {
    ASSERT_TRUE(
        w.Append(SpillTag::kRaw, reinterpret_cast<uint8_t*>(&v)).ok());
  }
  ASSERT_TRUE(w.Flush().ok());
  EXPECT_EQ(w.num_pages(), 1);
  ASSERT_TRUE(
      w.Append(SpillTag::kRaw, reinterpret_cast<uint8_t*>(&v)).ok());
  ASSERT_TRUE(w.Flush().ok());
  EXPECT_EQ(w.num_pages(), 2);
}

}  // namespace
}  // namespace adaptagg
