#include "workload/distributions.h"

#include <gtest/gtest.h>

#include <map>

namespace adaptagg {
namespace {

TEST(Zipf, ValuesInDomain) {
  ZipfGenerator zipf(100, 0.9, 1);
  for (int i = 0; i < 10'000; ++i) {
    EXPECT_LT(zipf.Next(), 100u);
  }
}

TEST(Zipf, SkewConcentratesMassOnHeadItems) {
  ZipfGenerator zipf(1'000, 0.9, 2);
  std::map<uint64_t, int> counts;
  constexpr int kDraws = 50'000;
  for (int i = 0; i < kDraws; ++i) ++counts[zipf.Next()];
  // Item 0 dominates; the top-10 items take a large share.
  int head = 0;
  for (uint64_t g = 0; g < 10; ++g) head += counts[g];
  EXPECT_GT(counts[0], kDraws / 20);
  EXPECT_GT(head, kDraws / 4);
}

TEST(Zipf, ThetaZeroIsRoughlyUniform) {
  ZipfGenerator zipf(10, 0.0, 3);
  std::map<uint64_t, int> counts;
  constexpr int kDraws = 50'000;
  for (int i = 0; i < kDraws; ++i) ++counts[zipf.Next()];
  for (uint64_t g = 0; g < 10; ++g) {
    EXPECT_GT(counts[g], kDraws / 10 * 0.85) << g;
    EXPECT_LT(counts[g], kDraws / 10 * 1.15) << g;
  }
}

TEST(Zipf, DeterministicPerSeed) {
  ZipfGenerator a(50, 0.5, 9), b(50, 0.5, 9);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(GroupIdSource, SequentialExactRoundRobin) {
  GroupIdSource src(GroupDistribution::kSequential, 5, 0, 1);
  for (int round = 0; round < 3; ++round) {
    for (uint64_t g = 0; g < 5; ++g) {
      EXPECT_EQ(src.Next(), g);
    }
  }
}

TEST(GroupIdSource, UniformCoversAllGroups) {
  GroupIdSource src(GroupDistribution::kUniform, 16, 0, 2);
  std::map<uint64_t, int> counts;
  for (int i = 0; i < 5'000; ++i) ++counts[src.Next()];
  EXPECT_EQ(counts.size(), 16u);
}

TEST(GroupIdSource, ZipfPathWorks) {
  GroupIdSource src(GroupDistribution::kZipf, 100, 0.8, 3);
  for (int i = 0; i < 1'000; ++i) {
    EXPECT_LT(src.Next(), 100u);
  }
}

TEST(GroupDistribution, Names) {
  EXPECT_EQ(GroupDistributionToString(GroupDistribution::kUniform),
            "uniform");
  EXPECT_EQ(GroupDistributionToString(GroupDistribution::kZipf), "zipf");
  EXPECT_EQ(GroupDistributionToString(GroupDistribution::kSequential),
            "sequential");
}

}  // namespace
}  // namespace adaptagg
