#include "workload/tpcd.h"

#include <gtest/gtest.h>

#include "agg/reference.h"

namespace adaptagg {
namespace {

TEST(Lineitem, SchemaShape) {
  Schema s = LineitemSchema();
  EXPECT_EQ(s.num_fields(), 10);
  auto idx = s.FieldIndex("l_returnflag");
  ASSERT_TRUE(idx.ok());
  EXPECT_EQ(s.field(*idx).width, 1);
  EXPECT_EQ(s.field(*idx).type, DataType::kBytes);
}

TEST(Lineitem, GenerationCountsAndRoundRobin) {
  TpcdSpec spec;
  spec.num_nodes = 4;
  spec.num_rows = 8'000;
  auto rel = GenerateLineitem(spec);
  ASSERT_TRUE(rel.ok());
  EXPECT_EQ(rel->total_tuples(), 8'000);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(rel->partition(i).num_tuples(), 2'000);
  }
}

TEST(Lineitem, ValueDomains) {
  TpcdSpec spec;
  spec.num_nodes = 2;
  spec.num_rows = 2'000;
  auto rel = GenerateLineitem(spec);
  ASSERT_TRUE(rel.ok());
  const Schema& s = rel->schema();
  HeapFileScanner scan(&rel->partition(0));
  for (TupleView t = scan.Next(); t.valid(); t = scan.Next()) {
    int64_t qty = t.GetInt64(3);
    EXPECT_GE(qty, 1);
    EXPECT_LE(qty, 50);
    double disc = t.GetDouble(5);
    EXPECT_GE(disc, 0.0);
    EXPECT_LE(disc, 0.10 + 1e-12);
    std::string flag = t.GetBytes(7);
    EXPECT_TRUE(flag == "A" || flag == "N" || flag == "R") << flag;
    std::string status = t.GetBytes(8);
    EXPECT_TRUE(status == "O" || status == "F");
  }
  (void)s;
}

TEST(Lineitem, Q1HasAtMostSixGroups) {
  TpcdSpec spec;
  spec.num_nodes = 2;
  spec.num_rows = 5'000;
  auto rel = GenerateLineitem(spec);
  ASSERT_TRUE(rel.ok());
  auto q1 = MakeQ1Query(&rel->schema());
  ASSERT_TRUE(q1.ok());
  EXPECT_EQ(q1->key_width(), 2);  // two 1-byte columns
  auto ref = ReferenceAggregate(*q1, *rel);
  ASSERT_TRUE(ref.ok());
  EXPECT_LE(ref->num_rows(), 6);
  EXPECT_GE(ref->num_rows(), 4);
  // Counts sum to the row count.
  int64_t total = 0;
  for (int64_t i = 0; i < ref->num_rows(); ++i) {
    total += ref->row(i).GetInt64(2);  // count_order
  }
  EXPECT_EQ(total, 5'000);
}

TEST(Lineitem, DistinctOrdersNearQuarterOfRows) {
  TpcdSpec spec;
  spec.num_nodes = 2;
  spec.num_rows = 8'000;
  auto rel = GenerateLineitem(spec);
  ASSERT_TRUE(rel.ok());
  auto distinct = MakeDistinctOrdersQuery(&rel->schema());
  ASSERT_TRUE(distinct.ok());
  auto ref = ReferenceAggregate(*distinct, *rel);
  ASSERT_TRUE(ref.ok());
  // rows/4 order keys drawn uniformly: most are hit at least once.
  EXPECT_GT(ref->num_rows(), 8'000 / 4 * 0.9);
  EXPECT_LE(ref->num_rows(), 8'000 / 4);
}

TEST(Lineitem, PerPartQueryMidCardinality) {
  TpcdSpec spec;
  spec.num_nodes = 2;
  spec.num_rows = 6'000;
  auto rel = GenerateLineitem(spec);
  ASSERT_TRUE(rel.ok());
  auto q = MakePerPartQuery(&rel->schema());
  ASSERT_TRUE(q.ok());
  auto ref = ReferenceAggregate(*q, *rel);
  ASSERT_TRUE(ref.ok());
  EXPECT_GT(ref->num_rows(), 100);
  EXPECT_LT(ref->num_rows(), 6'000 / 4);
}

TEST(Lineitem, DeterministicPerSeed) {
  TpcdSpec spec;
  spec.num_nodes = 2;
  spec.num_rows = 1'000;
  auto a = GenerateLineitem(spec);
  auto b = GenerateLineitem(spec);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  auto q = MakeQ1Query(&a->schema());
  ASSERT_TRUE(q.ok());
  auto ra = ReferenceAggregate(*q, *a);
  auto rb = ReferenceAggregate(*q, *b);
  ASSERT_TRUE(ra.ok());
  ASSERT_TRUE(rb.ok());
  EXPECT_TRUE(ResultSetsEqual(*ra, *rb, 0.0));
}

}  // namespace
}  // namespace adaptagg
